// dynbcast: the one CLI over the whole experiment engine — see
// tools/cli.h for the subcommand surface and README.md ("The dynbcast
// CLI") for the spec-string grammar.
#include "tools/cli.h"

int main(int argc, char** argv) { return dynbcast::cli::dispatch(argc, argv); }
