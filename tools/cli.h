// The dynbcast CLI: one binary over the whole experiment surface.
//
// Subcommands (each also callable as a library function, so bench
// binaries can forward to them — bench_thm31_adversary_sweep is
// `cli::runSweep` under its historical name):
//
//   sweep      Theorem 3.1 reproduction under the default rooted-tree
//              dynamics: portfolio sweep + beam witnesses vs the paper's
//              bracket (the committed golden CSVs are byte-identical
//              artifacts of this command). With any other
//              --dynamics=SPEC it sweeps that model-zoo entry instead
//              (stochastic-dynamics golden CSVs come from here too).
//   portfolio  the general scenario runner: any objective × dynamics ×
//              adversary spec list, unified per-run rows.
//   duel       every listed adversary fights one (n, seed) instance;
//              champion vs the theorem bracket.
//   witness    offline beam witness search at one n, with verification.
//   list       registered adversary specs, the dynamics model zoo, and
//              the scenario vocabulary.
//   serve      the experiment service: accepts submit requests over a
//              unix socket, executes them on a checkpointed manifest
//              with a spec-keyed result cache, optionally sharded
//              across worker processes (src/service/).
//   submit     client for serve: sends one sweep-shaped request and
//              renders the streamed results exactly as `sweep` would —
//              the --csv artifact is byte-identical.
//   work       executes a manifest's unfinished tasks (what the
//              server's worker processes run; also usable standalone).
//
// Every subcommand that sweeps sizes speaks the shared bench/driver
// dialect (--sizes/--seed/--seeds/--jobs/--csv) and accepts --summary
// (per-(n, member) mean/min/max/stddev over the --seeds replicates);
// adversary lists are semicolon-separated registry spec strings, e.g.
//   --adversaries="static-path;freeze-path:depth=3;beam:width=64",
// and --dynamics takes one DynamicsRegistry spec string, e.g.
//   --dynamics=edge-markovian:p=0.2,q=0.1.
#pragma once

#include <string>
#include <vector>

namespace dynbcast::cli {

/// Splits an --adversaries flag value on ';' (and newlines), trimming
/// whitespace and dropping empties — "a;b;c" → {a, b, c}.
[[nodiscard]] std::vector<std::string> splitSpecList(const std::string& text);

/// Subcommand entry points. argv[0] is the program/subcommand name;
/// flags follow. Each returns a process exit code and reports
/// std::invalid_argument errors on stderr.
int runSweep(int argc, const char* const* argv);
int runPortfolio(int argc, const char* const* argv);
int runDuel(int argc, const char* const* argv);
int runWitness(int argc, const char* const* argv);
int runList(int argc, const char* const* argv);
int runServe(int argc, const char* const* argv);
int runSubmit(int argc, const char* const* argv);
int runWork(int argc, const char* const* argv);

/// Full-argv dispatcher used by the dynbcast binary: argv[1] selects the
/// subcommand; no/unknown subcommand prints usage.
int dispatch(int argc, const char* const* argv);

}  // namespace dynbcast::cli
