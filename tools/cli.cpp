#include "tools/cli.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <exception>
#include <iostream>
#include <limits>
#include <map>

#include "bench/driver.h"
#include "src/adversary/beam.h"
#include "src/adversary/portfolio.h"
#include "src/adversary/registry.h"
#include "src/analysis/csv.h"
#include "src/bounds/theorem.h"
#include "src/dynamics/registry.h"
#include "src/engine/scenario.h"
#include "src/service/client.h"
#include "src/service/server.h"
#include "src/service/worker.h"
#include "src/support/options.h"
#include "src/support/table.h"

namespace dynbcast::cli {

namespace {

/// Uniform error surface: subcommands throw std::invalid_argument for
/// user errors (bad flags, unknown specs); this catches and reports.
template <typename F>
int guarded(F&& body) {
  try {
    return body();
  } catch (const std::exception& e) {
    std::cerr << "dynbcast: " << e.what() << '\n';
    return 2;
  }
}

int usage(std::ostream& os) {
  os << "usage: dynbcast <subcommand> [flags]\n\n"
        "subcommands:\n"
        "  sweep      Theorem 3.1 sweep (default rooted-tree dynamics: "
        "portfolio + beam\n"
        "             witnesses vs the paper's bracket; any other "
        "--dynamics runs the\n"
        "             model-zoo sweep over sizes x seed replicates)\n"
        "             [--sizes=4:128:2] [--seed=1] [--seeds=R] [--jobs=N]\n"
        "             [--csv=path] [--adversaries=SPECS] "
        "[--dynamics=SPEC] [--summary]\n"
        "             [--cap=ROUNDS] [--beam-maxn=32] [--beam-width=256]\n"
        "             [--backend=dense|sparse|auto] (graph-model dynamics "
        "only)\n"
        "             [--batch=K|auto|off] (oblivious replicate batching)\n"
        "  portfolio  general scenario runner over objective x dynamics x "
        "adversaries\n"
        "             [--objective=broadcast|gossip] [--dynamics=SPEC]\n"
        "             [--sizes=8:64:2] [--seed=1] [--seeds=R] [--jobs=N]\n"
        "             [--cap=ROUNDS] [--csv=path] [--adversaries=SPECS] "
        "[--summary]\n"
        "             [--backend=dense|sparse|auto] [--batch=K|auto|off]\n"
        "  duel       all listed adversaries fight one instance\n"
        "             [--n=32] [--seed=7] [--adversaries=SPECS] "
        "[--csv=path]\n"
        "  witness    offline beam witness search with verification\n"
        "             [--n=16] [--seed=7] [--beam=256] [--restarts=3]\n"
        "  list       registered adversaries, the dynamics model zoo, and "
        "scenario vocabulary\n"
        "  serve      experiment service: checkpointed manifests, "
        "spec-keyed result\n"
        "             cache, optional worker-process sharding\n"
        "             --socket=PATH --state=DIR [--workers=N] [--jobs=J]\n"
        "             [--max-requests=K]\n"
        "  submit     run a sweep through a running server (same flags "
        "as sweep,\n"
        "             plus --socket=PATH; --csv output is byte-identical "
        "to sweep's)\n"
        "  work       execute a manifest's unfinished tasks "
        "(server workers run this)\n"
        "             --manifest=PATH [--cache=DIR] [--jobs=J] "
        "[--range=A:B]\n"
        "\n"
        "adversary SPECS are ';'-separated registry spec strings, e.g.\n"
        "  --adversaries=\"static-path;freeze-path:depth=3;beam:width=64\"\n"
        "dynamics SPEC is one DynamicsRegistry spec string, e.g.\n"
        "  --dynamics=edge-markovian:p=0.2,q=0.1   (see 'dynbcast list')\n";
  return 2;
}

/// --summary: per-(n, member) aggregate over seed replicates, in
/// first-appearance order (size-major, member order within each size).
/// Incomplete (capped) runs count into the stats — a stalled stochastic
/// model shows up as mean pinned at the cap, not as silence.
[[nodiscard]] TextTable summaryTable(const std::vector<SweepRow>& rows) {
  struct Acc {
    std::size_t n = 0;
    std::string member;
    std::size_t runs = 0;
    std::size_t completed = 0;
    std::size_t minRounds = 0;
    std::size_t maxRounds = 0;
    double sum = 0.0;
    double sumSq = 0.0;
  };
  std::vector<Acc> groups;
  std::map<std::pair<std::size_t, std::string>, std::size_t> index;
  for (const SweepRow& row : rows) {
    const auto key = std::make_pair(row.n, row.member);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, groups.size()).first;
      groups.push_back({row.n, row.member, 0, 0, row.rounds, row.rounds,
                        0.0, 0.0});
    }
    Acc& acc = groups[it->second];
    acc.runs += 1;
    acc.completed += row.completed ? 1 : 0;
    acc.minRounds = std::min(acc.minRounds, row.rounds);
    acc.maxRounds = std::max(acc.maxRounds, row.rounds);
    const double r = static_cast<double>(row.rounds);
    acc.sum += r;
    acc.sumSq += r * r;
  }
  TextTable table({"n", "member", "runs", "completed", "min", "mean", "max",
                   "stddev"});
  for (const Acc& acc : groups) {
    const double mean = acc.sum / static_cast<double>(acc.runs);
    const double variance =
        acc.sumSq / static_cast<double>(acc.runs) - mean * mean;
    table.row()
        .add(static_cast<std::uint64_t>(acc.n))
        .add(acc.member)
        .add(static_cast<std::uint64_t>(acc.runs))
        .add(static_cast<std::uint64_t>(acc.completed))
        .add(static_cast<std::uint64_t>(acc.minRounds))
        .add(mean, 2)
        .add(static_cast<std::uint64_t>(acc.maxRounds))
        .add(std::sqrt(std::max(0.0, variance)), 2);
  }
  return table;
}

void emitSummary(const std::vector<SweepRow>& rows) {
  std::cout << "per-(n, member) summary over seed replicates:\n"
            << summaryTable(rows).render() << '\n';
}

/// The Theorem 3.1 bracket table: one row per size, best-of portfolio
/// and beam witness vs the paper's bounds. Shared by `sweep` (direct
/// execution) and `submit` (served execution) — byte-identical output
/// is a requirement, so there is exactly one renderer.
[[nodiscard]] TextTable thm31Table(
    const std::vector<std::size_t>& sizes, std::size_t replicates,
    const std::vector<SweepInstance>& instances,
    const std::vector<std::size_t>& beamRounds, bool* anyViolation) {
  TextTable table({"n", "lower bound", "portfolio t*", "beam witness t*",
                   "best t*", "upper bound", "t*/n", "upper ok"});
  *anyViolation = false;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    // Portfolio t* for this n: best over its --seeds replicates (the
    // instances are size-major, replicates contiguous).
    std::size_t portfolioBest = 0;
    for (std::size_t r = 0; r < replicates; ++r) {
      portfolioBest = std::max(
          portfolioBest, instances[i * replicates + r].portfolio.bestRounds);
    }
    const std::size_t beam = beamRounds[i];
    const std::size_t best = std::max(portfolioBest, beam);
    const TheoremCheck check = checkTheorem31(n, best);
    *anyViolation |= !check.withinUpper;
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(check.lower)
        .add(static_cast<std::uint64_t>(portfolioBest))
        .add(beam == 0 ? std::string("-") : std::to_string(beam))
        .add(static_cast<std::uint64_t>(best))
        .add(check.upper)
        .add(check.ratio, 3)
        .add(check.withinUpper ? "yes" : "VIOLATION");
  }
  return table;
}

void emitPerAdversaryDetail(const std::vector<SweepInstance>& instances) {
  if (instances.empty()) return;
  // The detail rows come straight from the sweep — no second run.
  const SweepInstance& last = instances.back();
  std::cout << "per-adversary detail at the largest n:\n";
  TextTable per({"adversary", "t*", "t*/n", "completed"});
  for (const auto& e : last.portfolio.entries) {
    per.row()
        .add(e.name)
        .add(static_cast<std::uint64_t>(e.rounds))
        .add(static_cast<double>(e.rounds) / static_cast<double>(last.n), 3)
        .add(e.completed ? "yes" : "no");
  }
  std::cout << per.render() << '\n';
}

/// The model-zoo sweep table: one row per (n, seed, member) run. Shared
/// by `sweep --dynamics=SPEC` and `submit` for the same reason as
/// thm31Table.
[[nodiscard]] TextTable dynamicsRowsTable(const std::vector<SweepRow>& rows) {
  TextTable table({"n", "seed", "member", "rounds", "rounds/n", "completed"});
  for (const SweepRow& row : rows) {
    table.row()
        .add(static_cast<std::uint64_t>(row.n))
        .add(static_cast<std::uint64_t>(row.seedIndex))
        .add(row.member)
        .add(static_cast<std::uint64_t>(row.rounds))
        .add(static_cast<double>(row.rounds) / static_cast<double>(row.n), 3)
        .add(row.completed ? "yes" : "no");
  }
  return table;
}

/// `sweep --dynamics=SPEC` for anything but the default rooted-tree
/// dynamics: the model-zoo sweep. Same driver dialect, unified rows,
/// deterministic at any --jobs.
int runDynamicsSweep(BenchDriver& driver, const std::string& dynamicsText,
                     bool wantSummary) {
  ScenarioSpec scenario;
  scenario.dynamics = dynamicsText;
  scenario.sizes = driver.sizes();
  scenario.masterSeed = driver.seed();
  scenario.seedsPerSize = driver.seedsPerSize();
  scenario.roundCap = driver.options().getUInt("cap", 0);
  scenario.adversaries =
      splitSpecList(driver.options().getString("adversaries", ""));
  scenario.backend =
      parseBackendChoice(driver.options().getString("backend", "auto"));
  // Graph-model dynamics never batch; parsing the flag anyway means an
  // explicit --batch=K fails validation instead of being ignored.
  scenario.batch =
      parseBatchPolicy(driver.options().getString("batch", "auto"));

  driver.printHeader("SWEEP — dynamics=" +
                     DynamicsSpec::parse(dynamicsText).toString() +
                     ", backend=" + backendChoiceName(scenario.backend));
  const ScenarioResult result = runScenario(scenario, driver.engine());
  driver.emit(dynamicsRowsTable(result.rows));
  if (wantSummary) emitSummary(result.rows);
  return 0;
}

}  // namespace

std::vector<std::string> splitSpecList(const std::string& text) {
  std::vector<std::string> specs;
  std::string current;
  for (const char c : text) {
    if (c == ';' || c == '\n') {
      if (!current.empty()) specs.push_back(current);
      current.clear();
      continue;
    }
    if ((c == ' ' || c == '\t') && current.empty()) continue;
    current += c;
  }
  if (!current.empty()) specs.push_back(current);
  for (std::string& spec : specs) {
    while (!spec.empty() && (spec.back() == ' ' || spec.back() == '\t')) {
      spec.pop_back();
    }
  }
  return specs;
}

int runSweep(int argc, const char* const* argv) {
  return guarded([&] {
    BenchDriver driver(argc, argv, "4:128:2", 1);
    const bool wantSummary = driver.options().has("summary");
    const std::string dynamicsText =
        driver.options().getString("dynamics", "rooted-tree");
    if (DynamicsSpec::parse(dynamicsText).toString() != "rooted-tree") {
      // Any non-default dynamics runs the model-zoo sweep; the theorem
      // bracket below is specific to unrestricted rooted trees.
      return runDynamicsSweep(driver, dynamicsText, wantSummary);
    }
    // Beam witness search is the strongest (offline) adversary; it costs
    // real time and its advantage concentrates at small-to-mid n, so it
    // runs only up to a size cap by default.
    const std::size_t beamMaxN = driver.options().getUInt("beam-maxn", 32);
    BeamConfig beamCfg;
    beamCfg.beamWidth = driver.options().getUInt("beam-width", 256);
    beamCfg.randomMovesPerState = 8;
    beamCfg.diversityPercent = 40;

    driver.printHeader("THM31 — adversaries vs Theorem 3.1");
    std::cout << "best t* = max(online portfolio, offline beam witness for "
                 "n <= "
              << beamMaxN << ")\n\n";

    // Portfolio sweep as a declarative scenario: sizes × seed replicates
    // × adversary specs (default = the standard portfolio).
    ScenarioSpec scenario;
    scenario.sizes = driver.sizes();
    scenario.masterSeed = driver.seed();
    scenario.seedsPerSize = driver.seedsPerSize();
    scenario.roundCap = driver.options().getUInt("cap", 0);
    scenario.adversaries =
        splitSpecList(driver.options().getString("adversaries", ""));
    // Rooted trees are adversary-driven, so only dense/auto resolve;
    // validateScenario rejects an explicit --backend=sparse with the
    // right error instead of silently ignoring the flag.
    scenario.backend =
        parseBackendChoice(driver.options().getString("backend", "auto"));
    scenario.batch =
        parseBatchPolicy(driver.options().getString("batch", "auto"));
    const ScenarioResult sweep = runScenario(scenario, driver.engine());

    // Beam witnesses fan out too: one task per size within the beam cap.
    const std::vector<std::size_t>& sizes = driver.sizes();
    const auto beamRows = driver.engine().map<std::size_t>(
        sizes.size(), driver.seed() ^ 0xbea3ull,
        [&](std::size_t i, std::uint64_t taskSeed) -> std::size_t {
          const std::size_t n = sizes[i];
          if (n > beamMaxN) return 0;
          const BeamResult witness = beamSearchWitness(n, taskSeed, beamCfg);
          return verifyWitness(n, witness.witness) == witness.rounds
                     ? witness.rounds
                     : 0;
        });

    bool anyViolation = false;
    driver.emit(thm31Table(sizes, driver.seedsPerSize(), sweep.instances,
                           beamRows, &anyViolation));
    emitPerAdversaryDetail(sweep.instances);
    if (wantSummary) emitSummary(sweep.rows);

    if (anyViolation) {
      std::cout << "RESULT: UPPER BOUND VIOLATION DETECTED (bug!)\n";
      return 1;
    }
    std::cout << "RESULT: all runs within the theorem's upper bound.\n";
    return 0;
  });
}

int runPortfolio(int argc, const char* const* argv) {
  return guarded([&] {
    BenchDriver driver(argc, argv, "8:64:2", 1);
    ScenarioSpec scenario;
    scenario.objective =
        parseObjective(driver.options().getString("objective", "broadcast"));
    scenario.dynamics =
        driver.options().getString("dynamics", "rooted-tree");
    scenario.sizes = driver.sizes();
    scenario.masterSeed = driver.seed();
    scenario.seedsPerSize = driver.seedsPerSize();
    scenario.roundCap = driver.options().getUInt("cap", 0);
    scenario.adversaries =
        splitSpecList(driver.options().getString("adversaries", ""));
    scenario.backend =
        parseBackendChoice(driver.options().getString("backend", "auto"));
    scenario.batch =
        parseBatchPolicy(driver.options().getString("batch", "auto"));

    driver.printHeader(
        "SCENARIO — objective=" + objectiveName(scenario.objective) +
        ", dynamics=" + DynamicsSpec::parse(scenario.dynamics).toString() +
        ", backend=" + backendChoiceName(scenario.backend));
    const ScenarioResult result = runScenario(scenario, driver.engine());

    TextTable table(
        {"n", "seed", "adversary", "rounds", "rounds/n", "completed"});
    for (const ScenarioRow& row : result.rows) {
      table.row()
          .add(static_cast<std::uint64_t>(row.n))
          .add(static_cast<std::uint64_t>(row.seedIndex))
          .add(row.member)
          .add(static_cast<std::uint64_t>(row.rounds))
          .add(static_cast<double>(row.rounds) /
                   static_cast<double>(row.n),
               3)
          .add(row.completed ? "yes" : "no");
    }
    driver.emit(table);

    std::cout << "strongest adversary per instance (Definition 2.3's "
                 "max over the listed specs):\n";
    TextTable best({"n", "seed", "best adversary", "best rounds"});
    for (const SweepInstance& instance : result.instances) {
      best.row()
          .add(static_cast<std::uint64_t>(instance.n))
          .add(static_cast<std::uint64_t>(instance.seedIndex))
          .add(instance.portfolio.bestName.empty()
                   ? std::string("- (none completed)")
                   : instance.portfolio.bestName)
          .add(static_cast<std::uint64_t>(instance.portfolio.bestRounds));
    }
    std::cout << best.render() << '\n';
    if (driver.options().has("summary")) emitSummary(result.rows);
    return 0;
  });
}

int runDuel(int argc, const char* const* argv) {
  return guarded([&] {
    const Options opts(argc, argv);
    const std::size_t n = opts.getUInt("n", 32);
    const std::uint64_t seed = opts.getUInt("seed", 7);
    std::vector<std::string> specs =
        splitSpecList(opts.getString("adversaries", ""));
    if (specs.empty()) specs = standardPortfolioSpecs();

    std::cout << "adversary duel at n = " << n << " (seed " << seed
              << ")\n\n";
    const PortfolioResult result =
        runPortfolio(n, seed, membersFromSpecs(specs, n, seed));

    TextTable table({"adversary", "t*", "t*/n", "vs static path"});
    for (const auto& e : result.entries) {
      const double ratio =
          static_cast<double>(e.rounds) / static_cast<double>(n);
      const std::int64_t delta = static_cast<std::int64_t>(e.rounds) -
                                 static_cast<std::int64_t>(n - 1);
      table.row()
          .add(e.name)
          .add(static_cast<std::uint64_t>(e.rounds))
          .add(ratio, 3)
          .add((delta >= 0 ? "+" : "") + std::to_string(delta));
    }
    std::cout << table.render() << '\n';
    if (opts.has("csv")) {
      const std::string path = opts.getString("csv", "duel.csv");
      writeCsv(path, table);
      std::cout << "wrote CSV to " << path << '\n';
    }

    const TheoremCheck check = checkTheorem31(n, result.bestRounds);
    std::cout << "champion: " << result.bestName
              << " with t* = " << result.bestRounds << "\n"
              << "Theorem 3.1 bracket [" << check.lower << ", "
              << check.upper << "]; champion ratio " << check.ratio << "\n";
    return 0;
  });
}

int runWitness(int argc, const char* const* argv) {
  return guarded([&] {
    const Options opts(argc, argv);
    const std::size_t n = opts.getUInt("n", 16);
    const std::uint64_t seed = opts.getUInt("seed", 7);
    const std::size_t restarts = opts.getUInt("restarts", 3);

    BeamConfig cfg;
    cfg.beamWidth = opts.getUInt("beam", 256);
    cfg.randomMovesPerState = 8;
    cfg.diversityPercent = 40;

    std::cout << "beam witness search at n = " << n << " (beam "
              << cfg.beamWidth << ", " << restarts << " restarts)\n\n";

    BeamResult best;
    for (std::size_t r = 0; r < restarts; ++r) {
      BeamResult attempt = beamSearchWitness(n, seed + r, cfg);
      std::cout << "restart " << r << ": " << attempt.rounds << " rounds ("
                << attempt.statesExpanded << " states)\n";
      if (attempt.rounds > best.rounds) best = std::move(attempt);
    }

    const std::size_t verified = verifyWitness(n, best.witness);
    std::cout << "\nbest witness: " << best.rounds
              << " rounds; independent replay says " << verified << '\n';

    const TheoremCheck check = checkTheorem31(n, verified);
    std::cout << "Theorem 3.1: t*(T_" << n << ") >= " << verified
              << ", bracket [" << check.lower << ", " << check.upper
              << "], ratio " << check.ratio << '\n';
    std::cout << "static baseline (best single tree): " << n - 1 << " — "
              << (verified > n - 1 ? "beaten: dynamic adversaries are "
                                     "strictly stronger"
                                   : "not beaten at this search effort")
              << '\n';
    return verified == best.rounds ? 0 : 1;
  });
}

int runList(int argc, const char* const* argv) {
  return guarded([&] {
    const Options opts(argc, argv);
    (void)opts;
    const AdversaryRegistry& registry = AdversaryRegistry::instance();
    std::cout << "registered adversaries (spec grammar: "
                 "name[:key=value[,key=value]...]):\n\n";
    for (const std::string& name : registry.names()) {
      const AdversaryInfo& info = registry.info(name);
      std::cout << "  " << name << "\n      " << info.description << '\n';
      for (const AdversaryParamDoc& param : info.params) {
        std::cout << "      " << param.key << "=" << param.defaultValue
                  << "  " << param.description << '\n';
      }
    }

    const DynamicsRegistry& dynRegistry = DynamicsRegistry::instance();
    std::cout << "\ndynamics model zoo (--dynamics=SPEC, same grammar):\n\n";
    for (const std::string& name : dynRegistry.names()) {
      const DynamicsInfo& info = dynRegistry.info(name);
      std::cout << "  " << name << "  ["
                << (info.mode == DynamicsMode::kGraphModel
                        ? "graph model"
                        : info.mode == DynamicsMode::kGeneratorList
                              ? "deprecated generator-list alias"
                              : "adversary-driven")
                << ", class=" << dynamicsClassName(info.graphClass)
                << (info.stochastic ? ", stochastic" : "")
                << (info.sparseCapable ? ", sparse-capable" : "")
                << "]\n      " << info.description << '\n';
      if (!info.literature.empty()) {
        std::cout << "      literature: " << info.literature << '\n';
      }
      for (const DynamicsParamDoc& param : info.params) {
        std::cout << "      " << param.key << "=" << param.defaultValue
                  << "  " << param.description << '\n';
      }
      if (!info.deprecation.empty()) {
        std::cout << "      deprecated: " << info.deprecation << '\n';
      }
    }

    std::cout << "\nscenario vocabulary (sweep/portfolio subcommands):\n"
                 "  --objective=broadcast|gossip (gossip: adversary-driven "
                 "dynamics only)\n"
                 "  --dynamics=SPEC from the model zoo above\n"
                 "  --adversaries=SPECS (adversary-driven dynamics; graph "
                 "models take none)\n"
                 "  --backend=dense|sparse|auto (sparse: frontier "
                 "simulation for sparse-capable\n"
                 "    graph models above; auto switches past n=4096 — rows "
                 "are backend-invariant)\n"
                 "  --batch=K|auto|off (broadcast over adversary-driven "
                 "trees: run K seed\n"
                 "    replicates of an oblivious adversary in lockstep; "
                 "auto batches 8 lanes\n"
                 "    once a cell has >= 8 replicates — rows are "
                 "batch-invariant)\n"
                 "  --summary prints per-(n, member) stats over --seeds "
                 "replicates\n"
                 "\nservice mode (serve/submit/work subcommands):\n"
                 "  dynbcast serve --socket=PATH --state=DIR [--workers=N] "
                 "runs the experiment\n"
                 "    service: jobs are checkpointed to a run manifest and "
                 "results cached by\n"
                 "    canonical spec + seed + position, so interrupted jobs "
                 "resume and\n"
                 "    overlapping requests execute only their delta\n"
                 "  dynbcast submit --socket=PATH <sweep flags> runs a "
                 "sweep through the\n"
                 "    service; its --csv output is byte-identical to "
                 "`dynbcast sweep`'s\n"
                 "  dynbcast work --manifest=PATH executes a job's "
                 "unfinished tasks (the\n"
                 "    server shards jobs by spawning these)\n";
    return 0;
  });
}

namespace {

/// The running binary's own path, for the server to exec as worker
/// processes. Linux-specific by design — same trust boundary as the
/// unix socket the service listens on.
[[nodiscard]] std::string selfExecutablePath() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n <= 0) return "";
  buffer[n] = '\0';
  return std::string(buffer);
}

void emitServiceStats(const SubmitOutcome& outcome) {
  std::cout << "service: job=" << outcome.jobId
            << " tasks=" << outcome.tasks << " resumed=" << outcome.resumed
            << " cache-hits=" << outcome.cacheHits
            << " executed=" << outcome.executed << '\n';
}

}  // namespace

int runServe(int argc, const char* const* argv) {
  return guarded([&] {
    const Options opts(argc, argv);
    ServerOptions server;
    server.socketPath = opts.getString("socket", "");
    server.stateDir = opts.getString("state", "");
    if (server.socketPath.empty() || server.stateDir.empty()) {
      throw std::invalid_argument(
          "serve: --socket=PATH and --state=DIR are required");
    }
    server.workers = opts.getUInt("workers", 0);
    server.jobsPerWorker = opts.getUInt("jobs", 1);
    server.maxRequests = opts.getUInt("max-requests", 0);
    // Fault injection for resume tests: first-wave workers stop after
    // this many tasks, exactly as if killed at a task boundary.
    server.workerMaxTasks = opts.getUInt("worker-max-tasks", 0);
    server.workerBinary = opts.getString("worker-binary", "");
    if (server.workers > 0 && server.workerBinary.empty()) {
      server.workerBinary = selfExecutablePath();
      if (server.workerBinary.empty()) {
        throw std::invalid_argument(
            "serve: cannot resolve the worker binary; pass "
            "--worker-binary=PATH");
      }
    }
    std::cout << "dynbcast serve: socket=" << server.socketPath
              << " state=" << server.stateDir
              << " workers=" << server.workers
              << " jobs=" << server.jobsPerWorker << std::endl;
    return runServer(server);
  });
}

int runSubmit(int argc, const char* const* argv) {
  return guarded([&] {
    const Options opts(argc, argv);
    const std::string socket = opts.getString("socket", "");
    if (socket.empty()) {
      throw std::invalid_argument("submit: --socket=PATH is required");
    }
    ServiceRequest request;
    request.scenario.objective =
        parseObjective(opts.getString("objective", "broadcast"));
    request.scenario.dynamics = opts.getString("dynamics", "rooted-tree");
    request.scenario.sizes =
        parseSizeList(opts.getString("sizes", "4:128:2"));
    request.scenario.masterSeed = opts.getUInt("seed", 1);
    request.scenario.seedsPerSize = opts.getUInt("seeds", 1);
    request.scenario.roundCap = opts.getUInt("cap", 0);
    request.scenario.adversaries =
        splitSpecList(opts.getString("adversaries", ""));
    request.scenario.backend =
        parseBackendChoice(opts.getString("backend", "auto"));
    request.beamMaxN = opts.getUInt("beam-maxn", 32);
    request.beamWidth = opts.getUInt("beam-width", 256);
    // Fail bad specs client-side with the registry's full message
    // instead of a round-trip to the server.
    validateScenario(request.scenario);

    // PROGRESS goes to stderr so stdout stays table-shaped like sweep's.
    const SubmitOutcome outcome =
        submitRequest(socket, request, &std::cerr);

    const auto emitTable = [&](const TextTable& table) {
      std::cout << table.render() << '\n';
      if (opts.has("csv")) {
        const std::string path = opts.getString("csv", "sweep.csv");
        writeCsv(path, table);
        std::cout << "wrote CSV to " << path << '\n';
      }
    };

    if (requestWantsBeamWitnesses(request)) {
      std::cout << "THM31 — adversaries vs Theorem 3.1 (served; seed="
                << request.scenario.masterSeed << ")\n\n";
      bool anyViolation = false;
      emitTable(thm31Table(request.scenario.sizes,
                           request.scenario.seedsPerSize, outcome.instances,
                           outcome.beamRounds, &anyViolation));
      emitPerAdversaryDetail(outcome.instances);
      if (opts.has("summary")) emitSummary(outcome.rows);
      emitServiceStats(outcome);
      if (anyViolation) {
        std::cout << "RESULT: UPPER BOUND VIOLATION DETECTED (bug!)\n";
        return 1;
      }
      std::cout << "RESULT: all runs within the theorem's upper bound.\n";
      return 0;
    }

    std::cout << "SWEEP — dynamics="
              << DynamicsSpec::parse(request.scenario.dynamics).toString()
              << ", backend=" << backendChoiceName(request.scenario.backend)
              << " (served; seed=" << request.scenario.masterSeed << ")\n\n";
    emitTable(dynamicsRowsTable(outcome.rows));
    if (opts.has("summary")) emitSummary(outcome.rows);
    emitServiceStats(outcome);
    return 0;
  });
}

int runWork(int argc, const char* const* argv) {
  return guarded([&] {
    const Options opts(argc, argv);
    WorkerOptions work;
    work.manifestPath = opts.getString("manifest", "");
    if (work.manifestPath.empty()) {
      throw std::invalid_argument("work: --manifest=PATH is required");
    }
    work.cacheDir = opts.getString("cache", "");
    work.jobs = opts.getUInt("jobs", 1);
    work.maxTasks = opts.getUInt(
        "max-tasks", std::numeric_limits<std::size_t>::max());
    const std::string range = opts.getString("range", "");
    if (!range.empty()) {
      const std::size_t colon = range.find(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("work: --range expects BEGIN:END, got '" +
                                    range + "'");
      }
      work.rangeBegin = std::stoull(range.substr(0, colon));
      work.rangeEnd = std::stoull(range.substr(colon + 1));
    }
    const WorkerReport report = runManifestWorker(work);
    std::cout << "work: assigned=" << report.assigned
              << " already-done=" << report.alreadyDone
              << " cache-hits=" << report.cacheHits
              << " executed=" << report.executed
              << " remaining=" << report.remaining << '\n';
    return 0;
  });
}

int dispatch(int argc, const char* const* argv) {
  if (argc < 2) return usage(std::cerr);
  const std::string subcommand = argv[1];
  if (subcommand == "sweep") return runSweep(argc - 1, argv + 1);
  if (subcommand == "portfolio") return runPortfolio(argc - 1, argv + 1);
  if (subcommand == "duel") return runDuel(argc - 1, argv + 1);
  if (subcommand == "witness") return runWitness(argc - 1, argv + 1);
  if (subcommand == "list") return runList(argc - 1, argv + 1);
  if (subcommand == "serve") return runServe(argc - 1, argv + 1);
  if (subcommand == "submit") return runSubmit(argc - 1, argv + 1);
  if (subcommand == "work") return runWork(argc - 1, argv + 1);
  if (subcommand == "help" || subcommand == "--help" || subcommand == "-h") {
    usage(std::cout);
    return 0;
  }
  std::cerr << "dynbcast: unknown subcommand '" << subcommand << "'";
  const std::string suggestion =
      closestMatch(subcommand, {"sweep", "portfolio", "duel", "witness",
                                "list", "serve", "submit", "work"});
  if (!suggestion.empty()) {
    std::cerr << "; did you mean '" << suggestion << "'?";
  }
  std::cerr << "\n\n";
  return usage(std::cerr);
}

}  // namespace dynbcast::cli
