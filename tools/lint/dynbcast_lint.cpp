// dynbcast_lint — project-invariant static analysis for the dynbcast tree.
//
// The repo's headline guarantees (byte-identical sweeps at any --jobs,
// position-based seeding, allocation-free hot paths, a strict layer DAG)
// were historically enforced only by runtime tests: a stray
// std::random_device or an unordered_map iteration feeding a CSV row
// compiles fine and fails only probabilistically, much later. This tool
// makes those invariants machine-checked at the exact line of the
// violation, with no libclang dependency — a comment/string-aware token
// scan plus an #include-graph walk is enough for every rule below.
//
// Diagnostics: `file:line: [rule-id] message`, exit 1 if any fired.
//
// Rules (see --list-rules and README "Static analysis & invariants"):
//   det-random-device  std::random_device anywhere (entropy breaks replay)
//   det-clock-seed     wall-clock value flowing into a seed/RNG expression
//   det-wall-clock     any clock/time()/rand() read inside src/ library code
//   det-naked-rng      <random> engine construction outside the seed plumbing
//   det-unordered-iter range-for over an unordered container in a file that
//                      emits rows/CSV/JSON (iteration order is unspecified)
//   layer-include      #include edge violating tools/lint/layers.txt
//   hot-alloc          allocation inside a function body of a file tagged
//                      `// dynbcast-lint: hot-path`
//   reg-param-doc      registry .add() call with no paired param-doc
//   reg-replay-test    reset()-bearing adversary/dynamics implementation
//                      file with no replay-test(...) annotation naming a
//                      test that actually exists under tests/
//   lint-allow-reason  allow(...) suppression without a `-- reason` string
//   lint-unknown-rule  directive names a rule id this binary doesn't know
//
// Suppressions: `// dynbcast-lint: allow(<rule-id>) -- <reason>` on the
// offending line (or the line directly above it) silences that one rule
// there. The reason is mandatory: a suppression is a reviewed decision,
// and the justification must survive in the diff.
//
// Modes:
//   dynbcast_lint --root DIR [dirs...]    lint the tree (default mode)
//   dynbcast_lint --self-test DIR         run the fixture suite (*.cc files
//                                         with // EXPECT: assertions)
//   dynbcast_lint --list-rules            print the rule table
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

struct RuleDoc {
  const char* id;
  const char* summary;
};

constexpr RuleDoc kRules[] = {
    {"det-random-device",
     "std::random_device is banned: entropy makes runs unreproducible"},
    {"det-clock-seed",
     "clock/time() value must never flow into a seed or RNG construction"},
    {"det-wall-clock",
     "src/ library code must not read clocks or call time()/rand(); "
     "timing belongs in bench/ and tools/"},
    {"det-naked-rng",
     "<random> engines may only be constructed in the seed plumbing "
     "(src/support/rng.*, src/support/seed_sequence.*)"},
    {"det-unordered-iter",
     "range-for over an unordered container in a row/CSV/JSON-producing "
     "file: iteration order is unspecified and would leak into output"},
    {"layer-include",
     "#include edge violates the layer DAG declared in tools/lint/layers.txt"},
    {"hot-alloc",
     "allocation (new/make_unique/make_shared/container construction) "
     "inside a function body of a `// dynbcast-lint: hot-path` file"},
    {"reg-param-doc",
     "registry .add() call site must pair a param-doc declaration "
     "(positional doc list, or `info.params = ...` — `= {}` for none)"},
    {"reg-replay-test",
     "adversary/dynamics implementation file defining reset() must carry "
     "`// dynbcast-lint: replay-test(<name>)` naming an existing test"},
    {"lint-allow-reason",
     "allow(...) suppression must carry `-- <reason>`"},
    {"lint-unknown-rule", "directive names an unknown rule id"},
};

bool isKnownRule(const std::string& id) {
  for (const RuleDoc& r : kRules) {
    if (id == r.id) return true;
  }
  return false;
}

struct Diagnostic {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& o) const {
    if (path != o.path) return path < o.path;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

// ---------------------------------------------------------------------------
// Source model: raw lines, comment-directives, and a stripped copy of each
// line with comments and string/char-literal contents blanked out, so token
// scans never fire on prose or quoted text.
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string path;                      // repo-relative (or fixture-virtual)
  std::vector<std::string> raw;          // 1-based via index+1
  std::vector<std::string> stripped;     // same size as raw
  std::vector<std::string> comments;     // comment text per line (directives)
  bool hotPath = false;                  // `// dynbcast-lint: hot-path` seen
  // line -> rules suppressed on that line (already reason-checked).
  std::map<std::size_t, std::set<std::string>> allows;
  std::vector<std::string> replayTests;  // names from replay-test(...)
  std::vector<Diagnostic> directiveDiags;
};

bool startsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Splits every line into code (stripped) and comment text, tracking block
// comments, string literals, char literals, and raw strings across the
// whole file. Digit separators (1'000'000) are not char literals.
void stripFile(SourceFile& file) {
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string rawDelim;  // raw string closing delimiter: )delim"
  file.stripped.resize(file.raw.size());
  file.comments.resize(file.raw.size());

  for (std::size_t li = 0; li < file.raw.size(); ++li) {
    const std::string& line = file.raw[li];
    std::string code;
    std::string comment;
    code.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            comment += line.substr(i);
            i = line.size();
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                     line[i - 1])) &&
                                 line[i - 1] != '_'))) {
            // Raw string: R"delim( ... )delim"
            std::size_t open = line.find('(', i + 2);
            if (open == std::string::npos) open = line.size();
            rawDelim = ")" + line.substr(i + 2, open - i - 2) + "\"";
            state = State::kRawString;
            code += "\"\"";
            i = open;  // skip past the opening parenthesis
          } else if (c == '"') {
            state = State::kString;
            code += '"';
          } else if (c == '\'' && i > 0 &&
                     (std::isalnum(static_cast<unsigned char>(line[i - 1])))) {
            // digit separator or suffix apostrophe inside a number: keep
            code += c;
          } else if (c == '\'') {
            state = State::kChar;
            code += '\'';
          } else {
            code += c;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          } else {
            comment += c;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            code += '"';
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
            code += '\'';
          }
          break;
        case State::kRawString: {
          const std::size_t close = line.find(rawDelim, i);
          if (close == std::string::npos) {
            i = line.size();
          } else {
            i = close + rawDelim.size() - 1;
            state = State::kCode;
          }
          break;
        }
      }
    }
    file.stripped[li] = std::move(code);
    file.comments[li] = std::move(comment);
  }
}

// Parses `// dynbcast-lint: ...` directives out of the comment text. The
// directive must START the comment (after the // and whitespace) — prose
// that merely quotes the syntax, like this file's own header, never
// counts as a directive.
void parseDirectives(SourceFile& file) {
  for (std::size_t li = 0; li < file.comments.size(); ++li) {
    std::string comment = file.comments[li];
    std::size_t skip = 0;
    while (skip < comment.size() &&
           (comment[skip] == '/' || comment[skip] == '*' ||
            std::isspace(static_cast<unsigned char>(comment[skip]))))
      ++skip;
    comment.erase(0, skip);
    if (!startsWith(comment, "dynbcast-lint:")) continue;
    const std::size_t at = 0;
    std::string body =
        comment.substr(at + std::string("dynbcast-lint:").size());
    // Trim leading whitespace.
    while (!body.empty() && std::isspace(static_cast<unsigned char>(body[0])))
      body.erase(body.begin());
    const std::size_t lineNo = li + 1;
    if (startsWith(body, "hot-path")) {
      file.hotPath = true;
    } else if (startsWith(body, "allow(")) {
      const std::size_t close = body.find(')');
      if (close == std::string::npos) {
        file.directiveDiags.push_back({file.path, lineNo, "lint-unknown-rule",
                                       "malformed allow(...) directive"});
        continue;
      }
      const std::string rule = body.substr(6, close - 6);
      if (!isKnownRule(rule)) {
        file.directiveDiags.push_back(
            {file.path, lineNo, "lint-unknown-rule",
             "allow() names unknown rule '" + rule + "'"});
        continue;
      }
      const std::size_t dash = body.find("--", close);
      std::string reason =
          dash == std::string::npos ? "" : body.substr(dash + 2);
      while (!reason.empty() &&
             std::isspace(static_cast<unsigned char>(reason[0])))
        reason.erase(reason.begin());
      if (reason.empty()) {
        file.directiveDiags.push_back(
            {file.path, lineNo, "lint-allow-reason",
             "allow(" + rule + ") without `-- <reason>`: a suppression is a "
             "reviewed decision, write down why"});
        continue;
      }
      // A trailing-comment allow covers its own line; a standalone-comment
      // allow covers the next line.
      const bool standalone =
          file.stripped[li].find_first_not_of(" \t") == std::string::npos;
      file.allows[standalone ? lineNo + 1 : lineNo].insert(rule);
    } else if (startsWith(body, "replay-test(")) {
      const std::size_t close = body.find(')');
      if (close != std::string::npos && close > 12) {
        file.replayTests.push_back(body.substr(12, close - 12));
      }
    }
    // Fixture headers (dynbcast-lint-fixture:) never reach here: the
    // directive prefix check above requires exactly "dynbcast-lint:".
  }
}

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True when `token` occurs in `line` with non-identifier characters (or
// the line boundary) on both sides. `token` may itself contain '::'.
std::size_t findToken(const std::string& line, const std::string& token,
                      std::size_t from = 0) {
  for (std::size_t pos = line.find(token, from); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    const bool leftOk = pos == 0 || !isIdentChar(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool rightOk = end >= line.size() || !isIdentChar(line[end]);
    if (leftOk && rightOk) return pos;
  }
  return std::string::npos;
}

bool containsToken(const std::string& line, const std::string& token) {
  return findToken(line, token) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Layer model
// ---------------------------------------------------------------------------

struct LayerConfig {
  // layer name -> set of layers it may include (itself always allowed).
  std::map<std::string, std::set<std::string>> allowed;
  std::vector<std::string> order;  // declaration order, for messages
};

std::optional<LayerConfig> loadLayers(const fs::path& path,
                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open layer matrix " + path.string();
    return std::nullopt;
  }
  LayerConfig config;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string name;
    if (!(ss >> name)) continue;  // blank / comment-only line
    if (name.back() != ':') {
      *error = path.string() + ":" + std::to_string(lineNo) +
               ": layer name must end with ':'";
      return std::nullopt;
    }
    name.pop_back();
    std::set<std::string> deps;
    std::string dep;
    while (ss >> dep) deps.insert(dep);
    if (config.allowed.count(name)) {
      *error = path.string() + ":" + std::to_string(lineNo) +
               ": duplicate layer '" + name + "'";
      return std::nullopt;
    }
    config.allowed[name] = std::move(deps);
    config.order.push_back(name);
  }
  return config;
}

// Maps a repo-relative path (or #include target) to its layer name, or ""
// when the path is outside the layered tree (system headers, third-party).
std::string layerOf(const std::string& path) {
  if (startsWith(path, "src/")) {
    const std::size_t slash = path.find('/', 4);
    if (slash != std::string::npos) return path.substr(4, slash - 4);
    return "";
  }
  for (const char* top : {"tools", "bench", "tests", "examples"}) {
    if (startsWith(path, std::string(top) + "/")) return top;
  }
  return "";
}

// ---------------------------------------------------------------------------
// Function-body tracking (for hot-alloc): a conservative brace scanner.
// A `{` opens a function body when the previous significant token is `)`
// or one of the qualifiers that legally sit between the parameter list and
// the body (const/noexcept/override/final/mutable/try) or a trailing
// return type. Everything inside (at any nesting depth) is "body".
// ---------------------------------------------------------------------------

std::vector<bool> markFunctionBodyLines(const SourceFile& file) {
  std::vector<bool> inBody(file.stripped.size(), false);
  std::vector<bool> bodyStack;  // per open brace: is it (inside) a body?
  std::string prevToken;
  bool prevWasCloseParen = false;

  auto tokenAllowsBody = [&]() {
    if (prevWasCloseParen) return true;
    static const std::set<std::string> kQualifiers = {
        "const", "noexcept", "override", "final", "mutable", "try"};
    if (kQualifiers.count(prevToken)) return true;
    // Trailing return type: `) -> SomeType {` leaves prevToken as the last
    // type token; accept `>` (template close) and identifiers following
    // a close paren is already handled. Keep conservative: identifiers
    // after `->` are rare outside trailing returns at file scope.
    return false;
  };

  for (std::size_t li = 0; li < file.stripped.size(); ++li) {
    const std::string& line = file.stripped[li];
    // Preprocessor lines don't affect brace structure.
    std::size_t firstSig = line.find_first_not_of(" \t");
    if (firstSig != std::string::npos && line[firstSig] == '#') {
      inBody[li] = !bodyStack.empty() && bodyStack.back();
      continue;
    }
    // A line is "body" if we are inside a body at its start OR become so;
    // mark at first body-open on the line too (tokens after `{`).
    bool lineIsBody = !bodyStack.empty() && bodyStack.back();
    std::string token;
    auto flushToken = [&] {
      if (!token.empty()) {
        prevToken = token;
        prevWasCloseParen = false;
        token.clear();
      }
    };
    for (char c : line) {
      if (isIdentChar(c)) {
        token += c;
        continue;
      }
      flushToken();
      if (c == '{') {
        const bool enclosingBody = !bodyStack.empty() && bodyStack.back();
        const bool opensBody = enclosingBody || tokenAllowsBody();
        bodyStack.push_back(opensBody);
        // A brace that OPENS a body leaves its own line unmarked: the text
        // before `{` is the signature (return type / parameters), which
        // legitimately names container types. Nested braces are body.
        if (opensBody && enclosingBody) lineIsBody = true;
        prevToken.clear();
        prevWasCloseParen = false;
      } else if (c == '}') {
        if (!bodyStack.empty()) bodyStack.pop_back();
        prevToken.clear();
        prevWasCloseParen = false;
      } else if (c == ')') {
        prevWasCloseParen = true;
        prevToken.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        if (c != '(') prevWasCloseParen = false;
        prevToken.clear();
      }
    }
    flushToken();
    inBody[li] = lineIsBody;
  }
  return inBody;
}

// ---------------------------------------------------------------------------
// Rule context and helpers
// ---------------------------------------------------------------------------

struct LintContext {
  const LayerConfig* layers = nullptr;
  // Concatenated contents of tests/ (for reg-replay-test name lookup).
  std::string testsCorpus;
  std::vector<Diagnostic> diags;
  // Findings suppressed by a valid allow() — counted for reporting.
  std::size_t suppressed = 0;
};

void report(LintContext& ctx, const SourceFile& file, std::size_t line,
            const std::string& rule, const std::string& message) {
  const auto it = file.allows.find(line);
  if (it != file.allows.end() && it->second.count(rule)) {
    ++ctx.suppressed;
    return;
  }
  ctx.diags.push_back({file.path, line, rule, message});
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

const char* const kClockTokens[] = {
    "steady_clock", "system_clock", "high_resolution_clock", "file_clock",
    "utc_clock", "tai_clock", "gps_clock"};

bool lineReadsClock(const std::string& s) {
  for (const char* tok : kClockTokens) {
    const std::size_t at = findToken(s, tok);
    if (at != std::string::npos && s.find("::now", at) != std::string::npos)
      return true;
  }
  if (containsToken(s, "time") && s.find("time (") != std::string::npos)
    return true;
  const std::size_t t = findToken(s, "time");
  if (t != std::string::npos && t + 4 < s.size() && s[t + 4] == '(')
    return true;
  return false;
}

const char* const kSeedTokens[] = {"seed", "Seed", "srand", "Rng",
                                   "mt19937", "default_random_engine",
                                   "minstd_rand"};

void checkDeterminism(LintContext& ctx, const SourceFile& file) {
  const std::string layer = layerOf(file.path);
  const bool inSrc = startsWith(file.path, "src/");
  const bool rngAllowListed =
      startsWith(file.path, "src/support/rng.") ||
      startsWith(file.path, "src/support/seed_sequence.");
  for (std::size_t li = 0; li < file.stripped.size(); ++li) {
    const std::string& s = file.stripped[li];
    const std::size_t lineNo = li + 1;
    if (containsToken(s, "random_device")) {
      report(ctx, file, lineNo, "det-random-device",
             "std::random_device draws OS entropy; derive seeds from "
             "SeedSequence positions instead");
    }
    // Engine construction outside the sanctioned seed plumbing.
    if (!rngAllowListed) {
      for (const char* engine :
           {"mt19937", "mt19937_64", "default_random_engine", "minstd_rand",
            "minstd_rand0", "ranlux24", "ranlux48", "knuth_b"}) {
        if (containsToken(s, engine)) {
          report(ctx, file, lineNo, "det-naked-rng",
                 std::string("construct randomness via dynbcast::Rng / "
                             "SeedSequence, not std::") +
                     engine + " (position-based seeding is the contract)");
          break;
        }
      }
    }
    const bool clock = lineReadsClock(s);
    if (clock) {
      // A clock value in the same statement as seed/RNG vocabulary is a
      // nondeterministic seed — banned everywhere, including bench/tests.
      bool seedContext = false;
      for (const char* tok : kSeedTokens) {
        if (containsToken(s, tok)) {
          seedContext = true;
          break;
        }
      }
      if (seedContext) {
        report(ctx, file, lineNo, "det-clock-seed",
               "wall-clock value must not seed an RNG; seeds come from "
               "SeedSequence positions");
      } else if (inSrc) {
        report(ctx, file, lineNo, "det-wall-clock",
               "library code (src/) must not read clocks; move timing to "
               "bench/ or tools/ — layer '" + layer + "' output must be a "
               "pure function of its seeds");
      }
    } else if (inSrc &&
               (containsToken(s, "rand") || containsToken(s, "srand"))) {
      report(ctx, file, lineNo, "det-wall-clock",
             "C rand()/srand() share hidden global state; use "
             "dynbcast::Rng");
    }
  }
}

// Range-for over identifiers declared as unordered containers, in files
// that emit rows/CSV/JSON.
bool producesRows(const SourceFile& file) {
  if (startsWith(file.path, "tools/") || startsWith(file.path, "bench/") ||
      startsWith(file.path, "src/analysis/") ||
      startsWith(file.path, "src/engine/") ||
      startsWith(file.path, "src/service/"))
    return true;
  for (const std::string& line : file.raw) {
    if (line.find("src/analysis/csv.h") != std::string::npos ||
        line.find("src/support/table.h") != std::string::npos)
      return true;
  }
  return false;
}

void checkUnorderedIteration(LintContext& ctx, const SourceFile& file) {
  if (startsWith(file.path, "tests/")) return;  // not shipped output
  if (!producesRows(file)) return;
  // Pass 1: collect identifiers declared with an unordered container type.
  std::set<std::string> unorderedVars;
  for (const std::string& s : file.stripped) {
    for (const char* type : {"unordered_map", "unordered_set",
                             "unordered_multimap", "unordered_multiset"}) {
      std::size_t at = findToken(s, type);
      if (at == std::string::npos) continue;
      // Skip the template argument list by matching angle brackets.
      std::size_t i = s.find('<', at);
      if (i == std::string::npos) continue;
      int depth = 0;
      for (; i < s.size(); ++i) {
        if (s[i] == '<') ++depth;
        if (s[i] == '>' && --depth == 0) break;
      }
      if (i >= s.size()) continue;
      ++i;
      while (i < s.size() &&
             (std::isspace(static_cast<unsigned char>(s[i])) || s[i] == '&'))
        ++i;
      std::string name;
      while (i < s.size() && isIdentChar(s[i])) name += s[i++];
      if (!name.empty()) unorderedVars.insert(name);
    }
  }
  if (unorderedVars.empty()) return;
  // Pass 2: range-for whose range expression names one of them.
  for (std::size_t li = 0; li < file.stripped.size(); ++li) {
    const std::string& s = file.stripped[li];
    const std::size_t forAt = findToken(s, "for");
    if (forAt == std::string::npos) continue;
    const std::size_t colon = s.find(':', forAt);
    if (colon == std::string::npos) continue;
    const std::string range = s.substr(colon + 1);
    for (const std::string& var : unorderedVars) {
      if (containsToken(range, var)) {
        report(ctx, file, li + 1, "det-unordered-iter",
               "iteration order of '" + var + "' is unspecified; copy to a "
               "sorted container (or use std::map) before emitting rows");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Layering rule
// ---------------------------------------------------------------------------

void checkLayering(LintContext& ctx, const SourceFile& file) {
  if (!ctx.layers) return;
  const std::string fromLayer = layerOf(file.path);
  if (fromLayer.empty()) return;
  const auto allowedIt = ctx.layers->allowed.find(fromLayer);
  if (allowedIt == ctx.layers->allowed.end()) {
    report(ctx, file, 1, "layer-include",
           "file's layer '" + fromLayer +
               "' is not declared in tools/lint/layers.txt");
    return;
  }
  for (std::size_t li = 0; li < file.raw.size(); ++li) {
    const std::string& line = file.raw[li];
    std::size_t at = line.find_first_not_of(" \t");
    if (at == std::string::npos || line[at] != '#') continue;
    const std::size_t inc = line.find("include", at);
    if (inc == std::string::npos) continue;
    const std::size_t q1 = line.find('"', inc);
    if (q1 == std::string::npos) continue;  // <system> headers: no layer
    const std::size_t q2 = line.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    const std::string target = line.substr(q1 + 1, q2 - q1 - 1);
    const std::string toLayer = layerOf(target);
    if (toLayer.empty()) continue;  // relative include inside same dir etc.
    if (toLayer == fromLayer) continue;
    if (!allowedIt->second.count(toLayer)) {
      report(ctx, file, li + 1, "layer-include",
             "'" + fromLayer + "' may not include '" + toLayer + "' (" +
                 target + "); allowed: {" +
                 [&] {
                   std::string joined;
                   for (const std::string& d : allowedIt->second) {
                     if (!joined.empty()) joined += ", ";
                     joined += d;
                   }
                   return joined;
                 }() +
                 "} per tools/lint/layers.txt");
    }
  }
}

// ---------------------------------------------------------------------------
// Hot-path allocation rule
// ---------------------------------------------------------------------------

void checkHotPathAllocations(LintContext& ctx, const SourceFile& file) {
  if (!file.hotPath) return;
  const std::vector<bool> inBody = markFunctionBodyLines(file);
  const char* const kContainers[] = {
      "vector", "deque", "list", "forward_list", "map", "set",
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "multimap", "multiset", "queue",
      "priority_queue", "stack", "basic_string"};
  for (std::size_t li = 0; li < file.stripped.size(); ++li) {
    if (!inBody[li]) continue;
    const std::string& s = file.stripped[li];
    const std::size_t lineNo = li + 1;
    const std::size_t newAt = findToken(s, "new");
    if (newAt != std::string::npos) {
      report(ctx, file, lineNo, "hot-alloc",
             "`new` in a hot-path function body; preallocate in the "
             "constructor/reset and reuse");
    }
    for (const char* fn : {"make_unique", "make_shared"}) {
      if (containsToken(s, fn)) {
        report(ctx, file, lineNo, "hot-alloc",
               std::string("std::") + fn +
                   " allocates; hot-path state must be preallocated");
        break;
      }
    }
    for (const char* type : kContainers) {
      const std::size_t at = findToken(s, type);
      if (at == std::string::npos) continue;
      // Only count actual std:: container type mentions followed by a
      // template argument list or constructor call — `std::vector<` /
      // `std::string(`. Bare words (a comment-ish identifier) don't fire.
      if (at < 5 || s.compare(at - 5, 5, "std::") != 0) continue;
      std::size_t after = at + std::string(type).size();
      if (after >= s.size() || (s[after] != '<' && s[after] != '(')) continue;
      if (s[after] == '<') {
        // Skip reference/pointer bindings (`std::vector<T>& v = ...`) —
        // they alias existing storage. Find the matching `>`.
        int depth = 0;
        std::size_t close = after;
        for (; close < s.size(); ++close) {
          if (s[close] == '<') ++depth;
          if (s[close] == '>' && --depth == 0) break;
        }
        if (close < s.size()) {
          std::size_t next = close + 1;
          while (next < s.size() && s[next] == ' ') ++next;
          if (next < s.size() && (s[next] == '&' || s[next] == '*')) continue;
        }
      }
      // A move from existing storage is not an allocation.
      if (s.find("std::move(") != std::string::npos) continue;
      {
        report(ctx, file, lineNo, "hot-alloc",
               std::string("std::") + type +
                   " constructed inside a hot-path function body; "
                   "preallocate in the constructor/reset and reuse");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Registry hygiene rules
// ---------------------------------------------------------------------------

// Counts commas at depth 1 relative to the opening brace at `start`
// (which must point at '{' in the joined text). Returns nullopt when the
// brace never closes.
std::optional<int> topLevelCommas(const std::string& text, std::size_t start) {
  int depth = 0;
  int commas = 0;
  for (std::size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '{' || c == '(' || c == '[') ++depth;
    if (c == '}' || c == ')' || c == ']') {
      --depth;
      if (depth == 0) return commas;
    }
    if (c == ',' && depth == 1) ++commas;
  }
  return std::nullopt;
}

void checkRegistryParamDocs(LintContext& ctx, const SourceFile& file) {
  // The registry unit tests deliberately build minimal/invalid entries to
  // probe error paths; the hygiene contract is about shipped registrations.
  if (startsWith(file.path, "tests/")) return;
  // Join stripped lines with newline so statements spanning lines work;
  // keep a map from joined offset -> line number.
  std::string joined;
  std::vector<std::size_t> lineOfOffset;
  for (std::size_t li = 0; li < file.stripped.size(); ++li) {
    for (char c : file.stripped[li]) {
      joined += c;
      lineOfOffset.push_back(li + 1);
    }
    joined += '\n';
    lineOfOffset.push_back(li + 1);
  }
  for (const char* recv : {"reg.add", "registry.add", "reg->add",
                           "registry->add"}) {
    for (std::size_t at = joined.find(recv); at != std::string::npos;
         at = joined.find(recv, at + 1)) {
      if (at > 0 && isIdentChar(joined[at - 1])) continue;
      const std::size_t open = joined.find('(', at);
      if (open == std::string::npos) continue;
      std::size_t i = open + 1;
      while (i < joined.size() &&
             std::isspace(static_cast<unsigned char>(joined[i])))
        ++i;
      const std::size_t lineNo = lineOfOffset[at];
      if (i < joined.size() && joined[i] == '{') {
        // Positional aggregate: {name, description, {param docs}, factory}
        // — the doc list is the 3rd of 4 fields, so 3 top-level commas.
        const std::optional<int> commas = topLevelCommas(joined, i);
        if (!commas || *commas < 3) {
          report(ctx, file, lineNo, "reg-param-doc",
                 "registration aggregate must carry the param-doc list as "
                 "its 3rd field ({} for a parameterless entry)");
        }
      } else {
        // `reg.add(std::move(info))` / `reg.add(info)` style: require an
        // `X.params =` assignment since the previous registration (or
        // block start).
        const std::size_t move = joined.find("std::move(", i);
        std::string var;
        if (move != std::string::npos && move < joined.find(')', i) + 1) {
          std::size_t v = move + 10;
          while (v < joined.size() && isIdentChar(joined[v])) {
            var += joined[v++];
          }
        } else {
          std::size_t v = i;
          while (v < joined.size() && isIdentChar(joined[v])) {
            var += joined[v++];
          }
        }
        if (var.empty()) {
          report(ctx, file, lineNo, "reg-param-doc",
                 "unrecognized registration form; pass the info aggregate "
                 "inline or via std::move(<var>)");
          continue;
        }
        // Search backward for `<var>.params` between here and the previous
        // `.add(` (or 100 lines, whichever is nearer).
        const std::size_t windowStart =
            lineNo > 100 ? lineNo - 100 : std::size_t{1};
        bool found = false;
        for (std::size_t li = lineNo; li-- > windowStart - 1 && !found;) {
          const std::string& s = file.stripped[li];
          if (li + 1 != lineNo && s.find(".add(") != std::string::npos) break;
          if (s.find(var + ".params") != std::string::npos) found = true;
        }
        if (!found) {
          report(ctx, file, lineNo, "reg-param-doc",
                 "registration of '" + var + "' has no '" + var +
                     ".params = ...' declaration in the enclosing block; "
                     "declare the accepted keys (`= {}` for none)");
        }
      }
    }
  }
}

void checkReplayTestAnnotation(LintContext& ctx, const SourceFile& file) {
  const bool inScope = startsWith(file.path, "src/adversary/") ||
                       startsWith(file.path, "src/dynamics/");
  if (!inScope) return;
  // Only concrete implementations (reset() override) need the annotation;
  // the pure-virtual interface declaration does not.
  std::size_t resetLine = 0;
  for (std::size_t li = 0; li < file.stripped.size(); ++li) {
    const std::string& s = file.stripped[li];
    const std::size_t at = findToken(s, "reset");
    if (at == std::string::npos) continue;
    if (s.find("override", at) != std::string::npos) {
      resetLine = li + 1;
      break;
    }
  }
  if (resetLine == 0) return;
  if (file.replayTests.empty()) {
    report(ctx, file, resetLine, "reg-replay-test",
           "this file implements reset() (a replayable adversary/dynamics "
           "entry) but declares no `// dynbcast-lint: replay-test(<name>)`; "
           "name the determinism suite that replays it");
    return;
  }
  for (const std::string& name : file.replayTests) {
    // GTest names are written Suite.Test; the source spells them
    // TEST(Suite, Test) and clang-format may wrap between them, so look
    // the two halves up independently.
    const std::size_t dot = name.find('.');
    const bool found =
        dot == std::string::npos
            ? ctx.testsCorpus.find(name) != std::string::npos
            : ctx.testsCorpus.find(name.substr(0, dot)) !=
                      std::string::npos &&
                  ctx.testsCorpus.find(name.substr(dot + 1)) !=
                      std::string::npos;
    if (!found) {
      report(ctx, file, resetLine, "reg-replay-test",
             "replay-test(" + name + ") names a test that does not exist "
             "under tests/ — the determinism gate it promises is gone");
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

SourceFile loadSource(const fs::path& fsPath, const std::string& virtualPath) {
  SourceFile file;
  file.path = virtualPath;
  std::ifstream in(fsPath);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    file.raw.push_back(line);
  }
  stripFile(file);
  parseDirectives(file);
  return file;
}

void lintOne(LintContext& ctx, SourceFile& file) {
  for (Diagnostic& d : file.directiveDiags) ctx.diags.push_back(d);
  checkDeterminism(ctx, file);
  checkUnorderedIteration(ctx, file);
  checkLayering(ctx, file);
  checkHotPathAllocations(ctx, file);
  checkRegistryParamDocs(ctx, file);
  checkReplayTestAnnotation(ctx, file);
}

bool lintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".h";
}

int runTree(const fs::path& root, const std::vector<std::string>& dirs) {
  LintContext ctx;
  std::string layerError;
  const std::optional<LayerConfig> layers =
      loadLayers(root / "tools" / "lint" / "layers.txt", &layerError);
  if (!layers) {
    std::cerr << "dynbcast_lint: " << layerError << "\n";
    return 2;
  }
  ctx.layers = &*layers;

  // Collect files first (sorted for stable output), then build the tests
  // corpus for replay-test lookups.
  std::vector<std::pair<fs::path, std::string>> files;  // fs path, rel path
  for (const std::string& dir : dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) {
      std::cerr << "dynbcast_lint: no such directory: " << base << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintableExtension(entry.path()))
        continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      files.emplace_back(entry.path(), rel);
    }
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  const fs::path testsDir = root / "tests";
  if (fs::exists(testsDir)) {
    for (const auto& entry : fs::recursive_directory_iterator(testsDir)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in(entry.path());
      std::stringstream ss;
      ss << in.rdbuf();
      ctx.testsCorpus += ss.str();
    }
  }

  for (const auto& [fsPath, rel] : files) {
    SourceFile file = loadSource(fsPath, rel);
    lintOne(ctx, file);
  }

  std::sort(ctx.diags.begin(), ctx.diags.end());
  for (const Diagnostic& d : ctx.diags) {
    std::cout << d.path << ":" << d.line << ": [" << d.rule << "] "
              << d.message << "\n";
  }
  std::cerr << "dynbcast_lint: " << files.size() << " files, "
            << ctx.diags.size() << " finding(s), " << ctx.suppressed
            << " suppressed\n";
  return ctx.diags.empty() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Fixture self-test
//
// Each fixture is a *.cc file (never picked up by the tree walk or the
// build glob) with:
//   // dynbcast-lint-fixture: path=src/engine/foo.cpp   (virtual path)
//   // dynbcast-lint-fixture: known-test=SomeTest       (optional, repeat)
//   // EXPECT: <line>: [rule-id] <exact message>        (0 or more)
// The lint must produce EXACTLY the expected diagnostics.
// ---------------------------------------------------------------------------

int runSelfTest(const fs::path& root, const fs::path& fixtureDir) {
  std::string layerError;
  const std::optional<LayerConfig> layers =
      loadLayers(root / "tools" / "lint" / "layers.txt", &layerError);
  if (!layers) {
    std::cerr << "dynbcast_lint: " << layerError << "\n";
    return 2;
  }
  std::vector<fs::path> fixtures;
  for (const auto& entry : fs::directory_iterator(fixtureDir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".cc")
      fixtures.push_back(entry.path());
  }
  std::sort(fixtures.begin(), fixtures.end());
  if (fixtures.empty()) {
    std::cerr << "dynbcast_lint: no *.cc fixtures in " << fixtureDir << "\n";
    return 2;
  }

  std::size_t failures = 0;
  for (const fs::path& path : fixtures) {
    // Parse fixture headers from the raw text.
    std::ifstream in(path);
    std::string virtualPath;
    std::string knownTests;
    std::vector<std::string> expected;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
      ++lineNo;
      const std::size_t fx = line.find("dynbcast-lint-fixture:");
      if (fx != std::string::npos) {
        std::string body = line.substr(fx + 22);
        while (!body.empty() &&
               std::isspace(static_cast<unsigned char>(body[0])))
          body.erase(body.begin());
        if (startsWith(body, "path=")) virtualPath = body.substr(5);
        if (startsWith(body, "known-test="))
          knownTests += body.substr(11) + "\n";
        continue;
      }
      const std::size_t ex = line.find("// EXPECT: ");
      if (ex != std::string::npos) expected.push_back(line.substr(ex + 11));
    }
    if (virtualPath.empty()) {
      std::cerr << path.filename().string()
                << ": FAIL (missing `// dynbcast-lint-fixture: path=...`)\n";
      ++failures;
      continue;
    }

    LintContext ctx;
    ctx.layers = &*layers;
    ctx.testsCorpus = knownTests;
    SourceFile file = loadSource(path, virtualPath);
    lintOne(ctx, file);

    std::vector<std::string> actual;
    std::sort(ctx.diags.begin(), ctx.diags.end());
    for (const Diagnostic& d : ctx.diags) {
      actual.push_back(std::to_string(d.line) + ": [" + d.rule + "] " +
                       d.message);
    }
    std::sort(expected.begin(), expected.end(), [](const std::string& a,
                                                   const std::string& b) {
      // Numeric-aware sort on the leading line number, then text.
      const auto num = [](const std::string& s) {
        return std::stoul(s.substr(0, s.find(':')));
      };
      const unsigned long na = num(a), nb = num(b);
      if (na != nb) return na < nb;
      return a < b;
    });
    if (actual == expected) {
      std::cout << path.filename().string() << ": ok (" << actual.size()
                << " diagnostic(s))\n";
      continue;
    }
    ++failures;
    std::cout << path.filename().string() << ": FAIL\n";
    std::cout << "  expected " << expected.size() << " diagnostic(s):\n";
    for (const std::string& e : expected) std::cout << "    " << e << "\n";
    std::cout << "  actual " << actual.size() << " diagnostic(s):\n";
    for (const std::string& a : actual) std::cout << "    " << a << "\n";
  }
  std::cout << fixtures.size() - failures << "/" << fixtures.size()
            << " fixtures ok\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::optional<fs::path> selfTestDir;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const RuleDoc& r : kRules) {
        std::cout << r.id << "\n    " << r.summary << "\n";
      }
      return 0;
    }
    if (startsWith(arg, "--root=")) {
      root = arg.substr(7);
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (startsWith(arg, "--self-test=")) {
      selfTestDir = arg.substr(12);
    } else if (arg == "--self-test" && i + 1 < argc) {
      selfTestDir = argv[++i];
    } else if (startsWith(arg, "--")) {
      std::cerr << "dynbcast_lint: unknown option " << arg << "\n"
                << "usage: dynbcast_lint [--root DIR] [dirs...] | "
                   "--self-test DIR | --list-rules\n";
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (selfTestDir) return runSelfTest(root, *selfTestDir);
  if (dirs.empty()) dirs = {"src", "tools", "bench", "tests", "examples"};
  return runTree(root, dirs);
}
