// Quickstart: simulate the broadcast game end to end in ~40 lines of
// library usage — name an adversary (and optionally a dynamics model) by
// spec string, run it, check the relevant bound.
//
//   $ quickstart [--n=16] [--seed=42] [--adversary=greedy-delay]
//                [--dynamics=rooted-tree]
//
// The --adversary flag takes any AdversaryRegistry spec (try
// "freeze-path:depth=3", "beam:width=64"); --dynamics takes any
// DynamicsRegistry graph model (try "edge-markovian:p=0.2,q=0.1" or
// "t-interval:T=4" — under a graph model the adversary has no move, so
// --adversary is ignored). `dynbcast list` prints both menus.
#include <exception>
#include <iostream>
#include <memory>

#include "src/adversary/registry.h"
#include "src/bounds/theorem.h"
#include "src/dynamics/registry.h"
#include "src/support/options.h"

namespace {

int run(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const std::size_t n = opts.getUInt("n", 16);
  const std::uint64_t seed = opts.getUInt("seed", 42);
  const std::string spec = opts.getString("adversary", "greedy-delay");
  const std::string dynamics = opts.getString("dynamics", "rooted-tree");

  std::cout << "dynbcast quickstart: broadcast on dynamic networks\n";

  if (dynamics != "rooted-tree") {
    // A model-zoo dynamics: the graphs come from the model, not from an
    // adversary. Resolve the spec, run to completion, report the rate.
    std::cout << "n = " << n << " processes, seed = " << seed
              << ", dynamics = " << dynamics << "\n\n";
    const std::unique_ptr<DynamicsModel> model =
        DynamicsRegistry::instance().make(dynamics, n, seed);
    const BroadcastRun run =
        runDynamicsBroadcast(n, *model, model->defaultRoundCap());
    if (!run.completed) {
      std::cout << "broadcast did not complete within the model's stall "
                   "cap of "
                << model->defaultRoundCap() << " rounds\n";
      return 1;
    }
    std::cout << "broadcast completed after " << run.rounds << " rounds "
              << "(class " << dynamicsClassName(model->graphClass())
              << ", rounds/n = "
              << static_cast<double>(run.rounds) / static_cast<double>(n)
              << ")\n"
              << "compare the paper's rooted-tree regime: t* is Theta(n) "
                 "there, logarithmic for nonsplit models\n";
    return 0;
  }

  std::cout << "n = " << n << " processes, seed = " << seed
            << ", adversary = " << spec << "\n\n";

  // 1. Resolve the adversary spec through the registry. Adversaries are
  //    data: the same string works in --adversaries sweep lists, scenario
  //    specs, and the dynbcast CLI.
  const std::unique_ptr<Adversary> adversary =
      AdversaryRegistry::instance().make(spec, n, seed);

  // 2. Run the synchronous game until some process has been heard by all.
  const BroadcastRun run = runAdversary(n, *adversary, defaultRoundCap(n));

  if (!run.completed) {
    std::cout << "ERROR: run hit the round cap — this would falsify "
                 "Theorem 3.1!\n";
    return 1;
  }
  std::cout << "broadcast completed after " << run.rounds << " rounds\n";

  // 3. Compare against the paper's Theorem 3.1.
  const TheoremCheck check = checkTheorem31(n, run.rounds);
  std::cout << "Theorem 3.1 bracket: [" << check.lower << ", " << check.upper
            << "]  measured t*/n = " << check.ratio << "\n";
  std::cout << (check.withinUpper ? "upper bound respected ✓"
                                  : "UPPER BOUND VIOLATED ✗")
            << "\n";
  std::cout << "the adversary "
            << (check.witnessesLower
                    ? "witnesses the paper's lower bound ✓"
                    : "did not reach the optimal lower-bound regime "
                      "(heuristic play)")
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Bad spec strings throw std::invalid_argument with a registry
  // suggestion; surface them as a friendly error, not a terminate().
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "quickstart: " << e.what() << '\n';
    return 2;
  }
}
