// Quickstart: simulate the broadcast game end to end in ~30 lines of
// library usage — name an adversary by spec string, run it, check
// Theorem 3.1.
//
//   $ quickstart [--n=16] [--seed=42] [--adversary=greedy-delay]
//
// The --adversary flag takes any registry spec (try
// "freeze-path:depth=3", "beam:width=64", or `dynbcast list` for the
// full menu).
#include <iostream>
#include <memory>

#include "src/adversary/registry.h"
#include "src/bounds/theorem.h"
#include "src/support/options.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const std::size_t n = opts.getUInt("n", 16);
  const std::uint64_t seed = opts.getUInt("seed", 42);
  const std::string spec = opts.getString("adversary", "greedy-delay");

  std::cout << "dynbcast quickstart: broadcast on dynamic rooted trees\n";
  std::cout << "n = " << n << " processes, seed = " << seed
            << ", adversary = " << spec << "\n\n";

  // 1. Resolve the adversary spec through the registry. Adversaries are
  //    data: the same string works in --adversaries sweep lists, scenario
  //    specs, and the dynbcast CLI.
  const std::unique_ptr<Adversary> adversary =
      AdversaryRegistry::instance().make(spec, n, seed);

  // 2. Run the synchronous game until some process has been heard by all.
  const BroadcastRun run = runAdversary(n, *adversary, defaultRoundCap(n));

  if (!run.completed) {
    std::cout << "ERROR: run hit the round cap — this would falsify "
                 "Theorem 3.1!\n";
    return 1;
  }
  std::cout << "broadcast completed after " << run.rounds << " rounds\n";

  // 3. Compare against the paper's Theorem 3.1.
  const TheoremCheck check = checkTheorem31(n, run.rounds);
  std::cout << "Theorem 3.1 bracket: [" << check.lower << ", " << check.upper
            << "]  measured t*/n = " << check.ratio << "\n";
  std::cout << (check.withinUpper ? "upper bound respected ✓"
                                  : "UPPER BOUND VIOLATED ✗")
            << "\n";
  std::cout << "the adversary "
            << (check.witnessesLower
                    ? "witnesses the paper's lower bound ✓"
                    : "did not reach the optimal lower-bound regime "
                      "(heuristic play)")
            << "\n";
  return 0;
}
