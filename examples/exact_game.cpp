// Exact game: solve the broadcast game exhaustively for a tiny n and
// compare the true optimum with the paper's bounds and our heuristics.
//
//   $ exact_game [--n=4]
#include <iostream>

#include "src/adversary/exact_solver.h"
#include "src/adversary/portfolio.h"
#include "src/bounds/theorem.h"
#include "src/support/options.h"
#include "src/tree/enumerate.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const std::size_t n = opts.getUInt("n", 4);
  if (n < 2 || n > 6) {
    std::cout << "exact solving is practical for 2 <= n <= 6 (got " << n
              << ")\n";
    return 1;
  }

  std::cout << "exact broadcast game on n = " << n << " processes\n";
  std::cout << "adversary move pool |T_n| = " << rootedTreeCount(n)
            << " rooted trees\n\n";

  const ExactResult exact = ExactSolver(n).solve();
  const TheoremCheck check = checkTheorem31(n, exact.tStar);

  std::cout << "exact game value  t*(T_" << n << ") = " << exact.tStar
            << '\n';
  std::cout << "Theorem 3.1 bracket: [" << check.lower << ", " << check.upper
            << "]\n";
  std::cout << "states memoized: " << exact.statesMemoized
            << ", successors expanded: " << exact.successorsExpanded << '\n';

  const PortfolioResult heuristics = runPortfolio(n, 1);
  std::cout << "\nbest heuristic adversary: " << heuristics.bestName
            << " achieving " << heuristics.bestRounds << " of "
            << exact.tStar << " optimal rounds\n";

  std::cout << "\none optimal line of play:\n";
  ExactSolver replaySolver(n);
  for (const RootedTree& move : replaySolver.optimalPlay()) {
    std::cout << "  " << move.toString() << '\n';
  }

  if (!check.withinUpper) {
    std::cout << "UPPER BOUND VIOLATION — impossible if Theorem 3.1 holds\n";
    return 1;
  }
  return 0;
}
