// Matrix evolution: watch the paper's central object — the adjacency
// matrix of the product graph — evolve round by round under a delaying
// adversary, with the potential function and completion timeline.
//
//   $ matrix_evolution [--n=12] [--seed=3] [--render=1] [--csv=path]
#include <iostream>

#include "src/adversary/adaptive.h"
#include "src/analysis/csv.h"
#include "src/analysis/evolution.h"
#include "src/analysis/render.h"
#include "src/support/options.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const std::size_t n = opts.getUInt("n", 12);
  const std::uint64_t seed = opts.getUInt("seed", 3);
  const bool render = opts.getBool("render", true);

  std::cout << "matrix evolution under greedy-delay, n = " << n << "\n\n";

  GreedyDelayAdversary adversary(n, seed);
  bool completed = false;
  const SimTrace trace = recordBroadcastTrace(
      n,
      [&adversary](const BroadcastSim& s) { return adversary.nextTree(s); },
      defaultRoundCap(n), seed, &completed);

  if (render) {
    // Replay and render a few snapshots.
    BroadcastSim sim(n);
    const std::size_t snapshots[] = {1, trace.roundCount() / 2,
                                     trace.roundCount()};
    std::size_t nextSnapshot = 0;
    for (std::size_t r = 0; r < trace.roundCount(); ++r) {
      sim.applyTree(trace.trees()[r]);
      if (nextSnapshot < 3 && sim.round() == snapshots[nextSnapshot]) {
        std::cout << renderHeardMatrix(sim) << '\n';
        ++nextSnapshot;
      }
    }
  }

  const EvolutionSummary summary = analyzeTrace(trace);
  std::cout << "broadcast round (t*): " << summary.broadcastRound
            << (completed ? "" : " (incomplete!)") << '\n';
  std::cout << "potential Φ per round: " << sparkline(summary.potential)
            << '\n';
  std::cout << "min potential drop per round: "
            << summary.minPotentialDrop()
            << " (the paper's ≥1-new-edge-per-round argument)\n";

  std::cout << "\nper-process completion timeline (0 = never):\n";
  std::cout << "  heard-everyone rounds:";
  for (const std::size_t r : summary.heardAllAt) std::cout << ' ' << r;
  std::cout << "\n  heard-by-everyone rounds:";
  for (const std::size_t r : summary.coveredAllAt) std::cout << ' ' << r;
  std::cout << '\n';

  if (opts.has("csv")) {
    writeFile(opts.getString("csv", "evolution.csv"), trace.toCsv());
    std::cout << "wrote per-round metrics CSV\n";
  }
  return 0;
}
