// Adversary duel: every built-in adversary fights the same instance; the
// table shows who delays broadcast longest. This is the workload behind
// the paper's max in Definition 2.3.
//
//   $ adversary_duel [--n=32] [--seed=7]
#include <iostream>

#include "src/adversary/portfolio.h"
#include "src/bounds/theorem.h"
#include "src/support/options.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const std::size_t n = opts.getUInt("n", 32);
  const std::uint64_t seed = opts.getUInt("seed", 7);

  std::cout << "adversary duel at n = " << n << " (seed " << seed << ")\n\n";
  const PortfolioResult result = runPortfolio(n, seed);

  TextTable table({"adversary", "t*", "t*/n", "vs static path"});
  for (const auto& e : result.entries) {
    const double ratio = static_cast<double>(e.rounds) /
                         static_cast<double>(n);
    const std::int64_t delta = static_cast<std::int64_t>(e.rounds) -
                               static_cast<std::int64_t>(n - 1);
    table.row()
        .add(e.name)
        .add(static_cast<std::uint64_t>(e.rounds))
        .add(ratio, 3)
        .add((delta >= 0 ? "+" : "") + std::to_string(delta));
  }
  std::cout << table.render() << '\n';

  const TheoremCheck check = checkTheorem31(n, result.bestRounds);
  std::cout << "champion: " << result.bestName << " with t* = "
            << result.bestRounds << "\n"
            << "Theorem 3.1 bracket [" << check.lower << ", " << check.upper
            << "]; champion ratio " << check.ratio << "\n";
  return 0;
}
