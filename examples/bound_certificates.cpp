// Bound certificates: produce an auditable artifact for one instance — a
// recorded trace whose replay independently confirms the claimed t*, plus
// the Theorem 3.1 verdict. This is how a skeptical reviewer would consume
// the library's lower-bound witnesses.
//
//   $ bound_certificates [--n=24] [--seed=5] [--out=certificate.csv]
#include <iostream>

#include "src/adversary/adaptive.h"
#include "src/analysis/csv.h"
#include "src/bounds/theorem.h"
#include "src/sim/trace.h"
#include "src/support/options.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const std::size_t n = opts.getUInt("n", 24);
  const std::uint64_t seed = opts.getUInt("seed", 5);

  std::cout << "certifying a lower-bound witness at n = " << n << "\n\n";

  GreedyDelayAdversary adversary(n, seed);
  bool completed = false;
  const SimTrace trace = recordBroadcastTrace(
      n,
      [&adversary](const BroadcastSim& s) { return adversary.nextTree(s); },
      defaultRoundCap(n), seed, &completed);

  if (!completed) {
    std::cout << "run hit the cap — no certificate\n";
    return 1;
  }

  // Independent replay: a fresh simulator re-executes the recorded tree
  // sequence and must reach broadcast at the same round with identical
  // per-round metrics (replayAndVerify throws otherwise).
  const std::size_t replayed = trace.replayAndVerify();
  std::cout << "claimed t*: " << trace.roundCount() << '\n';
  std::cout << "independent replay confirms: " << replayed << '\n';

  const TheoremCheck check = checkTheorem31(n, replayed);
  std::cout << "certificate: t*(T_" << n << ") >= " << replayed
            << " (witnessed), theorem bracket [" << check.lower << ", "
            << check.upper << "]\n";

  if (opts.has("out")) {
    writeFile(opts.getString("out", "certificate.csv"), trace.toCsv());
    std::cout << "trace exported for external audit\n";
  }
  return replayed == trace.roundCount() ? 0 : 1;
}
