// Witness search: find, verify, and display a long adversarial tree
// sequence — a constructive lower-bound witness for t*(T_n) beyond the
// reach of exhaustive solving.
//
//   $ witness_search [--n=16] [--seed=7] [--beam=256] [--restarts=3]
#include <iostream>

#include "src/adversary/beam.h"
#include "src/bounds/theorem.h"
#include "src/support/options.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const std::size_t n = opts.getUInt("n", 16);
  const std::uint64_t seed = opts.getUInt("seed", 7);
  const std::size_t restarts = opts.getUInt("restarts", 3);

  BeamConfig cfg;
  cfg.beamWidth = opts.getUInt("beam", 256);
  cfg.randomMovesPerState = 8;
  cfg.diversityPercent = 40;

  std::cout << "beam witness search at n = " << n << " (beam "
            << cfg.beamWidth << ", " << restarts << " restarts)\n\n";

  BeamResult best;
  for (std::size_t r = 0; r < restarts; ++r) {
    BeamResult attempt = beamSearchWitness(n, seed + r, cfg);
    std::cout << "restart " << r << ": " << attempt.rounds << " rounds ("
              << attempt.statesExpanded << " states)\n";
    if (attempt.rounds > best.rounds) best = std::move(attempt);
  }

  const std::size_t verified = verifyWitness(n, best.witness);
  std::cout << "\nbest witness: " << best.rounds
            << " rounds; independent replay says " << verified << '\n';

  const TheoremCheck check = checkTheorem31(n, verified);
  std::cout << "Theorem 3.1: t*(T_" << n << ") >= " << verified
            << ", bracket [" << check.lower << ", " << check.upper
            << "], ratio " << check.ratio << '\n';
  std::cout << "static baseline (best single tree): " << n - 1 << " — "
            << (verified > n - 1 ? "beaten: dynamic adversaries are "
                                   "strictly stronger"
                                 : "not beaten at this search effort")
            << '\n';

  std::cout << "\nfirst five moves of the witness:\n";
  for (std::size_t i = 0; i < best.witness.size() && i < 5; ++i) {
    std::cout << "  round " << i + 1 << ": " << best.witness[i].toString()
              << '\n';
  }
  return verified == best.rounds ? 0 : 1;
}
