#include "src/support/options.h"

#include <gtest/gtest.h>

namespace dynbcast {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(OptionsTest, KeyEqualsValue) {
  const Options o = parse({"--n=32"});
  EXPECT_EQ(o.getInt("n", 0), 32);
}

TEST(OptionsTest, KeySpaceValue) {
  const Options o = parse({"--seed", "99"});
  EXPECT_EQ(o.getUInt("seed", 0), 99u);
}

TEST(OptionsTest, BareFlag) {
  const Options o = parse({"--verbose"});
  EXPECT_TRUE(o.has("verbose"));
  EXPECT_TRUE(o.getBool("verbose", false));
}

TEST(OptionsTest, MissingUsesFallback) {
  const Options o = parse({});
  EXPECT_EQ(o.getInt("n", 7), 7);
  EXPECT_EQ(o.getString("mode", "fast"), "fast");
  EXPECT_DOUBLE_EQ(o.getDouble("p", 0.5), 0.5);
  EXPECT_FALSE(o.has("n"));
}

TEST(OptionsTest, BoolSpellings) {
  EXPECT_TRUE(parse({"--x=true"}).getBool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).getBool("x", false));
  EXPECT_FALSE(parse({"--x=false"}).getBool("x", true));
  EXPECT_FALSE(parse({"--x=0"}).getBool("x", true));
  EXPECT_THROW(static_cast<void>(parse({"--x=maybe"}).getBool("x", true)),
               std::invalid_argument);
}

TEST(OptionsTest, PositionalCollected) {
  const Options o = parse({"file1", "--n=3", "file2"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "file1");
  EXPECT_EQ(o.positional()[1], "file2");
}

TEST(OptionsTest, ProgramNameKept) {
  const Options o = parse({});
  EXPECT_EQ(o.programName(), "prog");
}

TEST(ParseSizeListTest, CommaList) {
  const auto v = parseSizeList("8,16,32");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 8u);
  EXPECT_EQ(v[2], 32u);
}

TEST(ParseSizeListTest, GeometricRange) {
  const auto v = parseSizeList("8:64:2");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 8u);
  EXPECT_EQ(v[3], 64u);
}

TEST(ParseSizeListTest, RangeDefaultStep) {
  const auto v = parseSizeList("4:16");
  ASSERT_EQ(v.size(), 3u);  // 4, 8, 16
}

TEST(ParseSizeListTest, SingleValue) {
  const auto v = parseSizeList("42");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 42u);
}

TEST(ParseSizeListTest, EmptyGivesEmpty) {
  EXPECT_TRUE(parseSizeList("").empty());
}

TEST(ParseSizeListTest, BadStepThrows) {
  EXPECT_THROW(parseSizeList("4:16:1"), std::invalid_argument);
}

}  // namespace
}  // namespace dynbcast
