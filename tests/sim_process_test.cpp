#include "src/sim/process_sim.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/support/rng.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

TEST(ProcessSimTest, InitialKnowledgeIsSelf) {
  ProcessSim sim(5);
  for (std::size_t id = 0; id < 5; ++id) {
    EXPECT_EQ(sim.process(id).knowledge, std::set<std::size_t>{id});
  }
  EXPECT_FALSE(sim.broadcastDone());
}

TEST(ProcessSimTest, MessagesFollowTreeEdges) {
  ProcessSim sim(4);
  sim.applyTree(makePath(4));
  // Path 0→1→2→3: three tree messages.
  EXPECT_EQ(sim.lastRoundMessages().size(), 3u);
  for (const Message& m : sim.lastRoundMessages()) {
    EXPECT_EQ(m.receiver, m.sender + 1);
  }
}

TEST(ProcessSimTest, PayloadSnapshotsStartOfRound) {
  ProcessSim sim(3);
  sim.applyTree(makePath(3));
  // Round 1 on 0→1→2: node 2 must receive {1}, not {0,1} — process 1's
  // message was composed before it learned about 0.
  EXPECT_EQ(sim.process(2).knowledge, (std::set<std::size_t>{1, 2}));
  EXPECT_EQ(sim.process(1).knowledge, (std::set<std::size_t>{0, 1}));
}

TEST(ProcessSimTest, StarBroadcastsInOneRound) {
  ProcessSim sim(5);
  sim.applyTree(makeStar(5, 3));
  EXPECT_TRUE(sim.broadcastDone());
  EXPECT_EQ(sim.knownToAll(), std::set<std::size_t>{3});
}

TEST(ProcessSimTest, PathBroadcastTakesNMinus1) {
  const std::size_t n = 7;
  ProcessSim sim(n);
  std::size_t rounds = 0;
  while (!sim.broadcastDone()) {
    sim.applyTree(makePath(n));
    ++rounds;
    ASSERT_LE(rounds, n);
  }
  EXPECT_EQ(rounds, n - 1);
  EXPECT_EQ(sim.knownToAll(), std::set<std::size_t>{0});
}

TEST(ProcessSimTest, KnowledgeMonotone) {
  Rng rng(5);
  ProcessSim sim(8);
  std::vector<std::set<std::size_t>> prev(8);
  for (std::size_t id = 0; id < 8; ++id) prev[id] = sim.process(id).knowledge;
  for (int r = 0; r < 20; ++r) {
    sim.applyTree(randomRootedTree(8, rng));
    for (std::size_t id = 0; id < 8; ++id) {
      const auto& now = sim.process(id).knowledge;
      EXPECT_TRUE(std::includes(now.begin(), now.end(), prev[id].begin(),
                                prev[id].end()));
      prev[id] = now;
    }
  }
}

TEST(ProcessSimTest, GossipDetectsFullKnowledge) {
  ProcessSim sim(3);
  // Alternate forward/backward paths until everyone knows everyone.
  const RootedTree fwd = makePath(3);
  const RootedTree bwd = makePath({2, 1, 0});
  int rounds = 0;
  while (!sim.gossipDone()) {
    sim.applyTree(rounds % 2 == 0 ? fwd : bwd);
    ++rounds;
    ASSERT_LE(rounds, 20);
  }
  EXPECT_TRUE(sim.broadcastDone());
}

TEST(ProcessSimTest, MessageCountAccumulates) {
  ProcessSim sim(6);
  sim.applyTree(makeStar(6, 0));   // 5 messages
  sim.applyTree(makePath(6));      // 5 messages
  EXPECT_EQ(sim.messagesDelivered(), 10u);
}

TEST(ProcessSimTest, LeafIdsNeverSpreadUnderStaticTree) {
  // The gossip-never-completes observation: under a static tree a leaf's
  // id stays known only to the leaf.
  ProcessSim sim(5);
  const RootedTree path = makePath(5);
  for (int r = 0; r < 10; ++r) sim.applyTree(path);
  for (std::size_t id = 0; id < 4; ++id) {
    EXPECT_EQ(sim.process(id).knowledge.count(4), 0u);
  }
  EXPECT_FALSE(sim.gossipDone());
}

}  // namespace
}  // namespace dynbcast
