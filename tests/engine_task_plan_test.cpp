// Task-plan equivalence: the serializable (spec, position) plan must
// reproduce runScenario() exactly — field for field — on every path.
// This is the contract the whole service layer stands on: a worker
// executing position p in another process lands the same bytes the
// engine would.

#include <gtest/gtest.h>

#include "src/engine/scenario.h"
#include "src/engine/task_plan.h"
#include "src/support/seed_sequence.h"

namespace dynbcast {
namespace {

[[nodiscard]] ExperimentEngine makeEngine(std::size_t jobs) {
  EngineConfig config;
  config.jobs = jobs;
  return ExperimentEngine(config);
}

void expectRowsEqual(const std::vector<SweepRow>& expected,
                     const std::vector<SweepRow>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].n, actual[i].n) << "row " << i;
    EXPECT_EQ(expected[i].seedIndex, actual[i].seedIndex) << "row " << i;
    EXPECT_EQ(expected[i].instanceSeed, actual[i].instanceSeed)
        << "row " << i;
    EXPECT_EQ(expected[i].member, actual[i].member) << "row " << i;
    EXPECT_EQ(expected[i].rounds, actual[i].rounds) << "row " << i;
    EXPECT_EQ(expected[i].completed, actual[i].completed) << "row " << i;
  }
}

[[nodiscard]] std::vector<SweepRow> rowsFromPlan(const ScenarioSpec& spec) {
  std::vector<SweepRow> rows;
  for (std::size_t p = 0; p < scenarioRowCount(spec); ++p) {
    rows.push_back(runScenarioRow(spec, p));
  }
  return rows;
}

TEST(TaskPlanTest, PlanFieldsAreAPureFunctionOfPosition) {
  ScenarioSpec spec;
  spec.sizes = {4, 6, 8};
  spec.seedsPerSize = 2;
  spec.masterSeed = 11;

  const std::size_t width = scenarioMembersPerInstance(spec);
  ASSERT_GT(width, 1u);  // the standard portfolio
  ASSERT_EQ(scenarioRowCount(spec), 3 * 2 * width);

  const SeedSequence seeds(spec.masterSeed);
  for (std::size_t p = 0; p < scenarioRowCount(spec); ++p) {
    const ScenarioRowPlan plan = planScenarioRow(spec, p);
    EXPECT_EQ(plan.position, p);
    EXPECT_EQ(plan.memberIndex, p % width);
    const std::size_t instance = p / width;
    EXPECT_EQ(plan.seedIndex, instance % spec.seedsPerSize);
    EXPECT_EQ(plan.sizeIndex, instance / spec.seedsPerSize);
    EXPECT_EQ(plan.n, spec.sizes[plan.sizeIndex]);
    EXPECT_EQ(plan.instanceSeed, seeds.at(instance));
    EXPECT_EQ(plan.memberSpec,
              resolvedScenarioMemberSpecs(spec)[plan.memberIndex]);
  }
}

// Broadcast over rooted trees runs through ExperimentEngine::runSweep
// (with replicate batching) — the one path NOT implemented on the plan,
// so this equivalence is the anti-drift pin.
TEST(TaskPlanTest, BroadcastTreePathMatchesRunSweep) {
  ScenarioSpec spec;
  spec.sizes = {4, 6, 8};
  spec.seedsPerSize = 2;
  spec.masterSeed = 7;

  ExperimentEngine engine = makeEngine(4);
  const ScenarioResult direct = runScenario(spec, engine);
  expectRowsEqual(direct.rows, rowsFromPlan(spec));
}

TEST(TaskPlanTest, GossipPathMatchesRunScenario) {
  ScenarioSpec spec;
  spec.objective = Objective::kGossip;
  spec.sizes = {4, 6};
  spec.seedsPerSize = 2;
  spec.masterSeed = 5;

  ExperimentEngine engine = makeEngine(4);
  const ScenarioResult direct = runScenario(spec, engine);
  expectRowsEqual(direct.rows, rowsFromPlan(spec));
}

TEST(TaskPlanTest, GraphModelPathMatchesRunScenario) {
  ScenarioSpec spec;
  spec.dynamics = "edge-markovian:p=0.3,q=0.3";
  spec.sizes = {6, 8, 10};
  spec.seedsPerSize = 2;
  spec.masterSeed = 3;

  ExperimentEngine engine = makeEngine(4);
  const ScenarioResult direct = runScenario(spec, engine);
  expectRowsEqual(direct.rows, rowsFromPlan(spec));

  // And the plan's aggregation reproduces the per-instance view.
  const std::vector<SweepInstance> instances =
      aggregateScenarioInstances(spec, direct.rows);
  ASSERT_EQ(instances.size(), direct.instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(instances[i].n, direct.instances[i].n);
    EXPECT_EQ(instances[i].seedIndex, direct.instances[i].seedIndex);
    EXPECT_EQ(instances[i].instanceSeed, direct.instances[i].instanceSeed);
    EXPECT_EQ(instances[i].portfolio.bestRounds,
              direct.instances[i].portfolio.bestRounds);
    EXPECT_EQ(instances[i].portfolio.bestName,
              direct.instances[i].portfolio.bestName);
  }
}

// The legacy generator-list alias resolves its members through the
// dynamics axis; the plan must canonicalize the same way.
TEST(TaskPlanTest, GeneratorListAliasMatchesRunScenario) {
  ScenarioSpec spec;
  spec.dynamics = "nonsplit";
  spec.sizes = {5, 7};
  spec.seedsPerSize = 2;
  spec.masterSeed = 9;

  ExperimentEngine engine = makeEngine(2);
  const ScenarioResult direct = runScenario(spec, engine);
  expectRowsEqual(direct.rows, rowsFromPlan(spec));
}

TEST(TaskPlanTest, BeamSeedMatchesSweepDerivation) {
  // The CLI sweep derives beam task seeds as
  // engine.map(count, masterSeed ^ 0xbea3, ...) — i.e.
  // SeedSequence(masterSeed ^ salt).at(sizeIndex).
  const std::uint64_t masterSeed = 1;
  const SeedSequence seeds(masterSeed ^ kBeamSeedSalt);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(scenarioBeamSeed(masterSeed, i), seeds.at(i));
  }
}

}  // namespace
}  // namespace dynbcast
