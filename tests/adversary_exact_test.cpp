#include "src/adversary/exact_solver.h"

#include <gtest/gtest.h>

#include "src/bounds/bounds.h"
#include "src/graph/properties.h"
#include "src/sim/broadcast_sim.h"
#include "src/support/assert.h"
#include "src/tree/families.h"

namespace dynbcast {
namespace {

TEST(EncodingTest, IdentityEncodesDiagonal) {
  const std::uint64_t s = ExactSolver::encodeIdentity(4);
  for (std::size_t y = 0; y < 4; ++y) {
    const std::uint64_t row = (s >> (y * 8)) & 0xFF;
    EXPECT_EQ(row, std::uint64_t{1} << y);
  }
}

TEST(EncodingTest, ApplyTreeMatchesRecurrence) {
  // Path 0→1→2 on the identity: heard(1) gains 0, heard(2) gains 1.
  const std::uint64_t s0 = ExactSolver::encodeIdentity(3);
  const std::uint64_t s1 = ExactSolver::applyTreeEncoded(s0, {0, 0, 1});
  EXPECT_EQ((s1 >> 0) & 0xFF, 0b001u);   // heard(0) = {0}
  EXPECT_EQ((s1 >> 8) & 0xFF, 0b011u);   // heard(1) = {0,1}
  EXPECT_EQ((s1 >> 16) & 0xFF, 0b110u);  // heard(2) = {1,2}
}

TEST(EncodingTest, BroadcastDetection) {
  // Make node 2 heard by everyone on n = 3.
  std::uint64_t s = ExactSolver::encodeIdentity(3);
  s |= (std::uint64_t{1} << 2) << 0;
  s |= (std::uint64_t{1} << 2) << 8;
  EXPECT_TRUE(ExactSolver::isBroadcastState(s, 3));
  EXPECT_FALSE(
      ExactSolver::isBroadcastState(ExactSolver::encodeIdentity(3), 3));
}

TEST(EncodingTest, SingleStarRoundIsBroadcast) {
  const std::uint64_t s0 = ExactSolver::encodeIdentity(4);
  // Star centered at 1.
  const std::uint64_t s1 = ExactSolver::applyTreeEncoded(s0, {1, 1, 1, 1});
  EXPECT_TRUE(ExactSolver::isBroadcastState(s1, 4));
}

TEST(ExactSolverTest, RejectsOutOfRangeN) {
  EXPECT_THROW(ExactSolver(1), AssertionError);
  EXPECT_THROW(ExactSolver(17), AssertionError);
}

TEST(ExactSolverTest, ExhaustiveQueriesRejectInfeasiblePool) {
  // n = 9 is constructible (row-array encoding), but the exhaustive
  // queries need the full 9^8 = 43M move pool — only witnessPlay works.
  ExactSolver solver(9);
  EXPECT_THROW((void)solver.solve(), AssertionError);
  EXPECT_THROW((void)solver.optimalPlay(), AssertionError);
}

TEST(ExactSolverTest, N2IsOneRound) {
  // Both trees on 2 nodes broadcast immediately: t*(T_2) = 1, which also
  // equals the paper's lower bound ⌈(3·2−1)/2⌉−2 = 1.
  ExactSolver solver(2);
  const ExactResult r = solver.solve();
  EXPECT_EQ(r.tStar, 1u);
  EXPECT_EQ(r.tStar, bounds::lowerBound(2));
}

TEST(ExactSolverTest, CanonicalizationPreservesValue) {
  for (const std::size_t n : {2u, 3u, 4u}) {
    ExactSolver with(n, {.canonicalize = true});
    ExactSolver without(n, {.canonicalize = false});
    const ExactResult a = with.solve();
    const ExactResult b = without.solve();
    EXPECT_EQ(a.tStar, b.tStar) << "n=" << n;
    EXPECT_LE(a.statesMemoized, b.statesMemoized) << "n=" << n;
  }
}

class ExactBoundsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExactBoundsTest, ValueRespectsTheorem31) {
  const std::size_t n = GetParam();
  ExactSolver solver(n);
  const ExactResult r = solver.solve();
  // The exact game value must sit inside the theorem's bracket.
  EXPECT_GE(r.tStar, bounds::lowerBound(n)) << "n=" << n;
  EXPECT_LE(r.tStar, bounds::linearUpper(n)) << "n=" << n;
  // And strictly above the static-path baseline for n ≥ 3 (the adversary
  // can always do at least as well as any single tree).
  EXPECT_GE(r.tStar, n - 1) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(SmallN, ExactBoundsTest, ::testing::Values(2, 3, 4));

TEST(OptimalPlayTest, SequenceAchievesGameValueOnSimulator) {
  // The extracted optimal line of play is a machine-checkable
  // certificate: replaying it reaches broadcast exactly at t*(T_n).
  for (const std::size_t n : {2u, 3u, 4u, 5u}) {
    ExactSolver solver(n);
    const ExactResult exact = solver.solve();
    const std::vector<RootedTree> play = solver.optimalPlay();
    EXPECT_EQ(play.size(), exact.tStar) << "n=" << n;
    BroadcastSim sim(n);
    for (std::size_t r = 0; r < play.size(); ++r) {
      EXPECT_FALSE(sim.broadcastDone())
          << "broadcast before the sequence ended, n=" << n;
      sim.applyTree(play[r]);
    }
    EXPECT_TRUE(sim.broadcastDone()) << "n=" << n;
  }
}

TEST(OptimalPlayTest, AllMovesAreValidTrees) {
  ExactSolver solver(4);
  for (const RootedTree& t : solver.optimalPlay()) {
    EXPECT_EQ(t.size(), 4u);
    EXPECT_TRUE(isRootedTreeWithSelfLoops(t.toMatrix()));
  }
}

TEST(WitnessPlayTest, MatchesExactValueWhereSolveIsFeasible) {
  // For n ≤ 5 the exact value is known (= the paper's lower bound): the
  // witness search must find a play of exactly that length, and the
  // play must replay to its own length.
  for (const std::size_t n : {2u, 3u, 4u, 5u}) {
    ExactSolver solver(n);
    const std::vector<RootedTree> play =
        solver.witnessPlay(bounds::lowerBound(n));
    EXPECT_EQ(play.size(), bounds::lowerBound(n)) << "n=" << n;
    BroadcastSim sim(n);
    for (std::size_t r = 0; r < play.size(); ++r) {
      EXPECT_FALSE(sim.broadcastDone()) << "n=" << n << " round=" << r;
      sim.applyTree(play[r]);
    }
    EXPECT_TRUE(sim.broadcastDone()) << "n=" << n;
  }
}

TEST(WitnessPlayTest, CertifiesLowerBoundThroughN7) {
  // Beyond solve()'s practical range: a certified line of play reaching
  // ⌈(3n−1)/2⌉−2 rounds (the [14] lower bound) via the complete pool.
  for (const std::size_t n : {6u, 7u}) {
    const std::vector<RootedTree> play =
        ExactSolver(n).witnessPlay(bounds::lowerBound(n));
    EXPECT_EQ(play.size(), bounds::lowerBound(n)) << "n=" << n;
  }
}

TEST(WitnessPlayTest, CertifiesLowerBoundAtN8) {
  const std::vector<RootedTree> play =
      ExactSolver(8).witnessPlay(bounds::lowerBound(8));
  EXPECT_EQ(play.size(), bounds::lowerBound(8));  // = 10
}

TEST(WitnessPlayTest, CertifiesLowerBoundAtN9) {
  // Past the packed-uint64 / exhaustive-pool ceiling: the structured
  // branching pool certifies t*(T_9) >= ⌈26/2⌉−2 = 11.
  const std::vector<RootedTree> play =
      ExactSolver(9).witnessPlay(bounds::lowerBound(9));
  EXPECT_EQ(play.size(), bounds::lowerBound(9));  // = 11
  BroadcastSim sim(9);
  std::size_t completedAt = 0;
  for (std::size_t r = 0; r < play.size(); ++r) {
    sim.applyTree(play[r]);
    if (sim.broadcastDone() && completedAt == 0) completedAt = r + 1;
  }
  EXPECT_EQ(completedAt, play.size());
}

TEST(WitnessPlayTest, ExhaustedBudgetStillReturnsAValidShorterPlay) {
  // A starved search degrades to the longest line it certified — down to
  // the always-available single finishing move — never to an invalid
  // sequence.
  ExactWitnessOptions opts;
  opts.nodeBudget = 0;
  const std::vector<RootedTree> play =
      ExactSolver(9).witnessPlay(bounds::lowerBound(9), opts);
  ASSERT_EQ(play.size(), 1u);
  BroadcastSim sim(9);
  sim.applyTree(play[0]);
  EXPECT_TRUE(sim.broadcastDone());
}

TEST(WitnessPlayTest, ZeroTargetIsEmpty) {
  EXPECT_TRUE(ExactSolver(5).witnessPlay(0).empty());
}

TEST(ExactSolverTest, DepthCapViolationThrows) {
  // A depth cap of 1 is impossible for n = 3 (t* > 1), so the safety net
  // must fire rather than return a wrong value.
  ExactSolver solver(3, {.canonicalize = true, .depthCap = 1});
  EXPECT_THROW((void)solver.solve(), AssertionError);
}

}  // namespace
}  // namespace dynbcast
