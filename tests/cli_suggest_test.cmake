# Unknown-subcommand ergonomics gate: a misspelled subcommand must fail
# (nonzero exit) and suggest the nearest real one. Invoked by ctest with:
#   -DBIN=<dynbcast CLI>
#   -DSUBCOMMAND=<the misspelling to type>
#   -DEXPECT=<the subcommand the CLI must suggest>
execute_process(
  COMMAND ${BIN} ${SUBCOMMAND}
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(run_rc EQUAL 0)
  message(FATAL_ERROR
    "'dynbcast ${SUBCOMMAND}' exited 0 — unknown subcommands must fail")
endif()
string(CONCAT combined "${run_out}" "${run_err}")
if(NOT combined MATCHES "did you mean '${EXPECT}'")
  message(FATAL_ERROR
    "'dynbcast ${SUBCOMMAND}' did not suggest '${EXPECT}'; output was:\n"
    "${combined}")
endif()
