#include "src/adversary/search_tree.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/support/hashing.h"
#include "src/tree/families.h"

namespace dynbcast {
namespace {

TEST(SearchTreeArenaTest, RootLifecycle) {
  SearchTreeArena arena(4);
  const std::uint32_t root = arena.acquireRoot();
  EXPECT_EQ(arena.liveNodes(), 1u);
  EXPECT_EQ(arena.depth(root), 0u);
  EXPECT_EQ(arena.parent(root), SearchTreeArena::kNoNode);
  EXPECT_TRUE(arena.lineage(root).empty());
  arena.release(root);
  EXPECT_EQ(arena.liveNodes(), 0u);
}

TEST(SearchTreeArenaTest, LineageWalksParentChain) {
  SearchTreeArena arena(8);
  const std::uint32_t root = arena.acquireRoot();
  const std::uint32_t a = arena.acquireChild(root, makeStar(4, 0));
  const std::uint32_t b = arena.acquireChild(a, makeStar(4, 1));
  const std::uint32_t c = arena.acquireChild(b, makeStar(4, 2));
  EXPECT_EQ(arena.depth(c), 3u);
  const std::vector<RootedTree> line = arena.lineage(c);
  ASSERT_EQ(line.size(), 3u);
  EXPECT_EQ(line[0], makeStar(4, 0));
  EXPECT_EQ(line[1], makeStar(4, 1));
  EXPECT_EQ(line[2], makeStar(4, 2));
}

TEST(SearchTreeArenaTest, ReleaseCascadesThroughDeadBranches) {
  SearchTreeArena arena(8);
  const std::uint32_t root = arena.acquireRoot();
  const std::uint32_t a = arena.acquireChild(root, makeStar(3, 0));
  const std::uint32_t b = arena.acquireChild(a, makeStar(3, 1));
  // Drop the caller references of the interior nodes: they stay alive
  // because the leaf pins them.
  arena.release(root);
  arena.release(a);
  EXPECT_EQ(arena.liveNodes(), 3u);
  // Releasing the leaf reclaims the whole chain at once.
  arena.release(b);
  EXPECT_EQ(arena.liveNodes(), 0u);
}

TEST(SearchTreeArenaTest, SharedPrefixSurvivesSiblingRelease) {
  SearchTreeArena arena(8);
  const std::uint32_t root = arena.acquireRoot();
  const std::uint32_t left = arena.acquireChild(root, makeStar(3, 0));
  const std::uint32_t right = arena.acquireChild(root, makeStar(3, 1));
  arena.release(root);
  arena.release(left);
  EXPECT_EQ(arena.liveNodes(), 2u);  // root + right
  const std::vector<RootedTree> line = arena.lineage(right);
  ASSERT_EQ(line.size(), 1u);
  EXPECT_EQ(line[0], makeStar(3, 1));
  arena.release(right);
  EXPECT_EQ(arena.liveNodes(), 0u);
}

TEST(SearchTreeArenaTest, RecyclesSlotsWithoutGrowing) {
  SearchTreeArena arena(2);
  const std::size_t cap = arena.capacity();
  // Churn more nodes than the capacity through acquire/release cycles:
  // the free list must recycle slots instead of growing.
  for (int i = 0; i < 10; ++i) {
    const std::uint32_t root = arena.acquireRoot();
    const std::uint32_t child = arena.acquireChild(root, makeStar(3, 0));
    arena.release(root);
    arena.release(child);
  }
  EXPECT_EQ(arena.capacity(), cap);
  EXPECT_EQ(arena.growEvents(), 0u);
  EXPECT_EQ(arena.peakLiveNodes(), 2u);
}

TEST(SearchTreeArenaTest, GrowsPastInitialCapacity) {
  SearchTreeArena arena(1);
  std::vector<std::uint32_t> ids;
  ids.push_back(arena.acquireRoot());
  for (int i = 0; i < 7; ++i) {
    ids.push_back(arena.acquireChild(ids.back(), makeStar(3, 0)));
  }
  EXPECT_EQ(arena.liveNodes(), 8u);
  EXPECT_GT(arena.growEvents(), 0u);
  EXPECT_EQ(arena.lineage(ids.back()).size(), 7u);
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) arena.release(*it);
  EXPECT_EQ(arena.liveNodes(), 0u);
}

TEST(TranspositionTableTest, InsertAndVerifiedHit) {
  // Payloads index this backing store; the predicate compares the real
  // state behind a payload, as the search layers do with heard matrices.
  const std::vector<int> states = {7, 7, 9};
  TranspositionTable table(8);
  const auto first = table.insertOrFind(
      1234, 0, [&](std::uint32_t p) { return states[p] == states[0]; });
  EXPECT_TRUE(first.inserted);
  EXPECT_EQ(first.payload, 0u);
  // Same digest, equal state: a verified hit returning the resident.
  const auto dup = table.insertOrFind(
      1234, 1, [&](std::uint32_t p) { return states[p] == states[1]; });
  EXPECT_FALSE(dup.inserted);
  EXPECT_EQ(dup.payload, 0u);
  EXPECT_EQ(table.verifiedHits(), 1u);
  EXPECT_EQ(table.hashCollisions(), 0u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(TranspositionTableTest, DigestCollisionNeverMergesDistinctStates) {
  // The bugfix this module exists for: two DISTINCT states that happen
  // to share a digest must both survive. The old raw-digest dedup would
  // have silently dropped the second as "seen".
  const std::vector<int> states = {7, 9};
  TranspositionTable table(8);
  const auto a = table.insertOrFind(
      1234, 0, [&](std::uint32_t p) { return states[p] == states[0]; });
  const auto b = table.insertOrFind(
      1234, 1, [&](std::uint32_t p) { return states[p] == states[1]; });
  EXPECT_TRUE(a.inserted);
  EXPECT_TRUE(b.inserted);  // collision detected, probing continued
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.hashCollisions(), 1u);
  EXPECT_EQ(table.verifiedHits(), 0u);
  // Both states are individually retrievable under the shared digest.
  EXPECT_EQ(table.find(1234,
                       [&](std::uint32_t p) { return states[p] == 7; }),
            0u);
  EXPECT_EQ(table.find(1234,
                       [&](std::uint32_t p) { return states[p] == 9; }),
            1u);
}

TEST(TranspositionTableTest, FindMissesAbsentDigest) {
  TranspositionTable table(4);
  EXPECT_EQ(table.find(42, [](std::uint32_t) { return true; }),
            TranspositionTable::kNoPayload);
}

TEST(TranspositionTableTest, ClearKeepsAllocation) {
  TranspositionTable table(4);
  (void)table.insertOrFind(1, 0, [](std::uint32_t) { return true; });
  const std::size_t slots = table.slots();
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.slots(), slots);
  EXPECT_EQ(table.find(1, [](std::uint32_t) { return true; }),
            TranspositionTable::kNoPayload);
  const auto again =
      table.insertOrFind(1, 5, [](std::uint32_t) { return true; });
  EXPECT_TRUE(again.inserted);
  EXPECT_EQ(again.payload, 5u);
}

TEST(TranspositionTableTest, GrowPreservesEntries) {
  TranspositionTable table(0);  // minimal footprint: force rehashing
  std::vector<std::uint64_t> digests;
  for (std::uint32_t i = 0; i < 200; ++i) {
    digests.push_back(hashMix(i + 1));
    const auto r = table.insertOrFind(digests.back(), i,
                                      [&](std::uint32_t p) { return p == i; });
    EXPECT_TRUE(r.inserted);
  }
  EXPECT_EQ(table.size(), 200u);
  for (std::uint32_t i = 0; i < 200; ++i) {
    EXPECT_EQ(
        table.find(digests[i], [&](std::uint32_t p) { return p == i; }), i);
  }
}

TEST(HashingTest, HeardMatrixDigestSeparatesNearbyStates) {
  std::vector<DynBitset> a(4, DynBitset(4));
  for (std::size_t y = 0; y < 4; ++y) a[y].set(y);
  std::vector<DynBitset> b = a;
  b[2].set(3);
  EXPECT_NE(hashHeardMatrix(a), hashHeardMatrix(b));
  EXPECT_EQ(hashHeardMatrix(a), hashHeardMatrix(a));
}

}  // namespace
}  // namespace dynbcast
