#include "src/adversary/beam.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/adversary/exact_solver.h"
#include "src/adversary/lookahead.h"
#include "src/bounds/bounds.h"

namespace dynbcast {
namespace {

BeamConfig testConfig() {
  BeamConfig cfg;
  cfg.beamWidth = 128;
  cfg.randomMovesPerState = 6;
  cfg.diversityPercent = 30;
  return cfg;
}

TEST(BeamWitnessTest, WitnessVerifiesAtClaimedLength) {
  for (const std::size_t n : {4u, 8u, 12u}) {
    const BeamResult r = beamSearchWitness(n, 7, testConfig());
    EXPECT_EQ(verifyWitness(n, r.witness), r.rounds)
        << "witness replay disagrees at n=" << n;
  }
}

TEST(BeamWitnessTest, BeatsStaticPathBaseline) {
  // The central lower-bound-regime claim our search machinery certifies:
  // dynamic adversaries are strictly stronger than any static tree.
  for (const std::size_t n : {8u, 12u, 16u}) {
    const BeamResult r = beamSearchWitness(n, 7, testConfig());
    EXPECT_GT(r.rounds, n - 1) << "n=" << n;
    EXPECT_LE(r.rounds, bounds::linearUpper(n)) << "n=" << n;
  }
}

TEST(BeamWitnessTest, MatchesExactAtTinyN) {
  // At n ≤ 5 the beam should recover the full exact game value.
  for (const std::size_t n : {2u, 3u, 4u, 5u}) {
    const ExactResult exact = ExactSolver(n).solve();
    std::size_t best = 0;
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      best = std::max(best, beamSearchWitness(n, seed, testConfig()).rounds);
    }
    EXPECT_EQ(best, exact.tStar) << "n=" << n;
  }
}

TEST(BeamWitnessTest, DeterministicPerSeed) {
  const BeamResult a = beamSearchWitness(10, 99, testConfig());
  const BeamResult b = beamSearchWitness(10, 99, testConfig());
  EXPECT_EQ(a.rounds, b.rounds);
  ASSERT_EQ(a.witness.size(), b.witness.size());
  for (std::size_t i = 0; i < a.witness.size(); ++i) {
    EXPECT_EQ(a.witness[i], b.witness[i]);
  }
}

TEST(BeamWitnessTest, TrivialSizes) {
  const BeamResult r2 = beamSearchWitness(2, 1, testConfig());
  EXPECT_EQ(r2.rounds, 1u);  // every tree on 2 nodes broadcasts at once
  EXPECT_EQ(verifyWitness(2, r2.witness), 1u);
}

TEST(BeamWitnessTest, WitnessTreesAreWellFormed) {
  const BeamResult r = beamSearchWitness(9, 5, testConfig());
  for (const RootedTree& t : r.witness) {
    EXPECT_EQ(t.size(), 9u);
  }
}

TEST(BeamWitnessTest, RejectsZeroWidth) {
  // width = 0 used to read frontier.front() of an empty frontier.
  BeamConfig cfg = testConfig();
  cfg.beamWidth = 0;
  EXPECT_THROW((void)beamSearchWitness(8, 1, cfg), std::invalid_argument);
  EXPECT_THROW(validateBeamConfig(cfg), std::invalid_argument);
}

TEST(BeamWitnessTest, RejectsDiversityAboveHundredPercent) {
  // diversity > 100 used to underflow the size_t elite slot count.
  BeamConfig cfg = testConfig();
  cfg.diversityPercent = 101;
  EXPECT_THROW((void)beamSearchWitness(8, 1, cfg), std::invalid_argument);
  EXPECT_THROW(validateBeamConfig(cfg), std::invalid_argument);
}

TEST(BeamWitnessTest, TinyMaxRoundsIsARealCap) {
  // Regression: the old loop guard (levels <= cap) admitted one level too
  // many, so reported rounds exceeded maxRounds by one.
  for (const std::size_t cap : {1u, 2u, 3u, 5u}) {
    BeamConfig cfg = testConfig();
    cfg.maxRounds = cap;
    const BeamResult r = beamSearchWitness(12, 3, cfg);
    EXPECT_LE(r.rounds, cap) << "cap=" << cap;
    EXPECT_EQ(verifyWitness(12, r.witness), r.rounds) << "cap=" << cap;
  }
}

TEST(BeamWitnessTest, SearchTelemetryIsConsistent) {
  const BeamResult r = beamSearchWitness(12, 7, testConfig());
  EXPECT_GT(r.movesGenerated, 0u);
  EXPECT_GE(r.movesGenerated, r.statesExpanded);  // dedup only removes
  EXPECT_GT(r.uniqueStates, 0u);
  // Every evaluated candidate either finished, merged with an identical
  // state, or was admitted as a unique state.
  EXPECT_LE(r.uniqueStates + r.transpositionHits, r.statesExpanded);
  EXPECT_GT(r.arenaPeakNodes, 0u);
  // The retained history is the ancestor closure of the frontier, far
  // below the full per-level history (rounds × width states).
  EXPECT_LT(r.arenaPeakNodes, r.rounds * testConfig().beamWidth);
}

TEST(BeamWitnessTest, WitnessValidAcrossConfigSpace) {
  // Property sweep over the config axes the registry exposes: whatever
  // the knobs, the reported rounds must equal the witness replay.
  for (const std::size_t width : {1u, 8u, 64u}) {
    for (const std::size_t diversity : {0u, 50u, 100u}) {
      for (const bool structured : {true, false}) {
        BeamConfig cfg;
        cfg.beamWidth = width;
        cfg.diversityPercent = diversity;
        cfg.structuredMoves = structured;
        cfg.randomMovesPerState = 3;
        const BeamResult r = beamSearchWitness(8, 13, cfg);
        EXPECT_EQ(verifyWitness(8, r.witness), r.rounds)
            << "width=" << width << " diversity=" << diversity
            << " structured=" << structured;
        EXPECT_EQ(r.witness.size(), r.rounds);
      }
    }
  }
}

TEST(LookaheadTest, CompletesWithinTheoremAndAtLeastNearStatic) {
  for (const std::size_t n : {6u, 10u, 16u}) {
    LookaheadDelayAdversary adv(n, 3, {.depth = 2});
    const BroadcastRun run = runAdversary(n, adv, defaultRoundCap(n));
    ASSERT_TRUE(run.completed) << "n=" << n;
    EXPECT_LE(run.rounds, bounds::linearUpper(n));
    EXPECT_GE(run.rounds + 2, n - 1);  // never much worse than static
  }
}

TEST(LookaheadTest, DeterministicPerSeed) {
  LookaheadDelayAdversary adv(8, 11, {.depth = 2});
  const BroadcastRun a = runAdversary(8, adv, defaultRoundCap(8));
  const BroadcastRun b = runAdversary(8, adv, defaultRoundCap(8));
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(LookaheadTest, TranspositionStatsAndToggle) {
  // Freeze variants transpose heavily, so a depth-3 search must score
  // table hits; with the table off the stats stay clean and the search
  // still lands inside the theorem bracket. (Skipping a cached subtree
  // also skips its rng draws, so the two runs may legitimately pick
  // different moves — only bounds are comparable across the toggle.)
  LookaheadConfig with;
  with.depth = 3;
  LookaheadConfig without = with;
  without.transposition = false;
  LookaheadDelayAdversary a(10, 17, with);
  LookaheadDelayAdversary b(10, 17, without);
  const BroadcastRun ra = runAdversary(10, a, defaultRoundCap(10));
  const BroadcastRun rb = runAdversary(10, b, defaultRoundCap(10));
  ASSERT_TRUE(ra.completed);
  ASSERT_TRUE(rb.completed);
  EXPECT_LE(ra.rounds, bounds::linearUpper(10));
  EXPECT_LE(rb.rounds, bounds::linearUpper(10));
  EXPECT_GT(a.stats().nodesVisited, 0u);
  EXPECT_GT(a.stats().transpositionHits, 0u);
  EXPECT_EQ(b.stats().transpositionHits, 0u);
}

}  // namespace
}  // namespace dynbcast
