#include "src/adversary/beam.h"

#include <gtest/gtest.h>

#include "src/adversary/exact_solver.h"
#include "src/adversary/lookahead.h"
#include "src/bounds/bounds.h"

namespace dynbcast {
namespace {

BeamConfig testConfig() {
  BeamConfig cfg;
  cfg.beamWidth = 128;
  cfg.randomMovesPerState = 6;
  cfg.diversityPercent = 30;
  return cfg;
}

TEST(BeamWitnessTest, WitnessVerifiesAtClaimedLength) {
  for (const std::size_t n : {4u, 8u, 12u}) {
    const BeamResult r = beamSearchWitness(n, 7, testConfig());
    EXPECT_EQ(verifyWitness(n, r.witness), r.rounds)
        << "witness replay disagrees at n=" << n;
  }
}

TEST(BeamWitnessTest, BeatsStaticPathBaseline) {
  // The central lower-bound-regime claim our search machinery certifies:
  // dynamic adversaries are strictly stronger than any static tree.
  for (const std::size_t n : {8u, 12u, 16u}) {
    const BeamResult r = beamSearchWitness(n, 7, testConfig());
    EXPECT_GT(r.rounds, n - 1) << "n=" << n;
    EXPECT_LE(r.rounds, bounds::linearUpper(n)) << "n=" << n;
  }
}

TEST(BeamWitnessTest, MatchesExactAtTinyN) {
  // At n ≤ 5 the beam should recover the full exact game value.
  for (const std::size_t n : {2u, 3u, 4u, 5u}) {
    const ExactResult exact = ExactSolver(n).solve();
    std::size_t best = 0;
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      best = std::max(best, beamSearchWitness(n, seed, testConfig()).rounds);
    }
    EXPECT_EQ(best, exact.tStar) << "n=" << n;
  }
}

TEST(BeamWitnessTest, DeterministicPerSeed) {
  const BeamResult a = beamSearchWitness(10, 99, testConfig());
  const BeamResult b = beamSearchWitness(10, 99, testConfig());
  EXPECT_EQ(a.rounds, b.rounds);
  ASSERT_EQ(a.witness.size(), b.witness.size());
  for (std::size_t i = 0; i < a.witness.size(); ++i) {
    EXPECT_EQ(a.witness[i], b.witness[i]);
  }
}

TEST(BeamWitnessTest, TrivialSizes) {
  const BeamResult r2 = beamSearchWitness(2, 1, testConfig());
  EXPECT_EQ(r2.rounds, 1u);  // every tree on 2 nodes broadcasts at once
  EXPECT_EQ(verifyWitness(2, r2.witness), 1u);
}

TEST(BeamWitnessTest, WitnessTreesAreWellFormed) {
  const BeamResult r = beamSearchWitness(9, 5, testConfig());
  for (const RootedTree& t : r.witness) {
    EXPECT_EQ(t.size(), 9u);
  }
}

TEST(LookaheadTest, CompletesWithinTheoremAndAtLeastNearStatic) {
  for (const std::size_t n : {6u, 10u, 16u}) {
    LookaheadDelayAdversary adv(n, 3, {.depth = 2});
    const BroadcastRun run = runAdversary(n, adv, defaultRoundCap(n));
    ASSERT_TRUE(run.completed) << "n=" << n;
    EXPECT_LE(run.rounds, bounds::linearUpper(n));
    EXPECT_GE(run.rounds + 2, n - 1);  // never much worse than static
  }
}

TEST(LookaheadTest, DeterministicPerSeed) {
  LookaheadDelayAdversary adv(8, 11, {.depth = 2});
  const BroadcastRun a = runAdversary(8, adv, defaultRoundCap(8));
  const BroadcastRun b = runAdversary(8, adv, defaultRoundCap(8));
  EXPECT_EQ(a.rounds, b.rounds);
}

}  // namespace
}  // namespace dynbcast
