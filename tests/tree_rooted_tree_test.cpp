#include "src/tree/rooted_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/support/assert.h"
#include "src/support/rng.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

TEST(RootedTreeTest, TrivialTree) {
  const RootedTree t = RootedTree::trivial();
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.height(), 0u);
  EXPECT_EQ(t.leafCount(), 1u);  // the lone root is a leaf
  EXPECT_EQ(t.innerCount(), 0u);
}

TEST(RootedTreeTest, PathStructure) {
  // 2 → 0 → 1
  const RootedTree t(2, {2, 0, 2});
  EXPECT_EQ(t.root(), 2u);
  EXPECT_EQ(t.parent(0), 2u);
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.depthOf(2), 0u);
  EXPECT_EQ(t.depthOf(0), 1u);
  EXPECT_EQ(t.depthOf(1), 2u);
  EXPECT_EQ(t.height(), 2u);
  EXPECT_EQ(t.leafCount(), 1u);
  EXPECT_EQ(t.innerCount(), 2u);
}

TEST(RootedTreeTest, ChildrenComputed) {
  // Star rooted at 1.
  const RootedTree t(1, {1, 1, 1, 1});
  EXPECT_EQ(t.childrenOf(1).size(), 3u);
  EXPECT_TRUE(t.childrenOf(0).empty());
  const auto leaves = t.leaves();
  EXPECT_EQ(leaves.size(), 3u);
  EXPECT_TRUE(std::find(leaves.begin(), leaves.end(), 1u) == leaves.end());
}

TEST(RootedTreeTest, BfsOrderStartsAtRootAndCoversAll) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    const std::size_t n = 1 + rng.uniform(20);
    const RootedTree t = randomRootedTree(n, rng);
    const auto order = t.bfsOrder();
    ASSERT_EQ(order.size(), n);
    EXPECT_EQ(order[0], t.root());
    // Parents appear before children.
    std::vector<std::size_t> pos(n);
    for (std::size_t p = 0; p < n; ++p) pos[order[p]] = p;
    for (std::size_t v = 0; v < n; ++v) {
      if (v != t.root()) {
        EXPECT_LT(pos[t.parent(v)], pos[v]);
      }
    }
  }
}

TEST(RootedTreeTest, MatrixHasSelfLoopsAndTreeEdges) {
  const RootedTree t(0, {0, 0, 1});
  const BitMatrix m = t.toMatrix();
  EXPECT_TRUE(m.isReflexive());
  EXPECT_TRUE(m.get(0, 1));
  EXPECT_TRUE(m.get(1, 2));
  EXPECT_FALSE(m.get(0, 2));
  EXPECT_EQ(m.countOnes(), 2 * 3 - 1);
}

TEST(RootedTreeTest, DigraphMatchesMatrix) {
  Rng rng(21);
  for (int i = 0; i < 10; ++i) {
    const RootedTree t = randomRootedTree(1 + rng.uniform(15), rng);
    EXPECT_EQ(t.toDigraph().toMatrix(), t.toMatrix());
  }
}

TEST(RootedTreeTest, RejectsCyclicParentLinks) {
  // 0 is root, but 1 and 2 point at each other.
  EXPECT_THROW(RootedTree(0, {0, 2, 1}), AssertionError);
}

TEST(RootedTreeTest, RejectsBadRoot) {
  EXPECT_THROW(RootedTree(1, {0, 0}), AssertionError);  // parent[1] != 1
  EXPECT_THROW(RootedTree(5, {0, 0}), AssertionError);  // root out of range
}

TEST(RootedTreeTest, RejectsSelfParentNonRoot) {
  EXPECT_THROW(RootedTree(0, {0, 1}), AssertionError);
}

TEST(RootedTreeTest, RejectsEmptyTree) {
  EXPECT_THROW(RootedTree(0, {}), AssertionError);
}

TEST(RootedTreeTest, EqualityComparesShape) {
  const RootedTree a(0, {0, 0});
  const RootedTree b(0, {0, 0});
  const RootedTree c(1, {1, 1});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(RootedTreeTest, LeafPlusInnerEqualsN) {
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const std::size_t n = 1 + rng.uniform(25);
    const RootedTree t = randomRootedTree(n, rng);
    EXPECT_EQ(t.leafCount() + t.innerCount(), n);
  }
}

TEST(RootedTreeTest, DepthConsistentWithParents) {
  Rng rng(6);
  const RootedTree t = randomRootedTree(40, rng);
  for (std::size_t v = 0; v < 40; ++v) {
    if (v == t.root()) {
      EXPECT_EQ(t.depthOf(v), 0u);
    } else {
      EXPECT_EQ(t.depthOf(v), t.depthOf(t.parent(v)) + 1);
    }
  }
}

TEST(RootedTreeTest, ToStringMentionsRootAndParents) {
  const RootedTree t(0, {0, 0});
  const std::string s = t.toString();
  EXPECT_NE(s.find("root=0"), std::string::npos);
  EXPECT_NE(s.find("parents=[0,0]"), std::string::npos);
}

}  // namespace
}  // namespace dynbcast
