#include "src/bounds/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/bounds/theorem.h"

namespace dynbcast {
namespace {

TEST(BoundsTest, TrivialUpperIsNSquared) {
  EXPECT_EQ(bounds::trivialUpper(1), 1u);
  EXPECT_EQ(bounds::trivialUpper(10), 100u);
  EXPECT_EQ(bounds::trivialUpper(1000), 1000000u);
}

TEST(BoundsTest, CeilLog2Values) {
  EXPECT_EQ(bounds::ceilLog2(1), 0u);
  EXPECT_EQ(bounds::ceilLog2(2), 1u);
  EXPECT_EQ(bounds::ceilLog2(3), 2u);
  EXPECT_EQ(bounds::ceilLog2(4), 2u);
  EXPECT_EQ(bounds::ceilLog2(5), 3u);
  EXPECT_EQ(bounds::ceilLog2(1024), 10u);
  EXPECT_EQ(bounds::ceilLog2(1025), 11u);
}

TEST(BoundsTest, LinearUpperKnownValues) {
  // ⌈(1+√2)n − 1⌉: spot values.
  EXPECT_EQ(bounds::linearUpper(1), 2u);    // ⌈1.414⌉
  EXPECT_EQ(bounds::linearUpper(2), 4u);    // ⌈3.828⌉
  EXPECT_EQ(bounds::linearUpper(10), 24u);  // ⌈23.14⌉
  EXPECT_EQ(bounds::linearUpper(100), 241u);
}

TEST(BoundsTest, LinearUpperSlope) {
  EXPECT_NEAR(bounds::linearUpperSlope(), 2.41421356, 1e-8);
}

TEST(BoundsTest, LowerBoundKnownValues) {
  // ⌈(3n−1)/2⌉ − 2.
  EXPECT_EQ(bounds::lowerBound(2), 1u);   // ⌈5/2⌉−2 = 1
  EXPECT_EQ(bounds::lowerBound(3), 2u);   // ⌈8/2⌉−2 = 2
  EXPECT_EQ(bounds::lowerBound(4), 4u);   // ⌈11/2⌉−2 = 4
  EXPECT_EQ(bounds::lowerBound(5), 5u);   // ⌈14/2⌉−2 = 5
  EXPECT_EQ(bounds::lowerBound(10), 13u);
  EXPECT_EQ(bounds::lowerBound(100), 148u);
}

TEST(BoundsTest, LowerNeverExceedsUpper) {
  for (std::size_t n = 2; n <= 4096; n = n * 2 + 1) {
    EXPECT_LE(bounds::lowerBound(n), bounds::linearUpper(n)) << n;
  }
}

TEST(BoundsTest, NewBoundDominatedByOldBoundsAsymptotically) {
  // Figure 1's point: (1+√2)n < 2n log log n + O(n) < (n−1)⌈log n⌉ < n²
  // once n is large.
  for (const std::size_t n : {1024u, 4096u, 16384u}) {
    const double linear = static_cast<double>(bounds::linearUpper(n));
    EXPECT_LT(linear, bounds::nLogLogUpper(n)) << n;
    EXPECT_LT(bounds::nLogLogUpper(n),
              static_cast<double>(bounds::nLogNUpper(n)))
        << n;
    EXPECT_LT(bounds::nLogNUpper(n), bounds::trivialUpper(n)) << n;
  }
}

TEST(BoundsTest, RestrictedBoundsScaleWithK) {
  EXPECT_EQ(bounds::kLeafUpper(100, 2), 200u);
  EXPECT_EQ(bounds::kInnerUpper(100, 8), 800u);
  EXPECT_LT(bounds::kLeafUpper(100, 2), bounds::trivialUpper(100));
}

TEST(BoundsTest, NonsplitLogUpper) {
  EXPECT_EQ(bounds::nonsplitLogUpper(2), 1u);
  EXPECT_EQ(bounds::nonsplitLogUpper(1024), 10u);
}

TEST(TheoremCheckTest, FieldsAndDirections) {
  const TheoremCheck c = checkTheorem31(10, 15);
  EXPECT_EQ(c.n, 10u);
  EXPECT_EQ(c.lower, 13u);
  EXPECT_EQ(c.upper, 24u);
  EXPECT_TRUE(c.withinUpper);
  EXPECT_TRUE(c.witnessesLower);
  EXPECT_NEAR(c.ratio, 1.5, 1e-9);
}

TEST(TheoremCheckTest, DetectsUpperViolation) {
  const TheoremCheck c = checkTheorem31(10, 25);
  EXPECT_FALSE(c.withinUpper);
  EXPECT_NE(c.toString().find("UPPER-BOUND-VIOLATION"), std::string::npos);
}

TEST(TheoremCheckTest, WeakWitnessFlagged) {
  const TheoremCheck c = checkTheorem31(10, 9);
  EXPECT_TRUE(c.withinUpper);
  EXPECT_FALSE(c.witnessesLower);
}

class BoundMonotoneTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BoundMonotoneTest, AllBoundsMonotoneInN) {
  const std::size_t n = GetParam();
  EXPECT_LE(bounds::linearUpper(n), bounds::linearUpper(n + 1));
  EXPECT_LE(bounds::lowerBound(n), bounds::lowerBound(n + 1));
  EXPECT_LE(bounds::trivialUpper(n), bounds::trivialUpper(n + 1));
  EXPECT_LE(bounds::nLogNUpper(n), bounds::nLogNUpper(n + 1));
  EXPECT_LE(bounds::nonsplitLogUpper(n), bounds::nonsplitLogUpper(n + 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BoundMonotoneTest,
                         ::testing::Values(2, 3, 7, 15, 16, 17, 100, 1023));

}  // namespace
}  // namespace dynbcast
