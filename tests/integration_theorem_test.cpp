// End-to-end integration: Theorem 3.1 as a testable property of the whole
// stack — generators, simulators, adversaries, and bound formulas.
#include <gtest/gtest.h>

#include <memory>

#include "src/adversary/adaptive.h"
#include "src/adversary/beam.h"
#include "src/adversary/exact_solver.h"
#include "src/adversary/portfolio.h"
#include "src/bounds/bounds.h"
#include "src/bounds/theorem.h"
#include "src/sim/gossip.h"
#include "src/support/rng.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

// ---------------------------------------------------------------------
// Upper bound direction: NO tree sequence may exceed ⌈(1+√2)n − 1⌉.
// We fuzz many independent random adversaries; one counterexample would
// falsify the theorem (or expose a simulator bug).
class UpperBoundFuzzTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UpperBoundFuzzTest, RandomSequencesRespectUpperBound) {
  const std::size_t n = GetParam();
  Rng rng(n * 1009 + 7);
  for (int trial = 0; trial < 30; ++trial) {
    Rng seq = rng.split();
    const BroadcastRun run = runBroadcast(
        n,
        [&seq, n](const BroadcastSim&) { return randomRootedTree(n, seq); },
        defaultRoundCap(n));
    ASSERT_TRUE(run.completed) << "hit cap: upper bound violated?";
    const TheoremCheck check = checkTheorem31(n, run.rounds);
    EXPECT_TRUE(check.withinUpper) << check.toString();
  }
}

TEST_P(UpperBoundFuzzTest, AdaptiveAdversariesRespectUpperBound) {
  const std::size_t n = GetParam();
  const PortfolioResult result = runPortfolio(n, n * 31 + 5);
  for (const auto& e : result.entries) {
    ASSERT_TRUE(e.completed) << e.name;
    EXPECT_TRUE(checkTheorem31(n, e.rounds).withinUpper)
        << e.name << " at n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, UpperBoundFuzzTest,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------
// Lower bound direction at small n: the exact game value must sit inside
// the theorem's bracket (this is the strongest statement our machinery
// can certify without the paper's explicit construction).
TEST(LowerBoundExactTest, ExactValuesWithinBracket) {
  for (const std::size_t n : {2u, 3u, 4u}) {
    const ExactResult exact = ExactSolver(n).solve();
    const TheoremCheck check = checkTheorem31(n, exact.tStar);
    EXPECT_TRUE(check.withinUpper) << check.toString();
    EXPECT_TRUE(check.witnessesLower) << check.toString();
  }
}

// Offline beam search at mid n must strictly beat the static baseline —
// the lower-bound *regime* (ratio > 1) beyond any single tree's reach.
TEST(LowerBoundHeuristicTest, BeamWitnessBeatsStaticBaseline) {
  BeamConfig cfg;
  cfg.beamWidth = 128;
  cfg.randomMovesPerState = 6;
  for (const std::size_t n : {12u, 16u, 24u}) {
    const BeamResult witness = beamSearchWitness(n, 11, cfg);
    EXPECT_GT(witness.rounds, n - 1) << "n=" << n;
    EXPECT_EQ(verifyWitness(n, witness.witness), witness.rounds) << "n=" << n;
    EXPECT_LE(witness.rounds, bounds::linearUpper(n)) << "n=" << n;
  }
}

// The online portfolio still realizes at least the static value.
TEST(LowerBoundHeuristicTest, PortfolioAtLeastStaticBaseline) {
  for (const std::size_t n : {16u, 24u}) {
    const PortfolioResult result = runPortfolio(n, 11);
    EXPECT_GE(result.bestRounds, n - 1) << "n=" << n;
  }
}

// ---------------------------------------------------------------------
// Cross-cutting sanity: gossip dominates broadcast under any adversary.
TEST(GossipIntegrationTest, GossipAtLeastBroadcastOnSameSequence) {
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 3 + rng.uniform(12);
    Rng seq = rng.split();
    const GossipComparison cmp = runGossipComparison(
        n,
        [&seq, n](const BroadcastSim&) { return randomRootedTree(n, seq); },
        10000);
    ASSERT_TRUE(cmp.gossipCompleted);
    ASSERT_TRUE(cmp.broadcastCompleted);
    EXPECT_GE(cmp.gossipRounds, cmp.broadcastRounds);
  }
}

// An adaptive delaying adversary stalls gossip FOREVER: the model's
// progress guarantee (≥ 1 new product edge per round) only holds until
// broadcast; afterwards the adversary can reach heard-set configurations
// where some tree adds nothing, and it loops there. Gossip in T_n is
// adversarially unbounded — only broadcast is linear.
TEST(GossipIntegrationTest, AdaptiveAdversaryStallsGossip) {
  const std::size_t n = 8;
  GreedyDelayAdversary adv(n, 5);
  adv.reset();
  const GossipComparison cmp = runGossipComparison(
      n, [&adv](const BroadcastSim& s) { return adv.nextTree(s); }, 300);
  EXPECT_TRUE(cmp.broadcastCompleted);  // broadcast cannot be stopped
  EXPECT_FALSE(cmp.gossipCompleted) << "gossip completed unexpectedly";
}

// The greedy adversary's achieved time is a *certified* lower witness:
// re-running the same seed must reproduce it exactly (determinism is what
// makes the witness auditable).
TEST(CertificationTest, GreedyWitnessReproducible) {
  const std::size_t n = 20;
  GreedyDelayAdversary adv(n, 99);
  const BroadcastRun a = runAdversary(n, adv, defaultRoundCap(n));
  const BroadcastRun b = runAdversary(n, adv, defaultRoundCap(n));
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.rounds, b.rounds);
}

// Every portfolio member terminates within the theorem's upper bound —
// the hierarchy's hard ceiling. (Individual heuristics may fall below
// the static baseline: online play is myopic; see BeamWitnessTest for
// the strict improvement.)
TEST(HierarchyTest, EveryMemberWithinUpperBound) {
  const std::size_t n = 24;
  for (const auto& member : standardPortfolio(n, 17)) {
    const auto adv = member.make();
    const BroadcastRun run = runAdversary(n, *adv, defaultRoundCap(n));
    ASSERT_TRUE(run.completed) << member.name;
    EXPECT_LE(run.rounds, bounds::linearUpper(n)) << member.name;
  }
}

}  // namespace
}  // namespace dynbcast
