// ExperimentEngine: the sharded sweep layer. The load-bearing contract is
// determinism — a SweepSpec must produce bit-identical rows at any job
// count, because seeds are derived from task positions and results land
// in position-indexed slots. Everything the benches print flows through
// this, so these tests are what make --jobs safe to default on.
#include "src/engine/experiment_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/adversary/adversary.h"
#include "src/adversary/oblivious.h"
#include "src/support/seed_sequence.h"

namespace dynbcast {
namespace {

// A member whose reset() count exposes how many runs it performed.
class CountingAdversary : public Adversary {
 public:
  CountingAdversary(std::size_t n, std::atomic<int>& runs)
      : path_(n), runs_(runs) {}
  RootedTree nextTree(const BroadcastSim& state) override {
    return path_.nextTree(state);
  }
  std::string name() const override { return "counting"; }
  void reset() override {
    ++runs_;
    path_.reset();
  }

 private:
  StaticPathAdversary path_;
  std::atomic<int>& runs_;
};

TEST(EngineTest, EmptySweepProducesNoRows) {
  ExperimentEngine engine;
  SweepSpec spec;  // no sizes
  const SweepResult result = engine.runSweep(spec);
  EXPECT_TRUE(result.rows.empty());
  EXPECT_TRUE(result.instances.empty());
}

TEST(EngineTest, SingletonSweepMatchesDirectPortfolioRun) {
  SweepSpec spec;
  spec.sizes = {10};
  spec.masterSeed = 99;
  ExperimentEngine engine;
  const SweepResult result = engine.runSweep(spec);

  // The engine's instance seed is position-derived; a serial
  // runPortfolio with that same seed must reproduce every row.
  const std::uint64_t instanceSeed = SeedSequence(99).at(0);
  const PortfolioResult direct = runPortfolio(10, instanceSeed);
  ASSERT_EQ(result.rows.size(), direct.entries.size());
  ASSERT_EQ(result.instances.size(), 1u);
  for (std::size_t i = 0; i < direct.entries.size(); ++i) {
    EXPECT_EQ(result.rows[i].member, direct.entries[i].name);
    EXPECT_EQ(result.rows[i].rounds, direct.entries[i].rounds);
    EXPECT_EQ(result.rows[i].completed, direct.entries[i].completed);
    EXPECT_EQ(result.rows[i].instanceSeed, instanceSeed);
  }
  EXPECT_EQ(result.instances[0].portfolio.bestRounds, direct.bestRounds);
  EXPECT_EQ(result.instances[0].portfolio.bestName, direct.bestName);
}

TEST(EngineTest, RowsAreOrderedBySizeThenSeedThenMember) {
  SweepSpec spec;
  spec.sizes = {6, 9};
  spec.seedsPerSize = 2;
  spec.masterSeed = 5;
  ExperimentEngine engine(EngineConfig{.jobs = 4, .recordHistory = false});
  const SweepResult result = engine.runSweep(spec);

  const std::size_t membersPerInstance = standardPortfolio(6, 1).size();
  ASSERT_EQ(result.rows.size(), 2 * 2 * membersPerInstance);
  std::size_t row = 0;
  for (const std::size_t n : {6, 9}) {
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t m = 0; m < membersPerInstance; ++m, ++row) {
        EXPECT_EQ(result.rows[row].n, static_cast<std::size_t>(n));
        EXPECT_EQ(result.rows[row].seedIndex, r);
      }
    }
  }
}

// Satellite: the determinism regression — the same SweepSpec at jobs=1
// and jobs=8 must produce identical rows (and hence identical CSVs),
// because seed derivation is position-based, not schedule-based.
TEST(EngineTest, SweepIsBitIdenticalAcrossJobCounts) {
  SweepSpec spec;
  spec.sizes = {4, 7, 12, 16};
  spec.seedsPerSize = 3;
  spec.masterSeed = 2026;

  ExperimentEngine serial(EngineConfig{.jobs = 1});
  ExperimentEngine parallel(EngineConfig{.jobs = 8});
  const SweepResult a = serial.runSweep(spec);
  const SweepResult b = parallel.runSweep(spec);

  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i], b.rows[i]) << "row " << i;
  }
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(a.instances[i].portfolio.bestRounds,
              b.instances[i].portfolio.bestRounds);
    EXPECT_EQ(a.instances[i].portfolio.bestName,
              b.instances[i].portfolio.bestName);
  }
}

TEST(EngineTest, MapDerivesSeedsByPositionAndPreservesOrder) {
  ExperimentEngine engine(EngineConfig{.jobs = 4});
  struct Cell {
    std::size_t index = 0;
    std::uint64_t seed = 0;
  };
  const auto cells = engine.map<Cell>(
      64, 77, [](std::size_t i, std::uint64_t seed) {
        return Cell{i, seed};
      });
  const SeedSequence expected(77);
  ASSERT_EQ(cells.size(), 64u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].seed, expected.at(i));
  }
}

TEST(EngineTest, MapEmptyAndSingleton) {
  ExperimentEngine engine;
  EXPECT_TRUE((engine.map<int>(0, 1, [](std::size_t, std::uint64_t) {
                return 1;
              })).empty());
  const auto one = engine.map<int>(1, 1, [](std::size_t, std::uint64_t) {
    return 42;
  });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 42);
}

TEST(EngineTest, RecordHistoryFillsEveryRowInItsSingleRun) {
  std::atomic<int> runs{0};
  SweepSpec spec;
  spec.sizes = {8, 11};
  spec.masterSeed = 3;
  spec.portfolio = [&runs](std::size_t n, std::uint64_t) {
    std::vector<PortfolioMember> members;
    members.push_back({"counting", [n, &runs] {
                         return std::make_unique<CountingAdversary>(n, runs);
                       }});
    return members;
  };
  ExperimentEngine engine(EngineConfig{.jobs = 2, .recordHistory = true});
  const SweepResult result = engine.runSweep(spec);
  ASSERT_EQ(result.rows.size(), 2u);
  for (const SweepRow& row : result.rows) {
    EXPECT_TRUE(row.completed);
    EXPECT_EQ(row.history.size(), row.rounds)
        << "history must cover every round of " << row.member;
  }
  // One reset per member run: history recording never costs a re-run.
  EXPECT_EQ(runs.load(), 2);
}

TEST(EngineTest, CustomRoundCapLimitsRuns) {
  SweepSpec spec;
  spec.sizes = {16};
  spec.roundCap = 3;  // static path needs 15 rounds; it must be cut off
  ExperimentEngine engine;
  const SweepResult result = engine.runSweep(spec);
  ASSERT_FALSE(result.rows.empty());
  for (const SweepRow& row : result.rows) {
    EXPECT_FALSE(row.completed) << row.member;
    EXPECT_LE(row.rounds, 3u) << row.member;
  }
  EXPECT_EQ(result.instances[0].portfolio.bestRounds, 0u);
}

TEST(EngineTest, TaskExceptionPropagatesToCaller) {
  SweepSpec spec;
  spec.sizes = {6};
  spec.portfolio = [](std::size_t, std::uint64_t) {
    std::vector<PortfolioMember> members;
    members.push_back({"broken", []() -> std::unique_ptr<Adversary> {
                         throw std::runtime_error("factory exploded");
                       }});
    return members;
  };
  ExperimentEngine engine(EngineConfig{.jobs = 2});
  EXPECT_THROW((void)engine.runSweep(spec), std::runtime_error);
}

}  // namespace
}  // namespace dynbcast
