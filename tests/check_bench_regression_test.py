#!/usr/bin/env python3
"""Unit tests for bench/check_bench_regression.py (the CI bench gate).

Stdlib-only (unittest): the container and CI runners both have bare
python3. Registered with ctest as bench_regression_gate_unittests.

Covers the gate's four behaviors:
  * pass: all metrics within tolerance exits 0,
  * regression: a gated metric beyond tolerance exits nonzero and names
    the metric (both directions: throughput down, work-counter up),
  * missing metric: a baseline key absent from the run fails,
  * ratchet: --write-baseline regenerates the file from the current run
    with the DEFAULT_GATES tolerances.
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    os.path.join(_REPO, "bench", "check_bench_regression.py"))
gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(gate)


def kernels_doc(gib=12.0, ns=5.0):
    return {"kernels": [
        {"name": "orAssign", "bits": 1024, "gib_per_s": gib, "ns_per_op": ns},
        {"name": "orCount", "bits": 1024, "gib_per_s": gib, "ns_per_op": ns},
        {"name": "intersectAny", "bits": 1024, "gib_per_s": gib,
         "ns_per_op": ns},
    ]}


def sweep_doc(**overrides):
    doc = {
        "batch_round_speedup": 4.0,
        "batch_sweep_speedup": 3.0,
        "product_blocked_speedup": 2.0,
        "frontier_sparse_speedup": 5.0,
        "beam_unique_states": 1000,
        "beam_rounds": 40,
        "transposition_hit_rate": 0.5,
        "lookahead_tt_hit_rate": 0.5,
        "service_warm_speedup": 6.0,
    }
    doc.update(overrides)
    return doc


class GateHarness(unittest.TestCase):
    """Drives main() through argv with real temp files, as CI does."""

    def run_gate(self, baseline, kernels, sweep, write_baseline=False):
        """Returns (exit_code, stdout_text, baseline_path)."""
        tmp = tempfile.mkdtemp(prefix="benchgate")
        paths = {}
        for name, doc in (("baseline", baseline), ("kernels", kernels),
                          ("sweep", sweep)):
            paths[name] = os.path.join(tmp, name + ".json")
            if doc is not None:
                with open(paths[name], "w") as f:
                    json.dump(doc, f)
        argv = ["check_bench_regression.py",
                "--baseline", paths["baseline"],
                "--kernels", paths["kernels"],
                "--sweep", paths["sweep"]]
        if write_baseline:
            argv.append("--write-baseline")
        old_argv, old_stdout = sys.argv, sys.stdout
        sys.argv = argv
        import io
        sys.stdout = io.StringIO()
        code = 0
        try:
            gate.main()
        except SystemExit as e:
            code = e.code if isinstance(e.code, int) else 1
        finally:
            out = sys.stdout.getvalue()
            sys.argv, sys.stdout = old_argv, old_stdout
        return code, out, paths["baseline"]

    def write_fresh_baseline(self):
        code, _, path = self.run_gate(None, kernels_doc(), sweep_doc(),
                                      write_baseline=True)
        self.assertEqual(code, 0)
        with open(path) as f:
            return json.load(f), path


class TestFlatten(unittest.TestCase):
    def test_kernel_and_sweep_keys(self):
        flat = gate.flatten(kernels_doc(gib=7.5, ns=2.0), sweep_doc())
        self.assertEqual(flat["kernel:orAssign:1024:gib_per_s"], 7.5)
        self.assertEqual(flat["kernel:orAssign:1024:ns_per_op"], 2.0)
        self.assertEqual(flat["sweep:batch_round_speedup"], 4.0)

    def test_unknown_sweep_fields_ignored(self):
        flat = gate.flatten({"kernels": []}, {"not_a_gate": 1.0})
        self.assertEqual(flat, {})


class TestDirection(unittest.TestCase):
    def test_lower_is_better_classification(self):
        self.assertTrue(gate.lower_is_better("kernel:x:1024:ns_per_op"))
        self.assertTrue(gate.lower_is_better("sweep:batch_scalar_ms"))
        self.assertTrue(gate.lower_is_better("sweep:beam_unique_states"))
        self.assertTrue(gate.lower_is_better("sweep:lookahead_nodes"))
        self.assertFalse(gate.lower_is_better("kernel:x:1024:gib_per_s"))
        self.assertFalse(gate.lower_is_better("sweep:batch_round_speedup"))
        self.assertFalse(gate.lower_is_better("sweep:beam_rounds"))


class TestGate(GateHarness):
    def test_pass_within_tolerance(self):
        baseline, _ = self.write_fresh_baseline()
        # 10% throughput dip sits inside the 60% kernel tolerance.
        code, out, _ = self.run_gate(baseline, kernels_doc(gib=10.8),
                                     sweep_doc())
        self.assertEqual(code, 0)
        self.assertIn("OK: all gated metrics within tolerance.", out)
        self.assertNotIn("REGRESSION", out)

    def test_throughput_regression_beyond_tolerance_fails(self):
        baseline, _ = self.write_fresh_baseline()
        # batch_round_speedup tolerance is 30%: 4.0 -> 1.0 is a 75% drop.
        code, out, _ = self.run_gate(
            baseline, kernels_doc(), sweep_doc(batch_round_speedup=1.0))
        self.assertNotEqual(code, 0)
        self.assertIn("REGRESSION", out)
        self.assertIn("sweep:batch_round_speedup", out)

    def test_work_counter_regresses_upward(self):
        baseline, _ = self.write_fresh_baseline()
        # beam_unique_states (10% tolerance) regresses by GROWING.
        code, out, _ = self.run_gate(
            baseline, kernels_doc(), sweep_doc(beam_unique_states=1200))
        self.assertNotEqual(code, 0)
        self.assertIn("sweep:beam_unique_states", out)
        # The same growth in a throughput metric would NOT fail: check a
        # faster kernel passes.
        code, _, _ = self.run_gate(baseline, kernels_doc(gib=20.0),
                                   sweep_doc())
        self.assertEqual(code, 0)

    def test_missing_metric_fails(self):
        baseline, _ = self.write_fresh_baseline()
        thin = sweep_doc()
        del thin["transposition_hit_rate"]
        code, out, _ = self.run_gate(baseline, kernels_doc(), thin)
        self.assertNotEqual(code, 0)
        self.assertIn("MISSING", out)
        self.assertIn("sweep:transposition_hit_rate", out)

    def test_unrecognized_schema_rejected(self):
        code, _, _ = self.run_gate({"schema": "bogus/9", "metrics": {}},
                                   kernels_doc(), sweep_doc())
        self.assertNotEqual(code, 0)


class TestRatchet(GateHarness):
    def test_write_baseline_round_trips(self):
        baseline, path = self.write_fresh_baseline()
        self.assertEqual(baseline["schema"], "dynbcast-bench-baseline/1")
        self.assertEqual(set(baseline["metrics"]), set(gate.DEFAULT_GATES))
        for key, spec in baseline["metrics"].items():
            self.assertEqual(spec["tolerance_pct"], gate.DEFAULT_GATES[key])
        # The regenerated baseline gates its own run cleanly.
        code, out, _ = self.run_gate(baseline, kernels_doc(), sweep_doc())
        self.assertEqual(code, 0)
        self.assertIn("OK", out)

    def test_write_baseline_requires_every_gated_metric(self):
        partial = sweep_doc()
        del partial["beam_rounds"]
        code, _, _ = self.run_gate(None, kernels_doc(), partial,
                                   write_baseline=True)
        self.assertNotEqual(code, 0)

    def test_ratchet_tightens_after_improvement(self):
        # Regenerating after an improvement moves the floor up: the old
        # (slower) numbers now regress against the new baseline.
        improved = sweep_doc(batch_round_speedup=8.0)
        code, _, path = self.run_gate(None, kernels_doc(), improved,
                                      write_baseline=True)
        self.assertEqual(code, 0)
        with open(path) as f:
            ratcheted = json.load(f)
        code, out, _ = self.run_gate(ratcheted, kernels_doc(), sweep_doc())
        self.assertNotEqual(code, 0)
        self.assertIn("sweep:batch_round_speedup", out)


if __name__ == "__main__":
    unittest.main()
