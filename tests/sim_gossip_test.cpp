#include "src/sim/gossip.h"

#include <gtest/gtest.h>

#include "src/adversary/adaptive.h"
#include "src/adversary/oblivious.h"
#include "src/support/rng.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

TEST(GossipTest, SingleProcessInstant) {
  const GossipComparison cmp = runGossipComparison(
      1, [](const BroadcastSim&) { return RootedTree::trivial(); }, 10);
  EXPECT_TRUE(cmp.gossipCompleted);
  EXPECT_EQ(cmp.gossipRounds, 0u);
}

TEST(GossipTest, PingPongCompletesInTwoNMinusTwo) {
  // Alternating forward/backward paths: node i's interval grows one step
  // per direction per two rounds; the middle completes at 2(n−1)−... the
  // exact value for the identity ping-pong is 2n−3 for odd splits; we
  // assert the Θ(n) window rather than one closed form.
  for (const std::size_t n : {4u, 8u, 16u}) {
    AlternatingPathAdversary adv(n);
    const GossipComparison cmp = runGossipComparison(
        n, [&adv](const BroadcastSim& s) { return adv.nextTree(s); },
        4 * n);
    ASSERT_TRUE(cmp.gossipCompleted) << "n=" << n;
    EXPECT_GE(cmp.gossipRounds, 2 * (n - 1) - 2) << "n=" << n;
    EXPECT_LE(cmp.gossipRounds, 2 * n) << "n=" << n;
    EXPECT_LE(cmp.broadcastRounds, cmp.gossipRounds);
  }
}

TEST(GossipTest, StaticTreeNeverCompletes) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.uniform(10);
    const RootedTree tree = randomRootedTree(n, rng);
    const GossipComparison cmp = runGossipComparison(
        n, [&tree](const BroadcastSim&) { return tree; }, 5 * n);
    EXPECT_FALSE(cmp.gossipCompleted) << tree.toString();
    EXPECT_TRUE(cmp.broadcastCompleted);
  }
}

TEST(GossipTest, RandomSequencesComplete) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.uniform(12);
    Rng seq = rng.split();
    const GossipComparison cmp = runGossipComparison(
        n,
        [&seq, n](const BroadcastSim&) { return randomRootedTree(n, seq); },
        50 * n + 100);
    EXPECT_TRUE(cmp.gossipCompleted) << "n=" << n;
    EXPECT_GE(cmp.gossipRounds, cmp.broadcastRounds);
  }
}

TEST(GossipTest, BroadcastRoundRecordedEnRoute) {
  // The comparison must report the broadcast round observed mid-run, not
  // the gossip round.
  const std::size_t n = 6;
  AlternatingPathAdversary adv(n);
  const GossipComparison cmp = runGossipComparison(
      n, [&adv](const BroadcastSim& s) { return adv.nextTree(s); }, 4 * n);
  ASSERT_TRUE(cmp.gossipCompleted);
  ASSERT_TRUE(cmp.broadcastCompleted);
  EXPECT_LT(cmp.broadcastRounds, cmp.gossipRounds);
}

TEST(GossipTest, GreedyAdversaryStallsGossipAtSmallN) {
  GreedyDelayAdversary adv(6, 9);
  adv.reset();
  const GossipComparison cmp = runGossipComparison(
      6, [&adv](const BroadcastSim& s) { return adv.nextTree(s); }, 200);
  EXPECT_TRUE(cmp.broadcastCompleted);
  EXPECT_FALSE(cmp.gossipCompleted);
}

}  // namespace
}  // namespace dynbcast
