#include "src/tree/prufer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "src/support/rng.h"

namespace dynbcast {
namespace {

using EdgeSet = std::set<std::pair<std::size_t, std::size_t>>;

EdgeSet normalize(const UndirectedTree& t) {
  EdgeSet out;
  for (auto [u, v] : t) {
    out.insert({std::min(u, v), std::max(u, v)});
  }
  return out;
}

TEST(PruferTest, DecodeN2) {
  const UndirectedTree t = pruferDecode({});
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(normalize(t), (EdgeSet{{0, 1}}));
}

TEST(PruferTest, DecodeKnownSequence) {
  // Classic example: sequence (3, 3, 3, 4) on 6 nodes gives a tree where
  // 3 has degree 4 and 4 has degree 2.
  const UndirectedTree t = pruferDecode({3, 3, 3, 4});
  ASSERT_EQ(t.size(), 5u);
  std::vector<std::size_t> degree(6, 0);
  for (auto [u, v] : t) {
    ++degree[u];
    ++degree[v];
  }
  EXPECT_EQ(degree[3], 4u);
  EXPECT_EQ(degree[4], 2u);
  EXPECT_EQ(degree[0], 1u);
}

TEST(PruferTest, EncodeDecodeRoundTrip) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 3 + rng.uniform(20);
    std::vector<std::size_t> seq(n - 2);
    for (auto& a : seq) a = rng.uniform(n);
    const UndirectedTree tree = pruferDecode(seq);
    EXPECT_EQ(pruferEncode(n, tree), seq) << "n=" << n;
  }
}

TEST(PruferTest, DecodeEncodeRoundTripOnStar) {
  // Star centered at 4 on 5 nodes: sequence (4, 4, 4).
  const std::vector<std::size_t> seq{4, 4, 4};
  EXPECT_EQ(pruferEncode(5, pruferDecode(seq)), seq);
}

TEST(PruferTest, DecodeProducesSpanningTree) {
  Rng rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.uniform(30);
    std::vector<std::size_t> seq(n >= 2 ? n - 2 : 0);
    for (auto& a : seq) a = rng.uniform(n);
    const UndirectedTree tree = pruferDecode(seq);
    EXPECT_EQ(tree.size(), n - 1);
    // Connectivity via union-find.
    std::vector<std::size_t> uf(n);
    for (std::size_t i = 0; i < n; ++i) uf[i] = i;
    const std::function<std::size_t(std::size_t)> find =
        [&](std::size_t x) -> std::size_t {
      return uf[x] == x ? x : uf[x] = find(uf[x]);
    };
    for (auto [u, v] : tree) uf[find(u)] = find(v);
    for (std::size_t i = 1; i < n; ++i) EXPECT_EQ(find(0), find(i));
  }
}

TEST(PruferTest, DistinctSequencesGiveDistinctTrees) {
  // Bijectivity spot check on n = 5: all 125 sequences decode uniquely.
  std::set<EdgeSet> seen;
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = 0; b < 5; ++b) {
      for (std::size_t c = 0; c < 5; ++c) {
        seen.insert(normalize(pruferDecode({a, b, c})));
      }
    }
  }
  EXPECT_EQ(seen.size(), 125u);  // Cayley: 5^3 labeled trees on 5 nodes
}

TEST(OrientTest, OrientAtEachRootGivesValidTree) {
  Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng.uniform(12);
    std::vector<std::size_t> seq(n - 2);
    for (auto& a : seq) a = rng.uniform(n);
    const UndirectedTree shape = pruferDecode(seq);
    for (std::size_t root = 0; root < n; ++root) {
      const RootedTree t = orientTree(n, shape, root);
      EXPECT_EQ(t.root(), root);
      EXPECT_EQ(t.size(), n);
      // Undirected projection must be the original edge set.
      UndirectedTree back;
      for (std::size_t v = 0; v < n; ++v) {
        if (v != root) back.emplace_back(t.parent(v), v);
      }
      EXPECT_EQ(normalize(back), normalize(shape));
    }
  }
}

TEST(OrientTest, RootedFromPruferMatchesManualPipeline) {
  const std::vector<std::size_t> seq{1, 1};
  const RootedTree direct = rootedFromPrufer(seq, 2);
  const RootedTree manual = orientTree(4, pruferDecode(seq), 2);
  EXPECT_EQ(direct, manual);
}

}  // namespace
}  // namespace dynbcast
