#include "src/support/table.h"

#include <gtest/gtest.h>

#include "src/support/assert.h"
#include "src/support/format.h"

namespace dynbcast {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"n", "bound"});
  t.row().add(std::uint64_t{8}).add("19");
  t.row().add(std::uint64_t{1024}).add("2472");
  const std::string out = t.render();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("1,024"), std::string::npos);
  EXPECT_NE(out.find("2472"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, MarkdownHasPipes) {
  TextTable t({"a", "b"});
  t.row().add(1).add(2);
  const std::string md = t.renderMarkdown();
  EXPECT_EQ(md.substr(0, 1), "|");
  EXPECT_NE(md.find("| a |"), std::string::npos);
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable t({"name", "value"});
  t.row().add("with,comma").add("with\"quote");
  const std::string csv = t.renderCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTableTest, AddBeforeRowThrows) {
  TextTable t({"x"});
  EXPECT_THROW(t.add("oops"), AssertionError);
}

TEST(TextTableTest, TooManyCellsThrows) {
  TextTable t({"only"});
  t.row().add("fine");
  EXPECT_THROW(t.add("extra"), AssertionError);
}

TEST(TextTableTest, DoubleFormatting) {
  TextTable t({"r"});
  t.row().add(2.41421356, 3);
  EXPECT_NE(t.render().find("2.414"), std::string::npos);
}

TEST(TextTableTest, RowCountTracksRows) {
  TextTable t({"x"});
  EXPECT_EQ(t.rowCount(), 0u);
  t.row().add(1);
  t.row().add(2);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(FormatTest, FmtDoubleDigits) {
  EXPECT_EQ(fmtDouble(1.5, 2), "1.50");
  EXPECT_EQ(fmtDouble(2.41421, 3), "2.414");
  EXPECT_EQ(fmtDouble(-0.5, 1), "-0.5");
}

TEST(FormatTest, FmtCountSeparators) {
  EXPECT_EQ(fmtCount(0), "0");
  EXPECT_EQ(fmtCount(999), "999");
  EXPECT_EQ(fmtCount(1000), "1,000");
  EXPECT_EQ(fmtCount(1234567), "1,234,567");
  EXPECT_EQ(fmtCount(1000000000ull), "1,000,000,000");
}

TEST(FormatTest, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(FormatTest, Padding) {
  EXPECT_EQ(padLeft("7", 3), "  7");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("long", 2), "long");
}

}  // namespace
}  // namespace dynbcast
