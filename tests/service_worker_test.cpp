// Worker-loop guarantees, including the two service acceptance
// criteria:
//
//   * checkpoint/resume — a manifest truncated at a task boundary (the
//     kill -9 damage model) resumes by re-running ONLY the unfinished
//     positions, and the final CSV is byte-identical to an
//     uninterrupted run, at --jobs=1 and --jobs=8;
//   * cache correctness — overlapping sweeps sharing a result cache
//     stay byte-identical to cold runs, and the second request executes
//     exactly the non-overlapping delta (counters exposed via
//     WorkerReport).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/engine/scenario.h"
#include "src/engine/task_plan.h"
#include "src/service/job.h"
#include "src/service/manifest.h"
#include "src/service/protocol.h"
#include "src/service/worker.h"
#include "src/support/file_lock.h"
#include "src/support/table.h"

namespace dynbcast {
namespace {

class ServiceWorkerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "dynbcast_worker_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);  // stale state from prior runs
    makeDirectories(dir_);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return dir_ + "/" + name;
  }

  std::string dir_;
};

/// A small graph-model request: 1 member per instance, no beam pass, so
/// positions map 1:1 onto rows.
[[nodiscard]] ServiceRequest makeRequest(std::vector<std::size_t> sizes) {
  ServiceRequest request;
  request.scenario.dynamics = "edge-markovian:p=0.3,q=0.3";
  request.scenario.sizes = std::move(sizes);
  request.scenario.seedsPerSize = 2;
  request.scenario.masterSeed = 7;
  return request;
}

void writeManifestFor(const std::string& manifestPath,
                      const ServiceRequest& request) {
  initManifest(manifestPath, canonicalRequestString(request),
               planServiceJob(request).taskCount());
}

/// The finished manifest rendered as the rows CSV — the byte-identity
/// oracle for resume and cache tests.
[[nodiscard]] std::string manifestCsv(const std::string& manifestPath,
                                      const ServiceRequest& request) {
  const auto state = loadManifest(manifestPath);
  EXPECT_TRUE(state.has_value() && state->complete());
  const std::size_t rowCount = planServiceJob(request).rowCount;
  std::vector<ServiceTaskResult> results;
  for (std::size_t p = 0; p < rowCount; ++p) {
    const auto& record = state->records[p];
    EXPECT_TRUE(record.has_value()) << "position " << p;
    results.push_back({record->rounds, record->completed});
  }
  TextTable table({"n", "seed", "member", "rounds", "completed"});
  for (const SweepRow& row : assembleServiceRows(request.scenario, results)) {
    table.row()
        .add(static_cast<std::uint64_t>(row.n))
        .add(row.instanceSeed)
        .add(row.member)
        .add(static_cast<std::uint64_t>(row.rounds))
        .add(row.completed ? "yes" : "no");
  }
  return table.renderCsv();
}

TEST_F(ServiceWorkerTest, ColdRunExecutesEverythingAndMatchesTheEngine) {
  const ServiceRequest request = makeRequest({6, 8, 10});
  const std::string manifest = path("cold.manifest");
  writeManifestFor(manifest, request);

  WorkerOptions options;
  options.manifestPath = manifest;
  const WorkerReport report = runManifestWorker(options);
  EXPECT_EQ(report.assigned, 6u);
  EXPECT_EQ(report.alreadyDone, 0u);
  EXPECT_EQ(report.cacheHits, 0u);
  EXPECT_EQ(report.executed, 6u);
  EXPECT_EQ(report.remaining, 0u);

  const auto state = loadManifest(manifest);
  ASSERT_TRUE(state.has_value());
  ASSERT_TRUE(state->complete());
  for (std::size_t p = 0; p < 6; ++p) {
    const SweepRow expected = runScenarioRow(request.scenario, p);
    ASSERT_TRUE(state->records[p].has_value());
    EXPECT_EQ(state->records[p]->rounds, expected.rounds) << p;
    EXPECT_EQ(state->records[p]->completed, expected.completed) << p;
  }
}

TEST_F(ServiceWorkerTest, TruncatedManifestResumesByteIdentically) {
  const ServiceRequest request = makeRequest({6, 8, 10});
  const std::string reference = path("reference.manifest");
  writeManifestFor(reference, request);
  WorkerOptions cold;
  cold.manifestPath = reference;
  (void)runManifestWorker(cold);
  const std::string referenceCsv = manifestCsv(reference, request);

  // Truncate at a task boundary — header plus the first three records —
  // and add a torn tail, exactly what kill -9 mid-append leaves behind.
  const auto full = readFileIfExists(reference);
  ASSERT_TRUE(full.has_value());
  std::string truncated;
  std::size_t lines = 0;
  for (const char c : *full) {
    truncated += c;
    if (c == '\n' && ++lines == 6) break;  // 3 header + 3 done lines
  }
  ASSERT_EQ(lines, 6u);
  truncated += "done 4 12";  // torn: no completed field, no newline

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    const std::string manifest =
        path("resume_jobs" + std::to_string(jobs) + ".manifest");
    writeFileDurable(manifest, truncated);

    WorkerOptions resume;
    resume.manifestPath = manifest;
    resume.jobs = jobs;
    const WorkerReport report = runManifestWorker(resume);
    EXPECT_EQ(report.assigned, 6u) << "jobs=" << jobs;
    EXPECT_EQ(report.alreadyDone, 3u) << "jobs=" << jobs;
    EXPECT_EQ(report.executed, 3u) << "jobs=" << jobs;  // only the delta
    EXPECT_EQ(report.remaining, 0u) << "jobs=" << jobs;
    EXPECT_EQ(manifestCsv(manifest, request), referenceCsv)
        << "jobs=" << jobs;
  }
}

TEST_F(ServiceWorkerTest, MaxTasksStopsAtATaskBoundaryAndResumeFinishes) {
  const ServiceRequest request = makeRequest({6, 8, 10});
  const std::string manifest = path("budget.manifest");
  writeManifestFor(manifest, request);

  WorkerOptions budget;
  budget.manifestPath = manifest;
  budget.maxTasks = 2;
  const WorkerReport first = runManifestWorker(budget);
  EXPECT_EQ(first.executed, 2u);
  EXPECT_EQ(first.remaining, 4u);
  const auto mid = loadManifest(manifest);
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->doneCount, 2u);  // both checkpointed before returning

  WorkerOptions finish;
  finish.manifestPath = manifest;
  const WorkerReport second = runManifestWorker(finish);
  EXPECT_EQ(second.alreadyDone, 2u);
  EXPECT_EQ(second.executed, 4u);
  EXPECT_TRUE(loadManifest(manifest)->complete());
}

TEST_F(ServiceWorkerTest, DisjointRangesDrainOneManifest) {
  const ServiceRequest request = makeRequest({6, 8, 10});
  const std::string manifest = path("sharded.manifest");
  writeManifestFor(manifest, request);

  WorkerOptions low;
  low.manifestPath = manifest;
  low.rangeBegin = 0;
  low.rangeEnd = 3;
  WorkerOptions high;
  high.manifestPath = manifest;
  high.rangeBegin = 3;  // rangeEnd clamps to the task count
  const WorkerReport lowReport = runManifestWorker(low);
  const WorkerReport highReport = runManifestWorker(high);
  EXPECT_EQ(lowReport.assigned, 3u);
  EXPECT_EQ(highReport.assigned, 3u);
  EXPECT_EQ(lowReport.executed + highReport.executed, 6u);
  EXPECT_TRUE(loadManifest(manifest)->complete());

  // Sharded result == cold single-worker result.
  const std::string reference = path("sharded_reference.manifest");
  writeManifestFor(reference, request);
  WorkerOptions cold;
  cold.manifestPath = reference;
  (void)runManifestWorker(cold);
  EXPECT_EQ(manifestCsv(manifest, request), manifestCsv(reference, request));
}

TEST_F(ServiceWorkerTest, OverlappingSweepsExecuteOnlyTheDelta) {
  const ServiceRequest small = makeRequest({6, 8});       // 4 rows
  const ServiceRequest large = makeRequest({6, 8, 10, 12});  // 8 rows
  const std::string cacheDir = path("cache");

  // Cold CSV oracles, no cache involved.
  const std::string smallRef = path("small_ref.manifest");
  writeManifestFor(smallRef, small);
  WorkerOptions coldSmall;
  coldSmall.manifestPath = smallRef;
  (void)runManifestWorker(coldSmall);
  const std::string largeRef = path("large_ref.manifest");
  writeManifestFor(largeRef, large);
  WorkerOptions coldLarge;
  coldLarge.manifestPath = largeRef;
  (void)runManifestWorker(coldLarge);

  // First request: everything misses, everything lands in the cache.
  const std::string smallManifest = path("small.manifest");
  writeManifestFor(smallManifest, small);
  WorkerOptions first;
  first.manifestPath = smallManifest;
  first.cacheDir = cacheDir;
  const WorkerReport firstReport = runManifestWorker(first);
  EXPECT_EQ(firstReport.cacheHits, 0u);
  EXPECT_EQ(firstReport.executed, 4u);
  EXPECT_EQ(manifestCsv(smallManifest, small),
            manifestCsv(smallRef, small));

  // Second, overlapping request: exactly the non-overlapping delta runs.
  const std::string largeManifest = path("large.manifest");
  writeManifestFor(largeManifest, large);
  WorkerOptions second;
  second.manifestPath = largeManifest;
  second.cacheDir = cacheDir;
  const WorkerReport secondReport = runManifestWorker(second);
  EXPECT_EQ(secondReport.cacheHits, 4u);
  EXPECT_EQ(secondReport.executed, 4u);
  EXPECT_EQ(manifestCsv(largeManifest, large),
            manifestCsv(largeRef, large));

  // Resubmitting the first request is now pure cache: zero executions.
  const std::string again = path("small_again.manifest");
  writeManifestFor(again, small);
  WorkerOptions third;
  third.manifestPath = again;
  third.cacheDir = cacheDir;
  const WorkerReport thirdReport = runManifestWorker(third);
  EXPECT_EQ(thirdReport.cacheHits, 4u);
  EXPECT_EQ(thirdReport.executed, 0u);
  EXPECT_EQ(manifestCsv(again, small), manifestCsv(smallRef, small));
}

TEST_F(ServiceWorkerTest, MissingManifestThrows) {
  WorkerOptions options;
  options.manifestPath = path("nope.manifest");
  EXPECT_THROW((void)runManifestWorker(options), std::runtime_error);
}

}  // namespace
}  // namespace dynbcast
