#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include "src/support/assert.h"
#include "src/support/rng.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

TEST(TraceTest, RecordAccumulatesRounds) {
  SimTrace trace(4, 99);
  BroadcastSim sim(4);
  sim.applyTree(makePath(4));
  trace.record(makePath(4), sim.metrics());
  EXPECT_EQ(trace.roundCount(), 1u);
  EXPECT_EQ(trace.processCount(), 4u);
  EXPECT_EQ(trace.seed(), 99u);
}

TEST(TraceTest, ReplayVerifiesCleanly) {
  Rng rng(7);
  bool completed = false;
  const SimTrace trace = recordBroadcastTrace(
      8, [&rng](const BroadcastSim&) { return randomRootedTree(8, rng); },
      500, 7, &completed);
  ASSERT_TRUE(completed);
  const std::size_t replayedTStar = trace.replayAndVerify();
  EXPECT_EQ(replayedTStar, trace.roundCount());
}

TEST(TraceTest, ReplayDetectsTampering) {
  Rng rng(13);
  const std::size_t n = 6;
  BroadcastSim sim(n);
  SimTrace trace(n);
  const RootedTree t1 = randomRootedTree(n, rng);
  sim.applyTree(t1);
  RoundMetrics wrong = sim.metrics();
  wrong.totalEdges += 1;  // corrupt the recording
  trace.record(t1, wrong);
  EXPECT_THROW(trace.replayAndVerify(), AssertionError);
}

TEST(TraceTest, CsvHasHeaderAndRows) {
  Rng rng(17);
  const SimTrace trace = recordBroadcastTrace(
      5, [&rng](const BroadcastSim&) { return randomRootedTree(5, rng); },
      200);
  const std::string csv = trace.toCsv();
  EXPECT_NE(csv.find("round,total_edges"), std::string::npos);
  // Header + one line per round.
  const std::size_t lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, trace.roundCount() + 1);
}

TEST(TraceTest, RecordRejectsWrongSize) {
  SimTrace trace(4);
  BroadcastSim sim(5);
  sim.applyTree(makePath(5));
  EXPECT_THROW(trace.record(makePath(5), sim.metrics()), AssertionError);
}

TEST(TraceTest, StaticPathTraceHasExpectedLength) {
  bool completed = false;
  const SimTrace trace = recordBroadcastTrace(
      9, [](const BroadcastSim&) { return makePath(9); }, 100, 0,
      &completed);
  EXPECT_TRUE(completed);
  EXPECT_EQ(trace.roundCount(), 8u);
  EXPECT_EQ(trace.replayAndVerify(), 8u);
}

}  // namespace
}  // namespace dynbcast
