#include "src/tree/enumerate.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/graph/properties.h"

namespace dynbcast {
namespace {

TEST(CountTest, CayleyFormula) {
  EXPECT_EQ(rootedTreeCount(1), 1u);
  EXPECT_EQ(rootedTreeCount(2), 2u);
  EXPECT_EQ(rootedTreeCount(3), 9u);
  EXPECT_EQ(rootedTreeCount(4), 64u);
  EXPECT_EQ(rootedTreeCount(5), 625u);
  EXPECT_EQ(rootedTreeCount(6), 7776u);
}

TEST(CountTest, OverflowThrows) {
  EXPECT_THROW(static_cast<void>(rootedTreeCount(64)), std::overflow_error);
}

class EnumerateTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EnumerateTest, VisitsExactlyAllDistinctTrees) {
  const std::size_t n = GetParam();
  std::set<std::string> seen;
  std::uint64_t visited = forEachRootedTree(n, [&](const RootedTree& t) {
    EXPECT_EQ(t.size(), n);
    seen.insert(t.toString());
    return true;
  });
  EXPECT_EQ(visited, rootedTreeCount(n));
  EXPECT_EQ(seen.size(), rootedTreeCount(n)) << "duplicates visited";
}

TEST_P(EnumerateTest, AllVisitedAreValidTreeMatrices) {
  const std::size_t n = GetParam();
  forEachRootedTree(n, [&](const RootedTree& t) {
    EXPECT_TRUE(isRootedTreeWithSelfLoops(t.toMatrix()));
    return true;
  });
}

INSTANTIATE_TEST_SUITE_P(SmallN, EnumerateTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(EnumerateTest, EarlyStopHonored) {
  std::uint64_t count = 0;
  const std::uint64_t visited = forEachRootedTree(4, [&](const RootedTree&) {
    return ++count < 10;
  });
  EXPECT_EQ(visited, 10u);
}

TEST(EnumerateTest, AllRootedTreesMaterializes) {
  const std::vector<RootedTree> all = allRootedTrees(3);
  EXPECT_EQ(all.size(), 9u);
  // Every root value appears exactly 3 times (3 shapes × 3 roots).
  std::size_t rootZero = 0;
  for (const auto& t : all) {
    if (t.root() == 0) ++rootZero;
  }
  EXPECT_EQ(rootZero, 3u);
}

}  // namespace
}  // namespace dynbcast
