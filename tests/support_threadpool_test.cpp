// ThreadPool: the work-stealing substrate under the experiment engine.
// The contracts tested here are the ones sweeps lean on: nothing
// submitted is ever dropped (shutdown drains), exceptions surface
// instead of killing workers, and nested/blocking patterns cannot
// deadlock the pool.
#include "src/support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace dynbcast {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    for (int i = 0; i < 100; ++i) {
      futures.push_back(pool.submit([&ran] { ++ran; }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsTaskResult) {
  ThreadPool pool(2);
  auto doubled = pool.submit([] { return 21 * 2; });
  auto text = pool.submit([] { return std::string("hello"); });
  EXPECT_EQ(doubled.get(), 42);
  EXPECT_EQ(text.get(), "hello");
}

TEST(ThreadPoolTest, ShutdownDrainsPendingWork) {
  // Destroying the pool right after a burst of slow-ish tasks must run
  // every one of them — shutdown drains, it never drops.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++ran;
      });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFutureAndPoolSurvives) {
  ThreadPool pool(2);
  auto failing = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  auto after = pool.submit([] { return 7; });
  EXPECT_EQ(after.get(), 7);
}

TEST(ThreadPoolTest, TasksSpreadAcrossAllWorkers) {
  // Four tasks block until all four have started; that can only resolve
  // if four distinct workers picked them up concurrently.
  ThreadPool pool(4);
  std::atomic<int> started{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.submit([&started] {
      ++started;
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (started.load() < 4 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(started.load(), 4);
}

TEST(ThreadPoolTest, NestedSubmitFromInsideTask) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  auto outer = pool.submit([&pool, &inner] {
    std::vector<std::future<void>> children;
    for (int i = 0; i < 8; ++i) {
      children.push_back(pool.submit([&inner] { ++inner; }));
    }
    // Intentionally no get(): the children outlive the parent task and
    // must still all run before shutdown.
  });
  outer.get();
  // Destructor drain (scope end in ~ThreadPool) guarantees the children
  // ran; synchronize explicitly here so the assertion is race-free.
  while (pool.pendingTasks() != 0) std::this_thread::yield();
  EXPECT_EQ(inner.load(), 8);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallelFor(257, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOneCounts) {
  ThreadPool pool(2);
  pool.parallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  pool.parallelFor(1, [&calls](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  // Deterministic error reporting: whatever the schedule, the surviving
  // exception is the one from the smallest failing index.
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      pool.parallelFor(64, [](std::size_t i) {
        if (i % 2 == 1) {
          throw std::runtime_error(std::to_string(i));
        }
      });
      FAIL() << "expected parallelFor to throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "1");
    }
  }
}

TEST(ThreadPoolTest, ParallelForNestedInsideTask) {
  // A parallelFor issued from a worker thread must not deadlock even
  // when the pool has a single thread (the caller helps execute).
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  auto outer = pool.submit([&pool, &ran] {
    pool.parallelFor(16, [&ran](std::size_t) { ++ran; });
  });
  outer.get();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.threadCount(), 1u);
}

}  // namespace
}  // namespace dynbcast
