#include "src/support/bitset.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"

namespace dynbcast {
namespace {

TEST(DynBitsetTest, DefaultConstructedIsEmpty) {
  DynBitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.none());
  EXPECT_TRUE(b.all());  // vacuous
}

TEST(DynBitsetTest, SizedConstructionIsAllZero) {
  DynBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
  EXPECT_FALSE(b.all());
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynBitsetTest, SetResetTest) {
  DynBitset b(100);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynBitsetTest, AssignSetsAndClears) {
  DynBitset b(10);
  b.assign(3, true);
  EXPECT_TRUE(b.test(3));
  b.assign(3, false);
  EXPECT_FALSE(b.test(3));
}

TEST(DynBitsetTest, SetAllRespectsTailInvariant) {
  for (const std::size_t size : {1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    DynBitset b(size);
    b.setAll();
    EXPECT_EQ(b.count(), size) << "size=" << size;
    EXPECT_TRUE(b.all()) << "size=" << size;
    // The tail invariant: no bits beyond size() may be set, which `all`
    // and `count` both rely on.
    if (size % 64 != 0) {
      EXPECT_EQ(b.words().back() >> (size % 64), 0u) << "size=" << size;
    }
  }
}

TEST(DynBitsetTest, ClearZeroesEverything) {
  DynBitset b(77);
  b.setAll();
  b.clear();
  EXPECT_TRUE(b.none());
}

TEST(DynBitsetTest, OrWithUnionsBits) {
  DynBitset a(130), b(130);
  a.set(5);
  a.set(100);
  b.set(6);
  b.set(100);
  a.orWith(b);
  EXPECT_TRUE(a.test(5));
  EXPECT_TRUE(a.test(6));
  EXPECT_TRUE(a.test(100));
  EXPECT_EQ(a.count(), 3u);
}

TEST(DynBitsetTest, AndWithIntersectsBits) {
  DynBitset a(130), b(130);
  a.set(5);
  a.set(100);
  b.set(100);
  b.set(101);
  a.andWith(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_TRUE(a.test(100));
}

TEST(DynBitsetTest, SubtractRemovesBits) {
  DynBitset a(70), b(70);
  a.set(1);
  a.set(65);
  b.set(65);
  a.subtract(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_FALSE(a.test(65));
}

TEST(DynBitsetTest, IntersectsDetectsSharedBit) {
  DynBitset a(200), b(200);
  a.set(150);
  EXPECT_FALSE(a.intersects(b));
  b.set(150);
  EXPECT_TRUE(a.intersects(b));
}

TEST(DynBitsetTest, SupersetRelation) {
  DynBitset a(66), b(66);
  a.set(1);
  a.set(65);
  b.set(1);
  EXPECT_TRUE(a.isSupersetOf(b));
  EXPECT_FALSE(b.isSupersetOf(a));
  EXPECT_TRUE(a.isSupersetOf(a));
  b.set(2);
  EXPECT_FALSE(a.isSupersetOf(b));
}

TEST(DynBitsetTest, FindFirstAndNextWalkSetBits) {
  DynBitset b(200);
  b.set(3);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.findFirst(), 3u);
  EXPECT_EQ(b.findNext(4), 64u);
  EXPECT_EQ(b.findNext(65), 199u);
  EXPECT_EQ(b.findNext(200), 200u);
  DynBitset empty(50);
  EXPECT_EQ(empty.findFirst(), 50u);
}

TEST(DynBitsetTest, ToIndicesListsAscending) {
  DynBitset b(100);
  b.set(7);
  b.set(70);
  b.set(0);
  const std::vector<std::size_t> idx = b.toIndices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 7u);
  EXPECT_EQ(idx[2], 70u);
}

TEST(DynBitsetTest, EqualityAndOrdering) {
  DynBitset a(10), b(10);
  EXPECT_EQ(a, b);
  a.set(3);
  EXPECT_NE(a, b);
  EXPECT_TRUE(b < a);
}

TEST(DynBitsetTest, HashDiffersOnContent) {
  DynBitset a(64), b(64);
  a.set(1);
  b.set(2);
  EXPECT_NE(a.hash(), b.hash());
  DynBitset c(64);
  c.set(1);
  EXPECT_EQ(a.hash(), c.hash());
}

TEST(DynBitsetTest, ToStringRendersBitZeroFirst) {
  DynBitset b(4);
  b.set(0);
  b.set(2);
  EXPECT_EQ(b.toString(), "1010");
}

// Property sweep: randomized ops agree with a reference std::vector<bool>.
class DynBitsetPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DynBitsetPropertyTest, MatchesReferenceImplementation) {
  const std::size_t size = GetParam();
  Rng rng(size * 7919 + 13);
  DynBitset b(size);
  std::vector<bool> ref(size, false);
  for (int step = 0; step < 500; ++step) {
    const std::size_t i = rng.uniform(size);
    switch (rng.uniform(3)) {
      case 0:
        b.set(i);
        ref[i] = true;
        break;
      case 1:
        b.reset(i);
        ref[i] = false;
        break;
      default:
        EXPECT_EQ(b.test(i), ref[i]);
    }
  }
  std::size_t refCount = 0;
  for (std::size_t i = 0; i < size; ++i) {
    EXPECT_EQ(b.test(i), ref[i]) << "bit " << i;
    if (ref[i]) ++refCount;
  }
  EXPECT_EQ(b.count(), refCount);
}

TEST_P(DynBitsetPropertyTest, UnionIsCommutativeAndIdempotent) {
  const std::size_t size = GetParam();
  Rng rng(size + 42);
  DynBitset a(size), b(size);
  for (std::size_t i = 0; i < size; ++i) {
    if (rng.chance(0.3)) a.set(i);
    if (rng.chance(0.3)) b.set(i);
  }
  DynBitset ab = a;
  ab.orWith(b);
  DynBitset ba = b;
  ba.orWith(a);
  EXPECT_EQ(ab, ba);
  DynBitset again = ab;
  again.orWith(b);
  EXPECT_EQ(again, ab);
  EXPECT_TRUE(ab.isSupersetOf(a));
  EXPECT_TRUE(ab.isSupersetOf(b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DynBitsetPropertyTest,
                         ::testing::Values(1, 7, 63, 64, 65, 128, 129, 500));

}  // namespace
}  // namespace dynbcast
