#include "src/sim/broadcast_sim.h"

#include <gtest/gtest.h>

#include "src/graph/properties.h"
#include "src/support/assert.h"
#include "src/support/rng.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

TEST(BroadcastSimTest, InitialStateIsIdentity) {
  BroadcastSim sim(4);
  EXPECT_EQ(sim.round(), 0u);
  for (std::size_t y = 0; y < 4; ++y) {
    EXPECT_EQ(sim.heardBy(y).count(), 1u);
    EXPECT_TRUE(sim.heardBy(y).test(y));
  }
  EXPECT_FALSE(sim.broadcastDone());
  EXPECT_FALSE(sim.gossipDone());
}

TEST(BroadcastSimTest, SingleProcessIsInstantlyDone) {
  BroadcastSim sim(1);
  EXPECT_TRUE(sim.broadcastDone());
  EXPECT_TRUE(sim.gossipDone());
}

TEST(BroadcastSimTest, OneStarRoundBroadcasts) {
  BroadcastSim sim(6);
  sim.applyTree(makeStar(6, 2));
  EXPECT_TRUE(sim.broadcastDone());
  const DynBitset bc = sim.broadcasters();
  EXPECT_EQ(bc.count(), 1u);
  EXPECT_TRUE(bc.test(2));
}

TEST(BroadcastSimTest, StaticPathTakesNMinus1Rounds) {
  // Paper §2: repeating a path gives broadcast time exactly n−1.
  for (const std::size_t n : {2u, 3u, 5u, 17u, 50u}) {
    BroadcastSim sim(n);
    const RootedTree path = makePath(n);
    while (!sim.broadcastDone()) {
      ASSERT_LE(sim.round(), n) << "static path exceeded n rounds";
      sim.applyTree(path);
    }
    EXPECT_EQ(sim.round(), n - 1) << "n=" << n;
  }
}

TEST(BroadcastSimTest, StaticTreeTakesHeightRounds) {
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform(20);
    const RootedTree tree = randomRootedTree(n, rng);
    BroadcastSim sim(n);
    while (!sim.broadcastDone()) {
      ASSERT_LE(sim.round(), n);
      sim.applyTree(tree);
    }
    EXPECT_EQ(sim.round(), tree.height()) << tree.toString();
  }
}

TEST(BroadcastSimTest, HeardSetsAreMonotone) {
  Rng rng(3);
  BroadcastSim sim(12);
  std::vector<DynBitset> prev;
  for (std::size_t y = 0; y < 12; ++y) prev.push_back(sim.heardBy(y));
  for (int r = 0; r < 30; ++r) {
    sim.applyTree(randomRootedTree(12, rng));
    for (std::size_t y = 0; y < 12; ++y) {
      EXPECT_TRUE(sim.heardBy(y).isSupersetOf(prev[y]));
      prev[y] = sim.heardBy(y);
    }
  }
}

TEST(BroadcastSimTest, AtLeastOneNewEdgePerRoundUntilGossip) {
  // §2's trivial-progress argument: the product gains ≥ 1 edge per round
  // as long as some heard set is incomplete.
  Rng rng(7);
  BroadcastSim sim(9);
  std::size_t prevEdges = sim.metrics().totalEdges;
  while (!sim.gossipDone()) {
    sim.applyTree(randomRootedTree(9, rng));
    const std::size_t edges = sim.metrics().totalEdges;
    EXPECT_GT(edges, prevEdges);
    prevEdges = edges;
    ASSERT_LT(sim.round(), 200u);
  }
}

TEST(BroadcastSimTest, ReachMatrixIsTransposeOfHeard) {
  Rng rng(19);
  BroadcastSim sim(8);
  for (int r = 0; r < 5; ++r) sim.applyTree(randomRootedTree(8, rng));
  const BitMatrix reach = sim.reachMatrix();
  for (std::size_t x = 0; x < 8; ++x) {
    for (std::size_t y = 0; y < 8; ++y) {
      EXPECT_EQ(reach.get(x, y), sim.heardBy(y).test(x));
    }
  }
}

TEST(BroadcastSimTest, ReachMatrixEqualsExplicitProduct) {
  // The simulator must compute exactly G(t) = G_1 ∘ … ∘ G_t (Def. 2.1).
  Rng rng(23);
  const std::size_t n = 7;
  BroadcastSim sim(n);
  BitMatrix product = BitMatrix::identity(n);
  for (int r = 0; r < 12; ++r) {
    const RootedTree t = randomRootedTree(n, rng);
    sim.applyTree(t);
    product = product.product(t.toMatrix());
    EXPECT_EQ(sim.reachMatrix(), product) << "round " << r + 1;
  }
}

TEST(BroadcastSimTest, ApplyGraphMatchesApplyTree) {
  Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.uniform(10);
    const RootedTree t = randomRootedTree(n, rng);
    BroadcastSim a(n), b(n);
    a.applyTree(t);
    b.applyGraph(t.toMatrix());
    for (std::size_t y = 0; y < n; ++y) {
      EXPECT_EQ(a.heardBy(y), b.heardBy(y));
    }
  }
}

TEST(BroadcastSimTest, ApplyGraphRejectsMissingSelfLoops) {
  BroadcastSim sim(3);
  BitMatrix g(3);  // no self-loops
  g.set(0, 1);
  EXPECT_THROW(sim.applyGraph(g), AssertionError);
}

TEST(BroadcastSimTest, ResetRestoresIdentity) {
  Rng rng(31);
  BroadcastSim sim(6);
  sim.applyTree(randomRootedTree(6, rng));
  sim.reset();
  EXPECT_EQ(sim.round(), 0u);
  for (std::size_t y = 0; y < 6; ++y) {
    EXPECT_EQ(sim.heardBy(y).count(), 1u);
  }
}

TEST(BroadcastSimTest, SizeMismatchThrows) {
  BroadcastSim sim(5);
  EXPECT_THROW(sim.applyTree(makePath(4)), AssertionError);
}

TEST(BroadcastSimTest, FromHeardResumesState) {
  Rng rng(61);
  BroadcastSim original(7);
  for (int r = 0; r < 4; ++r) original.applyTree(randomRootedTree(7, rng));
  BroadcastSim resumed = BroadcastSim::fromHeard(
      std::vector<DynBitset>(original.heardMatrix()), original.round());
  EXPECT_EQ(resumed.round(), original.round());
  // Applying the same tree to both keeps them identical.
  const RootedTree t = randomRootedTree(7, rng);
  original.applyTree(t);
  resumed.applyTree(t);
  for (std::size_t y = 0; y < 7; ++y) {
    EXPECT_EQ(resumed.heardBy(y), original.heardBy(y));
  }
}

TEST(BroadcastSimTest, FromHeardRejectsMissingSelfBit) {
  std::vector<DynBitset> heard(3, DynBitset(3));
  heard[0].set(0);
  heard[1].set(1);
  // heard[2] missing its own bit.
  EXPECT_THROW(BroadcastSim::fromHeard(std::move(heard)), AssertionError);
}

TEST(RunnersTest, RunBroadcastCompletesOnRandomTrees) {
  Rng rng(41);
  const BroadcastRun run = runBroadcast(
      10,
      [&rng](const BroadcastSim&) { return randomRootedTree(10, rng); },
      1000);
  EXPECT_TRUE(run.completed);
  EXPECT_GT(run.rounds, 0u);
}

TEST(RunnersTest, RunBroadcastHonorsCap) {
  // An adversary that starves one branch: identity path forever takes
  // exactly n−1, so a cap of 3 must report incomplete for n = 10.
  const BroadcastRun run = runBroadcast(
      10, [](const BroadcastSim&) { return makePath(10); }, 3);
  EXPECT_FALSE(run.completed);
  EXPECT_EQ(run.rounds, 3u);
}

TEST(RunnersTest, HistoryRecordedWhenRequested) {
  const BroadcastRun run = runBroadcast(
      5, [](const BroadcastSim&) { return makePath(5); }, 100, true);
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.history.size(), run.rounds);
  // Metrics rounds are 1-based and increasing.
  for (std::size_t i = 0; i < run.history.size(); ++i) {
    EXPECT_EQ(run.history[i].round, i + 1);
  }
}

TEST(RunnersTest, GossipTakesAtLeastBroadcast) {
  Rng rng(43);
  for (int trial = 0; trial < 5; ++trial) {
    Rng r1 = rng.split();
    Rng r2 = r1;  // identical tree sequences for both runs
    const std::size_t n = 4 + rng.uniform(8);
    const BroadcastRun b = runBroadcast(
        n, [&r1, n](const BroadcastSim&) { return randomRootedTree(n, r1); },
        5000);
    const BroadcastRun g = runGossip(
        n, [&r2, n](const BroadcastSim&) { return randomRootedTree(n, r2); },
        5000);
    ASSERT_TRUE(b.completed);
    ASSERT_TRUE(g.completed);
    EXPECT_GE(g.rounds, b.rounds);
  }
}

class StaticPathSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StaticPathSweep, ExactlyNMinus1) {
  const std::size_t n = GetParam();
  const BroadcastRun run = runBroadcast(
      n, [n](const BroadcastSim&) { return makePath(n); }, n + 2);
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.rounds, n - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StaticPathSweep,
                         ::testing::Values(2, 3, 4, 8, 16, 33, 64, 128, 257));

// --- incremental completion state ------------------------------------
//
// The simulator maintains ⋂_y Heard(y), per-row popcounts, and the
// full-row counter incrementally (see broadcast_sim.h). These checks
// recompute all three from the raw matrix after EVERY round of a random
// adversary trace and demand exact agreement — including at sizes with a
// partial tail word.

void expectCompletionStateConsistent(const BroadcastSim& sim) {
  const std::size_t n = sim.processCount();
  DynBitset common(n);
  common.setAll();
  std::size_t fullRows = 0;
  for (std::size_t y = 0; y < n; ++y) {
    const DynBitset& row = sim.heardBy(y);
    EXPECT_EQ(sim.heardCount(y), row.count()) << "row " << y;
    if (row.all()) ++fullRows;
    common.andWith(row);
  }
  EXPECT_EQ(sim.broadcasters(), common);
  EXPECT_EQ(sim.broadcastDone(), common.any());
  EXPECT_EQ(sim.gossipDone(), fullRows == n);
}

TEST(BroadcastSimIncrementalTest, MatchesRecomputeOnRandomTrace) {
  Rng rng(2024);
  for (const std::size_t n : {2u, 5u, 63u, 65u, 96u}) {
    BroadcastSim sim(n);
    expectCompletionStateConsistent(sim);
    // Run well past broadcast completion toward gossip so the full-row
    // counter is exercised through its whole range.
    for (std::size_t r = 0; r < 4 * n && !sim.gossipDone(); ++r) {
      sim.applyTree(randomRootedTree(n, rng));
      expectCompletionStateConsistent(sim);
    }
    sim.reset();
    expectCompletionStateConsistent(sim);
  }
}

TEST(BroadcastSimIncrementalTest, MatchesRecomputeOnGraphRounds) {
  // applyGraph rebuilds the completion state wholesale; verify it against
  // the same recompute.
  Rng rng(7);
  const std::size_t n = 33;
  BroadcastSim sim(n);
  for (int r = 0; r < 12; ++r) {
    BitMatrix g = BitMatrix::identity(n);
    for (int e = 0; e < 40; ++e) {
      g.set(rng.uniform(n), rng.uniform(n));
    }
    sim.applyGraph(g);
    expectCompletionStateConsistent(sim);
  }
}

TEST(BroadcastSimIncrementalTest, FromHeardRebuildsState) {
  Rng rng(8);
  const std::size_t n = 65;
  BroadcastSim source(n);
  for (int r = 0; r < 5; ++r) source.applyTree(randomRootedTree(n, rng));
  const BroadcastSim resumed =
      BroadcastSim::fromHeard(source.heardMatrix(), source.round());
  expectCompletionStateConsistent(resumed);
  EXPECT_EQ(resumed.broadcastDone(), source.broadcastDone());
  EXPECT_EQ(resumed.gossipDone(), source.gossipDone());
}

}  // namespace
}  // namespace dynbcast
