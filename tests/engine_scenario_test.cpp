#include "src/engine/scenario.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/adversary/adversary.h"
#include "src/bounds/bounds.h"
#include "src/sim/gossip.h"

namespace dynbcast {
namespace {

TEST(ScenarioVocabularyTest, ParseAndPrintRoundTrip) {
  EXPECT_EQ(parseObjective("broadcast"), Objective::kBroadcast);
  EXPECT_EQ(parseObjective("gossip"), Objective::kGossip);
  EXPECT_EQ(objectiveName(Objective::kGossip), "gossip");
  EXPECT_EQ(parseDynamics("rooted-tree"), Dynamics::kRootedTree);
  EXPECT_EQ(parseDynamics("restricted"), Dynamics::kRestricted);
  EXPECT_EQ(parseDynamics("nonsplit"), Dynamics::kNonsplit);
  EXPECT_EQ(dynamicsName(Dynamics::kNonsplit), "nonsplit");
  EXPECT_THROW((void)parseObjective("gosip"), std::invalid_argument);
  EXPECT_THROW((void)parseDynamics("rootedtree"), std::invalid_argument);
}

TEST(ScenarioTest, DefaultBroadcastScenarioMatchesRunSweepBitForBit) {
  ExperimentEngine engine({.jobs = 2});
  ScenarioSpec scenario;
  scenario.sizes = {6, 9};
  scenario.masterSeed = 11;
  scenario.seedsPerSize = 2;
  const ScenarioResult viaScenario = runScenario(scenario, engine);

  SweepSpec sweep;
  sweep.sizes = {6, 9};
  sweep.masterSeed = 11;
  sweep.seedsPerSize = 2;
  const SweepResult direct = engine.runSweep(sweep);

  ASSERT_EQ(viaScenario.rows.size(), direct.rows.size());
  for (std::size_t i = 0; i < direct.rows.size(); ++i) {
    EXPECT_EQ(viaScenario.rows[i], direct.rows[i]) << "row " << i;
  }
  ASSERT_EQ(viaScenario.instances.size(), direct.instances.size());
  for (std::size_t i = 0; i < direct.instances.size(); ++i) {
    EXPECT_EQ(viaScenario.instances[i].portfolio.bestRounds,
              direct.instances[i].portfolio.bestRounds);
    EXPECT_EQ(viaScenario.instances[i].portfolio.bestName,
              direct.instances[i].portfolio.bestName);
  }
}

TEST(ScenarioTest, ExplicitSpecListControlsRowsAndOrder) {
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.sizes = {8, 10};
  scenario.adversaries = {"static-path", "freeze-path:depth=2"};
  const ScenarioResult result = runScenario(scenario, engine);
  ASSERT_EQ(result.rows.size(), 4u);
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    EXPECT_EQ(result.rows[i].member,
              i % 2 == 0 ? "static-path" : "freeze-path:depth=2");
  }
  // The static path is exact: t* = n-1 (paper §2).
  EXPECT_EQ(result.rows[0].rounds, 7u);
  EXPECT_EQ(result.rows[2].rounds, 9u);
}

TEST(ScenarioTest, GossipFactsFromThePaper) {
  // Static trees never complete gossip (a leaf's id cannot propagate);
  // dynamic oblivious sequences complete in Theta(n); and the capped
  // stall is reported via defaultGossipRoundCap, not the broadcast cap.
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.objective = Objective::kGossip;
  scenario.sizes = {8};
  scenario.adversaries = {"static-path", "alternating-path"};
  const ScenarioResult result = runScenario(scenario, engine);
  ASSERT_EQ(result.rows.size(), 2u);

  const ScenarioRow& staticRow = result.rows[0];
  EXPECT_FALSE(staticRow.completed);
  EXPECT_EQ(staticRow.rounds, defaultGossipRoundCap(8));

  const ScenarioRow& alternating = result.rows[1];
  EXPECT_TRUE(alternating.completed);
  EXPECT_GE(alternating.rounds, 8u);   // gossip >= broadcast >= n-1
  EXPECT_LE(alternating.rounds, 16u);  // ping-pong finishes in ~2n

  // The instance aggregate only counts completed runs.
  ASSERT_EQ(result.instances.size(), 1u);
  EXPECT_EQ(result.instances[0].portfolio.bestName, "alternating-path");
}

TEST(ScenarioTest, GossipDominatesBroadcastMemberwise) {
  ExperimentEngine engine;
  ScenarioSpec broadcast;
  broadcast.sizes = {10};
  broadcast.adversaries = {"alternating-path", "random-tree"};
  ScenarioSpec gossip = broadcast;
  gossip.objective = Objective::kGossip;
  const ScenarioResult b = runScenario(broadcast, engine);
  const ScenarioResult g = runScenario(gossip, engine);
  ASSERT_EQ(b.rows.size(), g.rows.size());
  for (std::size_t i = 0; i < b.rows.size(); ++i) {
    ASSERT_TRUE(g.rows[i].completed) << g.rows[i].member;
    EXPECT_GE(g.rows[i].rounds, b.rows[i].rounds) << g.rows[i].member;
  }
}

TEST(ScenarioTest, RestrictedDynamicsValidatesTheClass) {
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.dynamics = Dynamics::kRestricted;
  scenario.sizes = {12};
  scenario.adversaries = {"greedy-delay"};
  EXPECT_THROW((void)runScenario(scenario, engine), std::invalid_argument);

  scenario.adversaries = {"k-leaf:k=3", "k-inner:k=3",
                          "freeze-broom:handle=4"};
  const ScenarioResult result = runScenario(scenario, engine);
  ASSERT_EQ(result.rows.size(), 3u);
  for (const ScenarioRow& row : result.rows) {
    EXPECT_TRUE(row.completed) << row.member;
    // Everything in the restricted classes obeys the O(kn) bound of [14].
    EXPECT_LE(row.rounds, bounds::kLeafUpper(12, 4)) << row.member;
  }
}

TEST(ScenarioTest, NonsplitStaysWithinTheLogBound) {
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.dynamics = Dynamics::kNonsplit;
  scenario.sizes = {16, 32};
  scenario.seedsPerSize = 2;
  const ScenarioResult result = runScenario(scenario, engine);
  ASSERT_EQ(result.rows.size(), 2u * 2u * 2u);
  for (const ScenarioRow& row : result.rows) {
    EXPECT_TRUE(row.completed) << row.member;
    EXPECT_LE(row.rounds, bounds::nonsplitLogUpper(row.n) + 8)
        << row.member;
  }
}

TEST(ScenarioTest, NonsplitGossipIsRejected) {
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.objective = Objective::kGossip;
  scenario.dynamics = Dynamics::kNonsplit;
  scenario.sizes = {8};
  EXPECT_THROW((void)runScenario(scenario, engine), std::invalid_argument);
}

TEST(ScenarioTest, UnknownNonsplitGeneratorSuggests) {
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.dynamics = Dynamics::kNonsplit;
  scenario.sizes = {8};
  scenario.adversaries = {"nonsplit-rando"};
  try {
    (void)runScenario(scenario, engine);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nonsplit-random"),
              std::string::npos)
        << e.what();
  }
}

TEST(ScenarioTest, RowsAreBitIdenticalAcrossJobCounts) {
  // The determinism guarantee extends beyond the broadcast sweep: the
  // gossip and nonsplit paths also derive every seed from the task's
  // position, so any --jobs value produces the same rows.
  for (const Dynamics dynamics :
       {Dynamics::kRootedTree, Dynamics::kNonsplit}) {
    ScenarioSpec scenario;
    scenario.dynamics = dynamics;
    scenario.sizes = {8, 12};
    scenario.seedsPerSize = 2;
    scenario.masterSeed = 99;
    if (dynamics == Dynamics::kRootedTree) {
      scenario.objective = Objective::kGossip;
      scenario.adversaries = {"alternating-path", "random-tree",
                              "random-path"};
    }
    ExperimentEngine serial({.jobs = 1});
    ExperimentEngine parallel({.jobs = 8});
    const ScenarioResult a = runScenario(scenario, serial);
    const ScenarioResult b = runScenario(scenario, parallel);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
      EXPECT_EQ(a.rows[i], b.rows[i])
          << dynamicsName(dynamics) << " row " << i;
    }
  }
}

TEST(ScenarioTest, HistoryIsRecordedOnDemand) {
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.sizes = {8};
  scenario.adversaries = {"static-path"};
  const ScenarioResult plain = runScenario(scenario, engine);
  EXPECT_TRUE(plain.rows[0].history.empty());

  scenario.recordHistory = true;
  const ScenarioResult traced = runScenario(scenario, engine);
  ASSERT_EQ(traced.rows.size(), 1u);
  EXPECT_EQ(traced.rows[0].history.size(), traced.rows[0].rounds);
  EXPECT_EQ(traced.rows[0].rounds, plain.rows[0].rounds);
}

TEST(GossipCapTest, GossipCapExceedsBroadcastCap) {
  // defaultRoundCap encodes the paper's broadcast bound; gossip runs
  // need more headroom (the ping-pong needs ~2n, and only a stall
  // detector bounds adaptive adversaries).
  for (const std::size_t n : {2u, 4u, 16u, 64u, 1024u, 65536u}) {
    EXPECT_GT(defaultGossipRoundCap(n), defaultRoundCap(n)) << n;
  }
}

}  // namespace
}  // namespace dynbcast
