#include "src/engine/scenario.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/adversary/adversary.h"
#include "src/bounds/bounds.h"
#include "src/sim/gossip.h"

namespace dynbcast {
namespace {

TEST(ScenarioVocabularyTest, ObjectiveParseAndPrintRoundTrip) {
  EXPECT_EQ(parseObjective("broadcast"), Objective::kBroadcast);
  EXPECT_EQ(parseObjective("gossip"), Objective::kGossip);
  EXPECT_EQ(objectiveName(Objective::kGossip), "gossip");
  EXPECT_EQ(objectiveName(Objective::kBroadcast), "broadcast");
  EXPECT_THROW((void)parseObjective("gosip"), std::invalid_argument);
}

TEST(ScenarioVocabularyTest, UnknownDynamicsSuggestsNearest) {
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.sizes = {8};
  scenario.dynamics = "rootedtree";
  try {
    (void)runScenario(scenario, engine);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("rooted-tree"), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioVocabularyTest, DefaultAdversarySpecsFollowTheDynamics) {
  // rooted-tree defaults to the standard portfolio; restricted narrows
  // to its class members (parameterized by the dynamics spec); graph
  // models are their own single member.
  EXPECT_GE(defaultAdversarySpecs("rooted-tree").size(), 8u);
  const auto restricted = defaultAdversarySpecs("restricted:class=k-leaf,k=3");
  ASSERT_EQ(restricted.size(), 1u);
  EXPECT_EQ(restricted[0], "k-leaf:k=3");
  EXPECT_EQ(defaultAdversarySpecs("restricted").size(), 3u);
  const auto model = defaultAdversarySpecs("edge-markovian:p=0.5");
  ASSERT_EQ(model.size(), 1u);
  EXPECT_EQ(model[0], "edge-markovian:p=0.5");
  EXPECT_THROW((void)defaultAdversarySpecs("no-such-dynamics"),
               std::invalid_argument);
}

TEST(ScenarioTest, DefaultBroadcastScenarioMatchesRunSweepBitForBit) {
  ExperimentEngine engine({.jobs = 2});
  ScenarioSpec scenario;
  scenario.sizes = {6, 9};
  scenario.masterSeed = 11;
  scenario.seedsPerSize = 2;
  const ScenarioResult viaScenario = runScenario(scenario, engine);

  SweepSpec sweep;
  sweep.sizes = {6, 9};
  sweep.masterSeed = 11;
  sweep.seedsPerSize = 2;
  const SweepResult direct = engine.runSweep(sweep);

  ASSERT_EQ(viaScenario.rows.size(), direct.rows.size());
  for (std::size_t i = 0; i < direct.rows.size(); ++i) {
    EXPECT_EQ(viaScenario.rows[i], direct.rows[i]) << "row " << i;
  }
  ASSERT_EQ(viaScenario.instances.size(), direct.instances.size());
  for (std::size_t i = 0; i < direct.instances.size(); ++i) {
    EXPECT_EQ(viaScenario.instances[i].portfolio.bestRounds,
              direct.instances[i].portfolio.bestRounds);
    EXPECT_EQ(viaScenario.instances[i].portfolio.bestName,
              direct.instances[i].portfolio.bestName);
  }
}

TEST(ScenarioTest, ExplicitSpecListControlsRowsAndOrder) {
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.sizes = {8, 10};
  scenario.adversaries = {"static-path", "freeze-path:depth=2"};
  const ScenarioResult result = runScenario(scenario, engine);
  ASSERT_EQ(result.rows.size(), 4u);
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    EXPECT_EQ(result.rows[i].member,
              i % 2 == 0 ? "static-path" : "freeze-path:depth=2");
  }
  // The static path is exact: t* = n-1 (paper §2).
  EXPECT_EQ(result.rows[0].rounds, 7u);
  EXPECT_EQ(result.rows[2].rounds, 9u);
}

TEST(ScenarioTest, GossipFactsFromThePaper) {
  // Static trees never complete gossip (a leaf's id cannot propagate);
  // dynamic oblivious sequences complete in Theta(n); and the capped
  // stall is reported via defaultGossipRoundCap, not the broadcast cap.
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.objective = Objective::kGossip;
  scenario.sizes = {8};
  scenario.adversaries = {"static-path", "alternating-path"};
  const ScenarioResult result = runScenario(scenario, engine);
  ASSERT_EQ(result.rows.size(), 2u);

  const ScenarioRow& staticRow = result.rows[0];
  EXPECT_FALSE(staticRow.completed);
  EXPECT_EQ(staticRow.rounds, defaultGossipRoundCap(8));

  const ScenarioRow& alternating = result.rows[1];
  EXPECT_TRUE(alternating.completed);
  EXPECT_GE(alternating.rounds, 8u);   // gossip >= broadcast >= n-1
  EXPECT_LE(alternating.rounds, 16u);  // ping-pong finishes in ~2n

  // The instance aggregate only counts completed runs.
  ASSERT_EQ(result.instances.size(), 1u);
  EXPECT_EQ(result.instances[0].portfolio.bestName, "alternating-path");
}

TEST(ScenarioTest, GossipDominatesBroadcastMemberwise) {
  ExperimentEngine engine;
  ScenarioSpec broadcast;
  broadcast.sizes = {10};
  broadcast.adversaries = {"alternating-path", "random-tree"};
  ScenarioSpec gossip = broadcast;
  gossip.objective = Objective::kGossip;
  const ScenarioResult b = runScenario(broadcast, engine);
  const ScenarioResult g = runScenario(gossip, engine);
  ASSERT_EQ(b.rows.size(), g.rows.size());
  for (std::size_t i = 0; i < b.rows.size(); ++i) {
    ASSERT_TRUE(g.rows[i].completed) << g.rows[i].member;
    EXPECT_GE(g.rows[i].rounds, b.rows[i].rounds) << g.rows[i].member;
  }
}

TEST(ScenarioTest, RestrictedDynamicsValidatesTheClass) {
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.dynamics = "restricted";
  scenario.sizes = {12};
  scenario.adversaries = {"greedy-delay"};
  EXPECT_THROW((void)runScenario(scenario, engine), std::invalid_argument);

  scenario.adversaries = {"k-leaf:k=3", "k-inner:k=3",
                          "freeze-broom:handle=4"};
  const ScenarioResult result = runScenario(scenario, engine);
  ASSERT_EQ(result.rows.size(), 3u);
  for (const ScenarioRow& row : result.rows) {
    EXPECT_TRUE(row.completed) << row.member;
    // Everything in the restricted classes obeys the O(kn) bound of [14].
    EXPECT_LE(row.rounds, bounds::kLeafUpper(12, 4)) << row.member;
  }
}

TEST(ScenarioTest, RestrictedClassParamsNarrowTheDefaultMembers) {
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.dynamics = "restricted:class=k-leaf,k=3";
  scenario.sizes = {12};
  const ScenarioResult result = runScenario(scenario, engine);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].member, "k-leaf:k=3");
  EXPECT_TRUE(result.rows[0].completed);

  scenario.dynamics = "restricted:class=no-such-class";
  EXPECT_THROW((void)runScenario(scenario, engine), std::invalid_argument);
}

TEST(ScenarioTest, LegacyNonsplitAliasStaysWithinTheLogBound) {
  // The deprecated dynamics="nonsplit" form: generator names ride in the
  // adversaries field (default = both generators). Kept working so old
  // invocations and scripts survive the model-zoo migration.
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.dynamics = "nonsplit";
  scenario.sizes = {16, 32};
  scenario.seedsPerSize = 2;
  const ScenarioResult result = runScenario(scenario, engine);
  ASSERT_EQ(result.rows.size(), 2u * 2u * 2u);
  for (const ScenarioRow& row : result.rows) {
    EXPECT_TRUE(row.completed) << row.member;
    EXPECT_LE(row.rounds, bounds::nonsplitLogUpper(row.n) + 8)
        << row.member;
  }
}

TEST(ScenarioTest, SingleModelRunsReproduceTheLegacyAliasBitForBit) {
  // Migration guarantee: naming a generator as the dynamics spec yields
  // exactly the rows the old alias produced for that member — same
  // member-index seed derivation, same caps, same graphs.
  ExperimentEngine engine;
  ScenarioSpec alias;
  alias.dynamics = "nonsplit";
  alias.sizes = {16, 24};
  alias.seedsPerSize = 2;
  alias.masterSeed = 7;
  alias.adversaries = {"nonsplit-random", "nonsplit-skewed"};
  const ScenarioResult old = runScenario(alias, engine);

  ScenarioSpec direct = alias;
  direct.dynamics = "nonsplit-random";
  direct.adversaries = {};
  const ScenarioResult fresh = runScenario(direct, engine);

  ASSERT_EQ(old.rows.size(), 2 * fresh.rows.size());
  for (std::size_t i = 0; i < fresh.rows.size(); ++i) {
    EXPECT_EQ(fresh.rows[i], old.rows[2 * i]) << "instance " << i;
  }
}

TEST(ScenarioTest, GraphModelDynamicsRejectAdversaries) {
  // A graph model emits every round's graph itself; an adversary has no
  // move to make, so listing one (e.g. "exact") must fail loudly.
  ExperimentEngine engine;
  for (const std::string& dynamics :
       {std::string("edge-markovian:p=0.2,q=0.1"),
        std::string("t-interval:T=4"), std::string("nonsplit-random")}) {
    ScenarioSpec scenario;
    scenario.dynamics = dynamics;
    scenario.sizes = {8};
    scenario.adversaries = {"exact"};
    try {
      (void)runScenario(scenario, engine);
      FAIL() << "expected std::invalid_argument for " << dynamics;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("exact"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ScenarioTest, GossipIsRejectedOnGraphModelDynamics) {
  ExperimentEngine engine;
  for (const std::string& dynamics :
       {std::string("nonsplit"), std::string("nonsplit-skewed"),
        std::string("edge-markovian")}) {
    ScenarioSpec scenario;
    scenario.objective = Objective::kGossip;
    scenario.dynamics = dynamics;
    scenario.sizes = {8};
    EXPECT_THROW((void)runScenario(scenario, engine),
                 std::invalid_argument)
        << dynamics;
  }
}

TEST(ScenarioTest, UnknownNonsplitGeneratorSuggests) {
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.dynamics = "nonsplit";
  scenario.sizes = {8};
  scenario.adversaries = {"nonsplit-rando"};
  try {
    (void)runScenario(scenario, engine);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nonsplit-random"),
              std::string::npos)
        << e.what();
  }
}

TEST(ScenarioTest, StochasticModelsCompleteWithinTheirCaps) {
  // Both KLO-style models must actually finish broadcast well before
  // their stall-detector caps at these parameters.
  ExperimentEngine engine;
  for (const std::string& dynamics :
       {std::string("edge-markovian:p=0.2,q=0.1"),
        std::string("t-interval:T=4")}) {
    ScenarioSpec scenario;
    scenario.dynamics = dynamics;
    scenario.sizes = {16, 32};
    scenario.seedsPerSize = 2;
    const ScenarioResult result = runScenario(scenario, engine);
    ASSERT_EQ(result.rows.size(), 4u) << dynamics;
    for (const ScenarioRow& row : result.rows) {
      EXPECT_TRUE(row.completed) << dynamics << " n=" << row.n;
      EXPECT_GE(row.rounds, 1u);
      EXPECT_LT(row.rounds, 10 * row.n + 50) << dynamics;
    }
  }
}

TEST(ScenarioTest, RowsAreBitIdenticalAcrossJobCounts) {
  // The determinism guarantee extends beyond the broadcast sweep: the
  // gossip and graph-model paths also derive every seed from the task's
  // position, so any --jobs value produces the same rows — including
  // for the stochastic model-zoo dynamics.
  for (const std::string& dynamics :
       {std::string("rooted-tree"), std::string("nonsplit"),
        std::string("edge-markovian:p=0.2,q=0.1"),
        std::string("t-interval:T=3")}) {
    ScenarioSpec scenario;
    scenario.dynamics = dynamics;
    scenario.sizes = {8, 12};
    scenario.seedsPerSize = 2;
    scenario.masterSeed = 99;
    if (dynamics == "rooted-tree") {
      scenario.objective = Objective::kGossip;
      scenario.adversaries = {"alternating-path", "random-tree",
                              "random-path"};
    }
    ExperimentEngine serial({.jobs = 1});
    ExperimentEngine parallel({.jobs = 8});
    const ScenarioResult a = runScenario(scenario, serial);
    const ScenarioResult b = runScenario(scenario, parallel);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
      EXPECT_EQ(a.rows[i], b.rows[i]) << dynamics << " row " << i;
    }
  }
}

TEST(ScenarioTest, HistoryIsRecordedOnDemand) {
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.sizes = {8};
  scenario.adversaries = {"static-path"};
  const ScenarioResult plain = runScenario(scenario, engine);
  EXPECT_TRUE(plain.rows[0].history.empty());

  scenario.recordHistory = true;
  const ScenarioResult traced = runScenario(scenario, engine);
  ASSERT_EQ(traced.rows.size(), 1u);
  EXPECT_EQ(traced.rows[0].history.size(), traced.rows[0].rounds);
  EXPECT_EQ(traced.rows[0].rounds, plain.rows[0].rounds);
}

TEST(ScenarioTest, GraphModelHistoryIsRecordedOnDemand) {
  // The model path gained history support in the migration (the old
  // nonsplit path never recorded it).
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.dynamics = "t-interval:T=2";
  scenario.sizes = {12};
  scenario.recordHistory = true;
  const ScenarioResult traced = runScenario(scenario, engine);
  ASSERT_EQ(traced.rows.size(), 1u);
  EXPECT_TRUE(traced.rows[0].completed);
  EXPECT_EQ(traced.rows[0].history.size(), traced.rows[0].rounds);
}

TEST(ScenarioVocabularyTest, BackendParseAndPrintRoundTrip) {
  EXPECT_EQ(parseBackendChoice("dense"), BackendChoice::kDense);
  EXPECT_EQ(parseBackendChoice("sparse"), BackendChoice::kSparse);
  EXPECT_EQ(parseBackendChoice("auto"), BackendChoice::kAuto);
  EXPECT_EQ(backendChoiceName(BackendChoice::kDense), "dense");
  EXPECT_EQ(backendChoiceName(BackendChoice::kSparse), "sparse");
  EXPECT_EQ(backendChoiceName(BackendChoice::kAuto), "auto");
  try {
    (void)parseBackendChoice("spars");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sparse"), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioBackendTest, SparseRowsMatchDenseRowsBitForBit) {
  // The backend is an execution detail, not a semantics knob: at mirror
  // sizes (all of these are ≤ kAutoSparseThreshold) every row must be
  // identical across dense and sparse, for every sparse-capable model.
  // Sizes straddle 64 so the t*-mode's sampling/certification path runs.
  ExperimentEngine engine({.jobs = 2});
  for (const std::string& dynamics :
       {std::string("edge-markovian:p=0.2,q=0.1"),
        std::string("t-interval:T=3"),
        std::string("nonsplit-random:p=0.2")}) {
    ScenarioSpec scenario;
    scenario.dynamics = dynamics;
    scenario.sizes = {8, 24, 70, 100};
    scenario.seedsPerSize = 2;
    scenario.masterSeed = 5;
    scenario.backend = BackendChoice::kDense;
    const ScenarioResult dense = runScenario(scenario, engine);
    scenario.backend = BackendChoice::kSparse;
    const ScenarioResult sparse = runScenario(scenario, engine);
    ASSERT_EQ(dense.rows.size(), sparse.rows.size()) << dynamics;
    for (std::size_t i = 0; i < dense.rows.size(); ++i) {
      EXPECT_EQ(dense.rows[i], sparse.rows[i]) << dynamics << " row " << i;
    }
  }
}

TEST(ScenarioBackendTest, SparseHistoryMatchesDense) {
  // recordHistory routes the sparse backend through the exact full-state
  // FrontierSim; per-round metrics must match the dense engine's.
  ExperimentEngine engine;
  ScenarioSpec scenario;
  scenario.dynamics = "edge-markovian:p=0.25,q=0.1";
  scenario.sizes = {20};
  scenario.recordHistory = true;
  scenario.backend = BackendChoice::kDense;
  const ScenarioResult dense = runScenario(scenario, engine);
  scenario.backend = BackendChoice::kSparse;
  const ScenarioResult sparse = runScenario(scenario, engine);
  ASSERT_EQ(dense.rows.size(), 1u);
  ASSERT_EQ(sparse.rows.size(), 1u);
  EXPECT_EQ(dense.rows[0], sparse.rows[0]);
  EXPECT_EQ(sparse.rows[0].history.size(), sparse.rows[0].rounds);
}

TEST(ScenarioBackendTest, SparseRowsAreBitIdenticalAcrossJobCounts) {
  ScenarioSpec scenario;
  scenario.dynamics = "edge-markovian:p=0.2,q=0.1";
  scenario.sizes = {8, 24, 80};
  scenario.seedsPerSize = 2;
  scenario.masterSeed = 17;
  scenario.backend = BackendChoice::kSparse;
  ExperimentEngine serial({.jobs = 1});
  ExperimentEngine parallel({.jobs = 8});
  const ScenarioResult a = runScenario(scenario, serial);
  const ScenarioResult b = runScenario(scenario, parallel);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i], b.rows[i]) << "row " << i;
  }
}

TEST(ScenarioBackendTest, SparseIsRejectedWhereItCannotRun) {
  ExperimentEngine engine;
  const struct {
    const char* dynamics;
    const char* fragment;
  } cases[] = {
      // Adversary-driven dynamics read the dense simulator state.
      {"rooted-tree", "adversary-driven"},
      {"restricted", "adversary-driven"},
      // The deprecated alias must point at the direct spelling.
      {"nonsplit", "nonsplit-random"},
      // A graph model without a sparse path must name the capable ones.
      {"nonsplit-skewed", "sparse-capable"},
  };
  for (const auto& c : cases) {
    ScenarioSpec scenario;
    scenario.dynamics = c.dynamics;
    scenario.sizes = {8};
    scenario.backend = BackendChoice::kSparse;
    try {
      (void)runScenario(scenario, engine);
      FAIL() << "expected std::invalid_argument for " << c.dynamics;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.fragment), std::string::npos)
          << c.dynamics << ": " << e.what();
    }
  }
  // auto is always valid — it resolves to dense where sparse can't run.
  for (const char* dynamics : {"rooted-tree", "nonsplit-skewed"}) {
    ScenarioSpec scenario;
    scenario.dynamics = dynamics;
    scenario.sizes = {8};
    scenario.backend = BackendChoice::kAuto;
    const ScenarioResult result = runScenario(scenario, engine);
    EXPECT_FALSE(result.rows.empty()) << dynamics;
  }
}

TEST(GossipCapTest, GossipCapExceedsBroadcastCap) {
  // defaultRoundCap encodes the paper's broadcast bound; gossip runs
  // need more headroom (the ping-pong needs ~2n, and only a stall
  // detector bounds adaptive adversaries).
  for (const std::size_t n : {2u, 4u, 16u, 64u, 1024u, 65536u}) {
    EXPECT_GT(defaultGossipRoundCap(n), defaultRoundCap(n)) << n;
  }
}

}  // namespace
}  // namespace dynbcast
