// Service task semantics: the task grid covers every output cell, cache
// keys capture exactly the inputs that determine a result (and nothing
// more — that is what makes overlapping requests share work), and
// executing a task reproduces the engine bit for bit.

#include <gtest/gtest.h>

#include <string>

#include "src/adversary/beam.h"
#include "src/engine/scenario.h"
#include "src/engine/task_plan.h"
#include "src/service/job.h"

namespace dynbcast {
namespace {

TEST(ServiceJobTest, PlanCoversRowsPlusBeamTasksForTheoremSweeps) {
  ServiceRequest thm31;
  thm31.scenario.sizes = {4, 8, 16};
  thm31.scenario.seedsPerSize = 2;
  const ServiceJobPlan plan = planServiceJob(thm31);
  EXPECT_EQ(plan.rowCount, scenarioRowCount(thm31.scenario));
  EXPECT_EQ(plan.beamCount, 3u);  // one witness task per size
  EXPECT_EQ(plan.taskCount(), plan.rowCount + 3u);

  ServiceRequest model;
  model.scenario.dynamics = "edge-markovian:p=0.2,q=0.1";
  model.scenario.sizes = {4, 8, 16};
  const ServiceJobPlan modelPlan = planServiceJob(model);
  EXPECT_EQ(modelPlan.beamCount, 0u);
}

TEST(ServiceJobTest, RowKeysAreUniqueAcrossPositions) {
  ServiceRequest request;
  request.scenario.sizes = {4, 6};
  request.scenario.seedsPerSize = 2;
  const ServiceJobPlan plan = planServiceJob(request);

  std::vector<std::string> keys;
  for (std::size_t p = 0; p < plan.taskCount(); ++p) {
    keys.push_back(serviceTaskKey(request, p));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j]) << "positions " << i << " and " << j;
    }
  }
}

// A request extended with extra sizes keeps its original positions'
// keys — seeds are position-derived, so a prefix extension is the
// overlap pattern the cache exploits.
TEST(ServiceJobTest, PrefixExtendedRequestsShareRowKeys) {
  ServiceRequest small;
  small.scenario.dynamics = "edge-markovian:p=0.3,q=0.3";
  small.scenario.sizes = {6, 8};
  small.scenario.seedsPerSize = 2;

  ServiceRequest large = small;
  large.scenario.sizes = {6, 8, 10, 12};

  const std::size_t smallRows = scenarioRowCount(small.scenario);
  for (std::size_t p = 0; p < smallRows; ++p) {
    EXPECT_EQ(serviceTaskKey(small, p), serviceTaskKey(large, p))
        << "position " << p;
  }
  EXPECT_GT(scenarioRowCount(large.scenario), smallRows);
}

TEST(ServiceJobTest, BackendChoiceNormalizesAtMirrorSizes) {
  // Below the sparse/dense mirror threshold rows are backend-invariant;
  // the key must say "dense" regardless of the requested choice so the
  // requests share cache cells.
  ServiceRequest autoChoice;
  autoChoice.scenario.dynamics = "edge-markovian:p=0.3,q=0.3";
  autoChoice.scenario.sizes = {8};

  ServiceRequest dense = autoChoice;
  dense.scenario.backend = BackendChoice::kDense;
  ServiceRequest sparse = autoChoice;
  sparse.scenario.backend = BackendChoice::kSparse;

  EXPECT_EQ(serviceTaskKey(autoChoice, 0), serviceTaskKey(dense, 0));
  EXPECT_EQ(serviceTaskKey(autoChoice, 0), serviceTaskKey(sparse, 0));
  EXPECT_NE(serviceTaskKey(autoChoice, 0).find("backend=dense"),
            std::string::npos);
}

TEST(ServiceJobTest, BeamKeysRecordWhetherTheSearchRan) {
  ServiceRequest searched;
  searched.scenario.sizes = {8};
  searched.beamMaxN = 8;

  ServiceRequest skipped = searched;
  skipped.beamMaxN = 4;  // size 8 exceeds the cap → trivial task

  const std::size_t beamPos = planServiceJob(searched).rowCount;
  const std::string searchedKey = serviceTaskKey(searched, beamPos);
  const std::string skippedKey = serviceTaskKey(skipped, beamPos);
  EXPECT_NE(searchedKey, skippedKey);
  EXPECT_NE(searchedKey.find("searched=1"), std::string::npos);
  EXPECT_NE(skippedKey.find("searched=0"), std::string::npos);

  // The skipped task reports "no witness", completed.
  const ServiceTaskResult trivial = executeServiceTask(skipped, beamPos);
  EXPECT_EQ(trivial.rounds, 0u);
  EXPECT_TRUE(trivial.completed);
}

TEST(ServiceJobTest, RowTasksMatchTheEnginePlan) {
  ServiceRequest request;
  request.scenario.dynamics = "edge-markovian:p=0.3,q=0.3";
  request.scenario.sizes = {6, 8};
  request.scenario.seedsPerSize = 2;
  request.scenario.masterSeed = 5;

  const std::size_t rows = scenarioRowCount(request.scenario);
  for (std::size_t p = 0; p < rows; ++p) {
    const SweepRow expected = runScenarioRow(request.scenario, p);
    const ServiceTaskResult actual = executeServiceTask(request, p);
    EXPECT_EQ(actual.rounds, expected.rounds) << "position " << p;
    EXPECT_EQ(actual.completed, expected.completed) << "position " << p;
  }
}

TEST(ServiceJobTest, BeamTasksMatchTheSweepDerivation) {
  ServiceRequest request;
  request.scenario.sizes = {4, 6};
  request.scenario.masterSeed = 1;
  request.beamMaxN = 8;
  request.beamWidth = 32;

  const ServiceJobPlan plan = planServiceJob(request);
  for (std::size_t i = 0; i < request.scenario.sizes.size(); ++i) {
    const std::size_t n = request.scenario.sizes[i];
    BeamConfig cfg;
    cfg.beamWidth = request.beamWidth;
    cfg.randomMovesPerState = 8;
    cfg.diversityPercent = 40;
    const BeamResult witness = beamSearchWitness(
        n, scenarioBeamSeed(request.scenario.masterSeed, i), cfg);
    const std::size_t expected =
        verifyWitness(n, witness.witness) == witness.rounds ? witness.rounds
                                                            : 0;

    const ServiceTaskResult actual =
        executeServiceTask(request, plan.rowCount + i);
    EXPECT_EQ(actual.rounds, expected) << "size " << n;
    EXPECT_TRUE(actual.completed);
  }
}

TEST(ServiceJobTest, AssembledRowsMatchRunScenario) {
  ServiceRequest request;
  request.scenario.sizes = {4, 6};
  request.scenario.seedsPerSize = 2;
  request.scenario.masterSeed = 3;

  EngineConfig config;
  config.jobs = 2;
  ExperimentEngine engine(config);
  const ScenarioResult direct = runScenario(request.scenario, engine);

  std::vector<ServiceTaskResult> results;
  const std::size_t rows = scenarioRowCount(request.scenario);
  for (std::size_t p = 0; p < rows; ++p) {
    results.push_back(executeServiceTask(request, p));
  }
  const std::vector<SweepRow> assembled =
      assembleServiceRows(request.scenario, results);
  ASSERT_EQ(assembled.size(), direct.rows.size());
  for (std::size_t i = 0; i < assembled.size(); ++i) {
    EXPECT_EQ(assembled[i], direct.rows[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace dynbcast
