// Wire-protocol canonicalization: equivalent requests — however spelled
// — must land on one canonical string (and therefore one job id), and
// the canonical string must round-trip losslessly, because it is the
// manifest header a worker process reconstructs the whole job from.

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/engine/scenario.h"
#include "src/service/protocol.h"

namespace dynbcast {
namespace {

TEST(ServiceProtocolTest, CanonicalStringIsAFixpoint) {
  ServiceRequest request;
  request.scenario.sizes = {4, 8, 16};
  request.scenario.seedsPerSize = 2;

  const std::string canonical = canonicalRequestString(request);
  const ServiceRequest decoded = decodeCanonicalRequest(canonical);
  EXPECT_EQ(canonicalRequestString(decoded), canonical);
  EXPECT_EQ(requestJobId(decoded), requestJobId(request));
}

TEST(ServiceProtocolTest, DefaultAdversariesAreResolvedIntoTheCanonicalForm) {
  ServiceRequest implicit;
  implicit.scenario.sizes = {4, 8};

  ServiceRequest explicitRequest;
  explicitRequest.scenario.sizes = {4, 8};
  explicitRequest.scenario.adversaries =
      defaultAdversarySpecs(explicitRequest.scenario.dynamics);

  // Spelling out the dynamics' default portfolio changes nothing: both
  // requests are the same job.
  EXPECT_EQ(canonicalRequestString(implicit),
            canonicalRequestString(explicitRequest));
  EXPECT_EQ(requestJobId(implicit), requestJobId(explicitRequest));
}

TEST(ServiceProtocolTest, SpecSpellingVariantsShareAJobId) {
  ServiceRequest a;
  a.scenario.dynamics = "edge-markovian:p=0.2,q=0.1";
  a.scenario.sizes = {8, 16};

  ServiceRequest b;
  b.scenario.dynamics = "edge-markovian: q=0.1, p=0.2";  // reordered, spaced
  b.scenario.sizes = {8, 16};

  EXPECT_EQ(canonicalRequestString(a), canonicalRequestString(b));
  EXPECT_EQ(requestJobId(a), requestJobId(b));
}

TEST(ServiceProtocolTest, BeamKeysAppearOnlyForTheoremSweeps) {
  ServiceRequest tree;
  tree.scenario.sizes = {4, 8};
  ASSERT_TRUE(requestWantsBeamWitnesses(tree));
  EXPECT_NE(canonicalRequestString(tree).find("beam-maxn="),
            std::string::npos);

  ServiceRequest gossip;
  gossip.scenario.objective = Objective::kGossip;
  gossip.scenario.sizes = {4, 8};
  ASSERT_FALSE(requestWantsBeamWitnesses(gossip));
  EXPECT_EQ(canonicalRequestString(gossip).find("beam-"), std::string::npos);

  ServiceRequest model;
  model.scenario.dynamics = "edge-markovian:p=0.2,q=0.1";
  model.scenario.sizes = {4, 8};
  ASSERT_FALSE(requestWantsBeamWitnesses(model));
  EXPECT_EQ(canonicalRequestString(model).find("beam-"), std::string::npos);

  // ... and the beam knobs change the job id exactly when they apply.
  ServiceRequest narrower = tree;
  narrower.beamWidth = 64;
  EXPECT_NE(requestJobId(narrower), requestJobId(tree));
  ServiceRequest gossipNarrower = gossip;
  gossipNarrower.beamWidth = 64;
  EXPECT_EQ(requestJobId(gossipNarrower), requestJobId(gossip));
}

TEST(ServiceProtocolTest, DecodeRejectsUnknownKeysWithASuggestion) {
  try {
    (void)decodeRequest({"sizse=4,8"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unknown request key 'sizse'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("did you mean 'sizes'"), std::string::npos)
        << message;
  }
}

TEST(ServiceProtocolTest, DecodeRequiresSizes) {
  EXPECT_THROW((void)decodeRequest({"seed=1"}), std::invalid_argument);
  EXPECT_THROW((void)decodeRequest({"not a kv line"}),
               std::invalid_argument);
}

TEST(ServiceProtocolTest, HashPrimitivesAreStable) {
  // These values land in on-disk filenames (manifests, cache buckets);
  // pin them so a refactor cannot silently orphan existing state.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(hex64(0), "0000000000000000");
  EXPECT_EQ(hex64(0xdeadbeef12345678ull), "deadbeef12345678");
}

}  // namespace
}  // namespace dynbcast
