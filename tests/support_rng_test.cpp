#include "src/support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dynbcast {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformBound1IsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntHitsEndpoints) {
  Rng rng(5);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(77);
  for (const std::size_t n : {1u, 2u, 5u, 100u}) {
    std::vector<std::size_t> p = rng.permutation(n);
    ASSERT_EQ(p.size(), n);
    std::sort(p.begin(), p.end());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(p[i], i);
  }
}

TEST(RngTest, PermutationsVary) {
  Rng rng(123);
  const std::vector<std::size_t> a = rng.permutation(20);
  const std::vector<std::size_t> b = rng.permutation(20);
  EXPECT_NE(a, b);  // probability of collision ~ 1/20!
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(55);
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng fresh(55);
  (void)fresh.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == fresh()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitmixAvalanche) {
  std::uint64_t s1 = 0, s2 = 1;
  const std::uint64_t a = splitmix64(s1);
  const std::uint64_t b = splitmix64(s2);
  EXPECT_NE(a, b);
}

class RngDistributionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngDistributionTest, BoundedUniformIsRoughlyFlat) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 31 + 7);
  std::vector<std::size_t> buckets(bound, 0);
  const std::size_t draws = 2000 * bound;
  for (std::size_t i = 0; i < draws; ++i) ++buckets[rng.uniform(bound)];
  for (std::uint64_t v = 0; v < bound; ++v) {
    // Expected 2000 per bucket; allow generous slack (±25%).
    EXPECT_GT(buckets[v], 1500u) << "value " << v;
    EXPECT_LT(buckets[v], 2500u) << "value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngDistributionTest,
                         ::testing::Values(2, 3, 5, 8, 13));

}  // namespace
}  // namespace dynbcast
