// The raw-word kernels (bitword::*) against naive per-bit references, at
// sizes straddling every word-boundary case: a single partial word, one
// bit short of a boundary, exactly on it, one past it, and multi-word
// with a partial tail. An off-by-one in word indexing or a tail-invariant
// violation shows up exactly here.
#include <gtest/gtest.h>

#include <vector>

#include "src/support/bitset.h"
#include "src/support/rng.h"

namespace dynbcast {
namespace {

const std::size_t kSizes[] = {1, 63, 64, 65, 127, 130};

DynBitset randomBits(std::size_t n, double density, Rng& rng) {
  DynBitset b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniformReal() < density) b.set(i);
  }
  return b;
}

TEST(BitwordKernelTest, OrAssignMatchesNaive) {
  Rng rng(11);
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < 20; ++trial) {
      DynBitset dst = randomBits(n, 0.4, rng);
      const DynBitset src = randomBits(n, 0.4, rng);
      DynBitset expect(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (dst.test(i) || src.test(i)) expect.set(i);
      }
      bitword::orAssign(dst.wordData(), src.wordData(), dst.wordCount());
      EXPECT_EQ(dst, expect) << "n=" << n;
    }
  }
}

TEST(BitwordKernelTest, OrCountMatchesNaiveLoop) {
  Rng rng(12);
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < 20; ++trial) {
      DynBitset dst = randomBits(n, 0.3, rng);
      const DynBitset src = randomBits(n, 0.3, rng);
      std::size_t expectCount = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (dst.test(i) || src.test(i)) ++expectCount;
      }
      const std::size_t got =
          bitword::orCount(dst.wordData(), src.wordData(), dst.wordCount());
      EXPECT_EQ(got, expectCount) << "n=" << n;
      EXPECT_EQ(dst.count(), expectCount) << "n=" << n;
    }
  }
}

TEST(BitwordKernelTest, IntersectAnyMatchesNaiveLoop) {
  Rng rng(13);
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < 40; ++trial) {
      // Low density so both outcomes (hit and miss) actually occur.
      const DynBitset a = randomBits(n, 0.08, rng);
      const DynBitset b = randomBits(n, 0.08, rng);
      bool expect = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (a.test(i) && b.test(i)) expect = true;
      }
      EXPECT_EQ(
          bitword::intersectAny(a.wordData(), b.wordData(), a.wordCount()),
          expect)
          << "n=" << n;
    }
  }
}

TEST(BitwordKernelTest, IntersectAnyLastBitOnly) {
  // The early-exit path must still reach the final (possibly partial)
  // word.
  for (const std::size_t n : kSizes) {
    DynBitset a(n);
    DynBitset b(n);
    a.set(n - 1);
    b.set(n - 1);
    EXPECT_TRUE(
        bitword::intersectAny(a.wordData(), b.wordData(), a.wordCount()))
        << "n=" << n;
    b.reset(n - 1);
    EXPECT_FALSE(
        bitword::intersectAny(a.wordData(), b.wordData(), a.wordCount()))
        << "n=" << n;
  }
}

TEST(BitwordKernelTest, AndAssignCountMatchesNaiveLoop) {
  Rng rng(14);
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < 20; ++trial) {
      DynBitset dst = randomBits(n, 0.5, rng);
      const DynBitset src = randomBits(n, 0.5, rng);
      std::size_t expectCount = 0;
      DynBitset expect(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (dst.test(i) && src.test(i)) {
          expect.set(i);
          ++expectCount;
        }
      }
      const std::size_t got = bitword::andAssignCount(
          dst.wordData(), src.wordData(), dst.wordCount());
      EXPECT_EQ(got, expectCount) << "n=" << n;
      EXPECT_EQ(dst, expect) << "n=" << n;
    }
  }
}

TEST(BitwordKernelTest, ForEachInDifferenceAscendingAndComplete) {
  Rng rng(15);
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < 20; ++trial) {
      const DynBitset a = randomBits(n, 0.4, rng);
      const DynBitset b = randomBits(n, 0.4, rng);
      std::vector<std::size_t> expect;
      for (std::size_t i = 0; i < n; ++i) {
        if (a.test(i) && !b.test(i)) expect.push_back(i);
      }
      std::vector<std::size_t> got;
      bitword::forEachInDifference(a.wordData(), b.wordData(), a.wordCount(),
                                   [&](std::size_t i) { got.push_back(i); });
      EXPECT_EQ(got, expect) << "n=" << n;
    }
  }
}

TEST(BitwordKernelTest, OrCountWithPreservesTailInvariant) {
  // After fused OR+count at a non-aligned size, bits past size() must
  // still be zero — all() and count() would silently break otherwise.
  for (const std::size_t n : kSizes) {
    DynBitset a(n);
    DynBitset b(n);
    a.setAll();
    b.setAll();
    EXPECT_EQ(a.orCountWith(b), n) << "n=" << n;
    EXPECT_TRUE(a.all()) << "n=" << n;
    EXPECT_EQ(a.count(), n) << "n=" << n;
  }
}

}  // namespace
}  // namespace dynbcast
