# Bit-identity regression for the thm31 sweep: runs the bench binary and
# byte-compares its --csv artifact against the committed golden file.
# Invoked by ctest (see CMakeLists.txt) with:
#   -DBENCH=<path to bench_thm31_adversary_sweep>
#   -DJOBS=<worker count>  (1 and 8 both must reproduce the golden bytes)
#   -DGOLDEN=<committed CSV>
#   -DOUT=<scratch output path>
execute_process(
  COMMAND ${BENCH} --sizes=4:128:4 --jobs=${JOBS} --csv=${OUT}
  RESULT_VARIABLE run_rc
  OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "bench run failed (rc=${run_rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "thm31 sweep CSV (jobs=${JOBS}) differs from the golden file "
    "${GOLDEN} — the kernel rewrite changed observable results. If the "
    "change is intended, regenerate the golden with the command above.")
endif()
