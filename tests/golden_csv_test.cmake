# Bit-identity regression for sweep CSVs: runs a sweep binary and
# byte-compares its --csv artifact against the committed golden file.
# Invoked by ctest (see CMakeLists.txt) with:
#   -DBENCH=<path to bench_thm31_adversary_sweep or the dynbcast CLI>
#   -DSUBCOMMAND=<optional subcommand, e.g. sweep for the dynbcast CLI>
#   -DJOBS=<worker count>  (1 and 8 both must reproduce the golden bytes)
#   -DSIZES=<--sizes sweep spec, e.g. 4:128:4>
#   -DDYNAMICS=<optional --dynamics spec, e.g. edge-markovian:p=0.2,q=0.1>
#   -DSEEDS=<optional --seeds replicate count>
#   -DBACKEND=<optional --backend selection: dense|sparse|auto — dense
#             and sparse must reproduce the SAME golden bytes at mirror
#             sizes, pinning the backends to each other>
#   -DGOLDEN=<committed CSV>
#   -DOUT=<scratch output path>
set(extra_args "")
if(DYNAMICS)
  list(APPEND extra_args "--dynamics=${DYNAMICS}")
endif()
if(SEEDS)
  list(APPEND extra_args "--seeds=${SEEDS}")
endif()
if(BACKEND)
  list(APPEND extra_args "--backend=${BACKEND}")
endif()
execute_process(
  COMMAND ${BENCH} ${SUBCOMMAND} --sizes=${SIZES} --jobs=${JOBS}
          ${extra_args} --csv=${OUT}
  RESULT_VARIABLE run_rc
  OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "sweep run failed (rc=${run_rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "sweep CSV (jobs=${JOBS}, sizes=${SIZES}) differs from the golden "
    "file ${GOLDEN} — observable results changed. If the change is "
    "intended, regenerate the golden with the command above.")
endif()
