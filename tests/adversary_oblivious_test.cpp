#include "src/adversary/oblivious.h"

#include <gtest/gtest.h>

#include "src/bounds/bounds.h"
#include "src/tree/families.h"

namespace dynbcast {
namespace {

TEST(StaticAdversaryTest, PathCostsExactlyNMinus1) {
  for (const std::size_t n : {2u, 5u, 16u, 40u}) {
    StaticPathAdversary adv(n);
    const BroadcastRun run = runAdversary(n, adv, defaultRoundCap(n));
    EXPECT_TRUE(run.completed);
    EXPECT_EQ(run.rounds, n - 1);
  }
}

TEST(StaticAdversaryTest, TreeCostsItsHeight) {
  const RootedTree broom = makeBroom({0, 1, 2, 3, 4, 5, 6}, 4);
  StaticTreeAdversary adv(broom);
  const BroadcastRun run = runAdversary(7, adv, defaultRoundCap(7));
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.rounds, broom.height());
}

TEST(StaticAdversaryTest, StarCostsOneRound) {
  StaticTreeAdversary adv(makeStar(9, 4));
  const BroadcastRun run = runAdversary(9, adv, 10);
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.rounds, 1u);
}

TEST(RandomAdversaryTest, CompletesWithinTheoremBound) {
  // Theorem 3.1's upper bound holds for EVERY adversary.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const std::size_t n : {4u, 12u, 33u}) {
      UniformRandomAdversary adv(n, seed);
      const BroadcastRun run = runAdversary(n, adv, defaultRoundCap(n));
      EXPECT_TRUE(run.completed);
      EXPECT_LE(run.rounds, bounds::linearUpper(n));
    }
  }
}

TEST(RandomAdversaryTest, ResetReplaysIdenticalRun) {
  UniformRandomAdversary adv(15, 77);
  const BroadcastRun a = runAdversary(15, adv, defaultRoundCap(15));
  const BroadcastRun b = runAdversary(15, adv, defaultRoundCap(15));
  EXPECT_EQ(a.rounds, b.rounds);  // runAdversary resets the RNG
}

TEST(RandomPathAdversaryTest, CompletesAndRespectsBound) {
  RandomPathAdversary adv(20, 5);
  const BroadcastRun run = runAdversary(20, adv, defaultRoundCap(20));
  EXPECT_TRUE(run.completed);
  EXPECT_LE(run.rounds, bounds::linearUpper(20));
}

TEST(AlternatingPathTest, BroadcastNoSlowerThanStatic) {
  AlternatingPathAdversary adv(12);
  const BroadcastRun run = runAdversary(12, adv, defaultRoundCap(12));
  EXPECT_TRUE(run.completed);
  // The forward path's head still makes one hop per two rounds; both ends
  // make progress, so completion is at most ~2n and at least n/2.
  EXPECT_GE(run.rounds, 6u);
  EXPECT_LE(run.rounds, 24u);
}

TEST(ConstrainedAdversaryTest, KLeafStaysWithinLinearBoundTimesK) {
  for (const std::size_t k : {2u, 3u}) {
    KLeafAdversary adv(16, k, 9);
    const BroadcastRun run = runAdversary(16, adv, 16 * (k + 2));
    EXPECT_TRUE(run.completed) << "k=" << k;
    EXPECT_LE(run.rounds, bounds::kLeafUpper(16, k) + 16);
  }
}

TEST(ConstrainedAdversaryTest, KInnerCompletes) {
  KInnerAdversary adv(16, 3, 11);
  const BroadcastRun run = runAdversary(16, adv, defaultRoundCap(16));
  EXPECT_TRUE(run.completed);
}

TEST(ConstrainedAdversaryTest, NamesEncodeK) {
  KLeafAdversary a(8, 3, 1);
  KInnerAdversary b(8, 5, 1);
  EXPECT_EQ(a.name(), "k-leaf:k=3");
  EXPECT_EQ(b.name(), "k-inner:k=5");
}

}  // namespace
}  // namespace dynbcast
