#include "src/tree/constrained.h"

#include <gtest/gtest.h>

#include "src/support/assert.h"

namespace dynbcast {
namespace {

// Parameterized over (n, k) pairs for the leaf-constrained generator.
class KLeafTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(KLeafTest, ProducesExactlyKLeaves) {
  const auto [n, k] = GetParam();
  Rng rng(n * 1000 + k);
  for (int trial = 0; trial < 25; ++trial) {
    const RootedTree t = randomTreeWithKLeaves(n, k, rng);
    EXPECT_EQ(t.size(), n);
    EXPECT_EQ(t.leafCount(), k) << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KLeafTest,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(3, 1),
                      std::make_tuple(3, 2), std::make_tuple(8, 1),
                      std::make_tuple(8, 3), std::make_tuple(8, 7),
                      std::make_tuple(20, 2), std::make_tuple(20, 10),
                      std::make_tuple(20, 19), std::make_tuple(64, 4)));

class KInnerTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(KInnerTest, ProducesExactlyKInnerNodes) {
  const auto [n, k] = GetParam();
  Rng rng(n * 1000 + k + 5);
  for (int trial = 0; trial < 25; ++trial) {
    const RootedTree t = randomTreeWithKInnerNodes(n, k, rng);
    EXPECT_EQ(t.size(), n);
    EXPECT_EQ(t.innerCount(), k) << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KInnerTest,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(3, 1),
                      std::make_tuple(3, 2), std::make_tuple(8, 1),
                      std::make_tuple(8, 4), std::make_tuple(8, 7),
                      std::make_tuple(20, 3), std::make_tuple(20, 10),
                      std::make_tuple(20, 19), std::make_tuple(64, 6)));

TEST(ConstrainedTest, PlacementRespectsOrder) {
  Rng rng(9);
  const std::vector<std::size_t> order{4, 2, 0, 1, 3};
  const RootedTree t = makeTreeWithKLeaves(order, 2, rng);
  EXPECT_EQ(t.root(), 4u);  // order[0] becomes the root
  EXPECT_EQ(t.leafCount(), 2u);
}

TEST(ConstrainedTest, KLeafExtremes) {
  Rng rng(1);
  // k = n−1 forces a star; k = 1 forces a path.
  const RootedTree star = randomTreeWithKLeaves(10, 9, rng);
  EXPECT_EQ(star.height(), 1u);
  const RootedTree path = randomTreeWithKLeaves(10, 1, rng);
  EXPECT_EQ(path.height(), 9u);
}

TEST(ConstrainedTest, KInnerOneIsStar) {
  Rng rng(2);
  const RootedTree t = randomTreeWithKInnerNodes(12, 1, rng);
  EXPECT_EQ(t.height(), 1u);
  EXPECT_EQ(t.leafCount(), 11u);
}

TEST(ConstrainedTest, RejectsOutOfRangeK) {
  Rng rng(3);
  EXPECT_THROW(randomTreeWithKLeaves(5, 0, rng), AssertionError);
  EXPECT_THROW(randomTreeWithKLeaves(5, 5, rng), AssertionError);
  EXPECT_THROW(randomTreeWithKInnerNodes(5, 0, rng), AssertionError);
  EXPECT_THROW(randomTreeWithKInnerNodes(5, 5, rng), AssertionError);
}

TEST(ConstrainedTest, GeneratorsAreDeterministicPerSeed) {
  Rng a(77), b(77);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(randomTreeWithKLeaves(15, 4, a),
              randomTreeWithKLeaves(15, 4, b));
  }
}

}  // namespace
}  // namespace dynbcast
