#include "src/dynamics/registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/graph/properties.h"
#include "src/sim/broadcast_sim.h"

namespace dynbcast {
namespace {

TEST(DynamicsSpecTest, ParseAndPrintRoundTrip) {
  const DynamicsSpec spec = DynamicsSpec::parse("edge-markovian:q=0.3,p=0.5");
  EXPECT_EQ(spec.name, "edge-markovian");
  EXPECT_DOUBLE_EQ(spec.params.getDouble("p", 0), 0.5);
  EXPECT_DOUBLE_EQ(spec.params.getDouble("q", 0), 0.3);
  // Canonical printing sorts keys; parsing the canonical form is a
  // fixed point.
  EXPECT_EQ(spec.toString(), "edge-markovian:p=0.5,q=0.3");
  EXPECT_EQ(DynamicsSpec::parse(spec.toString()).toString(),
            spec.toString());
  EXPECT_EQ(DynamicsSpec::parse(" t-interval : T = 8 ").toString(),
            "t-interval:T=8");
}

TEST(DynamicsSpecTest, ConversionErrorsNameTheAxis) {
  // Parsed params carry their axis, so a bad value in a scenario mixing
  // --dynamics and --adversaries says which spec broke.
  const DynamicsSpec spec = DynamicsSpec::parse("t-interval:T=abc");
  try {
    (void)spec.params.getUInt("T", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("dynamics parameter"),
              std::string::npos)
        << e.what();
  }
}

TEST(DynamicsSpecTest, MalformedSpecsThrow) {
  EXPECT_THROW((void)DynamicsSpec::parse(""), std::invalid_argument);
  EXPECT_THROW((void)DynamicsSpec::parse(":p=1"), std::invalid_argument);
  EXPECT_THROW((void)DynamicsSpec::parse("t-interval:"),
               std::invalid_argument);
  EXPECT_THROW((void)DynamicsSpec::parse("t-interval:T"),
               std::invalid_argument);
  EXPECT_THROW((void)DynamicsSpec::parse("t-interval:T=4,T=8"),
               std::invalid_argument);
  EXPECT_THROW((void)DynamicsSpec::parse("t interval:T=4"),
               std::invalid_argument);
}

TEST(DynamicsRegistryTest, TheModelZooIsRegistered) {
  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  for (const char* name :
       {"rooted-tree", "restricted", "nonsplit", "nonsplit-random",
        "nonsplit-skewed", "edge-markovian", "t-interval"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  EXPECT_GE(registry.names().size(), 7u);
}

TEST(DynamicsRegistryTest, EveryGraphModelEmitsItsDeclaredClass) {
  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  const std::size_t n = 12;
  const BroadcastSim state(n);
  for (const std::string& name : registry.names()) {
    const DynamicsInfo& info = registry.info(name);
    if (info.mode != DynamicsMode::kGraphModel) continue;
    const auto model = registry.make(name, n, 5);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->graphClass(), info.graphClass) << name;
    EXPECT_GE(model->defaultRoundCap(), 4u) << name;
    for (std::size_t round = 0; round < 3; ++round) {
      const BitMatrix g = model->nextGraph(state);
      ASSERT_EQ(g.dim(), n) << name;
      EXPECT_TRUE(g.isReflexive()) << name;
      if (info.graphClass == DynamicsClass::kNonsplit) {
        EXPECT_TRUE(isNonsplit(g)) << name;
      }
    }
  }
}

TEST(DynamicsRegistryTest, ModelsReplayDeterministicallyAcrossReset) {
  // The replay contract: same (n, seed) → same graph sequence, and
  // reset() rewinds to the constructed seed. This is what makes
  // position-seeded stochastic sweeps bit-identical at any job count.
  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  // n = 24 keeps nonsplit-skewed's dispatcher span (n/8) above 1 — at
  // tiny n its graph is seed-independent by construction.
  const std::size_t n = 24;
  const BroadcastSim state(n);
  for (const std::string& spec :
       {std::string("nonsplit-random"), std::string("nonsplit-skewed"),
        std::string("edge-markovian:p=0.3,q=0.2"),
        std::string("t-interval:T=2")}) {
    const auto a = registry.make(spec, n, 42);
    const auto b = registry.make(spec, n, 42);
    std::vector<BitMatrix> firstRun;
    for (std::size_t round = 0; round < 5; ++round) {
      const BitMatrix ga = a->nextGraph(state);
      const BitMatrix gb = b->nextGraph(state);
      EXPECT_EQ(ga, gb) << spec << " round " << round;
      firstRun.push_back(ga);
    }
    a->reset();
    for (std::size_t round = 0; round < 5; ++round) {
      EXPECT_EQ(a->nextGraph(state), firstRun[round])
          << spec << " replay round " << round;
    }
    // A different seed must give a different sequence (all four models
    // are stochastic).
    const auto c = registry.make(spec, n, 43);
    bool anyDifferent = false;
    for (std::size_t round = 0; round < 5; ++round) {
      if (!(c->nextGraph(state) == firstRun[round])) anyDifferent = true;
    }
    EXPECT_TRUE(anyDifferent) << spec;
  }
}

TEST(DynamicsRegistryTest, ModelNamesAreCanonicalSpecs) {
  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  const auto plain = registry.make("edge-markovian", 8, 1);
  EXPECT_EQ(plain->name(), "edge-markovian");
  const auto parameterized =
      registry.make("edge-markovian:q=0.4,p=0.6", 8, 1);
  EXPECT_EQ(parameterized->name(), "edge-markovian:p=0.6,q=0.4");
  EXPECT_EQ(DynamicsSpec::parse(parameterized->name()).toString(),
            parameterized->name());
}

TEST(DynamicsRegistryTest, UnknownNameSuggestsNearest) {
  try {
    (void)DynamicsRegistry::instance().make("edge-markovan", 8, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("edge-markovian"),
              std::string::npos)
        << e.what();
  }
}

TEST(DynamicsRegistryTest, UnknownKeySuggestsNearest) {
  try {
    (void)DynamicsRegistry::instance().make("t-interval:t=4", 8, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("T"), std::string::npos)
        << e.what();
  }
}

TEST(DynamicsRegistryTest, ParameterRangesAreValidatedEagerly) {
  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  // validate() fires without constructing, so a bad sweep spec fails at
  // composition time, not inside a worker thread.
  EXPECT_THROW(
      registry.validate(DynamicsSpec::parse("edge-markovian:p=0")),
      std::invalid_argument);
  EXPECT_THROW(
      registry.validate(DynamicsSpec::parse("edge-markovian:p=1.5")),
      std::invalid_argument);
  EXPECT_THROW(
      registry.validate(DynamicsSpec::parse("edge-markovian:q=-0.1")),
      std::invalid_argument);
  EXPECT_THROW(registry.validate(DynamicsSpec::parse("t-interval:T=0")),
               std::invalid_argument);
  EXPECT_THROW(
      registry.validate(DynamicsSpec::parse("nonsplit-random:p=2")),
      std::invalid_argument);
  // edges= (a count) and p= (a density) are alternative ways to set the
  // same knob: both at once is ambiguous and must be rejected, not
  // silently resolved in favor of one.
  EXPECT_THROW(registry.validate(
                   DynamicsSpec::parse("nonsplit-random:edges=4,p=0.5")),
               std::invalid_argument);
  EXPECT_THROW(
      registry.validate(DynamicsSpec::parse("restricted:class=brooom")),
      std::invalid_argument);
  // In-range values pass.
  registry.validate(DynamicsSpec::parse("edge-markovian:p=0.2,q=0.1"));
  registry.validate(DynamicsSpec::parse("t-interval:T=1"));
  registry.validate(DynamicsSpec::parse("restricted:class=broom,k=3"));
}

TEST(DynamicsRegistryTest, AdversaryDrivenEntriesHaveNoStandaloneModel) {
  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  EXPECT_THROW((void)registry.make("rooted-tree", 8, 1),
               std::invalid_argument);
  EXPECT_THROW((void)registry.make("restricted", 8, 1),
               std::invalid_argument);
  EXPECT_THROW((void)registry.make("nonsplit", 8, 1),
               std::invalid_argument);
}

TEST(DynamicsRegistryTest, LegacyAliasIsMarkedDeprecated) {
  const DynamicsInfo& alias = DynamicsRegistry::instance().info("nonsplit");
  EXPECT_EQ(alias.mode, DynamicsMode::kGeneratorList);
  EXPECT_FALSE(alias.deprecation.empty());
}

TEST(DynamicsRegistryTest, DuplicateOrInconsistentRegistrationThrows) {
  DynamicsRegistry registry;  // local registry: no built-ins
  DynamicsInfo info;
  info.name = "test-model";
  info.mode = DynamicsMode::kGraphModel;
  info.factory = [](std::size_t n, std::uint64_t seed,
                    const DynamicsParams&) {
    return DynamicsRegistry::instance().make("nonsplit-skewed", n, seed);
  };
  registry.add(info);
  EXPECT_TRUE(registry.contains("test-model"));
  EXPECT_THROW(registry.add(info), std::invalid_argument);

  DynamicsInfo missingFactory;
  missingFactory.name = "no-factory";
  missingFactory.mode = DynamicsMode::kGraphModel;
  EXPECT_THROW(registry.add(missingFactory), std::invalid_argument);

  DynamicsInfo extraFactory = info;
  extraFactory.name = "tree-with-factory";
  extraFactory.mode = DynamicsMode::kAdversaryTrees;
  EXPECT_THROW(registry.add(extraFactory), std::invalid_argument);
}

TEST(DynamicsRegistryTest, EveryModelReplaysAtParamBoundaries) {
  // Registry-wide: every graph model × every documented parameter, pinned
  // at a boundary value the validator accepts, must construct and replay
  // deterministically across reset() — on nextGraph AND (when the entry
  // claims sparseCapable) on nextSparseRound. Guards the registry against
  // a model whose edge-of-range parameterization silently consumes
  // randomness differently on replay.
  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  const std::size_t n = 24;
  const BroadcastSim state(n);
  // Boundary candidates per key, tried in order; the first one the
  // entry's validator accepts wins. Taking one key at a time also keeps
  // mutually-exclusive pairs (nonsplit-random's edges/p) apart.
  const std::vector<std::string> candidates = {"1", "0", "0.999", "0.001"};
  for (const std::string& name : registry.names()) {
    const DynamicsInfo& info = registry.info(name);
    if (info.mode != DynamicsMode::kGraphModel) continue;
    std::vector<std::string> specs = {name};  // all-defaults baseline
    for (const DynamicsParamDoc& param : info.params) {
      bool accepted = false;
      for (const std::string& value : candidates) {
        const std::string text = name + ":" + param.key + "=" + value;
        try {
          registry.validate(DynamicsSpec::parse(text));
        } catch (const std::invalid_argument&) {
          continue;
        }
        specs.push_back(text);
        accepted = true;
        break;
      }
      EXPECT_TRUE(accepted)
          << name << ": no boundary candidate accepted for key '"
          << param.key << "'";
    }
    for (const std::string& spec : specs) {
      const auto model = registry.make(spec, n, 77);
      std::vector<BitMatrix> firstRun;
      for (std::size_t round = 0; round < 4; ++round) {
        firstRun.push_back(model->nextGraph(state));
      }
      model->reset();
      for (std::size_t round = 0; round < 4; ++round) {
        EXPECT_EQ(model->nextGraph(state), firstRun[round])
            << spec << " replay round " << round;
      }
      EXPECT_EQ(model->supportsSparseRounds(), info.sparseCapable) << spec;
      if (!info.sparseCapable) continue;
      // The sparse interface replays too (fresh models: a run consumes
      // one interface only).
      const auto sparseA = registry.make(spec, n, 77);
      const auto sparseB = registry.make(spec, n, 77);
      SparseRound ra, rb;
      std::vector<SparseRound> sparseFirst;
      for (std::size_t round = 0; round < 4; ++round) {
        sparseA->nextSparseRound(ra);
        sparseB->nextSparseRound(rb);
        EXPECT_EQ(ra.arcs, rb.arcs) << spec << " round " << round;
        sparseFirst.push_back(ra);
      }
      sparseA->reset();
      for (std::size_t round = 0; round < 4; ++round) {
        sparseA->nextSparseRound(ra);
        EXPECT_EQ(ra.arcs, sparseFirst[round].arcs)
            << spec << " sparse replay round " << round;
      }
    }
  }
}

TEST(DynamicsRegistryTest, SparseRoundsMirrorDenseBelowThreshold) {
  // The mirror contract golden CSVs rely on: at n ≤
  // kSparseDenseMirrorMaxN, nextSparseRound must produce exactly the
  // dense graph's off-diagonal arcs (same seed, same round index).
  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  const std::size_t n = 24;
  ASSERT_LE(n, kSparseDenseMirrorMaxN);
  const BroadcastSim state(n);
  for (const std::string& name : registry.names()) {
    const DynamicsInfo& info = registry.info(name);
    if (info.mode != DynamicsMode::kGraphModel || !info.sparseCapable) {
      continue;
    }
    const auto denseModel = registry.make(name, n, 31);
    const auto sparseModel = registry.make(name, n, 31);
    SparseRound round;
    for (std::size_t r = 0; r < 6; ++r) {
      const BitMatrix g = denseModel->nextGraph(state);
      sparseModel->nextSparseRound(round);
      ASSERT_EQ(round.n, n) << name;
      BitMatrix fromArcs = BitMatrix::identity(n);
      for (const auto& [src, dst] : round.arcs) {
        EXPECT_NE(src, dst) << name << ": self-loops must stay implicit";
        fromArcs.set(src, dst);
      }
      EXPECT_EQ(fromArcs, g) << name << " round " << r;
    }
  }
}

TEST(DynamicsDriverTest, RunDynamicsBroadcastCompletesAndReplays) {
  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  for (const std::string& spec :
       {std::string("nonsplit-random"),
        std::string("edge-markovian:p=0.25,q=0.1"),
        std::string("t-interval:T=3")}) {
    const auto model = registry.make(spec, 16, 9);
    const BroadcastRun first =
        runDynamicsBroadcast(16, *model, model->defaultRoundCap());
    EXPECT_TRUE(first.completed) << spec;
    EXPECT_GE(first.rounds, 1u) << spec;
    // The driver resets the model, so a second run replays bit for bit.
    const BroadcastRun again =
        runDynamicsBroadcast(16, *model, model->defaultRoundCap());
    EXPECT_EQ(first.rounds, again.rounds) << spec;
    EXPECT_EQ(first.completed, again.completed) << spec;
  }
}

TEST(DynamicsDriverTest, HistoryMatchesRoundsAndEdgesGrow) {
  const auto model =
      DynamicsRegistry::instance().make("edge-markovian:p=0.3,q=0.1", 12, 4);
  const BroadcastRun run =
      runDynamicsBroadcast(12, *model, model->defaultRoundCap(), true);
  ASSERT_TRUE(run.completed);
  ASSERT_EQ(run.history.size(), run.rounds);
  for (std::size_t i = 1; i < run.history.size(); ++i) {
    // The heard-of state is monotone: total edges never shrink.
    EXPECT_GE(run.history[i].totalEdges, run.history[i - 1].totalEdges);
  }
}

TEST(DynamicsDriverTest, TIntervalHoldsEachGraphForTRounds) {
  const auto model =
      DynamicsRegistry::instance().make("t-interval:T=3", 10, 11);
  const BroadcastSim state(10);
  std::vector<BitMatrix> graphs;
  for (std::size_t i = 0; i < 9; ++i) graphs.push_back(model->nextGraph(state));
  for (std::size_t period = 0; period < 3; ++period) {
    EXPECT_EQ(graphs[3 * period], graphs[3 * period + 1]) << period;
    EXPECT_EQ(graphs[3 * period], graphs[3 * period + 2]) << period;
    // Each period's graph is a symmetric connected spanning subgraph.
    EXPECT_TRUE(isRooted(graphs[3 * period])) << period;
  }
  // Rewiring happens: 3 independent random trees on 10 nodes collide
  // with negligible probability.
  EXPECT_FALSE(graphs[0] == graphs[3] && graphs[3] == graphs[6]);
}

}  // namespace
}  // namespace dynbcast
