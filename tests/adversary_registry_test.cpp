#include "src/adversary/registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "src/adversary/exact_solver.h"
#include "src/adversary/portfolio.h"
#include "src/sim/broadcast_sim.h"

namespace dynbcast {
namespace {

// The exact solver only supports tiny n; every other built-in is happy
// at this size.
std::size_t sizeFor(const std::string& name) {
  return name == "exact" ? 4 : 8;
}

TEST(AdversarySpecTest, ParsesBareName) {
  const AdversarySpec spec = AdversarySpec::parse("static-path");
  EXPECT_EQ(spec.name, "static-path");
  EXPECT_TRUE(spec.params.empty());
  EXPECT_EQ(spec.toString(), "static-path");
}

TEST(AdversarySpecTest, ParsesParamsAndPrintsCanonically) {
  const AdversarySpec spec = AdversarySpec::parse("beam:width=8,noise=2.5");
  EXPECT_EQ(spec.name, "beam");
  EXPECT_EQ(spec.params.getUInt("width", 0), 8u);
  EXPECT_DOUBLE_EQ(spec.params.getDouble("noise", 0), 2.5);
  // Canonical printing sorts keys; parsing the canonical form is a
  // fixed point.
  EXPECT_EQ(spec.toString(), "beam:noise=2.5,width=8");
  EXPECT_EQ(AdversarySpec::parse(spec.toString()).toString(),
            spec.toString());
}

TEST(AdversarySpecTest, TrimsWhitespace) {
  const AdversarySpec spec =
      AdversarySpec::parse("  freeze-path : depth = 3 ");
  EXPECT_EQ(spec.name, "freeze-path");
  EXPECT_EQ(spec.params.getUInt("depth", 0), 3u);
  EXPECT_EQ(spec.toString(), "freeze-path:depth=3");
}

TEST(AdversarySpecTest, MalformedSpecsThrow) {
  EXPECT_THROW((void)AdversarySpec::parse(""), std::invalid_argument);
  EXPECT_THROW((void)AdversarySpec::parse(":depth=3"),
               std::invalid_argument);
  EXPECT_THROW((void)AdversarySpec::parse("freeze-path:"),
               std::invalid_argument);
  EXPECT_THROW((void)AdversarySpec::parse("freeze-path:depth"),
               std::invalid_argument);
  EXPECT_THROW((void)AdversarySpec::parse("freeze-path:depth="),
               std::invalid_argument);
  EXPECT_THROW((void)AdversarySpec::parse("freeze-path:depth=1,depth=2"),
               std::invalid_argument);
  EXPECT_THROW((void)AdversarySpec::parse("freeze path:depth=1"),
               std::invalid_argument);
}

TEST(AdversaryRegistryTest, EveryBuiltinConstructs) {
  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  const auto names = registry.names();
  EXPECT_GE(names.size(), 14u);
  for (const std::string& name : names) {
    const auto adversary = registry.make(name, sizeFor(name), 1);
    ASSERT_NE(adversary, nullptr) << name;
  }
}

TEST(AdversaryRegistryTest, NameRoundTripsThroughParsePrint) {
  // Invariant: every adversary's name() is itself a valid spec string in
  // canonical form — parse(name()).toString() == name(), and the
  // registry rebuilds an adversary of the same name from it.
  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  for (const std::string& name : registry.names()) {
    const std::size_t n = sizeFor(name);
    const auto adversary = registry.make(name, n, 1);
    const AdversarySpec reparsed = AdversarySpec::parse(adversary->name());
    EXPECT_EQ(reparsed.toString(), adversary->name()) << name;
    const auto rebuilt = registry.make(reparsed, n, 1);
    EXPECT_EQ(rebuilt->name(), adversary->name()) << name;
  }
}

TEST(AdversaryRegistryTest, DuplicateRegistrationThrows) {
  AdversaryRegistry registry;  // local registry: no built-ins
  AdversaryInfo info;
  info.name = "test-adv";
  info.factory = [](std::size_t n, std::uint64_t,
                    const AdversaryParams&) -> std::unique_ptr<Adversary> {
    return AdversaryRegistry::instance().make("static-path", n, 1);
  };
  registry.add(info);
  EXPECT_TRUE(registry.contains("test-adv"));
  EXPECT_THROW(registry.add(info), std::invalid_argument);
}

TEST(AdversaryRegistryTest, UnknownNameSuggestsNearest) {
  try {
    (void)AdversaryRegistry::instance().make("freez-path", 8, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("freeze-path"), std::string::npos)
        << e.what();
  }
}

TEST(AdversaryRegistryTest, UnknownKeySuggestsNearest) {
  try {
    (void)AdversaryRegistry::instance().make("freeze-path:dept=3", 8, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("depth"), std::string::npos)
        << e.what();
  }
}

TEST(AdversaryRegistryTest, BadParameterValuesThrow) {
  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  try {
    (void)registry.make("freeze-path:depth=abc", 8, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // Conversion errors name the spec axis they came from.
    EXPECT_NE(std::string(e.what()).find("adversary parameter"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)registry.make("freeze-path:depth=0", 8, 1),
               std::invalid_argument);
  EXPECT_THROW((void)registry.make("k-leaf:k=9", 8, 1),
               std::invalid_argument);  // k > n-1
  EXPECT_THROW((void)registry.make("freeze-broom:handle=9", 8, 1),
               std::invalid_argument);  // handle > n
  EXPECT_THROW((void)registry.make("exact", 9, 1),
               std::invalid_argument);  // beyond the exhaustive pool limit
  // Negative values must get the friendly error, not std::stoull's
  // silent wraparound into a huge unsigned (which once slipped past the
  // range guards into a raw constructor assert).
  EXPECT_THROW((void)registry.make("k-leaf:k=-1", 8, 1),
               std::invalid_argument);
  EXPECT_THROW((void)registry.make("beam:width=-3", 8, 1),
               std::invalid_argument);
}

TEST(AdversaryRegistryTest, BeamSpecValidationMatchesRegistryStyle) {
  // Both crash-prone configs are rejected eagerly at make() time with
  // registry-style messages, not at first nextTree() deep in a run.
  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  try {
    (void)registry.make("beam:width=0", 8, 1);
    FAIL() << "width=0 accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("adversary 'beam'"),
              std::string::npos)
        << e.what();
  }
  try {
    (void)registry.make("beam:diversity=101", 8, 1);
    FAIL() << "diversity=101 accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("adversary 'beam'"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("100"), std::string::npos)
        << e.what();
  }
  // The boundary values themselves stay legal.
  EXPECT_NO_THROW((void)registry.make("beam:width=1,diversity=100", 4, 1));
}

TEST(AdversaryRegistryTest, LookaheadTranspositionToggleIsASpecParam) {
  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  EXPECT_NO_THROW((void)registry.make("lookahead:depth=2,tt=0", 6, 1));
  EXPECT_NO_THROW((void)registry.make("lookahead:depth=2,tt=1", 6, 1));
}

TEST(AdversaryRegistryTest, BeamNameCarriesTheFullSpec) {
  // Rebuilding a parameterized beam from its own name() must reproduce
  // the same configuration, not just the same width.
  const auto adversary =
      AdversaryRegistry::instance().make("beam:width=16,noise=2.0", 8, 1);
  EXPECT_EQ(adversary->name(), "beam:noise=2.0,width=16");
  EXPECT_EQ(AdversarySpec::parse(adversary->name()).toString(),
            adversary->name());
}

TEST(AdversaryRegistryTest, ParameterizedSpecsProduceDistinctBehavior) {
  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  // k-leaf's parameter is directly observable: the generated trees have
  // exactly k leaves.
  const BroadcastSim state(12);
  auto twoLeaves = registry.make("k-leaf:k=2", 12, 5);
  auto fiveLeaves = registry.make("k-leaf:k=5", 12, 5);
  EXPECT_EQ(twoLeaves->nextTree(state).leafCount(), 2u);
  EXPECT_EQ(fiveLeaves->nextTree(state).leafCount(), 5u);
  EXPECT_NE(twoLeaves->name(), fiveLeaves->name());
  // freeze-broom's handle bounds its static height.
  auto shortBroom = registry.make("freeze-broom:handle=2", 12, 5);
  auto longBroom = registry.make("freeze-broom:handle=11", 12, 5);
  EXPECT_EQ(shortBroom->nextTree(state).height(), 2u);
  EXPECT_EQ(longBroom->nextTree(state).height(), 11u);
}

TEST(AdversaryRegistryTest, ExactReplayAchievesTheSolverValue) {
  const std::size_t n = 4;
  const ExactResult truth = ExactSolver(n).solve();
  auto adversary = AdversaryRegistry::instance().make("exact", n, 1);
  const BroadcastRun run =
      runAdversary(n, *adversary, defaultRoundCap(n));
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.rounds, truth.tStar);
  // Replay must survive reset: the second run reproduces the value.
  const BroadcastRun again =
      runAdversary(n, *adversary, defaultRoundCap(n));
  EXPECT_EQ(again.rounds, truth.tStar);
}

TEST(AdversaryRegistryTest, BeamReplayIsDeterministicAndVerified) {
  const std::size_t n = 8;
  auto a = AdversaryRegistry::instance().make("beam:width=16", n, 3);
  auto b = AdversaryRegistry::instance().make("beam:width=16", n, 3);
  const BroadcastRun runA = runAdversary(n, *a, defaultRoundCap(n));
  const BroadcastRun runB = runAdversary(n, *b, defaultRoundCap(n));
  EXPECT_TRUE(runA.completed);
  EXPECT_EQ(runA.rounds, runB.rounds);
  // The beam witness is at least as strong as the static baseline.
  EXPECT_GE(runA.rounds, n - 1);
}

TEST(PortfolioSpecsTest, StandardPortfolioResolvesThroughRegistry) {
  const auto specs = standardPortfolioSpecs();
  const auto members = standardPortfolio(8, 1);
  ASSERT_EQ(members.size(), specs.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    // Member display names are the canonical spec strings, and each
    // factory builds an adversary reporting exactly that name.
    EXPECT_EQ(members[i].name, AdversarySpec::parse(specs[i]).toString());
    EXPECT_EQ(members[i].make()->name(), members[i].name);
  }
}

TEST(PortfolioSpecsTest, BadSpecFailsAtCompositionTime) {
  EXPECT_THROW((void)membersFromSpecs({"static-path", "no-such-adv"}, 8, 1),
               std::invalid_argument);
  EXPECT_THROW((void)membersFromSpecs({"beam:widht=4"}, 8, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace dynbcast
