// Batched execution is a pure optimization: every test here pins the
// batched path to the scalar one, bit for bit. Three layers —
//
//   1. BatchBroadcastSim against BroadcastSim: the interleaved SoA
//      recurrence (shared-tree fast path, per-lane strided path,
//      applyGraph, retirement compaction) reproduces the exact heard
//      matrices of independent scalar simulators.
//   2. runObliviousBatch against runAdversary: same rounds, same
//      completed flag per lane, including round-cap stalls.
//   3. ExperimentEngine::runSweep: batch=K produces byte-identical rows
//      to batch=off for widths that divide, straddle, and exceed the
//      replicate count, at jobs=1 and jobs=8.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/adversary/adversary.h"
#include "src/adversary/oblivious.h"
#include "src/engine/experiment_engine.h"
#include "src/graph/bitmatrix.h"
#include "src/sim/batch_sim.h"
#include "src/sim/broadcast_sim.h"
#include "src/support/rng.h"
#include "src/tree/generators.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {
namespace {

std::vector<DynBitset> scalarHeard(const BroadcastSim& sim) {
  std::vector<DynBitset> rows;
  rows.reserve(sim.processCount());
  for (std::size_t y = 0; y < sim.processCount(); ++y) {
    rows.push_back(sim.heardBy(y));
  }
  return rows;
}

TEST(BatchSimTest, SharedTreeMatchesScalarSimulators) {
  for (const std::size_t n : {2ul, 5ul, 63ul, 64ul, 65ul, 90ul}) {
    Rng rng(1000 + n);
    BatchBroadcastSim batch(n, 4);
    std::vector<BroadcastSim> scalars(4, BroadcastSim(n));
    for (int round = 0; round < 6; ++round) {
      const RootedTree tree = randomRootedTree(n, rng);
      batch.applyTree(tree);
      for (BroadcastSim& s : scalars) s.applyTree(tree);
      for (std::size_t b = 0; b < 4; ++b) {
        EXPECT_EQ(batch.heardMatrix(b), scalarHeard(scalars[b]))
            << "n=" << n << " lane=" << b << " round=" << round;
        EXPECT_EQ(batch.broadcastDone(b), scalars[b].broadcastDone());
        EXPECT_EQ(batch.gossipDone(b), scalars[b].gossipDone());
        for (std::size_t y = 0; y < n; ++y) {
          ASSERT_EQ(batch.heardCount(b, y), scalars[b].heardCount(y));
        }
      }
    }
  }
}

TEST(BatchSimTest, PerLaneTreesMatchScalarSimulators) {
  const std::size_t n = 70;
  Rng rng(42);
  BatchBroadcastSim batch(n, 3);
  std::vector<BroadcastSim> scalars(3, BroadcastSim(n));
  std::vector<RootedTree> owned;
  for (int round = 0; round < 5; ++round) {
    owned.clear();
    for (std::size_t b = 0; b < 3; ++b) {
      owned.push_back(randomRootedTree(n, rng));
    }
    std::vector<const RootedTree*> trees;
    for (const RootedTree& t : owned) trees.push_back(&t);
    batch.applyTrees(trees);
    for (std::size_t b = 0; b < 3; ++b) {
      scalars[b].applyTree(owned[b]);
      EXPECT_EQ(batch.heardMatrix(b), scalarHeard(scalars[b]))
          << "lane=" << b << " round=" << round;
    }
  }
}

TEST(BatchSimTest, ApplyGraphAndResetMatchScalar) {
  const std::size_t n = 33;
  Rng rng(7);
  BatchBroadcastSim batch(n, 2);
  BroadcastSim scalar(n);
  BitMatrix g = BitMatrix::identity(n);
  for (int e = 0; e < 80; ++e) {
    g.set(rng.uniform(n), rng.uniform(n));
  }
  batch.applyGraph(g);
  scalar.applyGraph(g);
  for (std::size_t b = 0; b < 2; ++b) {
    EXPECT_EQ(batch.heardMatrix(b), scalarHeard(scalar));
  }
  EXPECT_EQ(batch.round(), 1u);
  batch.reset();
  EXPECT_EQ(batch.round(), 0u);
  EXPECT_EQ(batch.width(), 2u);
  EXPECT_EQ(batch.heardMatrix(0), scalarHeard(BroadcastSim(n)));
}

TEST(BatchSimTest, RetirementCompactsAndPreservesSurvivors) {
  // Lane 0 broadcasts in one round (a star); lane 1 crawls along a path.
  const std::size_t n = 8;
  std::vector<std::size_t> star(n, 0);
  std::vector<std::size_t> path(n);
  path[0] = 0;
  for (std::size_t i = 1; i < n; ++i) path[i] = i - 1;
  const RootedTree starTree(0, star);
  const RootedTree pathTree(0, path);
  BatchBroadcastSim batch(n, 2);
  BroadcastSim survivor(n);
  std::vector<const RootedTree*> trees = {&starTree, &pathTree};
  batch.applyTrees(trees);
  survivor.applyTree(pathTree);
  const std::vector<std::size_t> retired = batch.retireBroadcastDone();
  ASSERT_EQ(retired, std::vector<std::size_t>{0});
  ASSERT_EQ(batch.width(), 1u);
  EXPECT_EQ(batch.originalLane(0), 1u);
  // The surviving lane keeps running, now on the fast shared path.
  while (!batch.broadcastDone(0)) {
    batch.applyTree(pathTree);
    survivor.applyTree(pathTree);
    EXPECT_EQ(batch.heardMatrix(0), scalarHeard(survivor));
  }
  EXPECT_EQ(batch.round(), n - 1);
}

// --- runObliviousBatch vs runAdversary ------------------------------

void expectBatchMatchesScalar(std::size_t n,
                              std::vector<std::unique_ptr<Adversary>> batch,
                              std::vector<std::unique_ptr<Adversary>> scalar,
                              std::size_t cap) {
  std::vector<Adversary*> lanes;
  for (const auto& a : batch) lanes.push_back(a.get());
  const std::vector<BroadcastRun> batched = runObliviousBatch(n, lanes, cap);
  ASSERT_EQ(batched.size(), scalar.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    const BroadcastRun expect = runAdversary(n, *scalar[i], cap);
    EXPECT_EQ(batched[i].rounds, expect.rounds) << "lane " << i;
    EXPECT_EQ(batched[i].completed, expect.completed) << "lane " << i;
  }
}

TEST(ObliviousBatchTest, MixedPortfolioAgreesWithScalarRuns) {
  for (const std::size_t n : {2ul, 17ul, 64ul, 65ul}) {
    std::vector<std::unique_ptr<Adversary>> batch;
    std::vector<std::unique_ptr<Adversary>> scalar;
    for (int copy = 0; copy < 2; ++copy) {
      batch.push_back(std::make_unique<StaticPathAdversary>(n));
      scalar.push_back(std::make_unique<StaticPathAdversary>(n));
      batch.push_back(std::make_unique<AlternatingPathAdversary>(n));
      scalar.push_back(std::make_unique<AlternatingPathAdversary>(n));
      const std::uint64_t seed = 900 + static_cast<std::uint64_t>(copy);
      batch.push_back(std::make_unique<RandomPathAdversary>(n, seed));
      scalar.push_back(std::make_unique<RandomPathAdversary>(n, seed));
      batch.push_back(std::make_unique<UniformRandomAdversary>(n, seed));
      scalar.push_back(std::make_unique<UniformRandomAdversary>(n, seed));
    }
    expectBatchMatchesScalar(n, std::move(batch), std::move(scalar),
                             defaultRoundCap(n));
  }
}

TEST(ObliviousBatchTest, RoundCapStallReportsLikeScalarDriver) {
  // A 3-round cap on static-path at n=16 stalls every lane: rounds ==
  // cap, completed == false — exactly what runAdversary reports.
  const std::size_t n = 16;
  std::vector<std::unique_ptr<Adversary>> batch;
  std::vector<std::unique_ptr<Adversary>> scalar;
  for (int i = 0; i < 3; ++i) {
    batch.push_back(std::make_unique<StaticPathAdversary>(n));
    scalar.push_back(std::make_unique<StaticPathAdversary>(n));
  }
  expectBatchMatchesScalar(n, std::move(batch), std::move(scalar), 3);
}

TEST(ObliviousBatchTest, SingleProcessCompletesAtRoundZero) {
  std::vector<std::unique_ptr<Adversary>> batch;
  batch.push_back(std::make_unique<StaticPathAdversary>(1));
  std::vector<Adversary*> lanes = {batch[0].get()};
  const std::vector<BroadcastRun> runs = runObliviousBatch(1, lanes, 10);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].rounds, 0u);
  EXPECT_TRUE(runs[0].completed);
}

// --- engine-level bit identity --------------------------------------

SweepSpec mixedSweepSpec() {
  SweepSpec spec;
  spec.sizes = {5, 33, 64};
  spec.masterSeed = 2026;
  spec.seedsPerSize = 9;  // not a multiple of any tested width
  spec.portfolio = [](std::size_t n, std::uint64_t seed) {
    std::vector<PortfolioMember> members;
    members.push_back({"static-path", [n] {
                         return std::unique_ptr<Adversary>(
                             new StaticPathAdversary(n));
                       }});
    members.push_back({"random-path", [n, seed] {
                         return std::unique_ptr<Adversary>(
                             new RandomPathAdversary(n, seed));
                       }});
    members.push_back({"k-leaf", [n, seed] {
                         return std::unique_ptr<Adversary>(
                             new KLeafAdversary(n, 2, seed + 1));
                       }});
    return members;
  };
  return spec;
}

TEST(BatchedSweepTest, WidthsAndJobsAreOutputInvariant) {
  SweepSpec spec = mixedSweepSpec();
  spec.batch = {BatchPolicy::Mode::kOff, 0};
  ExperimentEngine serial({/*jobs=*/1, /*recordHistory=*/false});
  const SweepResult reference = serial.runSweep(spec);
  ASSERT_FALSE(reference.rows.empty());
  for (const std::size_t width : {1ul, 3ul, 8ul, 64ul}) {
    spec.batch = {BatchPolicy::Mode::kFixed, width};
    EXPECT_EQ(serial.runSweep(spec).rows, reference.rows)
        << "batch width " << width << ", jobs=1";
    ExperimentEngine threaded({/*jobs=*/8, /*recordHistory=*/false});
    EXPECT_EQ(threaded.runSweep(spec).rows, reference.rows)
        << "batch width " << width << ", jobs=8";
  }
  spec.batch = {BatchPolicy::Mode::kAuto, 0};
  EXPECT_EQ(serial.runSweep(spec).rows, reference.rows) << "batch=auto";
}

TEST(BatchedSweepTest, AdaptiveMembersFallBackToScalarUnchanged) {
  // A portfolio mixing oblivious and adaptive members batches only the
  // oblivious positions; the adaptive rows must be untouched.
  SweepSpec spec;
  spec.sizes = {12};
  spec.masterSeed = 77;
  spec.seedsPerSize = 8;
  spec.portfolio = [](std::size_t n, std::uint64_t seed) {
    std::vector<PortfolioMember> members;
    members.push_back({"static-path", [n] {
                         return std::unique_ptr<Adversary>(
                             new StaticPathAdversary(n));
                       }});
    members.push_back({"uniform-random", [n, seed] {
                         return std::unique_ptr<Adversary>(
                             new UniformRandomAdversary(n, seed));
                       }});
    return members;
  };
  ExperimentEngine engine({/*jobs=*/1, /*recordHistory=*/false});
  spec.batch = {BatchPolicy::Mode::kOff, 0};
  const SweepResult reference = engine.runSweep(spec);
  spec.batch = {BatchPolicy::Mode::kFixed, 4};
  EXPECT_EQ(engine.runSweep(spec).rows, reference.rows);
}

TEST(BatchPolicyTest, ParseAndNameRoundTrip) {
  EXPECT_EQ(parseBatchPolicy("auto").mode, BatchPolicy::Mode::kAuto);
  EXPECT_EQ(parseBatchPolicy("off").mode, BatchPolicy::Mode::kOff);
  const BatchPolicy fixed = parseBatchPolicy("8");
  EXPECT_EQ(fixed.mode, BatchPolicy::Mode::kFixed);
  EXPECT_EQ(fixed.width, 8u);
  EXPECT_EQ(batchPolicyName(fixed), "8");
  EXPECT_EQ(batchPolicyName(parseBatchPolicy("auto")), "auto");
  for (const char* bad : {"0", "9999", "fast"}) {
    EXPECT_THROW(static_cast<void>(parseBatchPolicy(bad)),
                 std::invalid_argument)
        << bad;
  }
}

}  // namespace
}  // namespace dynbcast
