#include "src/graph/properties.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

TEST(ReachabilityTest, PathReachesForward) {
  const BitMatrix g = makePath(4).toMatrix();
  const DynBitset fromRoot = reachableFrom(g, 0);
  EXPECT_TRUE(fromRoot.all());
  const DynBitset fromTail = reachableFrom(g, 3);
  EXPECT_EQ(fromTail.count(), 1u);
  EXPECT_TRUE(fromTail.test(3));
}

TEST(RootedTest, TreesAreRooted) {
  Rng rng(3);
  for (int t = 0; t < 20; ++t) {
    const RootedTree tree = randomRootedTree(2 + rng.uniform(12), rng);
    const BitMatrix g = tree.toMatrix();
    EXPECT_TRUE(isRooted(g));
    EXPECT_EQ(findRoot(g).value(), tree.root());
  }
}

TEST(RootedTest, DisconnectedIsNotRooted) {
  BitMatrix g = BitMatrix::identity(4);  // only self-loops
  EXPECT_FALSE(isRooted(g));
  EXPECT_FALSE(findRoot(g).has_value());
}

TEST(NonsplitTest, FullGraphIsNonsplit) {
  EXPECT_TRUE(isNonsplit(BitMatrix::full(5)));
}

TEST(NonsplitTest, IdentityIsNotNonsplitForTwoPlus) {
  EXPECT_FALSE(isNonsplit(BitMatrix::identity(2)));
  EXPECT_TRUE(isNonsplit(BitMatrix::identity(1)));
}

TEST(NonsplitTest, StarWithLoopsIsNonsplit) {
  // The center has an edge to everyone: it is a universal in-neighbor.
  const BitMatrix g = makeStar(6, 2).toMatrix();
  EXPECT_TRUE(isNonsplit(g));
}

TEST(NonsplitTest, PathWithLoopsIsNotNonsplit) {
  // Nodes 0 and 3 share no in-neighbor in a directed path.
  const BitMatrix g = makePath(4).toMatrix();
  EXPECT_FALSE(isNonsplit(g));
}

TEST(TreeMembershipTest, AcceptsTreeMatrices) {
  Rng rng(7);
  for (int t = 0; t < 30; ++t) {
    const std::size_t n = 1 + rng.uniform(14);
    const RootedTree tree = randomRootedTree(n, rng);
    EXPECT_TRUE(isRootedTreeWithSelfLoops(tree.toMatrix()))
        << tree.toString();
  }
}

TEST(TreeMembershipTest, RejectsMissingSelfLoop) {
  BitMatrix g = makePath(3).toMatrix();
  g.reset(1, 1);
  EXPECT_FALSE(isRootedTreeWithSelfLoops(g));
}

TEST(TreeMembershipTest, RejectsExtraEdge) {
  BitMatrix g = makePath(4).toMatrix();
  g.set(0, 3);  // shortcut edge: node 3 now has in-degree 3
  EXPECT_FALSE(isRootedTreeWithSelfLoops(g));
}

TEST(TreeMembershipTest, RejectsTwoRoots) {
  // Two disjoint paths 0→1 and 2→3 with loops: two in-degree-1 nodes.
  BitMatrix g = BitMatrix::identity(4);
  g.set(0, 1);
  g.set(2, 3);
  EXPECT_FALSE(isRootedTreeWithSelfLoops(g));
}

TEST(TreeMembershipTest, RejectsCycle) {
  BitMatrix g = BitMatrix::identity(3);
  g.set(0, 1);
  g.set(1, 2);
  g.set(2, 0);  // every node in-degree 2: no root
  EXPECT_FALSE(isRootedTreeWithSelfLoops(g));
}

TEST(TreeDepthTest, PathDepthIsNMinus1) {
  EXPECT_EQ(treeDepth(makePath(6).toMatrix()), 5u);
}

TEST(TreeDepthTest, StarDepthIsOne) {
  EXPECT_EQ(treeDepth(makeStar(6, 0).toMatrix()), 1u);
}

TEST(TreeDepthTest, MatchesRootedTreeHeight) {
  Rng rng(11);
  for (int t = 0; t < 20; ++t) {
    const RootedTree tree = randomRootedTree(2 + rng.uniform(10), rng);
    EXPECT_EQ(treeDepth(tree.toMatrix()), tree.height());
  }
}

}  // namespace
}  // namespace dynbcast
