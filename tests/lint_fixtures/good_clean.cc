// dynbcast-lint-fixture: path=src/tree/spanning.cpp
//
// Clean file: allowed includes, Rng-based randomness, zero diagnostics.

#include "src/graph/bitmatrix.h"
#include "src/support/rng.h"

namespace dynbcast {

std::size_t pickBranch(Rng& rng, std::size_t n) {
  return rng.uniform(n);
}

}  // namespace dynbcast
