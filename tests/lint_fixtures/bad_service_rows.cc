// dynbcast-lint-fixture: path=src/service/emit_results.cpp

#include <chrono>
#include <string>
#include <unordered_map>

namespace dynbcast {

void emitResults(const std::unordered_map<std::string, int>& byKey) {
  const auto startedAt = std::chrono::system_clock::now();
  for (const auto& [key, rounds] : byKey) {
    streamTaskLine(key, rounds, startedAt);
  }
}

}  // namespace dynbcast

// EXPECT: 10: [det-wall-clock] library code (src/) must not read clocks; move timing to bench/ or tools/ — layer 'service' output must be a pure function of its seeds
// EXPECT: 11: [det-unordered-iter] iteration order of 'byKey' is unspecified; copy to a sorted container (or use std::map) before emitting rows
