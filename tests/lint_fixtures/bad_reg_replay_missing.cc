// dynbcast-lint-fixture: path=src/dynamics/drift_walk.cpp

#include "src/dynamics/dynamics.h"

namespace dynbcast {

class DriftWalk final : public DynamicsModel {
 public:
  void reset() override { step_ = 0; }

 private:
  std::size_t step_ = 0;
};

}  // namespace dynbcast

// EXPECT: 9: [reg-replay-test] this file implements reset() (a replayable adversary/dynamics entry) but declares no `// dynbcast-lint: replay-test(<name>)`; name the determinism suite that replays it
