// dynbcast-lint-fixture: path=src/sim/hot_kernel.cpp
// dynbcast-lint: hot-path

#include <memory>
#include <vector>

namespace dynbcast {

struct HotKernel {
  std::vector<int> scratch;  // member declaration: not a body, no finding

  void step(std::vector<int>& frontier) {
    std::vector<int> tmp(frontier.size());
    auto box = std::make_unique<int>(7);
    int* raw = new int[4];
    std::vector<int>& alias = scratch;
    std::vector<int> moved = std::move(tmp);
    frontier.swap(moved);
    delete[] raw;
    (void)box;
    (void)alias;
  }
};

}  // namespace dynbcast

// EXPECT: 13: [hot-alloc] std::vector constructed inside a hot-path function body; preallocate in the constructor/reset and reuse
// EXPECT: 14: [hot-alloc] std::make_unique allocates; hot-path state must be preallocated
// EXPECT: 15: [hot-alloc] `new` in a hot-path function body; preallocate in the constructor/reset and reuse
