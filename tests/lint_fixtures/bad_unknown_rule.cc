// dynbcast-lint-fixture: path=src/graph/unknown_rule.cpp

namespace dynbcast {

// dynbcast-lint: allow(det-bogus) -- the rule id has a typo
int identity(int x) { return x; }

// dynbcast-lint: allow(hot-alloc
int zero() { return 0; }

}  // namespace dynbcast

// EXPECT: 5: [lint-unknown-rule] allow() names unknown rule 'det-bogus'
// EXPECT: 8: [lint-unknown-rule] malformed allow(...) directive
