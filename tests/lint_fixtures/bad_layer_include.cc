// dynbcast-lint-fixture: path=src/graph/bad_dep.cpp

#include "src/graph/bitmatrix.h"
#include "src/sim/broadcast_sim.h"

namespace dynbcast {}

// EXPECT: 4: [layer-include] 'graph' may not include 'sim' (src/sim/broadcast_sim.h); allowed: {support} per tools/lint/layers.txt
