// dynbcast-lint-fixture: path=src/sim/suppressed.cpp
// dynbcast-lint: hot-path

#include <vector>

namespace dynbcast {

std::vector<int> snapshot(const std::vector<int>& state) {
  // Diagnostic copy, documented and reviewed:
  // dynbcast-lint: allow(hot-alloc) -- one-off diagnostic snapshot
  std::vector<int> copy(state);
  return copy;
}

}  // namespace dynbcast
