// dynbcast-lint-fixture: path=src/adversary/register_good.cpp

#include "src/adversary/registry.h"

namespace dynbcast {

void registerGoodExamples(AdversaryRegistry& reg) {
  reg.add({"beam", "beam-search delay adversary",
           {{"width", "beam width (default 256)"}},
           makeBeam});

  AdversaryInfo info;
  info.name = "plain";
  info.description = "parameterless strategy";
  info.params = {};
  reg.add(std::move(info));
}

}  // namespace dynbcast
