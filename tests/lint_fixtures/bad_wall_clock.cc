// dynbcast-lint-fixture: path=src/sim/timed_step.cpp

#include <chrono>
#include <cstdlib>

namespace dynbcast {

double stepWithTiming() {
  const auto t0 = std::chrono::steady_clock::now();
  const int jitter = rand();
  return static_cast<double>(jitter) + t0.time_since_epoch().count();
}

}  // namespace dynbcast

// EXPECT: 9: [det-wall-clock] library code (src/) must not read clocks; move timing to bench/ or tools/ — layer 'sim' output must be a pure function of its seeds
// EXPECT: 10: [det-wall-clock] C rand()/srand() share hidden global state; use dynbcast::Rng
