// dynbcast-lint-fixture: path=src/graph/shuffle.cpp

#include <random>

namespace dynbcast {

int pick() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

}  // namespace dynbcast

// EXPECT: 8: [det-naked-rng] construct randomness via dynbcast::Rng / SeedSequence, not std::mt19937 (position-based seeding is the contract)
