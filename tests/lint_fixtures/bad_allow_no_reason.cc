// dynbcast-lint-fixture: path=src/sim/no_reason.cpp
// dynbcast-lint: hot-path

#include <vector>

namespace dynbcast {

void fill(std::vector<int>& out) {
  // dynbcast-lint: allow(hot-alloc)
  std::vector<int> tmp(out.size());
  out.swap(tmp);
}

}  // namespace dynbcast

// EXPECT: 9: [lint-allow-reason] allow(hot-alloc) without `-- <reason>`: a suppression is a reviewed decision, write down why
// EXPECT: 10: [hot-alloc] std::vector constructed inside a hot-path function body; preallocate in the constructor/reset and reuse
