// dynbcast-lint-fixture: path=tools/emit_report.cpp

#include <string>
#include <unordered_map>

void emit(const std::unordered_map<std::string, int>& byName) {
  for (const auto& [name, rounds] : byName) {
    printRow(name, rounds);
  }
}

// EXPECT: 7: [det-unordered-iter] iteration order of 'byName' is unspecified; copy to a sorted container (or use std::map) before emitting rows
