// dynbcast-lint-fixture: path=src/adversary/register_bad.cpp

#include "src/adversary/registry.h"

namespace dynbcast {

void registerBadExamples(AdversaryRegistry& reg) {
  reg.add({"greedy-lite", "greedy without docs", makeGreedyLite});

  AdversaryInfo info;
  info.name = "undocumented";
  info.description = "entry built field by field";
  reg.add(std::move(info));
}

}  // namespace dynbcast

// EXPECT: 8: [reg-param-doc] registration aggregate must carry the param-doc list as its 3rd field ({} for a parameterless entry)
// EXPECT: 13: [reg-param-doc] registration of 'info' has no 'info.params = ...' declaration in the enclosing block; declare the accepted keys (`= {}` for none)
