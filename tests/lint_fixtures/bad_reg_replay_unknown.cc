// dynbcast-lint-fixture: path=src/adversary/phantom.cpp

namespace dynbcast {

// dynbcast-lint: replay-test(PhantomReplaySuite)
class PhantomAdversary {
 public:
  void reset() override { rounds_ = 0; }

 private:
  unsigned rounds_ = 0;
};

}  // namespace dynbcast

// EXPECT: 8: [reg-replay-test] replay-test(PhantomReplaySuite) names a test that does not exist under tests/ — the determinism gate it promises is gone
