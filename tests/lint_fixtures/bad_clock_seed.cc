// dynbcast-lint-fixture: path=bench/clock_seeded.cpp

#include <ctime>

int main() {
  dynbcast::Rng rng(static_cast<std::uint64_t>(std::time(nullptr)));
  return static_cast<int>(rng.next() & 1);
}

// EXPECT: 6: [det-clock-seed] wall-clock value must not seed an RNG; seeds come from SeedSequence positions
