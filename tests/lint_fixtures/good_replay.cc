// dynbcast-lint-fixture: path=src/dynamics/good_model.cpp
// dynbcast-lint-fixture: known-test=GoodModelReplaysAfterReset

namespace dynbcast {

// dynbcast-lint: replay-test(GoodModelReplaysAfterReset)
class GoodModel final : public DynamicsModel {
 public:
  void reset() override { round_ = 0; }

 private:
  std::size_t round_ = 0;
};

}  // namespace dynbcast
