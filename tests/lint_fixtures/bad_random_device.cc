// dynbcast-lint-fixture: path=src/support/entropy.cpp

#include <random>

namespace dynbcast {

std::uint64_t entropySeed() {
  std::random_device rd;
  return rd();
}

}  // namespace dynbcast

// EXPECT: 8: [det-random-device] std::random_device draws OS entropy; derive seeds from SeedSequence positions instead
