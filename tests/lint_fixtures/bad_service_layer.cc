// dynbcast-lint-fixture: path=src/engine/uses_service.cpp

#include "src/engine/task_plan.h"
#include "src/service/manifest.h"

namespace dynbcast {

void planThroughService() {}

}  // namespace dynbcast

// EXPECT: 4: [layer-include] 'engine' may not include 'service' (src/service/manifest.h); allowed: {adversary, analysis, bounds, dynamics, graph, nonsplit, sim, support, tree} per tools/lint/layers.txt
