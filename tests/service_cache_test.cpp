// Result-cache semantics: disk persistence across instances (the
// cross-process story), LRU eviction transparency, space-bearing keys,
// and the disabled mode.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "src/service/cache.h"
#include "src/support/file_lock.h"

namespace dynbcast {
namespace {

class ServiceCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "dynbcast_cache_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);  // stale state from prior runs
    makeDirectories(dir_);
  }

  std::string dir_;
};

TEST_F(ServiceCacheTest, EmptyDirectoryDisablesTheCache) {
  ResultCache cache("");
  EXPECT_FALSE(cache.enabled());
  cache.put("some key", {5, true});
  EXPECT_FALSE(cache.get("some key").has_value());
}

TEST_F(ServiceCacheTest, PutGetRoundTrip) {
  ResultCache cache(dir_);
  ASSERT_TRUE(cache.enabled());
  EXPECT_FALSE(cache.get("row/1 n=8 seed=42").has_value());

  cache.put("row/1 n=8 seed=42", {13, true});
  cache.put("row/1 n=8 seed=43", {0, false});

  const auto hit = cache.get("row/1 n=8 seed=42");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rounds, 13u);
  EXPECT_TRUE(hit->completed);

  const auto incomplete = cache.get("row/1 n=8 seed=43");
  ASSERT_TRUE(incomplete.has_value());
  EXPECT_EQ(incomplete->rounds, 0u);
  EXPECT_FALSE(incomplete->completed);
}

TEST_F(ServiceCacheTest, AFreshInstanceReadsWhatAnotherWrote) {
  // Two ResultCache objects over one directory model two processes: the
  // second's LRU is cold, so a hit proves the bucket files carry it.
  {
    ResultCache writer(dir_);
    writer.put("beam/1 n=16 seed=7 width=256 moves=8 div=40 searched=1",
               {29, true});
  }
  ResultCache reader(dir_);
  const auto hit =
      reader.get("beam/1 n=16 seed=7 width=256 moves=8 div=40 searched=1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rounds, 29u);
}

TEST_F(ServiceCacheTest, KeysWithManySpacesSurviveVerbatim) {
  ResultCache cache(dir_);
  const std::string key =
      "row/1 obj=broadcast dyn=rooted-tree cap=0 backend=dense "
      "member=freeze-path:depth=3 n=8 seed=99 mpos=2";
  cache.put(key, {4, true});
  // Near-miss keys must not alias.
  EXPECT_FALSE(cache.get(key + " extra").has_value());
  const auto hit = ResultCache(dir_).get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rounds, 4u);
}

TEST_F(ServiceCacheTest, LruEvictionFallsThroughToDisk) {
  ResultCache cache(dir_, /*memoryCapacity=*/2);
  cache.put("k1", {1, true});
  cache.put("k2", {2, true});
  cache.put("k3", {3, true});  // evicts k1 from memory, not from disk

  for (int i = 1; i <= 3; ++i) {
    const std::string key = "k" + std::to_string(i);
    const auto hit = cache.get(key);
    ASSERT_TRUE(hit.has_value()) << key;
    EXPECT_EQ(hit->rounds, static_cast<std::size_t>(i)) << key;
  }
}

TEST_F(ServiceCacheTest, DuplicateAppendsAreIdempotent) {
  ResultCache cache(dir_);
  cache.put("dup", {8, true});
  cache.put("dup", {8, true});
  const auto hit = ResultCache(dir_).get("dup");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rounds, 8u);
}

}  // namespace
}  // namespace dynbcast
