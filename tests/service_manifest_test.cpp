// Manifest durability semantics: round-trip, torn-tail tolerance,
// duplicate tolerance, and corruption detection — the exact damage
// model an interrupted writer can produce, and nothing laxer.

#include <gtest/gtest.h>

#include <filesystem>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/service/manifest.h"
#include "src/support/file_lock.h"

namespace dynbcast {
namespace {

class ServiceManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "dynbcast_manifest_test";
    std::filesystem::remove_all(dir_);  // stale state from prior runs
    makeDirectories(dir_);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return dir_ + "/" + name;
  }

  std::string dir_;
};

constexpr char kRequest[] = "seed=1 seeds=2 sizes=4,8";

TEST_F(ServiceManifestTest, MissingFileIsNullopt) {
  EXPECT_FALSE(loadManifest(path("absent.manifest")).has_value());
}

TEST_F(ServiceManifestTest, HeaderAndRecordsRoundTrip) {
  const std::string manifest = path("roundtrip.manifest");
  initManifest(manifest, kRequest, 4);

  auto fresh = loadManifest(manifest);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->canonicalRequest, kRequest);
  EXPECT_EQ(fresh->taskCount, 4u);
  EXPECT_EQ(fresh->doneCount, 0u);
  EXPECT_FALSE(fresh->complete());
  EXPECT_EQ(fresh->pending(0, 4), (std::vector<std::size_t>{0, 1, 2, 3}));

  appendTaskRecord(manifest, {2, 17, true});
  appendTaskRecord(manifest, {0, 5, false});

  auto partial = loadManifest(manifest);
  ASSERT_TRUE(partial.has_value());
  EXPECT_EQ(partial->doneCount, 2u);
  ASSERT_TRUE(partial->records[2].has_value());
  EXPECT_EQ(partial->records[2]->rounds, 17u);
  EXPECT_TRUE(partial->records[2]->completed);
  ASSERT_TRUE(partial->records[0].has_value());
  EXPECT_EQ(partial->records[0]->rounds, 5u);
  EXPECT_FALSE(partial->records[0]->completed);
  EXPECT_EQ(partial->pending(0, 4), (std::vector<std::size_t>{1, 3}));
  // Range views clamp and restrict.
  EXPECT_EQ(partial->pending(2, 100), (std::vector<std::size_t>{3}));

  appendTaskRecord(manifest, {1, 3, true});
  appendTaskRecord(manifest, {3, 9, true});
  auto done = loadManifest(manifest);
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->complete());
}

TEST_F(ServiceManifestTest, TornTailLineIsSkipped) {
  const std::string manifest = path("torn.manifest");
  initManifest(manifest, kRequest, 3);
  appendTaskRecord(manifest, {0, 7, true});

  // A writer killed mid-write leaves a partial final line with no
  // terminator; the record must simply not count.
  auto content = readFileIfExists(manifest);
  ASSERT_TRUE(content.has_value());
  writeFileDurable(manifest, *content + "done 1 4");

  auto state = loadManifest(manifest);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->doneCount, 1u);
  EXPECT_FALSE(state->records[1].has_value());
  EXPECT_EQ(state->pending(0, 3), (std::vector<std::size_t>{1, 2}));
}

TEST_F(ServiceManifestTest, DuplicateAndOutOfRangeRecordsAreTolerated) {
  const std::string manifest = path("dup.manifest");
  initManifest(manifest, kRequest, 2);
  appendTaskRecord(manifest, {1, 6, true});
  appendTaskRecord(manifest, {1, 6, true});   // duplicate (idempotent)
  appendTaskRecord(manifest, {9, 1, true});   // out of range → ignored

  auto state = loadManifest(manifest);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->doneCount, 1u);
  ASSERT_TRUE(state->records[1].has_value());
  EXPECT_EQ(state->records[1]->rounds, 6u);
}

TEST_F(ServiceManifestTest, CorruptHeaderThrows) {
  const std::string wrongVersion = path("wrong_version.manifest");
  writeFileDurable(wrongVersion, "DYNBCAST-MANIFEST/99\nrequest x\ntasks 1\n");
  EXPECT_THROW((void)loadManifest(wrongVersion), std::runtime_error);

  const std::string truncated = path("truncated.manifest");
  writeFileDurable(truncated, std::string(kManifestVersion) + "\n");
  EXPECT_THROW((void)loadManifest(truncated), std::runtime_error);
}

TEST_F(ServiceManifestTest, InitTruncatesAnExistingManifest) {
  const std::string manifest = path("reinit.manifest");
  initManifest(manifest, kRequest, 2);
  appendTaskRecord(manifest, {0, 4, true});
  initManifest(manifest, kRequest, 2);  // fresh job, same identity

  auto state = loadManifest(manifest);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->doneCount, 0u);
}

}  // namespace
}  // namespace dynbcast
