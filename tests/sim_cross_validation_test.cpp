// Integration: three independent implementations of Definitions 2.1–2.3
// must agree exactly. BroadcastSim (dense bitsets), ProcessSim (literal
// message passing over std::set), and FrontierSim (sparse frontier
// propagation) are cross-checked round by round on tree sequences; on
// graph-model dynamics — where ProcessSim has no graph interface — the
// dense and sparse engines are checked against each other, together with
// the sampled t*-only frontier mode. All randomized sweeps shard through
// the ExperimentEngine.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/adversary/portfolio.h"
#include "src/dynamics/registry.h"
#include "src/engine/experiment_engine.h"
#include "src/sim/broadcast_sim.h"
#include "src/sim/frontier_sim.h"
#include "src/sim/process_sim.h"
#include "src/support/rng.h"
#include "src/tree/constrained.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

void expectAgreement(const BroadcastSim& fast, const ProcessSim& slow,
                     const FrontierSim& frontier) {
  const std::size_t n = fast.processCount();
  ASSERT_EQ(slow.processCount(), n);
  ASSERT_EQ(frontier.processCount(), n);
  for (std::size_t y = 0; y < n; ++y) {
    const auto& knowledge = slow.process(y).knowledge;
    EXPECT_EQ(fast.heardBy(y).count(), knowledge.size()) << "y=" << y;
    for (const std::size_t x : knowledge) {
      EXPECT_TRUE(fast.heardBy(y).test(x)) << "x=" << x << " y=" << y;
    }
    EXPECT_EQ(frontier.heardCount(y), fast.heardBy(y).count()) << "y=" << y;
    for (const std::size_t x : fast.heardBy(y).toIndices()) {
      EXPECT_TRUE(frontier.hasHeard(y, x)) << "x=" << x << " y=" << y;
    }
  }
  EXPECT_EQ(fast.broadcastDone(), slow.broadcastDone());
  EXPECT_EQ(fast.gossipDone(), slow.gossipDone());
  EXPECT_EQ(frontier.broadcastDone(), fast.broadcastDone());
  EXPECT_EQ(frontier.gossipDone(), fast.gossipDone());
}

class CrossValidationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossValidationTest, AgreeOnUniformRandomTrees) {
  const std::size_t n = GetParam();
  Rng rng(n * 17 + 3);
  BroadcastSim fast(n);
  ProcessSim slow(n);
  FrontierSim frontier(n);
  for (int r = 0; r < 40; ++r) {
    const RootedTree t = randomRootedTree(n, rng);
    fast.applyTree(t);
    slow.applyTree(t);
    frontier.applyTree(t);
    expectAgreement(fast, slow, frontier);
  }
}

TEST_P(CrossValidationTest, AgreeOnRandomPaths) {
  const std::size_t n = GetParam();
  Rng rng(n * 29 + 1);
  BroadcastSim fast(n);
  ProcessSim slow(n);
  FrontierSim frontier(n);
  for (int r = 0; r < 30; ++r) {
    const RootedTree t = randomPath(n, rng);
    fast.applyTree(t);
    slow.applyTree(t);
    frontier.applyTree(t);
    expectAgreement(fast, slow, frontier);
  }
}

TEST_P(CrossValidationTest, AgreeOnConstrainedTrees) {
  const std::size_t n = GetParam();
  if (n < 3) GTEST_SKIP() << "constrained generators need n >= 3";
  Rng rng(n * 31 + 7);
  BroadcastSim fast(n);
  ProcessSim slow(n);
  FrontierSim frontier(n);
  for (int r = 0; r < 20; ++r) {
    const std::size_t k = 1 + rng.uniform(n - 1);
    const RootedTree t = r % 2 == 0 ? randomTreeWithKLeaves(n, k, rng)
                                    : randomTreeWithKInnerNodes(n, k, rng);
    fast.applyTree(t);
    slow.applyTree(t);
    frontier.applyTree(t);
    expectAgreement(fast, slow, frontier);
  }
}

// 65 and 128 straddle the 64-bit word boundary the dense bitsets and the
// frontier t* sampler both care about.
INSTANTIATE_TEST_SUITE_P(Sizes, CrossValidationTest,
                         ::testing::Values(2, 3, 4, 5, 8, 13, 21, 32, 65,
                                           128));

TEST(CrossValidationTest, SameBroadcastRoundOnIdenticalSequences) {
  // All three sims must report t* at the same round for the same sequence.
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.uniform(10);
    BroadcastSim fast(n);
    ProcessSim slow(n);
    FrontierSim frontier(n);
    std::size_t fastDone = 0, slowDone = 0, frontierDone = 0;
    for (std::size_t r = 1; r <= 10 * n; ++r) {
      const RootedTree t = randomRootedTree(n, rng);
      fast.applyTree(t);
      slow.applyTree(t);
      frontier.applyTree(t);
      if (fastDone == 0 && fast.broadcastDone()) fastDone = r;
      if (slowDone == 0 && slow.broadcastDone()) slowDone = r;
      if (frontierDone == 0 && frontier.broadcastDone()) frontierDone = r;
      if (fastDone != 0 && slowDone != 0 && frontierDone != 0) break;
    }
    EXPECT_EQ(fastDone, slowDone);
    EXPECT_EQ(fastDone, frontierDone);
    EXPECT_NE(fastDone, 0u);
  }
}

TEST(CrossValidationTest, EngineShardedPortfolioAgreementOnRandomInstances) {
  // Property-style sweep, sharded through the ExperimentEngine: for 200
  // random (n ≤ 24, seed) instances, EVERY portfolio member — driven by
  // the fast BroadcastSim it plays against — must complete broadcast at
  // the same round on the literal message-passing ProcessSim AND on the
  // sparse FrontierSim.
  constexpr std::size_t kInstances = 200;
  struct Verdict {
    bool ok = true;
    std::string detail;
  };
  ExperimentEngine engine(EngineConfig{.jobs = 2});
  const auto verdicts = engine.map<Verdict>(
      kInstances, 0xc0ffee, [](std::size_t, std::uint64_t taskSeed) {
        Rng rng(taskSeed);
        const std::size_t n = 2 + rng.uniform(23);  // n in [2, 24]
        const std::uint64_t seed = rng();
        Verdict verdict;
        for (const PortfolioMember& member : standardPortfolio(n, seed)) {
          const auto adversary = member.make();
          adversary->reset();
          BroadcastSim fast(n);
          ProcessSim slow(n);
          FrontierSim frontier(n);
          std::size_t fastDone = 0, slowDone = 0, frontierDone = 0;
          const std::size_t cap = defaultRoundCap(n);
          for (std::size_t r = 1;
               r <= cap &&
               (fastDone == 0 || slowDone == 0 || frontierDone == 0);
               ++r) {
            const RootedTree tree = adversary->nextTree(fast);
            fast.applyTree(tree);
            slow.applyTree(tree);
            frontier.applyTree(tree);
            if (fastDone == 0 && fast.broadcastDone()) fastDone = r;
            if (slowDone == 0 && slow.broadcastDone()) slowDone = r;
            if (frontierDone == 0 && frontier.broadcastDone()) {
              frontierDone = r;
            }
          }
          if (fastDone == 0 || fastDone != slowDone ||
              fastDone != frontierDone) {
            verdict.ok = false;
            verdict.detail =
                member.name + " at n=" + std::to_string(n) +
                " seed=" + std::to_string(seed) +
                ": BroadcastSim t*=" + std::to_string(fastDone) +
                " ProcessSim t*=" + std::to_string(slowDone) +
                " FrontierSim t*=" + std::to_string(frontierDone);
            return verdict;
          }
        }
        return verdict;
      });
  for (const Verdict& verdict : verdicts) {
    EXPECT_TRUE(verdict.ok) << verdict.detail;
  }
}

// ---------------------------------------------------------------------------
// Graph-model dynamics: dense ↔ sparse differential sweep.
//
// ProcessSim has no graph interface, so the three-way check here pits the
// dense BroadcastSim against (a) the full-state FrontierSim fed by
// nextSparseRound — exact per-round heard counts must match — and (b) the
// sampled t*-only frontier mode, whose certified answer must land on the
// same round. Sizes reach past 64 so the t* mode exercises its
// backward-filter certification path, not just the all-sources shortcut.
// ---------------------------------------------------------------------------

void runGraphModelDifferential(const std::string& specText,
                               std::uint64_t sweepSeed) {
  constexpr std::size_t kInstances = 200;
  struct Verdict {
    bool ok = true;
    std::string detail;
  };
  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  const DynamicsSpec spec = DynamicsSpec::parse(specText);
  ExperimentEngine engine(EngineConfig{.jobs = 2});
  const auto verdicts = engine.map<Verdict>(
      kInstances, sweepSeed, [&](std::size_t, std::uint64_t taskSeed) {
        Rng rng(taskSeed);
        const std::size_t n = 2 + rng.uniform(129);  // n in [2, 130]
        const std::uint64_t seed = rng();
        Verdict verdict;
        const auto fail = [&](const std::string& what) {
          verdict.ok = false;
          verdict.detail = spec.toString() + " at n=" + std::to_string(n) +
                           " seed=" + std::to_string(seed) + ": " + what;
          return verdict;
        };
        // One model per interface: a model run consumes either nextGraph
        // or nextSparseRound, never both.
        const auto denseModel = registry.make(spec, n, seed);
        const auto sparseModel = registry.make(spec, n, seed);
        denseModel->reset();
        sparseModel->reset();
        BroadcastSim dense(n);
        FrontierSim frontier(n);
        const std::size_t cap = denseModel->defaultRoundCap();
        SparseRound round;
        std::size_t denseDone = 0, frontierDone = 0;
        while (dense.round() < cap &&
               (denseDone == 0 || frontierDone == 0)) {
          const BitMatrix g = denseModel->nextGraph(dense);
          dense.applyGraph(g);
          sparseModel->nextSparseRound(round);
          frontier.applyEdges(round);
          for (std::size_t y = 0; y < n; ++y) {
            if (frontier.heardCount(y) != dense.heardBy(y).count()) {
              return fail("round " + std::to_string(dense.round()) +
                          " heard-count mismatch at y=" + std::to_string(y) +
                          ": dense " +
                          std::to_string(dense.heardBy(y).count()) +
                          " vs frontier " +
                          std::to_string(frontier.heardCount(y)));
            }
          }
          if (denseDone == 0 && dense.broadcastDone()) {
            denseDone = dense.round();
          }
          if (frontierDone == 0 && frontier.broadcastDone()) {
            frontierDone = frontier.round();
          }
        }
        if (denseDone != frontierDone) {
          return fail("t* mismatch: dense " + std::to_string(denseDone) +
                      " vs frontier " + std::to_string(frontierDone));
        }
        // The sampled t*-only mode replays the same seed and must land on
        // the same certified round (or agree broadcast never completed).
        const auto tstarModel = registry.make(spec, n, seed);
        const BroadcastRun run =
            runFrontierDynamicsBroadcast(n, *tstarModel, cap, false, seed);
        if (denseDone != 0) {
          if (!run.completed || run.rounds != denseDone) {
            return fail("t*-mode mismatch: dense " +
                        std::to_string(denseDone) + " vs sampled " +
                        std::to_string(run.rounds) +
                        (run.completed ? "" : " (incomplete)"));
          }
        } else if (run.completed) {
          return fail("t*-mode completed at " + std::to_string(run.rounds) +
                      " but dense never completed within the cap");
        }
        return verdict;
      });
  for (const Verdict& verdict : verdicts) {
    EXPECT_TRUE(verdict.ok) << verdict.detail;
  }
}

TEST(CrossValidationTest, EngineShardedNonsplitRandomDifferential) {
  runGraphModelDifferential("nonsplit-random:p=0.3", 0xd1f401);
}

TEST(CrossValidationTest, EngineShardedNonsplitRandomCountModeDifferential) {
  runGraphModelDifferential("nonsplit-random:edges=12", 0xd1f402);
}

TEST(CrossValidationTest, EngineShardedEdgeMarkovianDifferential) {
  runGraphModelDifferential("edge-markovian:p=0.2,q=0.1", 0xd1f403);
}

TEST(CrossValidationTest, EngineShardedSparseEdgeMarkovianDifferential) {
  // Sparser graphs stretch t* toward the cap and exercise long frontier
  // tails and the persisted-edge delta path less — a different regime
  // from the dense parameterization above.
  runGraphModelDifferential("edge-markovian:p=0.05,q=0.4", 0xd1f404);
}

TEST(CrossValidationTest, EngineShardedTIntervalDifferential) {
  runGraphModelDifferential("t-interval:T=4", 0xd1f405);
}

}  // namespace
}  // namespace dynbcast
