// Integration: the bitset simulator (BroadcastSim) and the message-passing
// simulator (ProcessSim) are independent implementations of Definitions
// 2.1–2.3 and must agree exactly, round by round, on any tree sequence.
#include <gtest/gtest.h>

#include "src/sim/broadcast_sim.h"
#include "src/sim/process_sim.h"
#include "src/support/rng.h"
#include "src/tree/constrained.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

void expectAgreement(const BroadcastSim& fast, const ProcessSim& slow) {
  const std::size_t n = fast.processCount();
  ASSERT_EQ(slow.processCount(), n);
  for (std::size_t y = 0; y < n; ++y) {
    const auto& knowledge = slow.process(y).knowledge;
    EXPECT_EQ(fast.heardBy(y).count(), knowledge.size()) << "y=" << y;
    for (const std::size_t x : knowledge) {
      EXPECT_TRUE(fast.heardBy(y).test(x)) << "x=" << x << " y=" << y;
    }
  }
  EXPECT_EQ(fast.broadcastDone(), slow.broadcastDone());
  EXPECT_EQ(fast.gossipDone(), slow.gossipDone());
}

class CrossValidationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossValidationTest, AgreeOnUniformRandomTrees) {
  const std::size_t n = GetParam();
  Rng rng(n * 17 + 3);
  BroadcastSim fast(n);
  ProcessSim slow(n);
  for (int r = 0; r < 40; ++r) {
    const RootedTree t = randomRootedTree(n, rng);
    fast.applyTree(t);
    slow.applyTree(t);
    expectAgreement(fast, slow);
  }
}

TEST_P(CrossValidationTest, AgreeOnRandomPaths) {
  const std::size_t n = GetParam();
  Rng rng(n * 29 + 1);
  BroadcastSim fast(n);
  ProcessSim slow(n);
  for (int r = 0; r < 30; ++r) {
    const RootedTree t = randomPath(n, rng);
    fast.applyTree(t);
    slow.applyTree(t);
    expectAgreement(fast, slow);
  }
}

TEST_P(CrossValidationTest, AgreeOnConstrainedTrees) {
  const std::size_t n = GetParam();
  if (n < 3) GTEST_SKIP() << "constrained generators need n >= 3";
  Rng rng(n * 31 + 7);
  BroadcastSim fast(n);
  ProcessSim slow(n);
  for (int r = 0; r < 20; ++r) {
    const std::size_t k = 1 + rng.uniform(n - 1);
    const RootedTree t = r % 2 == 0 ? randomTreeWithKLeaves(n, k, rng)
                                    : randomTreeWithKInnerNodes(n, k, rng);
    fast.applyTree(t);
    slow.applyTree(t);
    expectAgreement(fast, slow);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrossValidationTest,
                         ::testing::Values(2, 3, 4, 5, 8, 13, 21, 32));

TEST(CrossValidationTest, SameBroadcastRoundOnIdenticalSequences) {
  // Both sims must report t* at the same round for the same sequence.
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.uniform(10);
    BroadcastSim fast(n);
    ProcessSim slow(n);
    std::size_t fastDone = 0, slowDone = 0;
    for (std::size_t r = 1; r <= 10 * n; ++r) {
      const RootedTree t = randomRootedTree(n, rng);
      fast.applyTree(t);
      slow.applyTree(t);
      if (fastDone == 0 && fast.broadcastDone()) fastDone = r;
      if (slowDone == 0 && slow.broadcastDone()) slowDone = r;
      if (fastDone != 0 && slowDone != 0) break;
    }
    EXPECT_EQ(fastDone, slowDone);
    EXPECT_NE(fastDone, 0u);
  }
}

}  // namespace
}  // namespace dynbcast
