// Integration: the bitset simulator (BroadcastSim) and the message-passing
// simulator (ProcessSim) are independent implementations of Definitions
// 2.1–2.3 and must agree exactly, round by round, on any tree sequence.
#include <gtest/gtest.h>

#include <string>

#include "src/adversary/portfolio.h"
#include "src/engine/experiment_engine.h"
#include "src/sim/broadcast_sim.h"
#include "src/sim/process_sim.h"
#include "src/support/rng.h"
#include "src/tree/constrained.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

void expectAgreement(const BroadcastSim& fast, const ProcessSim& slow) {
  const std::size_t n = fast.processCount();
  ASSERT_EQ(slow.processCount(), n);
  for (std::size_t y = 0; y < n; ++y) {
    const auto& knowledge = slow.process(y).knowledge;
    EXPECT_EQ(fast.heardBy(y).count(), knowledge.size()) << "y=" << y;
    for (const std::size_t x : knowledge) {
      EXPECT_TRUE(fast.heardBy(y).test(x)) << "x=" << x << " y=" << y;
    }
  }
  EXPECT_EQ(fast.broadcastDone(), slow.broadcastDone());
  EXPECT_EQ(fast.gossipDone(), slow.gossipDone());
}

class CrossValidationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossValidationTest, AgreeOnUniformRandomTrees) {
  const std::size_t n = GetParam();
  Rng rng(n * 17 + 3);
  BroadcastSim fast(n);
  ProcessSim slow(n);
  for (int r = 0; r < 40; ++r) {
    const RootedTree t = randomRootedTree(n, rng);
    fast.applyTree(t);
    slow.applyTree(t);
    expectAgreement(fast, slow);
  }
}

TEST_P(CrossValidationTest, AgreeOnRandomPaths) {
  const std::size_t n = GetParam();
  Rng rng(n * 29 + 1);
  BroadcastSim fast(n);
  ProcessSim slow(n);
  for (int r = 0; r < 30; ++r) {
    const RootedTree t = randomPath(n, rng);
    fast.applyTree(t);
    slow.applyTree(t);
    expectAgreement(fast, slow);
  }
}

TEST_P(CrossValidationTest, AgreeOnConstrainedTrees) {
  const std::size_t n = GetParam();
  if (n < 3) GTEST_SKIP() << "constrained generators need n >= 3";
  Rng rng(n * 31 + 7);
  BroadcastSim fast(n);
  ProcessSim slow(n);
  for (int r = 0; r < 20; ++r) {
    const std::size_t k = 1 + rng.uniform(n - 1);
    const RootedTree t = r % 2 == 0 ? randomTreeWithKLeaves(n, k, rng)
                                    : randomTreeWithKInnerNodes(n, k, rng);
    fast.applyTree(t);
    slow.applyTree(t);
    expectAgreement(fast, slow);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrossValidationTest,
                         ::testing::Values(2, 3, 4, 5, 8, 13, 21, 32));

TEST(CrossValidationTest, SameBroadcastRoundOnIdenticalSequences) {
  // Both sims must report t* at the same round for the same sequence.
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.uniform(10);
    BroadcastSim fast(n);
    ProcessSim slow(n);
    std::size_t fastDone = 0, slowDone = 0;
    for (std::size_t r = 1; r <= 10 * n; ++r) {
      const RootedTree t = randomRootedTree(n, rng);
      fast.applyTree(t);
      slow.applyTree(t);
      if (fastDone == 0 && fast.broadcastDone()) fastDone = r;
      if (slowDone == 0 && slow.broadcastDone()) slowDone = r;
      if (fastDone != 0 && slowDone != 0) break;
    }
    EXPECT_EQ(fastDone, slowDone);
    EXPECT_NE(fastDone, 0u);
  }
}

TEST(CrossValidationTest, EngineShardedPortfolioAgreementOnRandomInstances) {
  // Property-style sweep, sharded through the ExperimentEngine: for 200
  // random (n ≤ 24, seed) instances, EVERY portfolio member — driven by
  // the fast BroadcastSim it plays against — must complete broadcast at
  // the same round on the literal message-passing ProcessSim.
  constexpr std::size_t kInstances = 200;
  struct Verdict {
    bool ok = true;
    std::string detail;
  };
  ExperimentEngine engine(EngineConfig{.jobs = 2});
  const auto verdicts = engine.map<Verdict>(
      kInstances, 0xc0ffee, [](std::size_t, std::uint64_t taskSeed) {
        Rng rng(taskSeed);
        const std::size_t n = 2 + rng.uniform(23);  // n in [2, 24]
        const std::uint64_t seed = rng();
        Verdict verdict;
        for (const PortfolioMember& member : standardPortfolio(n, seed)) {
          const auto adversary = member.make();
          adversary->reset();
          BroadcastSim fast(n);
          ProcessSim slow(n);
          std::size_t fastDone = 0, slowDone = 0;
          const std::size_t cap = defaultRoundCap(n);
          for (std::size_t r = 1;
               r <= cap && (fastDone == 0 || slowDone == 0); ++r) {
            const RootedTree tree = adversary->nextTree(fast);
            fast.applyTree(tree);
            slow.applyTree(tree);
            if (fastDone == 0 && fast.broadcastDone()) fastDone = r;
            if (slowDone == 0 && slow.broadcastDone()) slowDone = r;
          }
          if (fastDone == 0 || fastDone != slowDone) {
            verdict.ok = false;
            verdict.detail = member.name + " at n=" + std::to_string(n) +
                             " seed=" + std::to_string(seed) +
                             ": BroadcastSim t*=" + std::to_string(fastDone) +
                             " ProcessSim t*=" + std::to_string(slowDone);
            return verdict;
          }
        }
        return verdict;
      });
  for (const Verdict& verdict : verdicts) {
    EXPECT_TRUE(verdict.ok) << verdict.detail;
  }
}

}  // namespace
}  // namespace dynbcast
