#include "src/analysis/evolution.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/analysis/csv.h"
#include "src/analysis/render.h"
#include "src/support/rng.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

SimTrace makeRandomTrace(std::size_t n, std::uint64_t seed,
                         bool* completed = nullptr) {
  Rng rng(seed);
  return recordBroadcastTrace(
      n, [&rng, n](const BroadcastSim&) { return randomRootedTree(n, rng); },
      1000, seed, completed);
}

TEST(PotentialTest, InitialPotentialIsNTimesNMinus1) {
  BroadcastSim sim(7);
  EXPECT_EQ(potentialOf(sim), 7u * 6u);
}

TEST(PotentialTest, ZeroAtGossipCompletion) {
  BroadcastSim sim(4);
  const RootedTree fwd = makePath(4);
  const RootedTree bwd = makePath({3, 2, 1, 0});
  while (!sim.gossipDone()) {
    sim.applyTree(sim.round() % 2 == 0 ? fwd : bwd);
    ASSERT_LT(sim.round(), 50u);
  }
  EXPECT_EQ(potentialOf(sim), 0u);
}

TEST(EvolutionTest, PotentialStrictlyDecreasesBeforeBroadcast) {
  bool completed = false;
  const SimTrace trace = makeRandomTrace(10, 3, &completed);
  ASSERT_TRUE(completed);
  const EvolutionSummary summary = analyzeTrace(trace);
  EXPECT_GE(summary.minPotentialDrop(), 1u);
}

TEST(EvolutionTest, BroadcastRoundMatchesTraceLength) {
  bool completed = false;
  const SimTrace trace = makeRandomTrace(9, 5, &completed);
  ASSERT_TRUE(completed);
  const EvolutionSummary summary = analyzeTrace(trace);
  // recordBroadcastTrace stops exactly at broadcast.
  EXPECT_EQ(summary.broadcastRound, trace.roundCount());
}

TEST(EvolutionTest, CoveredAllTimelineConsistent) {
  bool completed = false;
  const SimTrace trace = makeRandomTrace(8, 7, &completed);
  ASSERT_TRUE(completed);
  const EvolutionSummary summary = analyzeTrace(trace);
  // Whoever covered everyone did so exactly at the broadcast round (the
  // trace stops there), and nobody earlier.
  std::size_t covered = 0;
  for (std::size_t x = 0; x < summary.n; ++x) {
    if (summary.coveredAllAt[x] != 0) {
      ++covered;
      EXPECT_EQ(summary.coveredAllAt[x], summary.broadcastRound);
    }
  }
  EXPECT_GE(covered, 1u);
}

TEST(EvolutionTest, StaticPathTimeline) {
  const SimTrace trace = [] {
    return recordBroadcastTrace(
        6, [](const BroadcastSim&) { return makePath(6); }, 100);
  }();
  const EvolutionSummary summary = analyzeTrace(trace);
  EXPECT_EQ(summary.broadcastRound, 5u);
  // Node 0 is the broadcaster; nobody hears from everyone on a static
  // path except... node 5 hears all of 0..5 at round 5.
  EXPECT_EQ(summary.coveredAllAt[0], 5u);
  EXPECT_EQ(summary.heardAllAt[5], 5u);
  EXPECT_EQ(summary.heardAllAt[0], 0u);  // never
}

TEST(RenderTest, HeardMatrixShowsHashesAndDots) {
  BroadcastSim sim(4);
  sim.applyTree(makePath(4));
  const std::string art = renderHeardMatrix(sim);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
  EXPECT_NE(art.find("round 1"), std::string::npos);
}

TEST(RenderTest, SparklineScalesAndHandlesEdgeCases) {
  EXPECT_EQ(sparkline({}), "");
  const std::string flat = sparkline({5, 5, 5});
  EXPECT_FALSE(flat.empty());
  const std::string ramp = sparkline({0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_NE(ramp.find("▁"), std::string::npos);
  EXPECT_NE(ramp.find("█"), std::string::npos);
}

TEST(CsvExportTest, WritesAndEscapes) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dynbcast_csv_test.csv")
          .string();
  TextTable t({"n", "name"});
  t.row().add(std::uint64_t{4}).add("a,b");
  writeCsv(path, t);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "n,name");
  std::getline(in, line);
  EXPECT_EQ(line, "4,\"a,b\"");
  in.close();
  std::filesystem::remove(path);
}

TEST(CsvExportTest, CreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "dynbcast_sub";
  const std::string path = (dir / "deep" / "file.txt").string();
  writeFile(path, "hello");
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dynbcast
