#include "src/nonsplit/nonsplit.h"

#include <gtest/gtest.h>

#include "src/bounds/bounds.h"
#include "src/nonsplit/reduction.h"
#include "src/support/rng.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

TEST(NonsplitGeneratorTest, RandomGraphsAreNonsplitAndReflexive) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform(20);
    const BitMatrix g = randomNonsplitGraph(n, n, rng);
    EXPECT_TRUE(isNonsplit(g));
    EXPECT_TRUE(g.isReflexive());
  }
}

TEST(NonsplitGeneratorTest, SkewedGraphsAreNonsplit) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform(20);
    const BitMatrix g = skewedNonsplitGraph(n, rng);
    EXPECT_TRUE(isNonsplit(g));
    EXPECT_TRUE(g.isReflexive());
  }
}

TEST(NonsplitBroadcastTest, FinishesWithinLogBound) {
  // [2]: broadcast under nonsplit adversaries takes ≤ ⌈log₂ n⌉ rounds.
  Rng rng(3);
  for (const std::size_t n : {4u, 16u, 64u, 128u}) {
    const NonsplitRun run = runNonsplitBroadcast(
        n,
        [n](Rng& r) { return randomNonsplitGraph(n, 2 * n, r); },
        bounds::nonsplitLogUpper(n) + 5, rng);
    EXPECT_TRUE(run.completed) << "n=" << n;
    EXPECT_LE(run.rounds, bounds::nonsplitLogUpper(n) + 2) << "n=" << n;
  }
}

TEST(NonsplitBroadcastTest, SkewedAlsoLogarithmic) {
  Rng rng(4);
  const std::size_t n = 64;
  const NonsplitRun run = runNonsplitBroadcast(
      n, [n](Rng& r) { return skewedNonsplitGraph(n, r); },
      bounds::nonsplitLogUpper(n) + 5, rng);
  EXPECT_TRUE(run.completed);
}

TEST(ReductionTest, ProductOfTreesMatchesManualProduct) {
  Rng rng(5);
  const std::size_t n = 6;
  std::vector<RootedTree> trees;
  for (int i = 0; i < 4; ++i) trees.push_back(randomRootedTree(n, rng));
  BitMatrix manual = trees[0].toMatrix();
  for (int i = 1; i < 4; ++i) manual = manual.product(trees[i].toMatrix());
  EXPECT_EQ(productOfTrees(trees), manual);
}

TEST(ReductionTest, NMinus1TreeProductIsAlwaysNonsplit) {
  // The Charron-Bost–Függer–Nowak lemma, exercised on random sequences.
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng.uniform(10);
    std::vector<RootedTree> trees;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      trees.push_back(randomRootedTree(n, rng));
    }
    EXPECT_TRUE(treeProductIsNonsplit(trees)) << "n=" << n;
  }
}

TEST(ReductionTest, WorstCaseSequenceNeedsExactlyNMinus1) {
  // A static path is the extreme case: its (n−2)-fold product is still
  // split (nodes 0 and n−1 share no in-neighbor), the (n−1)-fold is not.
  const std::size_t n = 8;
  std::vector<RootedTree> trees(n - 1, makePath(n));
  EXPECT_EQ(nonsplitPrefixLength(trees), n - 1);
  std::vector<RootedTree> short_(trees.begin(), trees.end() - 1);
  EXPECT_FALSE(treeProductIsNonsplit(short_));
}

TEST(ReductionTest, StarIsImmediatelyNonsplit) {
  const std::vector<RootedTree> trees{makeStar(7, 0)};
  EXPECT_EQ(nonsplitPrefixLength(trees), 1u);
}

TEST(ReductionTest, PrefixLengthNeverExceedsNMinus1) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng.uniform(8);
    std::vector<RootedTree> trees;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      trees.push_back(randomPath(n, rng));
    }
    EXPECT_LE(nonsplitPrefixLength(trees), n - 1) << "n=" << n;
  }
}

}  // namespace
}  // namespace dynbcast
