#include "src/graph/bitmatrix.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"

namespace dynbcast {
namespace {

BitMatrix randomMatrix(std::size_t n, double density, Rng& rng) {
  BitMatrix m(n);
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      if (rng.chance(density)) m.set(x, y);
    }
  }
  return m;
}

/// Reference O(n³) boolean product for cross-checking.
BitMatrix naiveProduct(const BitMatrix& a, const BitMatrix& b) {
  const std::size_t n = a.dim();
  BitMatrix out(n);
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t z = 0; z < n; ++z) {
        if (a.get(x, z) && b.get(z, y)) {
          out.set(x, y);
          break;
        }
      }
    }
  }
  return out;
}

TEST(BitMatrixTest, IdentityProperties) {
  const BitMatrix id = BitMatrix::identity(5);
  EXPECT_EQ(id.dim(), 5u);
  EXPECT_EQ(id.countOnes(), 5u);
  EXPECT_TRUE(id.isReflexive());
  EXPECT_FALSE(id.isFull());
}

TEST(BitMatrixTest, FullMatrix) {
  const BitMatrix f = BitMatrix::full(4);
  EXPECT_TRUE(f.isFull());
  EXPECT_EQ(f.countOnes(), 16u);
  EXPECT_TRUE(f.hasBroadcaster());
  EXPECT_EQ(f.broadcasters().size(), 4u);
}

TEST(BitMatrixTest, IdentityIsProductNeutral) {
  Rng rng(31);
  const BitMatrix a = randomMatrix(9, 0.3, rng);
  const BitMatrix id = BitMatrix::identity(9);
  EXPECT_EQ(a.product(id), a);
  EXPECT_EQ(id.product(a), a);
}

TEST(BitMatrixTest, ProductMatchesDefinition) {
  // Definition 2.1: (x, y) ∈ A ∘ B iff ∃z: (x, z) ∈ A and (z, y) ∈ B.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform(12);
    const BitMatrix a = randomMatrix(n, 0.25, rng);
    const BitMatrix b = randomMatrix(n, 0.25, rng);
    EXPECT_EQ(a.product(b), naiveProduct(a, b)) << "n=" << n;
  }
}

TEST(BitMatrixTest, ProductIsAssociative) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.uniform(10);
    const BitMatrix a = randomMatrix(n, 0.3, rng);
    const BitMatrix b = randomMatrix(n, 0.3, rng);
    const BitMatrix c = randomMatrix(n, 0.3, rng);
    EXPECT_EQ(a.product(b).product(c), a.product(b.product(c)));
  }
}

TEST(BitMatrixTest, ProductOfReflexiveIsMonotone) {
  // With self-loops, A ∘ B ⊇ A and ⊇ B — the model's no-forgetting.
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.uniform(10);
    BitMatrix a = randomMatrix(n, 0.2, rng);
    BitMatrix b = randomMatrix(n, 0.2, rng);
    for (std::size_t i = 0; i < n; ++i) {
      a.set(i, i);
      b.set(i, i);
    }
    const BitMatrix p = a.product(b);
    for (std::size_t x = 0; x < n; ++x) {
      EXPECT_TRUE(p.row(x).isSupersetOf(a.row(x)));
      EXPECT_TRUE(p.row(x).isSupersetOf(b.row(x)));
    }
  }
}

TEST(BitMatrixTest, TransposeInvolution) {
  Rng rng(5);
  const BitMatrix a = randomMatrix(17, 0.3, rng);
  EXPECT_EQ(a.transposed().transposed(), a);
}

TEST(BitMatrixTest, TransposeSwapsEntries) {
  BitMatrix m(3);
  m.set(0, 2);
  const BitMatrix t = m.transposed();
  EXPECT_TRUE(t.get(2, 0));
  EXPECT_FALSE(t.get(0, 2));
}

TEST(BitMatrixTest, ColumnMatchesTransposedRow) {
  Rng rng(67);
  const BitMatrix a = randomMatrix(20, 0.4, rng);
  const BitMatrix t = a.transposed();
  for (std::size_t y = 0; y < 20; ++y) {
    EXPECT_EQ(a.column(y), t.row(y));
  }
}

TEST(BitMatrixTest, OrWithUnions) {
  BitMatrix a(3), b(3);
  a.set(0, 1);
  b.set(1, 2);
  a.orWith(b);
  EXPECT_TRUE(a.get(0, 1));
  EXPECT_TRUE(a.get(1, 2));
  EXPECT_EQ(a.countOnes(), 2u);
}

TEST(BitMatrixTest, BroadcasterDetection) {
  BitMatrix m = BitMatrix::identity(4);
  EXPECT_FALSE(m.hasBroadcaster());
  for (std::size_t y = 0; y < 4; ++y) m.set(2, y);
  EXPECT_TRUE(m.hasBroadcaster());
  const auto bc = m.broadcasters();
  ASSERT_EQ(bc.size(), 1u);
  EXPECT_EQ(bc[0], 2u);
}

TEST(BitMatrixTest, HashDiffersOnContent) {
  BitMatrix a(6), b(6);
  a.set(1, 2);
  b.set(2, 1);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitMatrixTest, ToStringShape) {
  BitMatrix m(2);
  m.set(0, 1);
  EXPECT_EQ(m.toString(), "01\n00\n");
}

class BitMatrixSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitMatrixSizeTest, ProductDefinitionHoldsAcrossSizes) {
  const std::size_t n = GetParam();
  Rng rng(n * 131 + 7);
  const BitMatrix a = randomMatrix(n, 0.15, rng);
  const BitMatrix b = randomMatrix(n, 0.15, rng);
  EXPECT_EQ(a.product(b), naiveProduct(a, b));
}

TEST_P(BitMatrixSizeTest, BlockedProductMatchesNaiveAcrossDensities) {
  // product() dispatches to the blocked kernel; pin the explicit entry
  // point too, across densities (empty rows, dense rows, identity-ish).
  const std::size_t n = GetParam();
  for (const double density : {0.0, 0.03, 0.3, 0.9}) {
    Rng rng(n * 977 + static_cast<std::uint64_t>(density * 100));
    const BitMatrix a = randomMatrix(n, density, rng);
    const BitMatrix b = randomMatrix(n, density, rng);
    EXPECT_EQ(a.productBlocked(b), naiveProduct(a, b))
        << "n=" << n << " density=" << density;
  }
}

// 63/64/65/127/130 straddle the word boundaries where the blocked
// kernel's z-block indexing could go out of bounds.
INSTANTIATE_TEST_SUITE_P(Sizes, BitMatrixSizeTest,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 63, 64, 65,
                                           100, 127, 130));

}  // namespace
}  // namespace dynbcast
