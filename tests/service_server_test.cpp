// End-to-end service loop, in-process: a server thread on a unix
// socket, real protocol traffic through the submit client, byte-equal
// results against the engine, warm-cache resubmission, and the error
// path. Sharded (multi-process) execution is covered by the
// service_smoke ctest; this suite keeps everything in one process so it
// runs under TSan.

#include <gtest/gtest.h>

#include <filesystem>
#include <sys/stat.h>

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/engine/scenario.h"
#include "src/service/client.h"
#include "src/service/protocol.h"
#include "src/service/server.h"
#include "src/support/file_lock.h"

namespace dynbcast {
namespace {

/// Blocks until the server socket exists (the listener binds before the
/// accept loop, so existence means connectable).
void awaitSocket(const std::string& path) {
  struct stat st {};
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (::stat(path.c_str(), &st) == 0 && S_ISSOCK(st.st_mode)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "server socket never appeared at " << path;
}

class ServiceServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "dynbcast_server_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);  // stale state from prior runs
    makeDirectories(dir_);
  }

  /// Serves exactly `requests` connections on a background thread.
  [[nodiscard]] std::thread startServer(std::size_t requests) {
    ServerOptions options;
    options.socketPath = dir_ + "/sock";
    options.stateDir = dir_ + "/state";
    options.workers = 0;  // in-process execution — TSan-visible
    options.jobsPerWorker = 2;
    options.maxRequests = requests;
    std::thread server([options] { (void)runServer(options); });
    awaitSocket(options.socketPath);
    return server;
  }

  std::string dir_;
};

TEST_F(ServiceServerTest, SubmitMatchesTheEngineAndResubmitIsAllCacheHits) {
  ServiceRequest request;
  request.scenario.dynamics = "edge-markovian:p=0.3,q=0.3";
  request.scenario.sizes = {6, 8, 10};
  request.scenario.seedsPerSize = 2;
  request.scenario.masterSeed = 7;

  std::thread server = startServer(2);
  const std::string socket = dir_ + "/sock";

  std::ostringstream progress;
  const SubmitOutcome cold = submitRequest(socket, request, &progress);
  EXPECT_EQ(cold.jobId, requestJobId(request));
  EXPECT_EQ(cold.tasks, 6u);
  EXPECT_EQ(cold.resumed, 0u);
  EXPECT_EQ(cold.cacheHits, 0u);
  EXPECT_EQ(cold.executed, 6u);
  EXPECT_NE(progress.str().find("service: PROGRESS"), std::string::npos);

  EngineConfig config;
  config.jobs = 2;
  ExperimentEngine engine(config);
  const ScenarioResult direct = runScenario(request.scenario, engine);
  ASSERT_EQ(cold.rows.size(), direct.rows.size());
  for (std::size_t i = 0; i < cold.rows.size(); ++i) {
    EXPECT_EQ(cold.rows[i], direct.rows[i]) << "row " << i;
  }
  ASSERT_EQ(cold.instances.size(), direct.instances.size());
  for (std::size_t i = 0; i < cold.instances.size(); ++i) {
    EXPECT_EQ(cold.instances[i].portfolio.bestRounds,
              direct.instances[i].portfolio.bestRounds) << "instance " << i;
  }

  // Resubmission: the job is complete, so every task is a cache hit and
  // nothing executes — and the rows are still byte-identical.
  const SubmitOutcome warm = submitRequest(socket, request, nullptr);
  EXPECT_EQ(warm.cacheHits, 6u);
  EXPECT_EQ(warm.executed, 0u);
  for (std::size_t i = 0; i < warm.rows.size(); ++i) {
    EXPECT_EQ(warm.rows[i], direct.rows[i]) << "row " << i;
  }

  server.join();
}

TEST_F(ServiceServerTest, BeamTasksStreamBackForTheoremSweeps) {
  ServiceRequest request;  // default rooted-tree broadcast → beam pass
  request.scenario.sizes = {4, 6};
  request.beamMaxN = 4;  // search size 4, skip size 6
  request.beamWidth = 16;

  std::thread server = startServer(1);
  const SubmitOutcome outcome =
      submitRequest(dir_ + "/sock", request, nullptr);
  ASSERT_EQ(outcome.beamRounds.size(), 2u);
  EXPECT_GT(outcome.beamRounds[0], 0u);   // verified witness at n=4
  EXPECT_EQ(outcome.beamRounds[1], 0u);   // skipped above beamMaxN
  server.join();
}

TEST_F(ServiceServerTest, SpecErrorsComeBackAsServerErrors) {
  ServiceRequest request;
  request.scenario.dynamics = "edge-markovian:p=0.3,q=0.3";
  request.scenario.sizes = {6};
  // Graph models take no adversaries — the server's validateScenario
  // must reject this, and the client must surface its message.
  request.scenario.adversaries = {"freeze-path:depth=3"};

  std::thread server = startServer(1);
  try {
    (void)submitRequest(dir_ + "/sock", request, nullptr);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("server:"), std::string::npos)
        << error.what();
  }
  server.join();
}

}  // namespace
}  // namespace dynbcast
