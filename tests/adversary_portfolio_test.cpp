#include "src/adversary/portfolio.h"

#include <gtest/gtest.h>

#include "src/bounds/bounds.h"

namespace dynbcast {
namespace {

TEST(PortfolioTest, StandardMembersPresent) {
  const auto members = standardPortfolio(8, 1);
  EXPECT_GE(members.size(), 8u);
  bool hasStatic = false, hasGreedy = false, hasLocal = false;
  for (const auto& m : members) {
    hasStatic |= m.name == "static-path";
    hasGreedy |= m.name == "greedy-delay";
    hasLocal |= m.name == "local-search";
  }
  EXPECT_TRUE(hasStatic);
  EXPECT_TRUE(hasGreedy);
  EXPECT_TRUE(hasLocal);
}

TEST(PortfolioTest, FactoriesProduceNamedAdversaries) {
  for (const auto& m : standardPortfolio(6, 2)) {
    const auto adv = m.make();
    ASSERT_NE(adv, nullptr);
    EXPECT_EQ(adv->name(), m.name) << "factory/name mismatch";
  }
}

TEST(PortfolioTest, AllMembersCompleteWithinTheorem) {
  const PortfolioResult result = runPortfolio(12, 3);
  ASSERT_FALSE(result.entries.empty());
  for (const auto& e : result.entries) {
    EXPECT_TRUE(e.completed) << e.name;
    EXPECT_LE(e.rounds, bounds::linearUpper(12)) << e.name;
  }
  EXPECT_GT(result.bestRounds, 0u);
  EXPECT_FALSE(result.bestName.empty());
}

TEST(PortfolioTest, BestIsMaxOfEntries) {
  const PortfolioResult result = runPortfolio(10, 7);
  std::size_t maxRounds = 0;
  for (const auto& e : result.entries) {
    if (e.completed) maxRounds = std::max(maxRounds, e.rounds);
  }
  EXPECT_EQ(result.bestRounds, maxRounds);
}

TEST(PortfolioTest, BestAtLeastStaticBaselineAtMidSize) {
  // Online adversaries realize at least the static-path value; strictly
  // beating it requires offline search (see BeamWitnessTest).
  const PortfolioResult result = runPortfolio(16, 5);
  EXPECT_GE(result.bestRounds, 15u) << "portfolio below static path";
}

TEST(PortfolioTest, SubsetRunsOnlyRequestedMembers) {
  auto members = standardPortfolio(8, 1);
  members.resize(2);
  const PortfolioResult result = runPortfolio(8, 1, members);
  EXPECT_EQ(result.entries.size(), 2u);
}

TEST(PortfolioTest, DeterministicAcrossInvocations) {
  const PortfolioResult a = runPortfolio(10, 42);
  const PortfolioResult b = runPortfolio(10, 42);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].rounds, b.entries[i].rounds) << a.entries[i].name;
  }
}

}  // namespace
}  // namespace dynbcast
