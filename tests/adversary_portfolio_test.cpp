#include "src/adversary/portfolio.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/adversary/oblivious.h"
#include "src/bounds/bounds.h"

namespace dynbcast {
namespace {

// Counts its runs via reset() — runAdversary resets exactly once per run.
class RunCountingAdversary : public Adversary {
 public:
  RunCountingAdversary(std::size_t n, int& runs) : path_(n), runs_(runs) {}
  RootedTree nextTree(const BroadcastSim& state) override {
    return path_.nextTree(state);
  }
  std::string name() const override { return "run-counting"; }
  void reset() override {
    ++runs_;
    path_.reset();
  }

 private:
  StaticPathAdversary path_;
  int& runs_;
};

TEST(PortfolioTest, StandardMembersPresent) {
  const auto members = standardPortfolio(8, 1);
  EXPECT_GE(members.size(), 8u);
  bool hasStatic = false, hasGreedy = false, hasLocal = false;
  for (const auto& m : members) {
    hasStatic |= m.name == "static-path";
    hasGreedy |= m.name == "greedy-delay";
    hasLocal |= m.name == "local-search";
  }
  EXPECT_TRUE(hasStatic);
  EXPECT_TRUE(hasGreedy);
  EXPECT_TRUE(hasLocal);
}

TEST(PortfolioTest, FactoriesProduceNamedAdversaries) {
  for (const auto& m : standardPortfolio(6, 2)) {
    const auto adv = m.make();
    ASSERT_NE(adv, nullptr);
    EXPECT_EQ(adv->name(), m.name) << "factory/name mismatch";
  }
}

TEST(PortfolioTest, AllMembersCompleteWithinTheorem) {
  const PortfolioResult result = runPortfolio(12, 3);
  ASSERT_FALSE(result.entries.empty());
  for (const auto& e : result.entries) {
    EXPECT_TRUE(e.completed) << e.name;
    EXPECT_LE(e.rounds, bounds::linearUpper(12)) << e.name;
  }
  EXPECT_GT(result.bestRounds, 0u);
  EXPECT_FALSE(result.bestName.empty());
}

TEST(PortfolioTest, BestIsMaxOfEntries) {
  const PortfolioResult result = runPortfolio(10, 7);
  std::size_t maxRounds = 0;
  for (const auto& e : result.entries) {
    if (e.completed) maxRounds = std::max(maxRounds, e.rounds);
  }
  EXPECT_EQ(result.bestRounds, maxRounds);
}

TEST(PortfolioTest, BestAtLeastStaticBaselineAtMidSize) {
  // Online adversaries realize at least the static-path value; strictly
  // beating it requires offline search (see BeamWitnessTest).
  const PortfolioResult result = runPortfolio(16, 5);
  EXPECT_GE(result.bestRounds, 15u) << "portfolio below static path";
}

TEST(PortfolioTest, SubsetRunsOnlyRequestedMembers) {
  auto members = standardPortfolio(8, 1);
  members.resize(2);
  const PortfolioResult result = runPortfolio(8, 1, members);
  EXPECT_EQ(result.entries.size(), 2u);
}

TEST(PortfolioTest, HistoryComesFromASingleRunPerMember) {
  // Regression for the latent inefficiency: asking for history used to
  // mean re-running a member from scratch. Each member must run exactly
  // once whether or not history is recorded.
  int runsWithHistory = 0;
  int runsWithout = 0;
  const std::size_t n = 9;
  std::vector<PortfolioMember> withHistory;
  withHistory.push_back({"run-counting", [n, &runsWithHistory] {
                           return std::make_unique<RunCountingAdversary>(
                               n, runsWithHistory);
                         }});
  std::vector<PortfolioMember> without;
  without.push_back({"run-counting", [n, &runsWithout] {
                       return std::make_unique<RunCountingAdversary>(
                           n, runsWithout);
                     }});

  const PortfolioResult plain = runPortfolio(n, 1, without);
  const PortfolioResult traced =
      runPortfolio(n, 1, withHistory, /*recordHistory=*/true);

  EXPECT_EQ(runsWithout, 1);
  EXPECT_EQ(runsWithHistory, 1) << "history recording must not re-run";
  ASSERT_EQ(plain.entries.size(), 1u);
  ASSERT_EQ(traced.entries.size(), 1u);
  EXPECT_EQ(plain.entries[0].rounds, traced.entries[0].rounds);
  EXPECT_TRUE(plain.entries[0].history.empty());
  EXPECT_EQ(traced.entries[0].history.size(), traced.entries[0].rounds);
}

TEST(PortfolioTest, HistoryEmptyByDefault) {
  const PortfolioResult result = runPortfolio(8, 2);
  for (const auto& e : result.entries) {
    EXPECT_TRUE(e.history.empty()) << e.name;
  }
}

TEST(PortfolioTest, DeterministicAcrossInvocations) {
  const PortfolioResult a = runPortfolio(10, 42);
  const PortfolioResult b = runPortfolio(10, 42);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].rounds, b.entries[i].rounds) << a.entries[i].name;
  }
}

}  // namespace
}  // namespace dynbcast
