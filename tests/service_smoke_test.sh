#!/usr/bin/env bash
# End-to-end serve/submit smoke over real processes, gated in ctest at
# two shard counts. Covers the service acceptance path:
#
#   1. submit a sweep to a `dynbcast serve` instance whose first worker
#      wave is fault-injected to die at a task boundary (--worker-max-
#      tasks) — the server must resume the dead workers' ranges and the
#      streamed CSV must be byte-identical to `dynbcast sweep`'s
#      committed golden;
#   2. resubmit the same request — zero tasks may execute (100% cache
#      hits), same bytes.
#
# Usage: service_smoke_test.sh <dynbcast-binary> <golden-csv> <workdir> <workers>
set -euo pipefail

BIN="$1"
GOLDEN="$2"
WORKDIR="$3"
WORKERS="$4"

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
SOCK="$WORKDIR/sock"

"$BIN" serve --socket="$SOCK" --state="$WORKDIR/state" \
  --workers="$WORKERS" --jobs=2 --worker-max-tasks=7 --max-requests=2 \
  >"$WORKDIR/serve.log" 2>&1 &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true' EXIT

for _ in $(seq 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: server socket never appeared"; exit 1; }

# Cold submission through the fault-injected worker wave. The golden is
# the one `dynbcast sweep --sizes=4:32:4` is gated against, so equality
# here is direct-vs-served byte identity.
"$BIN" submit --socket="$SOCK" --sizes=4:32:4 --csv="$WORKDIR/served.csv" \
  >"$WORKDIR/submit1.out"
cmp "$WORKDIR/served.csv" "$GOLDEN" || {
  echo "FAIL: served CSV differs from the sweep golden (workers=$WORKERS)"
  exit 1
}
grep -Eq 'service: job=[0-9a-f]{16} tasks=[0-9]+ ' "$WORKDIR/submit1.out" || {
  echo "FAIL: no service stats line in the first submission output"
  exit 1
}

# Warm resubmission: the whole job must come from the result cache.
"$BIN" submit --socket="$SOCK" --sizes=4:32:4 --csv="$WORKDIR/served2.csv" \
  >"$WORKDIR/submit2.out"
cmp "$WORKDIR/served2.csv" "$GOLDEN" || {
  echo "FAIL: resubmitted CSV differs from the sweep golden"
  exit 1
}
grep -Eq 'service: .* cache-hits=[1-9][0-9]* executed=0$' \
  "$WORKDIR/submit2.out" || {
  echo "FAIL: resubmission executed tasks instead of hitting the cache:"
  grep 'service:' "$WORKDIR/submit2.out" || true
  exit 1
}

wait "$SERVER"
trap - EXIT
echo "PASS: served CSV byte-identical (workers=$WORKERS), resubmit 100% cached"
