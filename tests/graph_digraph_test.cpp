#include "src/graph/digraph.h"

#include <gtest/gtest.h>

#include "src/graph/dot.h"
#include "src/support/rng.h"

namespace dynbcast {
namespace {

TEST(DigraphTest, EmptyGraph) {
  const Digraph g(5);
  EXPECT_EQ(g.nodeCount(), 5u);
  EXPECT_EQ(g.edgeCount(), 0u);
  EXPECT_FALSE(g.hasEdge(0, 1));
}

TEST(DigraphTest, AddEdgeUpdatesBothDirections) {
  Digraph g(4);
  g.addEdge(1, 3);
  EXPECT_TRUE(g.hasEdge(1, 3));
  EXPECT_FALSE(g.hasEdge(3, 1));
  EXPECT_EQ(g.outDegree(1), 1u);
  EXPECT_EQ(g.inDegree(3), 1u);
  ASSERT_EQ(g.outNeighbors(1).size(), 1u);
  EXPECT_EQ(g.outNeighbors(1)[0], 3u);
  ASSERT_EQ(g.inNeighbors(3).size(), 1u);
  EXPECT_EQ(g.inNeighbors(3)[0], 1u);
}

TEST(DigraphTest, DuplicateEdgesIgnored) {
  Digraph g(3);
  g.addEdge(0, 1);
  g.addEdge(0, 1);
  EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(DigraphTest, NeighborsSortedAscending) {
  Digraph g(5);
  g.addEdge(0, 4);
  g.addEdge(0, 1);
  g.addEdge(0, 3);
  const auto& o = g.outNeighbors(0);
  ASSERT_EQ(o.size(), 3u);
  EXPECT_TRUE(o[0] < o[1] && o[1] < o[2]);
}

TEST(DigraphTest, MatrixRoundTrip) {
  Rng rng(99);
  BitMatrix m(12);
  for (int e = 0; e < 40; ++e) {
    m.set(rng.uniform(12), rng.uniform(12));
  }
  const Digraph g = Digraph::fromMatrix(m);
  EXPECT_EQ(g.toMatrix(), m);
  EXPECT_EQ(g.edgeCount(), m.countOnes());
}

TEST(DigraphTest, EdgesListsLexicographic) {
  Digraph g(3);
  g.addEdge(2, 0);
  g.addEdge(0, 2);
  g.addEdge(0, 1);
  const std::vector<Edge> es = g.edges();
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(es[0], (Edge{0, 1}));
  EXPECT_EQ(es[1], (Edge{0, 2}));
  EXPECT_EQ(es[2], (Edge{2, 0}));
}

TEST(DigraphTest, SelfLoopAllowed) {
  Digraph g(2);
  g.addEdge(1, 1);
  EXPECT_TRUE(g.hasEdge(1, 1));
  EXPECT_EQ(g.inDegree(1), 1u);
  EXPECT_EQ(g.outDegree(1), 1u);
}

TEST(DotExportTest, ContainsNodesAndEdges) {
  BitMatrix m(3);
  m.set(0, 1);
  m.set(1, 1);  // self-loop, hidden by default
  const std::string dot = toDot(m);
  EXPECT_NE(dot.find("digraph G"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_EQ(dot.find("n1 -> n1"), std::string::npos);
}

TEST(DotExportTest, SelfLoopsShownWhenRequested) {
  BitMatrix m(2);
  m.set(1, 1);
  DotStyle style;
  style.hideSelfLoops = false;
  EXPECT_NE(toDot(m, style).find("n1 -> n1"), std::string::npos);
}

}  // namespace
}  // namespace dynbcast
