// The SIMD dispatch contract: every kernel table kernelsFor() can hand
// out — scalar, AVX2, AVX-512, whichever this machine supports —
// computes bit-identical results on identical inputs, at span lengths
// that straddle every vector-width boundary (sub-lane tails, exact
// multiples, one word over). Plus the resolution machinery itself:
// DYNBCAST_FORCE_SCALAR pins resolveSimdLevel() to scalar, dispatch()
// reports a supported tier, and the bit-level wrappers agree with naive
// loops at the same n values the kernel suite uses.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/support/bitset.h"
#include "src/support/rng.h"

namespace dynbcast {
namespace {

using bitword::dispatch;
using bitword::Kernels;
using bitword::kernelsFor;
using bitword::resolveSimdLevel;
using bitword::SimdLevel;
using bitword::simdLevelName;
using bitword::simdSupported;

// Word-span lengths straddling the AVX2 (4-word) and AVX-512 (8-word)
// lane widths and the kDispatchMinWords inline/dispatch boundary.
const std::size_t kWordCounts[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33};

std::vector<std::uint64_t> randomWords(std::size_t nwords, Rng& rng) {
  std::vector<std::uint64_t> w(nwords);
  for (std::uint64_t& x : w) x = rng();
  return w;
}

std::vector<SimdLevel> supportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (simdSupported(SimdLevel::kAvx2)) levels.push_back(SimdLevel::kAvx2);
  if (simdSupported(SimdLevel::kAvx512)) levels.push_back(SimdLevel::kAvx512);
  return levels;
}

TEST(SimdKernelTest, AllSupportedLevelsComputeIdenticalResults) {
  const std::vector<SimdLevel> levels = supportedLevels();
  const Kernels& scalar = kernelsFor(SimdLevel::kScalar);
  ASSERT_EQ(scalar.level, SimdLevel::kScalar);
  Rng rng(2024);
  for (const std::size_t nwords : kWordCounts) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::vector<std::uint64_t> a = randomWords(nwords, rng);
      const std::vector<std::uint64_t> b = randomWords(nwords, rng);
      const std::vector<std::uint64_t> c = randomWords(nwords, rng);

      std::vector<std::uint64_t> expectOr = a;
      scalar.orAssign(expectOr.data(), b.data(), nwords);
      std::vector<std::uint64_t> expectAnd = a;
      const std::size_t expectAndCount =
          scalar.andAssignCount(expectAnd.data(), b.data(), nwords);
      std::vector<std::uint64_t> expectInto(nwords);
      scalar.orInto(expectInto.data(), b.data(), c.data(), nwords);

      for (const SimdLevel level : levels) {
        const Kernels& k = kernelsFor(level);
        ASSERT_EQ(k.level, level);
        const std::string tag = std::string(k.name) +
                                " nwords=" + std::to_string(nwords);

        std::vector<std::uint64_t> dst = a;
        k.orAssign(dst.data(), b.data(), nwords);
        EXPECT_EQ(dst, expectOr) << "orAssign " << tag;

        dst = a;
        std::size_t count = k.orCount(dst.data(), b.data(), nwords);
        EXPECT_EQ(dst, expectOr) << "orCount dst " << tag;
        std::size_t naive = 0;
        for (const std::uint64_t w : expectOr) {
          naive += static_cast<std::size_t>(__builtin_popcountll(w));
        }
        EXPECT_EQ(count, naive) << "orCount count " << tag;

        dst = a;
        count = k.andAssignCount(dst.data(), b.data(), nwords);
        EXPECT_EQ(dst, expectAnd) << "andAssignCount dst " << tag;
        EXPECT_EQ(count, expectAndCount) << "andAssignCount count " << tag;

        dst = a;
        k.andAssign(dst.data(), b.data(), nwords);
        EXPECT_EQ(dst, expectAnd) << "andAssign " << tag;

        std::vector<std::uint64_t> into(nwords, 0xdeadbeefdeadbeefull);
        k.orInto(into.data(), b.data(), c.data(), nwords);
        EXPECT_EQ(into, expectInto) << "orInto " << tag;

        EXPECT_EQ(k.intersectAny(a.data(), b.data(), nwords),
                  scalar.intersectAny(a.data(), b.data(), nwords))
            << "intersectAny " << tag;
      }
    }
  }
}

TEST(SimdKernelTest, IntersectAnyFindsLoneOverlapAtEveryPosition) {
  // A single overlapping bit, swept across every word, catches a lane
  // that a vectorized any-reduction forgets to fold in.
  for (const std::size_t nwords : kWordCounts) {
    for (std::size_t w = 0; w < nwords; ++w) {
      std::vector<std::uint64_t> a(nwords, 0), b(nwords, 0);
      a[w] = 1ull << (w % 64);
      b[w] = a[w];
      for (const SimdLevel level : supportedLevels()) {
        const Kernels& k = kernelsFor(level);
        EXPECT_TRUE(k.intersectAny(a.data(), b.data(), nwords))
            << k.name << " nwords=" << nwords << " word=" << w;
        b[w] <<= 1;
        EXPECT_FALSE(k.intersectAny(a.data(), b.data(), nwords))
            << k.name << " nwords=" << nwords << " word=" << w;
        b[w] >>= 1;
      }
    }
  }
}

TEST(SimdDispatchTest, UnsupportedLevelFallsBackToScalar) {
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    const Kernels& k = kernelsFor(level);
    if (simdSupported(level)) {
      EXPECT_EQ(k.level, level);
    } else {
      EXPECT_EQ(k.level, SimdLevel::kScalar);
    }
    EXPECT_STREQ(k.name, simdLevelName(k.level));
  }
}

TEST(SimdDispatchTest, ForceScalarEnvPinsResolution) {
  // dispatch() snapshots once per process, but resolveSimdLevel()
  // re-reads the environment — which is what lets one test cover the
  // forced-scalar path regardless of how CI launched the binary.
  const char* old = std::getenv("DYNBCAST_FORCE_SCALAR");
  const std::string saved = old != nullptr ? old : "";

  ASSERT_EQ(setenv("DYNBCAST_FORCE_SCALAR", "1", 1), 0);
  EXPECT_EQ(resolveSimdLevel(), SimdLevel::kScalar);
  ASSERT_EQ(setenv("DYNBCAST_FORCE_SCALAR", "0", 1), 0);
  const SimdLevel native = resolveSimdLevel();
  EXPECT_TRUE(simdSupported(native));

  if (old != nullptr) {
    setenv("DYNBCAST_FORCE_SCALAR", saved.c_str(), 1);
  } else {
    unsetenv("DYNBCAST_FORCE_SCALAR");
  }
}

TEST(SimdDispatchTest, ProcessWideTableIsSupportedAndNamed) {
  const Kernels& k = dispatch();
  EXPECT_TRUE(simdSupported(k.level));
  EXPECT_STREQ(k.name, simdLevelName(k.level));
}

TEST(SimdDispatchTest, LevelNamesAreStable) {
  EXPECT_STREQ(simdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(simdLevelName(SimdLevel::kAvx512), "avx512");
}

// --- bit-level wrappers at the ISSUE's n values ---------------------

const std::size_t kBitSizes[] = {1, 63, 64, 65, 127, 130};

DynBitset randomBits(std::size_t n, Rng& rng) {
  DynBitset b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.4)) b.set(i);
  }
  return b;
}

TEST(SimdWrapperTest, OrCountMatchesNaiveAtWordBoundaryBitSizes) {
  Rng rng(99);
  for (const std::size_t n : kBitSizes) {
    for (int trial = 0; trial < 10; ++trial) {
      DynBitset dst = randomBits(n, rng);
      const DynBitset src = randomBits(n, rng);
      std::size_t expect = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (dst.test(i) || src.test(i)) ++expect;
      }
      EXPECT_EQ(
          bitword::orCount(dst.wordData(), src.wordData(), dst.wordCount()),
          expect)
          << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace dynbcast
