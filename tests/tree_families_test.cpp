#include "src/tree/families.h"

#include <gtest/gtest.h>

#include "src/support/assert.h"
#include "src/support/rng.h"

namespace dynbcast {
namespace {

std::vector<std::size_t> iota(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

TEST(PathTest, IdentityPathShape) {
  const RootedTree p = makePath(5);
  EXPECT_EQ(p.root(), 0u);
  EXPECT_EQ(p.height(), 4u);
  EXPECT_EQ(p.leafCount(), 1u);
  for (std::size_t v = 1; v < 5; ++v) EXPECT_EQ(p.parent(v), v - 1);
}

TEST(PathTest, PermutedPathFollowsOrder) {
  const RootedTree p = makePath({3, 1, 0, 2});
  EXPECT_EQ(p.root(), 3u);
  EXPECT_EQ(p.parent(1), 3u);
  EXPECT_EQ(p.parent(0), 1u);
  EXPECT_EQ(p.parent(2), 0u);
}

TEST(PathTest, RejectsNonPermutation) {
  EXPECT_THROW(makePath({0, 0, 1}), AssertionError);
  EXPECT_THROW(makePath({0, 5, 1}), AssertionError);
}

TEST(StarTest, CenterHasAllChildren) {
  const RootedTree s = makeStar(7, 3);
  EXPECT_EQ(s.root(), 3u);
  EXPECT_EQ(s.height(), 1u);
  EXPECT_EQ(s.leafCount(), 6u);
  EXPECT_EQ(s.childrenOf(3).size(), 6u);
}

TEST(StarTest, SingleNodeStar) {
  const RootedTree s = makeStar(1, 0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.height(), 0u);
}

TEST(BroomTest, HandleThenBristles) {
  const RootedTree b = makeBroom(iota(6), 3);
  // Path 0→1→2, bristles 3,4,5 under node 2.
  EXPECT_EQ(b.root(), 0u);
  EXPECT_EQ(b.parent(1), 0u);
  EXPECT_EQ(b.parent(2), 1u);
  EXPECT_EQ(b.parent(3), 2u);
  EXPECT_EQ(b.parent(5), 2u);
  EXPECT_EQ(b.height(), 3u);
  EXPECT_EQ(b.leafCount(), 3u);
}

TEST(BroomTest, FullHandleIsPath) {
  EXPECT_EQ(makeBroom(iota(5), 5), makePath(5));
}

TEST(BroomTest, HandleOneIsStar) {
  EXPECT_EQ(makeBroom(iota(5), 1), makeStar(5, 0));
}

TEST(CaterpillarTest, SpineAndLegs) {
  const RootedTree c = makeCaterpillar(iota(7), 3);
  EXPECT_EQ(c.root(), 0u);
  EXPECT_EQ(c.parent(1), 0u);
  EXPECT_EQ(c.parent(2), 1u);
  // Legs 3..6 round-robin onto spine 0,1,2.
  EXPECT_EQ(c.parent(3), 0u);
  EXPECT_EQ(c.parent(4), 1u);
  EXPECT_EQ(c.parent(5), 2u);
  EXPECT_EQ(c.parent(6), 0u);
}

TEST(KAryTest, BinaryTreeShape) {
  const RootedTree t = makeKAry(iota(7), 2);
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.parent(2), 0u);
  EXPECT_EQ(t.parent(3), 1u);
  EXPECT_EQ(t.parent(6), 2u);
  EXPECT_EQ(t.height(), 2u);
}

TEST(KAryTest, KOneIsPath) { EXPECT_EQ(makeKAry(iota(6), 1), makePath(6)); }

TEST(SpiderTest, LegsPartitionNodes) {
  const RootedTree s = makeSpider(iota(9), 4);
  EXPECT_EQ(s.root(), 0u);
  EXPECT_EQ(s.childrenOf(0).size(), 4u);
  EXPECT_EQ(s.leafCount(), 4u);
  EXPECT_EQ(s.height(), 2u);  // 8 nodes over 4 legs = 2 each
}

TEST(SpiderTest, OneLegIsPath) {
  EXPECT_EQ(makeSpider(iota(6), 1), makePath(6));
}

TEST(SpiderTest, MaxLegsIsStar) {
  EXPECT_EQ(makeSpider(iota(6), 5), makeStar(6, 0));
}

TEST(DoubleBroomTest, HeadPathTailStructure) {
  // Root 0; head leaves 1,2; path 3,4; tail leaves 5,6.
  const RootedTree d = makeDoubleBroom(iota(7), 2, 2);
  EXPECT_EQ(d.parent(1), 0u);
  EXPECT_EQ(d.parent(2), 0u);
  EXPECT_EQ(d.parent(3), 0u);
  EXPECT_EQ(d.parent(4), 3u);
  EXPECT_EQ(d.parent(5), 4u);
  EXPECT_EQ(d.parent(6), 4u);
  EXPECT_EQ(d.leafCount(), 4u);
}

TEST(DoubleBroomTest, RejectsOverBudget) {
  EXPECT_THROW(makeDoubleBroom(iota(4), 2, 2), AssertionError);
}

class FamilyHeightTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FamilyHeightTest, HeightsMatchClosedForms) {
  const std::size_t n = GetParam();
  EXPECT_EQ(makePath(n).height(), n - 1);
  EXPECT_EQ(makeStar(n, 0).height(), n == 1 ? 0u : 1u);
  if (n >= 3) {
    EXPECT_EQ(makeBroom(iota(n), n - 1).height(), n - 1);
    EXPECT_EQ(makeBroom(iota(n), 2).height(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FamilyHeightTest,
                         ::testing::Values(1, 2, 3, 5, 9, 17, 64));

}  // namespace
}  // namespace dynbcast
