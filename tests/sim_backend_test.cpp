// The SimBackend concept (sim_backend.h) is the compile-time contract
// every simulation engine satisfies. The static_asserts are the actual
// test — a drifting signature breaks the build right here, with the
// concept name in the error. The runtime probe then drives all four
// backends through one shared round sequence and checks they agree on
// every observable the concept exposes, which is the semantic half of
// the contract ("all backends are EXACT").
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/graph/bitmatrix.h"
#include "src/sim/batch_sim.h"
#include "src/sim/broadcast_sim.h"
#include "src/sim/frontier_sim.h"
#include "src/sim/process_sim.h"
#include "src/sim/sim_backend.h"
#include "src/support/rng.h"
#include "src/tree/generators.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {

static_assert(SimBackend<BroadcastSim>,
              "BroadcastSim must satisfy the SimBackend concept");
static_assert(SimBackend<ProcessSim>,
              "ProcessSim must satisfy the SimBackend concept");
static_assert(SimBackend<FrontierSim>,
              "FrontierSim must satisfy the SimBackend concept");
static_assert(SimBackend<BatchBroadcastSim>,
              "BatchBroadcastSim (width-1 surface) must satisfy SimBackend");

namespace {

// Drives one backend through the given rounds via ONLY the concept
// surface and returns the observable trace, so different backend types
// can be compared generically.
struct Trace {
  std::vector<std::size_t> heardCounts;  // per round, sum over y
  std::vector<bool> broadcast;
  std::vector<bool> gossip;

  bool operator==(const Trace&) const = default;
};

template <SimBackend S>
Trace run(S& sim, const std::vector<RootedTree>& trees, const BitMatrix& g) {
  Trace trace;
  const auto record = [&trace, &sim] {
    std::size_t total = 0;
    for (std::size_t y = 0; y < sim.processCount(); ++y) {
      total += sim.heardCount(y);
    }
    trace.heardCounts.push_back(total);
    trace.broadcast.push_back(sim.broadcastDone());
    trace.gossip.push_back(sim.gossipDone());
  };
  for (const RootedTree& tree : trees) {
    sim.applyTree(tree);
    record();
  }
  sim.applyGraph(g);
  record();
  // reset() must land back on the round-0 identity state.
  sim.reset();
  EXPECT_EQ(sim.round(), 0u);
  record();
  return trace;
}

TEST(SimBackendTest, AllBackendsAgreeOnTheConceptSurface) {
  for (const std::size_t n : {2ul, 9ul, 40ul}) {
    Rng rng(500 + n);
    std::vector<RootedTree> trees;
    for (int r = 0; r < 4; ++r) trees.push_back(randomRootedTree(n, rng));
    BitMatrix g = BitMatrix::identity(n);
    for (int e = 0; e < 3 * static_cast<int>(n); ++e) {
      g.set(rng.uniform(n), rng.uniform(n));
    }

    BroadcastSim dense(n);
    ProcessSim process(n);
    FrontierSim frontier(n);
    BatchBroadcastSim batch(n, 1);
    const Trace reference = run(dense, trees, g);
    EXPECT_EQ(run(process, trees, g), reference) << "ProcessSim, n=" << n;
    EXPECT_EQ(run(frontier, trees, g), reference) << "FrontierSim, n=" << n;
    EXPECT_EQ(run(batch, trees, g), reference)
        << "BatchBroadcastSim, n=" << n;
  }
}

}  // namespace
}  // namespace dynbcast
