// The scale unlock the sparse backend exists for: an edge-markovian run
// at n = 2·10⁵ — whose dense heard-of matrix alone would be 5 GB — must
// complete through the t*-only frontier mode inside a 1 GB peak-RSS
// budget. (The n = 10⁶ sweep lives in CI as a CLI smoke step; this test
// keeps the property tier-1 at a size every dev machine can afford.)
#include <gtest/gtest.h>

#include <string>

#include "src/dynamics/registry.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

// Sanitizer shadow memory and redzones inflate RSS severalfold; the
// 1 GB bound is only meaningful for the uninstrumented binary.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DYNBCAST_SANITIZER_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DYNBCAST_SANITIZER_ACTIVE 1
#endif
#endif

namespace dynbcast {
namespace {

/// Peak RSS in bytes, or 0 where getrusage is unavailable.
[[nodiscard]] [[maybe_unused]] std::size_t peakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

TEST(FrontierScaleTest, EdgeMarkovianTStarAtTwoHundredThousandNodes) {
  const std::size_t n = 200000;
  // Stationary edge density p/(p+q) ≈ 7.5e-5: mean degree ≈ 15, so
  // broadcast completes in a handful of rounds while the graph stays
  // far too large to ever materialize densely.
  const std::string spec = "edge-markovian:p=0.0000375,q=0.5";
  const auto model = DynamicsRegistry::instance().make(spec, n, 2024);
  ASSERT_TRUE(model->supportsSparseRounds());

  const BroadcastRun run =
      runFrontierDynamicsBroadcast(n, *model, /*maxRounds=*/60,
                                   /*recordHistory=*/false, /*seed=*/2024);
  EXPECT_TRUE(run.completed);
  EXPECT_GE(run.rounds, 2u);
  EXPECT_LT(run.rounds, 60u);

  // The run must replay: same model, same answer.
  const BroadcastRun again =
      runFrontierDynamicsBroadcast(n, *model, 60, false, 2024);
  EXPECT_EQ(run.rounds, again.rounds);
  EXPECT_EQ(run.completed, again.completed);

#if !defined(DYNBCAST_SANITIZER_ACTIVE)
  const std::size_t peak = peakRssBytes();
  if (peak != 0) {
    // The dense matrix alone would be n²/8 = 5 GB; the sparse run must
    // stay far below it. 1 GB leaves generous room for the round cache.
    EXPECT_LT(peak, std::size_t(1) << 30)
        << "peak RSS " << (peak >> 20) << " MiB";
  }
#endif
}

}  // namespace
}  // namespace dynbcast
