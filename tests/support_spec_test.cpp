// Error-path coverage for the shared `name:key=value,...` spec grammar —
// the one surface both registries (adversaries and dynamics) parse user
// input through, so every malformed shape must fail loudly, name the
// axis it broke, and (for near-miss names) suggest the intended one.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/adversary/registry.h"
#include "src/dynamics/registry.h"
#include "src/support/spec.h"

namespace dynbcast {
namespace {

/// Runs `body`, asserting it throws std::invalid_argument whose message
/// contains every listed fragment.
template <typename F>
void expectSpecError(F&& body, const std::vector<std::string>& fragments) {
  try {
    body();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    for (const std::string& fragment : fragments) {
      EXPECT_NE(message.find(fragment), std::string::npos)
          << "message '" << message << "' lacks '" << fragment << "'";
    }
  }
}

TEST(SpecGrammarTest, EmptySpecIsRejected) {
  expectSpecError([] { (void)parseSpec("", "dynamics"); }, {"dynamics"});
  expectSpecError([] { (void)parseSpec("   ", "adversary"); }, {"adversary"});
}

TEST(SpecGrammarTest, EmptyNameWithParamsIsRejected) {
  expectSpecError([] { (void)parseSpec(":p=0.2", "dynamics"); }, {"dynamics"});
}

TEST(SpecGrammarTest, MissingEqualsIsRejected) {
  expectSpecError([] { (void)parseSpec("edge-markovian:p", "dynamics"); },
                  {"dynamics", "p"});
  expectSpecError([] { (void)parseSpec("beam:width", "adversary"); },
                  {"adversary", "width"});
}

TEST(SpecGrammarTest, EmptyKeyOrValueIsRejected) {
  expectSpecError([] { (void)parseSpec("edge-markovian:=0.2", "dynamics"); },
                  {"dynamics"});
  expectSpecError([] { (void)parseSpec("edge-markovian:p=", "dynamics"); },
                  {"dynamics"});
  expectSpecError([] { (void)parseSpec("edge-markovian:p=0.2,,q=0.1",
                                 "dynamics"); },
                  {"dynamics"});
}

TEST(SpecGrammarTest, DuplicateKeysAreRejected) {
  expectSpecError(
      [] { (void)parseSpec("edge-markovian:p=0.2,p=0.3", "dynamics"); },
      {"dynamics", "p"});
}

TEST(SpecGrammarTest, BadCharsetIsRejected) {
  expectSpecError([] { (void)parseSpec("edge markovian", "dynamics"); },
                  {"dynamics"});
  expectSpecError([] { (void)parseSpec("beam:wi dth=4", "adversary"); },
                  {"adversary"});
  EXPECT_FALSE(isValidSpecToken(""));
  EXPECT_FALSE(isValidSpecToken("a b"));
  EXPECT_FALSE(isValidSpecToken("a;b"));
  EXPECT_TRUE(isValidSpecToken("edge-markovian"));
  EXPECT_TRUE(isValidSpecToken("freeze_path.v2"));
}

TEST(SpecGrammarTest, TypedAccessNamesTheAxisAndKey) {
  const ParsedSpec spec = parseSpec("edge-markovian:p=banana", "dynamics");
  expectSpecError([&] { (void)spec.params.getDouble("p", 0.0); },
                  {"dynamics", "p", "banana"});
}

TEST(SpecGrammarTest, ParsePrintRoundTripIsCanonical) {
  const ParsedSpec spec =
      parseSpec("  edge-markovian : q=0.1 , p=0.2 ", "dynamics");
  const std::string printed = formatSpec(spec.name, spec.params);
  EXPECT_EQ(printed, "edge-markovian:p=0.2,q=0.1");  // keys sorted
  const ParsedSpec again = parseSpec(printed, "dynamics");
  EXPECT_EQ(formatSpec(again.name, again.params), printed);
}

// ---------------------------------------------------------------------------
// Suggestion quality on both registries: a near-miss must come back as a
// "did you mean" naming the intended entry; rubbish must not suggest
// anything misleading.
// ---------------------------------------------------------------------------

TEST(SpecSuggestionTest, DynamicsRegistryNearMissesAreSuggested) {
  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  const struct {
    const char* typo;
    const char* intended;
  } cases[] = {
      {"edge-markovain", "edge-markovian"},
      {"nonsplit-randm", "nonsplit-random"},
      {"t-intervall", "t-interval"},
      {"rooted-trees", "rooted-tree"},
  };
  for (const auto& c : cases) {
    expectSpecError([&] { (void)registry.info(c.typo); },
                    {c.typo, c.intended});
  }
}

TEST(SpecSuggestionTest, AdversaryRegistryNearMissesAreSuggested) {
  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  for (const std::string& name : registry.names()) {
    // Drop the last character: edit distance 1 from the real name, so
    // the suggestion must recover it (no other registered name is
    // closer than the original).
    const std::string typo = name.substr(0, name.size() - 1);
    if (registry.contains(typo)) continue;  // prefix of another entry
    expectSpecError([&] { (void)registry.info(typo); }, {typo, name});
  }
}

TEST(SpecSuggestionTest, UnknownParameterKeysAreSuggested) {
  const DynamicsRegistry& dynamics = DynamicsRegistry::instance();
  expectSpecError(
      [&] {
        dynamics.validate(DynamicsSpec::parse("edge-markovian:pp=0.2"));
      },
      {"pp", "p"});
  expectSpecError(
      [&] { dynamics.validate(DynamicsSpec::parse("t-interval:t=4")); },
      {"t", "T"});
}

TEST(SpecSuggestionTest, FarFetchedNamesGetNoMisleadingSuggestion) {
  // closestMatch caps at edit distance 3 — garbage should yield no
  // suggestion rather than a random registry entry.
  EXPECT_EQ(closestMatch("zzzzzzzzzzzz",
                         DynamicsRegistry::instance().names()),
            "");
  EXPECT_EQ(closestMatch("qqqqqqqqqqqq",
                         AdversaryRegistry::instance().names()),
            "");
}

}  // namespace
}  // namespace dynbcast
