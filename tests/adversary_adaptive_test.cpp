#include "src/adversary/adaptive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "src/adversary/local_search.h"
#include "src/adversary/lookahead.h"
#include "src/adversary/oblivious.h"
#include "src/bounds/bounds.h"
#include "src/support/rng.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

TEST(CoverageTest, InitialCoverageIsOne) {
  BroadcastSim sim(6);
  const auto cov = coverageCounts(sim);
  for (const std::size_t c : cov) EXPECT_EQ(c, 1u);
}

TEST(CoverageTest, StarMakesCenterFullCoverage) {
  BroadcastSim sim(6);
  sim.applyTree(makeStar(6, 2));
  const auto cov = coverageCounts(sim);
  EXPECT_EQ(cov[2], 6u);
  for (std::size_t x = 0; x < 6; ++x) {
    if (x != 2) {
      EXPECT_EQ(cov[x], 1u);
    }
  }
}

TEST(EvaluateCandidateTest, MatchesActualApplication) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng.uniform(10);
    BroadcastSim sim(n);
    for (int r = 0; r < 3; ++r) sim.applyTree(randomRootedTree(n, rng));
    const auto covBefore = coverageCounts(sim);
    const std::size_t edgesBefore = sim.metrics().totalEdges;
    const RootedTree candidate = randomRootedTree(n, rng);
    const DelayScore score =
        evaluateCandidate(sim.heardMatrix(), covBefore, candidate);
    // Now actually apply and compare.
    sim.applyTree(candidate);
    const auto covAfter = coverageCounts(sim);
    const std::size_t maxCov =
        *std::max_element(covAfter.begin(), covAfter.end());
    EXPECT_EQ(score.maxCoverage, maxCov);
    EXPECT_EQ(score.finishes, sim.broadcastDone());
    EXPECT_EQ(score.newEdges, sim.metrics().totalEdges - edgesBefore);
  }
}

std::vector<std::size_t> identityBase(std::size_t n) {
  std::vector<std::size_t> base(n);
  for (std::size_t i = 0; i < n; ++i) base[i] = i;
  return base;
}

TEST(FreezeOrderingTest, NonKnowersPrecedeKnowers) {
  Rng rng(21);
  BroadcastSim sim(10);
  for (int r = 0; r < 4; ++r) sim.applyTree(randomPath(10, rng));
  const auto cov = coverageCounts(sim);
  const std::size_t leader = static_cast<std::size_t>(
      std::max_element(cov.begin(), cov.end()) - cov.begin());
  const auto order = freezeOrdering(sim, {leader}, identityBase(10));
  bool seenKnower = false;
  for (const std::size_t y : order) {
    const bool knows = sim.heardBy(y).test(leader);
    if (knows) seenKnower = true;
    if (seenKnower) {
      EXPECT_TRUE(knows) << "non-knower after knower block";
    }
  }
}

TEST(FreezeOrderingTest, StablePartitionPreservesRelativeOrder) {
  Rng rng(22);
  BroadcastSim sim(12);
  for (int r = 0; r < 3; ++r) sim.applyTree(randomPath(12, rng));
  const auto cov = coverageCounts(sim);
  const std::size_t leader = static_cast<std::size_t>(
      std::max_element(cov.begin(), cov.end()) - cov.begin());
  const auto base = identityBase(12);
  const auto order = freezeOrdering(sim, {leader}, base);
  // Within the non-knower block and within the knower block, ids must
  // stay in base (ascending) order — that is the stability guarantee.
  std::vector<std::size_t> nonKnowers, knowers;
  for (const std::size_t y : order) {
    (sim.heardBy(y).test(leader) ? knowers : nonKnowers).push_back(y);
  }
  EXPECT_TRUE(std::is_sorted(nonKnowers.begin(), nonKnowers.end()));
  EXPECT_TRUE(std::is_sorted(knowers.begin(), knowers.end()));
}

TEST(FreezeOrderingTest, FreezePathFreezesLeaderCoverage) {
  // The defining property: after one freeze-path round, the leader's
  // coverage must not have grown.
  Rng rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + rng.uniform(12);
    BroadcastSim sim(n);
    for (int r = 0; r < 3; ++r) sim.applyTree(randomRootedTree(n, rng));
    if (sim.broadcastDone()) continue;
    auto cov = coverageCounts(sim);
    const std::size_t leader = static_cast<std::size_t>(
        std::max_element(cov.begin(), cov.end()) - cov.begin());
    const std::size_t before = cov[leader];
    FreezePathAdversary adv(n, 1);
    sim.applyTree(adv.nextTree(sim));
    EXPECT_EQ(coverageCounts(sim)[leader], before);
  }
}

TEST(AdaptiveAdversaryTest, FreezeCompletesWithinTheorem) {
  // Online freeze play is myopic (see adaptive.h header notes): it is not
  // guaranteed to beat the static baseline, but it must stay within the
  // theorem's upper bound and terminate.
  for (const std::size_t n : {8u, 16u, 32u}) {
    FreezePathAdversary adv(n, 2);
    const BroadcastRun run = runAdversary(n, adv, defaultRoundCap(n));
    ASSERT_TRUE(run.completed) << "freeze adversary hit the round cap";
    EXPECT_LE(run.rounds, bounds::linearUpper(n)) << "n=" << n;
  }
}

TEST(AdaptiveAdversaryTest, GreedyDelayAtLeastStaticPath) {
  // GreedyDelay's candidate pool contains its own previous path, so with
  // the identity initialization it can always realize the static-path
  // value n−1; one-step lookahead cannot be forced below it.
  for (const std::size_t n : {8u, 16u, 32u}) {
    GreedyDelayAdversary adv(n, 7);
    const BroadcastRun run = runAdversary(n, adv, defaultRoundCap(n));
    ASSERT_TRUE(run.completed);
    EXPECT_GE(run.rounds, n - 1) << "n=" << n;
    EXPECT_LE(run.rounds, bounds::linearUpper(n)) << "n=" << n;
  }
}

TEST(AdaptiveAdversaryTest, HeardOrderPathsComplete) {
  for (const bool asc : {true, false}) {
    HeardOrderPathAdversary adv(12, asc);
    const BroadcastRun run = runAdversary(12, adv, defaultRoundCap(12));
    EXPECT_TRUE(run.completed);
    EXPECT_LE(run.rounds, bounds::linearUpper(12));
  }
}

TEST(LocalSearchTest, CompletesWithinBound) {
  const std::size_t n = 16;
  LocalSearchPathAdversary adv(n, 13);
  const BroadcastRun run = runAdversary(n, adv, defaultRoundCap(n));
  ASSERT_TRUE(run.completed);
  EXPECT_LE(run.rounds, bounds::linearUpper(n));
}

TEST(LocalSearchTest, DeterministicPerSeed) {
  LocalSearchPathAdversary adv(10, 21);
  const BroadcastRun a = runAdversary(10, adv, defaultRoundCap(10));
  const BroadcastRun b = runAdversary(10, adv, defaultRoundCap(10));
  EXPECT_EQ(a.rounds, b.rounds);
}

// The replay gate promised by src/adversary/lookahead.h's
// replay-test(...) annotation: reset() must rewind the adversary (RNG and
// transposition state included) to a byte-identical run, and two
// instances built from the same (n, seed) must agree round for round.
TEST(LookaheadTest, LookaheadResetReplaysDeterministically) {
  constexpr std::size_t kN = 10;
  constexpr std::uint64_t kSeed = 42;
  LookaheadDelayAdversary adversary(kN, kSeed);
  const BroadcastRun first =
      runAdversary(kN, adversary, defaultRoundCap(kN), true);
  // runAdversary resets first, so a second run on the SAME instance is a
  // replay across reset().
  const BroadcastRun replay =
      runAdversary(kN, adversary, defaultRoundCap(kN), true);
  EXPECT_EQ(first.rounds, replay.rounds);
  EXPECT_EQ(first.completed, replay.completed);
  ASSERT_EQ(first.history.size(), replay.history.size());
  for (std::size_t r = 0; r < first.history.size(); ++r) {
    EXPECT_EQ(first.history[r].totalEdges, replay.history[r].totalEdges)
        << "round " << r;
  }

  LookaheadDelayAdversary rebuilt(kN, kSeed);
  const BroadcastRun fresh =
      runAdversary(kN, rebuilt, defaultRoundCap(kN), true);
  EXPECT_EQ(first.rounds, fresh.rounds);
  ASSERT_EQ(first.history.size(), fresh.history.size());
  for (std::size_t r = 0; r < first.history.size(); ++r) {
    EXPECT_EQ(first.history[r].totalEdges, fresh.history[r].totalEdges)
        << "round " << r;
  }
}

TEST(DelayScoreTest, LexicographicOrdering) {
  DelayScore finishing{true, 0.0, 0, 0};
  DelayScore calm{false, 100.0, 5, 3};
  DelayScore calmer{false, 50.0, 9, 9};
  EXPECT_TRUE(calm < finishing);    // never finish if avoidable
  EXPECT_TRUE(calmer < calm);       // lower potential wins
  DelayScore tiePotential{false, 50.0, 8, 9};
  EXPECT_TRUE(tiePotential < calmer);  // then lower max coverage
}

TEST(DamageGreedyTreeTest, ProducesValidTreeWithRequestedRoot) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.uniform(12);
    BroadcastSim sim(n);
    for (int r = 0; r < 3; ++r) sim.applyTree(randomRootedTree(n, rng));
    const auto cov = coverageCounts(sim);
    const std::size_t root = rng.uniform(n);
    const RootedTree t = buildDamageGreedyTree(sim, cov, root);
    EXPECT_EQ(t.root(), root);
    EXPECT_EQ(t.size(), n);
  }
}

TEST(DamageGreedyTreeTest, AvoidsFinishingWhenAlternativeExists) {
  // Mid-game, the damage tree should not hand the leader its last
  // missing process if any cheaper attachment exists.
  Rng rng(41);
  BroadcastSim sim(10);
  for (int r = 0; r < 5; ++r) sim.applyTree(randomPath(10, rng));
  if (!sim.broadcastDone()) {
    const auto cov = coverageCounts(sim);
    const RootedTree t = buildDamageGreedyTree(sim, cov, 0);
    const DelayScore s = evaluateCandidate(sim.heardMatrix(), cov, t);
    // A path exists that does not finish (the previous path froze);
    // damage-greedy must find SOME non-finishing tree too.
    EXPECT_FALSE(s.finishes);
  }
}

TEST(NoisyDamageTreeTest, NoiseDiversifiesConstruction) {
  Rng rng(51);
  BroadcastSim sim(12);
  for (int r = 0; r < 4; ++r) sim.applyTree(randomRootedTree(12, rng));
  const auto cov = coverageCounts(sim);
  std::set<std::string> shapes;
  for (int i = 0; i < 10; ++i) {
    shapes.insert(buildNoisyDamageTree(sim, cov, 0, 8.0, rng).toString());
  }
  EXPECT_GT(shapes.size(), 1u) << "noise produced identical trees";
}

TEST(FreezeBroomTest, StaysInBothRestrictedClasses) {
  const std::size_t n = 12;
  for (const std::size_t handle : {3u, 6u, 9u}) {
    FreezeBroomAdversary adv(n, handle);
    adv.reset();
    BroadcastSim sim(n);
    for (int r = 0; r < 6 && !sim.broadcastDone(); ++r) {
      const RootedTree t = adv.nextTree(sim);
      EXPECT_EQ(t.innerCount(), handle) << "round " << r;
      EXPECT_EQ(t.leafCount(), n - handle) << "round " << r;
      sim.applyTree(t);
    }
  }
}

TEST(FreezeBroomTest, FullHandleDelaysLinearly) {
  // handle n−1 behaves like a freeze path: completes, and takes at least
  // a linear number of rounds (its static height alone is n−2).
  const std::size_t n = 16;
  FreezeBroomAdversary adv(n, n - 1);
  const BroadcastRun run = runAdversary(n, adv, defaultRoundCap(n));
  ASSERT_TRUE(run.completed);
  EXPECT_GE(run.rounds, n / 2);
}

class AdaptiveUpperBoundSweep : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(AdaptiveUpperBoundSweep, NoAdversaryExceedsTheorem31) {
  const std::size_t n = GetParam();
  std::vector<std::unique_ptr<Adversary>> advs;
  advs.push_back(std::make_unique<FreezePathAdversary>(n, 1));
  advs.push_back(std::make_unique<FreezePathAdversary>(n, 3));
  advs.push_back(std::make_unique<GreedyDelayAdversary>(n, 1));
  advs.push_back(std::make_unique<HeardOrderPathAdversary>(n, true));
  advs.push_back(std::make_unique<HeardOrderPathAdversary>(n, false));
  for (auto& adv : advs) {
    const BroadcastRun run = runAdversary(n, *adv, defaultRoundCap(n));
    ASSERT_TRUE(run.completed) << adv->name() << " n=" << n;
    EXPECT_LE(run.rounds, bounds::linearUpper(n))
        << adv->name() << " violates Theorem 3.1 at n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AdaptiveUpperBoundSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 20, 40, 64));

// --- scratch arena vs reference oracle --------------------------------
//
// evaluateCandidate's word kernels are checked against a test-local
// textbook implementation (fresh heard copy, per-node delta bitsets —
// the allocating shape the arena replaced). They must agree bit-for-bit
// on every field and on the post-move state, at word-boundary sizes too.

/// The obviously-correct reference: apply the tree to a copied matrix,
/// counting coverage bumps per freshly-learned process. Same fp sum
/// order as the kernel path (ascending bits per node, reverse BFS), so
/// `potential` must match exactly, not approximately.
DelayScore referenceEvaluateCandidate(const std::vector<DynBitset>& heard,
                                      const std::vector<std::size_t>& coverage,
                                      const RootedTree& tree,
                                      std::vector<DynBitset>* heardOut,
                                      std::vector<std::size_t>* coverageOut) {
  const std::size_t n = heard.size();
  std::vector<std::size_t> cov = coverage;
  DelayScore score;
  std::vector<DynBitset> work = heard;
  const std::vector<std::size_t> order = tree.bfsOrder();
  for (std::size_t i = order.size(); i-- > 0;) {
    const std::size_t y = order[i];
    const std::size_t p = tree.parent(y);
    if (p == y) continue;
    DynBitset delta = work[p];
    delta.subtract(work[y]);
    for (std::size_t x = delta.findFirst(); x < n; x = delta.findNext(x + 1)) {
      ++cov[x];
      ++score.newEdges;
    }
    work[y].orWith(work[p]);
  }
  for (const std::size_t c : cov) {
    score.maxCoverage = std::max(score.maxCoverage, c);
    if (c == n) score.finishes = true;
    score.potential +=
        std::exp2(static_cast<double>(std::min<std::size_t>(c, 50)));
  }
  if (heardOut != nullptr) *heardOut = std::move(work);
  if (coverageOut != nullptr) *coverageOut = std::move(cov);
  return score;
}

TEST(EvalScratchTest, ArenaAgreesWithReferenceImplementation) {
  Rng rng(31337);
  for (const std::size_t n : {2u, 5u, 63u, 64u, 65u, 90u}) {
    // A mid-game state: a few random rounds from the identity.
    BroadcastSim sim(n);
    for (int r = 0; r < 3; ++r) sim.applyTree(randomRootedTree(n, rng));
    const std::vector<DynBitset>& heard = sim.heardMatrix();
    const std::vector<std::size_t> coverage = coverageCounts(sim);
    EvalScratch scratch = EvalScratch::forProcessCount(n);
    for (int c = 0; c < 10; ++c) {
      const RootedTree tree = randomRootedTree(n, rng);
      std::vector<DynBitset> refHeard;
      std::vector<std::size_t> refCoverage;
      const DelayScore ref = referenceEvaluateCandidate(
          heard, coverage, tree, &refHeard, &refCoverage);
      const DelayScore arena = evaluateCandidate(heard, coverage, tree,
                                                 scratch);
      EXPECT_EQ(arena.finishes, ref.finishes);
      EXPECT_EQ(arena.potential, ref.potential);  // same fp sum order
      EXPECT_EQ(arena.maxCoverage, ref.maxCoverage);
      EXPECT_EQ(arena.newEdges, ref.newEdges);
      EXPECT_EQ(scratch.heard, refHeard);
      EXPECT_EQ(scratch.coverage, refCoverage);
    }
  }
}

TEST(EvalScratchTest, FactoryScratchMatchesDefaultConstructed) {
  // forProcessCount pre-sizes the buffers; results must not depend on
  // whether the scratch arrived pre-sized, freshly default-constructed,
  // or sized for a DIFFERENT n by a previous evaluation.
  Rng rng(777);
  const std::size_t n = 33;
  BroadcastSim sim(n);
  for (int r = 0; r < 3; ++r) sim.applyTree(randomRootedTree(n, rng));
  const std::vector<std::size_t> coverage = coverageCounts(sim);
  const RootedTree tree = randomRootedTree(n, rng);
  EvalScratch sized = EvalScratch::forProcessCount(n);
  EvalScratch fresh;
  EvalScratch wrongSize = EvalScratch::forProcessCount(65);
  const DelayScore a =
      evaluateCandidate(sim.heardMatrix(), coverage, tree, sized);
  const DelayScore b =
      evaluateCandidate(sim.heardMatrix(), coverage, tree, fresh);
  const DelayScore c =
      evaluateCandidate(sim.heardMatrix(), coverage, tree, wrongSize);
  EXPECT_EQ(a.potential, b.potential);
  EXPECT_EQ(a.potential, c.potential);
  EXPECT_EQ(a.newEdges, b.newEdges);
  EXPECT_EQ(a.newEdges, c.newEdges);
  EXPECT_EQ(sized.heard, fresh.heard);
  EXPECT_EQ(sized.heard, wrongSize.heard);
  EXPECT_EQ(sized.coverage, fresh.coverage);
}

TEST(EvalScratchTest, WrapperMatchesScratchOverload) {
  // The coverageOut-pointer wrapper is a thin shim over the scratch
  // overload; both surfaces must report the same score and coverage.
  Rng rng(99);
  const std::size_t n = 40;
  BroadcastSim sim(n);
  for (int r = 0; r < 4; ++r) sim.applyTree(randomRootedTree(n, rng));
  const std::vector<std::size_t> coverage = coverageCounts(sim);
  const RootedTree tree = randomRootedTree(n, rng);
  std::vector<std::size_t> covOut;
  const DelayScore viaWrapper =
      evaluateCandidate(sim.heardMatrix(), coverage, tree, &covOut);
  EvalScratch scratch = EvalScratch::forProcessCount(n);
  const DelayScore viaScratch =
      evaluateCandidate(sim.heardMatrix(), coverage, tree, scratch);
  EXPECT_EQ(viaWrapper.potential, viaScratch.potential);
  EXPECT_EQ(viaWrapper.newEdges, viaScratch.newEdges);
  EXPECT_EQ(covOut, scratch.coverage);
}

}  // namespace
}  // namespace dynbcast
