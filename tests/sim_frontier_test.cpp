// Unit coverage for the sparse backend: FrontierSim must mirror
// BroadcastSim bit for bit (heard sets, completion flags, metrics) on
// trees, dense graphs, and raw arc lists — including the sameAsPrevious
// delta path and the full-row collapse — and runFrontierTStar must land
// on the exact dense t* under any cache budget or sample seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/graph/bitmatrix.h"
#include "src/sim/broadcast_sim.h"
#include "src/sim/frontier_sim.h"
#include "src/support/rng.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

[[nodiscard]] BitMatrix randomReflexiveGraph(std::size_t n, double p,
                                             Rng& rng) {
  BitMatrix g = BitMatrix::identity(n);
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      if (x != y && rng.chance(p)) g.set(x, y);
    }
  }
  return g;
}

[[nodiscard]] SparseRound randomArcRound(std::size_t n, std::size_t arcs,
                                         Rng& rng) {
  SparseRound round;
  round.n = n;
  for (std::size_t i = 0; i < arcs; ++i) {
    round.arcs.emplace_back(static_cast<std::uint32_t>(rng.uniform(n)),
                            static_cast<std::uint32_t>(rng.uniform(n)));
  }
  return round;
}

[[nodiscard]] BitMatrix denseFromRound(const SparseRound& round) {
  BitMatrix g = BitMatrix::identity(round.n);
  for (const auto& [src, dst] : round.arcs) g.set(src, dst);
  return g;
}

void expectMirrorsDense(const BroadcastSim& dense,
                        const FrontierSim& frontier) {
  const std::size_t n = dense.processCount();
  ASSERT_EQ(frontier.processCount(), n);
  ASSERT_EQ(frontier.round(), dense.round());
  for (std::size_t y = 0; y < n; ++y) {
    EXPECT_EQ(frontier.heardCount(y), dense.heardBy(y).count()) << "y=" << y;
    EXPECT_EQ(frontier.heardBitset(y), dense.heardBy(y)) << "y=" << y;
  }
  EXPECT_EQ(frontier.broadcastDone(), dense.broadcastDone());
  EXPECT_EQ(frontier.gossipDone(), dense.gossipDone());
  EXPECT_EQ(frontier.broadcasters(), dense.broadcasters());
  const RoundMetrics a = frontier.metrics();
  const RoundMetrics b = dense.metrics();
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.totalEdges, b.totalEdges);
  EXPECT_EQ(a.minHeard, b.minHeard);
  EXPECT_DOUBLE_EQ(a.avgHeard, b.avgHeard);
  EXPECT_EQ(a.maxHeard, b.maxHeard);
  EXPECT_EQ(a.maxCoverage, b.maxCoverage);
  EXPECT_EQ(a.completeRows, b.completeRows);
  EXPECT_EQ(a.completeCols, b.completeCols);
}

class FrontierSimTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrontierSimTest, MirrorsDenseOnRandomTrees) {
  const std::size_t n = GetParam();
  Rng rng(n * 13 + 5);
  BroadcastSim dense(n);
  FrontierSim frontier(n);
  for (int r = 0; r < 30; ++r) {
    const RootedTree t = randomRootedTree(n, rng);
    dense.applyTree(t);
    frontier.applyTree(t);
    expectMirrorsDense(dense, frontier);
  }
}

TEST_P(FrontierSimTest, MirrorsDenseOnRandomGraphs) {
  const std::size_t n = GetParam();
  Rng rng(n * 19 + 11);
  BroadcastSim dense(n);
  FrontierSim frontier(n);
  for (int r = 0; r < 15; ++r) {
    const BitMatrix g = randomReflexiveGraph(n, 0.08, rng);
    dense.applyGraph(g);
    frontier.applyGraph(g);
    expectMirrorsDense(dense, frontier);
  }
}

TEST_P(FrontierSimTest, MirrorsDenseOnArcRounds) {
  const std::size_t n = GetParam();
  Rng rng(n * 23 + 29);
  BroadcastSim dense(n);
  FrontierSim frontier(n);
  for (int r = 0; r < 20; ++r) {
    const SparseRound round = randomArcRound(n, 2 * n, rng);
    dense.applyGraph(denseFromRound(round));
    frontier.applyEdges(round);
    expectMirrorsDense(dense, frontier);
  }
}

// 63/64/65/128 straddle the bitset word boundary; the small sizes hit the
// full-collapse tail almost immediately.
INSTANTIATE_TEST_SUITE_P(Sizes, FrontierSimTest,
                         ::testing::Values(2, 3, 7, 16, 63, 64, 65, 128));

TEST(FrontierSimTest, DeltaPathMatchesFullRecomputation) {
  // A round repeated with sameAsPrevious=true must leave the state
  // exactly where re-sending the full arc list would. Hold each graph
  // for several rounds so deltas shrink and (eventually) empty out.
  const std::size_t n = 48;
  Rng rng(4242);
  BroadcastSim dense(n);
  FrontierSim viaDelta(n);
  FrontierSim viaFull(n);
  for (int epoch = 0; epoch < 6; ++epoch) {
    SparseRound round = randomArcRound(n, n, rng);
    const BitMatrix g = denseFromRound(round);
    for (int hold = 0; hold < 4; ++hold) {
      round.sameAsPrevious = hold > 0;
      dense.applyGraph(g);
      viaDelta.applyEdges(round);
      SparseRound fresh = round;
      fresh.sameAsPrevious = false;
      viaFull.applyEdges(fresh);
      expectMirrorsDense(dense, viaDelta);
      expectMirrorsDense(dense, viaFull);
    }
  }
}

TEST(FrontierSimTest, FullCollapseKeepsCountersExact) {
  // One complete-graph round finishes everything: every row collapses to
  // the implicit full representation and every counter must still be
  // exact afterwards.
  const std::size_t n = 40;
  SparseRound complete;
  complete.n = n;
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      if (x != y) {
        complete.arcs.emplace_back(static_cast<std::uint32_t>(x),
                                   static_cast<std::uint32_t>(y));
      }
    }
  }
  FrontierSim frontier(n);
  frontier.applyEdges(complete);
  EXPECT_TRUE(frontier.broadcastDone());
  EXPECT_TRUE(frontier.gossipDone());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(frontier.heardCount(i), n);
    EXPECT_EQ(frontier.coverage(i), n);
    EXPECT_TRUE(frontier.broadcasters().test(i));
  }
  // Further rounds on a finished instance stay consistent (and cheap).
  BroadcastSim dense(n);
  dense.applyGraph(denseFromRound(complete));
  Rng rng(7);
  const SparseRound extra = randomArcRound(n, n, rng);
  dense.applyGraph(denseFromRound(extra));
  frontier.applyEdges(extra);
  expectMirrorsDense(dense, frontier);
}

TEST(FrontierSimTest, ResetReplaysIdentically) {
  const std::size_t n = 20;
  Rng rng(99);
  std::vector<SparseRound> script;
  for (int r = 0; r < 8; ++r) script.push_back(randomArcRound(n, n, rng));

  FrontierSim frontier(n);
  for (const SparseRound& round : script) frontier.applyEdges(round);
  std::vector<std::size_t> firstCounts;
  for (std::size_t y = 0; y < n; ++y) {
    firstCounts.push_back(frontier.heardCount(y));
  }

  frontier.reset();
  EXPECT_EQ(frontier.round(), 0u);
  EXPECT_FALSE(frontier.broadcastDone());
  for (std::size_t y = 0; y < n; ++y) {
    EXPECT_EQ(frontier.heardCount(y), 1u);  // identity: y has heard y
    EXPECT_TRUE(frontier.hasHeard(y, y));
    EXPECT_EQ(frontier.coverage(y), 1u);
  }

  for (const SparseRound& round : script) frontier.applyEdges(round);
  for (std::size_t y = 0; y < n; ++y) {
    EXPECT_EQ(frontier.heardCount(y), firstCounts[y]);
  }
}

TEST(FrontierSimTest, SingleProcessIsDoneAtRoundZero) {
  FrontierSim frontier(1);
  EXPECT_TRUE(frontier.broadcastDone());
  EXPECT_TRUE(frontier.gossipDone());
  EXPECT_EQ(frontier.heardCount(0), 1u);
}

// ---------------------------------------------------------------------------
// t*-only mode
// ---------------------------------------------------------------------------

/// Replayable scripted source: cycles over a fixed vector of rounds.
class VectorRoundSource final : public SparseRoundSource {
 public:
  explicit VectorRoundSource(std::vector<SparseRound> rounds)
      : rounds_(std::move(rounds)) {}
  void reset() override { next_ = 0; }
  const SparseRound& next() override {
    const SparseRound& round = rounds_[next_ % rounds_.size()];
    ++next_;
    return round;
  }

 private:
  std::vector<SparseRound> rounds_;
  std::size_t next_ = 0;
};

[[nodiscard]] std::size_t denseTStar(std::size_t n,
                                     const std::vector<SparseRound>& script,
                                     std::size_t cap) {
  BroadcastSim dense(n);
  if (dense.broadcastDone()) return 0;
  while (dense.round() < cap) {
    dense.applyGraph(denseFromRound(script[dense.round() % script.size()]));
    if (dense.broadcastDone()) return dense.round();
  }
  return 0;  // never completed
}

class FrontierTStarTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrontierTStarTest, MatchesDenseTStarOnScriptedSequences) {
  // n > 64 exercises the sampled upper bound + backward filter +
  // certification path; n ≤ 64 takes the exact all-sources shortcut.
  const std::size_t n = GetParam();
  Rng rng(n * 37 + 101);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<SparseRound> script;
    const std::size_t period = 3 + rng.uniform(5);
    for (std::size_t r = 0; r < period; ++r) {
      script.push_back(randomArcRound(n, n / 2 + 2, rng));
    }
    const std::size_t cap = 20 * n;
    const std::size_t expected = denseTStar(n, script, cap);

    VectorRoundSource source(script);
    FrontierTStarOptions options;
    options.maxRounds = cap;
    options.sampleSeed = rng();
    const FrontierTStarResult result = runFrontierTStar(n, source, options);
    if (expected == 0) {
      EXPECT_FALSE(result.completed) << "n=" << n << " trial=" << trial;
      EXPECT_EQ(result.rounds, cap);
    } else {
      EXPECT_TRUE(result.completed) << "n=" << n << " trial=" << trial;
      EXPECT_EQ(result.rounds, expected)
          << "n=" << n << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FrontierTStarTest,
                         ::testing::Values(2, 5, 17, 64, 65, 100, 130));

TEST(FrontierTStarTest, ReportsIncompleteAtCapOnSilentNetwork) {
  // Arc-free rounds never spread anything: for n >= 2 broadcast cannot
  // complete, and the result must say cap/incomplete, not loop or lie.
  const std::size_t n = 80;
  SparseRound silent;
  silent.n = n;
  VectorRoundSource source({silent});
  FrontierTStarOptions options;
  options.maxRounds = 25;
  const FrontierTStarResult result = runFrontierTStar(n, source, options);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.rounds, 25u);
}

TEST(FrontierTStarTest, TinyCacheBudgetReplaysExactly) {
  // A cache budget too small for even one round forces every probe to
  // replay through source.reset(); the answer must not change.
  const std::size_t n = 90;
  Rng rng(555);
  std::vector<SparseRound> script;
  for (int r = 0; r < 5; ++r) script.push_back(randomArcRound(n, n, rng));
  VectorRoundSource source(script);

  FrontierTStarOptions cached;
  cached.maxRounds = 20 * n;
  cached.sampleSeed = 7;
  const FrontierTStarResult big = runFrontierTStar(n, source, cached);

  source.reset();
  FrontierTStarOptions tiny = cached;
  tiny.cacheBudgetArcs = 1;
  const FrontierTStarResult small = runFrontierTStar(n, source, tiny);

  EXPECT_EQ(big.completed, small.completed);
  EXPECT_EQ(big.rounds, small.rounds);
  EXPECT_EQ(denseTStar(n, script, cached.maxRounds), big.rounds);
}

TEST(FrontierTStarTest, SampleSeedOnlyAffectsPerformance) {
  // t* is exact, so any sample seed (and any sample count) must report
  // the same round.
  const std::size_t n = 120;
  Rng rng(808);
  std::vector<SparseRound> script;
  // 4n arcs per round: sparse, but enough in-degree that the periodic
  // script completes broadcast with overwhelming probability.
  for (int r = 0; r < 4; ++r) {
    script.push_back(randomArcRound(n, 4 * n, rng));
  }
  const std::size_t expected = denseTStar(n, script, 20 * n);
  ASSERT_NE(expected, 0u);

  for (const std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    for (const std::size_t samples : {std::size_t(1), std::size_t(16),
                                      std::size_t(64)}) {
      VectorRoundSource source(script);
      FrontierTStarOptions options;
      options.maxRounds = 20 * n;
      options.sampleSeed = seed;
      options.samples = samples;
      const FrontierTStarResult result =
          runFrontierTStar(n, source, options);
      EXPECT_TRUE(result.completed)
          << "seed=" << seed << " samples=" << samples;
      EXPECT_EQ(result.rounds, expected)
          << "seed=" << seed << " samples=" << samples;
    }
  }
}

TEST(FrontierTStarTest, SingleProcessCompletesImmediately) {
  SparseRound empty;
  empty.n = 1;
  VectorRoundSource source({empty});
  FrontierTStarOptions options;
  options.maxRounds = 10;
  const FrontierTStarResult result = runFrontierTStar(1, source, options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 0u);
}

}  // namespace
}  // namespace dynbcast
