// Shared driver for the bench binaries.
//
// Every sweep bench speaks the same CLI dialect — --sizes, --seed,
// --jobs, --csv — and fans its work out through one ExperimentEngine.
// This driver owns that common surface so each bench's main() shrinks to:
// declare defaults, describe the work, format the table. Flags:
//
//   --sizes=LO:HI:STEP | a,b,c   sweep sizes (step is multiplicative)
//   --seed=S                     master seed; per-task seeds are derived
//                                from it by position (SeedSequence), so
//                                output is identical at any --jobs value
//   --seeds=R                    independent seed replicates per size
//                                (sweep benches; default 1)
//   --jobs=J                     worker threads; 0 (default) = all cores
//   --csv=PATH                   also write the main table as CSV
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/experiment_engine.h"
#include "src/support/options.h"
#include "src/support/table.h"

namespace dynbcast {

class BenchDriver {
 public:
  /// Parses argv with the given per-bench defaults. Throws
  /// std::invalid_argument on malformed input (same as Options).
  BenchDriver(int argc, const char* const* argv,
              const std::string& defaultSizes, std::uint64_t defaultSeed = 1);

  /// Bench-specific extras (--beam-width etc.) stay available.
  [[nodiscard]] const Options& options() const noexcept { return opts_; }

  [[nodiscard]] const std::vector<std::size_t>& sizes() const noexcept {
    return sizes_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Seed replicates per size (--seeds, default 1).
  [[nodiscard]] std::size_t seedsPerSize() const noexcept {
    return seedsPerSize_;
  }

  /// Resolved worker count (the --jobs=0 default maps to all cores).
  [[nodiscard]] std::size_t jobs() const noexcept {
    return engine_.jobCount();
  }

  /// The engine all of this bench's work runs through.
  [[nodiscard]] ExperimentEngine& engine() noexcept { return engine_; }

  /// A SweepSpec with sizes and masterSeed prefilled from the CLI.
  [[nodiscard]] SweepSpec sweepSpec() const;

  /// One-line run banner: "<title> (seed=S, jobs=J)\n\n".
  void printHeader(const std::string& title) const;

  /// Prints the table; also writes it to --csv when the flag is present.
  void emit(const TextTable& table) const;

 private:
  Options opts_;
  std::vector<std::size_t> sizes_;
  std::uint64_t seed_;
  std::size_t seedsPerSize_;
  ExperimentEngine engine_;
};

}  // namespace dynbcast
