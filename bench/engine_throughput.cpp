// PERF: google-benchmark microbenchmarks of the simulation engine — the
// substrate that makes the sweep benches possible at laptop scale.
// Measures the O(n²/64) round application, the boolean matrix product,
// full broadcast runs, and the candidate evaluation used by the greedy
// adversary.
#include <benchmark/benchmark.h>

#include "src/adversary/adaptive.h"
#include "src/graph/bitmatrix.h"
#include "src/sim/broadcast_sim.h"
#include "src/support/rng.h"
#include "src/tree/generators.h"

namespace {

using namespace dynbcast;

void BM_ApplyTreeRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  BroadcastSim sim(n);
  const RootedTree tree = randomRootedTree(n, rng);
  for (auto _ : state) {
    sim.applyTree(tree);
    benchmark::DoNotOptimize(sim.heardBy(0).count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ApplyTreeRound)->RangeMultiplier(4)->Range(64, 4096);

void BM_MatrixProduct(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n + 1);
  BitMatrix a(n), b(n);
  for (std::size_t i = 0; i < 4 * n; ++i) {
    a.set(rng.uniform(n), rng.uniform(n));
    b.set(rng.uniform(n), rng.uniform(n));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.product(b).countOnes());
  }
}
BENCHMARK(BM_MatrixProduct)->RangeMultiplier(4)->Range(64, 1024);

void BM_FullBroadcastRandomAdversary(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    Rng rng(seed++);
    const BroadcastRun run = runBroadcast(
        n,
        [&rng, n](const BroadcastSim&) { return randomRootedTree(n, rng); },
        10 * n + 100);
    benchmark::DoNotOptimize(run.rounds);
  }
}
BENCHMARK(BM_FullBroadcastRandomAdversary)->RangeMultiplier(4)->Range(64, 1024);

void BM_GreedyCandidateEvaluation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n + 3);
  BroadcastSim sim(n);
  for (std::size_t r = 0; r < n / 2; ++r) {
    sim.applyTree(randomRootedTree(n, rng));
  }
  const auto coverage = coverageCounts(sim);
  const RootedTree candidate = randomPath(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluateCandidate(sim.heardMatrix(), coverage, candidate));
  }
}
BENCHMARK(BM_GreedyCandidateEvaluation)->RangeMultiplier(4)->Range(64, 1024);

void BM_UniformTreeGeneration(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n + 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(randomRootedTree(n, rng).height());
  }
}
BENCHMARK(BM_UniformTreeGeneration)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace

BENCHMARK_MAIN();
