// THM31: the headline reproduction — measured adversarial broadcast time
// vs Theorem 3.1's bracket ⌈(3n−1)/2⌉−2 ≤ t*(T_n) ≤ ⌈(1+√2)n−1⌉.
//
// The implementation is `dynbcast sweep` (tools/cli.cpp), kept under its
// historical bench name so existing scripts and the committed golden
// CSVs keep working: the portfolio sweep runs as a declarative
// ScenarioSpec through the registry, beam witnesses shard through the
// engine, and output stays byte-identical at every --jobs value.
//
// Usage: thm31_adversary_sweep [--sizes=4:512:2] [--seed=1] [--seeds=R]
//                              [--jobs=N] [--csv=path] [--beam-maxn=32]
//                              [--beam-width=256] [--adversaries=SPECS]
// This bench IS `dynbcast sweep` under its historical name (CMake links
// dynbcast_cli for exactly this forwarder), so the one bench->tools
// include edge is deliberate, not drift.
// dynbcast-lint: allow(layer-include) -- historical forwarder to the CLI
#include "tools/cli.h"

int main(int argc, char** argv) { return dynbcast::cli::runSweep(argc, argv); }
