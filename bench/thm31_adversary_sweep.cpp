// THM31: the headline reproduction — measured adversarial broadcast time
// vs Theorem 3.1's bracket ⌈(3n−1)/2⌉−2 ≤ t*(T_n) ≤ ⌈(1+√2)n−1⌉.
//
// For each n the full adversary portfolio runs to completion; the best
// (largest) t* is a certified lower witness for the game value. The
// paper predicts: witness/n → ≥ 1.5 for strong adversaries, and NO run
// ever exceeds the upper curve.
//
// Usage: thm31_adversary_sweep [--sizes=4:512:2] [--seed=1] [--csv=path]
#include <iostream>

#include "src/adversary/beam.h"
#include "src/adversary/portfolio.h"
#include "src/analysis/csv.h"
#include "src/bounds/theorem.h"
#include "src/support/options.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const auto sizes = parseSizeList(opts.getString("sizes", "4:128:2"));
  const std::uint64_t seed = opts.getUInt("seed", 1);
  // Beam witness search is the strongest (offline) adversary; it costs
  // real time and its advantage concentrates at small-to-mid n, so it
  // runs only up to a size cap by default.
  const std::size_t beamMaxN = opts.getUInt("beam-maxn", 32);
  BeamConfig beamCfg;
  beamCfg.beamWidth = opts.getUInt("beam-width", 256);
  beamCfg.randomMovesPerState = 8;
  beamCfg.diversityPercent = 40;

  std::cout << "THM31 — adversaries vs Theorem 3.1 (seed=" << seed << ")\n"
            << "best t* = max(online portfolio, offline beam witness for "
               "n <= " << beamMaxN << ")\n\n";

  TextTable table({"n", "lower bound", "portfolio t*", "beam witness t*",
                   "best t*", "upper bound", "t*/n", "upper ok"});
  bool anyViolation = false;
  for (const std::size_t n : sizes) {
    const PortfolioResult result = runPortfolio(n, seed);
    std::size_t beamRounds = 0;
    if (n <= beamMaxN) {
      const BeamResult witness = beamSearchWitness(n, seed, beamCfg);
      if (verifyWitness(n, witness.witness) == witness.rounds) {
        beamRounds = witness.rounds;
      }
    }
    const std::size_t best = std::max(result.bestRounds, beamRounds);
    const TheoremCheck check = checkTheorem31(n, best);
    anyViolation |= !check.withinUpper;
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(check.lower)
        .add(static_cast<std::uint64_t>(result.bestRounds))
        .add(beamRounds == 0 ? std::string("-")
                             : std::to_string(beamRounds))
        .add(static_cast<std::uint64_t>(best))
        .add(check.upper)
        .add(check.ratio, 3)
        .add(check.withinUpper ? "yes" : "VIOLATION");
  }
  std::cout << table.render() << '\n';

  std::cout << "per-adversary detail at the largest n:\n";
  const std::size_t nLast = sizes.back();
  const PortfolioResult detail = runPortfolio(nLast, seed);
  TextTable per({"adversary", "t*", "t*/n", "completed"});
  for (const auto& e : detail.entries) {
    per.row()
        .add(e.name)
        .add(static_cast<std::uint64_t>(e.rounds))
        .add(static_cast<double>(e.rounds) / static_cast<double>(nLast), 3)
        .add(e.completed ? "yes" : "no");
  }
  std::cout << per.render() << '\n';

  if (opts.has("csv")) {
    writeCsv(opts.getString("csv", "thm31.csv"), table);
  }
  if (anyViolation) {
    std::cout << "RESULT: UPPER BOUND VIOLATION DETECTED (bug!)\n";
    return 1;
  }
  std::cout << "RESULT: all runs within the theorem's upper bound.\n";
  return 0;
}
