// THM31: the headline reproduction — measured adversarial broadcast time
// vs Theorem 3.1's bracket ⌈(3n−1)/2⌉−2 ≤ t*(T_n) ≤ ⌈(1+√2)n−1⌉.
//
// For each n the full adversary portfolio runs to completion; the best
// (largest) t* is a certified lower witness for the game value. The
// paper predicts: witness/n → ≥ 1.5 for strong adversaries, and NO run
// ever exceeds the upper curve.
//
// Both the portfolio sweep and the beam witness searches shard across
// cores through the ExperimentEngine; seeds are position-derived, so the
// output (and any --csv artifact) is byte-identical at every --jobs.
//
// Usage: thm31_adversary_sweep [--sizes=4:512:2] [--seed=1] [--seeds=R]
//                              [--jobs=N] [--csv=path] [--beam-maxn=32]
//                              [--beam-width=256]
#include <algorithm>
#include <iostream>

#include "bench/driver.h"
#include "src/adversary/beam.h"
#include "src/bounds/theorem.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  BenchDriver driver(argc, argv, "4:128:2", 1);
  // Beam witness search is the strongest (offline) adversary; it costs
  // real time and its advantage concentrates at small-to-mid n, so it
  // runs only up to a size cap by default.
  const std::size_t beamMaxN = driver.options().getUInt("beam-maxn", 32);
  BeamConfig beamCfg;
  beamCfg.beamWidth = driver.options().getUInt("beam-width", 256);
  beamCfg.randomMovesPerState = 8;
  beamCfg.diversityPercent = 40;

  driver.printHeader("THM31 — adversaries vs Theorem 3.1");
  std::cout << "best t* = max(online portfolio, offline beam witness for "
               "n <= " << beamMaxN << ")\n\n";

  // Portfolio sweep: sizes × standard members, one task per member run.
  const SweepResult sweep = driver.engine().runSweep(driver.sweepSpec());

  // Beam witnesses fan out too: one task per size within the beam cap.
  const std::vector<std::size_t>& sizes = driver.sizes();
  const auto beamRows = driver.engine().map<std::size_t>(
      sizes.size(), driver.seed() ^ 0xbea3ull,
      [&](std::size_t i, std::uint64_t taskSeed) -> std::size_t {
        const std::size_t n = sizes[i];
        if (n > beamMaxN) return 0;
        const BeamResult witness = beamSearchWitness(n, taskSeed, beamCfg);
        return verifyWitness(n, witness.witness) == witness.rounds
                   ? witness.rounds
                   : 0;
      });

  TextTable table({"n", "lower bound", "portfolio t*", "beam witness t*",
                   "best t*", "upper bound", "t*/n", "upper ok"});
  bool anyViolation = false;
  const std::size_t replicates = driver.seedsPerSize();
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    // Portfolio t* for this n: best over its --seeds replicates (the
    // instances are size-major, replicates contiguous).
    std::size_t portfolioBest = 0;
    for (std::size_t r = 0; r < replicates; ++r) {
      portfolioBest = std::max(
          portfolioBest,
          sweep.instances[i * replicates + r].portfolio.bestRounds);
    }
    const std::size_t beamRounds = beamRows[i];
    const std::size_t best = std::max(portfolioBest, beamRounds);
    const TheoremCheck check = checkTheorem31(n, best);
    anyViolation |= !check.withinUpper;
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(check.lower)
        .add(static_cast<std::uint64_t>(portfolioBest))
        .add(beamRounds == 0 ? std::string("-")
                             : std::to_string(beamRounds))
        .add(static_cast<std::uint64_t>(best))
        .add(check.upper)
        .add(check.ratio, 3)
        .add(check.withinUpper ? "yes" : "VIOLATION");
  }
  driver.emit(table);

  if (!sweep.instances.empty()) {
    // The detail rows come straight from the sweep — no second run.
    const SweepInstance& last = sweep.instances.back();
    std::cout << "per-adversary detail at the largest n:\n";
    TextTable per({"adversary", "t*", "t*/n", "completed"});
    for (const auto& e : last.portfolio.entries) {
      per.row()
          .add(e.name)
          .add(static_cast<std::uint64_t>(e.rounds))
          .add(static_cast<double>(e.rounds) / static_cast<double>(last.n), 3)
          .add(e.completed ? "yes" : "no");
    }
    std::cout << per.render() << '\n';
  }

  if (anyViolation) {
    std::cout << "RESULT: UPPER BOUND VIOLATION DETECTED (bug!)\n";
    return 1;
  }
  std::cout << "RESULT: all runs within the theorem's upper bound.\n";
  return 0;
}
