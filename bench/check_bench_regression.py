#!/usr/bin/env python3
"""CI bench-regression gate.

Compares the JSON emitted by `perf_harness` (BENCH_kernels.json +
BENCH_sweep.json) against the committed bench/baseline.json and fails
when any gated metric drops more than its tolerance below the baseline.

Usage:
  check_bench_regression.py --baseline bench/baseline.json \
      --kernels BENCH_kernels.json --sweep BENCH_sweep.json
  check_bench_regression.py --write-baseline ... (regenerate the file)

Baseline schema (dynbcast-bench-baseline/1):
  {
    "schema": "dynbcast-bench-baseline/1",
    "metrics": {
      "<key>": {"value": <float>, "tolerance_pct": <float>},
      ...
    }
  }
where <key> is either "kernel:<name>:<bits>:gib_per_s" /
"kernel:<name>:<bits>:ns_per_op" (from BENCH_kernels.json) or
"sweep:<field>" (from BENCH_sweep.json). Throughput-like metrics
(gib_per_s, speedups) regress DOWNWARD; ns_per_op regresses UPWARD —
the comparison direction is inferred from the key.

Runner CPUs vary, so kernel throughput baselines carry generous
tolerances; the ratio metrics (batch_round_speedup, batch_sweep_speedup,
product_blocked_speedup) are machine-relative and carry tight ones. A
commit whose message
contains [bench-skip] bypasses the gate entirely (CI wires that up).
"""

import argparse
import json
import sys

# Metrics gated by default when regenerating a baseline. Ratios are the
# robust cross-machine signal; one absolute throughput per kernel at the
# largest quick-mode size catches "the kernel stopped vectorizing" while
# the wide tolerance absorbs runner variance.
DEFAULT_GATES = {
    # Batching is CI-locked: the per-replicate round speedup of the
    # 8-lane batched kernel and the end-to-end batched-vs-scalar engine
    # sweep must stay comfortably above 1x on any runner.
    "sweep:batch_round_speedup": 30.0,
    "sweep:batch_sweep_speedup": 30.0,
    "sweep:product_blocked_speedup": 40.0,
    # Machine-relative too, but both sides are full stochastic t* runs at
    # a single n, so round-count luck adds variance on top of the runner's.
    "sweep:frontier_sparse_speedup": 60.0,
    "kernel:orAssign:1024:gib_per_s": 60.0,
    "kernel:orCount:1024:gib_per_s": 60.0,
    "kernel:intersectAny:1024:gib_per_s": 60.0,
    # Search-core counters: deterministic for the fixed seed/size the
    # harness uses (quick and full run the same search), so the slack only
    # absorbs deliberate tuning of the move pool or pruning rules.
    # beam_unique_states regresses UPWARD (a fatter search for the same
    # witness); beam_rounds and the hit rates regress downward.
    "sweep:beam_unique_states": 10.0,
    "sweep:beam_rounds": 10.0,
    "sweep:transposition_hit_rate": 25.0,
    "sweep:lookahead_tt_hit_rate": 25.0,
    # Experiment-service throughput: the warm pass re-runs the same specs
    # against a populated result cache, so the ratio is machine-relative
    # and collapses toward 1 if the cache pre-pass stops short-circuiting
    # execution. Both passes fsync every record, which adds I/O variance.
    "sweep:service_warm_speedup": 60.0,
}


def flatten(kernels_doc, sweep_doc):
    """All gateable metrics of one perf_harness run, keyed per schema."""
    out = {}
    for k in kernels_doc.get("kernels", []):
        prefix = "kernel:%s:%d" % (k["name"], k["bits"])
        out[prefix + ":gib_per_s"] = k.get("gib_per_s", 0.0)
        out[prefix + ":ns_per_op"] = k.get("ns_per_op", 0.0)
    for field in ("batch_round_speedup", "batch_sweep_speedup",
                  "batch_scalar_ms", "batch_batched_ms",
                  "product_blocked_speedup", "portfolio_ms",
                  "frontier_sparse_speedup", "frontier_dense_ms",
                  "frontier_sparse_ms", "beam_rounds",
                  "beam_unique_states", "beam_moves_generated",
                  "beam_eval_dedup_ratio", "transposition_hit_rate",
                  "beam_arena_peak_nodes", "beam_ms", "lookahead_nodes",
                  "lookahead_tt_hit_rate", "service_cold_ms",
                  "service_warm_ms", "service_cold_specs_per_s",
                  "service_warm_specs_per_s", "service_warm_speedup"):
        if field in sweep_doc:
            out["sweep:" + field] = sweep_doc[field]
    return out


def lower_is_better(key):
    # Work counters (states, nodes) and times regress by growing; the
    # throughput/ratio/round metrics regress by shrinking.
    return (key.endswith("ns_per_op") or key.endswith("_ms")
            or key.endswith("unique_states") or key.endswith("_nodes"))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--kernels", required=True)
    ap.add_argument("--sweep", required=True)
    ap.add_argument("--write-baseline", action="store_true",
                    help="regenerate the baseline from the current run")
    args = ap.parse_args()

    with open(args.kernels) as f:
        kernels_doc = json.load(f)
    with open(args.sweep) as f:
        sweep_doc = json.load(f)
    current = flatten(kernels_doc, sweep_doc)

    if args.write_baseline:
        metrics = {}
        for key, tol in DEFAULT_GATES.items():
            if key not in current:
                sys.exit("cannot write baseline: %s missing from run" % key)
            metrics[key] = {"value": round(current[key], 4),
                            "tolerance_pct": tol}
        doc = {"schema": "dynbcast-bench-baseline/1", "metrics": metrics}
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print("wrote %s (%d gated metrics)" % (args.baseline, len(metrics)))
        return

    with open(args.baseline) as f:
        baseline = json.load(f)
    if baseline.get("schema") != "dynbcast-bench-baseline/1":
        sys.exit("unrecognized baseline schema")

    failures = []
    print("%-42s %10s %10s %8s  %s"
          % ("metric", "baseline", "current", "tol%", "status"))
    for key, spec in sorted(baseline["metrics"].items()):
        base, tol = spec["value"], spec["tolerance_pct"]
        if key not in current:
            print("%-42s %10.3f %10s %8.0f  MISSING" % (key, base, "-", tol))
            failures.append(key)
            continue
        cur = current[key]
        if lower_is_better(key):
            bad = cur > base * (1.0 + tol / 100.0)
        else:
            bad = cur < base * (1.0 - tol / 100.0)
        status = "REGRESSION" if bad else "ok"
        print("%-42s %10.3f %10.3f %8.0f  %s" % (key, base, cur, tol, status))
        if bad:
            failures.append(key)

    if failures:
        print("\nFAIL: %d metric(s) regressed beyond tolerance: %s"
              % (len(failures), ", ".join(failures)))
        print("(runner variance? re-run, regenerate the baseline with "
              "--write-baseline, or push with [bench-skip] in the commit "
              "message)")
        sys.exit(1)
    print("\nOK: all gated metrics within tolerance.")


if __name__ == "__main__":
    main()
