// perf_harness: the repo's perf telemetry source of truth.
//
// Times (a) the raw-word kernels (through the runtime SIMD dispatch
// table) and the blocked boolean product against naive references,
// (b) BroadcastSim round throughput — scalar and batched across 8
// lockstep lanes — and (c) the end-to-end thm31 portfolio sweep plus a
// batched-vs-scalar engine sweep over oblivious members, then emits
// machine-readable JSON:
//
//   BENCH_kernels.json — per-kernel ns/op and GiB/s
//   BENCH_sweep.json   — sweep wall times, the batch speedup factors,
//                        and search-core telemetry
//
// CI's bench-smoke job runs `perf_harness --quick --csv=...`, uploads the
// JSONs as artifacts, and gates on bench/baseline.json via
// bench/check_bench_regression.py (see bench/README.md for the schema).
// Set DYNBCAST_FORCE_SCALAR=1 to take the SIMD tiers out of every
// measurement (the printed simd level records which tier actually ran).
//
// Flags (on top of the shared driver's --sizes/--seed/--jobs/--csv):
//   --quick        CI mode: smaller sweep size and shorter kernel reps
//   --out=DIR      directory for the BENCH_*.json files (default ".")
//   --sweep-n=N    portfolio sweep size (default 256; 96 with --quick)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <filesystem>

#include "bench/driver.h"
#include "src/adversary/adaptive.h"
#include "src/adversary/beam.h"
#include "src/adversary/lookahead.h"
#include "src/adversary/oblivious.h"
#include "src/adversary/portfolio.h"
#include "src/dynamics/registry.h"
#include "src/engine/experiment_engine.h"
#include "src/graph/bitmatrix.h"
#include "src/service/job.h"
#include "src/service/manifest.h"
#include "src/service/protocol.h"
#include "src/service/worker.h"
#include "src/support/file_lock.h"
#include "src/sim/batch_sim.h"
#include "src/sim/broadcast_sim.h"
#include "src/sim/frontier_sim.h"
#include "src/support/bitset.h"
#include "src/support/rng.h"
#include "src/support/table.h"
#include "src/tree/generators.h"

namespace dynbcast {
namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One timed kernel measurement.
struct KernelResult {
  std::string name;
  std::size_t bits = 0;    // operand width in bits (0 = n/a)
  std::uint64_t reps = 0;  // operations timed
  double nsPerOp = 0.0;
  double gibPerS = 0.0;  // words touched per op * reps / time (0 = n/a)
};

/// Runs `op` (one operation per call) until ~minSeconds elapsed, in
/// batches, and returns (reps, seconds). `sink` defeats dead-code elim.
template <typename Op>
std::pair<std::uint64_t, double> timeLoop(double minSeconds, Op&& op) {
  std::uint64_t reps = 0;
  std::uint64_t batch = 64;
  const auto start = Clock::now();
  double elapsed = 0.0;
  while (elapsed < minSeconds) {
    for (std::uint64_t i = 0; i < batch; ++i) op();
    reps += batch;
    elapsed = secondsSince(start);
    if (batch < (std::uint64_t{1} << 20)) batch *= 2;
  }
  return {reps, elapsed};
}

DynBitset randomBitset(std::size_t bits, double density, Rng& rng) {
  DynBitset b(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.uniformReal() < density) b.set(i);
  }
  return b;
}

std::uint64_t volatile gSink = 0;  // keeps results observable
void consume(std::uint64_t v) { gSink = gSink + v; }

// GiB/s accounts bytes actually moved per word so kernels are comparable:
// orAssign/orCount read src, read dst, write dst (24 B/word);
// intersectAny reads both operands (16 B/word).
constexpr double kBytesPerWordRmw = 24.0;
constexpr double kBytesPerWordRead2 = 16.0;

KernelResult benchOrAssign(std::size_t bits, double minSeconds, Rng& rng) {
  DynBitset dst = randomBitset(bits, 0.3, rng);
  const DynBitset src = randomBitset(bits, 0.3, rng);
  const std::size_t nwords = dst.wordCount();
  auto [reps, secs] = timeLoop(minSeconds, [&] {
    bitword::orAssign(dst.wordData(), src.wordData(), nwords);
    consume(dst.wordData()[0]);
  });
  KernelResult r{"orAssign", bits, reps, 0.0, 0.0};
  r.nsPerOp = secs * 1e9 / static_cast<double>(reps);
  r.gibPerS = static_cast<double>(reps) * static_cast<double>(nwords) *
              kBytesPerWordRmw / secs / (1024.0 * 1024.0 * 1024.0);
  return r;
}

KernelResult benchOrCount(std::size_t bits, double minSeconds, Rng& rng) {
  DynBitset dst = randomBitset(bits, 0.3, rng);
  const DynBitset src = randomBitset(bits, 0.3, rng);
  const std::size_t nwords = dst.wordCount();
  auto [reps, secs] = timeLoop(minSeconds, [&] {
    consume(bitword::orCount(dst.wordData(), src.wordData(), nwords));
  });
  KernelResult r{"orCount", bits, reps, 0.0, 0.0};
  r.nsPerOp = secs * 1e9 / static_cast<double>(reps);
  r.gibPerS = static_cast<double>(reps) * static_cast<double>(nwords) *
              kBytesPerWordRmw / secs / (1024.0 * 1024.0 * 1024.0);
  return r;
}

KernelResult benchIntersectAny(std::size_t bits, double minSeconds,
                               Rng& rng) {
  // Disjoint operands: the worst case, no early exit until the last word.
  DynBitset a(bits);
  DynBitset b(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.uniformReal() < 0.5) {
      a.set(i);
    } else {
      b.set(i);
    }
  }
  const std::size_t nwords = a.wordCount();
  auto [reps, secs] = timeLoop(minSeconds, [&] {
    consume(bitword::intersectAny(a.wordData(), b.wordData(), nwords) ? 1 : 0);
  });
  KernelResult r{"intersectAny", bits, reps, 0.0, 0.0};
  r.nsPerOp = secs * 1e9 / static_cast<double>(reps);
  r.gibPerS = static_cast<double>(reps) * static_cast<double>(nwords) *
              kBytesPerWordRead2 / secs / (1024.0 * 1024.0 * 1024.0);
  return r;
}

/// The pre-rewrite textbook product (row-gather via findNext), kept here
/// as the blocked kernel's reference and A/B partner.
BitMatrix productNaive(const BitMatrix& a, const BitMatrix& b) {
  const std::size_t n = a.dim();
  BitMatrix out(n);
  for (std::size_t x = 0; x < n; ++x) {
    const DynBitset& aRow = a.row(x);
    for (std::size_t z = aRow.findFirst(); z < n; z = aRow.findNext(z + 1)) {
      out.row(x).orWith(b.row(z));
    }
  }
  return out;
}

BitMatrix randomMatrix(std::size_t n, double density, Rng& rng) {
  BitMatrix m(n);
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      if (x == y || rng.uniformReal() < density) m.set(x, y);
    }
  }
  return m;
}

std::vector<KernelResult> benchProduct(std::size_t n, double minSeconds,
                                       Rng& rng) {
  const BitMatrix a = randomMatrix(n, 0.05, rng);
  const BitMatrix b = randomMatrix(n, 0.05, rng);
  std::vector<KernelResult> out;
  {
    auto [reps, secs] = timeLoop(minSeconds, [&] {
      const BitMatrix p = productNaive(a, b);
      consume(p.row(0).words()[0]);
    });
    KernelResult r{"productNaive", n, reps, 0.0, 0.0};
    r.nsPerOp = secs * 1e9 / static_cast<double>(reps);
    out.push_back(r);
  }
  {
    auto [reps, secs] = timeLoop(minSeconds, [&] {
      const BitMatrix p = a.productBlocked(b);
      consume(p.row(0).words()[0]);
    });
    KernelResult r{"productBlocked", n, reps, 0.0, 0.0};
    r.nsPerOp = secs * 1e9 / static_cast<double>(reps);
    out.push_back(r);
  }
  return out;
}

KernelResult benchSimRound(std::size_t n, double minSeconds, Rng& rng) {
  // A pool of random trees applied cyclically; each op = one full round
  // (the O(n²/64) heard-of recurrence + incremental completion refresh).
  std::vector<RootedTree> trees;
  for (int i = 0; i < 32; ++i) trees.push_back(randomRootedTree(n, rng));
  BroadcastSim sim(n);
  std::size_t next = 0;
  auto [reps, secs] = timeLoop(minSeconds, [&] {
    sim.applyTree(trees[next]);
    next = (next + 1) % trees.size();
    if (sim.gossipDone()) sim.reset();
    consume(sim.heardCount(0));
  });
  KernelResult r{"simApplyTree", n, reps, 0.0, 0.0};
  r.nsPerOp = secs * 1e9 / static_cast<double>(reps);
  return r;
}

/// Lanes per batched round here AND in the batched engine sweep below —
/// matches BatchPolicy::kAutoWidth so the gated speedups describe what
/// `--batch=auto` actually runs.
constexpr std::size_t kBatchBenchWidth = 8;

KernelResult benchBatchRound(std::size_t n, double minSeconds, Rng& rng) {
  // simApplyTree's batched twin: the same cyclic tree pool, one op = one
  // shared-tree round advancing kBatchBenchWidth lanes in lockstep. The
  // paired metric is ns/op ÷ width vs simApplyTree's ns/op — what the
  // fused decode + lane-contiguous planes buy per replicate round.
  std::vector<RootedTree> trees;
  for (int i = 0; i < 32; ++i) trees.push_back(randomRootedTree(n, rng));
  BatchBroadcastSim sim(n, kBatchBenchWidth);
  std::size_t next = 0;
  auto [reps, secs] = timeLoop(minSeconds, [&] {
    sim.applyTree(trees[next]);
    next = (next + 1) % trees.size();
    if (sim.gossipDone(0)) sim.reset();
    consume(sim.heardCount(0, 0));
  });
  KernelResult r{"batchApplyTree", n, reps, 0.0, 0.0};
  r.nsPerOp = secs * 1e9 / static_cast<double>(reps);
  return r;
}

KernelResult benchFrontierRound(std::size_t n, double minSeconds, Rng& rng) {
  // simApplyTree's sparse twin: the same cyclic tree pool driven through
  // FrontierSim, so the two rows compare the dense O(n²/64) recurrence
  // against the O(active edges) frontier propagation at equal n.
  std::vector<RootedTree> trees;
  for (int i = 0; i < 32; ++i) trees.push_back(randomRootedTree(n, rng));
  FrontierSim sim(n);
  std::size_t next = 0;
  auto [reps, secs] = timeLoop(minSeconds, [&] {
    sim.applyTree(trees[next]);
    next = (next + 1) % trees.size();
    if (sim.gossipDone()) sim.reset();
    consume(sim.heardCount(0));
  });
  KernelResult r{"frontierApplyTree", n, reps, 0.0, 0.0};
  r.nsPerOp = secs * 1e9 / static_cast<double>(reps);
  return r;
}

/// Dense-vs-sparse crossover at one n: wall ms of a full edge-markovian
/// t* run through each backend.
struct FrontierCrossover {
  std::size_t n = 0;
  double denseMs = 0.0;
  double sparseMs = 0.0;
  std::size_t denseRounds = 0;
  std::size_t sparseRounds = 0;
};

FrontierCrossover timeFrontierCrossover(std::size_t n, std::uint64_t seed) {
  // Deliberately above kSparseDenseMirrorMaxN: past the threshold the
  // sparse generator runs its native skip-sampling path (below it,
  // mirror-mode replays the dense RNG stream and would mask the win).
  // Stationary density 16/n keeps the graph sparse at any n while t*
  // stays a handful of rounds.
  char spec[64];
  std::snprintf(spec, sizeof spec, "edge-markovian:p=%.8f,q=0.5",
                8.0 / static_cast<double>(n));
  FrontierCrossover out;
  out.n = n;
  {
    const auto model = DynamicsRegistry::instance().make(spec, n, seed);
    const auto start = Clock::now();
    const BroadcastRun run = runDynamicsBroadcast(n, *model, /*maxRounds=*/64);
    out.denseMs = secondsSince(start) * 1e3;
    out.denseRounds = run.rounds;
  }
  {
    const auto model = DynamicsRegistry::instance().make(spec, n, seed);
    const auto start = Clock::now();
    const BroadcastRun run =
        runFrontierDynamicsBroadcast(n, *model, /*maxRounds=*/64,
                                     /*recordHistory=*/false, seed);
    out.sparseMs = secondsSince(start) * 1e3;
    out.sparseRounds = run.rounds;
  }
  return out;
}

/// End-to-end portfolio sweep timing. Returns wall ms.
double timePortfolioSweep(std::size_t n, std::uint64_t seed,
                          std::size_t* bestRounds) {
  const auto start = Clock::now();
  const PortfolioResult result = runPortfolio(n, seed);
  const double ms = secondsSince(start) * 1e3;
  if (bestRounds != nullptr) *bestRounds = result.bestRounds;
  return ms;
}

/// Batched vs scalar end-to-end engine sweep: the same 8 replicates of
/// three oblivious members at one n, once with batch=off and once with
/// batch=8, at jobs=1 so the ratio isolates batching from thread-pool
/// scheduling. The rows are identical by construction (the batched
/// recurrence is bit-exact), so the harness asserts it.
struct BatchSweepTiming {
  std::size_t n = 0;
  double scalarMs = 0.0;
  double batchedMs = 0.0;
};

BatchSweepTiming timeBatchedSweep(std::size_t n, std::uint64_t seed) {
  SweepSpec spec;
  spec.sizes = {n};
  spec.masterSeed = seed;
  spec.seedsPerSize = kBatchBenchWidth;
  spec.portfolio = [](std::size_t count, std::uint64_t memberSeed) {
    // Static-path dominates the wall time (t* = n − 1 rounds); the
    // alternating and random paths add shared-tree and per-lane-tree
    // rounds so both batched code paths are in the measurement.
    std::vector<PortfolioMember> members;
    members.push_back({"static-path", [count] {
                         return std::unique_ptr<Adversary>(
                             new StaticPathAdversary(count));
                       }});
    members.push_back({"alternating-path", [count] {
                         return std::unique_ptr<Adversary>(
                             new AlternatingPathAdversary(count));
                       }});
    members.push_back({"random-path", [count, memberSeed] {
                         return std::unique_ptr<Adversary>(
                             new RandomPathAdversary(count, memberSeed));
                       }});
    return members;
  };
  ExperimentEngine engine({/*jobs=*/1, /*recordHistory=*/false});
  BatchSweepTiming t;
  t.n = n;
  spec.batch = {BatchPolicy::Mode::kOff, 0};
  std::vector<SweepRow> scalarRows;
  {
    const auto start = Clock::now();
    SweepResult result = engine.runSweep(spec);
    t.scalarMs = secondsSince(start) * 1e3;
    scalarRows = std::move(result.rows);
  }
  spec.batch = {BatchPolicy::Mode::kFixed, kBatchBenchWidth};
  {
    const auto start = Clock::now();
    const SweepResult result = engine.runSweep(spec);
    t.batchedMs = secondsSince(start) * 1e3;
    if (result.rows != scalarRows) {
      std::cerr << "FATAL: batched sweep rows diverged from scalar\n";
      std::exit(1);
    }
    consume(result.rows[0].rounds);
  }
  return t;
}

/// Service throughput: distinct sweep specs pushed through the manifest
/// worker loop against one shared result cache — once cold (every task
/// executes and its record + cache entry are fsynced) and once warm
/// (fresh manifests, every task satisfied from the cache). The specs/s
/// pair is the experiment service's headline number, and the warm:cold
/// ratio is the machine-relative gate: it collapses to ~1 if the cache
/// pre-pass stops short-circuiting execution.
struct ServiceThroughput {
  std::size_t specs = 0;
  double coldMs = 0.0;
  double warmMs = 0.0;

  [[nodiscard]] double coldSpecsPerS() const { return specs * 1e3 / coldMs; }
  [[nodiscard]] double warmSpecsPerS() const { return specs * 1e3 / warmMs; }
  [[nodiscard]] double warmSpeedup() const { return coldMs / warmMs; }
};

ServiceThroughput timeServiceThroughput(const std::string& scratchDir,
                                        std::uint64_t seed, bool quick) {
  std::filesystem::remove_all(scratchDir);
  makeDirectories(scratchDir);
  const std::string cacheDir = scratchDir + "/cache";

  ServiceThroughput t;
  t.specs = quick ? 4 : 8;
  std::vector<ServiceRequest> requests;
  for (std::size_t i = 0; i < t.specs; ++i) {
    // Rooted-tree portfolio rows (real adversary runs, not the cheap
    // graph models) so task cost dwarfs the per-record fsync; the beam
    // pass is disabled — its tasks are minutes, not milliseconds.
    ServiceRequest request;
    request.scenario.sizes = {32, 48};
    request.scenario.seedsPerSize = 2;
    request.scenario.masterSeed = seed + i;  // distinct jobs, no overlap
    request.beamMaxN = 0;
    requests.push_back(request);
  }

  const auto runAll = [&](const char* tag) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const std::string manifest = scratchDir + "/" + tag + "-" +
                                   std::to_string(i) + ".manifest";
      initManifest(manifest, canonicalRequestString(requests[i]),
                   planServiceJob(requests[i]).taskCount());
      WorkerOptions work;
      work.manifestPath = manifest;
      work.cacheDir = cacheDir;
      consume(runManifestWorker(work).executed);
    }
    return secondsSince(start) * 1e3;
  };
  t.coldMs = runAll("cold");
  t.warmMs = runAll("warm");
  std::filesystem::remove_all(scratchDir);
  return t;
}

/// Search-core telemetry: one beam witness search at a FIXED size (same
/// in quick and full mode, so CI's --quick run gates against the same
/// baseline values) plus one short lookahead run for its transposition
/// stats. All gated fields are deterministic counters for a fixed seed,
/// not wall times.
struct SearchTelemetry {
  std::size_t beamN = 48;
  std::size_t beamWidth = 256;
  BeamResult beam;
  double beamMs = 0.0;
  std::uint64_t lookaheadNodes = 0;
  std::uint64_t lookaheadHits = 0;
};

SearchTelemetry timeSearchTelemetry(std::uint64_t seed) {
  SearchTelemetry t;
  BeamConfig cfg;
  cfg.beamWidth = t.beamWidth;
  const auto start = Clock::now();
  t.beam = beamSearchWitness(t.beamN, seed ^ 0xbea3ull, cfg);
  t.beamMs = secondsSince(start) * 1e3;
  LookaheadDelayAdversary lookahead(24, seed ^ 0x10caull, {.depth = 3});
  (void)runAdversary(24, lookahead, defaultRoundCap(24));
  t.lookaheadNodes = lookahead.stats().nodesVisited;
  t.lookaheadHits = lookahead.stats().transpositionHits;
  return t;
}

void writeKernelsJson(const std::string& path,
                      const std::vector<KernelResult>& kernels, bool quick,
                      std::size_t jobs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "cannot write " << path << '\n';
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"dynbcast-bench-kernels/1\",\n");
  std::fprintf(f, "  \"quick\": %s,\n  \"jobs\": %zu,\n",
               quick ? "true" : "false", jobs);
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelResult& k = kernels[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"bits\": %zu, \"reps\": %llu, "
                 "\"ns_per_op\": %.4f, \"gib_per_s\": %.4f}%s\n",
                 k.name.c_str(), k.bits,
                 static_cast<unsigned long long>(k.reps), k.nsPerOp,
                 k.gibPerS, i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::cout << "wrote " << path << '\n';
}

void writeSweepJson(const std::string& path, std::size_t n,
                    std::uint64_t seed, bool quick, double portfolioMs,
                    std::size_t bestRounds, double batchRoundSpeedup,
                    const BatchSweepTiming& batchSweep,
                    double productSpeedup, std::size_t productN,
                    const FrontierCrossover& frontier,
                    const SearchTelemetry& search,
                    const ServiceThroughput& service) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "cannot write " << path << '\n';
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"dynbcast-bench-sweep/1\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"n\": %zu,\n  \"seed\": %llu,\n", n,
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"simd_level\": \"%s\",\n",
               bitword::simdLevelName(bitword::dispatch().level));
  std::fprintf(f, "  \"portfolio_ms\": %.3f,\n", portfolioMs);
  std::fprintf(f, "  \"batch_width\": %zu,\n", kBatchBenchWidth);
  std::fprintf(f, "  \"batch_round_speedup\": %.4f,\n", batchRoundSpeedup);
  std::fprintf(f, "  \"batch_scalar_ms\": %.3f,\n", batchSweep.scalarMs);
  std::fprintf(f, "  \"batch_batched_ms\": %.3f,\n", batchSweep.batchedMs);
  std::fprintf(f, "  \"batch_sweep_speedup\": %.4f,\n",
               batchSweep.scalarMs / batchSweep.batchedMs);
  std::fprintf(f, "  \"product_blocked_speedup\": %.4f,\n", productSpeedup);
  std::fprintf(f, "  \"product_n\": %zu,\n", productN);
  std::fprintf(f, "  \"frontier_n\": %zu,\n", frontier.n);
  std::fprintf(f, "  \"frontier_dense_ms\": %.3f,\n", frontier.denseMs);
  std::fprintf(f, "  \"frontier_sparse_ms\": %.3f,\n", frontier.sparseMs);
  std::fprintf(f, "  \"frontier_sparse_speedup\": %.4f,\n",
               frontier.denseMs / frontier.sparseMs);
  const BeamResult& beam = search.beam;
  std::fprintf(f, "  \"beam_n\": %zu,\n  \"beam_width\": %zu,\n",
               search.beamN, search.beamWidth);
  std::fprintf(f, "  \"beam_rounds\": %zu,\n", beam.rounds);
  std::fprintf(f, "  \"beam_unique_states\": %llu,\n",
               static_cast<unsigned long long>(beam.uniqueStates));
  std::fprintf(f, "  \"beam_moves_generated\": %llu,\n",
               static_cast<unsigned long long>(beam.movesGenerated));
  std::fprintf(f, "  \"beam_eval_dedup_ratio\": %.4f,\n",
               beam.uniqueStates != 0
                   ? static_cast<double>(beam.movesGenerated) /
                         static_cast<double>(beam.uniqueStates)
                   : 0.0);
  std::fprintf(f, "  \"transposition_hit_rate\": %.4f,\n",
               beam.statesExpanded != 0
                   ? static_cast<double>(beam.transpositionHits) /
                         static_cast<double>(beam.statesExpanded)
                   : 0.0);
  std::fprintf(f, "  \"beam_hash_collisions\": %llu,\n",
               static_cast<unsigned long long>(beam.hashCollisions));
  std::fprintf(f, "  \"beam_arena_peak_nodes\": %zu,\n",
               beam.arenaPeakNodes);
  std::fprintf(f, "  \"beam_ms\": %.3f,\n", search.beamMs);
  std::fprintf(f, "  \"lookahead_nodes\": %llu,\n",
               static_cast<unsigned long long>(search.lookaheadNodes));
  std::fprintf(f, "  \"lookahead_tt_hit_rate\": %.4f,\n",
               search.lookaheadNodes != 0
                   ? static_cast<double>(search.lookaheadHits) /
                         static_cast<double>(search.lookaheadNodes)
                   : 0.0);
  std::fprintf(f, "  \"service_specs\": %zu,\n", service.specs);
  std::fprintf(f, "  \"service_cold_ms\": %.3f,\n", service.coldMs);
  std::fprintf(f, "  \"service_warm_ms\": %.3f,\n", service.warmMs);
  std::fprintf(f, "  \"service_cold_specs_per_s\": %.4f,\n",
               service.coldSpecsPerS());
  std::fprintf(f, "  \"service_warm_specs_per_s\": %.4f,\n",
               service.warmSpecsPerS());
  std::fprintf(f, "  \"service_warm_speedup\": %.4f,\n",
               service.warmSpeedup());
  std::fprintf(f, "  \"best_rounds\": %zu\n}\n", bestRounds);
  std::fclose(f);
  std::cout << "wrote " << path << '\n';
}

}  // namespace
}  // namespace dynbcast

int main(int argc, char** argv) {
  using namespace dynbcast;
  BenchDriver driver(argc, argv, "256", 1);
  const bool quick = driver.options().getBool("quick", false);
  const std::string outDir = driver.options().getString("out", ".");
  const std::size_t sweepN =
      driver.options().getUInt("sweep-n", quick ? 96 : 256);
  const double minSeconds = quick ? 0.05 : 0.25;

  driver.printHeader("PERF — kernel throughput + portfolio sweep telemetry");
  std::cout << "simd dispatch: "
            << bitword::simdLevelName(bitword::dispatch().level)
            << " (set DYNBCAST_FORCE_SCALAR=1 to disable)\n\n";
  Rng rng(driver.seed());

  // --- kernels ---------------------------------------------------------
  std::vector<KernelResult> kernels;
  const std::vector<std::size_t> bitSizes =
      quick ? std::vector<std::size_t>{256, 1024}
            : std::vector<std::size_t>{256, 1024, 4096};
  for (const std::size_t bits : bitSizes) {
    kernels.push_back(benchOrAssign(bits, minSeconds, rng));
    kernels.push_back(benchOrCount(bits, minSeconds, rng));
    kernels.push_back(benchIntersectAny(bits, minSeconds, rng));
  }
  const std::size_t productN = quick ? 128 : 256;
  const std::vector<KernelResult> products =
      benchProduct(productN, minSeconds, rng);
  kernels.insert(kernels.end(), products.begin(), products.end());
  const double productSpeedup =
      products[0].nsPerOp / products[1].nsPerOp;  // naive / blocked
  kernels.push_back(benchSimRound(sweepN, minSeconds, rng));
  const KernelResult simRound = kernels.back();
  kernels.push_back(benchBatchRound(sweepN, minSeconds, rng));
  const KernelResult batchRound = kernels.back();
  kernels.push_back(benchFrontierRound(sweepN, minSeconds, rng));
  // Per-replicate round speedup: a batched op advances width lanes.
  const double batchRoundSpeedup =
      simRound.nsPerOp * static_cast<double>(kBatchBenchWidth) /
      batchRound.nsPerOp;

  TextTable kernelTable({"kernel", "bits/n", "reps", "ns/op", "GiB/s"});
  for (const KernelResult& k : kernels) {
    kernelTable.row()
        .add(k.name)
        .add(static_cast<std::uint64_t>(k.bits))
        .add(static_cast<std::uint64_t>(k.reps))
        .add(k.nsPerOp, 2)
        .add(k.gibPerS, 2);
  }

  // --- end-to-end sweeps: thm31 portfolio + batched vs scalar ----------
  std::size_t bestRounds = 0;
  const double portfolioMs =
      timePortfolioSweep(sweepN, driver.seed(), &bestRounds);
  const BatchSweepTiming batchSweep =
      timeBatchedSweep(sweepN, driver.seed());
  TextTable sweepTable({"n", "portfolio ms", "best t*", "scalar ms",
                        "batched ms", "batch speedup"});
  sweepTable.row()
      .add(static_cast<std::uint64_t>(sweepN))
      .add(portfolioMs, 1)
      .add(static_cast<std::uint64_t>(bestRounds))
      .add(batchSweep.scalarMs, 1)
      .add(batchSweep.batchedMs, 1)
      .add(batchSweep.scalarMs / batchSweep.batchedMs, 2);

  // --- search core: beam witness + lookahead transposition telemetry -
  const SearchTelemetry search = timeSearchTelemetry(driver.seed());
  TextTable searchTable({"search", "n", "rounds", "unique", "generated",
                         "tt hits", "arena peak", "ms"});
  searchTable.row()
      .add(std::string("beam:w=") + std::to_string(search.beamWidth))
      .add(static_cast<std::uint64_t>(search.beamN))
      .add(static_cast<std::uint64_t>(search.beam.rounds))
      .add(search.beam.uniqueStates)
      .add(search.beam.movesGenerated)
      .add(search.beam.transpositionHits)
      .add(static_cast<std::uint64_t>(search.beam.arenaPeakNodes))
      .add(search.beamMs, 1);

  // --- experiment service: specs/s through the worker loop, cold/warm -
  const ServiceThroughput service = timeServiceThroughput(
      outDir + "/BENCH_service_scratch", driver.seed(), quick);
  TextTable serviceTable({"specs", "cold ms", "warm ms", "cold specs/s",
                          "warm specs/s", "warm speedup"});
  serviceTable.row()
      .add(static_cast<std::uint64_t>(service.specs))
      .add(service.coldMs, 1)
      .add(service.warmMs, 1)
      .add(service.coldSpecsPerS(), 2)
      .add(service.warmSpecsPerS(), 2)
      .add(service.warmSpeedup(), 2);

  // --- dense vs sparse backend crossover (above the mirror threshold) -
  const std::size_t frontierN = quick ? 4608 : 8192;
  const FrontierCrossover frontier =
      timeFrontierCrossover(frontierN, driver.seed());
  TextTable frontierTable(
      {"n", "dense ms", "sparse ms", "speedup", "dense t*", "sparse t*"});
  frontierTable.row()
      .add(static_cast<std::uint64_t>(frontier.n))
      .add(frontier.denseMs, 1)
      .add(frontier.sparseMs, 1)
      .add(frontier.denseMs / frontier.sparseMs, 2)
      .add(static_cast<std::uint64_t>(frontier.denseRounds))
      .add(static_cast<std::uint64_t>(frontier.sparseRounds));

  // Only the kernel table goes through emit (and thus --csv); the sweep
  // numbers live in BENCH_sweep.json, which is the machine-readable copy.
  driver.emit(kernelTable);
  std::cout << '\n' << sweepTable.render() << '\n';
  std::cout << '\n' << searchTable.render() << '\n';
  std::cout << '\n' << serviceTable.render() << '\n';
  std::cout << '\n' << frontierTable.render() << '\n';

  writeKernelsJson(outDir + "/BENCH_kernels.json", kernels, quick,
                   driver.jobs());
  writeSweepJson(outDir + "/BENCH_sweep.json", sweepN, driver.seed(), quick,
                 portfolioMs, bestRounds, batchRoundSpeedup, batchSweep,
                 productSpeedup, productN, frontier, search, service);
  return 0;
}
