// SEC2-PATH: the model sanity curves stated in the paper's §2 —
//   * repeating one path costs exactly n−1 rounds;
//   * repeating any fixed tree costs its height;
//   * nothing exceeds the trivial n² bound;
// plus random-environment baselines (§5's non-adversarial setting).
//
// Usage: static_adversaries [--sizes=4:1024:2] [--seed=1] [--trials=5]
#include <iostream>

#include "src/adversary/oblivious.h"
#include "src/bounds/bounds.h"
#include "src/support/options.h"
#include "src/support/rng.h"
#include "src/support/table.h"
#include "src/tree/generators.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const auto sizes = parseSizeList(opts.getString("sizes", "4:1024:2"));
  const std::uint64_t seed = opts.getUInt("seed", 1);
  const std::size_t trials = opts.getUInt("trials", 5);

  std::cout << "SEC2 — static and random baselines (seed=" << seed << ")\n\n";

  TextTable table({"n", "static path t*", "expected n-1", "random tree t*",
                   "random path t*", "alternating t*", "trivial cap n^2"});
  Rng rng(seed);
  for (const std::size_t n : sizes) {
    StaticPathAdversary path(n);
    const BroadcastRun pathRun = runAdversary(n, path, defaultRoundCap(n));

    // Random adversaries: average a few trials.
    double randomTreeAvg = 0, randomPathAvg = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      UniformRandomAdversary rt(n, rng());
      RandomPathAdversary rp(n, rng());
      randomTreeAvg += static_cast<double>(
          runAdversary(n, rt, defaultRoundCap(n)).rounds);
      randomPathAvg += static_cast<double>(
          runAdversary(n, rp, defaultRoundCap(n)).rounds);
    }
    randomTreeAvg /= static_cast<double>(trials);
    randomPathAvg /= static_cast<double>(trials);

    AlternatingPathAdversary alt(n);
    const BroadcastRun altRun = runAdversary(n, alt, defaultRoundCap(n));

    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(static_cast<std::uint64_t>(pathRun.rounds))
        .add(static_cast<std::uint64_t>(n - 1))
        .add(randomTreeAvg, 1)
        .add(randomPathAvg, 1)
        .add(static_cast<std::uint64_t>(altRun.rounds))
        .add(bounds::trivialUpper(n));
  }
  std::cout << table.render() << '\n';
  std::cout << "reading: the static-path column must equal n-1 exactly "
               "(paper §2); random environments are far below worst case "
               "(§5); everything is far below the trivial n^2.\n";
  return 0;
}
