// SEC2-PATH: the model sanity curves stated in the paper's §2 —
//   * repeating one path costs exactly n−1 rounds;
//   * repeating any fixed tree costs its height;
//   * nothing exceeds the trivial n² bound;
// plus random-environment baselines (§5's non-adversarial setting).
//
// One engine task per size; adversaries are registry spec strings, and
// random trials inside a task draw from that task's position-derived
// Rng, so every cell is --jobs-independent.
//
// Usage: static_adversaries [--sizes=4:1024:2] [--seed=1] [--trials=5]
//                           [--jobs=N] [--csv=path]
#include <iostream>
#include <memory>

#include "bench/driver.h"
#include "src/adversary/registry.h"
#include "src/bounds/bounds.h"
#include "src/support/rng.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  BenchDriver driver(argc, argv, "4:1024:2", 1);
  const std::size_t trials = driver.options().getUInt("trials", 5);

  driver.printHeader("SEC2 — static and random baselines");

  struct Row {
    std::size_t pathRounds = 0;
    double randomTreeAvg = 0;
    double randomPathAvg = 0;
    std::size_t altRounds = 0;
  };
  const std::vector<std::size_t>& sizes = driver.sizes();
  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  const auto rows = driver.engine().map<Row>(
      sizes.size(), driver.seed(),
      [&](std::size_t i, std::uint64_t taskSeed) {
        const std::size_t n = sizes[i];
        const auto runSpec = [&](const std::string& spec,
                                 std::uint64_t seed) {
          const auto adversary = registry.make(spec, n, seed);
          return runAdversary(n, *adversary, defaultRoundCap(n)).rounds;
        };
        Row row;
        row.pathRounds = runSpec("static-path", taskSeed);

        // Random adversaries: average a few trials.
        Rng rng(taskSeed);
        for (std::size_t t = 0; t < trials; ++t) {
          row.randomTreeAvg +=
              static_cast<double>(runSpec("random-tree", rng()));
          row.randomPathAvg +=
              static_cast<double>(runSpec("random-path", rng()));
        }
        row.randomTreeAvg /= static_cast<double>(trials);
        row.randomPathAvg /= static_cast<double>(trials);

        row.altRounds = runSpec("alternating-path", taskSeed);
        return row;
      });

  TextTable table({"n", "static path t*", "expected n-1", "random tree t*",
                   "random path t*", "alternating t*", "trivial cap n^2"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const Row& row = rows[i];
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(static_cast<std::uint64_t>(row.pathRounds))
        .add(static_cast<std::uint64_t>(n - 1))
        .add(row.randomTreeAvg, 1)
        .add(row.randomPathAvg, 1)
        .add(static_cast<std::uint64_t>(row.altRounds))
        .add(bounds::trivialUpper(n));
  }
  driver.emit(table);
  std::cout << "reading: the static-path column must equal n-1 exactly "
               "(paper §2); random environments are far below worst case "
               "(§5); everything is far below the trivial n^2.\n";
  return 0;
}
