// SEC4-NONSPLIT: the machinery behind the pre-paper O(n log log n) bound —
//   (a) broadcast under nonsplit adversaries is logarithmic [2]/[9];
//   (b) the product of n−1 rooted trees is nonsplit [1], and random
//       sequences usually get there much earlier.
//
// Usage: nonsplit_reduction [--sizes=8:2048:2] [--seed=1] [--trials=10]
#include <iostream>

#include "src/bounds/bounds.h"
#include "src/nonsplit/nonsplit.h"
#include "src/nonsplit/reduction.h"
#include "src/support/options.h"
#include "src/support/rng.h"
#include "src/support/table.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const auto sizes = parseSizeList(opts.getString("sizes", "8:2048:2"));
  const std::uint64_t seed = opts.getUInt("seed", 1);
  const std::size_t trials = opts.getUInt("trials", 10);
  Rng rng(seed);

  std::cout << "SEC4 — nonsplit adversaries and the tree-product reduction "
               "(seed=" << seed << ")\n\n";

  std::cout << "(a) broadcast under nonsplit adversaries vs ceil(log2 n):\n";
  TextTable logTable({"n", "random nonsplit t*", "skewed nonsplit t*",
                      "ceil(log2 n)"});
  for (const std::size_t n : sizes) {
    double randAvg = 0, skewAvg = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      randAvg += static_cast<double>(
          runNonsplitBroadcast(
              n, [n](Rng& r) { return randomNonsplitGraph(n, 2 * n, r); },
              bounds::nonsplitLogUpper(n) + 8, rng)
              .rounds);
      skewAvg += static_cast<double>(
          runNonsplitBroadcast(
              n, [n](Rng& r) { return skewedNonsplitGraph(n, r); },
              bounds::nonsplitLogUpper(n) + 8, rng)
              .rounds);
    }
    logTable.row()
        .add(static_cast<std::uint64_t>(n))
        .add(randAvg / static_cast<double>(trials), 2)
        .add(skewAvg / static_cast<double>(trials), 2)
        .add(bounds::nonsplitLogUpper(n));
  }
  std::cout << logTable.render() << '\n';

  std::cout << "(b) rounds of rooted trees until the product is nonsplit "
               "(lemma of [1]: never more than n-1):\n";
  TextTable redTable({"n", "random trees avg prefix", "random paths avg",
                      "static path (worst case)", "bound n-1"});
  for (const std::size_t n : sizes) {
    if (n > 512) break;  // prefix scan is O(n^3) per trial; keep it snappy
    double treeAvg = 0, pathAvg = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      std::vector<RootedTree> trees, paths;
      for (std::size_t i = 0; i + 1 < n; ++i) {
        trees.push_back(randomRootedTree(n, rng));
        paths.push_back(randomPath(n, rng));
      }
      treeAvg += static_cast<double>(nonsplitPrefixLength(trees));
      pathAvg += static_cast<double>(nonsplitPrefixLength(paths));
    }
    std::vector<RootedTree> worst(n - 1, makePath(n));
    redTable.row()
        .add(static_cast<std::uint64_t>(n))
        .add(treeAvg / static_cast<double>(trials), 2)
        .add(pathAvg / static_cast<double>(trials), 2)
        .add(static_cast<std::uint64_t>(nonsplitPrefixLength(worst)))
        .add(static_cast<std::uint64_t>(n - 1));
  }
  std::cout << redTable.render() << '\n';
  std::cout << "reading: (a) every nonsplit run is within the ceil(log2 n) "
               "bound of [2]; random instances are far faster (dense "
               "common-in-neighbor structure) — the Theta(log log n)-tight "
               "instances of [9] need their bespoke construction, which is "
               "out of scope (see EXPERIMENTS.md). (b) static paths realize "
               "the n-1 worst case of the reduction of [1] exactly, while "
               "random sequences become nonsplit after ~log2 n rounds.\n";
  return 0;
}
