// SEC4-NONSPLIT: the machinery behind the pre-paper O(n log log n) bound —
//   (a) broadcast under nonsplit adversaries is logarithmic [2]/[9];
//   (b) the product of n−1 rooted trees is nonsplit [1], and random
//       sequences usually get there much earlier.
//
// One engine task per size computes both parts for that n; trials inside
// a task draw from its position-derived Rng.
//
// Usage: nonsplit_reduction [--sizes=8:2048:2] [--seed=1] [--trials=10]
//                           [--jobs=N] [--csv=path]
#include <iostream>

#include "bench/driver.h"
#include "src/bounds/bounds.h"
#include "src/nonsplit/nonsplit.h"
#include "src/nonsplit/reduction.h"
#include "src/support/rng.h"
#include "src/support/table.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  BenchDriver driver(argc, argv, "8:2048:2", 1);
  const std::size_t trials = driver.options().getUInt("trials", 10);

  driver.printHeader(
      "SEC4 — nonsplit adversaries and the tree-product reduction");

  struct Row {
    double randAvg = 0, skewAvg = 0;
    // Part (b) — only for n <= 512 (prefix scan is O(n^3) per trial).
    bool reduction = false;
    double treeAvg = 0, pathAvg = 0;
    std::size_t worstPrefix = 0;
  };
  const std::vector<std::size_t>& sizes = driver.sizes();
  const auto rows = driver.engine().map<Row>(
      sizes.size(), driver.seed(),
      [&](std::size_t i, std::uint64_t taskSeed) {
        const std::size_t n = sizes[i];
        Row row;
        Rng rng(taskSeed);
        for (std::size_t t = 0; t < trials; ++t) {
          row.randAvg += static_cast<double>(
              runNonsplitBroadcast(
                  n, [n](Rng& r) { return randomNonsplitGraph(n, 2 * n, r); },
                  bounds::nonsplitLogUpper(n) + 8, rng)
                  .rounds);
          row.skewAvg += static_cast<double>(
              runNonsplitBroadcast(
                  n, [n](Rng& r) { return skewedNonsplitGraph(n, r); },
                  bounds::nonsplitLogUpper(n) + 8, rng)
                  .rounds);
        }
        row.randAvg /= static_cast<double>(trials);
        row.skewAvg /= static_cast<double>(trials);

        if (n <= 512) {
          row.reduction = true;
          for (std::size_t t = 0; t < trials; ++t) {
            std::vector<RootedTree> trees, paths;
            for (std::size_t j = 0; j + 1 < n; ++j) {
              trees.push_back(randomRootedTree(n, rng));
              paths.push_back(randomPath(n, rng));
            }
            row.treeAvg += static_cast<double>(nonsplitPrefixLength(trees));
            row.pathAvg += static_cast<double>(nonsplitPrefixLength(paths));
          }
          row.treeAvg /= static_cast<double>(trials);
          row.pathAvg /= static_cast<double>(trials);
          const std::vector<RootedTree> worst(n - 1, makePath(n));
          row.worstPrefix = nonsplitPrefixLength(worst);
        }
        return row;
      });

  std::cout << "(a) broadcast under nonsplit adversaries vs ceil(log2 n):\n";
  TextTable logTable({"n", "random nonsplit t*", "skewed nonsplit t*",
                      "ceil(log2 n)"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    logTable.row()
        .add(static_cast<std::uint64_t>(sizes[i]))
        .add(rows[i].randAvg, 2)
        .add(rows[i].skewAvg, 2)
        .add(bounds::nonsplitLogUpper(sizes[i]));
  }
  driver.emit(logTable);

  std::cout << "(b) rounds of rooted trees until the product is nonsplit "
               "(lemma of [1]: never more than n-1):\n";
  TextTable redTable({"n", "random trees avg prefix", "random paths avg",
                      "static path (worst case)", "bound n-1"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (!rows[i].reduction) continue;
    redTable.row()
        .add(static_cast<std::uint64_t>(sizes[i]))
        .add(rows[i].treeAvg, 2)
        .add(rows[i].pathAvg, 2)
        .add(static_cast<std::uint64_t>(rows[i].worstPrefix))
        .add(static_cast<std::uint64_t>(sizes[i] - 1));
  }
  std::cout << redTable.render() << '\n';
  std::cout << "reading: (a) every nonsplit run is within the ceil(log2 n) "
               "bound of [2]; random instances are far faster (dense "
               "common-in-neighbor structure) — the Theta(log log n)-tight "
               "instances of [9] need their bespoke construction, which is "
               "out of scope (see EXPERIMENTS.md). (b) static paths realize "
               "the n-1 worst case of the reduction of [1] exactly, while "
               "random sequences become nonsplit after ~log2 n rounds.\n";
  return 0;
}
