// SEC4-RESTRICTED: the restricted adversary classes of [14] that the paper
// cites in Figure 1 — trees with exactly k leaves or exactly k inner
// nodes. Broadcast under either class is O(kn); measured times should
// grow linearly in n for fixed k and stay far below the unrestricted
// upper bound once k ≪ n.
//
// One engine task per (n, k) cell, seeds derived by position. The cell's
// four adversaries are registry spec strings composed from (n, k) —
// scenarios as data, so adding a class member is editing a string.
//
// Usage: restricted_adversaries [--sizes=16:512:2] [--ks=2,3,4,8]
//                               [--seed=1] [--jobs=N] [--csv=path]
#include <iostream>
#include <memory>

#include "bench/driver.h"
#include "src/adversary/registry.h"
#include "src/bounds/bounds.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  BenchDriver driver(argc, argv, "16:512:2", 1);
  const auto ks = parseSizeList(driver.options().getString("ks", "2,3,4,8"));

  driver.printHeader("SEC4 — restricted adversaries of [14]");

  struct Row {
    bool valid = false;
    std::size_t leaf = 0, inner = 0, delayLeaf = 0, delayInner = 0;
  };
  const std::vector<std::size_t>& sizes = driver.sizes();
  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  const auto rows = driver.engine().map<Row>(
      sizes.size() * ks.size(), driver.seed(),
      [&](std::size_t i, std::uint64_t taskSeed) {
        const std::size_t n = sizes[i / ks.size()];
        const std::size_t k = ks[i % ks.size()];
        Row row;
        if (k >= n) return row;
        row.valid = true;
        // Cap generously: the O(kn) bound plus slack.
        const std::size_t cap = bounds::kLeafUpper(n, k) + 4 * n;
        const auto runSpec = [&](const std::string& spec) {
          const auto adversary = registry.make(spec, n, taskSeed);
          return runAdversary(n, *adversary, cap).rounds;
        };
        const std::string kText = std::to_string(k);
        row.leaf = runSpec("k-leaf:k=" + kText);
        row.inner = runSpec("k-inner:k=" + kText);
        // Delaying members of each class: a broom with handle n−k has
        // exactly k leaves; a broom with handle k has exactly k inner
        // nodes.
        row.delayLeaf =
            runSpec("freeze-broom:handle=" + std::to_string(n - k));
        row.delayInner = runSpec("freeze-broom:handle=" + kText);
        return row;
      });

  TextTable table({"n", "k", "random k-leaf t*", "random k-inner t*",
                   "delaying k-leaf t*", "delaying k-inner t*",
                   "O(kn) bound", "unrestricted UB"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].valid) continue;
    const std::size_t n = sizes[i / ks.size()];
    const std::size_t k = ks[i % ks.size()];
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(static_cast<std::uint64_t>(k))
        .add(static_cast<std::uint64_t>(rows[i].leaf))
        .add(static_cast<std::uint64_t>(rows[i].inner))
        .add(static_cast<std::uint64_t>(rows[i].delayLeaf))
        .add(static_cast<std::uint64_t>(rows[i].delayInner))
        .add(bounds::kLeafUpper(n, k))
        .add(bounds::linearUpper(n));
  }
  driver.emit(table);
  std::cout << "reading: random members of either class broadcast in "
               "O(log n) — restriction alone is not slowness. The delaying "
               "members realize the linear regime: the k-leaf column grows "
               "like n-k (handle length), staying within [14]'s O(kn) "
               "bound, while the k-inner delayer is capped near its height "
               "k. Worst cases in both classes are linear for constant k.\n";
  return 0;
}
