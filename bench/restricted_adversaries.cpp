// SEC4-RESTRICTED: the restricted adversary classes of [14] that the paper
// cites in Figure 1 — trees with exactly k leaves or exactly k inner
// nodes. Broadcast under either class is O(kn); measured times should
// grow linearly in n for fixed k and stay far below the unrestricted
// upper bound once k ≪ n.
//
// Usage: restricted_adversaries [--sizes=16:512:2] [--ks=2,3,4,8] [--seed=1]
#include <iostream>

#include "src/adversary/adaptive.h"
#include "src/adversary/oblivious.h"
#include "src/bounds/bounds.h"
#include "src/support/options.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const auto sizes = parseSizeList(opts.getString("sizes", "16:512:2"));
  const auto ks = parseSizeList(opts.getString("ks", "2,3,4,8"));
  const std::uint64_t seed = opts.getUInt("seed", 1);

  std::cout << "SEC4 — restricted adversaries of [14] (seed=" << seed
            << ")\n\n";

  TextTable table({"n", "k", "random k-leaf t*", "random k-inner t*",
                   "delaying k-leaf t*", "delaying k-inner t*",
                   "O(kn) bound", "unrestricted UB"});
  for (const std::size_t n : sizes) {
    for (const std::size_t k : ks) {
      if (k >= n) continue;
      KLeafAdversary leaf(n, k, seed);
      KInnerAdversary inner(n, k, seed ^ 0xabcdull);
      // Delaying members of each class: a broom with handle n−k has
      // exactly k leaves; a broom with handle k has exactly k inner nodes.
      FreezeBroomAdversary delayLeaf(n, n - k);
      FreezeBroomAdversary delayInner(n, k);
      // Cap generously: the O(kn) bound plus slack.
      const std::size_t cap = bounds::kLeafUpper(n, k) + 4 * n;
      const BroadcastRun leafRun = runAdversary(n, leaf, cap);
      const BroadcastRun innerRun = runAdversary(n, inner, cap);
      const BroadcastRun delayLeafRun = runAdversary(n, delayLeaf, cap);
      const BroadcastRun delayInnerRun = runAdversary(n, delayInner, cap);
      table.row()
          .add(static_cast<std::uint64_t>(n))
          .add(static_cast<std::uint64_t>(k))
          .add(static_cast<std::uint64_t>(leafRun.rounds))
          .add(static_cast<std::uint64_t>(innerRun.rounds))
          .add(static_cast<std::uint64_t>(delayLeafRun.rounds))
          .add(static_cast<std::uint64_t>(delayInnerRun.rounds))
          .add(bounds::kLeafUpper(n, k))
          .add(bounds::linearUpper(n));
    }
  }
  std::cout << table.render() << '\n';
  std::cout << "reading: random members of either class broadcast in "
               "O(log n) — restriction alone is not slowness. The delaying "
               "members realize the linear regime: the k-leaf column grows "
               "like n-k (handle length), staying within [14]'s O(kn) "
               "bound, while the k-inner delayer is capped near its height "
               "k. Worst cases in both classes are linear for constant k.\n";
  return 0;
}
