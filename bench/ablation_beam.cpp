// ABLATION: which ingredients make the beam-search witness finder beat
// the static-path baseline? DESIGN.md calls out three design choices —
// structured (damage-greedy) moves, noise on their weights, and
// diversity-preserving pruning. Each is removed in turn.
//
// Expected shape: the full configuration dominates; removing structured
// moves hurts most (random trees are weak moves); removing noise
// collapses exploration onto a few deterministic trees; removing
// diversity lets the potential-elite corridor (≈ static path, value n−1)
// take over the beam.
//
// Usage: ablation_beam [--sizes=8,12,16] [--seed=7] [--beam=128]
#include <iostream>

#include "src/adversary/beam.h"
#include "src/bounds/bounds.h"
#include "src/support/options.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const auto sizes = parseSizeList(opts.getString("sizes", "8,12,16"));
  const std::uint64_t seed = opts.getUInt("seed", 7);
  const std::size_t beamWidth = opts.getUInt("beam", 128);

  struct Variant {
    const char* name;
    BeamConfig config;
  };
  BeamConfig full;
  full.beamWidth = beamWidth;
  full.randomMovesPerState = 6;
  full.diversityPercent = 30;

  BeamConfig noStructured = full;
  noStructured.structuredMoves = false;

  BeamConfig noNoise = full;
  noNoise.noiseAmplitude = 0.0;

  BeamConfig noDiversity = full;
  noDiversity.diversityPercent = 0;

  const Variant variants[] = {
      {"full", full},
      {"no structured moves", noStructured},
      {"no weight noise", noNoise},
      {"no diversity slots", noDiversity},
  };

  std::cout << "ABLATION — beam witness search ingredients (seed=" << seed
            << ", beam=" << beamWidth << ")\n\n";

  TextTable table({"n", "variant", "witness t*", "verified", "static n-1",
                   "lower bound"});
  for (const std::size_t n : sizes) {
    for (const Variant& v : variants) {
      const BeamResult r = beamSearchWitness(n, seed, v.config);
      const std::size_t verified = verifyWitness(n, r.witness);
      table.row()
          .add(static_cast<std::uint64_t>(n))
          .add(v.name)
          .add(static_cast<std::uint64_t>(r.rounds))
          .add(verified == r.rounds ? "yes" : "MISMATCH")
          .add(static_cast<std::uint64_t>(n - 1))
          .add(bounds::lowerBound(n));
    }
  }
  std::cout << table.render() << '\n';
  std::cout << "reading: structured damage-greedy moves are decisive — "
               "without them the beam cannot even reach the static "
               "baseline; weight noise adds 1-2 further rounds of delay; "
               "diversity slots are neutral at these sizes (kept for "
               "larger n, where pure elitism collapses the beam into the "
               "static-path corridor).\n";
  return 0;
}
