// ABLATION: which ingredients make the beam-search witness finder beat
// the static-path baseline? DESIGN.md calls out three design choices —
// structured (damage-greedy) moves, noise on their weights, and
// diversity-preserving pruning. Each is removed in turn.
//
// Expected shape: the full configuration dominates; removing structured
// moves hurts most (random trees are weak moves); removing noise
// collapses exploration onto a few deterministic trees; removing
// diversity lets the potential-elite corridor (≈ static path, value n−1)
// take over the beam.
//
// Each (n, variant) search is one engine task; every variant of a given
// n shares that size's derived seed, so the comparison stays head-to-head
// at any --jobs value.
//
// Usage: ablation_beam [--sizes=8,12,16] [--seed=7] [--beam=128] [--jobs=N]
#include <iostream>

#include "bench/driver.h"
#include "src/adversary/beam.h"
#include "src/bounds/bounds.h"
#include "src/support/seed_sequence.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  BenchDriver driver(argc, argv, "8,12,16", 7);
  const std::size_t beamWidth = driver.options().getUInt("beam", 128);

  struct Variant {
    const char* name;
    BeamConfig config;
  };
  BeamConfig full;
  full.beamWidth = beamWidth;
  full.randomMovesPerState = 6;
  full.diversityPercent = 30;

  BeamConfig noStructured = full;
  noStructured.structuredMoves = false;

  BeamConfig noNoise = full;
  noNoise.noiseAmplitude = 0.0;

  BeamConfig noDiversity = full;
  noDiversity.diversityPercent = 0;

  const Variant variants[] = {
      {"full", full},
      {"no structured moves", noStructured},
      {"no weight noise", noNoise},
      {"no diversity slots", noDiversity},
  };
  const std::size_t variantCount = std::size(variants);

  driver.printHeader("ABLATION — beam witness search ingredients (beam=" +
                     std::to_string(beamWidth) + ")");

  struct Row {
    std::size_t rounds = 0;
    std::size_t verified = 0;
  };
  const std::vector<std::size_t>& sizes = driver.sizes();
  const SeedSequence perSize(driver.seed());
  const auto rows = driver.engine().map<Row>(
      sizes.size() * variantCount, driver.seed(),
      [&](std::size_t i, std::uint64_t) {
        const std::size_t s = i / variantCount;
        const std::size_t v = i % variantCount;
        // All variants of one n share the size's seed (fair comparison).
        const BeamResult r =
            beamSearchWitness(sizes[s], perSize.at(s), variants[v].config);
        return Row{r.rounds, verifyWitness(sizes[s], r.witness)};
      });

  TextTable table({"n", "variant", "witness t*", "verified", "static n-1",
                   "lower bound"});
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const std::size_t n = sizes[s];
    for (std::size_t v = 0; v < variantCount; ++v) {
      const Row& r = rows[s * variantCount + v];
      table.row()
          .add(static_cast<std::uint64_t>(n))
          .add(variants[v].name)
          .add(static_cast<std::uint64_t>(r.rounds))
          .add(r.verified == r.rounds ? "yes" : "MISMATCH")
          .add(static_cast<std::uint64_t>(n - 1))
          .add(bounds::lowerBound(n));
    }
  }
  driver.emit(table);
  std::cout << "reading: structured damage-greedy moves are decisive — "
               "without them the beam cannot even reach the static "
               "baseline; weight noise adds 1-2 further rounds of delay; "
               "diversity slots are neutral at these sizes (kept for "
               "larger n, where pure elitism collapses the beam into the "
               "static-path corridor).\n";
  return 0;
}
