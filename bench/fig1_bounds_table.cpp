// FIG1: regenerates Figure 1 of the paper — the upper-bound landscape —
// as evaluated curves over n, plus the restricted-adversary O(kn) entries.
//
//   Trivial   [14]        [9]                New
//   n²        n log n     O(n log log n)     (1+√2)n
//             k leaves:  O(kn)
//             k inner:   O(kn)
//
// Pure closed forms — nothing to parallelize — but the CLI surface
// (--sizes/--csv) is the shared bench driver's.
//
// Usage: fig1_bounds_table [--sizes=8:4096:2] [--ks=2,4,8] [--csv=path]
#include <iostream>

#include "bench/driver.h"
#include "src/bounds/bounds.h"
#include "src/support/table.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  BenchDriver driver(argc, argv, "8:4096:2", 1);
  const auto ks = parseSizeList(driver.options().getString("ks", "2,4,8"));

  std::cout << "FIG1 — upper-bound landscape (paper Figure 1)\n"
            << "columns: trivial n^2 | (n-1)ceil(log2 n) [14 via 1+2] | "
               "2n loglog n + 2n [9] | ceil((1+sqrt2)n - 1) [this paper] | "
               "lower bound ceil((3n-1)/2)-2 [14]\n\n";

  TextTable table({"n", "trivial n^2", "n log n", "2n loglog n + O(n)",
                   "(1+sqrt2)n (new)", "lower bound"});
  for (const std::size_t n : driver.sizes()) {
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(bounds::trivialUpper(n))
        .add(bounds::nLogNUpper(n))
        .add(bounds::nLogLogUpper(n), 1)
        .add(bounds::linearUpper(n))
        .add(bounds::lowerBound(n));
  }
  driver.emit(table);

  std::cout << "restricted adversaries [14] (O(kn), evaluated as k*n):\n";
  TextTable restricted({"n", "k", "k-leaf bound", "k-inner bound"});
  for (const std::size_t n : driver.sizes()) {
    for (const std::size_t k : ks) {
      if (k >= n) continue;
      restricted.row()
          .add(static_cast<std::uint64_t>(n))
          .add(static_cast<std::uint64_t>(k))
          .add(bounds::kLeafUpper(n, k))
          .add(bounds::kInnerUpper(n, k));
    }
  }
  std::cout << restricted.render() << '\n';

  std::cout << "crossover check: the new linear bound beats [9] for all "
               "printed n, and beats n log n everywhere above n = 8.\n";
  return 0;
}
