#include "bench/driver.h"

#include <iostream>

#include "src/analysis/csv.h"

namespace dynbcast {

namespace {

EngineConfig configFrom(const Options& opts) {
  EngineConfig config;
  config.jobs = opts.getUInt("jobs", 0);  // 0 = all hardware threads
  return config;
}

}  // namespace

BenchDriver::BenchDriver(int argc, const char* const* argv,
                         const std::string& defaultSizes,
                         std::uint64_t defaultSeed)
    : opts_(argc, argv),
      sizes_(parseSizeList(opts_.getString("sizes", defaultSizes))),
      seed_(opts_.getUInt("seed", defaultSeed)),
      seedsPerSize_(opts_.getUInt("seeds", 1)),
      engine_(configFrom(opts_)) {}

SweepSpec BenchDriver::sweepSpec() const {
  SweepSpec spec;
  spec.sizes = sizes_;
  spec.masterSeed = seed_;
  spec.seedsPerSize = seedsPerSize_;
  return spec;
}

void BenchDriver::printHeader(const std::string& title) const {
  std::cout << title << " (seed=" << seed_ << ", jobs=" << jobs() << ")\n\n";
}

void BenchDriver::emit(const TextTable& table) const {
  std::cout << table.render() << '\n';
  if (opts_.has("csv")) {
    const std::string path = opts_.getString("csv", "bench.csv");
    writeCsv(path, table);
    std::cout << "wrote CSV to " << path << '\n';
  }
}

}  // namespace dynbcast
