// EXACT: the exact game value t*(T_n) for tiny n, computed by exhaustive
// minimax over all n^(n−1) rooted trees per round — the ground truth that
// the paper's bounds must bracket, and the yardstick for how close our
// heuristic adversaries come to optimal play.
//
// The second table goes past solve()'s practical range with
// witnessPlay(): a certified line of play reaching the paper's lower
// bound ⌈(3n−1)/2⌉−2 — complete move pool through n = 8, structured
// branching pool beyond (n = 9 in seconds).
//
// Usage: exact_small_n [--maxn=5] [--heuristics=1] [--witness-maxn=9]
#include <chrono>
#include <iostream>

#include "src/adversary/exact_solver.h"
#include "src/adversary/portfolio.h"
#include "src/bounds/bounds.h"
#include "src/bounds/theorem.h"
#include "src/support/options.h"
#include "src/support/table.h"
#include "src/tree/enumerate.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const std::size_t maxN = opts.getUInt("maxn", 5);
  const bool heuristics = opts.getBool("heuristics", true);

  std::cout << "EXACT — exhaustive game value of t*(T_n) for small n\n\n";

  TextTable table({"n", "|T_n| moves", "exact t*", "lower bound",
                   "upper bound", "best heuristic", "states", "time ms"});
  for (std::size_t n = 2; n <= maxN && n <= 8; ++n) {
    const auto start = std::chrono::steady_clock::now();
    const ExactResult exact = ExactSolver(n).solve();
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    const TheoremCheck check = checkTheorem31(n, exact.tStar);
    std::size_t heuristicBest = 0;
    if (heuristics) {
      heuristicBest = runPortfolio(n, 1).bestRounds;
    }
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(rootedTreeCount(n))
        .add(static_cast<std::uint64_t>(exact.tStar))
        .add(check.lower)
        .add(check.upper)
        .add(static_cast<std::uint64_t>(heuristicBest))
        .add(exact.statesMemoized)
        .add(static_cast<std::uint64_t>(elapsed));
    if (!check.withinUpper || !check.witnessesLower) {
      std::cout << "NOTE at n=" << n << ": " << check.toString() << '\n';
    }
  }
  std::cout << table.render() << '\n';
  std::cout << "reading: exact t* must sit inside [lower, upper]; the "
               "heuristic column shows how much of the true game value the "
               "portfolio recovers without exhaustive search.\n\n";

  const std::size_t witnessMaxN = opts.getUInt("witness-maxn", 9);
  TextTable witnessTable({"n", "target (= lower bound)", "certified rounds",
                          "pool", "time ms"});
  for (std::size_t n = 2; n <= witnessMaxN && n <= ExactSolver::kMaxN;
       ++n) {
    const std::size_t target = bounds::lowerBound(n);
    const auto start = std::chrono::steady_clock::now();
    const std::vector<RootedTree> play = ExactSolver(n).witnessPlay(target);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    witnessTable.row()
        .add(static_cast<std::uint64_t>(n))
        .add(static_cast<std::uint64_t>(target))
        .add(static_cast<std::uint64_t>(play.size()))
        .add(n <= 8 ? "complete" : "structured")
        .add(static_cast<std::uint64_t>(elapsed));
  }
  std::cout << witnessTable.render() << '\n';
  std::cout << "reading: every certified play replays to exactly its "
               "length, so 'certified rounds' = target means t*(T_n) >= "
               "the [14] lower bound is witnessed, not just argued.\n";
  return 0;
}
