// SEC5-GOSSIP: the paper's §5 extension — all-to-all dissemination under
// the same dynamic-rooted-tree adversary. Facts exhibited:
//   * gossip time dominates broadcast time on every sequence;
//   * no static tree ever completes gossip (leaf ids never propagate);
//   * dynamic sequences complete gossip in Θ(n).
//
// One engine task per size runs all four scenarios for that n; the
// adversaries come from the registry by spec string, and the cap is the
// gossip-specific defaultGossipRoundCap(n) (the broadcast cap encodes
// the paper's ⌈(1+√2)n−1⌉ bound, which gossip legitimately exceeds).
//
// Usage: gossip_extension [--sizes=4:256:2] [--seed=1] [--jobs=N] [--csv=path]
#include <iostream>
#include <memory>

#include "bench/driver.h"
#include "src/adversary/registry.h"
#include "src/sim/gossip.h"
#include "src/support/rng.h"
#include "src/support/table.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  BenchDriver driver(argc, argv, "4:256:2", 1);

  driver.printHeader(
      "SEC5 — gossip (all-to-all) under dynamic rooted trees");

  struct Row {
    GossipComparison random, alternating, greedy, staticPath;
  };
  const std::vector<std::size_t>& sizes = driver.sizes();
  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  const auto rows = driver.engine().map<Row>(
      sizes.size(), driver.seed(),
      [&](std::size_t i, std::uint64_t taskSeed) {
        const std::size_t n = sizes[i];
        const std::size_t cap = defaultGossipRoundCap(n);
        Row row;

        Rng rng(taskSeed);
        row.random = runGossipComparison(
            n,
            [&rng, n](const BroadcastSim&) {
              return randomRootedTree(n, rng);
            },
            cap);

        const auto runSpec = [&](const std::string& spec,
                                 std::size_t specCap) {
          const auto adversary =
              registry.make(spec, n, taskSeed ^ 0x60551bull);
          return runGossipComparison(
              n,
              [&adversary](const BroadcastSim& s) {
                return adversary->nextTree(s);
              },
              specCap);
        };
        row.alternating = runSpec("alternating-path", cap);
        row.greedy = runSpec("greedy-delay", cap);
        // Static path: gossip can never complete; cap at 3n to demonstrate.
        row.staticPath = runSpec("static-path", 3 * n);
        return row;
      });

  TextTable table({"n", "random: broadcast", "random: gossip",
                   "alternating: gossip", "greedy-delay: gossip",
                   "static path: gossip", "gossip/n"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const Row& row = rows[i];
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(static_cast<std::uint64_t>(row.random.broadcastRounds))
        .add(static_cast<std::uint64_t>(row.random.gossipRounds))
        .add(static_cast<std::uint64_t>(row.alternating.gossipRounds))
        .add(row.greedy.gossipCompleted
                 ? std::to_string(row.greedy.gossipRounds)
                 : "never (stalled)")
        .add(row.staticPath.gossipCompleted ? "completed (bug!)" : "never")
        .add(static_cast<double>(row.random.gossipRounds) /
                 static_cast<double>(n),
             3);
  }
  driver.emit(table);
  std::cout << "reading: gossip >= broadcast column-wise; static trees "
               "never finish gossip (leaf ids cannot propagate), and an "
               "ADAPTIVE delaying adversary prevents gossip forever — the "
               "paper's rooted-tree guarantee (>= 1 new product edge per "
               "round) protects one row of G(t), i.e. broadcast, not all "
               "of them. Oblivious dynamic sequences finish in Theta(n) "
               "(about 2n for the alternating ping-pong).\n";
  return 0;
}
