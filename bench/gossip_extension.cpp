// SEC5-GOSSIP: the paper's §5 extension — all-to-all dissemination under
// the same dynamic-rooted-tree adversary. Facts exhibited:
//   * gossip time dominates broadcast time on every sequence;
//   * no static tree ever completes gossip (leaf ids never propagate);
//   * dynamic sequences complete gossip in Θ(n).
//
// One engine task per size runs all four scenarios for that n.
//
// Usage: gossip_extension [--sizes=4:256:2] [--seed=1] [--jobs=N] [--csv=path]
#include <iostream>

#include "bench/driver.h"
#include "src/adversary/adaptive.h"
#include "src/adversary/oblivious.h"
#include "src/sim/gossip.h"
#include "src/support/rng.h"
#include "src/support/table.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  BenchDriver driver(argc, argv, "4:256:2", 1);

  driver.printHeader(
      "SEC5 — gossip (all-to-all) under dynamic rooted trees");

  struct Row {
    GossipComparison random, alternating, greedy, staticPath;
  };
  const std::vector<std::size_t>& sizes = driver.sizes();
  const auto rows = driver.engine().map<Row>(
      sizes.size(), driver.seed(),
      [&](std::size_t i, std::uint64_t taskSeed) {
        const std::size_t n = sizes[i];
        const std::size_t cap = 10 * n + 50;
        Row row;

        Rng rng(taskSeed);
        row.random = runGossipComparison(
            n,
            [&rng, n](const BroadcastSim&) {
              return randomRootedTree(n, rng);
            },
            cap);

        AlternatingPathAdversary alt(n);
        row.alternating = runGossipComparison(
            n, [&alt](const BroadcastSim& s) { return alt.nextTree(s); },
            cap);

        GreedyDelayAdversary greedy(n, taskSeed ^ 0x60551bull);
        row.greedy = runGossipComparison(
            n,
            [&greedy](const BroadcastSim& s) { return greedy.nextTree(s); },
            cap);

        // Static path: gossip can never complete; cap at 3n to demonstrate.
        row.staticPath = runGossipComparison(
            n, [n](const BroadcastSim&) { return makePath(n); }, 3 * n);
        return row;
      });

  TextTable table({"n", "random: broadcast", "random: gossip",
                   "alternating: gossip", "greedy-delay: gossip",
                   "static path: gossip", "gossip/n"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const Row& row = rows[i];
    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(static_cast<std::uint64_t>(row.random.broadcastRounds))
        .add(static_cast<std::uint64_t>(row.random.gossipRounds))
        .add(static_cast<std::uint64_t>(row.alternating.gossipRounds))
        .add(row.greedy.gossipCompleted
                 ? std::to_string(row.greedy.gossipRounds)
                 : "never (stalled)")
        .add(row.staticPath.gossipCompleted ? "completed (bug!)" : "never")
        .add(static_cast<double>(row.random.gossipRounds) /
                 static_cast<double>(n),
             3);
  }
  driver.emit(table);
  std::cout << "reading: gossip >= broadcast column-wise; static trees "
               "never finish gossip (leaf ids cannot propagate), and an "
               "ADAPTIVE delaying adversary prevents gossip forever — the "
               "paper's rooted-tree guarantee (>= 1 new product edge per "
               "round) protects one row of G(t), i.e. broadcast, not all "
               "of them. Oblivious dynamic sequences finish in Theta(n) "
               "(about 2n for the alternating ping-pong).\n";
  return 0;
}
