// SEC5-GOSSIP: the paper's §5 extension — all-to-all dissemination under
// the same dynamic-rooted-tree adversary. Facts exhibited:
//   * gossip time dominates broadcast time on every sequence;
//   * no static tree ever completes gossip (leaf ids never propagate);
//   * dynamic sequences complete gossip in Θ(n).
//
// Usage: gossip_extension [--sizes=4:256:2] [--seed=1]
#include <iostream>

#include "src/adversary/adaptive.h"
#include "src/adversary/oblivious.h"
#include "src/sim/gossip.h"
#include "src/support/options.h"
#include "src/support/rng.h"
#include "src/support/table.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

int main(int argc, char** argv) {
  using namespace dynbcast;
  const Options opts(argc, argv);
  const auto sizes = parseSizeList(opts.getString("sizes", "4:256:2"));
  const std::uint64_t seed = opts.getUInt("seed", 1);

  std::cout << "SEC5 — gossip (all-to-all) under dynamic rooted trees "
               "(seed=" << seed << ")\n\n";

  TextTable table({"n", "random: broadcast", "random: gossip",
                   "alternating: gossip", "greedy-delay: gossip",
                   "static path: gossip", "gossip/n"});
  for (const std::size_t n : sizes) {
    const std::size_t cap = 10 * n + 50;

    Rng rng(seed + n);
    const GossipComparison rnd = runGossipComparison(
        n,
        [&rng, n](const BroadcastSim&) { return randomRootedTree(n, rng); },
        cap);

    AlternatingPathAdversary alt(n);
    const GossipComparison altCmp = runGossipComparison(
        n, [&alt](const BroadcastSim& s) { return alt.nextTree(s); }, cap);

    GreedyDelayAdversary greedy(n, seed);
    const GossipComparison greedyCmp = runGossipComparison(
        n, [&greedy](const BroadcastSim& s) { return greedy.nextTree(s); },
        cap);

    // Static path: gossip can never complete; cap at 3n to demonstrate.
    const GossipComparison staticCmp = runGossipComparison(
        n, [n](const BroadcastSim&) { return makePath(n); }, 3 * n);

    table.row()
        .add(static_cast<std::uint64_t>(n))
        .add(static_cast<std::uint64_t>(rnd.broadcastRounds))
        .add(static_cast<std::uint64_t>(rnd.gossipRounds))
        .add(static_cast<std::uint64_t>(altCmp.gossipRounds))
        .add(greedyCmp.gossipCompleted
                 ? std::to_string(greedyCmp.gossipRounds)
                 : "never (stalled)")
        .add(staticCmp.gossipCompleted ? "completed (bug!)" : "never")
        .add(static_cast<double>(rnd.gossipRounds) / static_cast<double>(n),
             3);
  }
  std::cout << table.render() << '\n';
  std::cout << "reading: gossip >= broadcast column-wise; static trees "
               "never finish gossip (leaf ids cannot propagate), and an "
               "ADAPTIVE delaying adversary prevents gossip forever — the "
               "paper's rooted-tree guarantee (>= 1 new product edge per "
               "round) protects one row of G(t), i.e. broadcast, not all "
               "of them. Oblivious dynamic sequences finish in Theta(n) "
               "(about 2n for the alternating ping-pong).\n";
  return 0;
}
