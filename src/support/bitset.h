// DynBitset: a fixed-capacity-at-construction dynamic bitset built on
// 64-bit words.
//
// This is the workhorse of the whole library: heard-of sets, adjacency
// matrix rows, and reachability sets are all DynBitsets. The broadcast
// simulator's per-round cost is O(n^2/64) thanks to word-parallel OR.
//
// Unlike std::vector<bool>, DynBitset exposes word-level bulk operations
// (orWith, andWith, intersects, isSupersetOf, count) and guarantees that
// all bits past size() are zero (the "tail invariant"), so whole-set
// predicates are plain word comparisons.
#pragma once

#include <bit>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/support/assert.h"

namespace dynbcast {

/// Raw-word kernels shared by DynBitset, BitMatrix, and the simulator's
/// hot loops. They operate on parallel arrays of 64-bit words and assume
/// both operands honor the tail invariant (bits past the logical size are
/// zero), so callers never need per-bit masking.
///
/// These exist as free functions (rather than DynBitset methods only) so
/// the adversary evaluation kernels can fuse several passes — OR + popcount,
/// AND + any — into one traversal without materializing temporaries.
namespace bitword {

/// dst |= src, word by word.
inline void orAssign(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t nwords) noexcept {
  for (std::size_t i = 0; i < nwords; ++i) dst[i] |= src[i];
}

/// Fused dst |= src + popcount(dst): one traversal instead of an OR pass
/// followed by a count pass. Returns the number of set bits in dst after
/// the OR.
[[nodiscard]] std::size_t orCount(std::uint64_t* dst, const std::uint64_t* src,
                                  std::size_t nwords) noexcept;

/// True when (a & b) has any set bit; early-exits on the first hit.
[[nodiscard]] inline bool intersectAny(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::size_t nwords) noexcept {
  for (std::size_t i = 0; i < nwords; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

/// Fused dst &= src + popcount of the result: the simulator's
/// incremental-completion pass intersects each updated row into the
/// running ⋂_y Heard(y) with this, so the broadcaster count is known the
/// moment the round ends.
[[nodiscard]] std::size_t andAssignCount(std::uint64_t* dst,
                                         const std::uint64_t* src,
                                         std::size_t nwords) noexcept;

/// Invokes fn(index) for every bit set in (a & ~b), ascending — the
/// "delta iteration" of candidate evaluation, with no temporary bitset.
template <typename Fn>
void forEachInDifference(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t nwords, Fn&& fn) {
  for (std::size_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t w = a[wi] & ~b[wi];
    while (w != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(w));
      fn(wi * 64 + bit);
      w &= w - 1;
    }
  }
}

}  // namespace bitword

class DynBitset {
 public:
  /// An empty bitset of size 0.
  DynBitset() = default;

  /// A bitset with `size` bits, all zero.
  explicit DynBitset(std::size_t size)
      : size_(size), words_((size + kBits - 1) / kBits, 0u) {}

  /// Number of bits.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True when size() == 0.
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Value of bit `i`. Precondition: i < size().
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i / kBits] >> (i % kBits)) & 1u;
  }

  /// Sets bit `i` to 1. Precondition: i < size().
  void set(std::size_t i) noexcept {
    words_[i / kBits] |= (kOne << (i % kBits));
  }

  /// Sets bit `i` to `value`. Precondition: i < size().
  void assign(std::size_t i, bool value) noexcept {
    if (value) {
      set(i);
    } else {
      reset(i);
    }
  }

  /// Clears bit `i`. Precondition: i < size().
  void reset(std::size_t i) noexcept {
    words_[i / kBits] &= ~(kOne << (i % kBits));
  }

  /// Clears all bits.
  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Sets all bits (respecting the tail invariant).
  void setAll() noexcept;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// True when at least one bit is set.
  [[nodiscard]] bool any() const noexcept;

  /// True when no bit is set.
  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// True when every bit is set.
  [[nodiscard]] bool all() const noexcept;

  /// In-place union. Precondition: other.size() == size().
  void orWith(const DynBitset& other) noexcept;

  /// Fused in-place union + count of the result (single traversal).
  /// Precondition: other.size() == size().
  std::size_t orCountWith(const DynBitset& other) noexcept {
    return bitword::orCount(words_.data(), other.words_.data(),
                            words_.size());
  }

  /// In-place intersection. Precondition: other.size() == size().
  void andWith(const DynBitset& other) noexcept;

  /// In-place difference (this \ other). Precondition: sizes equal.
  void subtract(const DynBitset& other) noexcept;

  /// True when the intersection with `other` is non-empty.
  [[nodiscard]] bool intersects(const DynBitset& other) const noexcept;

  /// True when every bit of `other` is also set here.
  [[nodiscard]] bool isSupersetOf(const DynBitset& other) const noexcept;

  /// Index of the lowest set bit, or size() when none.
  [[nodiscard]] std::size_t findFirst() const noexcept;

  /// Index of the lowest set bit >= from, or size() when none.
  [[nodiscard]] std::size_t findNext(std::size_t from) const noexcept;

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> toIndices() const;

  /// "0101…" rendering, bit 0 first.
  [[nodiscard]] std::string toString() const;

  /// 64-bit mix of the contents, suitable for hash maps.
  [[nodiscard]] std::uint64_t hash() const noexcept;

  friend bool operator==(const DynBitset& a, const DynBitset& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Lexicographic-by-word order; usable as a map key.
  friend bool operator<(const DynBitset& a, const DynBitset& b) noexcept {
    if (a.size_ != b.size_) return a.size_ < b.size_;
    return a.words_ < b.words_;
  }

  /// Raw word storage (read-only), for word-parallel algorithms.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  /// Raw word pointers for the bitword kernels. Mutators must preserve
  /// the tail invariant (all bits past size() stay zero); every kernel
  /// above does, because both operands honor it already.
  [[nodiscard]] const std::uint64_t* wordData() const noexcept {
    return words_.data();
  }
  [[nodiscard]] std::uint64_t* wordData() noexcept { return words_.data(); }

  /// Number of storage words (== words().size()).
  [[nodiscard]] std::size_t wordCount() const noexcept {
    return words_.size();
  }

  static constexpr std::size_t kBits = 64;

 private:
  static constexpr std::uint64_t kOne = 1;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

std::ostream& operator<<(std::ostream& os, const DynBitset& bs);

}  // namespace dynbcast
