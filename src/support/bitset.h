// DynBitset: a fixed-capacity-at-construction dynamic bitset built on
// 64-bit words.
//
// This is the workhorse of the whole library: heard-of sets, adjacency
// matrix rows, and reachability sets are all DynBitsets. The broadcast
// simulator's per-round cost is O(n^2/64) thanks to word-parallel OR.
//
// Unlike std::vector<bool>, DynBitset exposes word-level bulk operations
// (orWith, andWith, intersects, isSupersetOf, count) and guarantees that
// all bits past size() are zero (the "tail invariant"), so whole-set
// predicates are plain word comparisons.
// Allocation-free hot path: dynbcast_lint bans allocation in function
// bodies here (rule hot-alloc); setup/diagnostic exceptions carry allow().
// dynbcast-lint: hot-path
#pragma once

#include <bit>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/support/assert.h"

namespace dynbcast {

/// Raw-word kernels shared by DynBitset, BitMatrix, and the simulator's
/// hot loops. They operate on parallel arrays of 64-bit words and assume
/// both operands honor the tail invariant (bits past the logical size are
/// zero), so callers never need per-bit masking.
///
/// These exist as free functions (rather than DynBitset methods only) so
/// the adversary evaluation kernels can fuse several passes — OR + popcount,
/// AND + any — into one traversal without materializing temporaries.
///
/// Spans at or above kDispatchMinWords route through a runtime-dispatched
/// kernel table (see dispatch() below) with AVX2/AVX-512 variants selected
/// once per process via cpuid; shorter spans keep the plain scalar loop,
/// which the compiler already handles well and which avoids an indirect
/// call on the small-n hot path. Every variant computes identical results
/// word for word — dispatch changes throughput, never bits.
namespace bitword {

/// Instruction-set tier of a kernel table. kScalar is always available;
/// the vector tiers are used only when cpuid says the CPU (and OS) can
/// run them. Setting the DYNBCAST_FORCE_SCALAR environment variable (to
/// anything but "0" / empty) before first use pins the process to
/// kScalar — the testing escape hatch for the non-AVX path.
enum class SimdLevel { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Human-readable tier name ("scalar", "avx2", "avx512").
[[nodiscard]] const char* simdLevelName(SimdLevel level) noexcept;

/// A resolved kernel table: one function pointer per bulk operation, all
/// drop-in equivalent to the scalar loops below.
struct Kernels {
  void (*orAssign)(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t nwords) noexcept;
  std::size_t (*orCount)(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t nwords) noexcept;
  std::size_t (*andAssignCount)(std::uint64_t* dst, const std::uint64_t* src,
                                std::size_t nwords) noexcept;
  bool (*intersectAny)(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t nwords) noexcept;
  /// dst = a | b (three-operand OR): the batched simulator's
  /// double-buffered recurrence writes next = prev_row | prev_parent.
  void (*orInto)(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t nwords) noexcept;
  /// dst &= src without the fused count (the batch common-plane pass
  /// defers per-lane popcounts to end of round).
  void (*andAssign)(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t nwords) noexcept;
  SimdLevel level;
  const char* name;
};

/// True when the running CPU and OS can execute `level`'s kernels.
/// kScalar is always true; kAvx512 additionally requires avx512f,
/// avx512bw, and avx512vpopcntdq.
[[nodiscard]] bool simdSupported(SimdLevel level) noexcept;

/// The kernel table for `level`, falling back to the scalar table when
/// the level is not supported on this machine (check the returned
/// .level to see what you actually got).
[[nodiscard]] const Kernels& kernelsFor(SimdLevel level) noexcept;

/// Re-resolves the tier from DYNBCAST_FORCE_SCALAR + cpuid on every
/// call. dispatch() snapshots this once; tests that flip the environment
/// variable mid-process use this directly.
[[nodiscard]] SimdLevel resolveSimdLevel() noexcept;

/// The process-wide kernel table, resolved on first use and constant
/// afterwards. All wrappers below route large spans through it.
[[nodiscard]] const Kernels& dispatch() noexcept;

/// Spans shorter than this many words bypass the dispatch table: at
/// n ≤ 1024 bits the indirect call would cost more than the vector
/// width buys, and small-n sweeps dominate the test matrix.
inline constexpr std::size_t kDispatchMinWords = 16;

/// dst |= src, word by word.
inline void orAssign(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t nwords) noexcept {
  if (nwords >= kDispatchMinWords) {
    dispatch().orAssign(dst, src, nwords);
    return;
  }
  for (std::size_t i = 0; i < nwords; ++i) dst[i] |= src[i];
}

/// Fused dst |= src + popcount(dst): one traversal instead of an OR pass
/// followed by a count pass. Returns the number of set bits in dst after
/// the OR.
[[nodiscard]] inline std::size_t orCount(std::uint64_t* dst,
                                         const std::uint64_t* src,
                                         std::size_t nwords) noexcept {
  if (nwords >= kDispatchMinWords) return dispatch().orCount(dst, src, nwords);
  std::size_t c = 0;
  for (std::size_t i = 0; i < nwords; ++i) {
    dst[i] |= src[i];
    c += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return c;
}

/// True when (a & b) has any set bit; early-exits on the first hit.
[[nodiscard]] inline bool intersectAny(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::size_t nwords) noexcept {
  if (nwords >= kDispatchMinWords) return dispatch().intersectAny(a, b, nwords);
  for (std::size_t i = 0; i < nwords; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

/// Fused dst &= src + popcount of the result: the simulator's
/// incremental-completion pass intersects each updated row into the
/// running ⋂_y Heard(y) with this, so the broadcaster count is known the
/// moment the round ends.
[[nodiscard]] inline std::size_t andAssignCount(std::uint64_t* dst,
                                                const std::uint64_t* src,
                                                std::size_t nwords) noexcept {
  if (nwords >= kDispatchMinWords) {
    return dispatch().andAssignCount(dst, src, nwords);
  }
  std::size_t c = 0;
  for (std::size_t i = 0; i < nwords; ++i) {
    dst[i] &= src[i];
    c += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return c;
}

/// dst = a | b, word by word (dst may alias a or b).
inline void orInto(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t nwords) noexcept {
  if (nwords >= kDispatchMinWords) {
    dispatch().orInto(dst, a, b, nwords);
    return;
  }
  for (std::size_t i = 0; i < nwords; ++i) dst[i] = a[i] | b[i];
}

/// dst &= src, word by word.
inline void andAssign(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t nwords) noexcept {
  if (nwords >= kDispatchMinWords) {
    dispatch().andAssign(dst, src, nwords);
    return;
  }
  for (std::size_t i = 0; i < nwords; ++i) dst[i] &= src[i];
}

/// Invokes fn(index) for every bit set in (a & ~b), ascending — the
/// "delta iteration" of candidate evaluation, with no temporary bitset.
template <typename Fn>
void forEachInDifference(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t nwords, Fn&& fn) {
  for (std::size_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t w = a[wi] & ~b[wi];
    while (w != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(w));
      fn(wi * 64 + bit);
      w &= w - 1;
    }
  }
}

}  // namespace bitword

class DynBitset {
 public:
  /// An empty bitset of size 0.
  DynBitset() = default;

  /// A bitset with `size` bits, all zero.
  explicit DynBitset(std::size_t size)
      : size_(size), words_((size + kBits - 1) / kBits, 0u) {}

  /// Number of bits.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True when size() == 0.
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Value of bit `i`. Precondition: i < size().
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i / kBits] >> (i % kBits)) & 1u;
  }

  /// Sets bit `i` to 1. Precondition: i < size().
  void set(std::size_t i) noexcept {
    words_[i / kBits] |= (kOne << (i % kBits));
  }

  /// Sets bit `i` to `value`. Precondition: i < size().
  void assign(std::size_t i, bool value) noexcept {
    if (value) {
      set(i);
    } else {
      reset(i);
    }
  }

  /// Clears bit `i`. Precondition: i < size().
  void reset(std::size_t i) noexcept {
    words_[i / kBits] &= ~(kOne << (i % kBits));
  }

  /// Clears all bits.
  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Sets all bits (respecting the tail invariant).
  void setAll() noexcept;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// True when at least one bit is set.
  [[nodiscard]] bool any() const noexcept;

  /// True when no bit is set.
  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// True when every bit is set.
  [[nodiscard]] bool all() const noexcept;

  /// In-place union. Precondition: other.size() == size().
  void orWith(const DynBitset& other) noexcept;

  /// Fused in-place union + count of the result (single traversal).
  /// Precondition: other.size() == size().
  std::size_t orCountWith(const DynBitset& other) noexcept {
    return bitword::orCount(words_.data(), other.words_.data(),
                            words_.size());
  }

  /// In-place intersection. Precondition: other.size() == size().
  void andWith(const DynBitset& other) noexcept;

  /// In-place difference (this \ other). Precondition: sizes equal.
  void subtract(const DynBitset& other) noexcept;

  /// True when the intersection with `other` is non-empty.
  [[nodiscard]] bool intersects(const DynBitset& other) const noexcept;

  /// True when every bit of `other` is also set here.
  [[nodiscard]] bool isSupersetOf(const DynBitset& other) const noexcept;

  /// Index of the lowest set bit, or size() when none.
  [[nodiscard]] std::size_t findFirst() const noexcept;

  /// Index of the lowest set bit >= from, or size() when none.
  [[nodiscard]] std::size_t findNext(std::size_t from) const noexcept;

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> toIndices() const;

  /// "0101…" rendering, bit 0 first.
  [[nodiscard]] std::string toString() const;

  /// 64-bit mix of the contents, suitable for hash maps.
  [[nodiscard]] std::uint64_t hash() const noexcept;

  friend bool operator==(const DynBitset& a, const DynBitset& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Lexicographic-by-word order; usable as a map key.
  friend bool operator<(const DynBitset& a, const DynBitset& b) noexcept {
    if (a.size_ != b.size_) return a.size_ < b.size_;
    return a.words_ < b.words_;
  }

  /// Raw word storage (read-only), for word-parallel algorithms.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  /// Raw word pointers for the bitword kernels. Mutators must preserve
  /// the tail invariant (all bits past size() stay zero); every kernel
  /// above does, because both operands honor it already.
  [[nodiscard]] const std::uint64_t* wordData() const noexcept {
    return words_.data();
  }
  [[nodiscard]] std::uint64_t* wordData() noexcept { return words_.data(); }

  /// Number of storage words (== words().size()).
  [[nodiscard]] std::size_t wordCount() const noexcept {
    return words_.size();
  }

  static constexpr std::size_t kBits = 64;

 private:
  static constexpr std::uint64_t kOne = 1;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

std::ostream& operator<<(std::ostream& os, const DynBitset& bs);

}  // namespace dynbcast
