// Minimal command-line option parsing for examples and bench binaries.
//
// Supports --key=value, --key value, and --flag forms. Unknown options are
// an error (catches typos in experiment scripts); positional arguments are
// collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dynbcast {

class Options {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input.
  Options(int argc, const char* const* argv);

  /// Declares an option so it is accepted; returns its value if present.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] std::string getString(const std::string& key,
                                      const std::string& fallback) const;
  [[nodiscard]] std::int64_t getInt(const std::string& key,
                                    std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t getUInt(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double getDouble(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] bool getBool(const std::string& key, bool fallback) const;

  /// True when --key was present at all (with or without value).
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& programName() const noexcept {
    return program_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Parses "8,16,32" or "8:64:2" (lo:hi:multiplicative-step) into a list.
[[nodiscard]] std::vector<std::size_t> parseSizeList(const std::string& spec);

}  // namespace dynbcast
