#include "src/support/options.h"

#include <stdexcept>

namespace dynbcast {

namespace {

bool looksLikeOption(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Options::Options(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!looksLikeOption(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !looksLikeOption(argv[i + 1]) &&
               argv[i + 1][0] != '-') {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";  // bare flag
    }
  }
}

std::optional<std::string> Options::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Options::getString(const std::string& key,
                               const std::string& fallback) const {
  const auto v = get(key);
  return v ? *v : fallback;
}

std::int64_t Options::getInt(const std::string& key,
                             std::int64_t fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  return std::stoll(*v);
}

std::uint64_t Options::getUInt(const std::string& key,
                               std::uint64_t fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  return std::stoull(*v);
}

double Options::getDouble(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  return std::stod(*v);
}

bool Options::getBool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
  if (*v == "0" || *v == "false" || *v == "no") return false;
  throw std::invalid_argument("bad boolean for --" + key + ": " + *v);
}

bool Options::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::vector<std::size_t> parseSizeList(const std::string& spec) {
  std::vector<std::size_t> out;
  if (spec.empty()) return out;
  if (spec.find(':') != std::string::npos) {
    // lo:hi:step (multiplicative step, default 2)
    std::size_t lo = 0, hi = 0, step = 2;
    const auto c1 = spec.find(':');
    const auto c2 = spec.find(':', c1 + 1);
    lo = std::stoull(spec.substr(0, c1));
    if (c2 == std::string::npos) {
      hi = std::stoull(spec.substr(c1 + 1));
    } else {
      hi = std::stoull(spec.substr(c1 + 1, c2 - c1 - 1));
      step = std::stoull(spec.substr(c2 + 1));
    }
    if (step < 2) throw std::invalid_argument("step must be >= 2");
    for (std::size_t v = lo; v <= hi; v *= step) out.push_back(v);
    return out;
  }
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const auto comma = spec.find(',', pos);
    const auto end = comma == std::string::npos ? spec.size() : comma;
    out.push_back(std::stoull(spec.substr(pos, end - pos)));
    pos = end + 1;
  }
  return out;
}

}  // namespace dynbcast
