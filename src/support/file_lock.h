// Durable, multi-process-safe file appends for the service layer.
//
// The run manifest and the result-cache buckets are shared by the server
// and N worker processes, all appending records concurrently. Two
// primitives make that safe and durable:
//
//   * FileLock — RAII flock(2) on a file descriptor: exclusive for
//     appends, shared for consistent whole-file reads. Advisory, which
//     is sufficient — every writer in this repo goes through these
//     helpers.
//   * appendLineDurable — open O_APPEND, take the exclusive lock, write
//     the record in ONE write(2) call (O_APPEND makes the offset atomic
//     between processes), then fsync before releasing. When it returns,
//     the record survives a kill -9 of the caller; a kill mid-call leaves
//     at worst one torn tail line, which the manifest/cache readers
//     tolerate by skipping unparseable records.
//
// Checkpointing is exactly this contract: a task is "done" once its
// record is fsynced, and never before.
#pragma once

#include <optional>
#include <string>

namespace dynbcast {

/// RAII advisory lock (flock) on an open descriptor. Blocks until the
/// lock is granted; unlocks on destruction.
class FileLock {
 public:
  enum class Mode { kShared, kExclusive };
  FileLock(int fd, Mode mode);
  ~FileLock();
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_;
};

/// Appends `line` (a trailing '\n' is added) to `path`, creating the
/// file if needed, under an exclusive flock, and fsyncs before
/// returning. Throws std::runtime_error on I/O failure.
void appendLineDurable(const std::string& path, const std::string& line);

/// Writes `content` to `path` (create or truncate) under an exclusive
/// flock and fsyncs before returning. The whole-file analogue of
/// appendLineDurable, for one-shot headers.
void writeFileDurable(const std::string& path, const std::string& content);

/// Reads the whole file under a shared flock. Returns std::nullopt when
/// the file does not exist; throws on other I/O failures.
[[nodiscard]] std::optional<std::string> readFileIfExists(
    const std::string& path);

/// mkdir -p. Throws std::runtime_error on failure (existing is fine).
void makeDirectories(const std::string& path);

}  // namespace dynbcast
