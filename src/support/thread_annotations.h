// Clang thread-safety-analysis attribute macros.
//
// These annotate which lock protects which data (GUARDED_BY), which locks
// a function needs (REQUIRES), and which it takes/releases
// (ACQUIRE/RELEASE), so `clang -Wthread-safety` proves lock discipline at
// compile time. The CMake build promotes the warning to an error on
// Clang; GCC has no such analysis, so there the macros expand to nothing
// and the annotations are documentation.
//
// Naming and semantics follow the Clang capability model
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). libstdc++'s
// std::mutex carries no capability attributes, which is why
// src/support/mutex.h wraps it in an annotated Mutex/MutexLock/CondVar
// trio — the analysis can only track locks it can see.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define DYNBCAST_THREAD_ATTR(x) __attribute__((x))
#else
#define DYNBCAST_THREAD_ATTR(x)  // no-op: GCC/MSVC have no such analysis
#endif

#define CAPABILITY(x) DYNBCAST_THREAD_ATTR(capability(x))
#define SCOPED_CAPABILITY DYNBCAST_THREAD_ATTR(scoped_lockable)
#define GUARDED_BY(x) DYNBCAST_THREAD_ATTR(guarded_by(x))
#define PT_GUARDED_BY(x) DYNBCAST_THREAD_ATTR(pt_guarded_by(x))
#define REQUIRES(...) \
  DYNBCAST_THREAD_ATTR(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) DYNBCAST_THREAD_ATTR(acquire_capability(__VA_ARGS__))
#define RELEASE(...) DYNBCAST_THREAD_ATTR(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  DYNBCAST_THREAD_ATTR(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) DYNBCAST_THREAD_ATTR(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) DYNBCAST_THREAD_ATTR(assert_capability(x))
#define RETURN_CAPABILITY(x) DYNBCAST_THREAD_ATTR(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  DYNBCAST_THREAD_ATTR(no_thread_safety_analysis)
