// The shared `name:key=value,...` spec grammar.
//
// Two registries speak this language — AdversaryRegistry (who plays the
// game) and DynamicsRegistry (which graphs the game is played on) — and
// both need the same guarantees: parse/print round-trip with a sorted-key
// canonical form, typed parameter access with friendly conversion errors,
// and edit-distance "did you mean" suggestions for typos. This header is
// the single implementation both build on.
//
// Grammar (canonical form printed by formatSpec):
//
//   spec   := name [":" param ("," param)*]
//   param  := key "=" value
//   name   := [A-Za-z0-9._-]+          e.g. "edge-markovian"
//
// parseSpec takes a `kind` label ("adversary", "dynamics") that prefixes
// every error message, so a typo in an experiment script names the axis
// it broke.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dynbcast {

/// Typed view of one spec's key=value bag. Values are stored as strings
/// and converted on access; conversion failures throw
/// std::invalid_argument naming the offending key and value — prefixed
/// with the axis `kind` ("adversary", "dynamics") when the bag came out
/// of parseSpec, so a bad value says which spec axis it broke.
class SpecParams {
 public:
  SpecParams() = default;
  explicit SpecParams(std::map<std::string, std::string> values,
                      std::string kind = "")
      : values_(std::move(values)), kind_(std::move(kind)) {}

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  [[nodiscard]] std::uint64_t getUInt(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double getDouble(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] bool getBool(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string getString(const std::string& key,
                                      const std::string& fallback) const;

  /// Sorted key → value map (std::map keeps printing canonical).
  [[nodiscard]] const std::map<std::string, std::string>& values()
      const noexcept {
    return values_;
  }

 private:
  /// "<kind> parameter 'key' expects ..." error prefix; "parameter" when
  /// no kind was attached.
  [[nodiscard]] std::string errorLabel() const;

  std::map<std::string, std::string> values_;
  std::string kind_;
};

/// A parsed spec string: base name + parameter bag. AdversarySpec and
/// DynamicsSpec are thin wrappers that pin the error-message kind.
struct ParsedSpec {
  std::string name;
  SpecParams params;
};

/// Parses "name:key=value,key=value". Throws std::invalid_argument on
/// malformed input (empty name, missing '=', duplicate key, bad
/// characters); messages read "<kind> spec '<text>': ...". Surrounding
/// whitespace of tokens is ignored.
[[nodiscard]] ParsedSpec parseSpec(const std::string& text,
                                   const std::string& kind);

/// Canonical printing: name, then ":" and the parameters sorted by key.
/// parseSpec(formatSpec(s)) reproduces s — printing is a fixed point.
[[nodiscard]] std::string formatSpec(const std::string& name,
                                     const SpecParams& params);

/// True when `token` is a non-empty string over the grammar's name/key
/// charset [A-Za-z0-9._-].
[[nodiscard]] bool isValidSpecToken(const std::string& token);

/// "did you mean" helper shared by the registries and the scenario layer:
/// the candidate closest to `word` in edit distance, or empty when
/// nothing is within distance 3.
[[nodiscard]] std::string closestMatch(const std::string& word,
                                       const std::vector<std::string>& pool);

}  // namespace dynbcast
