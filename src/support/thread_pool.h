// Work-stealing thread pool — the execution substrate for experiment
// sweeps.
//
// Each worker owns a deque of tasks; submit() distributes round-robin
// (or onto the submitting worker's own queue, keeping nested work local),
// workers pop their own queue LIFO and steal FIFO from victims when
// empty. Stealing keeps all cores busy on irregular workloads — sweep
// tasks vary by orders of magnitude (n = 4 vs n = 256) — without any
// central dispatcher becoming a bottleneck.
//
// Guarantees:
//   * every task submitted before the destructor runs to completion
//     (shutdown drains pending work; nothing is dropped);
//   * exceptions thrown by tasks surface through the std::future returned
//     by submit() — they never kill a worker thread;
//   * submitting from inside a task is safe (no deadlock: workers never
//     block on other tasks, and the destructor joins only after the
//     task count reaches zero).
//
// Determinism note: the pool makes no ordering promises between tasks —
// reproducibility is the caller's job (see SeedSequence, which derives
// seeds from task *positions*, never from execution order).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/support/mutex.h"
#include "src/support/thread_annotations.h"

namespace dynbcast {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains all pending work, then joins the workers. Tasks submitted
  /// before destruction are guaranteed to run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t threadCount() const noexcept {
    return workers_.size();
  }

  /// Schedules `fn` and returns a future carrying its result (or its
  /// exception). Callable from any thread, including from inside a task.
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs body(0) … body(count-1) across the pool and blocks until all
  /// complete. If any invocation throws, the exception with the LOWEST
  /// index is rethrown (a deterministic choice — schedule-independent).
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body);

  /// Tasks submitted and not yet finished (diagnostic; racy by nature).
  [[nodiscard]] std::size_t pendingTasks() const;

 private:
  using Task = std::function<void()>;

  struct Worker {
    mutable Mutex mutex;
    std::deque<Task> queue GUARDED_BY(mutex);
  };

  void enqueue(Task task);
  void workerLoop(std::size_t self);
  [[nodiscard]] bool tryRunOne(std::size_t self);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  mutable Mutex sleepMutex_;
  CondVar wake_;   // workers wait here when all queues empty
  CondVar drain_;  // destructor waits for inFlight_ == 0
  // Submitted but not yet finished.
  std::size_t inFlight_ GUARDED_BY(sleepMutex_) = 0;
  // Round-robin cursor for external submits.
  std::size_t nextQueue_ GUARDED_BY(sleepMutex_) = 0;
  bool stopping_ GUARDED_BY(sleepMutex_) = false;
};

}  // namespace dynbcast
