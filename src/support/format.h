// Small string formatting helpers shared by tables, traces, and benches.
//
// These are the lowest-level pieces of the repo's uniform output story:
// TextTable cells, trace summaries, and bench headers all render numbers
// through fmtDouble/fmtCount so that every table in every binary uses the
// same fixed-point and thousands-separator conventions (and tests can
// assert on exact strings). Kept free of <iostream> and locale state —
// formatting is pure string-in/string-out.
#pragma once

#include <string>
#include <vector>

namespace dynbcast {

/// Fixed-point rendering with `digits` decimals, e.g. fmtDouble(2.414, 3).
[[nodiscard]] std::string fmtDouble(double v, int digits = 3);

/// Thousands-separated integer rendering, e.g. "1,048,576".
[[nodiscard]] std::string fmtCount(std::uint64_t v);

/// Joins strings with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& sep);

/// Left/right padding to a minimum width.
[[nodiscard]] std::string padLeft(const std::string& s, std::size_t width);
[[nodiscard]] std::string padRight(const std::string& s, std::size_t width);

}  // namespace dynbcast
