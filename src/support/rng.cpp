#include "src/support/rng.h"

#include <bit>

namespace dynbcast {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro256** must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  DYNBCAST_ASSERT(bound > 0);
  // Lemire's nearly-divisionless bounded generation with rejection.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t x = (*this)();
    const auto m = static_cast<unsigned __int128>(x) *
                   static_cast<unsigned __int128>(bound);
    const auto lo = static_cast<std::uint64_t>(m);
    if (lo >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  DYNBCAST_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniformReal() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniformReal() < p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

Rng Rng::split() noexcept { return Rng((*this)()); }

}  // namespace dynbcast
