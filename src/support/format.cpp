#include "src/support/format.h"

#include <cstdint>
#include <cstdio>

namespace dynbcast {

std::string fmtDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmtCount(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  std::size_t lead = raw.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(raw[i]);
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string padLeft(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string padRight(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace dynbcast
