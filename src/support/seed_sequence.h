// Position-based seed derivation for parallel experiments.
//
// A SeedSequence turns one master seed into an unbounded family of
// statistically independent child seeds, indexed by *position*. Because
// derivation is a pure function of (master, index) — never of call order
// or thread schedule — a sweep sharded across any number of workers
// assigns every task the same seed it would get in a serial run, which is
// what makes engine results bit-identical at any --jobs value.
//
// Contrast with Rng::split(), which advances the parent generator and is
// therefore order-sensitive: fine inside one task, wrong across tasks.
#pragma once

#include <cstdint>

#include "src/support/rng.h"

namespace dynbcast {

class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t master) noexcept : master_(master) {}

  [[nodiscard]] std::uint64_t master() const noexcept { return master_; }

  /// The child seed at `index`. Pure and stateless: at(i) is the same
  /// value no matter when, where, or how often it is called.
  [[nodiscard]] std::uint64_t at(std::uint64_t index) const noexcept;

  /// Convenience: an Rng seeded with at(index).
  [[nodiscard]] Rng rngAt(std::uint64_t index) const noexcept {
    return Rng(at(index));
  }

 private:
  std::uint64_t master_;
};

}  // namespace dynbcast
