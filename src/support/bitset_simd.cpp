// Runtime-dispatched SIMD variants of the bitword kernels.
//
// Every kernel exists in three tiers — scalar, AVX2, AVX-512 — compiled
// in this one translation unit via per-function target attributes, so the
// build needs no special flags and `-march=native` stays optional. The
// tier is resolved once per process (cpuid via __builtin_cpu_supports,
// which also checks OS xsave state) and pinned behind bitword::dispatch();
// DYNBCAST_FORCE_SCALAR in the environment forces the scalar tier so the
// non-AVX path stays testable on AVX hardware.
//
// All tiers are exact drop-ins: same results word for word, including
// popcounts. The AVX tiers assume nothing about alignment (loadu/storeu)
// and fall back to scalar words for the remainder of the span.
// Allocation-free hot path: dynbcast_lint bans allocation in function
// bodies here (rule hot-alloc); setup/diagnostic exceptions carry allow().
// dynbcast-lint: hot-path
#include "src/support/bitset.h"

#include <bit>
#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__)
#define DYNBCAST_SIMD_X86 1
#include <immintrin.h>
#else
#define DYNBCAST_SIMD_X86 0
#endif

namespace dynbcast {
namespace bitword {
namespace {

// --- scalar tier ------------------------------------------------------

void orAssignScalar(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t nwords) noexcept {
  for (std::size_t i = 0; i < nwords; ++i) dst[i] |= src[i];
}

std::size_t orCountScalar(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t nwords) noexcept {
  std::size_t c = 0;
  for (std::size_t i = 0; i < nwords; ++i) {
    dst[i] |= src[i];
    c += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return c;
}

std::size_t andAssignCountScalar(std::uint64_t* dst, const std::uint64_t* src,
                                 std::size_t nwords) noexcept {
  std::size_t c = 0;
  for (std::size_t i = 0; i < nwords; ++i) {
    dst[i] &= src[i];
    c += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return c;
}

bool intersectAnyScalar(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t nwords) noexcept {
  for (std::size_t i = 0; i < nwords; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

void orIntoScalar(std::uint64_t* dst, const std::uint64_t* a,
                  const std::uint64_t* b, std::size_t nwords) noexcept {
  for (std::size_t i = 0; i < nwords; ++i) dst[i] = a[i] | b[i];
}

void andAssignScalar(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t nwords) noexcept {
  for (std::size_t i = 0; i < nwords; ++i) dst[i] &= src[i];
}

constexpr Kernels kScalarKernels{
    &orAssignScalar, &orCountScalar,  &andAssignCountScalar,
    &intersectAnyScalar, &orIntoScalar, &andAssignScalar,
    SimdLevel::kScalar,  "scalar"};

#if DYNBCAST_SIMD_X86

// --- AVX2 tier --------------------------------------------------------
//
// 256-bit lanes, four words per step. Popcounts stay scalar per word
// (hardware POPCNT): at the span lengths that reach the dispatch table
// the OR/AND traffic dominates, and per-word counts keep the results
// trivially identical to the scalar tier.

__attribute__((target("avx2,popcnt"))) void orAssignAvx2(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t nwords) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= nwords; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  for (; i < nwords; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2,popcnt"))) std::size_t orCountAvx2(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t nwords) noexcept {
  std::size_t c = 0;
  std::size_t i = 0;
  for (; i + 4 <= nwords; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i r = _mm256_or_si256(d, s);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
    c += static_cast<std::size_t>(
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(r, 0))));
    c += static_cast<std::size_t>(
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(r, 1))));
    c += static_cast<std::size_t>(
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(r, 2))));
    c += static_cast<std::size_t>(
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(r, 3))));
  }
  for (; i < nwords; ++i) {
    dst[i] |= src[i];
    c += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return c;
}

__attribute__((target("avx2,popcnt"))) std::size_t andAssignCountAvx2(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t nwords) noexcept {
  std::size_t c = 0;
  std::size_t i = 0;
  for (; i + 4 <= nwords; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i r = _mm256_and_si256(d, s);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
    c += static_cast<std::size_t>(
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(r, 0))));
    c += static_cast<std::size_t>(
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(r, 1))));
    c += static_cast<std::size_t>(
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(r, 2))));
    c += static_cast<std::size_t>(
        std::popcount(static_cast<std::uint64_t>(_mm256_extract_epi64(r, 3))));
  }
  for (; i < nwords; ++i) {
    dst[i] &= src[i];
    c += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return c;
}

__attribute__((target("avx2,popcnt"))) bool intersectAnyAvx2(
    const std::uint64_t* a, const std::uint64_t* b,
    std::size_t nwords) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= nwords; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  for (; i < nwords; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

__attribute__((target("avx2,popcnt"))) void orIntoAvx2(
    std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
    std::size_t nwords) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= nwords; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < nwords; ++i) dst[i] = a[i] | b[i];
}

__attribute__((target("avx2,popcnt"))) void andAssignAvx2(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t nwords) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= nwords; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(d, s));
  }
  for (; i < nwords; ++i) dst[i] &= src[i];
}

constexpr Kernels kAvx2Kernels{
    &orAssignAvx2, &orCountAvx2,  &andAssignCountAvx2,
    &intersectAnyAvx2, &orIntoAvx2, &andAssignAvx2,
    SimdLevel::kAvx2,  "avx2"};

// --- AVX-512 tier -----------------------------------------------------
//
// 512-bit lanes, eight words per step, with VPOPCNTDQ doing eight
// popcounts per instruction and a vector accumulator reduced once at the
// end. Requires avx512f+avx512bw+avx512vpopcntdq (Ice Lake onwards).

#define DYNBCAST_AVX512_TARGET \
  target("avx512f,avx512bw,avx512vpopcntdq,popcnt")

// Manual horizontal sum: gcc 12's _mm512_reduce_add_epi64 trips
// -Werror=uninitialized via _mm256_undefined_si256 in its own header.
__attribute__((DYNBCAST_AVX512_TARGET)) std::size_t horizontalSum512(
    __m512i acc) noexcept {
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, acc);
  std::size_t c = 0;
  for (const std::uint64_t w : lanes) c += static_cast<std::size_t>(w);
  return c;
}

__attribute__((DYNBCAST_AVX512_TARGET)) void orAssignAvx512(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t nwords) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= nwords; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(d, s));
  }
  for (; i < nwords; ++i) dst[i] |= src[i];
}

__attribute__((DYNBCAST_AVX512_TARGET)) std::size_t orCountAvx512(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t nwords) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= nwords; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    const __m512i r = _mm512_or_si512(d, s);
    _mm512_storeu_si512(dst + i, r);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(r));
  }
  std::size_t c = horizontalSum512(acc);
  for (; i < nwords; ++i) {
    dst[i] |= src[i];
    c += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return c;
}

__attribute__((DYNBCAST_AVX512_TARGET)) std::size_t andAssignCountAvx512(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t nwords) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= nwords; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    const __m512i r = _mm512_and_si512(d, s);
    _mm512_storeu_si512(dst + i, r);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(r));
  }
  std::size_t c = horizontalSum512(acc);
  for (; i < nwords; ++i) {
    dst[i] &= src[i];
    c += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return c;
}

__attribute__((DYNBCAST_AVX512_TARGET)) bool intersectAnyAvx512(
    const std::uint64_t* a, const std::uint64_t* b,
    std::size_t nwords) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= nwords; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    if (_mm512_test_epi64_mask(va, vb) != 0) return true;
  }
  for (; i < nwords; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

__attribute__((DYNBCAST_AVX512_TARGET)) void orIntoAvx512(
    std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
    std::size_t nwords) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= nwords; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(va, vb));
  }
  for (; i < nwords; ++i) dst[i] = a[i] | b[i];
}

__attribute__((DYNBCAST_AVX512_TARGET)) void andAssignAvx512(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t nwords) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= nwords; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_and_si512(d, s));
  }
  for (; i < nwords; ++i) dst[i] &= src[i];
}

#undef DYNBCAST_AVX512_TARGET

constexpr Kernels kAvx512Kernels{
    &orAssignAvx512, &orCountAvx512,  &andAssignCountAvx512,
    &intersectAnyAvx512, &orIntoAvx512, &andAssignAvx512,
    SimdLevel::kAvx512,  "avx512"};

#endif  // DYNBCAST_SIMD_X86

SimdLevel detectCpuLevel() noexcept {
#if DYNBCAST_SIMD_X86
  // __builtin_cpu_supports includes the OSXSAVE/xgetbv check, so a
  // kernel that disabled AVX state saving reports unsupported here.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vpopcntdq")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

bool forceScalarFromEnv() noexcept {
  const char* v = std::getenv("DYNBCAST_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' &&
         !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

const char* simdLevelName(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

bool simdSupported(SimdLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(detectCpuLevel());
}

const Kernels& kernelsFor(SimdLevel level) noexcept {
  if (!simdSupported(level)) return kScalarKernels;
#if DYNBCAST_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx512:
      return kAvx512Kernels;
    case SimdLevel::kAvx2:
      return kAvx2Kernels;
    case SimdLevel::kScalar:
      break;
  }
#endif
  return kScalarKernels;
}

SimdLevel resolveSimdLevel() noexcept {
  if (forceScalarFromEnv()) return SimdLevel::kScalar;
  return detectCpuLevel();
}

const Kernels& dispatch() noexcept {
  // Resolved exactly once; concurrent first calls are safe (magic
  // statics) and the table never changes afterwards, so the hot-path
  // read is a guard check plus a pointer load.
  static const Kernels& table = kernelsFor(resolveSimdLevel());
  return table;
}

}  // namespace bitword
}  // namespace dynbcast
