// Unix-domain stream sockets, wrapped for the service layer.
//
// The dynbcast service speaks a newline-delimited text protocol over a
// local socket (see src/service/protocol.h). These wrappers own exactly
// the POSIX surface that needs: an owning file descriptor, a listener
// bound to a filesystem path, a connect call, and a buffered line
// channel. Everything reports failure by throwing std::runtime_error
// with the errno text — service code never sees a raw -1.
//
// Scope is deliberately local-machine: AF_UNIX only. A TCP transport
// would slot in behind the same LineChannel surface, but the protocol's
// trust model (filesystem permissions on the socket path) is part of the
// design — the service is infrastructure behind a front door, not the
// front door.
#pragma once

#include <string>
#include <utility>

namespace dynbcast {

/// Owning POSIX file descriptor: closes on destruction, move-only.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { reset(); }
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// A listening unix-domain socket bound to `path`. The constructor
/// unlinks a stale socket file at the path first (the server owns its
/// state directory), binds, and listens; the destructor unlinks again so
/// a clean shutdown leaves no socket litter.
class UnixListener {
 public:
  explicit UnixListener(const std::string& path, int backlog = 16);
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Blocks until a client connects; returns the connection fd.
  [[nodiscard]] OwnedFd accept();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  OwnedFd fd_;
};

/// Connects to the unix-domain socket at `path`.
[[nodiscard]] OwnedFd connectUnix(const std::string& path);

/// Writes all of `data` to `fd`, retrying short writes and EINTR.
void writeAll(int fd, const std::string& data);

/// Buffered newline-delimited reads/writes over one connection fd.
/// readLine() strips the trailing '\n'; a cleanly closed peer yields
/// false. writeLine() appends the '\n' and flushes immediately — the
/// protocol streams progress, so lines must not sit in a buffer.
class LineChannel {
 public:
  explicit LineChannel(OwnedFd fd) : fd_(std::move(fd)) {}

  /// Reads the next line into *line (without '\n'). Returns false on
  /// orderly EOF with no buffered partial line; throws on read errors.
  [[nodiscard]] bool readLine(std::string* line);

  void writeLine(const std::string& line);

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

 private:
  OwnedFd fd_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace dynbcast
