// Annotated mutex primitives: std::mutex/std::condition_variable with
// Clang thread-safety capabilities attached.
//
// libstdc++'s std::mutex has no capability attributes, so
// `clang -Wthread-safety` cannot track what std::lock_guard protects.
// These thin wrappers re-export exactly the subset the codebase uses —
// lock/unlock, a scoped lock, and condition-variable waits — with the
// attributes the analysis needs. Zero overhead: everything inlines to
// the underlying std calls.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/support/thread_annotations.h"

namespace dynbcast {

/// std::mutex as a Clang capability. Prefer MutexLock over manual
/// lock()/unlock() pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  [[nodiscard]] bool tryLock() TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped std::mutex, for CondVar's adopt-lock bridge only.
  [[nodiscard]] std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// Scoped lock over Mutex — std::lock_guard with the SCOPED_CAPABILITY
/// attribute so the analysis knows the critical section's extent.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable over Mutex. Waits REQUIRE the mutex held (use
/// inside a MutexLock scope); the handoff to std::condition_variable
/// uses adopt/release so the capability stays logically held across the
/// wait, matching what actually happens at runtime.
class CondVar {
 public:
  void notifyOne() { cv_.notify_one(); }
  void notifyAll() { cv_.notify_all(); }

  void wait(Mutex& m) REQUIRES(m) {
    std::unique_lock<std::mutex> bridge(m.native(), std::adopt_lock);
    cv_.wait(bridge);
    bridge.release();  // the enclosing MutexLock still owns the mutex
  }

  template <typename Pred>
  void wait(Mutex& m, Pred pred) REQUIRES(m) {
    std::unique_lock<std::mutex> bridge(m.native(), std::adopt_lock);
    cv_.wait(bridge, std::move(pred));
    bridge.release();
  }

  template <typename Rep, typename Period, typename Pred>
  bool waitFor(Mutex& m, const std::chrono::duration<Rep, Period>& dur,
               Pred pred) REQUIRES(m) {
    std::unique_lock<std::mutex> bridge(m.native(), std::adopt_lock);
    const bool satisfied = cv_.wait_for(bridge, dur, std::move(pred));
    bridge.release();
    return satisfied;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace dynbcast
