#include "src/support/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "src/support/assert.h"
#include "src/support/format.h"

namespace dynbcast {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DYNBCAST_ASSERT(!headers_.empty());
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

TextTable& TextTable::add(const std::string& cell) {
  DYNBCAST_ASSERT_MSG(!rows_.empty(), "call row() before add()");
  DYNBCAST_ASSERT_MSG(rows_.back().size() < headers_.size(),
                      "row has more cells than headers");
  rows_.back().push_back(cell);
  return *this;
}

TextTable& TextTable::add(const char* cell) { return add(std::string(cell)); }
TextTable& TextTable::add(std::uint64_t v) { return add(fmtCount(v)); }
TextTable& TextTable::add(std::int64_t v) { return add(std::to_string(v)); }
TextTable& TextTable::add(int v) { return add(std::to_string(v)); }
TextTable& TextTable::add(double v, int digits) {
  return add(fmtDouble(v, digits));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "  " : "") << padRight(headers_[c], width[c]);
  }
  os << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "  " : "") << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c ? "  " : "") << padLeft(r[c], width[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::string TextTable::renderMarkdown() const {
  std::ostringstream os;
  os << '|';
  for (const auto& h : headers_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& r : rows_) {
    os << '|';
    for (const auto& cell : r) os << ' ' << cell << " |";
    os << '\n';
  }
  return os.str();
}

std::string TextTable::renderCsv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') out += "\"\"";
      else out.push_back(ch);
    }
    out.push_back('"');
    return out;
  };
  std::ostringstream os;
  std::vector<std::string> hs;
  hs.reserve(headers_.size());
  for (const auto& h : headers_) hs.push_back(escape(h));
  os << join(hs, ",") << '\n';
  for (const auto& r : rows_) {
    std::vector<std::string> cs;
    cs.reserve(r.size());
    for (const auto& cell : r) cs.push_back(escape(cell));
    os << join(cs, ",") << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

}  // namespace dynbcast
