// Checked assertion machinery for the dynbcast library.
//
// DYNBCAST_ASSERT is active in all build types (the library's correctness
// claims are the whole point of the project, and the checks are cheap
// relative to the O(n^2) simulation work they guard). Failures throw
// AssertionError rather than aborting, so tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace dynbcast {

/// Thrown when a DYNBCAST_ASSERT condition is violated.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void assertFail(const char* expr, const char* file, int line,
                             const std::string& msg);
}  // namespace detail

}  // namespace dynbcast

#define DYNBCAST_ASSERT(expr)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::dynbcast::detail::assertFail(#expr, __FILE__, __LINE__, "");       \
    }                                                                      \
  } while (false)

#define DYNBCAST_ASSERT_MSG(expr, msg)                                     \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::dynbcast::detail::assertFail(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                      \
  } while (false)
