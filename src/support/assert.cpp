#include "src/support/assert.h"

#include <sstream>

namespace dynbcast::detail {

void assertFail(const char* expr, const char* file, int line,
                const std::string& msg) {
  std::ostringstream os;
  os << "DYNBCAST_ASSERT failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw AssertionError(os.str());
}

}  // namespace dynbcast::detail
