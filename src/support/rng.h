// Deterministic random number generation.
//
// All randomness in the library flows through an explicitly seeded Rng
// (xoshiro256** seeded via splitmix64). No global RNG state exists, so
// every simulation, adversary, and bench is reproducible from its seed.
#pragma once

#include <cstdint>
#include <vector>

#include "src/support/assert.h"

namespace dynbcast {

/// splitmix64 step; used for seeding and as a standalone mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator, so it
/// can also drive <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return ~static_cast<result_type>(0);
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  [[nodiscard]] std::int64_t uniformInt(std::int64_t lo,
                                        std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniformReal() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// A uniformly random permutation of {0, …, n−1}.
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Fisher–Yates shuffle of an existing vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel components).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace dynbcast
