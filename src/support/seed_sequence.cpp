#include "src/support/seed_sequence.h"

namespace dynbcast {

std::uint64_t SeedSequence::at(std::uint64_t index) const noexcept {
  // Two chained splitmix64 finalizations over a master/index combination.
  // splitmix64 is bijective for a fixed increment, so distinct indices
  // under one master can never collide after the first pass; the second
  // pass decorrelates children of related masters (seed, seed+1, …),
  // which experiment scripts commonly use.
  std::uint64_t state = master_ ^ (index * 0x9e3779b97f4a7c15ull);
  std::uint64_t derived = splitmix64(state);
  state = derived + index;
  derived = splitmix64(state);
  return derived;
}

}  // namespace dynbcast
