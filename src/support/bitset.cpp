// Allocation-free hot path: dynbcast_lint bans allocation in function
// bodies here (rule hot-alloc); setup/diagnostic exceptions carry allow().
// dynbcast-lint: hot-path
#include "src/support/bitset.h"

#include <bit>
#include <ostream>

namespace dynbcast {

void DynBitset::setAll() noexcept {
  for (auto& w : words_) w = ~static_cast<std::uint64_t>(0);
  const std::size_t tail = size_ % kBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (kOne << tail) - 1;
  }
}

std::size_t DynBitset::count() const noexcept {
  std::size_t c = 0;
  for (const auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool DynBitset::any() const noexcept {
  for (const auto w : words_) {
    if (w != 0) return true;
  }
  return false;
}

bool DynBitset::all() const noexcept {
  if (size_ == 0) return true;
  const std::size_t full = size_ / kBits;
  for (std::size_t i = 0; i < full; ++i) {
    if (words_[i] != ~static_cast<std::uint64_t>(0)) return false;
  }
  const std::size_t tail = size_ % kBits;
  if (tail != 0) {
    const std::uint64_t mask = (kOne << tail) - 1;
    if ((words_.back() & mask) != mask) return false;
  }
  return true;
}

void DynBitset::orWith(const DynBitset& other) noexcept {
  bitword::orAssign(words_.data(), other.words_.data(), words_.size());
}

void DynBitset::andWith(const DynBitset& other) noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
  }
}

void DynBitset::subtract(const DynBitset& other) noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
  }
}

bool DynBitset::intersects(const DynBitset& other) const noexcept {
  return bitword::intersectAny(words_.data(), other.words_.data(),
                               words_.size());
}

bool DynBitset::isSupersetOf(const DynBitset& other) const noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((other.words_[i] & ~words_[i]) != 0) return false;
  }
  return true;
}

std::size_t DynBitset::findFirst() const noexcept { return findNext(0); }

std::size_t DynBitset::findNext(std::size_t from) const noexcept {
  if (from >= size_) return size_;
  std::size_t wi = from / kBits;
  std::uint64_t w = words_[wi] >> (from % kBits);
  if (w != 0) {
    const std::size_t r =
        from + static_cast<std::size_t>(std::countr_zero(w));
    return r < size_ ? r : size_;
  }
  for (++wi; wi < words_.size(); ++wi) {
    if (words_[wi] != 0) {
      const std::size_t r =
          wi * kBits + static_cast<std::size_t>(std::countr_zero(words_[wi]));
      return r < size_ ? r : size_;
    }
  }
  return size_;
}

std::vector<std::size_t> DynBitset::toIndices() const {
  // toIndices is a diagnostic/test conversion; kernels iterate words
  // directly.
  // dynbcast-lint: allow(hot-alloc) -- diagnostic conversion only
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t i = findFirst(); i < size_; i = findNext(i + 1)) {
    out.push_back(i);
  }
  return out;
}

std::string DynBitset::toString() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    s.push_back(test(i) ? '1' : '0');
  }
  return s;
}

std::uint64_t DynBitset::hash() const noexcept {
  // FNV-1a over words, then a final splitmix-style avalanche.
  std::uint64_t h = 14695981039346656037ull;
  for (const auto w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  h ^= size_;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

std::ostream& operator<<(std::ostream& os, const DynBitset& bs) {
  return os << bs.toString();
}

}  // namespace dynbcast
