// Shared hashing utilities for the search layers.
//
// The search adversaries key transposition tables by the heard-of
// matrix. A 64-bit digest is only a probe address — two distinct states
// can share one (the birthday bound at beam widths is small but not
// zero), so every consumer must verify full equality before merging.
// Centralizing the mixers here keeps beam, lookahead, and the exact
// solver on one digest definition.
#pragma once

#include <cstdint>
#include <vector>

#include "src/support/bitset.h"

namespace dynbcast {

/// splitmix64 finalizer: a strong 64 → 64 bit mixer.
[[nodiscard]] inline std::uint64_t hashMix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Boost-style combine: folds `value` into a running digest.
[[nodiscard]] inline std::uint64_t hashCombine(std::uint64_t seed,
                                               std::uint64_t value) noexcept {
  return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

/// Digest of a heard-of matrix (row y = Heard(y)). Same formula the beam
/// historically used, now shared by every transposition consumer.
[[nodiscard]] inline std::uint64_t hashHeardMatrix(
    const std::vector<DynBitset>& heard) noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ heard.size();
  for (const DynBitset& row : heard) {
    h = hashCombine(h, row.hash());
  }
  return h;
}

}  // namespace dynbcast
