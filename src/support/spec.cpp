#include "src/support/spec.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dynbcast {

namespace {

[[nodiscard]] std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

[[nodiscard]] std::size_t editDistance(const std::string& a,
                                       const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t prev = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = prev;
    }
  }
  return row[b.size()];
}

}  // namespace

bool isValidSpecToken(const std::string& token) {
  if (token.empty()) return false;
  return std::all_of(token.begin(), token.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
  });
}

std::string closestMatch(const std::string& word,
                         const std::vector<std::string>& pool) {
  std::string best;
  std::size_t bestDistance = 4;  // suggest only within distance 3
  for (const std::string& candidate : pool) {
    const std::size_t d = editDistance(word, candidate);
    if (d < bestDistance) {
      bestDistance = d;
      best = candidate;
    }
  }
  return best;
}

std::string SpecParams::errorLabel() const {
  return kind_.empty() ? "parameter" : kind_ + " parameter";
}

std::uint64_t SpecParams::getUInt(const std::string& key,
                                  std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    // stoull accepts "-1" by wrapping around; require a leading digit so
    // negative (and "+"-prefixed) input gets the friendly error below.
    if (it->second.empty() || it->second[0] < '0' || it->second[0] > '9') {
      throw std::invalid_argument(it->second);
    }
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(errorLabel() + " '" + key +
                                "' expects an unsigned integer, got '" +
                                it->second + "'");
  }
}

double SpecParams::getDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(errorLabel() + " '" + key +
                                "' expects a number, got '" + it->second +
                                "'");
  }
}

bool SpecParams::getBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second == "1" || it->second == "true" || it->second == "yes") {
    return true;
  }
  if (it->second == "0" || it->second == "false" || it->second == "no") {
    return false;
  }
  throw std::invalid_argument(errorLabel() + " '" + key +
                              "' expects a boolean (1/0/true/false), got '" +
                              it->second + "'");
}

std::string SpecParams::getString(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

ParsedSpec parseSpec(const std::string& text, const std::string& kind) {
  const std::string trimmed = trim(text);
  ParsedSpec spec;
  const std::size_t colon = trimmed.find(':');
  spec.name = trim(trimmed.substr(0, colon));
  if (!isValidSpecToken(spec.name)) {
    throw std::invalid_argument(kind + " spec '" + text +
                                "': missing or malformed " + kind + " name");
  }
  if (colon == std::string::npos) return spec;

  const std::string paramText = trimmed.substr(colon + 1);
  if (trim(paramText).empty()) {
    throw std::invalid_argument(kind + " spec '" + text +
                                "': expected key=value parameters after ':'");
  }
  std::map<std::string, std::string> values;
  std::size_t start = 0;
  while (start <= paramText.size()) {
    std::size_t comma = paramText.find(',', start);
    if (comma == std::string::npos) comma = paramText.size();
    const std::string param = trim(paramText.substr(start, comma - start));
    start = comma + 1;
    const std::size_t eq = param.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(kind + " spec '" + text +
                                  "': expected key=value, got '" + param +
                                  "'");
    }
    const std::string key = trim(param.substr(0, eq));
    const std::string value = trim(param.substr(eq + 1));
    if (!isValidSpecToken(key) || value.empty()) {
      throw std::invalid_argument(kind + " spec '" + text +
                                  "': malformed parameter '" + param + "'");
    }
    if (!values.emplace(key, value).second) {
      throw std::invalid_argument(kind + " spec '" + text +
                                  "': duplicate parameter '" + key + "'");
    }
  }
  spec.params = SpecParams(std::move(values), kind);
  return spec;
}

std::string formatSpec(const std::string& name, const SpecParams& params) {
  std::string out = name;
  char sep = ':';
  for (const auto& [key, value] : params.values()) {
    out += sep;
    out += key;
    out += '=';
    out += value;
    sep = ',';
  }
  return out;
}

}  // namespace dynbcast
