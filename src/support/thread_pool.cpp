#include "src/support/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <utility>

namespace dynbcast {

namespace {

// Workers record which pool (and slot) they belong to, so submit() from
// inside a task can push onto the local queue instead of round-robin.
thread_local const ThreadPool* tlsPool = nullptr;
thread_local std::size_t tlsWorkerIndex = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(sleepMutex_);
    // Drain: every task submitted before this point must finish.
    drain_.wait(sleepMutex_, [this]() REQUIRES(sleepMutex_) {
      return inFlight_ == 0;
    });
    stopping_ = true;
  }
  wake_.notifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(Task task) {
  {
    // Publish under sleepMutex_: workers decide to sleep only after
    // rescanning all queues while holding sleepMutex_, so a push made
    // under the same lock can never slip into the window between a
    // worker's rescan and its wait (the classic lost wakeup).
    MutexLock lock(sleepMutex_);
    std::size_t target;
    if (tlsPool == this) {
      target = tlsWorkerIndex;  // nested submit: keep work local, stealable
    } else {
      target = nextQueue_;
      nextQueue_ = (nextQueue_ + 1) % queues_.size();
    }
    ++inFlight_;
    MutexLock qlock(queues_[target]->mutex);
    queues_[target]->queue.push_back(std::move(task));
  }
  wake_.notifyOne();
}

bool ThreadPool::tryRunOne(std::size_t self) {
  Task task;
  // Own queue first (LIFO — cache-warm, depth-first on nested work) …
  {
    Worker& own = *queues_[self];
    MutexLock lock(own.mutex);
    if (!own.queue.empty()) {
      task = std::move(own.queue.back());
      own.queue.pop_back();
    }
  }
  // … then steal from victims (FIFO — takes the oldest, largest work).
  if (!task) {
    const std::size_t count = queues_.size();
    for (std::size_t offset = 1; offset < count && !task; ++offset) {
      Worker& victim = *queues_[(self + offset) % count];
      MutexLock lock(victim.mutex);
      if (!victim.queue.empty()) {
        task = std::move(victim.queue.front());
        victim.queue.pop_front();
      }
    }
  }
  if (!task) return false;
  task();  // packaged_task captures any exception into its future
  {
    MutexLock lock(sleepMutex_);
    --inFlight_;
    if (inFlight_ == 0) drain_.notifyAll();
  }
  return true;
}

void ThreadPool::workerLoop(std::size_t self) {
  tlsPool = this;
  tlsWorkerIndex = self;
  for (;;) {
    if (tryRunOne(self)) continue;
    MutexLock lock(sleepMutex_);
    if (stopping_) return;
    // Re-check under the lock: a task may have been enqueued between the
    // failed scan and acquiring sleepMutex_ (its notify would be lost).
    bool anyQueued = false;
    for (const auto& worker : queues_) {
      MutexLock qlock(worker->mutex);
      if (!worker->queue.empty()) {
        anyQueued = true;
        break;
      }
    }
    if (anyQueued) continue;
    wake_.wait(sleepMutex_);
  }
}

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1) {
    body(0);
    return;
  }
  struct Shared {
    std::atomic<std::size_t> remaining;
    Mutex mutex;
    CondVar done;
    std::size_t firstErrorIndex GUARDED_BY(mutex) =
        std::numeric_limits<std::size_t>::max();
    std::exception_ptr error GUARDED_BY(mutex);
  };
  auto shared = std::make_shared<Shared>();
  shared->remaining.store(count, std::memory_order_relaxed);
  for (std::size_t i = 0; i < count; ++i) {
    enqueue([shared, &body, i] {
      try {
        body(i);
      } catch (...) {
        MutexLock lock(shared->mutex);
        if (i < shared->firstErrorIndex) {
          shared->firstErrorIndex = i;
          shared->error = std::current_exception();
        }
      }
      if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(shared->mutex);
        shared->done.notifyAll();
      }
    });
  }
  // The caller helps execute while waiting — work finishes sooner and a
  // parallelFor issued from inside a pool task cannot deadlock the pool.
  const std::size_t self = tlsPool == this ? tlsWorkerIndex : 0;
  while (shared->remaining.load(std::memory_order_acquire) != 0) {
    if (tryRunOne(self)) continue;
    MutexLock lock(shared->mutex);
    shared->done.waitFor(shared->mutex, std::chrono::milliseconds(1), [&] {
      return shared->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  MutexLock lock(shared->mutex);
  if (shared->error) std::rethrow_exception(shared->error);
}

std::size_t ThreadPool::pendingTasks() const {
  MutexLock lock(sleepMutex_);
  return inFlight_;
}

}  // namespace dynbcast
