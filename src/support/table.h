// TextTable: aligned plain-text tables for bench/example output.
//
// Every bench binary regenerating a paper table/figure prints through this
// so the output format is uniform and greppable (also exportable as CSV or
// GitHub-flavoured markdown).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dynbcast {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent add* calls fill it left to right.
  TextTable& row();

  TextTable& add(const std::string& cell);
  TextTable& add(const char* cell);
  TextTable& add(std::uint64_t v);
  TextTable& add(std::int64_t v);
  TextTable& add(int v);
  TextTable& add(double v, int digits = 3);

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }

  /// Aligned plain-text rendering.
  [[nodiscard]] std::string render() const;

  /// GitHub-flavoured markdown rendering.
  [[nodiscard]] std::string renderMarkdown() const;

  /// RFC-4180-ish CSV rendering.
  [[nodiscard]] std::string renderCsv() const;

  /// Convenience: render() to the stream.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dynbcast
