#include "src/support/file_lock.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace dynbcast {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void flockRetry(int fd, int op) {
  while (::flock(fd, op) != 0) {
    if (errno != EINTR) throwErrno("flock");
  }
}

void writeAllFd(int fd, const std::string& path, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throwErrno("write(" + path + ")");
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

FileLock::FileLock(int fd, Mode mode) : fd_(fd) {
  flockRetry(fd_, mode == Mode::kExclusive ? LOCK_EX : LOCK_SH);
}

FileLock::~FileLock() { ::flock(fd_, LOCK_UN); }

void appendLineDurable(const std::string& path, const std::string& line) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) throwErrno("open(" + path + ")");
  {
    FileLock lock(fd, FileLock::Mode::kExclusive);
    // A writer killed mid-append can leave a torn, unterminated tail
    // line. Appending straight after it would merge the new record into
    // the garbage and lose BOTH; terminating the tail first confines
    // the damage to the torn line, which readers already skip.
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throwErrno("fstat(" + path + ")");
    }
    bool needsNewline = false;
    if (st.st_size > 0) {
      char tail = '\n';
      const ssize_t n = ::pread(fd, &tail, 1, st.st_size - 1);
      if (n < 0) {
        ::close(fd);
        throwErrno("pread(" + path + ")");
      }
      needsNewline = n == 1 && tail != '\n';
    }
    writeAllFd(fd, path, needsNewline ? "\n" + line + "\n" : line + "\n");
    if (::fsync(fd) != 0) {
      ::close(fd);
      throwErrno("fsync(" + path + ")");
    }
  }
  ::close(fd);
}

void writeFileDurable(const std::string& path, const std::string& content) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throwErrno("open(" + path + ")");
  {
    FileLock lock(fd, FileLock::Mode::kExclusive);
    writeAllFd(fd, path, content);
    if (::fsync(fd) != 0) {
      ::close(fd);
      throwErrno("fsync(" + path + ")");
    }
  }
  ::close(fd);
}

std::optional<std::string> readFileIfExists(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throwErrno("open(" + path + ")");
  }
  std::string content;
  {
    FileLock lock(fd, FileLock::Mode::kShared);
    char chunk[65536];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        throwErrno("read(" + path + ")");
      }
      if (n == 0) break;
      content.append(chunk, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return content;
}

void makeDirectories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    throw std::runtime_error("cannot create directory " + path + ": " +
                             ec.message());
  }
}

}  // namespace dynbcast
