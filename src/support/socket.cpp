#include "src/support/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace dynbcast {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void fillAddress(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof addr->sun_path) {
    throw std::runtime_error("socket path '" + path +
                             "' is empty or longer than sun_path allows");
  }
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
}

}  // namespace

void OwnedFd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixListener::UnixListener(const std::string& path, int backlog)
    : path_(path) {
  sockaddr_un addr;
  fillAddress(path, &addr);
  OwnedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throwErrno("socket(AF_UNIX)");
  // A stale socket file from a killed server would make bind fail with
  // EADDRINUSE; the server owns its socket path, so reclaim it.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throwErrno("bind(" + path + ")");
  }
  if (::listen(fd.get(), backlog) != 0) throwErrno("listen(" + path + ")");
  fd_ = std::move(fd);
}

UnixListener::~UnixListener() { ::unlink(path_.c_str()); }

OwnedFd UnixListener::accept() {
  for (;;) {
    const int client = ::accept(fd_.get(), nullptr, nullptr);
    if (client >= 0) return OwnedFd(client);
    if (errno == EINTR) continue;
    throwErrno("accept(" + path_ + ")");
  }
}

OwnedFd connectUnix(const std::string& path) {
  sockaddr_un addr;
  fillAddress(path, &addr);
  OwnedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throwErrno("socket(AF_UNIX)");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    throwErrno("connect(" + path + ")");
  }
  return fd;
}

void writeAll(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("write");
    }
    written += static_cast<std::size_t>(n);
  }
}

bool LineChannel::readLine(std::string* line) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    if (eof_) {
      // A peer that died mid-line leaves a partial tail; surface it so
      // the caller's parse fails loudly instead of silently dropping it.
      if (buffer_.empty()) return false;
      *line = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_.get(), chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("read");
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void LineChannel::writeLine(const std::string& line) {
  writeAll(fd_.get(), line + "\n");
}

}  // namespace dynbcast
