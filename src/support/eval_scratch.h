// EvalScratch: reusable buffers for candidate-tree evaluation.
//
// Search adversaries (beam, greedy-delay, lookahead, local search)
// evaluate thousands of candidate trees per round, and every evaluation
// needs a writable copy of the n-row heard matrix plus a coverage vector.
// Allocating those per candidate dominated the profile; an EvalScratch
// owns them across evaluations, so steady-state evaluation never touches
// the allocator (row assignment reuses each row's word storage once the
// shapes match, which they do after the first call at a given n).
//
// Recursive searches (lookahead) keep one EvalScratch per depth level:
// level d's buffers must stay alive while level d+1 evaluates its own
// candidates into the next slot.
// Allocation-free hot path: dynbcast_lint bans allocation in function
// bodies here (rule hot-alloc); setup/diagnostic exceptions carry allow().
// dynbcast-lint: hot-path
#pragma once

#include <cstddef>
#include <vector>

#include "src/support/bitset.h"

namespace dynbcast {

struct EvalScratch {
  /// Post-move heard matrix of the last evaluation: evaluateCandidate
  /// leaves the candidate's round-(t+1) state here, so callers that keep
  /// a successor (beam, lookahead) read it without re-applying the tree.
  std::vector<DynBitset> heard;

  /// Post-move coverage of the last evaluation.
  std::vector<std::size_t> coverage;

  /// Reused BFS-order buffer.
  std::vector<std::size_t> order;

  /// The one sanctioned constructor: a scratch pre-sized for n-process
  /// evaluation, so even the FIRST evaluateCandidate call at this n is
  /// allocation-free. Every search adversary builds its scratch here.
  [[nodiscard]] static EvalScratch forProcessCount(std::size_t n) {
    EvalScratch scratch;
    scratch.heard.assign(n, DynBitset(n));
    scratch.coverage.assign(n, 0);
    scratch.order.reserve(n);
    return scratch;
  }

  /// Copies `src` into `heard`, reusing existing row storage.
  void assignHeard(const std::vector<DynBitset>& src) {
    heard.resize(src.size());
    for (std::size_t y = 0; y < src.size(); ++y) heard[y] = src[y];
  }
};

}  // namespace dynbcast
