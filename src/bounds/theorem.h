// Executable statement of Theorem 3.1 and per-run certificates.
//
//   ⌈(3n−1)/2⌉ − 2  ≤  t*(T_n)  ≤  ⌈(1+√2)·n − 1⌉
//
// Any adversary run gives a certified LOWER witness for t*(T_n) (the
// adversary achieved that many rounds), while the theorem's upper bound
// must dominate every run. checkRun() encodes both directions; tests and
// benches route all measurements through it.
#pragma once

#include <cstdint>
#include <string>

namespace dynbcast {

struct TheoremCheck {
  std::size_t n = 0;
  /// The measured broadcast time of some adversary run.
  std::size_t measured = 0;
  /// ⌈(3n−1)/2⌉ − 2.
  std::uint64_t lower = 0;
  /// ⌈(1+√2)n − 1⌉.
  std::uint64_t upper = 0;
  /// measured ≤ upper — MUST hold for every run, or Theorem 3.1 (or our
  /// simulator) is wrong.
  bool withinUpper = false;
  /// measured ≥ lower — holds when the adversary is strong enough to
  /// witness the paper's lower bound (optimal play always does).
  bool witnessesLower = false;
  /// measured / n, for comparing against 1.5 and 1+√2 ≈ 2.414.
  double ratio = 0.0;

  [[nodiscard]] std::string toString() const;
};

/// Evaluates both directions of Theorem 3.1 against a measured t*.
[[nodiscard]] TheoremCheck checkTheorem31(std::size_t n,
                                          std::size_t measured);

}  // namespace dynbcast
