#include "src/bounds/theorem.h"

#include <sstream>

#include "src/bounds/bounds.h"
#include "src/support/format.h"

namespace dynbcast {

TheoremCheck checkTheorem31(std::size_t n, std::size_t measured) {
  TheoremCheck c;
  c.n = n;
  c.measured = measured;
  c.lower = bounds::lowerBound(n);
  c.upper = bounds::linearUpper(n);
  c.withinUpper = measured <= c.upper;
  c.witnessesLower = measured >= c.lower;
  c.ratio = n == 0 ? 0.0
                   : static_cast<double>(measured) / static_cast<double>(n);
  return c;
}

std::string TheoremCheck::toString() const {
  std::ostringstream os;
  os << "n=" << n << " measured=" << measured << " bounds=[" << lower << ", "
     << upper << "] ratio=" << fmtDouble(ratio, 3)
     << (withinUpper ? "" : " UPPER-BOUND-VIOLATION")
     << (witnessesLower ? " (witnesses lower bound)" : "");
  return os.str();
}

}  // namespace dynbcast
