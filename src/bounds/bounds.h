// Closed forms of every bound that appears in the paper (Figure 1 and
// Theorem 3.1), plus the related-work bounds the paper positions itself
// against (§4).
//
// Exact formulas are returned as integers. Asymptotic entries (Figure 1
// lists growth rates without constants) are returned as doubles with the
// constant conventions documented per function; benches print both the
// paper's stated form and our evaluated curve.
#pragma once

#include <cstdint>

namespace dynbcast::bounds {

/// Trivial upper bound t* ≤ n² (≥ 1 new product edge per round, §2).
[[nodiscard]] std::uint64_t trivialUpper(std::size_t n);

/// The n·log n upper bound implied by Charron-Bost & Schiper [2] +
/// Charron-Bost, Függer & Nowak [1]: broadcast on nonsplit graphs within
/// ⌈log₂ n⌉ rounds, times n−1 tree rounds per nonsplit round.
/// Evaluated as (n−1)·⌈log₂ n⌉.
[[nodiscard]] std::uint64_t nLogNUpper(std::size_t n);

/// Függer, Nowak & Winkler [9]: 2n·log log n + O(n). Evaluated as
/// 2n·log₂ log₂ n + 2n (documented choice for the O(n) term; the paper
/// states the bound only asymptotically). Returns 2n for n < 4 where
/// log log is degenerate.
[[nodiscard]] double nLogLogUpper(std::size_t n);

/// THE PAPER'S NEW BOUND (Theorem 3.1): t*(T_n) ≤ ⌈(1+√2)·n − 1⌉.
[[nodiscard]] std::uint64_t linearUpper(std::size_t n);

/// Lower bound of Zeiner, Schwarz & Schmid [14]: t*(T_n) ≥ ⌈(3n−1)/2⌉ − 2.
[[nodiscard]] std::uint64_t lowerBound(std::size_t n);

/// [14]: adversaries restricted to trees with k leaves are O(kn);
/// evaluated with constant 1 (k·n).
[[nodiscard]] std::uint64_t kLeafUpper(std::size_t n, std::size_t k);

/// [14]: adversaries restricted to trees with k inner nodes are O(kn);
/// evaluated with constant 1 (k·n).
[[nodiscard]] std::uint64_t kInnerUpper(std::size_t n, std::size_t k);

/// [2]: nonsplit-graph adversaries broadcast within ⌈log₂ n⌉ rounds.
[[nodiscard]] std::uint64_t nonsplitLogUpper(std::size_t n);

/// The (1+√2) constant itself, for ratio reporting.
[[nodiscard]] double linearUpperSlope() noexcept;

/// ⌈log₂ n⌉ helper shared by the formulas above.
[[nodiscard]] std::uint64_t ceilLog2(std::uint64_t n);

}  // namespace dynbcast::bounds
