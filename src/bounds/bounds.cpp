#include "src/bounds/bounds.h"

#include <cmath>

#include "src/support/assert.h"

namespace dynbcast::bounds {

std::uint64_t trivialUpper(std::size_t n) {
  return static_cast<std::uint64_t>(n) * n;
}

std::uint64_t ceilLog2(std::uint64_t n) {
  DYNBCAST_ASSERT(n > 0);
  std::uint64_t bits = 0;
  std::uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

std::uint64_t nLogNUpper(std::size_t n) {
  if (n <= 1) return 0;
  return (static_cast<std::uint64_t>(n) - 1) * ceilLog2(n);
}

double nLogLogUpper(std::size_t n) {
  const auto nd = static_cast<double>(n);
  if (n < 4) return 2.0 * nd;
  const double loglog = std::log2(std::log2(nd));
  return 2.0 * nd * loglog + 2.0 * nd;
}

std::uint64_t linearUpper(std::size_t n) {
  const double v = (1.0 + std::sqrt(2.0)) * static_cast<double>(n) - 1.0;
  return static_cast<std::uint64_t>(std::ceil(v - 1e-9));
}

std::uint64_t lowerBound(std::size_t n) {
  // ⌈(3n−1)/2⌉ − 2, floored at 0 for degenerate n.
  const std::uint64_t ceilHalf = (3 * static_cast<std::uint64_t>(n) - 1 + 1) / 2;
  return ceilHalf >= 2 ? ceilHalf - 2 : 0;
}

std::uint64_t kLeafUpper(std::size_t n, std::size_t k) {
  return static_cast<std::uint64_t>(k) * n;
}

std::uint64_t kInnerUpper(std::size_t n, std::size_t k) {
  return static_cast<std::uint64_t>(k) * n;
}

std::uint64_t nonsplitLogUpper(std::size_t n) { return ceilLog2(n); }

double linearUpperSlope() noexcept { return 1.0 + std::sqrt(2.0); }

}  // namespace dynbcast::bounds
