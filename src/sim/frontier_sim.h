// FrontierSim: the sparse simulation backend.
//
// The dense BroadcastSim stores the heard-of matrix as n bitset rows —
// O(n²) bits per instance, which caps scenarios near n ≈ 10⁴. This file
// is the other half of the backend pair: rounds are adjacency lists
// (SparseRound), state is per-node sorted id vectors, and broadcast
// advances as frontier propagation — each round costs O(Σ_{(x,y)∈G}
// |Heard(x)|) set-merge work instead of O(n²/64) bit-ops, which wins
// exactly when the heard sets (or the round graphs) are sparse.
//
// Two layers live here, both EXACT — neither approximates t* or heard
// counts, so the differential suite can demand bit-for-bit agreement
// with BroadcastSim:
//
//   * FrontierSim — a full-state engine satisfying the SimBackend
//     concept (src/sim/sim_backend.h; conformance is static_asserted in
//     tests), plus applyEdges and metrics. Completion is incremental:
//     per-node
//     coverage counters c_x = |{y : x ∈ Heard(y)}| are bumped O(1) per
//     insertion (the heard-of state is monotone, so insertions are
//     permanent), making broadcastDone() O(1). Rows collapse to an
//     implicit "full" representation once |Heard(y)| = n, so the
//     near-completion tail is cheap.
//
//   * runFrontierTStar — a t*-only mode that never stores heard sets at
//     all. Forward word-parallel propagation of ≤64 sampled sources
//     (one uint64 per node) yields an upper bound U on t*; binary
//     search over the monotone predicate "⋂_y Heard_t(y) ≠ ∅" then
//     pins t* exactly, with each probe answered by a backward
//     word-parallel over-approximation (candidates reaching all sampled
//     targets ⊇ the true broadcasters) refined by forward certification
//     of candidate batches. Memory is O(n + cached round arcs): this is
//     what unlocks n = 10⁶.
//
// Layering: sim depends only on graph/tree/support, so round sequences
// arrive through the SparseRoundSource interface; the DynamicsModel
// adapter lives in src/dynamics/dynamics.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/bitmatrix.h"
#include "src/sim/metrics.h"
#include "src/support/bitset.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {

/// One round's communication graph as an arc list. Self-loops are
/// implicit (the model never forgets), so arcs with src == dst are
/// ignored by the consumers.
struct SparseRound {
  std::size_t n = 0;
  /// True when this round's arc set is identical to the previous round's
  /// (e.g. t-interval holding a tree for T rounds). FrontierSim then
  /// propagates only last-round deltas along each arc — sound because a
  /// persisting arc (x, y) already delivered Heard_{t-1}(x) to y.
  bool sameAsPrevious = false;
  /// (src, dst): dst hears src this round.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> arcs;
};

/// A replayable stream of round graphs for the t*-only mode. reset()
/// must rewind to round 0 so that the next() sequence replays exactly —
/// the same contract DynamicsModel::reset() already has.
class SparseRoundSource {
 public:
  virtual ~SparseRoundSource() = default;
  virtual void reset() = 0;
  /// The next round's graph; the reference stays valid until the
  /// following next() or reset().
  virtual const SparseRound& next() = 0;
};

/// Exact sparse mirror of BroadcastSim (see file comment).
class FrontierSim {
 public:
  explicit FrontierSim(std::size_t n);

  [[nodiscard]] std::size_t processCount() const noexcept { return n_; }
  [[nodiscard]] std::size_t round() const noexcept { return round_; }

  /// One synchronous round along a rooted tree (parent → child arcs,
  /// self-loops implicit) — the adversary-driven entry point.
  void applyTree(const RootedTree& tree);

  /// One round along an arbitrary reflexive graph; dense convenience for
  /// cross-validation (extracts the arc list, then applyEdges).
  void applyGraph(const BitMatrix& g);

  /// One round along an explicit arc list — the native sparse path.
  void applyEdges(const SparseRound& round);

  /// |Heard(y)|; O(1).
  [[nodiscard]] std::size_t heardCount(std::size_t y) const noexcept {
    return rows_[y].full ? n_ : rows_[y].ids.size();
  }

  /// x ∈ Heard(y)? O(log |Heard(y)|).
  [[nodiscard]] bool hasHeard(std::size_t y, std::size_t x) const;

  /// Heard(y) materialized as a bitset (tests / inspection).
  [[nodiscard]] DynBitset heardBitset(std::size_t y) const;

  /// |{y : x ∈ Heard(y)}| — how many processes x has reached; O(1).
  [[nodiscard]] std::size_t coverage(std::size_t x) const noexcept {
    return coverCount_[x];
  }

  /// True when some process has been heard by everyone (t* reached);
  /// O(1) via the maintained full-coverage counter.
  [[nodiscard]] bool broadcastDone() const noexcept {
    return fullCovers_ != 0;
  }

  /// True when everyone has heard of everyone; O(1).
  [[nodiscard]] bool gossipDone() const noexcept { return fullRows_ == n_; }

  /// {x : coverage(x) == n} materialized as a bitset.
  [[nodiscard]] DynBitset broadcasters() const;

  /// Same RoundMetrics as BroadcastSim::metrics(), from the maintained
  /// counters — O(n), no matrix walk.
  [[nodiscard]] RoundMetrics metrics() const;

  /// Returns to round 0 (identity state).
  void reset();

 private:
  /// One heard set: sorted ids, or an implicit full set once
  /// |Heard(y)| = n (ids are then released).
  struct Row {
    std::vector<std::uint32_t> ids;
    bool full = false;
  };

  void bumpCoverage(std::uint32_t x);
  void collapseToFull(std::size_t y);

  std::size_t n_;
  std::size_t round_ = 0;
  std::vector<Row> rows_;
  /// coverCount_[x] == |{y : x ∈ Heard(y)}|; insertions are permanent,
  /// so each costs one increment.
  std::vector<std::uint32_t> coverCount_;
  std::size_t fullCovers_ = 0;  ///< |{x : coverCount_[x] == n}|
  std::size_t fullRows_ = 0;    ///< |{y : Heard(y) full}|
  std::size_t totalOnes_ = 0;   ///< Σ_y |Heard(y)|

  /// Additions of the most recent round, consumed by the
  /// sameAsPrevious delta path. deltaFull_[y] marks "y's delta is its
  /// whole (now full) set".
  std::vector<std::vector<std::uint32_t>> delta_;
  std::vector<char> deltaFull_;
  std::vector<std::uint32_t> deltaTouched_;

  // Reused per-round scratch (allocation-free after warmup).
  std::vector<std::uint32_t> arcOffsets_;
  std::vector<std::uint32_t> arcSrcs_;
  std::vector<std::uint32_t> candidateBuf_;
  std::vector<std::uint32_t> mergeBuf_;
  std::vector<std::vector<std::uint32_t>> addBuf_;
  std::vector<std::uint32_t> touched_;
  std::vector<char> pendingFull_;
  SparseRound scratchRound_;
};

/// Options for the t*-only mode. Every field except maxRounds affects
/// performance only — the returned rounds/completed are exact for any
/// setting.
struct FrontierTStarOptions {
  /// Stall cap: rounds is reported as maxRounds with completed == false
  /// when broadcast does not finish within it.
  std::size_t maxRounds = 0;
  /// Seeds the (performance-only) choice of sampled sources/targets.
  std::uint64_t sampleSeed = 0;
  /// Sampled forward sources / backward targets, clamped to [1, 64].
  std::size_t samples = 64;
  /// Round-graph cache budget in arcs (~8 bytes each). Beyond it the
  /// binary-search probes replay rounds through source.reset() instead —
  /// slower, still exact.
  std::size_t cacheBudgetArcs = std::size_t(1) << 27;
};

struct FrontierTStarResult {
  std::size_t rounds = 0;  ///< t* when completed, else maxRounds
  bool completed = false;
  /// Diagnostics: total source.next() calls, and whether the exact
  /// certification pass ran (it is skipped when every node is sampled).
  std::size_t roundsGenerated = 0;
  bool certified = false;
};

/// Computes t* for the round sequence of `source` without materializing
/// heard sets: O(n) words of state plus the round cache. Exact — see the
/// file comment for the sampling + certification argument.
[[nodiscard]] FrontierTStarResult runFrontierTStar(
    std::size_t n, SparseRoundSource& source,
    const FrontierTStarOptions& options);

}  // namespace dynbcast
