// Per-round measurements of the evolving heard-of state.
//
// These are the quantities the paper's matrix-evolution analysis reasons
// about: how many (x, y) pairs are connected in G(t), how close the
// best-known process is to full coverage, and how many rows/columns of
// the adjacency matrix are already complete.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/bitmatrix.h"

namespace dynbcast {

struct RoundMetrics {
  std::size_t round = 0;
  /// Total ones in G(t): |{(x, y) : y has heard of x}|. Grows by ≥ 1 per
  /// round until broadcast (the paper's trivial n² argument).
  std::size_t totalEdges = 0;
  /// min/avg/max over y of |Heard(y)|.
  std::size_t minHeard = 0;
  double avgHeard = 0.0;
  std::size_t maxHeard = 0;
  /// max over x of |{y : x ∈ Heard(y)}| — the best broadcaster's coverage.
  std::size_t maxCoverage = 0;
  /// Rows of G(t) that are already full (processes that reached everyone).
  std::size_t completeRows = 0;
  /// Columns of G(t) that are full (processes that heard from everyone).
  std::size_t completeCols = 0;

  [[nodiscard]] std::string toString() const;
};

/// Computes metrics from the reach matrix (row x = who x has reached).
[[nodiscard]] RoundMetrics computeMetrics(const BitMatrix& reach,
                                          std::size_t round);

}  // namespace dynbcast
