// Gossip (all-to-all dissemination) helpers — the §5 "future work"
// extension: the same dynamic-rooted-tree adversary, but the run ends only
// when every process has heard of every process.
//
// Facts exercised by tests/benches: t*_gossip ≥ t*_broadcast on every
// sequence, and no *static* tree ever completes gossip for n ≥ 2 (a leaf
// has no out-edges besides its self-loop, so its id never propagates) —
// while dynamic sequences such as alternating reversed paths finish in
// Θ(n). Gossip termination is therefore a genuinely dynamic phenomenon.
#pragma once

#include <cstdint>
#include <functional>

#include "src/sim/broadcast_sim.h"

namespace dynbcast {

/// Result of comparing broadcast and gossip completion on one sequence.
struct GossipComparison {
  std::size_t broadcastRounds = 0;
  std::size_t gossipRounds = 0;
  bool broadcastCompleted = false;
  bool gossipCompleted = false;
};

/// Runs one simulation to gossip completion, recording when broadcast
/// completed along the way. `nextTree` sees the live state.
[[nodiscard]] GossipComparison runGossipComparison(
    std::size_t n,
    const std::function<RootedTree(const BroadcastSim&)>& nextTree,
    std::size_t maxRounds);

/// Default round cap for GOSSIP runs. Gossip has no unconditional upper
/// bound in this model — an adaptive delayer can stall it forever (see
/// the SEC5 bench) — so unlike defaultRoundCap(n), which encodes the
/// paper's broadcast bound ⌈(1+√2)n−1⌉, this cap is a stall detector:
/// oblivious dynamic sequences finish gossip in Θ(n) (≈ 2n for the
/// alternating ping-pong), so ~10n with slack separates "slow" from
/// "never" with a wide margin.
[[nodiscard]] std::size_t defaultGossipRoundCap(std::size_t n);

}  // namespace dynbcast
