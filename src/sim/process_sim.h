// ProcessSim: a literal synchronous message-passing implementation of the
// model, used to cross-validate BroadcastSim.
//
// Each process keeps an explicit knowledge set of process ids. In each
// round, the adversary's rooted tree defines the links; every process
// composes a Message carrying its full knowledge and the network delivers
// it along every out-link (parent → child). At the end of the round every
// process merges what it received. The self-loop is the process keeping
// its own knowledge.
//
// This is deliberately the "obvious" O(n²) implementation with real
// message objects and a delivery queue — an independent executable
// reading of Definitions 2.1–2.3, not an optimized clone of the bitset
// recurrence. Integration tests assert both simulators agree round by
// round on identical tree sequences.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "src/graph/bitmatrix.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {

/// A message in flight during one synchronous round.
struct Message {
  std::size_t sender = 0;
  std::size_t receiver = 0;
  /// The sender's entire knowledge at the start of the round.
  std::set<std::size_t> payload;
};

/// One process's state.
struct Process {
  std::size_t id = 0;
  /// Ids this process has heard of (always contains id).
  std::set<std::size_t> knowledge;
};

class ProcessSim {
 public:
  explicit ProcessSim(std::size_t n);

  [[nodiscard]] std::size_t processCount() const noexcept {
    return processes_.size();
  }
  [[nodiscard]] std::size_t round() const noexcept { return round_; }

  /// Runs one synchronous round along `tree`: send phase (messages are
  /// composed from start-of-round knowledge), delivery, then merge phase.
  void applyTree(const RootedTree& tree);

  /// One round along an arbitrary reflexive directed graph: a message
  /// travels every edge (x, y), x ≠ y, again composed from start-of-round
  /// knowledge. Same delivery machinery as applyTree.
  void applyGraph(const BitMatrix& g);

  [[nodiscard]] const Process& process(std::size_t id) const {
    return processes_[id];
  }

  /// |knowledge(y)| — the literal counterpart of BroadcastSim's
  /// heard-of row popcount.
  [[nodiscard]] std::size_t heardCount(std::size_t y) const noexcept {
    return processes_[y].knowledge.size();
  }

  /// Returns to round 0 (every process knows only itself).
  void reset();

  /// Ids known to everyone (broadcast certificate set).
  [[nodiscard]] std::set<std::size_t> knownToAll() const;

  [[nodiscard]] bool broadcastDone() const { return !knownToAll().empty(); }

  [[nodiscard]] bool gossipDone() const;

  /// Messages delivered in the most recent round (for inspection/tests).
  [[nodiscard]] const std::vector<Message>& lastRoundMessages()
      const noexcept {
    return delivered_;
  }

  /// Total messages delivered since construction.
  [[nodiscard]] std::size_t messagesDelivered() const noexcept {
    return totalMessages_;
  }

 private:
  std::vector<Process> processes_;
  std::vector<Message> delivered_;
  std::size_t totalMessages_ = 0;
  std::size_t round_ = 0;
};

}  // namespace dynbcast
