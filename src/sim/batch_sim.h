// BatchBroadcastSim: a struct-of-arrays simulator advancing B replicate
// instances of the broadcast model in lockstep, one round at a time.
//
// Layout: the heard-of matrices of all lanes are interleaved word plane
// by word plane — word w of row y of lane b lives at
//   words[(y * nwords + w) * width + b],
// so "the same word across every lane" is contiguous. A round's
// recurrence then runs over whole lane-planes: when all lanes apply the
// SAME tree (the common case for deterministic adversaries and the
// reason batching pays), row y's update is ONE contiguous
// nwords×width-word OR through the bitword SIMD dispatch table, with the
// tree decoded once instead of once per replicate. Per-lane trees fall
// back to a strided gather that still shares the traversal.
//
// The recurrence is double-buffered (next = prev_row | prev_parent).
// Because Heard_{t+1}(y) depends only on round-t values, this computes
// exactly the matrix BroadcastSim's in-place reverse-BFS pass computes —
// the whole batched path is bit-identical to B scalar runs, which the
// sweep goldens rely on.
//
// Completion: the running intersection ⋂_y Heard(y) is maintained as one
// interleaved lane-plane, AND-folded during the same pass that applies
// the round; per-lane popcounts of it land in commonCount so
// broadcastDone(lane) is O(1). Finished lanes retire via
// retireBroadcastDone(), which compacts the surviving lane columns
// in place (narrowing the stride) so later rounds do no dead work;
// originalLane() maps live positions back to constructed ones.
//
// A width-1 batch IS a BroadcastSim: the single-argument surface
// (heardCount(y) / broadcastDone() / gossipDone()) reads lane 0, which
// is how the class satisfies the SimBackend concept (sim_backend.h).
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/bitmatrix.h"
#include "src/support/bitset.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {

class BatchBroadcastSim {
 public:
  /// `width` lanes of n processes each, all at the identity state.
  BatchBroadcastSim(std::size_t n, std::size_t width);

  [[nodiscard]] std::size_t processCount() const noexcept { return n_; }
  [[nodiscard]] std::size_t round() const noexcept { return round_; }

  /// Live (unretired) lanes. Lane arguments below index THIS range.
  [[nodiscard]] std::size_t width() const noexcept { return width_; }

  /// Lanes the batch was constructed with.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// The constructed-time index of live lane `lane` (retirement compacts
  /// lanes, so live positions shift).
  [[nodiscard]] std::size_t originalLane(std::size_t lane) const noexcept {
    return laneOrigin_[lane];
  }

  /// Applies one synchronous round of `tree` to EVERY live lane — the
  /// fused contiguous fast path.
  void applyTree(const RootedTree& tree);

  /// Applies one round with a per-lane tree (trees.size() == width()):
  /// the strided path for randomized adversaries whose lanes diverge.
  void applyTrees(const std::vector<const RootedTree*>& trees);

  /// Applies one round along a reflexive directed graph, same graph for
  /// every lane (SimBackend surface parity with BroadcastSim).
  void applyGraph(const BitMatrix& g);

  /// |Heard(y)| in lane `lane`: an O(n/64) strided popcount on demand —
  /// the batch keeps no per-row counters (unlike BroadcastSim, it only
  /// ever needs completion, which the common plane answers).
  [[nodiscard]] std::size_t heardCount(std::size_t lane,
                                       std::size_t y) const noexcept;

  /// True when some process in lane `lane` has been heard by everyone.
  /// O(1): reads the per-lane popcount of the common plane.
  [[nodiscard]] bool broadcastDone(std::size_t lane) const noexcept {
    return commonCount_[lane] != 0;
  }

  /// True when everyone in lane `lane` heard everyone: an O(n²/64)
  /// on-demand scan (batched drivers only ever poll broadcastDone).
  [[nodiscard]] bool gossipDone(std::size_t lane) const noexcept;

  /// Lane-0 surface, making a width-1 batch a drop-in BroadcastSim.
  [[nodiscard]] std::size_t heardCount(std::size_t y) const noexcept {
    return heardCount(0, y);
  }
  [[nodiscard]] bool broadcastDone() const noexcept {
    return broadcastDone(0);
  }
  [[nodiscard]] bool gossipDone() const noexcept { return gossipDone(0); }

  /// Copies lane `lane`'s heard-of matrix out of the interleaved planes
  /// (tests cross-validate against BroadcastSim with this).
  [[nodiscard]] std::vector<DynBitset> heardMatrix(std::size_t lane) const;

  /// Compacts out every live lane whose broadcast is done; returns their
  /// ORIGINAL lane indices, ascending. Call after each round; the round
  /// counter at that point is the retired lanes' t*.
  std::vector<std::size_t> retireBroadcastDone();

  /// Returns every lane (original width) to the round-0 identity state.
  void reset();

 private:
  [[nodiscard]] std::size_t planeWords() const noexcept {
    return nwords_ * width_;
  }
  [[nodiscard]] const std::uint64_t* prevRow(std::size_t y) const noexcept {
    return prev_.data() + y * planeWords();
  }
  [[nodiscard]] std::uint64_t* nextRow(std::size_t y) noexcept {
    return next_.data() + y * planeWords();
  }

  /// Post-round bookkeeping shared by the apply paths: swap buffers,
  /// refresh per-lane common counts, bump the round counter.
  void finishRound();

  /// Rebuilds the common plane + counts from prev_ (reset/applyGraph).
  void rebuildCompletionState();

  std::size_t n_;
  std::size_t nwords_;   // words per row per lane
  std::size_t capacity_; // constructed lane count
  std::size_t width_;    // live lane count (≤ capacity_)
  std::size_t round_ = 0;
  // Interleaved heard planes, n_*nwords_*width_ words each, stride
  // width_ (narrowed in place on retirement).
  std::vector<std::uint64_t> prev_;
  std::vector<std::uint64_t> next_;
  // Interleaved ⋂_y Heard(y) plane, nwords_*width_ words.
  std::vector<std::uint64_t> common_;
  std::vector<std::size_t> commonCount_;  // per live lane
  std::vector<std::size_t> laneOrigin_;  // live lane -> constructed lane
  std::vector<std::size_t> keepScratch_; // reused retirement buffer
};

}  // namespace dynbcast
