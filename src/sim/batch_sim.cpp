// Allocation-free hot path: dynbcast_lint bans allocation in function
// bodies here (rule hot-alloc); setup/diagnostic exceptions carry allow().
// dynbcast-lint: hot-path
#include "src/sim/batch_sim.h"

#include <bit>
#include <cstring>

#include "src/support/assert.h"

namespace dynbcast {

namespace {

constexpr std::uint64_t kFullWord = ~static_cast<std::uint64_t>(0);

}  // namespace

BatchBroadcastSim::BatchBroadcastSim(std::size_t n, std::size_t width)
    : n_(n),
      nwords_((n + DynBitset::kBits - 1) / DynBitset::kBits),
      capacity_(width),
      width_(width) {
  DYNBCAST_ASSERT(n > 0);
  DYNBCAST_ASSERT(width > 0);
  prev_.resize(n_ * nwords_ * capacity_);
  next_.resize(n_ * nwords_ * capacity_);
  common_.resize(nwords_ * capacity_);
  commonCount_.resize(capacity_);
  laneOrigin_.resize(capacity_);
  reset();
}

void BatchBroadcastSim::reset() {
  width_ = capacity_;
  round_ = 0;
  for (std::size_t b = 0; b < capacity_; ++b) laneOrigin_[b] = b;
  std::memset(prev_.data(), 0, prev_.size() * sizeof(std::uint64_t));
  for (std::size_t y = 0; y < n_; ++y) {
    const std::uint64_t bit = static_cast<std::uint64_t>(1)
                              << (y % DynBitset::kBits);
    std::uint64_t* plane =
        prev_.data() + (y * nwords_ + y / DynBitset::kBits) * width_;
    for (std::size_t b = 0; b < width_; ++b) plane[b] |= bit;
  }
  rebuildCompletionState();
}

void BatchBroadcastSim::rebuildCompletionState() {
  // common = ⋂_y Heard(y), lane-plane at a time. Start from all-ones
  // with the tail invariant applied per word plane.
  const std::size_t tail = n_ % DynBitset::kBits;
  for (std::size_t w = 0; w < nwords_; ++w) {
    const std::uint64_t value =
        (w + 1 == nwords_ && tail != 0)
            ? (static_cast<std::uint64_t>(1) << tail) - 1
            : kFullWord;
    std::uint64_t* plane = common_.data() + w * width_;
    for (std::size_t b = 0; b < width_; ++b) plane[b] = value;
  }
  for (std::size_t y = 0; y < n_; ++y) {
    bitword::andAssign(common_.data(), prevRow(y), planeWords());
  }
  for (std::size_t b = 0; b < width_; ++b) {
    std::size_t c = 0;
    for (std::size_t w = 0; w < nwords_; ++w) {
      c += static_cast<std::size_t>(std::popcount(common_[w * width_ + b]));
    }
    commonCount_[b] = c;
  }
}

void BatchBroadcastSim::finishRound() {
  prev_.swap(next_);
  for (std::size_t b = 0; b < width_; ++b) {
    std::size_t c = 0;
    for (std::size_t w = 0; w < nwords_; ++w) {
      c += static_cast<std::size_t>(std::popcount(common_[w * width_ + b]));
    }
    commonCount_[b] = c;
  }
  ++round_;
}

void BatchBroadcastSim::applyTree(const RootedTree& tree) {
  DYNBCAST_ASSERT_MSG(tree.size() == n_, "tree size mismatch");
  DYNBCAST_ASSERT(width_ > 0);
  // Double-buffered recurrence, whole lane-plane at a time. No BFS
  // ordering is needed (unlike the in-place scalar pass): every next
  // row reads only prev rows. The running intersection folds in fused.
  const std::size_t pw = planeWords();
  const std::size_t tail = n_ % DynBitset::kBits;
  for (std::size_t w = 0; w < nwords_; ++w) {
    const std::uint64_t value =
        (w + 1 == nwords_ && tail != 0)
            ? (static_cast<std::uint64_t>(1) << tail) - 1
            : kFullWord;
    std::uint64_t* plane = common_.data() + w * width_;
    for (std::size_t b = 0; b < width_; ++b) plane[b] = value;
  }
  for (std::size_t y = 0; y < n_; ++y) {
    const std::size_t p = tree.parent(y);
    std::uint64_t* next = nextRow(y);
    if (p != y) {
      bitword::orInto(next, prevRow(y), prevRow(p), pw);
    } else {
      std::memcpy(next, prevRow(y), pw * sizeof(std::uint64_t));
    }
    bitword::andAssign(common_.data(), next, pw);
  }
  finishRound();
}

void BatchBroadcastSim::applyTrees(const std::vector<const RootedTree*>& trees) {
  DYNBCAST_ASSERT_MSG(trees.size() == width_,
                      "one tree per live lane required");
  for (const RootedTree* t : trees) {
    DYNBCAST_ASSERT_MSG(t != nullptr && t->size() == n_,
                        "tree size mismatch");
  }
  const std::size_t pw = planeWords();
  const std::size_t tail = n_ % DynBitset::kBits;
  for (std::size_t w = 0; w < nwords_; ++w) {
    const std::uint64_t value =
        (w + 1 == nwords_ && tail != 0)
            ? (static_cast<std::uint64_t>(1) << tail) - 1
            : kFullWord;
    std::uint64_t* plane = common_.data() + w * width_;
    for (std::size_t b = 0; b < width_; ++b) plane[b] = value;
  }
  for (std::size_t y = 0; y < n_; ++y) {
    const std::uint64_t* prevY = prevRow(y);
    std::uint64_t* next = nextRow(y);
    // Lanes diverge: gather each lane's parent row with stride width_.
    // The traversal (and the common fold below) still amortize.
    for (std::size_t b = 0; b < width_; ++b) {
      const std::size_t p = trees[b]->parent(y);
      if (p != y) {
        const std::uint64_t* prevP = prevRow(p);
        for (std::size_t w = 0; w < nwords_; ++w) {
          next[w * width_ + b] = prevY[w * width_ + b] | prevP[w * width_ + b];
        }
      } else {
        for (std::size_t w = 0; w < nwords_; ++w) {
          next[w * width_ + b] = prevY[w * width_ + b];
        }
      }
    }
    bitword::andAssign(common_.data(), next, pw);
  }
  finishRound();
}

void BatchBroadcastSim::applyGraph(const BitMatrix& g) {
  DYNBCAST_ASSERT_MSG(g.dim() == n_, "graph size mismatch");
  DYNBCAST_ASSERT_MSG(g.isReflexive(),
                      "model requires self-loops (no forgetting)");
  const std::size_t pw = planeWords();
  std::memcpy(next_.data(), prev_.data(),
              n_ * pw * sizeof(std::uint64_t));
  for (std::size_t x = 0; x < n_; ++x) {
    const DynBitset& row = g.row(x);
    for (std::size_t y = row.findFirst(); y < n_; y = row.findNext(y + 1)) {
      if (y != x) bitword::orAssign(nextRow(y), prevRow(x), pw);
    }
  }
  prev_.swap(next_);
  ++round_;
  rebuildCompletionState();
}

std::size_t BatchBroadcastSim::heardCount(std::size_t lane,
                                          std::size_t y) const noexcept {
  const std::uint64_t* row = prevRow(y);
  std::size_t c = 0;
  for (std::size_t w = 0; w < nwords_; ++w) {
    c += static_cast<std::size_t>(std::popcount(row[w * width_ + lane]));
  }
  return c;
}

bool BatchBroadcastSim::gossipDone(std::size_t lane) const noexcept {
  for (std::size_t y = 0; y < n_; ++y) {
    if (heardCount(lane, y) != n_) return false;
  }
  return true;
}

std::vector<DynBitset> BatchBroadcastSim::heardMatrix(std::size_t lane) const {
  // Lane extraction is a per-retire diagnostic copy, not part of the
  // round kernel.
  // dynbcast-lint: allow(hot-alloc) -- diagnostic copy, not round kernel
  std::vector<DynBitset> heard(n_, DynBitset(n_));
  for (std::size_t y = 0; y < n_; ++y) {
    const std::uint64_t* row = prevRow(y);
    std::uint64_t* dst = heard[y].wordData();
    for (std::size_t w = 0; w < nwords_; ++w) {
      dst[w] = row[w * width_ + lane];
    }
  }
  return heard;
}

std::vector<std::size_t> BatchBroadcastSim::retireBroadcastDone() {
  // The retire list is tiny (<= width) and built only when lanes
  // finish, not every round.
  // dynbcast-lint: allow(hot-alloc) -- only on lane retirement
  std::vector<std::size_t> retired;
  std::vector<std::size_t>& keep = keepScratch_;
  keep.clear();
  for (std::size_t b = 0; b < width_; ++b) {
    if (broadcastDone(b)) {
      retired.push_back(laneOrigin_[b]);
    } else {
      keep.push_back(b);
    }
  }
  if (retired.empty()) return retired;
  const std::size_t newWidth = keep.size();
  if (newWidth != 0) {
    // In-place forward compaction of the interleaved planes: for every
    // word plane r, dst index r*newWidth + j ≤ src index
    // r*width_ + keep[j] (newWidth ≤ width_, j ≤ keep[j]), and the only
    // equality case reads before it writes — so narrowing the stride
    // front to back never clobbers unread data.
    for (std::size_t r = 0; r < n_ * nwords_; ++r) {
      const std::uint64_t* src = prev_.data() + r * width_;
      std::uint64_t* dst = prev_.data() + r * newWidth;
      for (std::size_t j = 0; j < newWidth; ++j) dst[j] = src[keep[j]];
    }
    for (std::size_t j = 0; j < newWidth; ++j) {
      commonCount_[j] = commonCount_[keep[j]];
      laneOrigin_[j] = laneOrigin_[keep[j]];
    }
  }
  width_ = newWidth;
  return retired;
}

}  // namespace dynbcast
