// SimBackend: the concept every simulation backend satisfies.
//
// Four engines implement the paper's model, each with a different
// representation tuned to a different regime:
//
//   * BroadcastSim      — dense heard-of bit matrix, the fast reference
//   * ProcessSim        — literal message objects, the executable spec
//   * FrontierSim       — sparse per-node id vectors for n up to 10⁶
//   * BatchBroadcastSim — lane-interleaved SoA planes advancing a whole
//                         replicate batch in lockstep
//
// They grew the same public surface by convention; this concept makes
// the convention a compile-time contract (conformance is static_asserted
// in tests/sim_backend_test.cpp), so a drifting signature is a build
// error instead of a latent engine-selection bug. ScenarioSpec's
// backend/batch routing and the differential suites all program against
// exactly this surface.
//
// Contract (beyond the signatures): applyTree applies one synchronous
// round along a rooted tree; applyGraph one round along a reflexive
// directed graph; heardCount(y) == |Heard(y)|; broadcastDone() iff some
// process has been heard by everyone (⋂_y Heard(y) ≠ ∅); gossipDone()
// iff everyone heard everyone; reset() returns to the round-0 identity
// state. All backends are EXACT — same t*, same counts, bit for bit —
// which is what lets the engine pick a backend per workload without
// changing any result.
#pragma once

#include <concepts>
#include <cstddef>

#include "src/graph/bitmatrix.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {

template <typename S>
concept SimBackend = requires(S sim, const S& csim, const RootedTree& tree,
                              const BitMatrix& graph, std::size_t y) {
  { csim.processCount() } -> std::convertible_to<std::size_t>;
  { csim.round() } -> std::convertible_to<std::size_t>;
  sim.applyTree(tree);
  sim.applyGraph(graph);
  sim.reset();
  { csim.heardCount(y) } -> std::convertible_to<std::size_t>;
  { csim.broadcastDone() } -> std::convertible_to<bool>;
  { csim.gossipDone() } -> std::convertible_to<bool>;
};

}  // namespace dynbcast
