#include "src/sim/gossip.h"

namespace dynbcast {

GossipComparison runGossipComparison(
    std::size_t n,
    const std::function<RootedTree(const BroadcastSim&)>& nextTree,
    std::size_t maxRounds) {
  BroadcastSim sim(n);
  GossipComparison cmp;
  if (sim.broadcastDone()) {
    cmp.broadcastCompleted = true;
  }
  if (sim.gossipDone()) {
    cmp.gossipCompleted = true;
    return cmp;
  }
  while (sim.round() < maxRounds) {
    sim.applyTree(nextTree(sim));
    if (!cmp.broadcastCompleted && sim.broadcastDone()) {
      cmp.broadcastCompleted = true;
      cmp.broadcastRounds = sim.round();
    }
    if (sim.gossipDone()) {
      cmp.gossipCompleted = true;
      cmp.gossipRounds = sim.round();
      return cmp;
    }
  }
  cmp.gossipRounds = sim.round();
  if (!cmp.broadcastCompleted) cmp.broadcastRounds = sim.round();
  return cmp;
}

std::size_t defaultGossipRoundCap(std::size_t n) { return 10 * n + 50; }

}  // namespace dynbcast
