// BroadcastSim: the fast reference implementation of the paper's model
// (Definitions 2.1–2.3).
//
// State: the heard-of matrix H, where row y is
//   Heard_t(y) = {x : (x, y) ∈ G(t)},   G(t) = G_1 ∘ … ∘ G_t,
// i.e. the transpose of the product graph. Applying a rooted tree G_{t+1}
// is the recurrence Heard_{t+1}(y) = Heard_t(y) ∪ Heard_t(parent(y)),
// executed in reverse-BFS order so the update is in-place (children read
// their parent's round-t value before the parent mutates) — O(n²/64)
// words per round.
//
// Broadcast is done when ⋂_y Heard(y) ≠ ∅ (some x heard by everyone);
// gossip is done when every Heard(y) = [n].
//
// Completion tracking is INCREMENTAL: the simulator maintains the running
// row-intersection ⋂_y Heard(y) and per-row popcounts alongside the
// matrix, refreshed in the same fused pass that applies a round. done()
// and coverage checks therefore cost O(n/64) or O(1) instead of
// rescanning the whole O(n²/64) matrix every round.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/graph/bitmatrix.h"
#include "src/sim/metrics.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {

class BroadcastSim {
 public:
  /// n processes; initially every process has heard only of itself
  /// (G(0) is the identity).
  explicit BroadcastSim(std::size_t n);

  /// Resumes from an explicit heard-of matrix (row y = Heard(y)); used by
  /// search adversaries exploring hypothetical future states. Every row
  /// must contain its own index (self-loops are never forgotten).
  [[nodiscard]] static BroadcastSim fromHeard(std::vector<DynBitset> heard,
                                              std::size_t round = 0);

  [[nodiscard]] std::size_t processCount() const noexcept { return n_; }
  [[nodiscard]] std::size_t round() const noexcept { return round_; }

  /// Applies one synchronous round along the given rooted tree (the
  /// self-loops of the model are implicit in the recurrence).
  void applyTree(const RootedTree& tree);

  /// The heard-of recurrence applied to a standalone matrix (row y =
  /// Heard(y)). Adaptive adversaries use this to evaluate candidate trees
  /// on copies of the live state without constructing a simulator.
  static void applyTreeTo(std::vector<DynBitset>& heard,
                          const RootedTree& tree);

  /// Applies one round along an arbitrary reflexive directed graph (used
  /// for the nonsplit-adversary experiments). The graph must have all
  /// self-loops, matching the model's no-forgetting guarantee.
  void applyGraph(const BitMatrix& g);

  /// Heard set of process y: who y has heard of so far.
  [[nodiscard]] const DynBitset& heardBy(std::size_t y) const noexcept {
    return heard_[y];
  }

  /// |Heard(y)| from the incrementally maintained per-row popcounts —
  /// O(1), never recounts the row.
  [[nodiscard]] std::size_t heardCount(std::size_t y) const noexcept {
    return rowCount_[y];
  }

  /// The heard-of matrix (row y = Heard(y)); the transpose of G(t).
  [[nodiscard]] const std::vector<DynBitset>& heardMatrix() const noexcept {
    return heard_;
  }

  /// The product graph G(t) itself (row x = who x has reached).
  [[nodiscard]] BitMatrix reachMatrix() const;

  /// Set of processes heard by everyone: ⋂_y Heard(y). Maintained
  /// incrementally; this is a reference to LIVE state — the next
  /// applyTree/applyGraph/reset mutates it in place, so callers that
  /// need a snapshot across rounds must copy it (pre-rewrite the method
  /// returned a copy unconditionally).
  [[nodiscard]] const DynBitset& broadcasters() const noexcept {
    return common_;
  }

  /// True when some process has been heard by everyone (t* reached).
  /// O(1): reads the popcount maintained by the fused intersection pass.
  [[nodiscard]] bool broadcastDone() const noexcept {
    return commonCount_ != 0;
  }

  /// True when everyone has heard of everyone (gossip complete). O(1):
  /// reads the maintained full-row counter.
  [[nodiscard]] bool gossipDone() const noexcept { return fullRows_ == n_; }

  [[nodiscard]] RoundMetrics metrics() const;

  /// Returns to round 0 (identity state).
  void reset();

 private:
  /// Recomputes common_/rowCount_/fullRows_ from heard_ (used on reset,
  /// fromHeard, and applyGraph, where rows change arbitrarily).
  void rebuildCompletionState();

  std::size_t n_;
  std::size_t round_ = 0;
  std::vector<DynBitset> heard_;
  std::vector<DynBitset> scratch_;
  // Incremental completion state (see file comment). Invariants after
  // every public mutation: common_ == ⋂_y heard_[y],
  // commonCount_ == common_.count(), rowCount_[y] == heard_[y].count(),
  // fullRows_ == |{y : rowCount_[y]==n}|.
  DynBitset common_;
  std::size_t commonCount_ = 0;
  std::vector<std::size_t> rowCount_;
  std::size_t fullRows_ = 0;
  std::vector<std::size_t> orderScratch_;  // reused BFS-order buffer
};

/// Outcome of a driven simulation run.
struct BroadcastRun {
  /// Rounds executed until completion (== t* when completed).
  std::size_t rounds = 0;
  bool completed = false;
  /// Per-round metrics (entry r describes the state after round r+1);
  /// empty unless requested.
  std::vector<RoundMetrics> history;
};

/// Drives a BroadcastSim with trees supplied by `nextTree` (which may
/// inspect the state — adaptive adversaries do) until broadcast completes
/// or maxRounds is hit.
[[nodiscard]] BroadcastRun runBroadcast(
    std::size_t n,
    const std::function<RootedTree(const BroadcastSim&)>& nextTree,
    std::size_t maxRounds, bool recordHistory = false);

/// Same driver but runs to gossip completion (everyone heard everyone).
[[nodiscard]] BroadcastRun runGossip(
    std::size_t n,
    const std::function<RootedTree(const BroadcastSim&)>& nextTree,
    std::size_t maxRounds, bool recordHistory = false);

}  // namespace dynbcast
