#include "src/sim/trace.h"

#include <sstream>

#include "src/support/assert.h"
#include "src/support/format.h"

namespace dynbcast {

void SimTrace::record(const RootedTree& tree, const RoundMetrics& metrics) {
  DYNBCAST_ASSERT(tree.size() == n_);
  trees_.push_back(tree);
  metrics_.push_back(metrics);
}

std::size_t SimTrace::replayAndVerify() const {
  BroadcastSim sim(n_);
  std::size_t broadcastRound = 0;
  for (std::size_t r = 0; r < trees_.size(); ++r) {
    sim.applyTree(trees_[r]);
    const RoundMetrics live = sim.metrics();
    const RoundMetrics& recorded = metrics_[r];
    DYNBCAST_ASSERT_MSG(live.totalEdges == recorded.totalEdges &&
                            live.minHeard == recorded.minHeard &&
                            live.maxHeard == recorded.maxHeard &&
                            live.maxCoverage == recorded.maxCoverage &&
                            live.completeRows == recorded.completeRows &&
                            live.completeCols == recorded.completeCols,
                        "trace replay diverged at round " +
                            std::to_string(r + 1));
    if (broadcastRound == 0 && sim.broadcastDone()) {
      broadcastRound = sim.round();
    }
  }
  return broadcastRound;
}

std::string SimTrace::toCsv() const {
  std::ostringstream os;
  os << "round,total_edges,min_heard,avg_heard,max_heard,max_coverage,"
     << "complete_rows,complete_cols\n";
  for (const RoundMetrics& m : metrics_) {
    os << m.round << ',' << m.totalEdges << ',' << m.minHeard << ','
       << fmtDouble(m.avgHeard, 4) << ',' << m.maxHeard << ','
       << m.maxCoverage << ',' << m.completeRows << ',' << m.completeCols
       << '\n';
  }
  return os.str();
}

SimTrace recordBroadcastTrace(
    std::size_t n,
    const std::function<RootedTree(const BroadcastSim&)>& nextTree,
    std::size_t maxRounds, std::uint64_t seed, bool* completedOut) {
  BroadcastSim sim(n);
  SimTrace trace(n, seed);
  bool completed = sim.broadcastDone();
  while (!completed && sim.round() < maxRounds) {
    RootedTree t = nextTree(sim);
    sim.applyTree(t);
    trace.record(t, sim.metrics());
    completed = sim.broadcastDone();
  }
  if (completedOut != nullptr) *completedOut = completed;
  return trace;
}

}  // namespace dynbcast
