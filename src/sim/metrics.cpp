#include "src/sim/metrics.h"

#include <algorithm>
#include <sstream>

namespace dynbcast {

RoundMetrics computeMetrics(const BitMatrix& reach, std::size_t round) {
  const std::size_t n = reach.dim();
  RoundMetrics m;
  m.round = round;
  // Row x of `reach` = set of y that x has reached. |Heard(y)| is the
  // column weight; coverage of x is the row weight.
  std::size_t total = 0;
  m.maxCoverage = 0;
  m.completeRows = 0;
  for (std::size_t x = 0; x < n; ++x) {
    const std::size_t w = reach.row(x).count();
    total += w;
    m.maxCoverage = std::max(m.maxCoverage, w);
    if (w == n) ++m.completeRows;
  }
  m.totalEdges = total;
  const BitMatrix heard = reach.transposed();
  m.minHeard = n;
  m.maxHeard = 0;
  m.completeCols = 0;
  for (std::size_t y = 0; y < n; ++y) {
    const std::size_t w = heard.row(y).count();
    m.minHeard = std::min(m.minHeard, w);
    m.maxHeard = std::max(m.maxHeard, w);
    if (w == n) ++m.completeCols;
  }
  m.avgHeard = n == 0 ? 0.0 : static_cast<double>(total) /
                                   static_cast<double>(n);
  return m;
}

std::string RoundMetrics::toString() const {
  std::ostringstream os;
  os << "round=" << round << " edges=" << totalEdges << " heard=[" << minHeard
     << "/" << avgHeard << "/" << maxHeard << "] maxCoverage=" << maxCoverage
     << " completeRows=" << completeRows << " completeCols=" << completeCols;
  return os.str();
}

}  // namespace dynbcast
