#include "src/sim/process_sim.h"

#include <algorithm>

#include "src/support/assert.h"

namespace dynbcast {

ProcessSim::ProcessSim(std::size_t n) {
  DYNBCAST_ASSERT(n > 0);
  processes_.reserve(n);
  for (std::size_t id = 0; id < n; ++id) {
    processes_.push_back(Process{id, {id}});
  }
}

void ProcessSim::applyTree(const RootedTree& tree) {
  DYNBCAST_ASSERT_MSG(tree.size() == processCount(), "tree size mismatch");
  // Send phase: every process addresses its knowledge to each of its
  // children in the adversary's tree. Messages snapshot start-of-round
  // knowledge, so composition order is irrelevant (synchronous rounds).
  std::vector<Message> network;
  for (const Process& p : processes_) {
    for (const std::size_t child : tree.childrenOf(p.id)) {
      network.push_back(Message{p.id, child, p.knowledge});
    }
  }
  // Delivery + merge phase.
  for (const Message& msg : network) {
    auto& knowledge = processes_[msg.receiver].knowledge;
    knowledge.insert(msg.payload.begin(), msg.payload.end());
  }
  totalMessages_ += network.size();
  delivered_ = std::move(network);
  ++round_;
}

void ProcessSim::applyGraph(const BitMatrix& g) {
  DYNBCAST_ASSERT_MSG(g.dim() == processCount(), "graph size mismatch");
  DYNBCAST_ASSERT_MSG(g.isReflexive(),
                      "model requires self-loops (no forgetting)");
  std::vector<Message> network;
  for (const Process& p : processes_) {
    const DynBitset& row = g.row(p.id);
    for (std::size_t y = row.findFirst(); y < processCount();
         y = row.findNext(y + 1)) {
      if (y != p.id) network.push_back(Message{p.id, y, p.knowledge});
    }
  }
  for (const Message& msg : network) {
    auto& knowledge = processes_[msg.receiver].knowledge;
    knowledge.insert(msg.payload.begin(), msg.payload.end());
  }
  totalMessages_ += network.size();
  delivered_ = std::move(network);
  ++round_;
}

void ProcessSim::reset() {
  for (Process& p : processes_) p.knowledge = {p.id};
  delivered_.clear();
  totalMessages_ = 0;
  round_ = 0;
}

std::set<std::size_t> ProcessSim::knownToAll() const {
  std::set<std::size_t> common = processes_.front().knowledge;
  for (std::size_t id = 1; id < processes_.size() && !common.empty(); ++id) {
    const auto& k = processes_[id].knowledge;
    std::set<std::size_t> next;
    std::set_intersection(common.begin(), common.end(), k.begin(), k.end(),
                          std::inserter(next, next.begin()));
    common.swap(next);
  }
  return common;
}

bool ProcessSim::gossipDone() const {
  return std::all_of(processes_.begin(), processes_.end(),
                     [n = processCount()](const Process& p) {
                       return p.knowledge.size() == n;
                     });
}

}  // namespace dynbcast
