// SimTrace: a recorded execution — the adversary's tree sequence plus
// per-round metrics. Traces make adversarial executions reproducible
// artifacts: they can be replayed against a fresh simulator (tests use
// this to validate determinism) and exported as CSV for plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/broadcast_sim.h"
#include "src/sim/metrics.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {

class SimTrace {
 public:
  explicit SimTrace(std::size_t n, std::uint64_t seed = 0)
      : n_(n), seed_(seed) {}

  [[nodiscard]] std::size_t processCount() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  void record(const RootedTree& tree, const RoundMetrics& metrics);

  [[nodiscard]] std::size_t roundCount() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] const std::vector<RootedTree>& trees() const noexcept {
    return trees_;
  }
  [[nodiscard]] const std::vector<RoundMetrics>& metrics() const noexcept {
    return metrics_;
  }

  /// Replays the tree sequence on a fresh simulator and returns the round
  /// at which broadcast completed (0 when it never did within the trace).
  /// Also verifies that the recorded metrics match the replay; throws
  /// AssertionError on divergence.
  std::size_t replayAndVerify() const;

  /// CSV with one row per round: round, edges, heard min/avg/max,
  /// coverage, complete rows/cols.
  [[nodiscard]] std::string toCsv() const;

 private:
  std::size_t n_;
  std::uint64_t seed_;
  std::vector<RootedTree> trees_;
  std::vector<RoundMetrics> metrics_;
};

/// Runs an adversary callback to broadcast completion while recording a
/// trace. Returns the trace; `completedOut` (optional) reports success.
[[nodiscard]] SimTrace recordBroadcastTrace(
    std::size_t n,
    const std::function<RootedTree(const BroadcastSim&)>& nextTree,
    std::size_t maxRounds, std::uint64_t seed = 0,
    bool* completedOut = nullptr);

}  // namespace dynbcast
