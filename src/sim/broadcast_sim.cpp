// Allocation-free hot path: dynbcast_lint bans allocation in function
// bodies here (rule hot-alloc); setup/diagnostic exceptions carry allow().
// dynbcast-lint: hot-path
#include "src/sim/broadcast_sim.h"

#include "src/support/assert.h"

namespace dynbcast {

BroadcastSim::BroadcastSim(std::size_t n)
    : n_(n),
      heard_(n, DynBitset(n)),
      scratch_(n, DynBitset(n)),
      common_(n),
      rowCount_(n, 0) {
  DYNBCAST_ASSERT(n > 0);
  reset();
}

BroadcastSim BroadcastSim::fromHeard(std::vector<DynBitset> heard,
                                     std::size_t round) {
  DYNBCAST_ASSERT(!heard.empty());
  BroadcastSim sim(heard.size());
  for (std::size_t y = 0; y < heard.size(); ++y) {
    DYNBCAST_ASSERT_MSG(heard[y].size() == heard.size() && heard[y].test(y),
                        "heard row must be n-sized and contain itself");
  }
  sim.heard_ = std::move(heard);
  sim.round_ = round;
  sim.rebuildCompletionState();
  return sim;
}

void BroadcastSim::reset() {
  round_ = 0;
  for (std::size_t y = 0; y < n_; ++y) {
    heard_[y].clear();
    heard_[y].set(y);
  }
  rebuildCompletionState();
}

void BroadcastSim::rebuildCompletionState() {
  common_.setAll();
  commonCount_ = n_;
  fullRows_ = 0;
  const std::size_t nwords = common_.wordCount();
  for (std::size_t y = 0; y < n_; ++y) {
    rowCount_[y] = heard_[y].count();
    if (rowCount_[y] == n_) ++fullRows_;
    commonCount_ = bitword::andAssignCount(common_.wordData(),
                                           heard_[y].wordData(), nwords);
  }
}

void BroadcastSim::applyTree(const RootedTree& tree) {
  DYNBCAST_ASSERT_MSG(tree.size() == n_, "tree size mismatch");
  // One fused reverse-BFS pass: OR the parent row in, refresh the row's
  // popcount, and rebuild the running intersection. Each node's row is
  // mutated exactly once (at its own step), so intersecting it right
  // after its update sees its final round-(t+1) value.
  tree.bfsOrderInto(orderScratch_);
  common_.setAll();
  commonCount_ = n_;
  const std::size_t nwords = common_.wordCount();
  for (std::size_t i = orderScratch_.size(); i-- > 0;) {
    const std::size_t y = orderScratch_[i];
    const std::size_t p = tree.parent(y);
    if (p != y) {
      const std::size_t c = heard_[y].orCountWith(heard_[p]);
      if (c != rowCount_[y]) {
        rowCount_[y] = c;
        if (c == n_) ++fullRows_;
      }
    }
    commonCount_ = bitword::andAssignCount(common_.wordData(),
                                           heard_[y].wordData(), nwords);
  }
  ++round_;
}

void BroadcastSim::applyTreeTo(std::vector<DynBitset>& heard,
                               const RootedTree& tree) {
  DYNBCAST_ASSERT_MSG(tree.size() == heard.size(), "tree size mismatch");
  // Reverse-BFS: every child is updated before its parent, so the
  // parent's heard set still holds its round-(t-1) value when read.
  // Reference path; the fused applyTree() kernel is the
  // allocation-free one used by sweeps.
  // dynbcast-lint: allow(hot-alloc) -- reference path, not the kernel
  const std::vector<std::size_t> order = tree.bfsOrder();
  for (std::size_t i = order.size(); i-- > 0;) {
    const std::size_t y = order[i];
    const std::size_t p = tree.parent(y);
    if (p != y) heard[y].orWith(heard[p]);
  }
}

void BroadcastSim::applyGraph(const BitMatrix& g) {
  DYNBCAST_ASSERT_MSG(g.dim() == n_, "graph size mismatch");
  DYNBCAST_ASSERT_MSG(g.isReflexive(),
                      "model requires self-loops (no forgetting)");
  // Heard_{t+1}(y) = ∪ {Heard_t(x) : (x, y) ∈ g}. Arbitrary in-degree
  // needs the double buffer.
  for (std::size_t y = 0; y < n_; ++y) {
    scratch_[y] = heard_[y];
  }
  for (std::size_t x = 0; x < n_; ++x) {
    const DynBitset& row = g.row(x);
    for (std::size_t y = row.findFirst(); y < n_; y = row.findNext(y + 1)) {
      if (y != x) scratch_[y].orWith(heard_[x]);
    }
  }
  heard_.swap(scratch_);
  ++round_;
  // Arbitrary graphs can touch every row; recompute the completion state
  // in one O(n²/64) pass (the same cost class as the round itself).
  rebuildCompletionState();
}

BitMatrix BroadcastSim::reachMatrix() const {
  BitMatrix reach(n_);
  for (std::size_t y = 0; y < n_; ++y) {
    const DynBitset& h = heard_[y];
    for (std::size_t x = h.findFirst(); x < n_; x = h.findNext(x + 1)) {
      reach.set(x, y);
    }
  }
  return reach;
}

RoundMetrics BroadcastSim::metrics() const {
  return computeMetrics(reachMatrix(), round_);
}

namespace {

BroadcastRun runUntil(
    std::size_t n,
    const std::function<RootedTree(const BroadcastSim&)>& nextTree,
    std::size_t maxRounds, bool recordHistory,
    const std::function<bool(const BroadcastSim&)>& done) {
  BroadcastSim sim(n);
  BroadcastRun run;
  if (done(sim)) {
    run.completed = true;
    return run;
  }
  while (sim.round() < maxRounds) {
    sim.applyTree(nextTree(sim));
    if (recordHistory) run.history.push_back(sim.metrics());
    if (done(sim)) {
      run.rounds = sim.round();
      run.completed = true;
      return run;
    }
  }
  run.rounds = sim.round();
  run.completed = false;
  return run;
}

}  // namespace

BroadcastRun runBroadcast(
    std::size_t n,
    const std::function<RootedTree(const BroadcastSim&)>& nextTree,
    std::size_t maxRounds, bool recordHistory) {
  return runUntil(n, nextTree, maxRounds, recordHistory,
                  [](const BroadcastSim& s) { return s.broadcastDone(); });
}

BroadcastRun runGossip(
    std::size_t n,
    const std::function<RootedTree(const BroadcastSim&)>& nextTree,
    std::size_t maxRounds, bool recordHistory) {
  return runUntil(n, nextTree, maxRounds, recordHistory,
                  [](const BroadcastSim& s) { return s.gossipDone(); });
}

}  // namespace dynbcast
