#include "src/sim/frontier_sim.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <iterator>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "src/support/assert.h"
#include "src/support/rng.h"

namespace dynbcast {

FrontierSim::FrontierSim(std::size_t n) : n_(n) {
  DYNBCAST_ASSERT_MSG(n >= 1, "FrontierSim needs at least one process");
  DYNBCAST_ASSERT_MSG(
      n < std::numeric_limits<std::uint32_t>::max(),
      "FrontierSim stores node ids as 32-bit values");
  rows_.resize(n_);
  coverCount_.resize(n_);
  delta_.resize(n_);
  deltaFull_.resize(n_, 0);
  addBuf_.resize(n_);
  pendingFull_.resize(n_, 0);
  reset();
}

void FrontierSim::reset() {
  round_ = 0;
  fullCovers_ = 0;
  fullRows_ = 0;
  totalOnes_ = n_;
  for (std::size_t y = 0; y < n_; ++y) {
    rows_[y].full = n_ == 1;
    rows_[y].ids.clear();
    if (n_ > 1) rows_[y].ids.push_back(static_cast<std::uint32_t>(y));
    delta_[y].clear();
    deltaFull_[y] = 0;
  }
  std::fill(coverCount_.begin(), coverCount_.end(), std::uint32_t{1});
  if (n_ == 1) {
    fullCovers_ = 1;
    fullRows_ = 1;
  }
  deltaTouched_.clear();
}

void FrontierSim::bumpCoverage(std::uint32_t x) {
  if (++coverCount_[x] == n_) ++fullCovers_;
}

void FrontierSim::collapseToFull(std::size_t y) {
  Row& row = rows_[y];
  // Everything not yet in Heard(y) is inserted now: walk the complement
  // of the sorted id list once (this happens at most once per node).
  std::size_t i = 0;
  for (std::uint32_t x = 0; x < n_; ++x) {
    if (i < row.ids.size() && row.ids[i] == x) {
      ++i;
      continue;
    }
    bumpCoverage(x);
  }
  totalOnes_ += n_ - row.ids.size();
  row.full = true;
  ++fullRows_;
  row.ids.clear();
  row.ids.shrink_to_fit();
  deltaFull_[y] = 1;
  delta_[y].clear();
  deltaTouched_.push_back(static_cast<std::uint32_t>(y));
}

void FrontierSim::applyEdges(const SparseRound& round) {
  DYNBCAST_ASSERT_MSG(round.n == n_,
                      "sparse round has the wrong process count");
  // A "same as previous" round may only follow an applied round; the
  // delta path needs last round's additions.
  const bool usesDelta = round.sameAsPrevious && round_ > 0;

  // Bucket arcs by destination (counting sort into a CSR layout).
  arcOffsets_.assign(n_ + 1, 0);
  for (const auto& [src, dst] : round.arcs) {
    DYNBCAST_ASSERT_MSG(src < n_ && dst < n_, "sparse arc out of range");
    if (src == dst) continue;  // self-loops are implicit
    ++arcOffsets_[dst + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) arcOffsets_[i] += arcOffsets_[i - 1];
  arcSrcs_.resize(arcOffsets_[n_]);
  for (const auto& [src, dst] : round.arcs) {
    if (src == dst) continue;
    arcSrcs_[arcOffsets_[dst]++] = src;
  }
  // After the fill, arcOffsets_[y] is the END of y's bucket and the
  // start is arcOffsets_[y - 1] (0 for y == 0).

  // Pass 1: read-only over all rows — compute each destination's
  // additions from start-of-round source sets (or last-round deltas when
  // the arc set persisted).
  touched_.clear();
  for (std::size_t y = 0; y < n_; ++y) {
    const std::size_t begin = y == 0 ? 0 : arcOffsets_[y - 1];
    const std::size_t end = arcOffsets_[y];
    pendingFull_[y] = 0;
    if (begin == end || rows_[y].full) continue;
    bool srcFull = false;
    candidateBuf_.clear();
    for (std::size_t k = begin; k < end; ++k) {
      const std::uint32_t x = arcSrcs_[k];
      if (usesDelta) {
        if (deltaFull_[x]) {
          srcFull = true;
          break;
        }
        candidateBuf_.insert(candidateBuf_.end(), delta_[x].begin(),
                             delta_[x].end());
      } else {
        if (rows_[x].full) {
          srcFull = true;
          break;
        }
        candidateBuf_.insert(candidateBuf_.end(), rows_[x].ids.begin(),
                             rows_[x].ids.end());
      }
    }
    if (srcFull) {
      // A full source hands over everything: y collapses in pass 2.
      pendingFull_[y] = 1;
      touched_.push_back(static_cast<std::uint32_t>(y));
      continue;
    }
    if (candidateBuf_.empty()) continue;
    std::sort(candidateBuf_.begin(), candidateBuf_.end());
    candidateBuf_.erase(
        std::unique(candidateBuf_.begin(), candidateBuf_.end()),
        candidateBuf_.end());
    // candidates \ Heard(y), both sorted.
    const std::vector<std::uint32_t>& ids = rows_[y].ids;
    std::vector<std::uint32_t>& adds = addBuf_[y];
    adds.clear();
    std::size_t i = 0;
    for (const std::uint32_t c : candidateBuf_) {
      while (i < ids.size() && ids[i] < c) ++i;
      if (i < ids.size() && ids[i] == c) continue;
      adds.push_back(c);
    }
    if (!adds.empty()) touched_.push_back(static_cast<std::uint32_t>(y));
  }

  // Pass 2: commit. Previous-round deltas were consumed above; recycle
  // them before recording this round's.
  for (const std::uint32_t y : deltaTouched_) {
    delta_[y].clear();
    deltaFull_[y] = 0;
  }
  deltaTouched_.clear();
  for (const std::uint32_t y : touched_) {
    if (pendingFull_[y]) {
      collapseToFull(y);
      continue;
    }
    std::vector<std::uint32_t>& adds = addBuf_[y];
    std::vector<std::uint32_t>& ids = rows_[y].ids;
    mergeBuf_.clear();
    mergeBuf_.reserve(ids.size() + adds.size());
    std::merge(ids.begin(), ids.end(), adds.begin(), adds.end(),
               std::back_inserter(mergeBuf_));
    ids.swap(mergeBuf_);
    for (const std::uint32_t x : adds) bumpCoverage(x);
    totalOnes_ += adds.size();
    if (ids.size() == n_) {
      rows_[y].full = true;
      ++fullRows_;
      ids.clear();
      ids.shrink_to_fit();
    }
    delta_[y].swap(adds);
    deltaTouched_.push_back(y);
  }
  ++round_;
}

void FrontierSim::applyTree(const RootedTree& tree) {
  scratchRound_.n = n_;
  scratchRound_.sameAsPrevious = false;
  scratchRound_.arcs.clear();
  for (std::size_t v = 0; v < n_; ++v) {
    if (v == tree.root()) continue;
    scratchRound_.arcs.emplace_back(
        static_cast<std::uint32_t>(tree.parent(v)),
        static_cast<std::uint32_t>(v));
  }
  applyEdges(scratchRound_);
}

void FrontierSim::applyGraph(const BitMatrix& g) {
  DYNBCAST_ASSERT_MSG(g.dim() == n_, "graph has the wrong dimension");
  scratchRound_.n = n_;
  scratchRound_.sameAsPrevious = false;
  scratchRound_.arcs.clear();
  for (std::size_t x = 0; x < n_; ++x) {
    const DynBitset& row = g.row(x);
    const std::uint64_t* words = row.wordData();
    for (std::size_t wi = 0; wi < row.wordCount(); ++wi) {
      std::uint64_t w = words[wi];
      while (w != 0) {
        const std::size_t y =
            wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
        w &= w - 1;
        if (y == x) continue;
        scratchRound_.arcs.emplace_back(static_cast<std::uint32_t>(x),
                                        static_cast<std::uint32_t>(y));
      }
    }
  }
  applyEdges(scratchRound_);
}

bool FrontierSim::hasHeard(std::size_t y, std::size_t x) const {
  DYNBCAST_ASSERT_MSG(y < n_ && x < n_, "process id out of range");
  const Row& row = rows_[y];
  if (row.full) return true;
  return std::binary_search(row.ids.begin(), row.ids.end(),
                            static_cast<std::uint32_t>(x));
}

DynBitset FrontierSim::heardBitset(std::size_t y) const {
  DYNBCAST_ASSERT_MSG(y < n_, "process id out of range");
  DynBitset out(n_);
  if (rows_[y].full) {
    out.setAll();
    return out;
  }
  for (const std::uint32_t x : rows_[y].ids) out.set(x);
  return out;
}

DynBitset FrontierSim::broadcasters() const {
  DynBitset out(n_);
  for (std::size_t x = 0; x < n_; ++x) {
    if (coverCount_[x] == n_) out.set(x);
  }
  return out;
}

RoundMetrics FrontierSim::metrics() const {
  RoundMetrics m;
  m.round = round_;
  m.totalEdges = totalOnes_;
  m.minHeard = n_;
  m.maxHeard = 0;
  for (std::size_t y = 0; y < n_; ++y) {
    const std::size_t count = heardCount(y);
    m.minHeard = std::min(m.minHeard, count);
    m.maxHeard = std::max(m.maxHeard, count);
  }
  m.avgHeard = static_cast<double>(totalOnes_) / static_cast<double>(n_);
  m.maxCoverage = 0;
  for (std::size_t x = 0; x < n_; ++x) {
    m.maxCoverage = std::max<std::size_t>(m.maxCoverage, coverCount_[x]);
  }
  m.completeRows = fullCovers_;
  m.completeCols = fullRows_;
  return m;
}

// ---------------------------------------------------------------------------
// t*-only mode
// ---------------------------------------------------------------------------

namespace {

/// Serves round t (1-based) from a contiguous cache when it fits the arc
/// budget, else by replaying the source from reset() — the latter keeps
/// the mode exact with O(n) memory at the price of O(t) regeneration per
/// backward step.
class RoundReplayer {
 public:
  RoundReplayer(SparseRoundSource& source, std::size_t budgetArcs)
      : source_(source), budgetArcs_(budgetArcs) {}

  const SparseRound& round(std::size_t t) {
    DYNBCAST_ASSERT_MSG(t >= 1, "rounds are 1-based");
    if (t <= cache_.size()) return cache_[t - 1];
    if (generated_ >= t) {
      source_.reset();
      generated_ = 0;
    }
    const SparseRound* last = nullptr;
    while (generated_ < t) {
      last = &source_.next();
      ++generated_;
      ++totalGenerated_;
      if (caching_ && generated_ == cache_.size() + 1) {
        if (cachedArcs_ + last->arcs.size() <= budgetArcs_) {
          cache_.push_back(*last);
          cachedArcs_ += last->arcs.size();
        } else {
          caching_ = false;
        }
      }
    }
    return t <= cache_.size() ? cache_[t - 1] : *last;
  }

  [[nodiscard]] std::size_t totalGenerated() const noexcept {
    return totalGenerated_;
  }

 private:
  SparseRoundSource& source_;
  std::size_t budgetArcs_;
  std::vector<SparseRound> cache_;
  std::size_t cachedArcs_ = 0;
  bool caching_ = true;
  std::size_t generated_ = 0;       // rounds pulled since the last reset
  std::size_t totalGenerated_ = 0;  // lifetime next() calls (diagnostics)
};

/// k distinct ids from [0, n) (Floyd's sampling when k < n).
std::vector<std::uint32_t> pickDistinct(std::size_t n, std::size_t k,
                                        Rng& rng) {
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k >= n) {
    out.resize(n);
    std::iota(out.begin(), out.end(), 0u);
    return out;
  }
  std::unordered_set<std::uint32_t> chosen;
  for (std::size_t j = n - k; j < n; ++j) {
    const auto r = static_cast<std::uint32_t>(rng.uniform(j + 1));
    if (chosen.insert(r).second) {
      out.push_back(r);
    } else {
      chosen.insert(static_cast<std::uint32_t>(j));
      out.push_back(static_cast<std::uint32_t>(j));
    }
  }
  return out;
}

/// Forward word-propagation of `sources` (bit j ↔ sources[j]) over
/// rounds [1, limit]. Returns the first round at which some source has
/// been heard by all n nodes, or 0 when none completes. `cover` holds
/// the final words either way.
std::size_t forwardCompletionRound(std::size_t n,
                                   const std::vector<std::uint32_t>& sources,
                                   std::size_t limit, RoundReplayer& rounds,
                                   std::vector<std::uint64_t>& cover,
                                   std::vector<std::uint64_t>& prev) {
  std::fill(cover.begin(), cover.end(), std::uint64_t{0});
  std::vector<std::uint32_t> count(sources.size(), 1);
  for (std::size_t j = 0; j < sources.size(); ++j) {
    cover[sources[j]] |= std::uint64_t{1} << j;
  }
  for (std::size_t t = 1; t <= limit; ++t) {
    const SparseRound& g = rounds.round(t);
    std::copy(cover.begin(), cover.end(), prev.begin());
    bool done = false;
    for (const auto& [x, y] : g.arcs) {
      if (x == y) continue;
      std::uint64_t nb = prev[x] & ~cover[y];
      if (nb == 0) continue;
      cover[y] |= nb;
      while (nb != 0) {
        const auto j = static_cast<std::size_t>(std::countr_zero(nb));
        nb &= nb - 1;
        if (++count[j] == n) done = true;
      }
    }
    if (done) return t;
  }
  return 0;
}

/// Backward word-propagation: afterwards back[x] has bit j iff x reaches
/// targets[j] under G_1 ∘ … ∘ G_t (self-loops implicit).
void backwardReach(std::size_t t, const std::vector<std::uint32_t>& targets,
                   RoundReplayer& rounds, std::vector<std::uint64_t>& back,
                   std::vector<std::uint64_t>& prev) {
  std::fill(back.begin(), back.end(), std::uint64_t{0});
  for (std::size_t j = 0; j < targets.size(); ++j) {
    back[targets[j]] |= std::uint64_t{1} << j;
  }
  for (std::size_t s = t; s >= 1; --s) {
    const SparseRound& g = rounds.round(s);
    std::copy(back.begin(), back.end(), prev.begin());
    for (const auto& [x, y] : g.arcs) {
      if (x == y) continue;
      back[x] |= prev[y];
    }
  }
}

/// Exact probe of the monotone predicate "broadcast done by round t":
/// sampled backward filter over-approximates the broadcaster set
/// (anything heard by all n nodes is heard by the sampled targets), and
/// forward certification of candidate batches settles it. When a batch
/// fails, the nodes it provably missed become the next filter's targets,
/// so every iteration removes at least the batch — termination is
/// structural, and the refined targets are the actual laggards.
bool testRound(std::size_t n, std::size_t t, std::size_t samples,
               RoundReplayer& rounds, Rng& rng,
               std::vector<std::uint64_t>& cover,
               std::vector<std::uint64_t>& prev,
               std::vector<std::uint64_t>& back) {
  std::vector<std::uint32_t> targets = pickDistinct(n, samples, rng);
  backwardReach(t, targets, rounds, back, prev);
  std::uint64_t mask =
      targets.size() == 64
          ? ~std::uint64_t{0}
          : (std::uint64_t{1} << targets.size()) - 1;
  std::vector<std::uint32_t> candidates;
  for (std::size_t x = 0; x < n; ++x) {
    if (back[x] == mask) candidates.push_back(static_cast<std::uint32_t>(x));
  }
  std::vector<std::uint32_t> batch;
  while (!candidates.empty()) {
    const std::size_t batchSize = std::min<std::size_t>(64, candidates.size());
    batch.assign(candidates.begin(), candidates.begin() + batchSize);
    if (forwardCompletionRound(n, batch, t, rounds, cover, prev) != 0) {
      return true;
    }
    // Each batch member missed someone; collect one miss per member.
    std::vector<std::uint32_t> missed;
    std::uint64_t unassigned =
        batchSize == 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << batchSize) - 1;
    for (std::size_t y = 0; y < n && unassigned != 0; ++y) {
      const std::uint64_t hit = ~cover[y] & unassigned;
      if (hit == 0) continue;
      missed.push_back(static_cast<std::uint32_t>(y));
      unassigned &= ~hit;
    }
    DYNBCAST_ASSERT_MSG(unassigned == 0,
                        "failed batch must miss at least one node each");
    backwardReach(t, missed, rounds, back, prev);
    mask = missed.size() == 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << missed.size()) - 1;
    std::vector<std::uint32_t> next;
    for (std::size_t i = batchSize; i < candidates.size(); ++i) {
      if (back[candidates[i]] == mask) next.push_back(candidates[i]);
    }
    candidates.swap(next);
  }
  return false;
}

}  // namespace

FrontierTStarResult runFrontierTStar(std::size_t n, SparseRoundSource& source,
                                     const FrontierTStarOptions& options) {
  DYNBCAST_ASSERT_MSG(n >= 1, "need at least one process");
  FrontierTStarResult result;
  if (n == 1) {
    result.completed = true;
    return result;
  }
  source.reset();
  RoundReplayer rounds(source, options.cacheBudgetArcs);
  std::size_t samples = std::clamp<std::size_t>(options.samples, 1, 64);
  if (n <= 64) samples = n;
  Rng rng(options.sampleSeed ^ 0x5bf03635f0a3d7c5ull);
  const std::vector<std::uint32_t> sources =
      pickDistinct(n, samples, rng);
  std::vector<std::uint64_t> cover(n), prev(n);
  const std::size_t upper = forwardCompletionRound(
      n, sources, options.maxRounds, rounds, cover, prev);
  if (samples == n) {
    // Every node was a forward source: the scan itself is exact.
    result.rounds = upper != 0 ? upper : options.maxRounds;
    result.completed = upper != 0;
    result.roundsGenerated = rounds.totalGenerated();
    return result;
  }
  std::vector<std::uint64_t> back(n);
  std::size_t hi = upper;
  if (upper == 0) {
    // No sampled source finished; an unsampled one still might have.
    result.certified = true;
    if (!testRound(n, options.maxRounds, samples, rounds, rng, cover, prev,
                   back)) {
      result.rounds = options.maxRounds;
      result.completed = false;
      result.roundsGenerated = rounds.totalGenerated();
      return result;
    }
    hi = options.maxRounds;
  }
  // Binary search the monotone completion predicate; hi is known-true.
  std::size_t lo = 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    result.certified = true;
    if (testRound(n, mid, samples, rounds, rng, cover, prev, back)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.rounds = hi;
  result.completed = true;
  result.roundsGenerated = rounds.totalGenerated();
  return result;
}

}  // namespace dynbcast
