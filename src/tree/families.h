// Structured tree families used by adversaries, tests, and benches.
//
// All constructors take explicit node orderings so adaptive adversaries
// can place specific processes at specific positions (the essence of the
// delaying strategies in [14] and of our greedy adversaries).
#pragma once

#include <cstdint>
#include <vector>

#include "src/tree/rooted_tree.h"

namespace dynbcast {

/// Path order[0] → order[1] → … → order[n−1]; order must be a permutation
/// of [n]. Height n−1 — the slowest static tree.
[[nodiscard]] RootedTree makePath(const std::vector<std::size_t>& order);

/// Identity path 0 → 1 → … → n−1.
[[nodiscard]] RootedTree makePath(std::size_t n);

/// Star: `center` is the root with all other nodes as direct children.
[[nodiscard]] RootedTree makeStar(std::size_t n, std::size_t center);

/// Broom: a path over the first `handleLen` entries of `order`, with every
/// remaining node attached as a child of the path's last node. A broom
/// with handleLen = n−1 is a path; handleLen = 1 is a star.
[[nodiscard]] RootedTree makeBroom(const std::vector<std::size_t>& order,
                                   std::size_t handleLen);

/// Caterpillar: spine over the first `spineLen` entries of `order`; the
/// remaining nodes are attached round-robin to the spine nodes.
[[nodiscard]] RootedTree makeCaterpillar(const std::vector<std::size_t>& order,
                                         std::size_t spineLen);

/// Complete k-ary tree in BFS label order of `order` (order[0] is the root,
/// next k nodes its children, …).
[[nodiscard]] RootedTree makeKAry(const std::vector<std::size_t>& order,
                                  std::size_t k);

/// Spider: `legs` paths of as-even-as-possible length hanging off the root
/// order[0]. legs must be in [1, n−1] for n > 1.
[[nodiscard]] RootedTree makeSpider(const std::vector<std::size_t>& order,
                                    std::size_t legs);

/// Double broom: a bundle of `headLeaves` leaves under the root, then a
/// path, then `tailLeaves` leaves at the bottom. Used by delaying
/// adversaries: the top bundle keeps many nodes uninformed-of, the bottom
/// bundle keeps many nodes uninformed.
[[nodiscard]] RootedTree makeDoubleBroom(const std::vector<std::size_t>& order,
                                         std::size_t headLeaves,
                                         std::size_t tailLeaves);

}  // namespace dynbcast
