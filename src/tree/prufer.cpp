#include "src/tree/prufer.h"

#include <algorithm>

#include "src/support/assert.h"

namespace dynbcast {

UndirectedTree pruferDecode(const std::vector<std::size_t>& seq) {
  const std::size_t n = seq.size() + 2;
  std::vector<std::size_t> degree(n, 1);
  for (const std::size_t a : seq) {
    DYNBCAST_ASSERT_MSG(a < n, "Prüfer entry out of range");
    ++degree[a];
  }
  UndirectedTree edges;
  edges.reserve(n - 1);
  // `ptr` scans for the smallest leaf; `leaf` tracks the current one. The
  // classic O(n) construction (no priority queue needed).
  std::size_t ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  std::size_t leaf = ptr;
  for (const std::size_t a : seq) {
    edges.emplace_back(leaf, a);
    if (--degree[a] == 1 && a < ptr) {
      leaf = a;  // `a` became the new smallest leaf
    } else {
      ++ptr;
      while (degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  edges.emplace_back(leaf, n - 1);
  return edges;
}

std::vector<std::size_t> pruferEncode(std::size_t n,
                                      const UndirectedTree& t) {
  DYNBCAST_ASSERT(n >= 2);
  DYNBCAST_ASSERT_MSG(t.size() == n - 1, "tree must have n-1 edges");
  std::vector<std::vector<std::size_t>> adj(n);
  std::vector<std::size_t> degree(n, 0);
  for (const auto& [u, v] : t) {
    DYNBCAST_ASSERT(u < n && v < n && u != v);
    adj[u].push_back(v);
    adj[v].push_back(u);
    ++degree[u];
    ++degree[v];
  }
  std::vector<bool> removed(n, false);
  std::vector<std::size_t> seq;
  seq.reserve(n - 2);
  std::size_t ptr = 0;
  while (ptr < n && degree[ptr] != 1) ++ptr;
  std::size_t leaf = ptr;
  for (std::size_t step = 0; step + 2 < n; ++step) {
    removed[leaf] = true;
    std::size_t neighbor = n;
    for (const std::size_t w : adj[leaf]) {
      if (!removed[w]) {
        neighbor = w;
        break;
      }
    }
    DYNBCAST_ASSERT_MSG(neighbor < n, "input edges do not form a tree");
    seq.push_back(neighbor);
    if (--degree[neighbor] == 1 && neighbor < ptr) {
      leaf = neighbor;
    } else {
      ++ptr;
      while (ptr < n && (degree[ptr] != 1 || removed[ptr])) ++ptr;
      DYNBCAST_ASSERT_MSG(ptr < n, "input edges do not form a tree");
      leaf = ptr;
    }
  }
  return seq;
}

RootedTree orientTree(std::size_t n, const UndirectedTree& t,
                      std::size_t root) {
  DYNBCAST_ASSERT(root < n);
  DYNBCAST_ASSERT_MSG(t.size() + 1 == n, "tree must have n-1 edges");
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& [u, v] : t) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<std::size_t> parent(n, n);
  parent[root] = root;
  std::vector<std::size_t> queue{root};
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::size_t u = queue[qi];
    for (const std::size_t v : adj[u]) {
      if (parent[v] == n) {
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  DYNBCAST_ASSERT_MSG(queue.size() == n, "edges do not connect all nodes");
  return RootedTree(root, std::move(parent));
}

RootedTree rootedFromPrufer(const std::vector<std::size_t>& seq,
                            std::size_t root) {
  const std::size_t n = seq.size() + 2;
  return orientTree(n, pruferDecode(seq), root);
}

}  // namespace dynbcast
