#include "src/tree/generators.h"

#include "src/support/assert.h"
#include "src/tree/families.h"
#include "src/tree/prufer.h"

namespace dynbcast {

RootedTree randomRootedTree(std::size_t n, Rng& rng) {
  DYNBCAST_ASSERT(n > 0);
  if (n == 1) return RootedTree::trivial();
  std::vector<std::size_t> seq(n >= 2 ? n - 2 : 0);
  for (auto& a : seq) a = rng.uniform(n);
  const std::size_t root = rng.uniform(n);
  return rootedFromPrufer(seq, root);
}

RootedTree randomRecursiveTree(std::size_t n, Rng& rng) {
  DYNBCAST_ASSERT(n > 0);
  const std::vector<std::size_t> order = rng.permutation(n);
  std::vector<std::size_t> parent(n);
  parent[order[0]] = order[0];
  for (std::size_t i = 1; i < n; ++i) {
    parent[order[i]] = order[rng.uniform(i)];
  }
  return RootedTree(order[0], std::move(parent));
}

RootedTree randomPath(std::size_t n, Rng& rng) {
  return makePath(rng.permutation(n));
}

RootedTree randomBroom(std::size_t n, std::size_t handleLen, Rng& rng) {
  return makeBroom(rng.permutation(n), handleLen);
}

}  // namespace dynbcast
