// Prüfer-sequence bijection for labeled trees.
//
// Labeled (undirected) trees on n ≥ 2 nodes are in bijection with
// sequences in [n]^(n−2). Rooting each tree at each of its n nodes gives
// the n^(n−1) rooted trees the adversary chooses from, which is how the
// library both samples uniformly and exhaustively enumerates T_n.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/tree/rooted_tree.h"

namespace dynbcast {

/// Undirected labeled tree as an edge list (n−1 edges on nodes [n]).
using UndirectedTree = std::vector<std::pair<std::size_t, std::size_t>>;

/// Decodes a Prüfer sequence of length n−2 into the unique labeled tree on
/// n = seq.size() + 2 nodes. All entries must be < n.
[[nodiscard]] UndirectedTree pruferDecode(
    const std::vector<std::size_t>& seq);

/// Encodes a labeled tree on n ≥ 2 nodes into its Prüfer sequence.
[[nodiscard]] std::vector<std::size_t> pruferEncode(std::size_t n,
                                                    const UndirectedTree& t);

/// Orients an undirected tree away from `root`, producing a RootedTree.
[[nodiscard]] RootedTree orientTree(std::size_t n, const UndirectedTree& t,
                                    std::size_t root);

/// Convenience: decode + orient.
[[nodiscard]] RootedTree rootedFromPrufer(const std::vector<std::size_t>& seq,
                                          std::size_t root);

}  // namespace dynbcast
