// Exhaustive enumeration of the adversary's move pool T_n for small n.
//
// There are n^(n−1) rooted labeled trees on [n] (n^(n−2) Cayley trees,
// each rooted at any of its n nodes). The exact game solver iterates over
// all of them; n ≤ 6 is practical (6^5 = 7776 moves per game state).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/tree/rooted_tree.h"

namespace dynbcast {

/// n^(n−1), the size of T_n. Overflow-checked: throws for n where the
/// count exceeds 2^64.
[[nodiscard]] std::uint64_t rootedTreeCount(std::size_t n);

/// Invokes `visit` for every rooted tree on [n] exactly once, in
/// (Prüfer sequence, root) lexicographic order. Stops early when `visit`
/// returns false. Returns the number of trees visited.
std::uint64_t forEachRootedTree(
    std::size_t n, const std::function<bool(const RootedTree&)>& visit);

/// Materializes the full pool; intended for n ≤ 6.
[[nodiscard]] std::vector<RootedTree> allRootedTrees(std::size_t n);

}  // namespace dynbcast
