#include "src/tree/families.h"

#include <algorithm>

#include "src/support/assert.h"

namespace dynbcast {

namespace {

void checkPermutation(const std::vector<std::size_t>& order) {
  const std::size_t n = order.size();
  std::vector<bool> seen(n, false);
  for (const std::size_t v : order) {
    DYNBCAST_ASSERT_MSG(v < n && !seen[v], "order must be a permutation");
    seen[v] = true;
  }
}

}  // namespace

RootedTree makePath(const std::vector<std::size_t>& order) {
  checkPermutation(order);
  const std::size_t n = order.size();
  DYNBCAST_ASSERT(n > 0);
  std::vector<std::size_t> parent(n);
  parent[order[0]] = order[0];
  for (std::size_t i = 1; i < n; ++i) parent[order[i]] = order[i - 1];
  return RootedTree(order[0], std::move(parent));
}

RootedTree makePath(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  return makePath(order);
}

RootedTree makeStar(std::size_t n, std::size_t center) {
  DYNBCAST_ASSERT(n > 0 && center < n);
  std::vector<std::size_t> parent(n, center);
  return RootedTree(center, std::move(parent));
}

RootedTree makeBroom(const std::vector<std::size_t>& order,
                     std::size_t handleLen) {
  checkPermutation(order);
  const std::size_t n = order.size();
  DYNBCAST_ASSERT(n > 0);
  DYNBCAST_ASSERT_MSG(handleLen >= 1 && handleLen <= n,
                      "handleLen must be in [1, n]");
  std::vector<std::size_t> parent(n);
  parent[order[0]] = order[0];
  for (std::size_t i = 1; i < handleLen; ++i) {
    parent[order[i]] = order[i - 1];
  }
  for (std::size_t i = handleLen; i < n; ++i) {
    parent[order[i]] = order[handleLen - 1];
  }
  return RootedTree(order[0], std::move(parent));
}

RootedTree makeCaterpillar(const std::vector<std::size_t>& order,
                           std::size_t spineLen) {
  checkPermutation(order);
  const std::size_t n = order.size();
  DYNBCAST_ASSERT(spineLen >= 1 && spineLen <= n);
  std::vector<std::size_t> parent(n);
  parent[order[0]] = order[0];
  for (std::size_t i = 1; i < spineLen; ++i) parent[order[i]] = order[i - 1];
  for (std::size_t i = spineLen; i < n; ++i) {
    parent[order[i]] = order[(i - spineLen) % spineLen];
  }
  return RootedTree(order[0], std::move(parent));
}

RootedTree makeKAry(const std::vector<std::size_t>& order, std::size_t k) {
  checkPermutation(order);
  const std::size_t n = order.size();
  DYNBCAST_ASSERT(n > 0 && k >= 1);
  std::vector<std::size_t> parent(n);
  parent[order[0]] = order[0];
  for (std::size_t i = 1; i < n; ++i) {
    parent[order[i]] = order[(i - 1) / k];
  }
  return RootedTree(order[0], std::move(parent));
}

RootedTree makeSpider(const std::vector<std::size_t>& order,
                      std::size_t legs) {
  checkPermutation(order);
  const std::size_t n = order.size();
  DYNBCAST_ASSERT(n > 0);
  if (n == 1) return RootedTree(order[0], {order[0]});
  DYNBCAST_ASSERT_MSG(legs >= 1 && legs <= n - 1, "legs must be in [1, n-1]");
  std::vector<std::size_t> parent(n);
  parent[order[0]] = order[0];
  // Distribute the n−1 non-root nodes into `legs` chains, longer legs first.
  std::size_t idx = 1;
  for (std::size_t leg = 0; leg < legs; ++leg) {
    const std::size_t remaining = n - idx;
    const std::size_t legsLeft = legs - leg;
    const std::size_t len = (remaining + legsLeft - 1) / legsLeft;
    std::size_t prev = order[0];
    for (std::size_t j = 0; j < len; ++j, ++idx) {
      parent[order[idx]] = prev;
      prev = order[idx];
    }
  }
  return RootedTree(order[0], std::move(parent));
}

RootedTree makeDoubleBroom(const std::vector<std::size_t>& order,
                           std::size_t headLeaves, std::size_t tailLeaves) {
  checkPermutation(order);
  const std::size_t n = order.size();
  DYNBCAST_ASSERT_MSG(1 + headLeaves + tailLeaves <= n,
                      "head + tail leaves exceed node budget");
  std::vector<std::size_t> parent(n);
  const std::size_t root = order[0];
  parent[root] = root;
  // order[1 .. headLeaves]: leaves directly under the root.
  for (std::size_t i = 1; i <= headLeaves; ++i) parent[order[i]] = root;
  // order[headLeaves+1 .. n-1-tailLeaves]: the connecting path.
  std::size_t prev = root;
  const std::size_t pathEnd = n - tailLeaves;
  for (std::size_t i = headLeaves + 1; i < pathEnd; ++i) {
    parent[order[i]] = prev;
    prev = order[i];
  }
  // order[n-tailLeaves .. n-1]: leaves under the path's last node.
  for (std::size_t i = pathEnd; i < n; ++i) parent[order[i]] = prev;
  return RootedTree(root, std::move(parent));
}

}  // namespace dynbcast
