#include "src/tree/enumerate.h"

#include <stdexcept>

#include "src/support/assert.h"
#include "src/tree/prufer.h"

namespace dynbcast {

std::uint64_t rootedTreeCount(std::size_t n) {
  DYNBCAST_ASSERT(n > 0);
  std::uint64_t count = 1;
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint64_t next = count * n;
    if (next / n != count) {
      throw std::overflow_error("rootedTreeCount overflows uint64");
    }
    count = next;
  }
  return count;
}

std::uint64_t forEachRootedTree(
    std::size_t n, const std::function<bool(const RootedTree&)>& visit) {
  DYNBCAST_ASSERT(n > 0);
  std::uint64_t visited = 0;
  if (n == 1) {
    ++visited;
    visit(RootedTree::trivial());
    return visited;
  }
  // Odometer over Prüfer sequences of length n−2 (empty for n == 2).
  std::vector<std::size_t> seq(n - 2, 0);
  for (;;) {
    const UndirectedTree shape = pruferDecode(seq);
    for (std::size_t root = 0; root < n; ++root) {
      ++visited;
      if (!visit(orientTree(n, shape, root))) return visited;
    }
    // Increment the odometer.
    std::size_t pos = seq.size();
    while (pos > 0) {
      --pos;
      if (++seq[pos] < n) break;
      seq[pos] = 0;
      if (pos == 0) return visited;  // wrapped: enumeration complete
    }
    if (seq.empty()) return visited;  // n == 2: single shape
  }
}

std::vector<RootedTree> allRootedTrees(std::size_t n) {
  std::vector<RootedTree> out;
  out.reserve(rootedTreeCount(n));
  forEachRootedTree(n, [&](const RootedTree& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

}  // namespace dynbcast
