// Random rooted-tree generators.
#pragma once

#include <cstdint>
#include <vector>

#include "src/support/rng.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {

/// Uniformly random rooted labeled tree on [n]: a uniform Prüfer sequence
/// plus a uniform root — exactly uniform over all n^(n−1) members of T_n
/// (ignoring the forced self-loops, which carry no entropy).
[[nodiscard]] RootedTree randomRootedTree(std::size_t n, Rng& rng);

/// Random recursive tree ("uniform attachment"): node order is a random
/// permutation; each node's parent is uniform among earlier nodes. Skewed
/// towards shallow trees — a fast non-uniform alternative.
[[nodiscard]] RootedTree randomRecursiveTree(std::size_t n, Rng& rng);

/// Random path: a path over a uniformly random permutation.
[[nodiscard]] RootedTree randomPath(std::size_t n, Rng& rng);

/// Random broom with the given handle length over a random permutation.
[[nodiscard]] RootedTree randomBroom(std::size_t n, std::size_t handleLen,
                                     Rng& rng);

}  // namespace dynbcast
