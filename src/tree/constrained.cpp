#include "src/tree/constrained.h"

#include <algorithm>

#include "src/support/assert.h"
#include "src/tree/families.h"

namespace dynbcast {

namespace {

// Random composition of `total` into `parts` positive integers:
// choose parts−1 distinct cut points in {1, …, total−1}.
std::vector<std::size_t> randomComposition(std::size_t total,
                                           std::size_t parts, Rng& rng) {
  DYNBCAST_ASSERT(parts >= 1 && parts <= total);
  std::vector<std::size_t> cuts;
  cuts.reserve(parts + 1);
  // Floyd's algorithm for a uniform (parts−1)-subset of {1, …, total−1}.
  for (std::size_t j = total - parts + 1; j <= total - 1; ++j) {
    const std::size_t t = rng.uniform(j) + 1;  // in {1, …, j}
    if (std::find(cuts.begin(), cuts.end(), t) == cuts.end()) {
      cuts.push_back(t);
    } else {
      cuts.push_back(j);
    }
  }
  cuts.push_back(0);
  cuts.push_back(total);
  std::sort(cuts.begin(), cuts.end());
  std::vector<std::size_t> lens(parts);
  for (std::size_t i = 0; i < parts; ++i) lens[i] = cuts[i + 1] - cuts[i];
  return lens;
}

}  // namespace

RootedTree makeTreeWithKLeaves(const std::vector<std::size_t>& order,
                               std::size_t k, Rng& rng) {
  const std::size_t n = order.size();
  DYNBCAST_ASSERT_MSG(n >= 2, "need n >= 2 for a leaf-constrained tree");
  DYNBCAST_ASSERT_MSG(k >= 1 && k <= n - 1, "k must be in [1, n-1]");
  const std::vector<std::size_t> chainLen = randomComposition(n - 1, k, rng);

  // The tree is k downward chains. Chain 0 hangs off the root; every later
  // chain hangs off a node that already has a child, so each chain
  // contributes exactly one leaf (its tail).
  std::vector<std::size_t> parent(n);
  const std::size_t root = order[0];
  parent[root] = root;
  std::vector<std::size_t> childCount(n, 0);
  std::vector<std::size_t> attachable;  // nodes with >= 1 child
  const auto link = [&](std::size_t child, std::size_t par) {
    parent[child] = par;
    if (++childCount[par] == 1) attachable.push_back(par);
  };
  std::size_t idx = 1;
  for (std::size_t c = 0; c < k; ++c) {
    std::size_t prev =
        c == 0 ? root : attachable[rng.uniform(attachable.size())];
    for (std::size_t j = 0; j < chainLen[c]; ++j, ++idx) {
      link(order[idx], prev);
      prev = order[idx];
    }
  }
  RootedTree t(root, std::move(parent));
  DYNBCAST_ASSERT_MSG(t.leafCount() == k, "constructed leaf count mismatch");
  return t;
}

RootedTree randomTreeWithKLeaves(std::size_t n, std::size_t k, Rng& rng) {
  return makeTreeWithKLeaves(rng.permutation(n), k, rng);
}

RootedTree makeTreeWithKInnerNodes(const std::vector<std::size_t>& order,
                                   std::size_t k, Rng& rng) {
  const std::size_t n = order.size();
  DYNBCAST_ASSERT_MSG(n >= 2, "need n >= 2");
  DYNBCAST_ASSERT_MSG(k >= 1 && k <= n - 1, "k must be in [1, n-1]");
  const std::size_t leafBudget = n - k;

  std::vector<std::size_t> parent(n);
  const std::size_t root = order[0];
  parent[root] = root;

  if (k == 1) {
    // A star: the root is the only inner node.
    for (std::size_t i = 1; i < n; ++i) parent[order[i]] = root;
    return RootedTree(root, std::move(parent));
  }

  // Skeleton: the k inner nodes form a tree whose own leaf count we cap by
  // the real-leaf budget, since each skeleton leaf must receive at least
  // one real leaf child to count as inner. The skeleton is built over
  // positions [0, k) and then mapped to labels via `order`.
  std::vector<std::size_t> positions(k);
  for (std::size_t i = 0; i < k; ++i) positions[i] = i;
  const std::size_t maxSkelLeaves = std::min(k - 1, leafBudget);
  const std::size_t skelLeaves = 1 + rng.uniform(maxSkelLeaves);
  const RootedTree skeleton = makeTreeWithKLeaves(positions, skelLeaves, rng);
  DYNBCAST_ASSERT(skeleton.root() == 0);  // position 0 maps to `root`
  for (std::size_t i = 1; i < k; ++i) {
    parent[order[i]] = order[skeleton.parent(i)];
  }
  // One real leaf under each skeleton leaf, the rest spread uniformly.
  std::size_t idx = k;
  for (const std::size_t sl : skeleton.leaves()) {
    parent[order[idx++]] = order[sl];
  }
  for (; idx < n; ++idx) {
    parent[order[idx]] = order[rng.uniform(k)];
  }

  RootedTree t(root, std::move(parent));
  DYNBCAST_ASSERT_MSG(t.innerCount() == k, "constructed inner count mismatch");
  return t;
}

RootedTree randomTreeWithKInnerNodes(std::size_t n, std::size_t k, Rng& rng) {
  return makeTreeWithKInnerNodes(rng.permutation(n), k, rng);
}

}  // namespace dynbcast
