// Generators for the restricted adversary classes of Zeiner, Schwarz &
// Schmid [14], which the paper cites in Figure 1: trees with exactly k
// leaves, and trees with exactly k inner (non-leaf) nodes. Broadcast time
// under adversaries restricted to either class is O(kn).
//
// The generators are constructive (no rejection), so exact small k — the
// regime where the O(kn) bounds bite — is cheap at any n. They are not
// exactly uniform over their class; they are documented adversary move
// generators, not samplers for counting.
#pragma once

#include <cstdint>
#include <vector>

#include "src/support/rng.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {

/// A rooted tree on [n] with exactly `k` leaves over the node placement
/// `order` (a permutation of [n]; order[0] becomes the root). Chain
/// lengths are randomized. Preconditions: 1 ≤ k ≤ n−1 (n ≥ 2).
[[nodiscard]] RootedTree makeTreeWithKLeaves(
    const std::vector<std::size_t>& order, std::size_t k, Rng& rng);

/// Uniformly-placed random tree with exactly k leaves.
[[nodiscard]] RootedTree randomTreeWithKLeaves(std::size_t n, std::size_t k,
                                               Rng& rng);

/// A rooted tree on [n] with exactly `k` inner nodes (nodes with ≥1
/// child) over the node placement `order`. Preconditions: 1 ≤ k ≤ n−1.
[[nodiscard]] RootedTree makeTreeWithKInnerNodes(
    const std::vector<std::size_t>& order, std::size_t k, Rng& rng);

/// Uniformly-placed random tree with exactly k inner nodes.
[[nodiscard]] RootedTree randomTreeWithKInnerNodes(std::size_t n,
                                                   std::size_t k, Rng& rng);

}  // namespace dynbcast
