#include "src/tree/rooted_tree.h"

#include <algorithm>
#include <sstream>

#include "src/support/assert.h"

namespace dynbcast {

RootedTree::RootedTree(std::size_t root, std::vector<std::size_t> parent)
    : root_(root), parent_(std::move(parent)) {
  const std::size_t n = parent_.size();
  DYNBCAST_ASSERT_MSG(n > 0, "tree must have at least one node");
  DYNBCAST_ASSERT_MSG(root_ < n, "root out of range");
  DYNBCAST_ASSERT_MSG(parent_[root_] == root_,
                      "parent[root] must equal root");
  children_.assign(n, {});
  for (std::size_t v = 0; v < n; ++v) {
    DYNBCAST_ASSERT_MSG(parent_[v] < n, "parent out of range");
    if (v != root_) {
      DYNBCAST_ASSERT_MSG(parent_[v] != v, "non-root node with self parent");
      children_[parent_[v]].push_back(v);
    }
  }
  // BFS from the root assigns depths and simultaneously proves acyclicity:
  // all n nodes must be discovered.
  depth_.assign(n, 0);
  std::vector<std::size_t> queue{root_};
  queue.reserve(n);
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::size_t v = queue[qi];
    for (const std::size_t c : children_[v]) {
      depth_[c] = depth_[v] + 1;
      height_ = std::max(height_, depth_[c]);
      queue.push_back(c);
    }
  }
  DYNBCAST_ASSERT_MSG(queue.size() == n,
                      "parent links contain a cycle or unreachable node");
  for (std::size_t v = 0; v < n; ++v) {
    if (children_[v].empty()) ++leafCount_;
  }
}

RootedTree RootedTree::trivial() { return RootedTree(0, {0}); }

std::vector<std::size_t> RootedTree::leaves() const {
  std::vector<std::size_t> out;
  out.reserve(leafCount_);
  for (std::size_t v = 0; v < size(); ++v) {
    if (children_[v].empty()) out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> RootedTree::bfsOrder() const {
  std::vector<std::size_t> queue;
  bfsOrderInto(queue);
  return queue;
}

void RootedTree::bfsOrderInto(std::vector<std::size_t>& out) const {
  out.clear();
  out.reserve(size());
  out.push_back(root_);
  for (std::size_t qi = 0; qi < out.size(); ++qi) {
    for (const std::size_t c : children_[out[qi]]) out.push_back(c);
  }
}

BitMatrix RootedTree::toMatrix() const {
  BitMatrix m(size());
  for (std::size_t v = 0; v < size(); ++v) {
    m.set(v, v);  // self-loop: processes remember what they know
    if (v != root_) m.set(parent_[v], v);
  }
  return m;
}

Digraph RootedTree::toDigraph() const {
  Digraph g(size());
  for (std::size_t v = 0; v < size(); ++v) {
    g.addEdge(v, v);
    if (v != root_) g.addEdge(parent_[v], v);
  }
  return g;
}

std::string RootedTree::toString() const {
  std::ostringstream os;
  os << "root=" << root_ << " parents=[";
  for (std::size_t v = 0; v < size(); ++v) {
    if (v != 0) os << ',';
    os << parent_[v];
  }
  os << ']';
  return os.str();
}

}  // namespace dynbcast
