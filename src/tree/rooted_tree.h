// RootedTree: the adversary's move in the broadcast game (paper §2).
//
// A rooted tree on [n] with edges directed parent → child (away from the
// root), plus an implicit self-loop at every node when converted to a
// communication graph. With that orientation, in round t node y receives
// from exactly {parent_t(y), y}, which yields the heard-of recurrence
//   Heard_t(y) = Heard_{t−1}(y) ∪ Heard_{t−1}(parent_t(y)).
//
// Representation: a parent array with parent[root] == root. The children
// adjacency is precomputed at construction since simulators and
// generators both traverse downward.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/bitmatrix.h"
#include "src/graph/digraph.h"

namespace dynbcast {

class RootedTree {
 public:
  /// Builds a tree from a parent array; parent[root] must equal root and
  /// the parent links must be acyclic. Throws AssertionError otherwise.
  RootedTree(std::size_t root, std::vector<std::size_t> parent);

  /// The unique tree on one node.
  [[nodiscard]] static RootedTree trivial();

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }
  [[nodiscard]] std::size_t root() const noexcept { return root_; }

  /// Parent of v; parent(root()) == root().
  [[nodiscard]] std::size_t parent(std::size_t v) const noexcept {
    return parent_[v];
  }

  [[nodiscard]] const std::vector<std::size_t>& parents() const noexcept {
    return parent_;
  }

  [[nodiscard]] const std::vector<std::size_t>& childrenOf(
      std::size_t v) const noexcept {
    return children_[v];
  }

  /// Depth of node v (root has depth 0).
  [[nodiscard]] std::size_t depthOf(std::size_t v) const noexcept {
    return depth_[v];
  }

  /// Height of the tree: max node depth. Equals the broadcast time of the
  /// static adversary that repeats this tree forever.
  [[nodiscard]] std::size_t height() const noexcept { return height_; }

  /// Nodes without children, ascending. (For n == 1 the root is a leaf.)
  [[nodiscard]] std::vector<std::size_t> leaves() const;

  [[nodiscard]] std::size_t leafCount() const noexcept { return leafCount_; }

  /// Nodes with at least one child.
  [[nodiscard]] std::size_t innerCount() const noexcept {
    return size() - leafCount_;
  }

  /// Nodes in BFS order from the root (root first).
  [[nodiscard]] std::vector<std::size_t> bfsOrder() const;

  /// bfsOrder written into a caller-owned buffer, reusing its capacity —
  /// the simulator and candidate evaluators call this every round and must
  /// not allocate on the hot path.
  void bfsOrderInto(std::vector<std::size_t>& out) const;

  /// Communication graph: tree edges + one self-loop per node. This is the
  /// G_t the adversary submits (a member of T_n).
  [[nodiscard]] BitMatrix toMatrix() const;

  /// Same graph as a sparse adjacency structure.
  [[nodiscard]] Digraph toDigraph() const;

  /// "root=r parents=[…]" rendering for logs and test failures.
  [[nodiscard]] std::string toString() const;

  friend bool operator==(const RootedTree& a, const RootedTree& b) noexcept {
    return a.root_ == b.root_ && a.parent_ == b.parent_;
  }

 private:
  std::size_t root_ = 0;
  std::vector<std::size_t> parent_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<std::size_t> depth_;
  std::size_t height_ = 0;
  std::size_t leafCount_ = 0;
};

}  // namespace dynbcast
