// CSV/file export helpers for benches and examples.
//
// Every sweep bench that regenerates a paper figure can persist its
// TextTable as CSV (one header row, comma-separated cells, quoted only
// when needed), so the same run that prints a terminal table also leaves
// a plottable artifact. writeFile() is the single filesystem touchpoint
// of the library — it creates parent directories and fails loudly, which
// keeps experiment scripts honest about where their data went.
#pragma once

#include <string>

#include "src/support/table.h"

namespace dynbcast {

/// Writes `content` to `path`, creating parent directories as needed.
/// Throws std::runtime_error on I/O failure.
void writeFile(const std::string& path, const std::string& content);

/// Writes a TextTable as CSV to `path`.
void writeCsv(const std::string& path, const TextTable& table);

}  // namespace dynbcast
