// CSV/file export helpers for benches and examples.
#pragma once

#include <string>

#include "src/support/table.h"

namespace dynbcast {

/// Writes `content` to `path`, creating parent directories as needed.
/// Throws std::runtime_error on I/O failure.
void writeFile(const std::string& path, const std::string& content);

/// Writes a TextTable as CSV to `path`.
void writeCsv(const std::string& path, const TextTable& table);

}  // namespace dynbcast
