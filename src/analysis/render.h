// ASCII rendering of heard-of matrices and round series — the debug/
// teaching view of the paper's matrix-evolution perspective.
#pragma once

#include <string>
#include <vector>

#include "src/sim/broadcast_sim.h"

namespace dynbcast {

/// Draws the heard-of matrix: row y = Heard(y), '#' for 1, '.' for 0,
/// with row/column indices every 8 lines for readability.
[[nodiscard]] std::string renderHeardMatrix(const BroadcastSim& sim);

/// A one-line unicode sparkline of a series (▁▂▃▄▅▆▇█), auto-scaled.
[[nodiscard]] std::string sparkline(const std::vector<std::size_t>& series);

}  // namespace dynbcast
