// ASCII rendering of heard-of matrices and round series — the debug/
// teaching view of the paper's matrix-evolution perspective.
//
// The proof of Theorem 3.1 is a story about a boolean matrix filling up;
// renderHeardMatrix() draws exactly that matrix (row y = Heard(y)) so a
// run can be watched round by round in a terminal, and sparkline() gives
// a one-line shape of any per-round series (potential Φ, blocked pairs,
// coverage). examples/matrix_evolution.cpp is the intended consumer.
// Output is plain ASCII plus unicode block glyphs — no terminal control
// codes, so it is safe to pipe into logs and test assertions.
#pragma once

#include <string>
#include <vector>

#include "src/sim/broadcast_sim.h"

namespace dynbcast {

/// Draws the heard-of matrix: row y = Heard(y), '#' for 1, '.' for 0,
/// with row/column indices every 8 lines for readability.
[[nodiscard]] std::string renderHeardMatrix(const BroadcastSim& sim);

/// A one-line unicode sparkline of a series (▁▂▃▄▅▆▇█), auto-scaled.
[[nodiscard]] std::string sparkline(const std::vector<std::size_t>& series);

}  // namespace dynbcast
