#include "src/analysis/evolution.h"

#include <algorithm>

#include "src/support/assert.h"

namespace dynbcast {

std::size_t potentialOf(const BroadcastSim& sim) {
  const std::size_t n = sim.processCount();
  std::size_t phi = 0;
  for (std::size_t y = 0; y < n; ++y) {
    phi += n - sim.heardCount(y);
  }
  return phi;
}

EvolutionSummary analyzeTrace(const SimTrace& trace) {
  const std::size_t n = trace.processCount();
  EvolutionSummary summary;
  summary.n = n;
  summary.rounds = trace.roundCount();
  summary.heardAllAt.assign(n, 0);
  summary.coveredAllAt.assign(n, 0);

  BroadcastSim sim(n);
  for (const RootedTree& tree : trace.trees()) {
    sim.applyTree(tree);
    summary.potential.push_back(potentialOf(sim));
    for (std::size_t y = 0; y < n; ++y) {
      if (summary.heardAllAt[y] == 0 && sim.heardCount(y) == n) {
        summary.heardAllAt[y] = sim.round();
      }
    }
    const DynBitset bc = sim.broadcasters();
    for (std::size_t x = bc.findFirst(); x < n; x = bc.findNext(x + 1)) {
      if (summary.coveredAllAt[x] == 0) {
        summary.coveredAllAt[x] = sim.round();
      }
    }
    if (summary.broadcastRound == 0 && bc.any()) {
      summary.broadcastRound = sim.round();
    }
  }
  return summary;
}

std::size_t EvolutionSummary::minPotentialDrop() const {
  if (potential.empty()) return 0;
  std::size_t prev = n * (n - 1);  // Φ(0): everyone misses n−1 others
  std::size_t minDrop = prev;
  for (std::size_t r = 0; r < potential.size(); ++r) {
    // Past broadcast the adversary may legitimately stall (the game is
    // over); only pre-broadcast rounds must make progress.
    if (broadcastRound != 0 && r + 1 > broadcastRound) break;
    DYNBCAST_ASSERT(potential[r] <= prev);
    minDrop = std::min(minDrop, prev - potential[r]);
    prev = potential[r];
  }
  return minDrop;
}

}  // namespace dynbcast
