#include "src/analysis/render.h"

#include <algorithm>
#include <sstream>

namespace dynbcast {

std::string renderHeardMatrix(const BroadcastSim& sim) {
  const std::size_t n = sim.processCount();
  std::ostringstream os;
  os << "heard-of matrix after round " << sim.round()
     << " (row y = Heard(y))\n";
  for (std::size_t y = 0; y < n; ++y) {
    const DynBitset& h = sim.heardBy(y);
    std::string gutter = std::to_string(y);
    gutter.resize(4, ' ');
    os << gutter;
    for (std::size_t x = 0; x < n; ++x) {
      os << (h.test(x) ? '#' : '.');
    }
    os << '\n';
  }
  return os.str();
}

std::string sparkline(const std::vector<std::size_t>& series) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (series.empty()) return "";
  const std::size_t lo = *std::min_element(series.begin(), series.end());
  const std::size_t hi = *std::max_element(series.begin(), series.end());
  std::string out;
  for (const std::size_t v : series) {
    const std::size_t level =
        hi == lo ? 0 : (v - lo) * 7 / (hi - lo);
    out += kLevels[level];
  }
  return out;
}

}  // namespace dynbcast
