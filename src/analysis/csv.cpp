#include "src/analysis/csv.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace dynbcast {

void writeFile(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open for writing: " + path);
  }
  out << content;
  if (!out) {
    throw std::runtime_error("write failed: " + path);
  }
}

void writeCsv(const std::string& path, const TextTable& table) {
  writeFile(path, table.renderCsv());
}

}  // namespace dynbcast
