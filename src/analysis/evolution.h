// Matrix-evolution analysis — the paper's "novel perspective" (§3) made
// observable. The proof of Theorem 3.1 tracks how the boolean adjacency
// matrix of G(t) evolves; this module extracts the quantities such an
// analysis looks at from a recorded run:
//
//  * per-round potential Φ(t) = Σ_y (n − |Heard_t(y)|), strictly
//    decreasing by ≥ 1 each round before completion (the ≥-one-new-edge
//    argument in matrix form, Φ(0) = n(n−1), broadcast ⇒ Φ can be 0 only
//    at gossip; broadcast itself is a column event);
//  * completion timelines: for each process, the round its row/column of
//    G(t) filled (who reached everyone / who heard everyone);
//  * per-round counts of "blocked" pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/broadcast_sim.h"
#include "src/sim/trace.h"

namespace dynbcast {

struct EvolutionSummary {
  std::size_t n = 0;
  std::size_t rounds = 0;
  /// Φ(t) per round (index 0 = after round 1).
  std::vector<std::size_t> potential;
  /// Round at which each process had heard from everyone (its column of
  /// the heard matrix filled); 0 = never within the trace.
  std::vector<std::size_t> heardAllAt;
  /// Round at which each process was heard by everyone; 0 = never.
  std::vector<std::size_t> coveredAllAt;
  /// First round some process was heard by everyone (t*); 0 = never.
  std::size_t broadcastRound = 0;

  /// Minimum per-round potential drop observed (the paper's "at least one
  /// new edge per round" claim demands ≥ 1 before completion).
  [[nodiscard]] std::size_t minPotentialDrop() const;
};

/// Replays a trace and extracts the evolution summary.
[[nodiscard]] EvolutionSummary analyzeTrace(const SimTrace& trace);

/// Current potential Φ of a live simulation.
[[nodiscard]] std::size_t potentialOf(const BroadcastSim& sim);

}  // namespace dynbcast
