#include "src/engine/task_plan.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "src/adversary/adversary.h"
#include "src/adversary/portfolio.h"
#include "src/adversary/registry.h"
#include "src/dynamics/registry.h"
#include "src/sim/gossip.h"
#include "src/support/assert.h"
#include "src/support/seed_sequence.h"

namespace dynbcast {

namespace {

/// Member-index seed decorrelation for graph-model runs: a fixed odd
/// multiplier on the member index (seeds stay position-derived, so any
/// job count — or worker process — reproduces them). Matches the
/// historical nonsplit-path derivation bit for bit.
[[nodiscard]] std::uint64_t memberSeed(std::uint64_t instanceSeed,
                                       std::size_t memberIndex) {
  return instanceSeed ^ (0x9e3779b97f4a7c15ull * (memberIndex + 1));
}

[[nodiscard]] bool isModelScenario(const DynamicsInfo& entry) {
  return entry.mode == DynamicsMode::kGraphModel ||
         entry.mode == DynamicsMode::kGeneratorList;
}

}  // namespace

std::vector<std::string> resolvedScenarioMemberSpecs(
    const ScenarioSpec& spec) {
  const DynamicsSpec dynamics = DynamicsSpec::parse(spec.dynamics);
  const DynamicsInfo& entry =
      DynamicsRegistry::instance().info(dynamics.name);
  std::vector<std::string> texts = spec.adversaries.empty()
                                       ? defaultAdversarySpecs(spec.dynamics)
                                       : spec.adversaries;
  // Canonicalize through the axis each spec actually belongs to, so the
  // returned strings are stable cache-key components.
  if (entry.mode == DynamicsMode::kGraphModel) {
    return {dynamics.toString()};
  }
  for (std::string& text : texts) {
    text = entry.mode == DynamicsMode::kGeneratorList
               ? DynamicsSpec::parse(text).toString()
               : AdversarySpec::parse(text).toString();
  }
  return texts;
}

std::size_t scenarioMembersPerInstance(const ScenarioSpec& spec) {
  return resolvedScenarioMemberSpecs(spec).size();
}

std::size_t scenarioRowCount(const ScenarioSpec& spec) {
  return spec.sizes.size() * spec.seedsPerSize *
         scenarioMembersPerInstance(spec);
}

ScenarioRowPlan planScenarioRow(const ScenarioSpec& spec,
                                std::size_t position) {
  const std::vector<std::string> members = resolvedScenarioMemberSpecs(spec);
  const std::size_t width = members.size();
  DYNBCAST_ASSERT(width > 0 && spec.seedsPerSize > 0);
  DYNBCAST_ASSERT(position < spec.sizes.size() * spec.seedsPerSize * width);
  ScenarioRowPlan plan;
  plan.position = position;
  plan.memberIndex = position % width;
  const std::size_t instance = position / width;
  plan.seedIndex = instance % spec.seedsPerSize;
  plan.sizeIndex = instance / spec.seedsPerSize;
  plan.n = spec.sizes[plan.sizeIndex];
  plan.instanceSeed = SeedSequence(spec.masterSeed).at(instance);
  plan.memberSpec = members[plan.memberIndex];
  return plan;
}

SweepRow runScenarioRow(const ScenarioSpec& spec, std::size_t position) {
  const ScenarioRowPlan plan = planScenarioRow(spec, position);
  const DynamicsSpec dynamics = DynamicsSpec::parse(spec.dynamics);
  const DynamicsInfo& entry =
      DynamicsRegistry::instance().info(dynamics.name);

  SweepRow row;
  row.n = plan.n;
  row.seedIndex = plan.seedIndex;
  row.instanceSeed = plan.instanceSeed;

  if (isModelScenario(entry)) {
    const std::uint64_t seed = memberSeed(plan.instanceSeed, plan.memberIndex);
    const DynamicsSpec model = DynamicsSpec::parse(plan.memberSpec);
    const std::unique_ptr<DynamicsModel> instance =
        DynamicsRegistry::instance().make(model, plan.n, seed);
    const std::size_t cap =
        spec.roundCap != 0 ? spec.roundCap : instance->defaultRoundCap();
    const bool useSparse =
        spec.backend == BackendChoice::kSparse ||
        (spec.backend == BackendChoice::kAuto &&
         instance->supportsSparseRounds() && !spec.recordHistory &&
         plan.n > kAutoSparseThreshold);
    BroadcastRun run =
        useSparse ? runFrontierDynamicsBroadcast(plan.n, *instance, cap,
                                                 spec.recordHistory, seed)
                  : runDynamicsBroadcast(plan.n, *instance, cap,
                                         spec.recordHistory);
    row.member = model.toString();
    row.rounds = run.rounds;
    row.completed = run.completed;
    row.history = std::move(run.history);
    return row;
  }

  // Adversary-driven tree dynamics: materialize this instance's member
  // list (factories are lazy closures — construction is cheap) and run
  // the one member this position addresses.
  const std::vector<PortfolioMember> members = membersFromSpecs(
      resolvedScenarioMemberSpecs(spec), plan.n, plan.instanceSeed);
  const PortfolioMember& member = members[plan.memberIndex];
  const std::unique_ptr<Adversary> adversary = member.make();
  BroadcastRun run;
  if (spec.objective == Objective::kGossip) {
    const std::size_t cap =
        spec.roundCap != 0 ? spec.roundCap : defaultGossipRoundCap(plan.n);
    run = runAdversaryGossip(plan.n, *adversary, cap, spec.recordHistory);
  } else {
    const std::size_t cap =
        spec.roundCap != 0 ? spec.roundCap : defaultRoundCap(plan.n);
    run = runAdversary(plan.n, *adversary, cap, spec.recordHistory);
  }
  row.member = member.name;
  row.rounds = run.rounds;
  row.completed = run.completed;
  row.history = std::move(run.history);
  return row;
}

std::vector<SweepInstance> aggregateScenarioInstances(
    const ScenarioSpec& spec, const std::vector<SweepRow>& rows) {
  const std::size_t width = scenarioMembersPerInstance(spec);
  const std::size_t instanceCount = spec.sizes.size() * spec.seedsPerSize;
  DYNBCAST_ASSERT(rows.size() == instanceCount * width);
  const SeedSequence seeds(spec.masterSeed);
  std::vector<SweepInstance> instances;
  instances.reserve(instanceCount);
  for (std::size_t p = 0; p < instanceCount; ++p) {
    SweepInstance aggregate;
    aggregate.n = spec.sizes[p / spec.seedsPerSize];
    aggregate.seedIndex = p % spec.seedsPerSize;
    aggregate.instanceSeed = seeds.at(p);
    for (std::size_t m = 0; m < width; ++m) {
      const SweepRow& row = rows[p * width + m];
      // History stays in rows only — copying the per-round metrics here
      // would double the sweep's dominant allocation at large n.
      aggregate.portfolio.entries.push_back(
          {row.member, row.rounds, row.completed, {}});
      if (row.completed && row.rounds > aggregate.portfolio.bestRounds) {
        aggregate.portfolio.bestRounds = row.rounds;
        aggregate.portfolio.bestName = row.member;
      }
    }
    instances.push_back(std::move(aggregate));
  }
  return instances;
}

std::uint64_t scenarioBeamSeed(std::uint64_t masterSeed,
                               std::size_t sizeIndex) {
  return SeedSequence(masterSeed ^ kBeamSeedSalt).at(sizeIndex);
}

}  // namespace dynbcast
