#include "src/engine/scenario.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/adversary/adversary.h"
#include "src/adversary/registry.h"
#include "src/dynamics/registry.h"
#include "src/sim/gossip.h"

namespace dynbcast {

static_assert(kAutoSparseThreshold == kSparseDenseMirrorMaxN,
              "auto must only pick sparse where sparse generation stops "
              "mirroring dense, so backend choice never changes rows at "
              "sizes both backends serve routinely");

namespace {

/// Member-index seed decorrelation for graph-model runs: a fixed odd
/// multiplier on the member index (seeds stay position-derived, so any
/// job count reproduces them). Matches the historical nonsplit-path
/// derivation bit for bit.
[[nodiscard]] std::uint64_t memberSeed(std::uint64_t instanceSeed,
                                       std::size_t memberIndex) {
  return instanceSeed ^ (0x9e3779b97f4a7c15ull * (memberIndex + 1));
}

[[nodiscard]] std::vector<std::string> resolvedSpecs(
    const ScenarioSpec& spec) {
  return spec.adversaries.empty() ? defaultAdversarySpecs(spec.dynamics)
                                  : spec.adversaries;
}

/// Instance plan shared by the gossip and graph-model paths — the same
/// sizes × replicates flattening (and position-derived seeds) as
/// ExperimentEngine::runSweep, so row order and seeding match the
/// broadcast path exactly.
struct InstancePlan {
  std::size_t n = 0;
  std::size_t seedIndex = 0;
  std::uint64_t instanceSeed = 0;
  std::size_t firstRow = 0;
};

[[nodiscard]] std::vector<InstancePlan> planInstances(
    const ScenarioSpec& spec, std::size_t membersPerInstance,
    std::size_t* totalRows) {
  const SeedSequence seeds(spec.masterSeed);
  std::vector<InstancePlan> plan;
  plan.reserve(spec.sizes.size() * spec.seedsPerSize);
  *totalRows = 0;
  for (std::size_t s = 0; s < spec.sizes.size(); ++s) {
    for (std::size_t r = 0; r < spec.seedsPerSize; ++r) {
      InstancePlan instance;
      instance.n = spec.sizes[s];
      instance.seedIndex = r;
      instance.instanceSeed = seeds.at(s * spec.seedsPerSize + r);
      instance.firstRow = *totalRows;
      *totalRows += membersPerInstance;
      plan.push_back(instance);
    }
  }
  return plan;
}

/// Regroups rows into per-instance aggregates (same as runSweep's
/// aggregate phase): bestRounds is the max over *completed* rows.
[[nodiscard]] std::vector<SweepInstance> aggregateInstances(
    const std::vector<SweepRow>& rows, const std::vector<InstancePlan>& plan,
    std::size_t membersPerInstance) {
  std::vector<SweepInstance> instances;
  instances.reserve(plan.size());
  for (const InstancePlan& instance : plan) {
    SweepInstance aggregate;
    aggregate.n = instance.n;
    aggregate.seedIndex = instance.seedIndex;
    aggregate.instanceSeed = instance.instanceSeed;
    for (std::size_t m = 0; m < membersPerInstance; ++m) {
      const SweepRow& row = rows[instance.firstRow + m];
      aggregate.portfolio.entries.push_back(
          {row.member, row.rounds, row.completed, {}});
      if (row.completed && row.rounds > aggregate.portfolio.bestRounds) {
        aggregate.portfolio.bestRounds = row.rounds;
        aggregate.portfolio.bestName = row.member;
      }
    }
    instances.push_back(std::move(aggregate));
  }
  return instances;
}

[[nodiscard]] ScenarioResult runGossipScenario(const ScenarioSpec& spec,
                                               ExperimentEngine& engine) {
  const std::vector<std::string> specs = resolvedSpecs(spec);
  std::size_t totalRows = 0;
  const std::vector<InstancePlan> plan =
      planInstances(spec, specs.size(), &totalRows);

  // Materialize member factories per instance on this thread (factories
  // capture the instance seed), mirroring runSweep's plan phase.
  std::vector<std::vector<PortfolioMember>> members;
  members.reserve(plan.size());
  for (const InstancePlan& instance : plan) {
    members.push_back(
        membersFromSpecs(specs, instance.n, instance.instanceSeed));
  }

  std::vector<std::pair<std::size_t, std::size_t>> taskOf;  // row → (p, m)
  taskOf.reserve(totalRows);
  for (std::size_t p = 0; p < plan.size(); ++p) {
    for (std::size_t m = 0; m < specs.size(); ++m) taskOf.emplace_back(p, m);
  }

  ScenarioResult result;
  result.rows = engine.map<SweepRow>(
      totalRows, spec.masterSeed,
      [&](std::size_t t, std::uint64_t) {
        const auto [p, m] = taskOf[t];
        const InstancePlan& instance = plan[p];
        const PortfolioMember& member = members[p][m];
        const std::unique_ptr<Adversary> adversary = member.make();
        const std::size_t cap = spec.roundCap != 0
                                    ? spec.roundCap
                                    : defaultGossipRoundCap(instance.n);
        BroadcastRun run = runAdversaryGossip(instance.n, *adversary, cap,
                                              spec.recordHistory);
        SweepRow row;
        row.n = instance.n;
        row.seedIndex = instance.seedIndex;
        row.instanceSeed = instance.instanceSeed;
        row.member = member.name;
        row.rounds = run.rounds;
        row.completed = run.completed;
        row.history = std::move(run.history);
        return row;
      });
  result.instances = aggregateInstances(result.rows, plan, specs.size());
  return result;
}

/// The graph-model path: one row per (instance, model). `modelTexts` is
/// usually the single dynamics spec itself; under the legacy "nonsplit"
/// alias it is the (deprecated) generator list from the adversaries
/// field — seed derivation is identical either way, so a single-model
/// run reproduces member 0 of the alias run bit for bit.
[[nodiscard]] ScenarioResult runModelScenario(
    const ScenarioSpec& spec, ExperimentEngine& engine,
    const std::vector<std::string>& modelTexts) {
  std::vector<DynamicsSpec> parsed;
  parsed.reserve(modelTexts.size());
  for (const std::string& text : modelTexts) {
    parsed.push_back(DynamicsSpec::parse(text));
  }
  std::size_t totalRows = 0;
  const std::vector<InstancePlan> plan =
      planInstances(spec, parsed.size(), &totalRows);

  std::vector<std::pair<std::size_t, std::size_t>> taskOf;
  taskOf.reserve(totalRows);
  for (std::size_t p = 0; p < plan.size(); ++p) {
    for (std::size_t m = 0; m < parsed.size(); ++m) taskOf.emplace_back(p, m);
  }

  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  ScenarioResult result;
  result.rows = engine.map<SweepRow>(
      totalRows, spec.masterSeed,
      [&](std::size_t t, std::uint64_t) {
        const auto [p, m] = taskOf[t];
        const InstancePlan& instance = plan[p];
        const std::uint64_t seed = memberSeed(instance.instanceSeed, m);
        const std::unique_ptr<DynamicsModel> model =
            registry.make(parsed[m], instance.n, seed);
        const std::size_t cap = spec.roundCap != 0 ? spec.roundCap
                                                   : model->defaultRoundCap();
        const bool useSparse =
            spec.backend == BackendChoice::kSparse ||
            (spec.backend == BackendChoice::kAuto &&
             model->supportsSparseRounds() && !spec.recordHistory &&
             instance.n > kAutoSparseThreshold);
        BroadcastRun run =
            useSparse ? runFrontierDynamicsBroadcast(instance.n, *model, cap,
                                                     spec.recordHistory, seed)
                      : runDynamicsBroadcast(instance.n, *model, cap,
                                             spec.recordHistory);
        SweepRow row;
        row.n = instance.n;
        row.seedIndex = instance.seedIndex;
        row.instanceSeed = instance.instanceSeed;
        row.member = parsed[m].toString();
        row.rounds = run.rounds;
        row.completed = run.completed;
        row.history = std::move(run.history);
        return row;
      });
  result.instances = aggregateInstances(result.rows, plan, parsed.size());
  return result;
}

/// Validates one entry of the legacy nonsplit generator list: it must be
/// a registered graph model of the nonsplit class.
void validateGeneratorEntry(const std::string& text) {
  const DynamicsSpec parsed = DynamicsSpec::parse(text);
  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  registry.validate(parsed);  // unknown name/key suggestions live here
  const DynamicsInfo& entry = registry.info(parsed.name);
  if (entry.mode != DynamicsMode::kGraphModel ||
      entry.graphClass != DynamicsClass::kNonsplit) {
    throw std::invalid_argument(
        "dynamics 'nonsplit': '" + parsed.name +
        "' is not a nonsplit graph generator (known: nonsplit-random, "
        "nonsplit-skewed)");
  }
}

}  // namespace

Objective parseObjective(const std::string& text) {
  if (text == "broadcast") return Objective::kBroadcast;
  if (text == "gossip") return Objective::kGossip;
  std::string message = "unknown objective '" + text + "'";
  const std::string suggestion =
      closestMatch(text, {"broadcast", "gossip"});
  if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
  message += " (known: broadcast, gossip)";
  throw std::invalid_argument(message);
}

std::string objectiveName(Objective objective) {
  return objective == Objective::kBroadcast ? "broadcast" : "gossip";
}

BackendChoice parseBackendChoice(const std::string& text) {
  if (text == "dense") return BackendChoice::kDense;
  if (text == "sparse") return BackendChoice::kSparse;
  if (text == "auto") return BackendChoice::kAuto;
  std::string message = "unknown backend '" + text + "'";
  const std::string suggestion =
      closestMatch(text, {"dense", "sparse", "auto"});
  if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
  message += " (known: dense, sparse, auto)";
  throw std::invalid_argument(message);
}

std::string backendChoiceName(BackendChoice backend) {
  switch (backend) {
    case BackendChoice::kDense:
      return "dense";
    case BackendChoice::kSparse:
      return "sparse";
    case BackendChoice::kAuto:
      return "auto";
  }
  return "auto";
}

std::vector<std::string> defaultAdversarySpecs(const std::string& dynamics) {
  const DynamicsSpec parsed = DynamicsSpec::parse(dynamics);
  const DynamicsInfo& entry = DynamicsRegistry::instance().info(parsed.name);
  if (entry.defaultAdversaries) {
    return entry.defaultAdversaries(parsed.params);
  }
  // Graph models are their own (only) member.
  return {parsed.toString()};
}

void validateScenario(const ScenarioSpec& spec) {
  if (spec.seedsPerSize == 0) {
    throw std::invalid_argument("scenario: seedsPerSize must be >= 1");
  }
  const DynamicsSpec dynamics = DynamicsSpec::parse(spec.dynamics);
  const DynamicsRegistry& dynRegistry = DynamicsRegistry::instance();
  dynRegistry.validate(dynamics);
  const DynamicsInfo& entry = dynRegistry.info(dynamics.name);

  if (entry.mode != DynamicsMode::kAdversaryTrees &&
      spec.objective == Objective::kGossip) {
    throw std::invalid_argument(
        "scenario: gossip is only defined over tree dynamics here "
        "(dynamics '" + dynamics.name +
        "' supports objective=broadcast)");
  }

  // Batching advances replicate lanes of one oblivious adversary through
  // a shared BatchBroadcastSim, which only the runSweep broadcast-tree
  // path does. An explicit width elsewhere would be silently ignored, so
  // reject it; auto degrades to scalar without complaint.
  if (spec.batch.mode == BatchPolicy::Mode::kFixed &&
      (entry.mode != DynamicsMode::kAdversaryTrees ||
       spec.objective == Objective::kGossip)) {
    throw std::invalid_argument(
        "scenario: batch=" + batchPolicyName(spec.batch) +
        " only applies to objective=broadcast over adversary-driven tree "
        "dynamics (got dynamics '" + dynamics.name + "', objective=" +
        objectiveName(spec.objective) +
        "); use batch=auto or batch=off");
  }

  if (entry.mode == DynamicsMode::kGraphModel) {
    // The model emits every round's graph itself; an adversary has no
    // move to make, so listing one is a spec error, not a no-op.
    if (!spec.adversaries.empty()) {
      throw std::invalid_argument(
          "dynamics '" + dynamics.toString() +
          "' is a graph model: it emits the per-round graphs itself, so "
          "the adversary list must be empty (got '" + spec.adversaries[0] +
          "')");
    }
    if (spec.backend == BackendChoice::kSparse && !entry.sparseCapable) {
      std::string capable;
      for (const std::string& name : dynRegistry.names()) {
        if (!dynRegistry.info(name).sparseCapable) continue;
        if (!capable.empty()) capable += ", ";
        capable += name;
      }
      throw std::invalid_argument(
          "dynamics '" + dynamics.name +
          "' has no sparse generation path; use backend=dense or "
          "backend=auto (sparse-capable models: " + capable + ")");
    }
    return;
  }

  if (entry.mode == DynamicsMode::kGeneratorList) {
    if (spec.backend == BackendChoice::kSparse) {
      throw std::invalid_argument(
          "backend=sparse is not supported under the deprecated '" +
          dynamics.name +
          "' alias; name the generator as the dynamics spec instead "
          "(e.g. dynamics=nonsplit-random)");
    }
    for (const std::string& text : resolvedSpecs(spec)) {
      validateGeneratorEntry(text);
    }
    return;
  }

  if (spec.backend == BackendChoice::kSparse) {
    throw std::invalid_argument(
        "dynamics '" + dynamics.name +
        "' is adversary-driven: the adversary reads the full dense "
        "simulator state, so backend=sparse cannot run it; use "
        "backend=dense or backend=auto");
  }

  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  for (const std::string& text : resolvedSpecs(spec)) {
    const AdversarySpec parsed = AdversarySpec::parse(text);
    registry.validate(parsed);
    if (!entry.admissibleAdversaries.empty() &&
        std::find(entry.admissibleAdversaries.begin(),
                  entry.admissibleAdversaries.end(),
                  parsed.name) == entry.admissibleAdversaries.end()) {
      std::string admitted;
      for (const std::string& name : entry.admissibleAdversaries) {
        if (!admitted.empty()) admitted += ", ";
        admitted += name;
      }
      throw std::invalid_argument(
          "dynamics '" + dynamics.name + "' only admits adversaries " +
          "from its restricted classes (" + admitted + "); got '" +
          parsed.name + "'");
    }
  }
}

ScenarioResult runScenario(const ScenarioSpec& spec,
                           ExperimentEngine& engine) {
  validateScenario(spec);
  const DynamicsSpec dynamics = DynamicsSpec::parse(spec.dynamics);
  const DynamicsInfo& entry =
      DynamicsRegistry::instance().info(dynamics.name);
  if (entry.mode == DynamicsMode::kGraphModel) {
    return runModelScenario(spec, engine, {dynamics.toString()});
  }
  if (entry.mode == DynamicsMode::kGeneratorList) {
    return runModelScenario(spec, engine, resolvedSpecs(spec));
  }
  if (spec.objective == Objective::kGossip) {
    return runGossipScenario(spec, engine);
  }
  // Broadcast over (un)restricted trees: exactly the engine's portfolio
  // sweep — a default rooted-tree scenario reproduces
  // runSweep(standardPortfolio) bit-for-bit.
  const std::vector<std::string> specs = resolvedSpecs(spec);
  SweepSpec sweep;
  sweep.sizes = spec.sizes;
  sweep.masterSeed = spec.masterSeed;
  sweep.seedsPerSize = spec.seedsPerSize;
  sweep.roundCap = spec.roundCap;
  sweep.recordHistory = spec.recordHistory;
  sweep.batch = spec.batch;
  sweep.portfolio = [specs](std::size_t n, std::uint64_t seed) {
    return membersFromSpecs(specs, n, seed);
  };
  return engine.runSweep(sweep);
}

}  // namespace dynbcast
