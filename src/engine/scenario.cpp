#include "src/engine/scenario.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "src/adversary/adversary.h"
#include "src/adversary/registry.h"
#include "src/bounds/bounds.h"
#include "src/nonsplit/nonsplit.h"
#include "src/sim/gossip.h"
#include "src/support/assert.h"

namespace dynbcast {

namespace {

/// The nonsplit dynamics universe: graph generators, not tree
/// adversaries, so they live here instead of the AdversaryRegistry. Specs
/// use the same name:key=value grammar.
struct NonsplitGenerator {
  std::string name;
  std::string edgesDoc;  // empty = takes no parameters
};

const NonsplitGenerator kNonsplitGenerators[] = {
    {"nonsplit-random",
     "extra random edges before the nonsplit repair; 0 = 2n"},
    {"nonsplit-skewed", ""},
};

[[nodiscard]] const NonsplitGenerator* findNonsplitGenerator(
    const std::string& name) {
  for (const NonsplitGenerator& gen : kNonsplitGenerators) {
    if (gen.name == name) return &gen;
  }
  return nullptr;
}

[[nodiscard]] BitMatrix makeNonsplitGraph(const AdversarySpec& spec,
                                          std::size_t n, Rng& rng) {
  if (spec.name == "nonsplit-random") {
    const std::size_t edges = spec.params.getUInt("edges", 0);
    return randomNonsplitGraph(n, edges != 0 ? edges : 2 * n, rng);
  }
  DYNBCAST_ASSERT(spec.name == "nonsplit-skewed");
  return skewedNonsplitGraph(n, rng);
}

void validateNonsplitSpec(const AdversarySpec& spec) {
  const NonsplitGenerator* gen = findNonsplitGenerator(spec.name);
  if (gen == nullptr) {
    std::vector<std::string> pool;
    for (const NonsplitGenerator& g : kNonsplitGenerators) {
      pool.push_back(g.name);
    }
    std::string message = "dynamics 'nonsplit': unknown generator '" +
                          spec.name + "'";
    const std::string suggestion = closestMatch(spec.name, pool);
    if (!suggestion.empty()) {
      message += "; did you mean '" + suggestion + "'?";
    }
    message += " (known: nonsplit-random, nonsplit-skewed)";
    throw std::invalid_argument(message);
  }
  for (const auto& [key, value] : spec.params.values()) {
    if (!gen->edgesDoc.empty() && key == "edges") continue;
    throw std::invalid_argument("nonsplit generator '" + spec.name +
                                "': unknown parameter '" + key + "'" +
                                (gen->edgesDoc.empty()
                                     ? " (takes no parameters)"
                                     : " (known parameters: edges)"));
  }
}

[[nodiscard]] std::vector<std::string> resolvedSpecs(
    const ScenarioSpec& spec) {
  return spec.adversaries.empty() ? defaultAdversarySpecs(spec.dynamics)
                                  : spec.adversaries;
}

/// Instance plan shared by the gossip and nonsplit paths — the same
/// sizes × replicates flattening (and position-derived seeds) as
/// ExperimentEngine::runSweep, so row order and seeding match the
/// broadcast path exactly.
struct InstancePlan {
  std::size_t n = 0;
  std::size_t seedIndex = 0;
  std::uint64_t instanceSeed = 0;
  std::size_t firstRow = 0;
};

[[nodiscard]] std::vector<InstancePlan> planInstances(
    const ScenarioSpec& spec, std::size_t membersPerInstance,
    std::size_t* totalRows) {
  const SeedSequence seeds(spec.masterSeed);
  std::vector<InstancePlan> plan;
  plan.reserve(spec.sizes.size() * spec.seedsPerSize);
  *totalRows = 0;
  for (std::size_t s = 0; s < spec.sizes.size(); ++s) {
    for (std::size_t r = 0; r < spec.seedsPerSize; ++r) {
      InstancePlan instance;
      instance.n = spec.sizes[s];
      instance.seedIndex = r;
      instance.instanceSeed = seeds.at(s * spec.seedsPerSize + r);
      instance.firstRow = *totalRows;
      *totalRows += membersPerInstance;
      plan.push_back(instance);
    }
  }
  return plan;
}

/// Regroups rows into per-instance aggregates (same as runSweep's
/// aggregate phase): bestRounds is the max over *completed* rows.
[[nodiscard]] std::vector<SweepInstance> aggregateInstances(
    const std::vector<SweepRow>& rows, const std::vector<InstancePlan>& plan,
    std::size_t membersPerInstance) {
  std::vector<SweepInstance> instances;
  instances.reserve(plan.size());
  for (const InstancePlan& instance : plan) {
    SweepInstance aggregate;
    aggregate.n = instance.n;
    aggregate.seedIndex = instance.seedIndex;
    aggregate.instanceSeed = instance.instanceSeed;
    for (std::size_t m = 0; m < membersPerInstance; ++m) {
      const SweepRow& row = rows[instance.firstRow + m];
      aggregate.portfolio.entries.push_back(
          {row.member, row.rounds, row.completed, {}});
      if (row.completed && row.rounds > aggregate.portfolio.bestRounds) {
        aggregate.portfolio.bestRounds = row.rounds;
        aggregate.portfolio.bestName = row.member;
      }
    }
    instances.push_back(std::move(aggregate));
  }
  return instances;
}

[[nodiscard]] ScenarioResult runGossipScenario(const ScenarioSpec& spec,
                                               ExperimentEngine& engine) {
  const std::vector<std::string> specs = resolvedSpecs(spec);
  std::size_t totalRows = 0;
  const std::vector<InstancePlan> plan =
      planInstances(spec, specs.size(), &totalRows);

  // Materialize member factories per instance on this thread (factories
  // capture the instance seed), mirroring runSweep's plan phase.
  std::vector<std::vector<PortfolioMember>> members;
  members.reserve(plan.size());
  for (const InstancePlan& instance : plan) {
    members.push_back(
        membersFromSpecs(specs, instance.n, instance.instanceSeed));
  }

  std::vector<std::pair<std::size_t, std::size_t>> taskOf;  // row → (p, m)
  taskOf.reserve(totalRows);
  for (std::size_t p = 0; p < plan.size(); ++p) {
    for (std::size_t m = 0; m < specs.size(); ++m) taskOf.emplace_back(p, m);
  }

  ScenarioResult result;
  result.rows = engine.map<SweepRow>(
      totalRows, spec.masterSeed,
      [&](std::size_t t, std::uint64_t) {
        const auto [p, m] = taskOf[t];
        const InstancePlan& instance = plan[p];
        const PortfolioMember& member = members[p][m];
        const std::unique_ptr<Adversary> adversary = member.make();
        const std::size_t cap = spec.roundCap != 0
                                    ? spec.roundCap
                                    : defaultGossipRoundCap(instance.n);
        BroadcastRun run = runAdversaryGossip(instance.n, *adversary, cap,
                                              spec.recordHistory);
        SweepRow row;
        row.n = instance.n;
        row.seedIndex = instance.seedIndex;
        row.instanceSeed = instance.instanceSeed;
        row.member = member.name;
        row.rounds = run.rounds;
        row.completed = run.completed;
        row.history = std::move(run.history);
        return row;
      });
  result.instances = aggregateInstances(result.rows, plan, specs.size());
  return result;
}

[[nodiscard]] ScenarioResult runNonsplitScenario(const ScenarioSpec& spec,
                                                 ExperimentEngine& engine) {
  const std::vector<std::string> specTexts = resolvedSpecs(spec);
  std::vector<AdversarySpec> parsed;
  parsed.reserve(specTexts.size());
  for (const std::string& text : specTexts) {
    parsed.push_back(AdversarySpec::parse(text));
  }
  std::size_t totalRows = 0;
  const std::vector<InstancePlan> plan =
      planInstances(spec, parsed.size(), &totalRows);

  std::vector<std::pair<std::size_t, std::size_t>> taskOf;
  taskOf.reserve(totalRows);
  for (std::size_t p = 0; p < plan.size(); ++p) {
    for (std::size_t m = 0; m < parsed.size(); ++m) taskOf.emplace_back(p, m);
  }

  ScenarioResult result;
  result.rows = engine.map<SweepRow>(
      totalRows, spec.masterSeed,
      [&](std::size_t t, std::uint64_t) {
        const auto [p, m] = taskOf[t];
        const InstancePlan& instance = plan[p];
        const AdversarySpec& gen = parsed[m];
        const std::size_t cap =
            spec.roundCap != 0
                ? spec.roundCap
                : static_cast<std::size_t>(
                      bounds::nonsplitLogUpper(instance.n)) +
                      8;
        // Generator draws are decorrelated per member via a fixed odd
        // multiplier on the member index (seeds stay position-derived).
        Rng rng(instance.instanceSeed ^
                (0x9e3779b97f4a7c15ull * (m + 1)));
        const NonsplitRun run = runNonsplitBroadcast(
            instance.n,
            [&gen, &instance](Rng& r) {
              return makeNonsplitGraph(gen, instance.n, r);
            },
            cap, rng);
        SweepRow row;
        row.n = instance.n;
        row.seedIndex = instance.seedIndex;
        row.instanceSeed = instance.instanceSeed;
        row.member = gen.toString();
        row.rounds = run.rounds;
        row.completed = run.completed;
        return row;
      });
  result.instances = aggregateInstances(result.rows, plan, parsed.size());
  return result;
}

}  // namespace

Objective parseObjective(const std::string& text) {
  if (text == "broadcast") return Objective::kBroadcast;
  if (text == "gossip") return Objective::kGossip;
  std::string message = "unknown objective '" + text + "'";
  const std::string suggestion =
      closestMatch(text, {"broadcast", "gossip"});
  if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
  message += " (known: broadcast, gossip)";
  throw std::invalid_argument(message);
}

std::string objectiveName(Objective objective) {
  return objective == Objective::kBroadcast ? "broadcast" : "gossip";
}

Dynamics parseDynamics(const std::string& text) {
  if (text == "rooted-tree") return Dynamics::kRootedTree;
  if (text == "restricted") return Dynamics::kRestricted;
  if (text == "nonsplit") return Dynamics::kNonsplit;
  std::string message = "unknown dynamics '" + text + "'";
  const std::string suggestion =
      closestMatch(text, {"rooted-tree", "restricted", "nonsplit"});
  if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
  message += " (known: rooted-tree, restricted, nonsplit)";
  throw std::invalid_argument(message);
}

std::string dynamicsName(Dynamics dynamics) {
  switch (dynamics) {
    case Dynamics::kRootedTree:
      return "rooted-tree";
    case Dynamics::kRestricted:
      return "restricted";
    case Dynamics::kNonsplit:
      return "nonsplit";
  }
  return "rooted-tree";
}

std::vector<std::string> defaultAdversarySpecs(Dynamics dynamics) {
  switch (dynamics) {
    case Dynamics::kRootedTree:
      return standardPortfolioSpecs();
    case Dynamics::kRestricted:
      return {"k-leaf:k=2", "k-inner:k=2", "freeze-broom:handle=2"};
    case Dynamics::kNonsplit:
      return {"nonsplit-random", "nonsplit-skewed"};
  }
  return standardPortfolioSpecs();
}

void validateScenario(const ScenarioSpec& spec) {
  if (spec.seedsPerSize == 0) {
    throw std::invalid_argument("scenario: seedsPerSize must be >= 1");
  }
  if (spec.dynamics == Dynamics::kNonsplit &&
      spec.objective == Objective::kGossip) {
    throw std::invalid_argument(
        "scenario: gossip is only defined over tree dynamics here "
        "(nonsplit graphs support objective=broadcast)");
  }
  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  for (const std::string& text : resolvedSpecs(spec)) {
    const AdversarySpec parsed = AdversarySpec::parse(text);
    if (spec.dynamics == Dynamics::kNonsplit) {
      validateNonsplitSpec(parsed);
      continue;
    }
    registry.validate(parsed);
    if (spec.dynamics == Dynamics::kRestricted &&
        parsed.name != "k-leaf" && parsed.name != "k-inner" &&
        parsed.name != "freeze-broom") {
      throw std::invalid_argument(
          "dynamics 'restricted' only admits adversaries from the "
          "restricted tree classes of [14] (k-leaf, k-inner, "
          "freeze-broom); got '" + parsed.name + "'");
    }
  }
}

ScenarioResult runScenario(const ScenarioSpec& spec,
                           ExperimentEngine& engine) {
  validateScenario(spec);
  if (spec.dynamics == Dynamics::kNonsplit) {
    return runNonsplitScenario(spec, engine);
  }
  if (spec.objective == Objective::kGossip) {
    return runGossipScenario(spec, engine);
  }
  // Broadcast over (un)restricted trees: exactly the engine's portfolio
  // sweep — a default rooted-tree scenario reproduces
  // runSweep(standardPortfolio) bit-for-bit.
  const std::vector<std::string> specs = resolvedSpecs(spec);
  SweepSpec sweep;
  sweep.sizes = spec.sizes;
  sweep.masterSeed = spec.masterSeed;
  sweep.seedsPerSize = spec.seedsPerSize;
  sweep.roundCap = spec.roundCap;
  sweep.recordHistory = spec.recordHistory;
  sweep.portfolio = [specs](std::size_t n, std::uint64_t seed) {
    return membersFromSpecs(specs, n, seed);
  };
  return engine.runSweep(sweep);
}

}  // namespace dynbcast
