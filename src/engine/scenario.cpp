#include "src/engine/scenario.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/adversary/adversary.h"
#include "src/adversary/registry.h"
#include "src/dynamics/registry.h"
#include "src/engine/task_plan.h"
#include "src/sim/gossip.h"

namespace dynbcast {

static_assert(kAutoSparseThreshold == kSparseDenseMirrorMaxN,
              "auto must only pick sparse where sparse generation stops "
              "mirroring dense, so backend choice never changes rows at "
              "sizes both backends serve routinely");

namespace {

[[nodiscard]] std::vector<std::string> resolvedSpecs(
    const ScenarioSpec& spec) {
  return spec.adversaries.empty() ? defaultAdversarySpecs(spec.dynamics)
                                  : spec.adversaries;
}

/// The gossip and graph-model paths share one execution shape: map the
/// task plan's per-position executor over the row grid. Row order,
/// seeding, and member naming are all pure functions of position (see
/// task_plan.h), so the result is byte-identical at any job count — and
/// byte-identical to a service worker executing the same positions in
/// another process.
[[nodiscard]] ScenarioResult runPlannedScenario(const ScenarioSpec& spec,
                                                ExperimentEngine& engine) {
  ScenarioResult result;
  result.rows = engine.map<SweepRow>(
      scenarioRowCount(spec), spec.masterSeed,
      [&](std::size_t position, std::uint64_t) {
        return runScenarioRow(spec, position);
      });
  result.instances = aggregateScenarioInstances(spec, result.rows);
  return result;
}

/// Validates one entry of the legacy nonsplit generator list: it must be
/// a registered graph model of the nonsplit class.
void validateGeneratorEntry(const std::string& text) {
  const DynamicsSpec parsed = DynamicsSpec::parse(text);
  const DynamicsRegistry& registry = DynamicsRegistry::instance();
  registry.validate(parsed);  // unknown name/key suggestions live here
  const DynamicsInfo& entry = registry.info(parsed.name);
  if (entry.mode != DynamicsMode::kGraphModel ||
      entry.graphClass != DynamicsClass::kNonsplit) {
    throw std::invalid_argument(
        "dynamics 'nonsplit': '" + parsed.name +
        "' is not a nonsplit graph generator (known: nonsplit-random, "
        "nonsplit-skewed)");
  }
}

}  // namespace

Objective parseObjective(const std::string& text) {
  if (text == "broadcast") return Objective::kBroadcast;
  if (text == "gossip") return Objective::kGossip;
  std::string message = "unknown objective '" + text + "'";
  const std::string suggestion =
      closestMatch(text, {"broadcast", "gossip"});
  if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
  message += " (known: broadcast, gossip)";
  throw std::invalid_argument(message);
}

std::string objectiveName(Objective objective) {
  return objective == Objective::kBroadcast ? "broadcast" : "gossip";
}

BackendChoice parseBackendChoice(const std::string& text) {
  if (text == "dense") return BackendChoice::kDense;
  if (text == "sparse") return BackendChoice::kSparse;
  if (text == "auto") return BackendChoice::kAuto;
  std::string message = "unknown backend '" + text + "'";
  const std::string suggestion =
      closestMatch(text, {"dense", "sparse", "auto"});
  if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
  message += " (known: dense, sparse, auto)";
  throw std::invalid_argument(message);
}

std::string backendChoiceName(BackendChoice backend) {
  switch (backend) {
    case BackendChoice::kDense:
      return "dense";
    case BackendChoice::kSparse:
      return "sparse";
    case BackendChoice::kAuto:
      return "auto";
  }
  return "auto";
}

std::vector<std::string> defaultAdversarySpecs(const std::string& dynamics) {
  const DynamicsSpec parsed = DynamicsSpec::parse(dynamics);
  const DynamicsInfo& entry = DynamicsRegistry::instance().info(parsed.name);
  if (entry.defaultAdversaries) {
    return entry.defaultAdversaries(parsed.params);
  }
  // Graph models are their own (only) member.
  return {parsed.toString()};
}

void validateScenario(const ScenarioSpec& spec) {
  if (spec.seedsPerSize == 0) {
    throw std::invalid_argument("scenario: seedsPerSize must be >= 1");
  }
  const DynamicsSpec dynamics = DynamicsSpec::parse(spec.dynamics);
  const DynamicsRegistry& dynRegistry = DynamicsRegistry::instance();
  dynRegistry.validate(dynamics);
  const DynamicsInfo& entry = dynRegistry.info(dynamics.name);

  if (entry.mode != DynamicsMode::kAdversaryTrees &&
      spec.objective == Objective::kGossip) {
    throw std::invalid_argument(
        "scenario: gossip is only defined over tree dynamics here "
        "(dynamics '" + dynamics.name +
        "' supports objective=broadcast)");
  }

  // Batching advances replicate lanes of one oblivious adversary through
  // a shared BatchBroadcastSim, which only the runSweep broadcast-tree
  // path does. An explicit width elsewhere would be silently ignored, so
  // reject it; auto degrades to scalar without complaint.
  if (spec.batch.mode == BatchPolicy::Mode::kFixed &&
      (entry.mode != DynamicsMode::kAdversaryTrees ||
       spec.objective == Objective::kGossip)) {
    throw std::invalid_argument(
        "scenario: batch=" + batchPolicyName(spec.batch) +
        " only applies to objective=broadcast over adversary-driven tree "
        "dynamics (got dynamics '" + dynamics.name + "', objective=" +
        objectiveName(spec.objective) +
        "); use batch=auto or batch=off");
  }

  if (entry.mode == DynamicsMode::kGraphModel) {
    // The model emits every round's graph itself; an adversary has no
    // move to make, so listing one is a spec error, not a no-op.
    if (!spec.adversaries.empty()) {
      throw std::invalid_argument(
          "dynamics '" + dynamics.toString() +
          "' is a graph model: it emits the per-round graphs itself, so "
          "the adversary list must be empty (got '" + spec.adversaries[0] +
          "')");
    }
    if (spec.backend == BackendChoice::kSparse && !entry.sparseCapable) {
      std::string capable;
      for (const std::string& name : dynRegistry.names()) {
        if (!dynRegistry.info(name).sparseCapable) continue;
        if (!capable.empty()) capable += ", ";
        capable += name;
      }
      throw std::invalid_argument(
          "dynamics '" + dynamics.name +
          "' has no sparse generation path; use backend=dense or "
          "backend=auto (sparse-capable models: " + capable + ")");
    }
    return;
  }

  if (entry.mode == DynamicsMode::kGeneratorList) {
    if (spec.backend == BackendChoice::kSparse) {
      throw std::invalid_argument(
          "backend=sparse is not supported under the deprecated '" +
          dynamics.name +
          "' alias; name the generator as the dynamics spec instead "
          "(e.g. dynamics=nonsplit-random)");
    }
    for (const std::string& text : resolvedSpecs(spec)) {
      validateGeneratorEntry(text);
    }
    return;
  }

  if (spec.backend == BackendChoice::kSparse) {
    throw std::invalid_argument(
        "dynamics '" + dynamics.name +
        "' is adversary-driven: the adversary reads the full dense "
        "simulator state, so backend=sparse cannot run it; use "
        "backend=dense or backend=auto");
  }

  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  for (const std::string& text : resolvedSpecs(spec)) {
    const AdversarySpec parsed = AdversarySpec::parse(text);
    registry.validate(parsed);
    if (!entry.admissibleAdversaries.empty() &&
        std::find(entry.admissibleAdversaries.begin(),
                  entry.admissibleAdversaries.end(),
                  parsed.name) == entry.admissibleAdversaries.end()) {
      std::string admitted;
      for (const std::string& name : entry.admissibleAdversaries) {
        if (!admitted.empty()) admitted += ", ";
        admitted += name;
      }
      throw std::invalid_argument(
          "dynamics '" + dynamics.name + "' only admits adversaries " +
          "from its restricted classes (" + admitted + "); got '" +
          parsed.name + "'");
    }
  }
}

ScenarioResult runScenario(const ScenarioSpec& spec,
                           ExperimentEngine& engine) {
  validateScenario(spec);
  const DynamicsSpec dynamics = DynamicsSpec::parse(spec.dynamics);
  const DynamicsInfo& entry =
      DynamicsRegistry::instance().info(dynamics.name);
  if (entry.mode == DynamicsMode::kGraphModel ||
      entry.mode == DynamicsMode::kGeneratorList ||
      spec.objective == Objective::kGossip) {
    return runPlannedScenario(spec, engine);
  }
  // Broadcast over (un)restricted trees: exactly the engine's portfolio
  // sweep — a default rooted-tree scenario reproduces
  // runSweep(standardPortfolio) bit-for-bit.
  const std::vector<std::string> specs = resolvedSpecs(spec);
  SweepSpec sweep;
  sweep.sizes = spec.sizes;
  sweep.masterSeed = spec.masterSeed;
  sweep.seedsPerSize = spec.seedsPerSize;
  sweep.roundCap = spec.roundCap;
  sweep.recordHistory = spec.recordHistory;
  sweep.batch = spec.batch;
  sweep.portfolio = [specs](std::size_t n, std::uint64_t seed) {
    return membersFromSpecs(specs, n, seed);
  };
  return engine.runSweep(sweep);
}

}  // namespace dynbcast
