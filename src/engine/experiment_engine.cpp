#include "src/engine/experiment_engine.h"

#include <algorithm>
#include <cctype>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/adversary/adversary.h"
#include "src/support/assert.h"
#include "src/support/spec.h"

namespace dynbcast {

namespace {

struct InstancePlan {
  std::size_t n = 0;
  std::size_t seedIndex = 0;
  std::uint64_t instanceSeed = 0;
  std::vector<PortfolioMember> members;
  std::size_t firstRow = 0;  // offset of this instance's rows
};

/// One unit of run-phase work: a scalar (instance, member) run when
/// laneCount == 1, else a lockstep batch of laneCount consecutive
/// replicates of the same member position.
struct RunTask {
  std::size_t planBegin = 0;
  std::size_t laneCount = 1;
  std::size_t memberPos = 0;
};

}  // namespace

BatchPolicy parseBatchPolicy(const std::string& text) {
  if (text == "auto") return {BatchPolicy::Mode::kAuto, 0};
  if (text == "off") return {BatchPolicy::Mode::kOff, 0};
  const bool numeric =
      !text.empty() &&
      std::all_of(text.begin(), text.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      });
  if (numeric) {
    constexpr std::size_t kMaxWidth = 4096;
    std::size_t width = 0;
    for (const char c : text) {
      width = width * 10 + static_cast<std::size_t>(c - '0');
      if (width > kMaxWidth) break;
    }
    if (width >= 1 && width <= kMaxWidth) {
      return {BatchPolicy::Mode::kFixed, width};
    }
    throw std::invalid_argument("batch: lane width must be between 1 and " +
                                std::to_string(kMaxWidth) + " (got '" + text +
                                "')");
  }
  std::string message = "unknown batch policy '" + text + "'";
  const std::string suggestion = closestMatch(text, {"auto", "off"});
  if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
  message += " (expected auto, off, or a lane width like 8)";
  throw std::invalid_argument(message);
}

std::string batchPolicyName(const BatchPolicy& policy) {
  switch (policy.mode) {
    case BatchPolicy::Mode::kOff:
      return "off";
    case BatchPolicy::Mode::kFixed:
      return std::to_string(policy.width);
    case BatchPolicy::Mode::kAuto:
      break;
  }
  return "auto";
}

ExperimentEngine::ExperimentEngine(EngineConfig config)
    : config_(config), pool_(config.jobs) {}

SweepResult ExperimentEngine::runSweep(const SweepSpec& spec) {
  DYNBCAST_ASSERT(spec.seedsPerSize > 0);
  const auto portfolio =
      spec.portfolio
          ? spec.portfolio
          : [](std::size_t n, std::uint64_t seed) {
              return standardPortfolio(n, seed);
            };

  // Plan phase (serial, cheap): flatten sizes × replicates into instances
  // and materialize each instance's member list, so every task has a
  // fixed position before any runs. Instance seeds are position-derived —
  // replicate r of sizes[s] always gets SeedSequence.at(s*R + r).
  const SeedSequence seeds(spec.masterSeed);
  std::vector<InstancePlan> plan;
  plan.reserve(spec.sizes.size() * spec.seedsPerSize);
  std::size_t totalRows = 0;
  for (std::size_t s = 0; s < spec.sizes.size(); ++s) {
    for (std::size_t r = 0; r < spec.seedsPerSize; ++r) {
      InstancePlan instance;
      instance.n = spec.sizes[s];
      instance.seedIndex = r;
      instance.instanceSeed = seeds.at(s * spec.seedsPerSize + r);
      instance.members = portfolio(instance.n, instance.instanceSeed);
      instance.firstRow = totalRows;
      totalRows += instance.members.size();
      plan.push_back(std::move(instance));
    }
  }

  // Run phase: by default one task per (instance, member) — member runs
  // of one large instance spread over all cores instead of serializing on
  // one. Under the batch policy, replicates of an oblivious member within
  // one size cell chunk into lockstep BatchBroadcastSim tasks instead
  // (bit-identical rows, the tree decode amortized over the chunk). Each
  // task writes only its own position-indexed slots, so the only shared
  // state is read-only plan data.
  const bool recordHistory =
      spec.recordHistory.value_or(config_.recordHistory);
  const std::size_t roundCap = spec.roundCap;
  const std::size_t replicates = spec.seedsPerSize;
  const std::size_t batchWidth = spec.batch.mode == BatchPolicy::Mode::kFixed
                                     ? spec.batch.width
                                     : BatchPolicy::kAutoWidth;
  DYNBCAST_ASSERT(spec.batch.mode != BatchPolicy::Mode::kFixed ||
                  spec.batch.width >= 1);
  // History recording forces the scalar path (batches never record), and
  // auto only engages once a cell has a full batch of replicates.
  const bool batchable =
      !recordHistory && spec.batch.mode != BatchPolicy::Mode::kOff &&
      (spec.batch.mode == BatchPolicy::Mode::kFixed ||
       replicates >= BatchPolicy::kAutoWidth);
  std::vector<RunTask> tasks;
  tasks.reserve(totalRows);
  std::vector<char> batchedPos;  // per member position of the current cell
  for (std::size_t s = 0; s < spec.sizes.size(); ++s) {
    const std::size_t begin = s * replicates;
    const std::size_t memberCount = plan[begin].members.size();
    batchedPos.assign(memberCount, 0);
    if (batchable) {
      // A member position batches when every replicate of this size cell
      // lists the same member there (the portfolio factory may vary with
      // the seed) and a probe instance reports itself oblivious.
      bool sameShape = true;
      for (std::size_t r = 1; sameShape && r < replicates; ++r) {
        sameShape = plan[begin + r].members.size() == memberCount;
      }
      if (sameShape) {
        for (std::size_t m = 0; m < memberCount; ++m) {
          bool sameName = true;
          for (std::size_t r = 1; sameName && r < replicates; ++r) {
            sameName =
                plan[begin + r].members[m].name == plan[begin].members[m].name;
          }
          if (sameName && plan[begin].members[m].make()->oblivious()) {
            batchedPos[m] = 1;
          }
        }
      }
    }
    for (std::size_t m = 0; m < memberCount; ++m) {
      if (batchedPos[m]) {
        for (std::size_t r = 0; r < replicates; r += batchWidth) {
          tasks.push_back(
              {begin + r, std::min(batchWidth, replicates - r), m});
        }
      } else {
        for (std::size_t r = 0; r < replicates; ++r) {
          if (m < plan[begin + r].members.size()) {
            tasks.push_back({begin + r, 1, m});
          }
        }
      }
    }
    // Replicates with MORE members than the cell's first instance (only
    // possible when the member-list shapes differ across replicates,
    // which also disabled batching) still need their extra rows run.
    for (std::size_t r = 0; r < replicates; ++r) {
      for (std::size_t m = memberCount; m < plan[begin + r].members.size();
           ++m) {
        tasks.push_back({begin + r, 1, m});
      }
    }
  }
  SweepResult result;
  result.rows.resize(totalRows);
  pool_.parallelFor(tasks.size(), [&](std::size_t t) {
    const RunTask& task = tasks[t];
    if (task.laneCount == 1) {
      const InstancePlan& instance = plan[task.planBegin];
      const PortfolioMember& member = instance.members[task.memberPos];
      const std::unique_ptr<Adversary> adversary = member.make();
      const std::size_t cap =
          roundCap != 0 ? roundCap : defaultRoundCap(instance.n);
      BroadcastRun run =
          runAdversary(instance.n, *adversary, cap, recordHistory);
      SweepRow& row = result.rows[instance.firstRow + task.memberPos];
      row.n = instance.n;
      row.seedIndex = instance.seedIndex;
      row.instanceSeed = instance.instanceSeed;
      row.member = member.name;
      row.rounds = run.rounds;
      row.completed = run.completed;
      row.history = std::move(run.history);
      return;
    }
    const std::size_t n = plan[task.planBegin].n;
    const std::size_t cap = roundCap != 0 ? roundCap : defaultRoundCap(n);
    std::vector<std::unique_ptr<Adversary>> owners;
    std::vector<Adversary*> lanes;
    owners.reserve(task.laneCount);
    lanes.reserve(task.laneCount);
    for (std::size_t i = 0; i < task.laneCount; ++i) {
      owners.push_back(
          plan[task.planBegin + i].members[task.memberPos].make());
      lanes.push_back(owners.back().get());
    }
    const std::vector<BroadcastRun> runs = runObliviousBatch(n, lanes, cap);
    for (std::size_t i = 0; i < task.laneCount; ++i) {
      const InstancePlan& instance = plan[task.planBegin + i];
      SweepRow& row = result.rows[instance.firstRow + task.memberPos];
      row.n = instance.n;
      row.seedIndex = instance.seedIndex;
      row.instanceSeed = instance.instanceSeed;
      row.member = instance.members[task.memberPos].name;
      row.rounds = runs[i].rounds;
      row.completed = runs[i].completed;
    }
  });

  // Aggregate phase (serial): regroup rows into per-instance portfolio
  // results, preserving the deterministic order.
  result.instances.reserve(plan.size());
  for (const InstancePlan& instance : plan) {
    SweepInstance aggregate;
    aggregate.n = instance.n;
    aggregate.seedIndex = instance.seedIndex;
    aggregate.instanceSeed = instance.instanceSeed;
    for (std::size_t m = 0; m < instance.members.size(); ++m) {
      const SweepRow& row = result.rows[instance.firstRow + m];
      // History stays in rows only — copying the per-round metrics here
      // would double the sweep's dominant allocation at large n.
      aggregate.portfolio.entries.push_back(
          {row.member, row.rounds, row.completed, {}});
      if (row.completed && row.rounds > aggregate.portfolio.bestRounds) {
        aggregate.portfolio.bestRounds = row.rounds;
        aggregate.portfolio.bestName = row.member;
      }
    }
    result.instances.push_back(std::move(aggregate));
  }
  return result;
}

}  // namespace dynbcast
