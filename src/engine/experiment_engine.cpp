#include "src/engine/experiment_engine.h"

#include <memory>
#include <utility>

#include "src/adversary/adversary.h"
#include "src/support/assert.h"

namespace dynbcast {

namespace {

struct InstancePlan {
  std::size_t n = 0;
  std::size_t seedIndex = 0;
  std::uint64_t instanceSeed = 0;
  std::vector<PortfolioMember> members;
  std::size_t firstRow = 0;  // offset of this instance's rows
};

}  // namespace

ExperimentEngine::ExperimentEngine(EngineConfig config)
    : config_(config), pool_(config.jobs) {}

SweepResult ExperimentEngine::runSweep(const SweepSpec& spec) {
  DYNBCAST_ASSERT(spec.seedsPerSize > 0);
  const auto portfolio =
      spec.portfolio
          ? spec.portfolio
          : [](std::size_t n, std::uint64_t seed) {
              return standardPortfolio(n, seed);
            };

  // Plan phase (serial, cheap): flatten sizes × replicates into instances
  // and materialize each instance's member list, so every task has a
  // fixed position before any runs. Instance seeds are position-derived —
  // replicate r of sizes[s] always gets SeedSequence.at(s*R + r).
  const SeedSequence seeds(spec.masterSeed);
  std::vector<InstancePlan> plan;
  plan.reserve(spec.sizes.size() * spec.seedsPerSize);
  std::size_t totalRows = 0;
  for (std::size_t s = 0; s < spec.sizes.size(); ++s) {
    for (std::size_t r = 0; r < spec.seedsPerSize; ++r) {
      InstancePlan instance;
      instance.n = spec.sizes[s];
      instance.seedIndex = r;
      instance.instanceSeed = seeds.at(s * spec.seedsPerSize + r);
      instance.members = portfolio(instance.n, instance.instanceSeed);
      instance.firstRow = totalRows;
      totalRows += instance.members.size();
      plan.push_back(std::move(instance));
    }
  }

  // Run phase: one task per (instance, member) — member runs of one large
  // instance spread over all cores instead of serializing on one. Each
  // task writes only its own position-indexed slot, so the only shared
  // state is read-only plan data.
  std::vector<std::pair<std::size_t, std::size_t>> taskOf;  // row → (p, m)
  taskOf.reserve(totalRows);
  for (std::size_t p = 0; p < plan.size(); ++p) {
    for (std::size_t m = 0; m < plan[p].members.size(); ++m) {
      taskOf.emplace_back(p, m);
    }
  }
  SweepResult result;
  result.rows.resize(totalRows);
  const bool recordHistory =
      spec.recordHistory.value_or(config_.recordHistory);
  const std::size_t roundCap = spec.roundCap;
  pool_.parallelFor(totalRows, [&](std::size_t t) {
    const auto [p, m] = taskOf[t];
    const InstancePlan& instance = plan[p];
    const PortfolioMember& member = instance.members[m];
    const std::unique_ptr<Adversary> adversary = member.make();
    const std::size_t cap =
        roundCap != 0 ? roundCap : defaultRoundCap(instance.n);
    BroadcastRun run =
        runAdversary(instance.n, *adversary, cap, recordHistory);
    SweepRow& row = result.rows[instance.firstRow + m];
    row.n = instance.n;
    row.seedIndex = instance.seedIndex;
    row.instanceSeed = instance.instanceSeed;
    row.member = member.name;
    row.rounds = run.rounds;
    row.completed = run.completed;
    row.history = std::move(run.history);
  });

  // Aggregate phase (serial): regroup rows into per-instance portfolio
  // results, preserving the deterministic order.
  result.instances.reserve(plan.size());
  for (const InstancePlan& instance : plan) {
    SweepInstance aggregate;
    aggregate.n = instance.n;
    aggregate.seedIndex = instance.seedIndex;
    aggregate.instanceSeed = instance.instanceSeed;
    for (std::size_t m = 0; m < instance.members.size(); ++m) {
      const SweepRow& row = result.rows[instance.firstRow + m];
      // History stays in rows only — copying the per-round metrics here
      // would double the sweep's dominant allocation at large n.
      aggregate.portfolio.entries.push_back(
          {row.member, row.rounds, row.completed, {}});
      if (row.completed && row.rounds > aggregate.portfolio.bestRounds) {
        aggregate.portfolio.bestRounds = row.rounds;
        aggregate.portfolio.bestName = row.member;
      }
    }
    result.instances.push_back(std::move(aggregate));
  }
  return result;
}

}  // namespace dynbcast
