// ExperimentEngine: the shared parallel sweep substrate for benches and
// tests.
//
// Every number this repo reports comes from embarrassingly parallel
// per-(n, seed, adversary) runs. The engine owns the one correct way to
// shard them: a declarative SweepSpec (sizes × seed replicates × portfolio
// members) is flattened into tasks, each task's seed is derived from its
// POSITION via SeedSequence (never from execution order), the tasks fan
// out over a work-stealing ThreadPool, and every result lands in a
// preallocated slot indexed by position. Consequence: the collected rows
// are bit-identical at any --jobs value, so parallelism is free to use
// everywhere — including inside determinism tests.
//
// Two entry points:
//   * runSweep(spec)      — the portfolio workload (rows + per-instance
//                           aggregates, Definition 2.3's max);
//   * map(count, seed, f) — generic sharding for everything else (beam
//                           witness searches, gossip scenarios, …).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "src/adversary/portfolio.h"
#include "src/sim/metrics.h"
#include "src/support/seed_sequence.h"
#include "src/support/thread_pool.h"

namespace dynbcast {

struct EngineConfig {
  /// Worker threads; 0 = one per hardware thread.
  std::size_t jobs = 1;
  /// Capture per-round metrics in every row (costly at large n).
  bool recordHistory = false;
};

/// How runSweep schedules the replicates of a (size, member) cell.
///
/// Replicates of an OBLIVIOUS member are independent runs of the same
/// tree process, so the engine can advance a whole chunk of them in
/// lockstep through one BatchBroadcastSim — decoding each round's tree
/// once for the chunk instead of once per replicate, with the row work
/// going through the SIMD dispatch table as contiguous lane-planes.
/// Batching never changes a single byte of output: the batched
/// recurrence is bit-identical to the scalar runs (see runObliviousBatch)
/// and every row still lands in its position-indexed slot. Cells that
/// cannot batch — adaptive members, history recording, member lists that
/// differ across replicates — always run the scalar path.
struct BatchPolicy {
  enum class Mode {
    kAuto,  ///< batch eligible cells with >= kAutoWidth replicates
    kOff,   ///< scalar path for everything
    kFixed  ///< batch eligible cells in chunks of `width` lanes
  };
  Mode mode = Mode::kAuto;
  /// Lane width under kFixed (>= 1); ignored for the other modes.
  std::size_t width = 0;

  /// The width kAuto uses, and the replicate count at which it engages.
  static constexpr std::size_t kAutoWidth = 8;

  friend bool operator==(const BatchPolicy&, const BatchPolicy&) = default;
};

/// Parses "auto" | "off" | a lane width like "8" (the --batch grammar),
/// throwing std::invalid_argument with suggestions on anything else.
[[nodiscard]] BatchPolicy parseBatchPolicy(const std::string& text);
[[nodiscard]] std::string batchPolicyName(const BatchPolicy& policy);

/// Declarative description of a portfolio sweep. The factory is invoked
/// once per (n, seed) instance on the calling thread; the returned
/// members' make() closures are then called concurrently, so they must
/// not share mutable state (standardPortfolio's are pure).
struct SweepSpec {
  std::vector<std::size_t> sizes;
  std::uint64_t masterSeed = 1;
  /// Independent seed replicates per size (instance seeds are derived,
  /// so replicate r of size n is decorrelated from every other task).
  std::size_t seedsPerSize = 1;
  /// Portfolio members per instance; empty = standardPortfolio.
  std::function<std::vector<PortfolioMember>(std::size_t n,
                                             std::uint64_t seed)>
      portfolio;
  /// Round cap per instance; 0 = defaultRoundCap(n).
  std::size_t roundCap = 0;
  /// Per-sweep history override; unset = the engine's
  /// EngineConfig::recordHistory.
  std::optional<bool> recordHistory;
  /// Replicate batching strategy (see BatchPolicy); output-invariant.
  BatchPolicy batch;
};

/// One member's run inside a sweep — the atomic unit of work.
struct SweepRow {
  std::size_t n = 0;
  std::size_t seedIndex = 0;      // replicate index within this size
  std::uint64_t instanceSeed = 0; // derived seed shared by the instance
  std::string member;
  std::size_t rounds = 0;
  bool completed = false;
  std::vector<RoundMetrics> history;  // empty unless recordHistory

  friend bool operator==(const SweepRow& a, const SweepRow& b) {
    return a.n == b.n && a.seedIndex == b.seedIndex &&
           a.instanceSeed == b.instanceSeed && a.member == b.member &&
           a.rounds == b.rounds && a.completed == b.completed;
  }
};

/// Per-(n, seed) aggregate: the portfolio view of one instance. Entry
/// histories are left empty here — per-round metrics live only in
/// SweepResult::rows, to avoid holding them twice.
struct SweepInstance {
  std::size_t n = 0;
  std::size_t seedIndex = 0;
  std::uint64_t instanceSeed = 0;
  PortfolioResult portfolio;  // entries in member order
};

struct SweepResult {
  /// All rows, ordered by (size position, seed replicate, member) — the
  /// same order a serial loop would produce, at any thread count.
  std::vector<SweepRow> rows;
  /// Rows regrouped per instance, same deterministic order.
  std::vector<SweepInstance> instances;
};

class ExperimentEngine {
 public:
  explicit ExperimentEngine(EngineConfig config = {});

  [[nodiscard]] std::size_t jobCount() const noexcept {
    return pool_.threadCount();
  }

  /// Fans the sweep out across the pool; see SweepResult for ordering.
  [[nodiscard]] SweepResult runSweep(const SweepSpec& spec);

  /// Generic sharded map: evaluates fn(index, seed) for every index in
  /// [0, count), where seed = SeedSequence(masterSeed).at(index), and
  /// returns results in index order. R must be default-constructible.
  template <typename R, typename F>
  [[nodiscard]] std::vector<R> map(std::size_t count,
                                   std::uint64_t masterSeed, F&& fn) {
    static_assert(!std::is_same_v<R, bool>,
                  "std::vector<bool> bit-packs, so concurrent writes to "
                  "adjacent slots race — use char or a wrapper struct");
    std::vector<R> out(count);
    const SeedSequence seeds(masterSeed);
    pool_.parallelFor(count, [&](std::size_t index) {
      out[index] = fn(index, seeds.at(index));
    });
    return out;
  }

 private:
  EngineConfig config_;
  ThreadPool pool_;
};

}  // namespace dynbcast
