// The scenario task plan: every scenario, flattened into addressable,
// independently executable row positions.
//
// runScenario() executes a ScenarioSpec as one engine fan-out, but a
// distributed service needs the same work in a different shape: a
// SERIALIZABLE plan whose unit is "row position p of scenario S", so a
// manifest can record per-position completion, a cache can key results by
// (spec, seed, position), and a worker process can execute any subset of
// positions and land byte-identical rows in the same slots. This header
// is that shape:
//
//   * scenarioRowCount(spec)        — the grid size (sizes × replicates ×
//                                     members), fixed by the spec alone;
//   * planScenarioRow(spec, p)      — position p's identity: (sizeIndex,
//                                     seedIndex, memberIndex), its n, its
//                                     position-derived instance seed, and
//                                     the canonical member spec string;
//   * runScenarioRow(spec, p)       — executes exactly the row that
//                                     runScenario() would put at p, on
//                                     the calling thread (the scalar
//                                     path; batching is output-invariant,
//                                     so this is byte-identical);
//   * aggregateScenarioInstances    — regroups rows into the per-instance
//                                     portfolio view, same order.
//
// runScenario()'s gossip and graph-model paths are implemented ON these
// functions (scenario.cpp maps runScenarioRow over [0, rowCount)), so the
// engine and the service cannot drift apart. The broadcast-over-trees
// path keeps ExperimentEngine::runSweep for replicate batching; its rows
// are pinned to runScenarioRow by the task-plan equivalence test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/scenario.h"

namespace dynbcast {

/// Position p's identity within the scenario grid. Everything here is a
/// pure function of (spec, position) — no execution-order dependence —
/// which is what makes the plan serializable and results mergeable.
struct ScenarioRowPlan {
  std::size_t position = 0;
  std::size_t sizeIndex = 0;
  std::size_t seedIndex = 0;    // replicate index within the size
  std::size_t memberIndex = 0;  // index into the resolved member list
  std::size_t n = 0;
  std::uint64_t instanceSeed = 0;  // SeedSequence(masterSeed) position seed
  /// Canonical spec string of the member at memberIndex: an adversary
  /// spec under adversary-driven dynamics, the dynamics/generator spec
  /// under graph models. Sorted-key canonical form — usable as a cache
  /// key component as-is.
  std::string memberSpec;
};

/// The resolved member spec list, canonicalized: the spec's adversaries
/// (or the dynamics' default list) under adversary-driven dynamics, the
/// model itself (or the legacy generator list) under graph models. The
/// spec must already satisfy validateScenario().
[[nodiscard]] std::vector<std::string> resolvedScenarioMemberSpecs(
    const ScenarioSpec& spec);

/// Members per (n, seed) instance — the width of the row grid.
[[nodiscard]] std::size_t scenarioMembersPerInstance(const ScenarioSpec& spec);

/// Total rows: sizes × seedsPerSize × membersPerInstance.
[[nodiscard]] std::size_t scenarioRowCount(const ScenarioSpec& spec);

/// Plans position `position` (must be < scenarioRowCount(spec)).
[[nodiscard]] ScenarioRowPlan planScenarioRow(const ScenarioSpec& spec,
                                              std::size_t position);

/// Executes position `position` on the calling thread and returns the
/// row runScenario() would produce there, byte-identical. The spec must
/// already satisfy validateScenario().
[[nodiscard]] SweepRow runScenarioRow(const ScenarioSpec& spec,
                                      std::size_t position);

/// Regroups a full row vector (ordered by position) into per-instance
/// aggregates — runScenario()'s instances field, reproduced from rows.
[[nodiscard]] std::vector<SweepInstance> aggregateScenarioInstances(
    const ScenarioSpec& spec, const std::vector<SweepRow>& rows);

/// The beam-witness task seed for sizeIndex within a thm31-style sweep:
/// SeedSequence(masterSeed ^ kBeamSeedSalt).at(sizeIndex) — the exact
/// derivation `dynbcast sweep` uses, exposed so a service-side beam task
/// reproduces the CLI's witness rounds bit for bit.
inline constexpr std::uint64_t kBeamSeedSalt = 0xbea3ull;
[[nodiscard]] std::uint64_t scenarioBeamSeed(std::uint64_t masterSeed,
                                             std::size_t sizeIndex);

}  // namespace dynbcast
