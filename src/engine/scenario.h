// ScenarioSpec: the declarative description of one experiment campaign.
//
// A scenario names WHAT to measure (objective: broadcast or gossip),
// UNDER WHICH dynamics — a DynamicsRegistry spec string ("rooted-tree",
// "restricted:class=k-leaf,k=3", "edge-markovian:p=0.2,q=0.1") — OVER
// which sizes × seed replicates, and AGAINST which adversaries, the
// latter as AdversaryRegistry spec strings ("freeze-path:depth=3",
// "beam:width=64"). Both axes are data, so composing a new experiment
// never means writing a new main(). runScenario() executes the spec on an
// ExperimentEngine:
//
//   * adversary-driven dynamics (rooted-tree, restricted) route broadcast
//     through ExperimentEngine::runSweep and gossip through map();
//   * graph-model dynamics (nonsplit-random, edge-markovian, t-interval,
//     …) construct the model per (n, seed) with position-derived seeds
//     and drive runDynamicsBroadcast through map().
//
// Every path returns the same unified SweepRow rows in the same
// deterministic (size, replicate, member) order — byte-identical at any
// job count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/experiment_engine.h"

namespace dynbcast {

/// What a run must complete: one row of the product graph (broadcast) or
/// all of them (gossip).
enum class Objective { kBroadcast, kGossip };

[[nodiscard]] Objective parseObjective(const std::string& text);
[[nodiscard]] std::string objectiveName(Objective objective);

/// Which simulation engine executes the runs. Dense is the bitset
/// BroadcastSim (O(n²) bits of state); sparse is the FrontierSim path
/// (arc-list rounds, O(n + edges) state), valid only for sparse-capable
/// graph-model dynamics. Auto resolves per instance: sparse above
/// kAutoSparseThreshold when the model supports it and no per-round
/// history is wanted, dense otherwise. Rows are backend-invariant at
/// n ≤ kAutoSparseThreshold (sparse generation mirrors dense there), so
/// golden CSVs hold across backends.
enum class BackendChoice { kDense, kSparse, kAuto };

/// Auto switches to sparse strictly above this size. Equal to the
/// dynamics layer's kSparseDenseMirrorMaxN (static_assert'd in
/// scenario.cpp): below it sparse/dense rows are bit-identical, so the
/// auto choice is observable only where the dense matrix starts to hurt.
inline constexpr std::size_t kAutoSparseThreshold = 4096;

[[nodiscard]] BackendChoice parseBackendChoice(const std::string& text);
[[nodiscard]] std::string backendChoiceName(BackendChoice backend);

struct ScenarioSpec {
  Objective objective = Objective::kBroadcast;
  /// DynamicsRegistry spec string naming the dynamic-graph model (the
  /// adversary's move universe, or a stochastic graph process).
  std::string dynamics = "rooted-tree";
  std::vector<std::size_t> sizes;
  std::uint64_t masterSeed = 1;
  /// Independent seed replicates per size (position-derived seeds).
  std::size_t seedsPerSize = 1;
  /// Round cap per run; 0 = the dynamics/objective default
  /// (defaultRoundCap(n) for broadcast trees, defaultGossipRoundCap(n)
  /// for gossip, the model's own defaultRoundCap for graph models).
  std::size_t roundCap = 0;
  /// Adversary spec strings; empty = the dynamics' declared default list
  /// (the standard portfolio for rooted trees). Graph-model dynamics
  /// take no adversaries — the model emits the graphs itself.
  /// DEPRECATED: under the legacy dynamics="nonsplit" alias these name
  /// graph generators ("nonsplit-random", "nonsplit-skewed"); spell the
  /// generator as the dynamics spec instead.
  std::vector<std::string> adversaries;
  /// Capture per-round metrics in every row (costly at large n).
  bool recordHistory = false;
  /// Simulation engine selection (see BackendChoice). kSparse requires a
  /// sparse-capable graph-model dynamics; kAuto is always valid.
  BackendChoice backend = BackendChoice::kAuto;
  /// Replicate batching for broadcast over adversary-driven tree
  /// dynamics (see BatchPolicy); output-invariant. An explicit batch=K
  /// on any other objective/dynamics combination is a spec error; kAuto
  /// silently runs scalar there.
  BatchPolicy batch;
};

/// The default member list for a dynamics spec: the standard portfolio
/// for rooted trees, small-k class members for restricted, both
/// generators for the legacy nonsplit alias, the model itself for graph
/// models. Throws std::invalid_argument on unknown dynamics.
[[nodiscard]] std::vector<std::string> defaultAdversarySpecs(
    const std::string& dynamics);

/// Checks the spec is runnable: known dynamics/adversary names and keys
/// (with suggestions), adversaries compatible with the dynamics (class
/// restrictions for restricted trees; none allowed on graph models), and
/// a supported objective/dynamics combination. Throws
/// std::invalid_argument; runScenario() calls this first.
void validateScenario(const ScenarioSpec& spec);

/// Scenario results reuse the engine's unified row/instance types: rows
/// ordered by (size position, replicate, member), plus per-(n, seed)
/// aggregates whose bestRounds is Definition 2.3's max over the listed
/// members.
using ScenarioRow = SweepRow;
using ScenarioResult = SweepResult;

/// Executes the scenario on the engine. Broadcast over (un)restricted
/// trees delegates to ExperimentEngine::runSweep — a default rooted-tree
/// broadcast scenario reproduces runSweep(standardPortfolio) rows
/// bit-for-bit. Gossip and graph-model dynamics fan out through
/// ExperimentEngine::map with the same instance planning, so determinism
/// guarantees carry over.
[[nodiscard]] ScenarioResult runScenario(const ScenarioSpec& spec,
                                         ExperimentEngine& engine);

}  // namespace dynbcast
