// ScenarioSpec: the declarative description of one experiment campaign.
//
// A scenario names WHAT to measure (objective: broadcast or gossip),
// UNDER WHICH dynamics class (unrestricted rooted trees, the restricted
// k-leaf/k-inner classes of [14], or nonsplit graphs), OVER which sizes ×
// seed replicates, and AGAINST which adversaries — the latter as registry
// spec strings ("freeze-path:depth=3", "beam:width=64"), so composing a
// new experiment never means writing a new main(). runScenario() executes
// the spec on an ExperimentEngine (runSweep for the broadcast/rooted-tree
// workload, map() for gossip and nonsplit), and every path returns the
// same unified SweepRow rows in the same deterministic
// (size, replicate, adversary) order — byte-identical at any job count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/experiment_engine.h"

namespace dynbcast {

/// What a run must complete: one row of the product graph (broadcast) or
/// all of them (gossip).
enum class Objective { kBroadcast, kGossip };

/// The adversary's move universe.
enum class Dynamics {
  kRootedTree,  ///< any rooted tree on [n] (the paper's model)
  kRestricted,  ///< restricted tree classes of [14]: k-leaf / k-inner
  kNonsplit     ///< nonsplit graphs (related work [2]/[9])
};

[[nodiscard]] Objective parseObjective(const std::string& text);
[[nodiscard]] std::string objectiveName(Objective objective);
[[nodiscard]] Dynamics parseDynamics(const std::string& text);
[[nodiscard]] std::string dynamicsName(Dynamics dynamics);

struct ScenarioSpec {
  Objective objective = Objective::kBroadcast;
  Dynamics dynamics = Dynamics::kRootedTree;
  std::vector<std::size_t> sizes;
  std::uint64_t masterSeed = 1;
  /// Independent seed replicates per size (position-derived seeds).
  std::size_t seedsPerSize = 1;
  /// Round cap per run; 0 = the objective's default
  /// (defaultRoundCap(n) for broadcast, defaultGossipRoundCap(n) for
  /// gossip, ⌈log₂ n⌉ + slack for nonsplit).
  std::size_t roundCap = 0;
  /// Adversary spec strings; empty = defaultAdversarySpecs(dynamics).
  /// For kNonsplit these name graph generators ("nonsplit-random",
  /// "nonsplit-skewed") instead of registry adversaries.
  std::vector<std::string> adversaries;
  /// Capture per-round metrics in every row (costly at large n).
  bool recordHistory = false;
};

/// The default adversary list for a dynamics class: the standard
/// portfolio for rooted trees, small-k class members for restricted,
/// both graph generators for nonsplit.
[[nodiscard]] std::vector<std::string> defaultAdversarySpecs(
    Dynamics dynamics);

/// Checks the spec is runnable: known adversary names/keys (with
/// suggestions), adversaries compatible with the dynamics class, and a
/// supported objective/dynamics combination. Throws
/// std::invalid_argument; runScenario() calls this first.
void validateScenario(const ScenarioSpec& spec);

/// Scenario results reuse the engine's unified row/instance types: rows
/// ordered by (size position, replicate, adversary), plus per-(n, seed)
/// aggregates whose bestRounds is Definition 2.3's max over the listed
/// adversaries.
using ScenarioRow = SweepRow;
using ScenarioResult = SweepResult;

/// Executes the scenario on the engine. Broadcast over (un)restricted
/// trees delegates to ExperimentEngine::runSweep — a default rooted-tree
/// broadcast scenario reproduces runSweep(standardPortfolio) rows
/// bit-for-bit. Gossip and nonsplit fan out through ExperimentEngine::map
/// with the same instance planning, so determinism guarantees carry over.
[[nodiscard]] ScenarioResult runScenario(const ScenarioSpec& spec,
                                         ExperimentEngine& engine);

}  // namespace dynbcast
