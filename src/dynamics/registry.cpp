// Every concrete DynamicsModel in this file promises deterministic
// replay from (n, seed) across reset(); gated by the named suite.
// dynbcast-lint: replay-test(EveryModelReplaysAtParamBoundaries)
#include "src/dynamics/registry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/adversary/portfolio.h"
#include "src/bounds/bounds.h"
#include "src/nonsplit/nonsplit.h"
#include "src/support/rng.h"
#include "src/tree/generators.h"

namespace dynbcast {

namespace {

/// Extracts a dense round into an arc list (diagonal skipped; self-loops
/// are implicit on the sparse path) — the mirror-mode bridge that keeps
/// sparse generation bit-identical to dense at overlapping n.
void appendArcsFromDense(const BitMatrix& g, SparseRound& out) {
  const std::size_t n = g.dim();
  for (std::size_t x = 0; x < n; ++x) {
    const DynBitset& row = g.row(x);
    const std::uint64_t* words = row.wordData();
    for (std::size_t wi = 0; wi < row.wordCount(); ++wi) {
      std::uint64_t w = words[wi];
      while (w != 0) {
        const std::size_t y =
            wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
        w &= w - 1;
        if (y == x) continue;
        out.arcs.emplace_back(static_cast<std::uint32_t>(x),
                              static_cast<std::uint32_t>(y));
      }
    }
  }
}

/// Calls fn(i) for each success of an iid Bernoulli(p) process over
/// i ∈ [0, space), in ascending order, using geometric skip-sampling —
/// O(successes) RNG draws instead of O(space). Distributionally
/// equivalent to per-index chance(p) but NOT the same RNG call sequence,
/// so it is only used above kSparseDenseMirrorMaxN.
template <typename Fn>
void skipSampleBernoulli(std::uint64_t space, double p, Rng& rng, Fn&& fn) {
  if (p <= 0.0 || space == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < space; ++i) fn(i);
    return;
  }
  const double denom = std::log1p(-p);
  std::uint64_t i = 0;
  while (i < space) {
    double u = rng.uniformReal();
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    const double gap = std::floor(std::log(u) / denom);
    if (gap >= static_cast<double>(space - i)) return;
    i += static_cast<std::uint64_t>(gap);
    fn(i);
    ++i;
  }
}

/// Decodes an index of the n(n-1) off-diagonal ordered-pair space into
/// its (x, y) arc; indices ascend lexicographically in (x, y).
inline std::pair<std::uint32_t, std::uint32_t> decodePair(std::uint64_t i,
                                                          std::size_t n) {
  const auto x = static_cast<std::uint32_t>(i / (n - 1));
  const auto r = static_cast<std::uint32_t>(i % (n - 1));
  return {x, r + (r >= x ? 1 : 0)};
}

/// Stall-detector cap for the stochastic models with no sharper published
/// bound here (edge-Markovian, T-interval): oblivious dynamic sequences
/// finish broadcast within O(n), so ~10n with slack separates "slow" from
/// "never" — the same margin defaultGossipRoundCap uses.
[[nodiscard]] std::size_t stochasticStallCap(std::size_t n) {
  return 10 * n + 50;
}

/// Shared base: owns the (n, seed) identity, the replayable RNG, and the
/// canonical display name.
class SeededGraphModel : public DynamicsModel {
 public:
  SeededGraphModel(std::size_t n, std::uint64_t seed, std::string name)
      : n_(n), seed_(seed), rng_(seed), name_(std::move(name)) {}

  [[nodiscard]] std::string name() const override { return name_; }

  void reset() override { rng_ = Rng(seed_); }

 protected:
  std::size_t n_;
  std::uint64_t seed_;
  Rng rng_;

 private:
  std::string name_;
};

/// "nonsplit-random": a fresh random nonsplit graph every round — extra
/// random edges (count or Bernoulli density) plus the repair pass.
class NonsplitRandomModel final : public SeededGraphModel {
 public:
  NonsplitRandomModel(std::size_t n, std::uint64_t seed, std::size_t edges,
                      double p, std::string name)
      : SeededGraphModel(n, seed, std::move(name)), edges_(edges), p_(p) {}

  BitMatrix nextGraph(const BroadcastSim&) override { return denseDraw(); }

  [[nodiscard]] bool supportsSparseRounds() const override { return true; }

  void nextSparseRound(SparseRound& out) override {
    out.n = n_;
    out.sameAsPrevious = false;
    out.arcs.clear();
    if (n_ <= kSparseDenseMirrorMaxN) {
      appendArcsFromDense(denseDraw(), out);
      return;
    }
    // Native sparse draw: the same random arcs, but the dense repair
    // pass (which walks all pairs) is replaced by a random hub informing
    // everyone — still nonsplit (the hub is a common in-neighbor of
    // every pair), distributionally close rather than identical.
    if (p_ > 0.0) {
      skipSampleBernoulli(
          static_cast<std::uint64_t>(n_) * (n_ - 1), p_, rng_,
          [&](std::uint64_t i) { out.arcs.push_back(decodePair(i, n_)); });
    } else {
      const std::size_t count = edges_ != 0 ? edges_ : 2 * n_;
      for (std::size_t e = 0; e < count; ++e) {
        const auto x = static_cast<std::uint32_t>(rng_.uniform(n_));
        const auto y = static_cast<std::uint32_t>(rng_.uniform(n_));
        if (x != y) out.arcs.emplace_back(x, y);
      }
    }
    const auto hub = static_cast<std::uint32_t>(rng_.uniform(n_));
    for (std::uint32_t y = 0; y < n_; ++y) {
      if (y != hub) out.arcs.emplace_back(hub, y);
    }
  }

  [[nodiscard]] DynamicsClass graphClass() const override {
    return DynamicsClass::kNonsplit;
  }

  [[nodiscard]] std::size_t defaultRoundCap() const override {
    return static_cast<std::size_t>(bounds::nonsplitLogUpper(n_)) + 8;
  }

 private:
  BitMatrix denseDraw() {
    if (p_ > 0.0) return bernoulliNonsplitGraph(n_, p_, rng_);
    return randomNonsplitGraph(n_, edges_ != 0 ? edges_ : 2 * n_, rng_);
  }

  std::size_t edges_;
  double p_;
};

/// "nonsplit-skewed": every pair's common in-neighbor is biased towards
/// low indices — few dispatchers do most of the informing.
class NonsplitSkewedModel final : public SeededGraphModel {
 public:
  NonsplitSkewedModel(std::size_t n, std::uint64_t seed, std::string name)
      : SeededGraphModel(n, seed, std::move(name)) {}

  BitMatrix nextGraph(const BroadcastSim&) override {
    return skewedNonsplitGraph(n_, rng_);
  }

  [[nodiscard]] DynamicsClass graphClass() const override {
    return DynamicsClass::kNonsplit;
  }

  [[nodiscard]] std::size_t defaultRoundCap() const override {
    return static_cast<std::size_t>(bounds::nonsplitLogUpper(n_)) + 8;
  }
};

/// "edge-markovian": every directed non-loop edge is an independent
/// two-state Markov chain — absent edges are born with probability p,
/// present edges die with probability q (Kuhn–Lynch–Oshman's
/// edge-Markovian evolving graphs). Round 1 is a stationary draw
/// (density p/(p+q)); later rounds evolve it one step.
class EdgeMarkovianModel final : public SeededGraphModel {
 public:
  EdgeMarkovianModel(std::size_t n, std::uint64_t seed, double p, double q,
                     std::string name)
      : SeededGraphModel(n, seed, std::move(name)), p_(p), q_(q) {}

  BitMatrix nextGraph(const BroadcastSim&) override {
    denseStep();
    BitMatrix g = edges_;
    for (std::size_t v = 0; v < n_; ++v) g.set(v, v);
    return g;
  }

  [[nodiscard]] bool supportsSparseRounds() const override { return true; }

  void nextSparseRound(SparseRound& out) override {
    out.n = n_;
    out.sameAsPrevious = false;
    out.arcs.clear();
    if (n_ <= kSparseDenseMirrorMaxN) {
      // Mirror mode: the exact dense RNG call sequence, arcs extracted
      // from the evolved matrix.
      denseStep();
      appendArcsFromDense(edges_, out);
      return;
    }
    // Native sparse evolution over the present-arc list: deaths by
    // per-arc Bernoulli(q), births by skip-sampling Bernoulli(p) over
    // the whole pair space with present pairs rejected (a present pair
    // only faces death this round, exactly as in the dense step).
    const std::uint64_t space = static_cast<std::uint64_t>(n_) * (n_ - 1);
    if (!sparseStarted_) {
      const double stationary = p_ + q_ > 0.0 ? p_ / (p_ + q_) : 1.0;
      sparseKeys_.clear();
      skipSampleBernoulli(space, stationary, rng_,
                          [&](std::uint64_t i) { sparseKeys_.push_back(i); });
      sparseStarted_ = true;
    } else {
      survivorKeys_.clear();
      for (const std::uint64_t key : sparseKeys_) {
        if (!rng_.chance(q_)) survivorKeys_.push_back(key);
      }
      birthKeys_.clear();
      skipSampleBernoulli(space, p_, rng_, [&](std::uint64_t i) {
        if (!std::binary_search(sparseKeys_.begin(), sparseKeys_.end(), i)) {
          birthKeys_.push_back(i);
        }
      });
      mergedKeys_.clear();
      mergedKeys_.reserve(survivorKeys_.size() + birthKeys_.size());
      std::merge(survivorKeys_.begin(), survivorKeys_.end(),
                 birthKeys_.begin(), birthKeys_.end(),
                 std::back_inserter(mergedKeys_));
      sparseKeys_.swap(mergedKeys_);
    }
    out.arcs.reserve(sparseKeys_.size());
    for (const std::uint64_t key : sparseKeys_) {
      out.arcs.push_back(decodePair(key, n_));
    }
  }

  [[nodiscard]] DynamicsClass graphClass() const override {
    return DynamicsClass::kNone;
  }

  [[nodiscard]] std::size_t defaultRoundCap() const override {
    return stochasticStallCap(n_);
  }

  void reset() override {
    SeededGraphModel::reset();
    started_ = false;
    sparseStarted_ = false;
    sparseKeys_.clear();
  }

 private:
  /// One dense chain step into edges_ (stationary draw first, evolution
  /// after) — shared by nextGraph and the sparse mirror mode.
  void denseStep() {
    if (!started_) {
      const double stationary = p_ + q_ > 0.0 ? p_ / (p_ + q_) : 1.0;
      edges_ = BitMatrix(n_);
      for (std::size_t x = 0; x < n_; ++x) {
        for (std::size_t y = 0; y < n_; ++y) {
          if (x != y && rng_.chance(stationary)) edges_.set(x, y);
        }
      }
      started_ = true;
    } else {
      for (std::size_t x = 0; x < n_; ++x) {
        for (std::size_t y = 0; y < n_; ++y) {
          if (x == y) continue;
          if (edges_.get(x, y)) {
            if (rng_.chance(q_)) edges_.reset(x, y);
          } else {
            if (rng_.chance(p_)) edges_.set(x, y);
          }
        }
      }
    }
  }

  double p_;
  double q_;
  /// Dense chain state — allocated by the first denseStep() only, so the
  /// native sparse path never pays the O(n²) bits.
  BitMatrix edges_;
  bool started_ = false;
  bool sparseStarted_ = false;
  /// Present off-diagonal arcs as sorted pair-space indices (see
  /// decodePair) — the O(edges) state of the native sparse chain.
  std::vector<std::uint64_t> sparseKeys_;
  std::vector<std::uint64_t> survivorKeys_;
  std::vector<std::uint64_t> birthKeys_;
  std::vector<std::uint64_t> mergedKeys_;
};

/// "t-interval": a uniformly random spanning tree, symmetrized (both
/// directions + self-loops), held stable for T consecutive rounds, then
/// redrawn — the T-interval-connectivity regime of Kuhn–Lynch–Oshman.
class TIntervalModel final : public SeededGraphModel {
 public:
  TIntervalModel(std::size_t n, std::uint64_t seed, std::size_t period,
                 std::string name)
      : SeededGraphModel(n, seed, std::move(name)), period_(period) {}

  BitMatrix nextGraph(const BroadcastSim&) override {
    if (age_ == 0) {
      const RootedTree tree = randomRootedTree(n_, rng_);
      current_ = BitMatrix::identity(n_);
      for (std::size_t v = 0; v < n_; ++v) {
        if (v == tree.root()) continue;
        current_.set(tree.parent(v), v);
        current_.set(v, tree.parent(v));
      }
    }
    age_ = (age_ + 1) % period_;
    return current_;
  }

  [[nodiscard]] bool supportsSparseRounds() const override { return true; }

  void nextSparseRound(SparseRound& out) override {
    // Consumes exactly the same RNG stream as nextGraph (one
    // randomRootedTree per period), so sparse mirrors dense at EVERY n —
    // a tree has 2(n-1) symmetrized arcs, never a dense matrix.
    out.n = n_;
    if (age_ == 0) {
      const RootedTree tree = randomRootedTree(n_, rng_);
      sparseArcs_.clear();
      sparseArcs_.reserve(2 * (n_ - 1));
      for (std::size_t v = 0; v < n_; ++v) {
        if (v == tree.root()) continue;
        const auto parent = static_cast<std::uint32_t>(tree.parent(v));
        const auto child = static_cast<std::uint32_t>(v);
        sparseArcs_.emplace_back(parent, child);
        sparseArcs_.emplace_back(child, parent);
      }
      out.sameAsPrevious = false;
    } else {
      out.sameAsPrevious = true;
    }
    out.arcs = sparseArcs_;
    age_ = (age_ + 1) % period_;
  }

  [[nodiscard]] DynamicsClass graphClass() const override {
    return DynamicsClass::kNone;
  }

  [[nodiscard]] std::size_t defaultRoundCap() const override {
    return stochasticStallCap(n_);
  }

  void reset() override {
    SeededGraphModel::reset();
    age_ = 0;
    current_ = BitMatrix();
    sparseArcs_.clear();
  }

 private:
  std::size_t period_;
  std::size_t age_ = 0;
  BitMatrix current_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sparseArcs_;
};

void registerBuiltins(DynamicsRegistry& reg) {
  // The paper's model --------------------------------------------------------
  {
    DynamicsInfo info;
    info.name = "rooted-tree";
    info.description =
        "adversary-chosen rooted trees on [n]; broadcast is Theta(n) "
        "(Theorem 3.1)";
    info.literature = "El-Hayek, Henzinger & Schmid (this paper)";
    info.mode = DynamicsMode::kAdversaryTrees;
    info.graphClass = DynamicsClass::kRootedTree;
    info.params = {};  // no parameters, deliberately
    info.defaultAdversaries = [](const DynamicsParams&) {
      return standardPortfolioSpecs();
    };
    reg.add(std::move(info));
  }
  {
    DynamicsInfo info;
    info.name = "restricted";
    info.description =
        "adversary trees restricted to the k-leaf / k-inner classes "
        "(O(kn) broadcast)";
    info.literature = "restricted tree classes of [14]";
    info.mode = DynamicsMode::kAdversaryTrees;
    info.graphClass = DynamicsClass::kRootedTree;
    info.params = {
        {"class", "any",
         "which restricted class: any | k-leaf | k-inner | broom"},
        {"k", "2", "class parameter (leaves / inner nodes / handle length)"}};
    info.validateParams = [](const DynamicsParams& params) {
      const std::string cls = params.getString("class", "any");
      if (cls != "any" && cls != "k-leaf" && cls != "k-inner" &&
          cls != "broom") {
        throw std::invalid_argument(
            "dynamics 'restricted': class must be one of any, k-leaf, "
            "k-inner, broom (got '" +
            cls + "')");
      }
      if (params.getUInt("k", 2) < 1) {
        throw std::invalid_argument(
            "dynamics 'restricted': k must be >= 1");
      }
    };
    info.defaultAdversaries = [](const DynamicsParams& params) {
      const std::string cls = params.getString("class", "any");
      const std::string k = std::to_string(params.getUInt("k", 2));
      std::vector<std::string> specs;
      if (cls == "any" || cls == "k-leaf") specs.push_back("k-leaf:k=" + k);
      if (cls == "any" || cls == "k-inner") specs.push_back("k-inner:k=" + k);
      if (cls == "any" || cls == "broom") {
        specs.push_back("freeze-broom:handle=" + k);
      }
      return specs;
    };
    info.admissibleAdversaries = {"k-leaf", "k-inner", "freeze-broom"};
    reg.add(std::move(info));
  }

  // Nonsplit graphs ([2]/[9]) ------------------------------------------------
  {
    DynamicsInfo info;
    info.name = "nonsplit";
    info.description =
        "DEPRECATED alias: generator names ride in the adversaries list "
        "(old scenario form)";
    info.literature = "Charron-Bost & Schiper [2]; Fuegger-Nowak-Winkler [9]";
    info.mode = DynamicsMode::kGeneratorList;
    info.graphClass = DynamicsClass::kNonsplit;
    info.stochastic = true;
    info.params = {};  // no parameters, deliberately
    info.defaultAdversaries = [](const DynamicsParams&) {
      return std::vector<std::string>{"nonsplit-random", "nonsplit-skewed"};
    };
    info.deprecation =
        "name the generator as the dynamics instead: "
        "--dynamics=nonsplit-random (or nonsplit-skewed); the "
        "adversaries-field form is kept for old invocations only";
    reg.add(std::move(info));
  }
  {
    DynamicsInfo info;
    info.name = "nonsplit-random";
    info.description =
        "fresh random nonsplit graph every round: random extra edges + "
        "common-in-neighbor repair";
    info.literature = "Charron-Bost & Schiper [2] (log n broadcast)";
    info.graphClass = DynamicsClass::kNonsplit;
    info.stochastic = true;
    info.sparseCapable = true;
    info.params = {
        {"edges", "0", "random extra edges before the repair; 0 = 2n"},
        {"p", "0",
         "Bernoulli edge density instead of a count; 0 = use edges"}};
    info.validateParams = [](const DynamicsParams& params) {
      if (params.has("edges") && params.has("p")) {
        throw std::invalid_argument(
            "dynamics 'nonsplit-random': give either edges= (a count) or "
            "p= (a density), not both");
      }
      const double p = params.getDouble("p", 0.0);
      if (p < 0.0 || p > 1.0) {
        throw std::invalid_argument(
            "dynamics 'nonsplit-random': p must be in [0, 1]");
      }
    };
    // Range checks live in validateParams above; the registry's make()
    // always validates before invoking a factory.
    info.factory = [](std::size_t n, std::uint64_t seed,
                      const DynamicsParams& params)
        -> std::unique_ptr<DynamicsModel> {
      return std::make_unique<NonsplitRandomModel>(
          n, seed, params.getUInt("edges", 0), params.getDouble("p", 0.0),
          formatSpec("nonsplit-random", params));
    };
    reg.add(std::move(info));
  }
  {
    DynamicsInfo info;
    info.name = "nonsplit-skewed";
    info.description =
        "nonsplit graphs whose common in-neighbors are biased towards few "
        "low-index dispatchers";
    info.literature = "slow regime of [2]/[9]";
    info.graphClass = DynamicsClass::kNonsplit;
    info.stochastic = true;
    info.params = {};  // no parameters, deliberately
    info.factory = [](std::size_t n, std::uint64_t seed,
                      const DynamicsParams& params)
        -> std::unique_ptr<DynamicsModel> {
      return std::make_unique<NonsplitSkewedModel>(
          n, seed, formatSpec("nonsplit-skewed", params));
    };
    reg.add(std::move(info));
  }

  // Kuhn-Lynch-Oshman-style dynamics -----------------------------------------
  {
    DynamicsInfo info;
    info.name = "edge-markovian";
    info.description =
        "every directed edge is a 2-state Markov chain: born w.p. p, dies "
        "w.p. q; round 1 is a stationary draw";
    info.literature =
        "edge-Markovian evolving graphs (Kuhn-Lynch-Oshman line; Clementi "
        "et al.)";
    info.graphClass = DynamicsClass::kNone;
    info.stochastic = true;
    info.sparseCapable = true;
    info.params = {{"p", "0.2", "edge birth probability (0 < p <= 1)"},
                   {"q", "0.1", "edge death probability (0 <= q <= 1)"}};
    info.validateParams = [](const DynamicsParams& params) {
      const double p = params.getDouble("p", 0.2);
      const double q = params.getDouble("q", 0.1);
      if (p <= 0.0 || p > 1.0) {
        throw std::invalid_argument(
            "dynamics 'edge-markovian': p must satisfy 0 < p <= 1 (p = 0 "
            "would freeze an empty graph forever)");
      }
      if (q < 0.0 || q > 1.0) {
        throw std::invalid_argument(
            "dynamics 'edge-markovian': q must be in [0, 1]");
      }
    };
    info.factory = [](std::size_t n, std::uint64_t seed,
                      const DynamicsParams& params)
        -> std::unique_ptr<DynamicsModel> {
      return std::make_unique<EdgeMarkovianModel>(
          n, seed, params.getDouble("p", 0.2), params.getDouble("q", 0.1),
          formatSpec("edge-markovian", params));
    };
    reg.add(std::move(info));
  }
  {
    DynamicsInfo info;
    info.name = "t-interval";
    info.description =
        "a random spanning tree, symmetrized, stable for T rounds, then "
        "rewired (T-interval connectivity)";
    info.literature = "Kuhn, Lynch & Oshman (STOC '10)";
    info.graphClass = DynamicsClass::kNone;
    info.stochastic = true;
    info.sparseCapable = true;
    info.params = {{"T", "4", "rounds each spanning subgraph stays stable"}};
    info.validateParams = [](const DynamicsParams& params) {
      if (params.getUInt("T", 4) < 1) {
        throw std::invalid_argument(
            "dynamics 't-interval': T must be >= 1");
      }
    };
    info.factory = [](std::size_t n, std::uint64_t seed,
                      const DynamicsParams& params)
        -> std::unique_ptr<DynamicsModel> {
      return std::make_unique<TIntervalModel>(
          n, seed, params.getUInt("T", 4),
          formatSpec("t-interval", params));
    };
    reg.add(std::move(info));
  }
}

}  // namespace

DynamicsSpec DynamicsSpec::parse(const std::string& text) {
  ParsedSpec parsed = parseSpec(text, "dynamics");
  return DynamicsSpec{std::move(parsed.name), std::move(parsed.params)};
}

std::string DynamicsSpec::toString() const { return formatSpec(name, params); }

DynamicsRegistry& DynamicsRegistry::instance() {
  static DynamicsRegistry* registry = [] {
    auto* r = new DynamicsRegistry();
    registerBuiltins(*r);
    return r;
  }();
  return *registry;
}

void DynamicsRegistry::add(DynamicsInfo info) {
  if (!isValidSpecToken(info.name)) {
    throw std::invalid_argument("dynamics registration '" + info.name +
                                "': name must be non-empty [A-Za-z0-9._-]");
  }
  const bool needsFactory = info.mode == DynamicsMode::kGraphModel;
  if (needsFactory != static_cast<bool>(info.factory)) {
    throw std::invalid_argument(
        "dynamics registration '" + info.name +
        (needsFactory ? "': graph models need a factory"
                      : "': only graph models take a factory"));
  }
  const std::string name = info.name;
  if (!entries_.emplace(name, std::move(info)).second) {
    throw std::invalid_argument("dynamics registration '" + name +
                                "': name already registered");
  }
}

std::vector<std::string> DynamicsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, info] : entries_) out.push_back(name);
  return out;
}

const DynamicsInfo& DynamicsRegistry::info(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string message = "unknown dynamics model '" + name + "'";
    const std::string suggestion = closestMatch(name, names());
    if (!suggestion.empty()) {
      message += "; did you mean '" + suggestion + "'?";
    }
    message += " (run 'dynbcast list' for the full model zoo)";
    throw std::invalid_argument(message);
  }
  return it->second;
}

void DynamicsRegistry::validate(const DynamicsSpec& spec) const {
  const DynamicsInfo& entry = info(spec.name);
  std::vector<std::string> known;
  known.reserve(entry.params.size());
  for (const DynamicsParamDoc& doc : entry.params) known.push_back(doc.key);
  for (const auto& [key, value] : spec.params.values()) {
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    std::string message =
        "dynamics '" + spec.name + "': unknown parameter '" + key + "'";
    const std::string suggestion = closestMatch(key, known);
    if (!suggestion.empty()) {
      message += "; did you mean '" + suggestion + "'?";
    }
    if (known.empty()) {
      message += " ('" + spec.name + "' takes no parameters)";
    } else {
      std::string keys;
      for (const std::string& k : known) {
        if (!keys.empty()) keys += ", ";
        keys += k;
      }
      message += " (known parameters: " + keys + ")";
    }
    throw std::invalid_argument(message);
  }
  if (entry.validateParams) entry.validateParams(spec.params);
}

std::unique_ptr<DynamicsModel> DynamicsRegistry::make(
    const DynamicsSpec& spec, std::size_t n, std::uint64_t seed) const {
  validate(spec);
  const DynamicsInfo& entry = info(spec.name);
  if (entry.mode == DynamicsMode::kGeneratorList) {
    throw std::invalid_argument(
        "dynamics '" + spec.name +
        "' is a deprecated alias with no standalone graph model; " +
        entry.deprecation);
  }
  if (entry.mode != DynamicsMode::kGraphModel) {
    throw std::invalid_argument(
        "dynamics '" + spec.name +
        "' is adversary-driven: its per-round graphs are the adversary's "
        "moves, so it has no standalone graph model (run it through a "
        "scenario with an adversary list instead)");
  }
  return entry.factory(n, seed, spec.params);
}

std::unique_ptr<DynamicsModel> DynamicsRegistry::make(
    const std::string& spec, std::size_t n, std::uint64_t seed) const {
  return make(DynamicsSpec::parse(spec), n, seed);
}

}  // namespace dynbcast
