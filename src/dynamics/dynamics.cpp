#include "src/dynamics/dynamics.h"

#include <stdexcept>

#include "src/graph/properties.h"
#include "src/support/assert.h"

namespace dynbcast {

void DynamicsModel::nextSparseRound(SparseRound&) {
  throw std::logic_error("dynamics model '" + name() +
                         "' has no sparse generation path "
                         "(supportsSparseRounds() is false)");
}

std::string dynamicsClassName(DynamicsClass c) {
  switch (c) {
    case DynamicsClass::kRootedTree:
      return "rooted-tree";
    case DynamicsClass::kNonsplit:
      return "nonsplit";
    case DynamicsClass::kNone:
      return "none";
  }
  return "none";
}

namespace {

void assertClass(const BitMatrix& g, std::size_t n, DynamicsClass c) {
  DYNBCAST_ASSERT_MSG(g.dim() == n, "dynamics model emitted the wrong size");
  DYNBCAST_ASSERT_MSG(g.isReflexive(),
                      "dynamics model emitted a non-reflexive graph");
  switch (c) {
    case DynamicsClass::kRootedTree:
      DYNBCAST_ASSERT_MSG(isRootedTreeWithSelfLoops(g),
                          "dynamics model declared rooted-tree but emitted "
                          "a graph outside T_n");
      break;
    case DynamicsClass::kNonsplit:
      DYNBCAST_ASSERT_MSG(isNonsplit(g),
                          "dynamics model declared nonsplit but emitted a "
                          "split graph");
      break;
    case DynamicsClass::kNone:
      break;
  }
}

}  // namespace

BroadcastRun runDynamicsBroadcast(std::size_t n, DynamicsModel& model,
                                  std::size_t maxRounds, bool recordHistory) {
  model.reset();
  BroadcastSim sim(n);
  BroadcastRun run;
  if (sim.broadcastDone()) {
    run.completed = true;
    return run;
  }
  while (sim.round() < maxRounds) {
    const BitMatrix g = model.nextGraph(sim);
    assertClass(g, n, model.graphClass());
    sim.applyGraph(g);
    if (recordHistory) run.history.push_back(sim.metrics());
    if (sim.broadcastDone()) {
      run.rounds = sim.round();
      run.completed = true;
      return run;
    }
  }
  run.rounds = sim.round();
  run.completed = false;
  return run;
}

BroadcastRun runFrontierDynamicsBroadcast(std::size_t n, DynamicsModel& model,
                                          std::size_t maxRounds,
                                          bool recordHistory,
                                          std::uint64_t sampleSeed) {
  DYNBCAST_ASSERT_MSG(model.supportsSparseRounds(),
                      "the sparse driver needs a sparse-capable model");
  if (!recordHistory) {
    DynamicsRoundSource source(model);
    FrontierTStarOptions options;
    options.maxRounds = maxRounds;
    options.sampleSeed = sampleSeed;
    const FrontierTStarResult tstar = runFrontierTStar(n, source, options);
    BroadcastRun run;
    run.rounds = tstar.rounds;
    run.completed = tstar.completed;
    return run;
  }
  // History wanted: run the exact full-state engine so per-round metrics
  // match the dense driver's bit for bit.
  model.reset();
  FrontierSim sim(n);
  BroadcastRun run;
  if (sim.broadcastDone()) {
    run.completed = true;
    return run;
  }
  SparseRound round;
  while (sim.round() < maxRounds) {
    model.nextSparseRound(round);
    sim.applyEdges(round);
    run.history.push_back(sim.metrics());
    if (sim.broadcastDone()) {
      run.rounds = sim.round();
      run.completed = true;
      return run;
    }
  }
  run.rounds = sim.round();
  run.completed = false;
  return run;
}

}  // namespace dynbcast
