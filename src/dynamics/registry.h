// DynamicsRegistry: the string-addressable model zoo of dynamic-graph
// generators — the dynamics-axis twin of the AdversaryRegistry.
//
// "Add a network model" should be a spec string, not a code change: a
// stable name plus a typed key=value bag ("edge-markovian:p=0.2,q=0.1",
// "t-interval:T=8") names a dynamic-graph model, and the registry builds
// a fresh DynamicsModel for any (n, seed). ScenarioSpec::dynamics, the
// dynbcast CLI's --dynamics flag, and examples/quickstart all resolve
// through here, with the same parse/print round-trip, declared parameter
// docs, and edit-distance typo suggestions the adversary registry has.
//
// Three modes of registered entry:
//
//   * kAdversaryTrees — the per-round graph is the ADVERSARY's move
//     (rooted-tree, restricted). These entries have no graph factory;
//     they carry the default/admissible adversary lists instead, and
//     scenarios route them through the portfolio sweep machinery.
//   * kGraphModel — the model itself emits every round's graph from its
//     seed (nonsplit-random, nonsplit-skewed, edge-markovian,
//     t-interval). Scenarios run these through runDynamicsBroadcast with
//     position-derived seeds; the adversary list must be empty.
//   * kGeneratorList — the deprecated "nonsplit" alias kept for old
//     invocations, whose adversaries field smuggles generator names.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dynamics/dynamics.h"
#include "src/support/spec.h"

namespace dynbcast {

/// Typed key=value bag of one dynamics spec (shared grammar,
/// src/support/spec.h).
using DynamicsParams = SpecParams;

/// A parsed dynamics spec string: base name + parameter bag.
struct DynamicsSpec {
  std::string name;
  DynamicsParams params;

  /// Parses "name:key=value,key=value"; throws std::invalid_argument on
  /// malformed input (same grammar and rules as AdversarySpec::parse).
  [[nodiscard]] static DynamicsSpec parse(const std::string& text);

  /// Canonical printing (sorted keys); a parse/print fixed point.
  [[nodiscard]] std::string toString() const;
};

/// One declared parameter of a registered model (for validation, error
/// suggestions, and `dynbcast list`).
struct DynamicsParamDoc {
  std::string key;
  std::string defaultValue;
  std::string description;
};

/// How a registered dynamics entry produces its graphs (see file
/// comment).
enum class DynamicsMode { kAdversaryTrees, kGraphModel, kGeneratorList };

/// Factory: builds a fresh model for an (n, seed) instance. All model
/// randomness must derive from `seed` (reset() rewinds to it); parameter
/// range errors throw std::invalid_argument.
using DynamicsFactory = std::function<std::unique_ptr<DynamicsModel>(
    std::size_t n, std::uint64_t seed, const DynamicsParams& params)>;

struct DynamicsInfo {
  std::string name;
  std::string description;
  /// The literature this model reproduces ("Kuhn–Lynch–Oshman 2010", …);
  /// printed by `dynbcast list` as the model ↔ paper map.
  std::string literature;
  DynamicsMode mode = DynamicsMode::kGraphModel;
  /// Structural property every emitted graph satisfies (kGraphModel /
  /// kGeneratorList) or that the admissible adversaries' moves satisfy
  /// (kAdversaryTrees).
  DynamicsClass graphClass = DynamicsClass::kNone;
  /// True when runs draw fresh randomness from the instance seed (and so
  /// need the engine's position-derived seeding to stay deterministic).
  bool stochastic = false;
  /// True when the entry's models supportSparseRounds(): the sparse
  /// backend (ScenarioSpec backend=sparse/auto) may drive them through
  /// nextSparseRound() without materializing any dense matrix. Keep in
  /// sync with the factory's models — validateScenario trusts this flag
  /// at composition time.
  bool sparseCapable = false;
  std::vector<DynamicsParamDoc> params;  ///< the only accepted keys
  /// Eager parameter-value check (ranges, enumerations) run by
  /// validate(); may be null. Factories re-check, but this fires at
  /// composition time instead of inside a worker thread.
  std::function<void(const DynamicsParams&)> validateParams;
  /// Graph-model constructor; null unless mode == kGraphModel.
  DynamicsFactory factory;
  /// Default adversary (kAdversaryTrees) or generator (kGeneratorList)
  /// spec list when ScenarioSpec::adversaries is empty; may be null for
  /// kGraphModel.
  std::function<std::vector<std::string>(const DynamicsParams&)>
      defaultAdversaries;
  /// Adversary base names a kAdversaryTrees entry admits; empty = all.
  std::vector<std::string> admissibleAdversaries;
  /// Non-empty marks the entry deprecated; the note says what to use
  /// instead (printed by `dynbcast list` and by make()'s error when the
  /// alias is asked for a standalone model).
  std::string deprecation;
};

/// Name → model registry. The process-wide instance() comes with every
/// built-in model pre-registered; extensions may add() their own before
/// fanning work out (read-only thereafter — make() from worker threads is
/// safe as long as no add() races it).
class DynamicsRegistry {
 public:
  DynamicsRegistry() = default;

  /// The process-wide registry, with all built-ins registered.
  [[nodiscard]] static DynamicsRegistry& instance();

  /// Registers a new model. Throws std::invalid_argument if the name is
  /// taken, not in the grammar's charset, or the mode/factory disagree.
  void add(DynamicsInfo info);

  [[nodiscard]] bool contains(const std::string& name) const {
    return entries_.count(name) != 0;
  }

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Metadata lookup. Throws std::invalid_argument with a nearest-match
  /// suggestion when the name is unknown.
  [[nodiscard]] const DynamicsInfo& info(const std::string& name) const;

  /// Checks the spec resolves: known name, only declared keys, and
  /// in-range values (via the entry's validateParams). Throws
  /// std::invalid_argument (with suggestions) otherwise. Cheap — callers
  /// composing sweeps validate eagerly so a typo fails at composition
  /// time, not inside a worker thread.
  void validate(const DynamicsSpec& spec) const;

  /// Validates and constructs a graph model. Throws std::invalid_argument
  /// for adversary-driven entries (they have no standalone model) and on
  /// parameter range errors.
  [[nodiscard]] std::unique_ptr<DynamicsModel> make(const DynamicsSpec& spec,
                                                    std::size_t n,
                                                    std::uint64_t seed) const;

  /// Convenience: parse + make.
  [[nodiscard]] std::unique_ptr<DynamicsModel> make(const std::string& spec,
                                                    std::size_t n,
                                                    std::uint64_t seed) const;

 private:
  std::map<std::string, DynamicsInfo> entries_;
};

}  // namespace dynbcast
