// DynamicsModel: a per-round communication-graph generator — the "which
// network?" axis of an experiment, made first-class.
//
// The paper fixes the dynamics to adversarially chosen rooted trees and
// proves broadcast is linear there. Related work studies the same
// broadcast question on other dynamic-graph models: nonsplit graphs
// (Charron-Bost & Schiper; Függer–Nowak–Winkler), T-interval-connected
// and edge-Markovian dynamics (Kuhn–Lynch–Oshman and the random-evolution
// line). A DynamicsModel packages one such model as an object that emits
// the round-t communication graph, with two declared contracts:
//
//   * graphClass(): a structural property every emitted graph satisfies
//     (rooted-tree-with-self-loops, nonsplit, or none beyond
//     reflexivity). runDynamicsBroadcast re-checks it every round, so a
//     model that lies about its class fails loudly.
//   * deterministic replay: all randomness flows from the (n, seed) the
//     model was constructed with, and reset() rewinds it to that seed —
//     so position-derived seeds give bit-identical sweeps at any job
//     count, and a replayed run reproduces its graphs exactly.
//
// Models are constructed by name through the DynamicsRegistry
// (src/dynamics/registry.h), the dynamics-axis twin of the
// AdversaryRegistry.
#pragma once

#include <cstdint>
#include <string>

#include "src/graph/bitmatrix.h"
#include "src/sim/broadcast_sim.h"
#include "src/sim/frontier_sim.h"

namespace dynbcast {

/// Size at or below which sparse-capable models MIRROR the dense
/// generator: nextSparseRound() emits bit-identical graphs to
/// nextGraph() by replaying the same RNG call sequence, so the dense and
/// sparse backends produce identical rows at overlapping n (the golden
/// CSVs rely on this). Above it, models switch to native O(edges)
/// generation (skip-sampling) whose arc stream is distributionally
/// equivalent but not RNG-identical — the regime where the dense matrix
/// could not be materialized anyway.
inline constexpr std::size_t kSparseDenseMirrorMaxN = 4096;

/// The structural guarantee a model declares for every graph it emits
/// (always in addition to reflexivity — self-loops model "no forgetting").
enum class DynamicsClass {
  kRootedTree,  ///< a member of T_n: rooted tree + self-loops (paper §2)
  kNonsplit,    ///< every pair of nodes has a common in-neighbor ([2]/[9])
  kNone         ///< reflexive only (e.g. edge-Markovian snapshots)
};

[[nodiscard]] std::string dynamicsClassName(DynamicsClass c);

class DynamicsModel {
 public:
  virtual ~DynamicsModel() = default;

  DynamicsModel() = default;
  DynamicsModel(const DynamicsModel&) = delete;
  DynamicsModel& operator=(const DynamicsModel&) = delete;

  /// The communication graph for round state.round() + 1. Must be
  /// reflexive, of dimension state.processCount(), and satisfy
  /// graphClass(); the driver asserts all three.
  [[nodiscard]] virtual BitMatrix nextGraph(const BroadcastSim& state) = 0;

  /// Canonical spec string this model was built from (registry grammar),
  /// e.g. "edge-markovian:p=0.2,q=0.1" — the sweep-row display name.
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual DynamicsClass graphClass() const = 0;

  /// The model's own stall-detection round cap for its construction size
  /// (the ⌈log₂ n⌉ regime needs far less headroom than a linear one).
  [[nodiscard]] virtual std::size_t defaultRoundCap() const = 0;

  /// Rewinds to the constructed seed: the next nextGraph() sequence
  /// replays the previous one exactly.
  virtual void reset() {}

  /// True when the model can emit rounds as arc lists without ever
  /// materializing the dense matrix (nextSparseRound below). Oblivious
  /// stochastic models can; adversary-driven dynamics cannot (their
  /// moves inspect the dense simulator state).
  [[nodiscard]] virtual bool supportsSparseRounds() const { return false; }

  /// The communication graph for the next round as a SparseRound
  /// (self-loops implicit). Contract mirrors nextGraph(): all randomness
  /// flows from the constructed seed, reset() rewinds the sequence, and
  /// for n ≤ kSparseDenseMirrorMaxN the emitted graph is bit-identical
  /// to what nextGraph() would have produced. A model instance must be
  /// driven through ONE of the two interfaces per run (reset() starts a
  /// fresh run). Throws std::logic_error unless supportsSparseRounds().
  virtual void nextSparseRound(SparseRound& out);
};

/// SparseRoundSource adapter over a DynamicsModel — feeds the t*-only
/// frontier mode from any sparse-capable model. Its reset() forwards to
/// the model, whose replay contract is gated by the named suite.
// dynbcast-lint: replay-test(ModelsReplayDeterministicallyAcrossReset)
class DynamicsRoundSource final : public SparseRoundSource {
 public:
  explicit DynamicsRoundSource(DynamicsModel& model) : model_(model) {}

  void reset() override { model_.reset(); }

  const SparseRound& next() override {
    model_.nextSparseRound(round_);
    return round_;
  }

 private:
  DynamicsModel& model_;
  SparseRound round_;
};

/// Drives a BroadcastSim with graphs from `model` (reset first) until
/// broadcast completes or maxRounds is hit, asserting the model's
/// declared graph class every round. The stochastic twin of
/// runAdversary().
[[nodiscard]] BroadcastRun runDynamicsBroadcast(std::size_t n,
                                                DynamicsModel& model,
                                                std::size_t maxRounds,
                                                bool recordHistory = false);

/// The sparse twin of runDynamicsBroadcast: drives `model` through its
/// nextSparseRound() stream (the model must supportSparseRounds()).
/// Without history it runs the O(n)-memory t*-only frontier mode; with
/// recordHistory it runs the exact FrontierSim so per-round metrics come
/// out identical to the dense driver's. Either way rounds/completed are
/// bit-identical to runDynamicsBroadcast whenever the model's sparse
/// generation mirrors its dense one (always at n ≤
/// kSparseDenseMirrorMaxN). `sampleSeed` tunes the t*-mode sampling and
/// never affects results. Unlike the dense driver, the declared graph
/// class is not re-asserted per round (that check is O(n²)); the
/// differential suite enforces it at overlapping sizes instead.
[[nodiscard]] BroadcastRun runFrontierDynamicsBroadcast(
    std::size_t n, DynamicsModel& model, std::size_t maxRounds,
    bool recordHistory = false, std::uint64_t sampleSeed = 0);

}  // namespace dynbcast
