// BeamWitnessSearch: offline search for long-lived adversarial tree
// sequences — lower-bound witnesses for t*(T_n).
//
// Online (per-round) adversaries are myopic: every convex one-round
// potential is minimized by continuing a static path, a corridor whose
// game value is only n−1. The exact solver shows optimal play reaches
// ⌈(3n−1)/2⌉−2 via early sacrifices. Beam search recovers much of that
// at sizes the exact solver cannot touch: it advances a population of
// game states level by level (level = round), expands each with a
// structured + randomized move pool, prunes to the best/most diverse B
// states, and reports the longest surviving lineage as a replayable
// tree sequence.
//
// The explored tree lives in a SearchTreeArena: the frontier keeps only
// arena node ids, lineage reconstruction walks parent links, and pruned
// branches are refcount-reclaimed — the search no longer retains the
// full per-level history. Per-level state dedup goes through a
// collision-safe TranspositionTable (full heard-matrix verification on
// every digest hit), so distinct states are never merged.
#pragma once

#include <cstdint>
#include <vector>

#include "src/support/rng.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {

struct BeamConfig {
  std::size_t beamWidth = 128;
  /// Random path/tree moves per expanded state (exploration).
  std::size_t randomMovesPerState = 4;
  /// Structured moves (freezes, damage trees) per expanded state.
  bool structuredMoves = true;
  /// Multiplicative noise on the damage-tree weights (0 = deterministic
  /// damage trees only). Noise is the beam's main exploration device:
  /// plain random trees are far weaker moves.
  double noiseAmplitude = 8.0;
  /// Fraction of beam slots reserved for random (non-elite) survivors,
  /// in percent (must be <= 100). Pure elitism collapses the beam into
  /// one corridor.
  std::size_t diversityPercent = 25;
  /// Safety cap on achieved rounds; 0 = the trivial bound n².
  std::size_t maxRounds = 0;
};

/// Throws std::invalid_argument unless the config is usable: beamWidth
/// must be >= 1 (an empty beam has no lineage to report) and
/// diversityPercent <= 100 (larger values used to underflow the elite
/// slot count). Called eagerly by beamSearchWitness and the registry.
void validateBeamConfig(const BeamConfig& config);

struct BeamResult {
  /// Longest achieved broadcast time (rounds until the final, forced
  /// completion round — the witness sequence has exactly this length).
  /// Never exceeds BeamConfig::maxRounds when that cap is set.
  std::size_t rounds = 0;
  /// The witness: replaying these trees from the identity state keeps
  /// broadcast incomplete until exactly the last round.
  std::vector<RootedTree> witness;
  /// Candidate evaluations actually performed (search effort after
  /// duplicate-move elimination).
  std::uint64_t statesExpanded = 0;
  /// Candidate moves generated before duplicate-move elimination — the
  /// quantity statesExpanded used to count.
  std::uint64_t movesGenerated = 0;
  /// Distinct surviving successor states admitted across all levels
  /// (transposition-table insertions).
  std::uint64_t uniqueStates = 0;
  /// Verified same-state merges: a digest hit whose full heard-matrix
  /// comparison confirmed an identical state.
  std::uint64_t transpositionHits = 0;
  /// Digest hits whose heard matrices differed — the states the old raw
  /// hash dedup would have silently (and wrongly) merged.
  std::uint64_t hashCollisions = 0;
  /// High-water mark of live arena nodes (retained-history footprint).
  std::size_t arenaPeakNodes = 0;
};

/// Runs the search. Deterministic for a fixed (n, seed, config).
/// Throws std::invalid_argument on an invalid config (see
/// validateBeamConfig).
[[nodiscard]] BeamResult beamSearchWitness(std::size_t n, std::uint64_t seed,
                                           BeamConfig config = {});

/// Replays a witness and returns its broadcast round (0 if it never
/// completes — which would make it an invalid witness).
[[nodiscard]] std::size_t verifyWitness(std::size_t n,
                                        const std::vector<RootedTree>& trees);

}  // namespace dynbcast
