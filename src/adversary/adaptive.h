// Adaptive delaying adversaries.
//
// The paper's lower bound (inherited from Zeiner, Schwarz & Schmid [14])
// shows an adaptive adversary can force t* ≥ ⌈(3n−1)/2⌉ − 2, i.e. 50%
// beyond the static path's n−1. The strategies here are built on the
// *freezing* idea that also powers such constructions:
//
//   To stop new processes from learning about x, order the round's path
//   so that every process that knows x sits BELOW every process that
//   does not. Then no (knower → non-knower) edge exists and x's coverage
//   is frozen for the round, while the model's "≥ 1 new edge per round"
//   progress is paid by unimportant processes.
//
// reset() here must replay bit-identically; gated by the named suite.
// dynbcast-lint: replay-test(DeterministicAcrossInvocations)
//
// A second ingredient matters just as much: STABILITY. Re-sorting the
// path from scratch every round creates information cascades (a node
// placed early feeds its whole suffix), which *accelerates* broadcast.
// The effective delaying strategies keep the previous round's order and
// apply the minimal stable partition that freezes the current leaders —
// exactly the structure of the rotation constructions behind the
// ⌈(3n−1)/2⌉−2 bound.
//
// FreezePathAdversary applies the stable freeze directly;
// GreedyDelayAdversary evaluates a whole candidate pool (stable freezes,
// the unchanged previous path, rotations, brooms, heard-size orders,
// random paths/trees) one round ahead and picks the lexicographically
// least damaging tree.
#pragma once

#include <cstdint>
#include <vector>

#include "src/adversary/adversary.h"
#include "src/support/eval_scratch.h"
#include "src/support/rng.h"

namespace dynbcast {

/// Per-process coverage: coverage[x] = |{y : x ∈ Heard(y)}|. Broadcast is
/// done exactly when some coverage[x] == n.
[[nodiscard]] std::vector<std::size_t> coverageCounts(
    const BroadcastSim& state);

/// One-round damage assessment of a candidate tree, ordered so that
/// "smaller is better for the adversary" (lexicographic comparison).
///
/// The decisive field is the convex `potential` Σ_x 2^min(cov(x), 50):
/// every tree round raises SOMEONE's coverage, so max-coverage ties are
/// ubiquitous — but pushing the current leader (doubling the largest
/// term) is exponentially worse than spreading the same growth over
/// low-coverage processes, which is exactly the balanced structure exact
/// optimal play exhibits.
struct DelayScore {
  /// Candidate completes broadcast — the worst possible outcome.
  bool finishes = false;
  /// Convex coverage potential after the round (see above).
  double potential = 0.0;
  /// Highest coverage after the round (how close the best process is).
  std::size_t maxCoverage = 0;
  /// New product-graph edges created (the paper's progress measure).
  std::size_t newEdges = 0;

  friend bool operator<(const DelayScore& a, const DelayScore& b) {
    if (a.finishes != b.finishes) return !a.finishes;
    if (a.potential != b.potential) return a.potential < b.potential;
    if (a.maxCoverage != b.maxCoverage) return a.maxCoverage < b.maxCoverage;
    return a.newEdges < b.newEdges;
  }
};

/// Evaluates one candidate tree against the current heard state without
/// mutating it. `coverage` must equal coverageCounts of the same state.
/// When `coverageOut` is non-null it receives the post-round coverage
/// vector (used by search adversaries to avoid recomputation).
///
/// Convenience wrapper over the scratch overload below; allocates a fresh
/// scratch per call, so hot loops should hold an EvalScratch instead.
[[nodiscard]] DelayScore evaluateCandidate(
    const std::vector<DynBitset>& heard,
    const std::vector<std::size_t>& coverage, const RootedTree& tree,
    std::vector<std::size_t>* coverageOut = nullptr);

/// Allocation-free evaluation: all working state lives in `scratch`,
/// which is reused across calls. On return, scratch.heard holds the
/// candidate's post-round heard matrix and scratch.coverage its
/// post-round coverage — callers that keep a successor state (beam,
/// lookahead) copy from there instead of re-applying the tree.
[[nodiscard]] DelayScore evaluateCandidate(
    const std::vector<DynBitset>& heard,
    const std::vector<std::size_t>& coverage, const RootedTree& tree,
    EvalScratch& scratch);

/// Path adversary that freezes the top-`depth` coverage leaders with
/// nested knower/non-knower blocks, applied as a STABLE partition of the
/// previous round's order (initially the identity). depth == 1 freezes
/// the single leader exactly; the stable partition keeps all other
/// relative positions, avoiding self-inflicted cascades.
class FreezePathAdversary final : public Adversary {
 public:
  FreezePathAdversary(std::size_t n, std::size_t depth);

  [[nodiscard]] RootedTree nextTree(const BroadcastSim& state) override;
  [[nodiscard]] std::string name() const override;
  void reset() override;

 private:
  std::size_t n_;
  std::size_t depth_;
  std::vector<std::size_t> order_;
};

/// Delaying adversary restricted to brooms with a fixed handle length —
/// a member of BOTH restricted classes of [14]: a broom with handle h
/// has exactly h inner nodes and exactly n−h leaves. The handle is kept
/// in stable freeze order, so the adversary realizes the linear-in-n
/// delay its class admits (its static height is already h), giving the
/// benches a worst-case-shaped witness where random class members finish
/// in O(log n).
class FreezeBroomAdversary final : public Adversary {
 public:
  FreezeBroomAdversary(std::size_t n, std::size_t handleLen);

  [[nodiscard]] RootedTree nextTree(const BroadcastSim& state) override;
  [[nodiscard]] std::string name() const override;
  void reset() override;

 private:
  std::size_t n_;
  std::size_t handleLen_;
  std::vector<std::size_t> order_;
};

/// Path adversary ordering nodes by |Heard| (ascending or descending) —
/// a natural but weaker baseline for the greedy comparison.
class HeardOrderPathAdversary final : public Adversary {
 public:
  HeardOrderPathAdversary(std::size_t n, bool ascending);

  [[nodiscard]] RootedTree nextTree(const BroadcastSim& state) override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t n_;
  bool ascending_;
};

/// Configuration for GreedyDelayAdversary's candidate pool.
struct GreedyDelayConfig {
  std::size_t freezeDepthMax = 4;  ///< stable freezes with depth 1..max
  std::size_t randomPaths = 3;     ///< random path candidates per round
  std::size_t randomTrees = 2;     ///< uniform random tree candidates
  bool includeBrooms = true;       ///< broom variants of the freeze order
  bool includeHeardOrders = true;  ///< asc/desc heard-size paths
  bool includePrevious = true;     ///< the unchanged previous path
  bool includeRotations = true;    ///< head-to-tail / tail-to-head moves
  std::size_t damageTreeRoots = 3; ///< damage-greedy trees per round
};

/// The portfolio-greedy delaying adversary: evaluates every candidate one
/// round ahead with evaluateCandidate and plays the minimum DelayScore.
/// Keeps its path order across rounds (stability, see header comment).
class GreedyDelayAdversary final : public Adversary {
 public:
  GreedyDelayAdversary(std::size_t n, std::uint64_t seed,
                       GreedyDelayConfig config = {});

  [[nodiscard]] RootedTree nextTree(const BroadcastSim& state) override;
  [[nodiscard]] std::string name() const override { return "greedy-delay"; }
  void reset() override;

 private:
  std::size_t n_;
  std::uint64_t seed_;
  Rng rng_;
  GreedyDelayConfig config_;
  std::vector<std::size_t> order_;
  EvalScratch scratch_;  // reused across all candidate evaluations
};

/// Builds the stable freeze ordering over `baseOrder`: every process that
/// knows leader x_1 is moved after everyone who does not, with nested
/// stable sub-partitions for x_2 … x_d; all other relative positions in
/// `baseOrder` are preserved. Exposed for tests.
[[nodiscard]] std::vector<std::size_t> freezeOrdering(
    const BroadcastSim& state, const std::vector<std::size_t>& leaders,
    const std::vector<std::size_t>& baseOrder);

/// Builds the damage-greedy tree rooted at `root`: nodes are attached
/// Prim-style, each to the already-attached parent that teaches it the
/// least, where teaching process x costs exponentially in x's current
/// coverage (a process one step from broadcast is catastrophic to leak).
/// This mirrors the balanced-coverage structure of exact optimal play,
/// which uses general branching trees rather than paths.
[[nodiscard]] RootedTree buildDamageGreedyTree(
    const BroadcastSim& state, const std::vector<std::size_t>& coverage,
    std::size_t root);

/// Randomized variant of buildDamageGreedyTree: per-process weights are
/// multiplied by noise in [1, 1+amplitude), so repeated calls explore
/// different balanced-coverage trees. Search adversaries (beam, MCTS-
/// style rollouts) rely on this for structured-but-diverse move pools.
[[nodiscard]] RootedTree buildNoisyDamageTree(
    const BroadcastSim& state, const std::vector<std::size_t>& coverage,
    std::size_t root, double amplitude, Rng& rng);

}  // namespace dynbcast
