#include "src/adversary/local_search.h"

#include <algorithm>
#include <numeric>

#include "src/support/assert.h"
#include "src/tree/families.h"

namespace dynbcast {

namespace {

/// Top-coverage ids, highest first (duplicated from adaptive.cpp's
/// internal helper on purpose: the two modules evolve independently).
std::vector<std::size_t> leadersByCoverage(
    const std::vector<std::size_t>& coverage, std::size_t depth) {
  std::vector<std::size_t> ids(coverage.size());
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  const std::size_t take = std::min(depth, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(take),
                    ids.end(), [&](std::size_t a, std::size_t b) {
                      if (coverage[a] != coverage[b]) {
                        return coverage[a] > coverage[b];
                      }
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

std::vector<std::size_t> identityOrder(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

}  // namespace

LocalSearchPathAdversary::LocalSearchPathAdversary(std::size_t n,
                                                   std::uint64_t seed,
                                                   LocalSearchConfig config)
    : n_(n),
      seed_(seed),
      rng_(seed),
      config_(config),
      order_(identityOrder(n)),
      scratch_(EvalScratch::forProcessCount(n)) {
  DYNBCAST_ASSERT(config_.freezeDepth >= 1);
}

void LocalSearchPathAdversary::reset() {
  rng_ = Rng(seed_);
  order_ = identityOrder(n_);
}

RootedTree LocalSearchPathAdversary::nextTree(const BroadcastSim& state) {
  DYNBCAST_ASSERT(state.processCount() == n_);
  const std::vector<std::size_t> coverage = coverageCounts(state);
  const std::vector<DynBitset>& heard = state.heardMatrix();

  // Start from the stable freeze of the carried order, then hill-climb.
  std::vector<std::size_t> order = freezeOrdering(
      state, leadersByCoverage(coverage, config_.freezeDepth), order_);
  DelayScore best =
      evaluateCandidate(heard, coverage, makePath(order), scratch_);

  for (std::size_t it = 0; it < config_.iterations && n_ >= 2; ++it) {
    std::vector<std::size_t> trial = order;
    const std::size_t i = rng_.uniform(n_);
    std::size_t j = rng_.uniform(n_ - 1);
    if (j >= i) ++j;
    if (rng_.chance(config_.reversalProbability)) {
      const auto lo = static_cast<std::ptrdiff_t>(std::min(i, j));
      const auto hi = static_cast<std::ptrdiff_t>(std::max(i, j));
      std::reverse(trial.begin() + lo, trial.begin() + hi + 1);
    } else {
      std::swap(trial[i], trial[j]);
    }
    const DelayScore s =
        evaluateCandidate(heard, coverage, makePath(trial), scratch_);
    if (s < best) {
      best = s;
      order = std::move(trial);
    }
  }
  order_ = order;
  return makePath(order_);
}

}  // namespace dynbcast
