// Oblivious adversaries: fixed or randomized tree sequences that ignore
// the heard-of state. They provide the model's baselines (§2 of the
// paper: a static path costs exactly n−1; any static tree costs its
// height) and the random-environment comparison of §5.
//
// The reset() implementations below promise byte-identical replay; the
// named suite is the determinism gate that holds them to it.
// dynbcast-lint: replay-test(ResetReplaysIdenticalRun)
#pragma once

#include <cstdint>

#include "src/adversary/adversary.h"
#include "src/support/rng.h"

namespace dynbcast {

/// Repeats one fixed tree forever. t* equals the tree's height.
class StaticTreeAdversary final : public Adversary {
 public:
  explicit StaticTreeAdversary(RootedTree tree);

  [[nodiscard]] RootedTree nextTree(const BroadcastSim& state) override;
  [[nodiscard]] bool oblivious() const noexcept override { return true; }
  [[nodiscard]] const RootedTree& obliviousTree(std::size_t round) override;
  [[nodiscard]] std::string name() const override { return "static-tree"; }

 private:
  RootedTree tree_;
};

/// Repeats the identity path 0 → 1 → … → n−1. t* = n−1 (paper §2).
class StaticPathAdversary final : public Adversary {
 public:
  explicit StaticPathAdversary(std::size_t n);

  [[nodiscard]] RootedTree nextTree(const BroadcastSim& state) override;
  [[nodiscard]] bool oblivious() const noexcept override { return true; }
  [[nodiscard]] const RootedTree& obliviousTree(std::size_t round) override;
  [[nodiscard]] std::string name() const override { return "static-path"; }

 private:
  RootedTree tree_;
};

/// A fresh uniformly random rooted tree every round.
class UniformRandomAdversary final : public Adversary {
 public:
  UniformRandomAdversary(std::size_t n, std::uint64_t seed);

  [[nodiscard]] RootedTree nextTree(const BroadcastSim& state) override;
  [[nodiscard]] bool oblivious() const noexcept override { return true; }
  [[nodiscard]] const RootedTree& obliviousTree(std::size_t round) override;
  [[nodiscard]] std::string name() const override { return "random-tree"; }
  void reset() override;

 private:
  std::size_t n_;
  std::uint64_t seed_;
  Rng rng_;
  /// obliviousTree()'s last generated tree (the returned reference).
  RootedTree scratch_ = RootedTree::trivial();
};

/// A path over a fresh uniformly random permutation every round.
class RandomPathAdversary final : public Adversary {
 public:
  RandomPathAdversary(std::size_t n, std::uint64_t seed);

  [[nodiscard]] RootedTree nextTree(const BroadcastSim& state) override;
  [[nodiscard]] bool oblivious() const noexcept override { return true; }
  [[nodiscard]] const RootedTree& obliviousTree(std::size_t round) override;
  [[nodiscard]] std::string name() const override { return "random-path"; }
  void reset() override;

 private:
  std::size_t n_;
  std::uint64_t seed_;
  Rng rng_;
  /// obliviousTree()'s last generated tree (the returned reference).
  RootedTree scratch_ = RootedTree::trivial();
};

/// Alternates the identity path and its reversal — the classic "ping-pong"
/// sequence; completes gossip in Θ(n), unlike any static tree.
class AlternatingPathAdversary final : public Adversary {
 public:
  explicit AlternatingPathAdversary(std::size_t n);

  [[nodiscard]] RootedTree nextTree(const BroadcastSim& state) override;
  [[nodiscard]] bool oblivious() const noexcept override { return true; }
  [[nodiscard]] const RootedTree& obliviousTree(std::size_t round) override;
  [[nodiscard]] std::string name() const override {
    return "alternating-path";
  }

 private:
  RootedTree forward_;
  RootedTree backward_;
};

/// Restricted adversary of [14]: a fresh random tree with exactly k
/// leaves every round. Broadcast under this class is O(kn).
class KLeafAdversary final : public Adversary {
 public:
  KLeafAdversary(std::size_t n, std::size_t k, std::uint64_t seed);

  [[nodiscard]] RootedTree nextTree(const BroadcastSim& state) override;
  [[nodiscard]] bool oblivious() const noexcept override { return true; }
  [[nodiscard]] const RootedTree& obliviousTree(std::size_t round) override;
  [[nodiscard]] std::string name() const override;
  void reset() override;

 private:
  std::size_t n_;
  std::size_t k_;
  std::uint64_t seed_;
  Rng rng_;
  /// obliviousTree()'s last generated tree (the returned reference).
  RootedTree scratch_ = RootedTree::trivial();
};

/// Restricted adversary of [14]: a fresh random tree with exactly k inner
/// nodes every round. Broadcast under this class is O(kn).
class KInnerAdversary final : public Adversary {
 public:
  KInnerAdversary(std::size_t n, std::size_t k, std::uint64_t seed);

  [[nodiscard]] RootedTree nextTree(const BroadcastSim& state) override;
  [[nodiscard]] bool oblivious() const noexcept override { return true; }
  [[nodiscard]] const RootedTree& obliviousTree(std::size_t round) override;
  [[nodiscard]] std::string name() const override;
  void reset() override;

 private:
  std::size_t n_;
  std::size_t k_;
  std::uint64_t seed_;
  Rng rng_;
  /// obliviousTree()'s last generated tree (the returned reference).
  RootedTree scratch_ = RootedTree::trivial();
};

}  // namespace dynbcast
