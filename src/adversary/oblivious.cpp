#include "src/adversary/oblivious.h"

#include <algorithm>

#include "src/support/assert.h"
#include "src/tree/constrained.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {

namespace {

std::vector<std::size_t> reversedIdentity(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = n - 1 - i;
  return order;
}

}  // namespace

StaticTreeAdversary::StaticTreeAdversary(RootedTree tree)
    : tree_(std::move(tree)) {}

RootedTree StaticTreeAdversary::nextTree(const BroadcastSim& state) {
  DYNBCAST_ASSERT(state.processCount() == tree_.size());
  return tree_;
}

const RootedTree& StaticTreeAdversary::obliviousTree(std::size_t) {
  return tree_;
}

StaticPathAdversary::StaticPathAdversary(std::size_t n)
    : tree_(makePath(n)) {}

RootedTree StaticPathAdversary::nextTree(const BroadcastSim& state) {
  DYNBCAST_ASSERT(state.processCount() == tree_.size());
  return tree_;
}

const RootedTree& StaticPathAdversary::obliviousTree(std::size_t) {
  return tree_;
}

UniformRandomAdversary::UniformRandomAdversary(std::size_t n,
                                               std::uint64_t seed)
    : n_(n), seed_(seed), rng_(seed) {}

RootedTree UniformRandomAdversary::nextTree(const BroadcastSim& state) {
  DYNBCAST_ASSERT(state.processCount() == n_);
  // Identical RNG draw to obliviousTree(), so a scalar run and a batched
  // run at the same seed see the same tree sequence.
  return randomRootedTree(n_, rng_);
}

const RootedTree& UniformRandomAdversary::obliviousTree(std::size_t) {
  // Round-agnostic but stateful: each call advances the RNG exactly as
  // one nextTree() call would, so sequential callers see the same stream.
  scratch_ = randomRootedTree(n_, rng_);
  return scratch_;
}

void UniformRandomAdversary::reset() { rng_ = Rng(seed_); }

RandomPathAdversary::RandomPathAdversary(std::size_t n, std::uint64_t seed)
    : n_(n), seed_(seed), rng_(seed) {}

RootedTree RandomPathAdversary::nextTree(const BroadcastSim& state) {
  DYNBCAST_ASSERT(state.processCount() == n_);
  return randomPath(n_, rng_);
}

const RootedTree& RandomPathAdversary::obliviousTree(std::size_t) {
  scratch_ = randomPath(n_, rng_);
  return scratch_;
}

void RandomPathAdversary::reset() { rng_ = Rng(seed_); }

AlternatingPathAdversary::AlternatingPathAdversary(std::size_t n)
    : forward_(makePath(n)), backward_(makePath(reversedIdentity(n))) {}

RootedTree AlternatingPathAdversary::nextTree(const BroadcastSim& state) {
  DYNBCAST_ASSERT(state.processCount() == forward_.size());
  return state.round() % 2 == 0 ? forward_ : backward_;
}

const RootedTree& AlternatingPathAdversary::obliviousTree(std::size_t round) {
  return round % 2 == 0 ? forward_ : backward_;
}

KLeafAdversary::KLeafAdversary(std::size_t n, std::size_t k,
                               std::uint64_t seed)
    : n_(n), k_(k), seed_(seed), rng_(seed) {
  DYNBCAST_ASSERT(n >= 2 && k >= 1 && k <= n - 1);
}

RootedTree KLeafAdversary::nextTree(const BroadcastSim& state) {
  DYNBCAST_ASSERT(state.processCount() == n_);
  return randomTreeWithKLeaves(n_, k_, rng_);
}

const RootedTree& KLeafAdversary::obliviousTree(std::size_t) {
  scratch_ = randomTreeWithKLeaves(n_, k_, rng_);
  return scratch_;
}

std::string KLeafAdversary::name() const {
  return "k-leaf:k=" + std::to_string(k_);
}

void KLeafAdversary::reset() { rng_ = Rng(seed_); }

KInnerAdversary::KInnerAdversary(std::size_t n, std::size_t k,
                                 std::uint64_t seed)
    : n_(n), k_(k), seed_(seed), rng_(seed) {
  DYNBCAST_ASSERT(n >= 2 && k >= 1 && k <= n - 1);
}

RootedTree KInnerAdversary::nextTree(const BroadcastSim& state) {
  DYNBCAST_ASSERT(state.processCount() == n_);
  return randomTreeWithKInnerNodes(n_, k_, rng_);
}

const RootedTree& KInnerAdversary::obliviousTree(std::size_t) {
  scratch_ = randomTreeWithKInnerNodes(n_, k_, rng_);
  return scratch_;
}

std::string KInnerAdversary::name() const {
  return "k-inner:k=" + std::to_string(k_);
}

void KInnerAdversary::reset() { rng_ = Rng(seed_); }

}  // namespace dynbcast
