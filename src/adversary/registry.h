// AdversaryRegistry: the string-addressable construction surface for every
// adversary in the library.
//
// The paper's t*(T_n) is a max over *all* adversaries; growing that max
// means composing ever more adversary variants into sweeps. The registry
// makes adversaries data instead of code: a stable name plus a typed
// key=value parameter bag ("freeze-path:depth=3", "beam:width=8")
// constructs a fresh instance for any (n, seed), so portfolios, scenario
// specs, and the dynbcast CLI can all be driven by plain strings.
//
// Grammar (canonical form printed by AdversarySpec::toString):
//
//   spec   := name [":" param ("," param)*]
//   param  := key "=" value
//   name   := [A-Za-z0-9._-]+          e.g. "greedy-delay"
//
// Unknown names and unknown keys are hard errors with a nearest-match
// suggestion — a typo in an experiment script must fail loudly, not
// silently run the wrong adversary. Every adversary's name() returns a
// string in this grammar, so names round-trip through parse/print.
// name() carries the identity-defining parameters (freeze-path:depth=2,
// k-leaf:k=3, the full beam spec); greedy-delay and local-search keep
// their bare names even when tuning knobs are customized — portfolio
// member display names preserve the full spec in that case.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/adversary/adversary.h"
#include "src/support/spec.h"

namespace dynbcast {

/// Typed key=value bag of one adversary spec — the shared grammar's
/// parameter type (src/support/spec.h), which DynamicsRegistry also uses.
using AdversaryParams = SpecParams;

/// A parsed adversary spec string: base name + parameter bag.
struct AdversarySpec {
  std::string name;
  AdversaryParams params;

  /// Parses "name:key=value,key=value". Throws std::invalid_argument on
  /// malformed input (empty name, missing '=', duplicate key, bad
  /// characters). Surrounding whitespace of tokens is ignored.
  [[nodiscard]] static AdversarySpec parse(const std::string& text);

  /// Canonical printing: name, then ":" and the parameters sorted by key.
  /// parse(s).toString() is a fixed point: parsing it again yields an
  /// equal spec.
  [[nodiscard]] std::string toString() const;
};

/// One declared parameter of a registered adversary (for validation,
/// error suggestions, and `dynbcast list`).
struct AdversaryParamDoc {
  std::string key;
  std::string defaultValue;
  std::string description;
};

/// Factory: builds a fresh adversary for an (n, seed) instance. The
/// factory owns any seed salting (the registry passes the instance seed
/// through untouched) and must validate parameter ranges by throwing
/// std::invalid_argument.
using AdversaryFactory = std::function<std::unique_ptr<Adversary>(
    std::size_t n, std::uint64_t seed, const AdversaryParams& params)>;

struct AdversaryInfo {
  std::string name;
  std::string description;
  std::vector<AdversaryParamDoc> params;  ///< the only accepted keys
  AdversaryFactory factory;
};

/// Name → factory registry. The process-wide instance() comes with every
/// built-in adversary pre-registered; extensions may add() their own
/// before fanning work out (the registry is read-only thereafter — make()
/// from worker threads is safe as long as no add() races it).
class AdversaryRegistry {
 public:
  AdversaryRegistry() = default;

  /// The process-wide registry, with all built-ins registered.
  [[nodiscard]] static AdversaryRegistry& instance();

  /// Registers a new adversary. Throws std::invalid_argument if the name
  /// is already taken or not in the grammar's name charset.
  void add(AdversaryInfo info);

  [[nodiscard]] bool contains(const std::string& name) const {
    return entries_.count(name) != 0;
  }

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Metadata lookup. Throws std::invalid_argument with a nearest-match
  /// suggestion when the name is unknown.
  [[nodiscard]] const AdversaryInfo& info(const std::string& name) const;

  /// Checks the spec resolves: known name and only declared keys.
  /// Throws std::invalid_argument (with suggestions) otherwise. Cheap —
  /// callers composing sweeps validate eagerly so a typo fails at
  /// composition time, not inside a worker thread.
  void validate(const AdversarySpec& spec) const;

  /// Validates and constructs. Parameter *values* are checked by the
  /// factory itself (range errors also throw std::invalid_argument).
  [[nodiscard]] std::unique_ptr<Adversary> make(const AdversarySpec& spec,
                                                std::size_t n,
                                                std::uint64_t seed) const;

  /// Convenience: parse + make.
  [[nodiscard]] std::unique_ptr<Adversary> make(const std::string& spec,
                                                std::size_t n,
                                                std::uint64_t seed) const;

 private:
  std::map<std::string, AdversaryInfo> entries_;
};

}  // namespace dynbcast
