// Adversary portfolio: the library's best effort at Definition 2.3's max.
//
// t*(T_n) is a maximum over all adversaries; any single strategy only
// witnesses a lower bound. The portfolio runs every built-in adversary
// and reports the strongest witness, which benches compare against the
// paper's two bounds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/adversary/adversary.h"

namespace dynbcast {

/// A named adversary factory, so runs can be repeated with fresh state.
struct PortfolioMember {
  std::string name;
  std::function<std::unique_ptr<Adversary>()> make;
};

/// The standard portfolio as data: registry spec strings for the members
/// every sweep runs by default — static path, random tree/path,
/// heard-order paths, freeze paths (depths 1–3), greedy-delay,
/// local-search.
[[nodiscard]] std::vector<std::string> standardPortfolioSpecs();

/// Resolves registry spec strings into portfolio members for one
/// (n, seed) instance. Validates every spec eagerly (unknown names/keys
/// throw std::invalid_argument here, not inside a worker thread); each
/// member's display name is the canonical spec string and its make()
/// constructs a fresh adversary through the AdversaryRegistry.
[[nodiscard]] std::vector<PortfolioMember> membersFromSpecs(
    const std::vector<std::string>& specs, std::size_t n,
    std::uint64_t seed);

/// standardPortfolioSpecs() resolved through the registry.
[[nodiscard]] std::vector<PortfolioMember> standardPortfolio(
    std::size_t n, std::uint64_t seed);

struct PortfolioEntry {
  std::string name;
  std::size_t rounds = 0;
  bool completed = false;
  /// Per-round metrics of THIS member's run; empty unless the caller
  /// asked for history. Captured during the one and only run of the
  /// member — history never costs a re-run.
  std::vector<RoundMetrics> history;
};

struct PortfolioResult {
  /// The strongest (largest) completed t* among members.
  std::size_t bestRounds = 0;
  std::string bestName;
  std::vector<PortfolioEntry> entries;
};

/// Runs each member to completion (cap defaultRoundCap(n)) and collects
/// the per-member broadcast times. Each member runs exactly once; with
/// recordHistory, its per-round metrics land in the matching entry.
[[nodiscard]] PortfolioResult runPortfolio(std::size_t n, std::uint64_t seed,
                                           bool recordHistory = false);

/// Runs only the named members (useful for quick benches).
[[nodiscard]] PortfolioResult runPortfolio(
    std::size_t n, std::uint64_t seed,
    const std::vector<PortfolioMember>& members, bool recordHistory = false);

}  // namespace dynbcast
