// The replay wrappers below ("beam", "exact") reset() to the start of
// their witness sequence; replay determinism is gated by the named suite.
// dynbcast-lint: replay-test(BeamReplayIsDeterministicAndVerified)
#include "src/adversary/registry.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/adversary/adaptive.h"
#include "src/adversary/beam.h"
#include "src/adversary/exact_solver.h"
#include "src/adversary/local_search.h"
#include "src/adversary/lookahead.h"
#include "src/adversary/oblivious.h"
#include "src/tree/families.h"

namespace dynbcast {

namespace {

/// Replays a lazily computed tree sequence; once exhausted (which a valid
/// witness only reaches after broadcast completes) it falls back to the
/// identity path so a capped run still gets legal trees.
class ReplayAdversary : public Adversary {
 public:
  ReplayAdversary(std::size_t n, std::string name)
      : n_(n), name_(std::move(name)) {}

  RootedTree nextTree(const BroadcastSim& state) override {
    (void)state;
    if (!computed_) {
      witness_ = computeWitness();
      computed_ = true;
    }
    if (index_ < witness_.size()) return witness_[index_++];
    return makePath(n_);
  }

  std::string name() const override { return name_; }

  void reset() override { index_ = 0; }

 protected:
  [[nodiscard]] virtual std::vector<RootedTree> computeWitness() = 0;

  std::size_t n_;

 private:
  std::string name_;
  std::vector<RootedTree> witness_;
  bool computed_ = false;
  std::size_t index_ = 0;
};

/// "beam": the offline beam witness search packaged as an online
/// adversary — the search runs once on first use (deterministic for the
/// instance seed) and the winning tree sequence is replayed. Its name is
/// the canonical form of the exact spec it was built from, so rebuilding
/// from name() reproduces the same configuration.
class BeamWitnessAdversary final : public ReplayAdversary {
 public:
  BeamWitnessAdversary(std::size_t n, std::uint64_t seed, BeamConfig config,
                       std::string name)
      : ReplayAdversary(n, std::move(name)), seed_(seed), config_(config) {}

 protected:
  std::vector<RootedTree> computeWitness() override {
    return beamSearchWitness(n_, seed_, config_).witness;
  }

 private:
  std::uint64_t seed_;
  BeamConfig config_;
};

/// "exact": optimal play extracted from the exhaustive solver (n ≤ 8).
class ExactReplayAdversary final : public ReplayAdversary {
 public:
  explicit ExactReplayAdversary(std::size_t n) : ReplayAdversary(n, "exact") {}

 protected:
  std::vector<RootedTree> computeWitness() override {
    return ExactSolver(n_).optimalPlay();
  }
};

// Seeded factories apply the historical standardPortfolio salts
// (random-path ^0x5eed, greedy-delay ^0x9eed, local-search ^0xf00d,
// k-inner ^0xabcd), so registry-built portfolio sweeps reproduce the
// committed golden CSVs bit for bit. Callers that previously salted
// their own seeds before constructing adversaries directly (the migrated
// benches) now get a differently-derived — but equally deterministic —
// stream.
void registerBuiltins(AdversaryRegistry& reg) {
  // Oblivious baselines -----------------------------------------------------
  reg.add({"static-path",
           "repeats the identity path; t* = n-1 exactly (paper §2)",
           {},
           [](std::size_t n, std::uint64_t, const AdversaryParams&) {
             return std::make_unique<StaticPathAdversary>(n);
           }});
  reg.add({"alternating-path",
           "ping-pong between a path and its reversal; completes gossip "
           "in Theta(n)",
           {},
           [](std::size_t n, std::uint64_t, const AdversaryParams&) {
             return std::make_unique<AlternatingPathAdversary>(n);
           }});
  reg.add({"random-tree",
           "a fresh uniformly random rooted tree every round (§5 baseline)",
           {},
           [](std::size_t n, std::uint64_t seed, const AdversaryParams&) {
             return std::make_unique<UniformRandomAdversary>(n, seed);
           }});
  reg.add({"random-path",
           "a path over a fresh random permutation every round",
           {},
           [](std::size_t n, std::uint64_t seed, const AdversaryParams&) {
             // Salt matches the historical standardPortfolio derivation so
             // registry-built sweeps reproduce the committed goldens.
             return std::make_unique<RandomPathAdversary>(n,
                                                          seed ^ 0x5eedull);
           }});
  reg.add({"heard-asc-path",
           "path ordered by |Heard| ascending",
           {},
           [](std::size_t n, std::uint64_t, const AdversaryParams&) {
             return std::make_unique<HeardOrderPathAdversary>(n, true);
           }});
  reg.add({"heard-desc-path",
           "path ordered by |Heard| descending",
           {},
           [](std::size_t n, std::uint64_t, const AdversaryParams&) {
             return std::make_unique<HeardOrderPathAdversary>(n, false);
           }});

  // Restricted classes of [14] ---------------------------------------------
  reg.add({"k-leaf",
           "fresh random tree with exactly k leaves every round "
           "(restricted class of [14], O(kn) broadcast)",
           {{"k", "2", "exact number of leaves (1 <= k <= n-1)"}},
           [](std::size_t n, std::uint64_t seed,
              const AdversaryParams& params) {
             const std::size_t k = params.getUInt("k", 2);
             if (k < 1 || k >= n) {
               throw std::invalid_argument(
                   "adversary 'k-leaf': k must satisfy 1 <= k <= n-1 (got "
                   "k=" + std::to_string(k) +
                   ", n=" + std::to_string(n) + ")");
             }
             return std::make_unique<KLeafAdversary>(n, k, seed);
           }});
  reg.add({"k-inner",
           "fresh random tree with exactly k inner nodes every round "
           "(restricted class of [14], O(kn) broadcast)",
           {{"k", "2", "exact number of inner nodes (1 <= k <= n-1)"}},
           [](std::size_t n, std::uint64_t seed,
              const AdversaryParams& params) {
             const std::size_t k = params.getUInt("k", 2);
             if (k < 1 || k >= n) {
               throw std::invalid_argument(
                   "adversary 'k-inner': k must satisfy 1 <= k <= n-1 "
                   "(got k=" + std::to_string(k) +
                   ", n=" + std::to_string(n) + ")");
             }
             return std::make_unique<KInnerAdversary>(n, k,
                                                      seed ^ 0xabcdull);
           }});
  reg.add({"freeze-broom",
           "delaying member of BOTH restricted classes: broom with a "
           "fixed-length handle kept in stable freeze order",
           {{"handle", "2", "handle length (1 <= handle <= n)"}},
           [](std::size_t n, std::uint64_t,
              const AdversaryParams& params) {
             const std::size_t handle = params.getUInt("handle", 2);
             if (handle < 1 || handle > n) {
               throw std::invalid_argument(
                   "adversary 'freeze-broom': handle must satisfy 1 <= "
                   "handle <= n (got handle=" + std::to_string(handle) +
                   ", n=" + std::to_string(n) + ")");
             }
             return std::make_unique<FreezeBroomAdversary>(n, handle);
           }});

  // Adaptive delayers -------------------------------------------------------
  reg.add({"freeze-path",
           "stable-partition path freezing the top-depth coverage leaders",
           {{"depth", "2", "number of leaders frozen (>= 1)"}},
           [](std::size_t n, std::uint64_t,
              const AdversaryParams& params) {
             const std::size_t depth = params.getUInt("depth", 2);
             if (depth < 1) {
               throw std::invalid_argument(
                   "adversary 'freeze-path': depth must be >= 1");
             }
             return std::make_unique<FreezePathAdversary>(n, depth);
           }});
  reg.add({"greedy-delay",
           "portfolio-greedy delayer: plays the least damaging candidate "
           "tree one round ahead",
           {{"freeze-max", "4", "stable freezes with depth 1..freeze-max"},
            {"rand-paths", "3", "random path candidates per round"},
            {"rand-trees", "2", "uniform random tree candidates per round"},
            {"damage-roots", "3", "damage-greedy tree roots per round"}},
           [](std::size_t n, std::uint64_t seed,
              const AdversaryParams& params) {
             GreedyDelayConfig config;
             config.freezeDepthMax =
                 params.getUInt("freeze-max", config.freezeDepthMax);
             config.randomPaths =
                 params.getUInt("rand-paths", config.randomPaths);
             config.randomTrees =
                 params.getUInt("rand-trees", config.randomTrees);
             config.damageTreeRoots =
                 params.getUInt("damage-roots", config.damageTreeRoots);
             return std::make_unique<GreedyDelayAdversary>(
                 n, seed ^ 0x9eedull, config);
           }});
  reg.add({"local-search",
           "per-round hill climbing over path orderings (swaps + segment "
           "reversals)",
           {{"iters", "64", "move attempts per round"},
            {"freeze-depth", "2", "freeze depth of the starting ordering"},
            {"rev-p", "0.25", "probability a move is a segment reversal"}},
           [](std::size_t n, std::uint64_t seed,
              const AdversaryParams& params) {
             LocalSearchConfig config;
             config.iterations = params.getUInt("iters", config.iterations);
             config.freezeDepth =
                 params.getUInt("freeze-depth", config.freezeDepth);
             config.reversalProbability =
                 params.getDouble("rev-p", config.reversalProbability);
             return std::make_unique<LocalSearchPathAdversary>(
                 n, seed ^ 0xf00dull, config);
           }});
  reg.add({"lookahead",
           "depth-limited search over a structured candidate pool",
           {{"depth", "3", "search depth in rounds (1 = plain greedy)"},
            {"rand", "1", "random candidates per search node"},
            {"damage-roots", "2", "damage-greedy roots per search node"},
            {"tt", "1", "transposition table over (state, depth) nodes "
                        "(0 = exhaustive re-search)"}},
           [](std::size_t n, std::uint64_t seed,
              const AdversaryParams& params) {
             LookaheadConfig config;
             config.depth = params.getUInt("depth", config.depth);
             if (config.depth < 1) {
               throw std::invalid_argument(
                   "adversary 'lookahead': depth must be >= 1");
             }
             config.randomMoves = params.getUInt("rand", config.randomMoves);
             config.damageRoots =
                 params.getUInt("damage-roots", config.damageRoots);
             config.transposition = params.getUInt("tt", 1) != 0;
             return std::make_unique<LookaheadDelayAdversary>(
                 n, seed ^ 0x10caull, config);
           }});

  // Offline searches packaged as replayable adversaries ---------------------
  reg.add({"beam",
           "offline beam witness search, replayed as a tree sequence "
           "(strongest known heuristic; costs real search time)",
           {{"width", "128", "beam width"},
            {"rand-moves", "4", "random moves per expanded state"},
            {"noise", "8.0", "damage-tree weight noise amplitude"},
            {"diversity", "25", "percent of beam slots kept non-elite "
                                "(0 <= diversity <= 100)"},
            {"max-rounds", "0", "cap on achieved rounds; 0 = the trivial "
                                "n^2 bound"}},
           [](std::size_t n, std::uint64_t seed,
              const AdversaryParams& params) {
             BeamConfig config;
             config.beamWidth = params.getUInt("width", config.beamWidth);
             if (config.beamWidth < 1) {
               throw std::invalid_argument(
                   "adversary 'beam': width must be >= 1");
             }
             config.randomMovesPerState =
                 params.getUInt("rand-moves", config.randomMovesPerState);
             config.noiseAmplitude =
                 params.getDouble("noise", config.noiseAmplitude);
             config.diversityPercent =
                 params.getUInt("diversity", config.diversityPercent);
             if (config.diversityPercent > 100) {
               throw std::invalid_argument(
                   "adversary 'beam': diversity must be <= 100 percent "
                   "(got " + std::to_string(config.diversityPercent) + ")");
             }
             config.maxRounds =
                 params.getUInt("max-rounds", config.maxRounds);
             return std::make_unique<BeamWitnessAdversary>(
                 n, seed ^ 0xbea3ull, config,
                 AdversarySpec{"beam", params}.toString());
           }});
  reg.add({"exact",
           "optimal play from the exhaustive game solver (n <= 8; "
           "practical for n <= 5)",
           {},
           [](std::size_t n, std::uint64_t, const AdversaryParams&) {
             if (n < 2 || n > 8) {
               throw std::invalid_argument(
                   "adversary 'exact': the exhaustive solver supports "
                   "2 <= n <= 8 (got n=" + std::to_string(n) + ")");
             }
             return std::make_unique<ExactReplayAdversary>(n);
           }});
}

}  // namespace

AdversarySpec AdversarySpec::parse(const std::string& text) {
  ParsedSpec parsed = parseSpec(text, "adversary");
  return AdversarySpec{std::move(parsed.name), std::move(parsed.params)};
}

std::string AdversarySpec::toString() const {
  return formatSpec(name, params);
}

AdversaryRegistry& AdversaryRegistry::instance() {
  static AdversaryRegistry* registry = [] {
    auto* r = new AdversaryRegistry();
    registerBuiltins(*r);
    return r;
  }();
  return *registry;
}

void AdversaryRegistry::add(AdversaryInfo info) {
  if (!isValidSpecToken(info.name)) {
    throw std::invalid_argument("adversary registration '" + info.name +
                                "': name must be non-empty [A-Za-z0-9._-]");
  }
  if (!info.factory) {
    throw std::invalid_argument("adversary registration '" + info.name +
                                "': null factory");
  }
  const std::string name = info.name;
  if (!entries_.emplace(name, std::move(info)).second) {
    throw std::invalid_argument("adversary registration '" + name +
                                "': name already registered");
  }
}

std::vector<std::string> AdversaryRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, info] : entries_) out.push_back(name);
  return out;
}

const AdversaryInfo& AdversaryRegistry::info(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string message = "unknown adversary '" + name + "'";
    const std::string suggestion = closestMatch(name, names());
    if (!suggestion.empty()) {
      message += "; did you mean '" + suggestion + "'?";
    }
    message += " (run 'dynbcast list' for all registered adversaries)";
    throw std::invalid_argument(message);
  }
  return it->second;
}

void AdversaryRegistry::validate(const AdversarySpec& spec) const {
  const AdversaryInfo& entry = info(spec.name);
  std::vector<std::string> known;
  known.reserve(entry.params.size());
  for (const AdversaryParamDoc& doc : entry.params) known.push_back(doc.key);
  for (const auto& [key, value] : spec.params.values()) {
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    std::string message = "adversary '" + spec.name +
                          "': unknown parameter '" + key + "'";
    const std::string suggestion = closestMatch(key, known);
    if (!suggestion.empty()) {
      message += "; did you mean '" + suggestion + "'?";
    }
    if (known.empty()) {
      message += " ('" + spec.name + "' takes no parameters)";
    } else {
      std::string keys;
      for (const std::string& k : known) {
        if (!keys.empty()) keys += ", ";
        keys += k;
      }
      message += " (known parameters: " + keys + ")";
    }
    throw std::invalid_argument(message);
  }
}

std::unique_ptr<Adversary> AdversaryRegistry::make(const AdversarySpec& spec,
                                                   std::size_t n,
                                                   std::uint64_t seed) const {
  validate(spec);
  return info(spec.name).factory(n, seed, spec.params);
}

std::unique_ptr<Adversary> AdversaryRegistry::make(const std::string& spec,
                                                   std::size_t n,
                                                   std::uint64_t seed) const {
  return make(AdversarySpec::parse(spec), n, seed);
}

}  // namespace dynbcast
