// Shared search-tree core for the witness searches.
//
// Two pieces the beam, lookahead, and exact layers all need:
//
//   SearchTreeArena — a preallocated, fixed-capacity node pool holding
//   the explored game tree. A node stores the producing move, its parent
//   index, its depth, and a refcount; freed slots are recycled through a
//   free list. Lineages share prefixes structurally: a frontier of B
//   states at depth d retains only the ancestor closure of the B live
//   leaves instead of every pruned state of every level (the per-level
//   vector-of-vectors history the beam used to keep). Releasing a leaf
//   cascades up the parent chain, so dead branches are reclaimed the
//   moment their last descendant dies.
//
//   TranspositionTable — an open-addressed hash-to-payload map in the
//   two-array cost+hash style: one flat array of 64-bit digests, one of
//   32-bit payloads, linear probing. A digest match is only a candidate:
//   the caller supplies an equality predicate over the payload and the
//   table verifies FULL state equality before treating the slot as the
//   same state. Digest-equal-but-state-distinct probes keep walking (and
//   are counted), which is the fix for the silent-collision merge the
//   beam's raw `unordered_set<uint64_t>` dedup used to perform.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/tree/rooted_tree.h"

namespace dynbcast {

class SearchTreeArena {
 public:
  static constexpr std::uint32_t kNoNode = 0xffffffffu;

  /// Preallocates `capacity` node slots. The arena grows past the
  /// initial capacity if a search needs more (counted in growEvents()),
  /// so sizing is a performance knob, not a correctness limit.
  explicit SearchTreeArena(std::size_t capacity);

  /// A depth-0 node with no producing move; refcount starts at 1 (the
  /// caller's reference).
  [[nodiscard]] std::uint32_t acquireRoot();

  /// A child of `parent` produced by `move`; refcount starts at 1 and
  /// the parent gains a reference (children pin their ancestors).
  [[nodiscard]] std::uint32_t acquireChild(std::uint32_t parent,
                                           RootedTree move);

  void addRef(std::uint32_t id);

  /// Drops one reference; a node reaching zero is recycled and the
  /// release cascades to its parent.
  void release(std::uint32_t id);

  [[nodiscard]] const RootedTree& move(std::uint32_t id) const;
  [[nodiscard]] std::uint32_t parent(std::uint32_t id) const;
  [[nodiscard]] std::size_t depth(std::uint32_t id) const;

  /// The move sequence from the root to `id` (root's pseudo-move
  /// excluded): exactly depth(id) trees, oldest first.
  [[nodiscard]] std::vector<RootedTree> lineage(std::uint32_t id) const;

  [[nodiscard]] std::size_t liveNodes() const noexcept { return live_; }
  [[nodiscard]] std::size_t peakLiveNodes() const noexcept { return peak_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t growEvents() const noexcept { return grows_; }

 private:
  struct Node {
    RootedTree move = RootedTree::trivial();
    std::uint32_t parent = kNoNode;
    std::uint32_t refcount = 0;
    std::uint32_t depth = 0;
  };

  [[nodiscard]] std::uint32_t allocate();

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> freeList_;
  std::size_t live_ = 0;
  std::size_t peak_ = 0;
  std::size_t grows_ = 0;
};

class TranspositionTable {
 public:
  static constexpr std::uint32_t kNoPayload = 0xffffffffu;

  /// Sized for `expectedEntries` insertions without rehash.
  explicit TranspositionTable(std::size_t expectedEntries = 0);

  struct InsertResult {
    /// The resident payload: the caller's on insertion, the verified
    /// existing one on a hit.
    std::uint32_t payload = kNoPayload;
    bool inserted = false;
  };

  /// Inserts `payload` under `hash` unless a slot with the same digest
  /// AND equalsExisting(slotPayload) == true already exists; in that
  /// case returns the existing payload. Digest collisions (same digest,
  /// predicate false) are counted and probing continues — distinct
  /// states are never merged.
  template <typename Eq>
  InsertResult insertOrFind(std::uint64_t hash, std::uint32_t payload,
                            Eq&& equalsExisting) {
    if ((count_ + 1) * 2 > hashes_.size()) grow();
    std::size_t i = static_cast<std::size_t>(hash) & mask_;
    while (payloads_[i] != kNoPayload) {
      if (hashes_[i] == hash) {
        if (equalsExisting(payloads_[i])) {
          ++verifiedHits_;
          return {payloads_[i], false};
        }
        ++hashCollisions_;
      }
      i = (i + 1) & mask_;
    }
    hashes_[i] = hash;
    payloads_[i] = payload;
    ++count_;
    return {payload, true};
  }

  /// Lookup without insertion; kNoPayload when absent.
  template <typename Eq>
  [[nodiscard]] std::uint32_t find(std::uint64_t hash,
                                   Eq&& equalsExisting) const {
    std::size_t i = static_cast<std::size_t>(hash) & mask_;
    while (payloads_[i] != kNoPayload) {
      if (hashes_[i] == hash && equalsExisting(payloads_[i])) {
        return payloads_[i];
      }
      i = (i + 1) & mask_;
    }
    return kNoPayload;
  }

  /// Empties the table, keeping its allocation (per-level reuse).
  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t slots() const noexcept { return hashes_.size(); }
  [[nodiscard]] std::uint64_t verifiedHits() const noexcept {
    return verifiedHits_;
  }
  [[nodiscard]] std::uint64_t hashCollisions() const noexcept {
    return hashCollisions_;
  }

 private:
  void grow();

  std::vector<std::uint64_t> hashes_;
  std::vector<std::uint32_t> payloads_;
  std::size_t mask_ = 0;
  std::size_t count_ = 0;
  std::uint64_t verifiedHits_ = 0;
  std::uint64_t hashCollisions_ = 0;
};

}  // namespace dynbcast
