// LookaheadDelayAdversary: depth-limited search over candidate moves.
//
// One-step greedy fails against this game: the static path minimizes any
// convex one-round potential yet yields only t* = n−1, while optimal
// play (exact solver, small n) reaches ⌈(3n−1)/2⌉−2 by making early
// "sacrifice" moves whose payoff appears several rounds later. The fix
// is to search: from the current state, expand a small structured
// candidate pool (damage-greedy trees, stable freezes, the previous
// path, heard-order paths) to depth d, maximize rounds-until-broadcast
// within the horizon, and break ties by the convex coverage potential of
// the horizon state.
//
// Different move orders frequently transpose into the same heard matrix
// (freeze variants differing only below the frozen prefix, damage trees
// sharing a root). A per-call transposition table — collision-safe: a
// digest hit is merged only after the full heard matrices compare equal
// — evaluates each (state, remaining-depth) node once per nextTree call.
//
// reset() here must replay bit-identically; gated by the named suite.
// dynbcast-lint: replay-test(LookaheadResetReplaysDeterministically)
#pragma once

#include <cstdint>
#include <vector>

#include "src/adversary/adaptive.h"
#include "src/adversary/adversary.h"
#include "src/support/rng.h"

namespace dynbcast {

struct LookaheadConfig {
  /// Search depth in rounds (1 = plain greedy). Cost grows as
  /// (pool size)^depth; 3 is comfortable for n ≤ 64.
  std::size_t depth = 3;
  /// Random path/tree candidates added to the structured pool per node.
  std::size_t randomMoves = 1;
  /// Damage-greedy tree roots tried per node.
  std::size_t damageRoots = 2;
  /// Reuse evaluations of transposed (state, remaining-depth) nodes
  /// within one nextTree call. Off restores the exhaustive re-search.
  bool transposition = true;
};

/// Cumulative search effort across nextTree calls (reset() clears).
struct LookaheadStats {
  /// Interior search nodes visited (cache hits included).
  std::uint64_t nodesVisited = 0;
  /// Nodes answered from the per-call transposition table.
  std::uint64_t transpositionHits = 0;
};

class LookaheadDelayAdversary final : public Adversary {
 public:
  LookaheadDelayAdversary(std::size_t n, std::uint64_t seed,
                          LookaheadConfig config = {});

  [[nodiscard]] RootedTree nextTree(const BroadcastSim& state) override;
  [[nodiscard]] std::string name() const override;
  void reset() override;

  [[nodiscard]] const LookaheadStats& stats() const noexcept {
    return stats_;
  }

 private:
  std::size_t n_;
  std::uint64_t seed_;
  Rng rng_;
  LookaheadConfig config_;
  std::vector<std::size_t> order_;
  /// One scratch per search depth, reused across rounds (see search()).
  std::vector<EvalScratch> arena_;
  LookaheadStats stats_;
};

}  // namespace dynbcast
