// Adversary interface for the broadcast game (paper Definition 2.3).
//
// The broadcast time t*(T_n) is the value of a one-player game: in each
// round the adversary — with full knowledge of the current heard-of state
// — picks any rooted tree on [n], trying to postpone the first round in
// which some process has been heard by everyone. Protocol processes have
// no choices (they always forward everything), so maximizing adversaries
// are the only strategic agents in the model.
//
// Implementations may be oblivious (ignore the state) or adaptive.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/sim/broadcast_sim.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {

class Adversary {
 public:
  virtual ~Adversary() = default;

  Adversary() = default;
  Adversary(const Adversary&) = delete;
  Adversary& operator=(const Adversary&) = delete;

  /// The tree for round state.round() + 1. Must have state.processCount()
  /// nodes. Adaptive adversaries read the heard-of state; oblivious ones
  /// only the round number.
  [[nodiscard]] virtual RootedTree nextTree(const BroadcastSim& state) = 0;

  /// True when the tree sequence never depends on the heard-of state —
  /// the precondition for batched lockstep execution, where no live
  /// simulator exists to show an adversary. Oblivious implementations
  /// override this AND obliviousTree(); everything adaptive keeps the
  /// default.
  [[nodiscard]] virtual bool oblivious() const noexcept { return false; }

  /// The tree for round `round` + 1 of an oblivious adversary, with no
  /// simulator in sight. Callers must request rounds sequentially from
  /// reset() (round 0, 1, 2, …): randomized adversaries draw from their
  /// RNG per call, and the sequential discipline keeps that stream
  /// identical to what nextTree() would have consumed — which is what
  /// makes batched runs byte-identical to scalar ones. Returns a
  /// reference (static adversaries hand out their stored tree without a
  /// per-round deep copy — RootedTree copies allocate per node, which
  /// would dwarf a batched round); it stays valid until the next
  /// obliviousTree()/reset() call on this adversary. Throws
  /// std::logic_error on adaptive adversaries (oblivious() == false).
  [[nodiscard]] virtual const RootedTree& obliviousTree(std::size_t round);

  /// Stable display name, e.g. "static-path" or "greedy-delay".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Re-arms the adversary for a fresh run (resets internal RNG state to
  /// the constructed seed and clears any per-run memory).
  virtual void reset() {}
};

/// Runs `adversary` from the initial state until broadcast completes or
/// `maxRounds` is reached; resets the adversary first.
[[nodiscard]] BroadcastRun runAdversary(std::size_t n, Adversary& adversary,
                                        std::size_t maxRounds,
                                        bool recordHistory = false);

/// Same, but runs to GOSSIP completion (everyone heard everyone). Use
/// defaultGossipRoundCap(n) for the cap, not defaultRoundCap(n): the
/// latter encodes the paper's broadcast bound, which gossip may exceed.
[[nodiscard]] BroadcastRun runAdversaryGossip(std::size_t n,
                                              Adversary& adversary,
                                              std::size_t maxRounds,
                                              bool recordHistory = false);

/// Default round cap used by drivers: comfortably above the paper's upper
/// bound ⌈(1+√2)n−1⌉, so hitting it means something is wrong (and tests
/// treat it as a Theorem 3.1 violation).
[[nodiscard]] std::size_t defaultRoundCap(std::size_t n);

/// Runs every adversary in `lanes` (all oblivious, all on n processes)
/// through one lockstep BatchBroadcastSim: trees are drawn per lane per
/// round via obliviousTree(), applied across the whole batch in one fused
/// pass (a shared contiguous pass when all live lanes picked the same
/// tree), and finished lanes retire out of the batch as they complete.
/// Result slot i is exactly what runAdversary(n, *lanes[i], maxRounds)
/// returns (history excluded — batching never records history): same
/// rounds, same completed flag, bit for bit, because the double-buffered
/// batched recurrence and the scalar in-place one compute identical heard
/// matrices. Resets every adversary first.
[[nodiscard]] std::vector<BroadcastRun> runObliviousBatch(
    std::size_t n, const std::vector<Adversary*>& lanes,
    std::size_t maxRounds);

}  // namespace dynbcast
