// Adversary interface for the broadcast game (paper Definition 2.3).
//
// The broadcast time t*(T_n) is the value of a one-player game: in each
// round the adversary — with full knowledge of the current heard-of state
// — picks any rooted tree on [n], trying to postpone the first round in
// which some process has been heard by everyone. Protocol processes have
// no choices (they always forward everything), so maximizing adversaries
// are the only strategic agents in the model.
//
// Implementations may be oblivious (ignore the state) or adaptive.
#pragma once

#include <memory>
#include <string>

#include "src/sim/broadcast_sim.h"
#include "src/tree/rooted_tree.h"

namespace dynbcast {

class Adversary {
 public:
  virtual ~Adversary() = default;

  Adversary() = default;
  Adversary(const Adversary&) = delete;
  Adversary& operator=(const Adversary&) = delete;

  /// The tree for round state.round() + 1. Must have state.processCount()
  /// nodes. Adaptive adversaries read the heard-of state; oblivious ones
  /// only the round number.
  [[nodiscard]] virtual RootedTree nextTree(const BroadcastSim& state) = 0;

  /// Stable display name, e.g. "static-path" or "greedy-delay".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Re-arms the adversary for a fresh run (resets internal RNG state to
  /// the constructed seed and clears any per-run memory).
  virtual void reset() {}
};

/// Runs `adversary` from the initial state until broadcast completes or
/// `maxRounds` is reached; resets the adversary first.
[[nodiscard]] BroadcastRun runAdversary(std::size_t n, Adversary& adversary,
                                        std::size_t maxRounds,
                                        bool recordHistory = false);

/// Same, but runs to GOSSIP completion (everyone heard everyone). Use
/// defaultGossipRoundCap(n) for the cap, not defaultRoundCap(n): the
/// latter encodes the paper's broadcast bound, which gossip may exceed.
[[nodiscard]] BroadcastRun runAdversaryGossip(std::size_t n,
                                              Adversary& adversary,
                                              std::size_t maxRounds,
                                              bool recordHistory = false);

/// Default round cap used by drivers: comfortably above the paper's upper
/// bound ⌈(1+√2)n−1⌉, so hitting it means something is wrong (and tests
/// treat it as a Theorem 3.1 violation).
[[nodiscard]] std::size_t defaultRoundCap(std::size_t n);

}  // namespace dynbcast
