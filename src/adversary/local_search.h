// LocalSearchPathAdversary: per-round hill climbing over path orderings.
//
// Starts each round from the strongest freeze ordering and improves it by
// randomized pairwise swaps and segment reversals, accepting a move when
// it strictly lowers the one-round DelayScore. More expensive per round
// than GreedyDelayAdversary but finds orderings the fixed candidate pool
// misses; the benches compare both.
//
// reset() here must replay bit-identically; gated by the named suite.
// dynbcast-lint: replay-test(DeterministicPerSeed)
#pragma once

#include <cstdint>

#include "src/adversary/adaptive.h"
#include "src/adversary/adversary.h"
#include "src/support/rng.h"

namespace dynbcast {

struct LocalSearchConfig {
  /// Swap attempts per round (each evaluated with evaluateCandidate).
  std::size_t iterations = 64;
  /// Freeze depth of the starting ordering.
  std::size_t freezeDepth = 2;
  /// Probability a move is a segment reversal instead of a swap.
  double reversalProbability = 0.25;
};

class LocalSearchPathAdversary final : public Adversary {
 public:
  LocalSearchPathAdversary(std::size_t n, std::uint64_t seed,
                           LocalSearchConfig config = {});

  [[nodiscard]] RootedTree nextTree(const BroadcastSim& state) override;
  [[nodiscard]] std::string name() const override { return "local-search"; }
  void reset() override;

 private:
  std::size_t n_;
  std::uint64_t seed_;
  Rng rng_;
  LocalSearchConfig config_;
  std::vector<std::size_t> order_;  // carried across rounds for stability
  EvalScratch scratch_;             // reused across all evaluations
};

}  // namespace dynbcast
