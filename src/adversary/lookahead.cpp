#include "src/adversary/lookahead.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "src/adversary/search_tree.h"
#include "src/support/assert.h"
#include "src/support/hashing.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {

namespace {

/// Top-`depth` coverage leaders, highest first.
std::vector<std::size_t> topLeaders(const std::vector<std::size_t>& coverage,
                                    std::size_t depth) {
  std::vector<std::size_t> ids(coverage.size());
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  const std::size_t take = std::min(depth, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(take),
                    ids.end(), [&](std::size_t a, std::size_t b) {
                      if (coverage[a] != coverage[b]) {
                        return coverage[a] > coverage[b];
                      }
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

/// The structured move pool expanded at every search node.
std::vector<RootedTree> generateCandidates(
    const BroadcastSim& sim, const std::vector<std::size_t>& coverage,
    const std::vector<std::size_t>& baseOrder, Rng& rng,
    const LookaheadConfig& config) {
  const std::size_t n = sim.processCount();
  std::vector<RootedTree> out;
  out.push_back(makePath(baseOrder));  // continuity move
  out.push_back(
      makePath(freezeOrdering(sim, topLeaders(coverage, 1), baseOrder)));
  out.push_back(
      makePath(freezeOrdering(sim, topLeaders(coverage, 2), baseOrder)));
  // Damage-greedy roots: safest spreader and best-informed receiver.
  if (config.damageRoots >= 1) {
    const std::size_t minCov = static_cast<std::size_t>(
        std::min_element(coverage.begin(), coverage.end()) -
        coverage.begin());
    out.push_back(buildDamageGreedyTree(sim, coverage, minCov));
  }
  if (config.damageRoots >= 2 && n >= 2) {
    std::size_t maxHeard = 0;
    for (std::size_t y = 1; y < n; ++y) {
      if (sim.heardCount(y) > sim.heardCount(maxHeard)) {
        maxHeard = y;
      }
    }
    out.push_back(buildDamageGreedyTree(sim, coverage, maxHeard));
  }
  for (std::size_t extra = 2; extra < config.damageRoots; ++extra) {
    out.push_back(buildDamageGreedyTree(sim, coverage, rng.uniform(n)));
  }
  for (std::size_t i = 0; i < config.randomMoves; ++i) {
    out.push_back(randomPath(n, rng));
  }
  return out;
}

struct Eval {
  std::size_t survived = 0;  // rounds the adversary lasts within horizon
  double potential = std::numeric_limits<double>::infinity();
};

bool betterForAdversary(const Eval& a, const Eval& b) {
  if (a.survived != b.survived) return a.survived > b.survived;
  return a.potential < b.potential;
}

/// Per-call transposition cache: (heard matrix, remaining depth) → Eval.
/// The table stores indices into `entries`, whose stored matrices back
/// the full-equality verification on every digest hit.
struct TtCache {
  struct Entry {
    std::vector<DynBitset> heard;
    std::size_t depth = 0;
    Eval eval;
  };
  TranspositionTable table{128};
  std::vector<Entry> entries;
};

/// One EvalScratch per recursion level: level d's post-move state must
/// stay alive as the heard/coverage input of level d+1 while that level
/// evaluates its own candidates into the next slot.
Eval search(const std::vector<DynBitset>& heard,
            const std::vector<std::size_t>& coverage,
            const std::vector<std::size_t>& baseOrder, Rng& rng,
            const LookaheadConfig& config, std::size_t depth,
            RootedTree* chosenOut, std::vector<EvalScratch>& arena,
            std::size_t level, TtCache* cache, LookaheadStats& stats) {
  ++stats.nodesVisited;
  // Interior nodes only: the root must still report its chosen move, and
  // it is the first node of a per-call table anyway.
  const bool cacheable = cache != nullptr && chosenOut == nullptr;
  std::uint64_t digest = 0;
  if (cacheable) {
    digest = hashCombine(hashHeardMatrix(heard), depth);
    const std::uint32_t found = cache->table.find(
        digest, [&](std::uint32_t payload) {
          const TtCache::Entry& e = cache->entries[payload];
          return e.depth == depth && e.heard == heard;
        });
    if (found != TranspositionTable::kNoPayload) {
      ++stats.transpositionHits;
      return cache->entries[found].eval;
    }
  }
  const BroadcastSim sim =
      BroadcastSim::fromHeard(std::vector<DynBitset>(heard));
  const std::vector<RootedTree> candidates =
      generateCandidates(sim, coverage, baseOrder, rng, config);

  Eval best;  // survived = 0, potential = inf: "every move finishes"
  const RootedTree* bestTree = &candidates.front();
  for (const RootedTree& candidate : candidates) {
    EvalScratch& scratch = arena[level];
    const DelayScore score =
        evaluateCandidate(heard, coverage, candidate, scratch);
    Eval eval;
    if (score.finishes || depth == 1) {
      eval.survived = score.finishes ? 0 : 1;
      eval.potential = score.potential;
    } else {
      // scratch.heard/coverage hold the candidate's post-move state; the
      // recursive call reads them while using arena[level + 1].
      const Eval sub =
          search(scratch.heard, scratch.coverage, baseOrder, rng, config,
                 depth - 1, nullptr, arena, level + 1, cache, stats);
      eval.survived = 1 + sub.survived;
      eval.potential = sub.potential;
    }
    if (betterForAdversary(eval, best)) {
      best = eval;
      bestTree = &candidate;
    }
  }
  if (cacheable) {
    const auto payload = static_cast<std::uint32_t>(cache->entries.size());
    const TranspositionTable::InsertResult ins = cache->table.insertOrFind(
        digest, payload, [&](std::uint32_t existing) {
          const TtCache::Entry& e = cache->entries[existing];
          return e.depth == depth && e.heard == heard;
        });
    if (ins.inserted) {
      cache->entries.push_back(TtCache::Entry{heard, depth, best});
    }
  }
  if (chosenOut != nullptr) *chosenOut = *bestTree;
  return best;
}

}  // namespace

LookaheadDelayAdversary::LookaheadDelayAdversary(std::size_t n,
                                                 std::uint64_t seed,
                                                 LookaheadConfig config)
    : n_(n), seed_(seed), rng_(seed), config_(config) {
  DYNBCAST_ASSERT(config_.depth >= 1);
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
}

void LookaheadDelayAdversary::reset() {
  rng_ = Rng(seed_);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  stats_ = LookaheadStats{};
}

RootedTree LookaheadDelayAdversary::nextTree(const BroadcastSim& state) {
  DYNBCAST_ASSERT(state.processCount() == n_);
  const std::vector<std::size_t> coverage = coverageCounts(state);
  RootedTree chosen = makePath(order_);
  if (arena_.size() < config_.depth) {
    arena_.resize(config_.depth, EvalScratch::forProcessCount(n_));
  }
  TtCache cache;
  TtCache* cachePtr = config_.transposition ? &cache : nullptr;
  (void)search(state.heardMatrix(), coverage, order_, rng_, config_,
               config_.depth, &chosen, arena_, 0, cachePtr, stats_);
  // Carry path stability when the chosen move is a path.
  if (chosen.leafCount() == 1) {
    order_ = chosen.bfsOrder();
  }
  return chosen;
}

std::string LookaheadDelayAdversary::name() const {
  return "lookahead:depth=" + std::to_string(config_.depth);
}

}  // namespace dynbcast
