#include "src/adversary/exact_solver.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "src/support/assert.h"
#include "src/tree/enumerate.h"

namespace dynbcast {

namespace {

constexpr std::size_t kStride = 8;  // bits per row in the packed state

std::uint64_t rowOf(std::uint64_t state, std::size_t y) {
  return (state >> (y * kStride)) & 0xFFu;
}

/// All permutations of [n] as flat index arrays.
std::vector<std::vector<std::size_t>> allPermutations(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  std::vector<std::vector<std::size_t>> out;
  do {
    out.push_back(p);
  } while (std::next_permutation(p.begin(), p.end()));
  return out;
}

/// Shared machinery between solve() and optimalPlay(): the move pool, the
/// canonicalization permutations, and the value memo (keyed by canonical
/// state).
struct SolveContext {
  std::size_t n = 0;
  bool canonicalize = false;
  std::size_t depthCap = 0;
  std::vector<std::vector<std::size_t>> moves;
  std::vector<std::vector<std::size_t>> perms;
  /// Per permutation: rowImage[row] = π(row) for every of the 2^n row
  /// bit-patterns, and rowShift[y] = 8·π(y). Turns one state permutation
  /// into n table lookups instead of n² bit probes — the canonicalization
  /// is the solver's hot loop (n! permutations per new state).
  std::vector<std::vector<std::uint8_t>> rowImage;
  std::vector<std::vector<unsigned>> rowShift;
  std::unordered_map<std::uint64_t, std::size_t> memo;
  std::uint64_t successorsExpanded = 0;

  explicit SolveContext(std::size_t n_, const ExactOptions& options)
      : n(n_), canonicalize(options.canonicalize) {
    depthCap = options.depthCap != 0 ? options.depthCap : n * n;
    moves.reserve(rootedTreeCount(n));
    forEachRootedTree(n, [&](const RootedTree& t) {
      moves.push_back(t.parents());
      return true;
    });
    if (canonicalize) {
      perms = allPermutations(n);
      rowImage.resize(perms.size());
      rowShift.resize(perms.size());
      const std::size_t patterns = std::size_t{1} << n;
      for (std::size_t p = 0; p < perms.size(); ++p) {
        rowImage[p].resize(patterns);
        for (std::size_t bits = 0; bits < patterns; ++bits) {
          std::uint8_t img = 0;
          for (std::size_t x = 0; x < n; ++x) {
            if ((bits >> x) & 1u) {
              img = static_cast<std::uint8_t>(img |
                                              (1u << perms[p][x]));
            }
          }
          rowImage[p][bits] = img;
        }
        rowShift[p].resize(n);
        for (std::size_t y = 0; y < n; ++y) {
          rowShift[p][y] = static_cast<unsigned>(perms[p][y] * kStride);
        }
      }
    }
  }

  std::uint64_t canonical(std::uint64_t s) const {
    if (!canonicalize) return s;
    std::uint64_t best = ~std::uint64_t{0};
    for (std::size_t p = 0; p < perms.size(); ++p) {
      std::uint64_t out = 0;
      for (std::size_t y = 0; y < n; ++y) {
        const std::uint64_t row = (s >> (y * kStride)) & 0xFFu;
        out |= static_cast<std::uint64_t>(rowImage[p][row])
               << rowShift[p][y];
      }
      best = std::min(best, out);
    }
    return best;
  }

  /// Game value of a (canonical) non-broadcast state: the largest number
  /// of further rounds the adversary can force.
  std::size_t value(std::uint64_t state, std::size_t depth) {
    const auto it = memo.find(state);
    if (it != memo.end()) return it->second;
    DYNBCAST_ASSERT_MSG(depth < depthCap,
                        "exceeded depth cap: monotone progress violated?");
    // Distinct successors only: many trees induce the same transition
    // from a given state.
    std::unordered_set<std::uint64_t> successors;
    successors.reserve(64);
    for (const auto& parents : moves) {
      successors.insert(ExactSolver::applyTreeEncoded(state, parents));
    }
    std::size_t best = 0;
    std::unordered_set<std::uint64_t> canonicalSeen;
    canonicalSeen.reserve(successors.size());
    for (const std::uint64_t raw : successors) {
      const std::uint64_t next = canonical(raw);
      if (!canonicalSeen.insert(next).second) continue;
      ++successorsExpanded;
      const std::size_t v = ExactSolver::isBroadcastState(next, n)
                                ? 1
                                : 1 + value(next, depth + 1);
      best = std::max(best, v);
    }
    memo.emplace(state, best);
    return best;
  }

  /// Value of an arbitrary (raw) state via the canonical memo.
  std::size_t valueOf(std::uint64_t raw, std::size_t depth) {
    if (ExactSolver::isBroadcastState(raw, n)) return 0;
    return value(canonical(raw), depth);
  }
};

}  // namespace

std::uint64_t ExactSolver::encodeIdentity(std::size_t n) {
  std::uint64_t s = 0;
  for (std::size_t y = 0; y < n; ++y) {
    s |= std::uint64_t{1} << (y * kStride + y);
  }
  return s;
}

std::uint64_t ExactSolver::applyTreeEncoded(
    std::uint64_t state, const std::vector<std::size_t>& parents) {
  std::uint64_t out = state;
  for (std::size_t y = 0; y < parents.size(); ++y) {
    const std::size_t p = parents[y];
    if (p != y) {
      out |= rowOf(state, p) << (y * kStride);
    }
  }
  return out;
}

bool ExactSolver::isBroadcastState(std::uint64_t state, std::size_t n) {
  std::uint64_t common = rowOf(state, 0);
  for (std::size_t y = 1; y < n && common != 0; ++y) {
    common &= rowOf(state, y);
  }
  return common != 0;
}

ExactSolver::ExactSolver(std::size_t n, ExactOptions options)
    : n_(n), options_(options) {
  DYNBCAST_ASSERT_MSG(n >= 2 && n <= kStride,
                      "ExactSolver supports 2 <= n <= 8");
}

ExactResult ExactSolver::solve() {
  SolveContext ctx(n_, options_);
  ExactResult result;
  result.tStar = ctx.valueOf(ExactSolver::encodeIdentity(n_), 0);
  result.statesMemoized = ctx.memo.size();
  result.successorsExpanded = ctx.successorsExpanded;
  return result;
}

std::vector<RootedTree> ExactSolver::optimalPlay() {
  SolveContext ctx(n_, options_);
  std::uint64_t state = ExactSolver::encodeIdentity(n_);
  std::size_t remaining = ctx.valueOf(state, 0);

  // Materialize the trees once (same enumeration order as ctx.moves).
  const std::vector<RootedTree> pool = allRootedTrees(n_);
  std::vector<RootedTree> play;
  play.reserve(remaining);
  std::size_t depth = 0;
  while (remaining > 0) {
    // Pick any move whose successor preserves the game value.
    bool found = false;
    for (std::size_t m = 0; m < ctx.moves.size(); ++m) {
      const std::uint64_t next = applyTreeEncoded(state, ctx.moves[m]);
      const std::size_t v = ctx.valueOf(next, depth + 1);
      if (v + 1 == remaining) {
        play.push_back(pool[m]);
        state = next;
        remaining = v;
        found = true;
        break;
      }
    }
    DYNBCAST_ASSERT_MSG(found, "no value-preserving move: memo corrupt?");
    ++depth;
  }
  DYNBCAST_ASSERT(isBroadcastState(state, n_));
  return play;
}

}  // namespace dynbcast
