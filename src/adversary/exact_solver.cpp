#include "src/adversary/exact_solver.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/adversary/adaptive.h"
#include "src/sim/broadcast_sim.h"
#include "src/support/assert.h"
#include "src/support/eval_scratch.h"
#include "src/support/hashing.h"
#include "src/support/rng.h"
#include "src/tree/enumerate.h"
#include "src/tree/families.h"

namespace dynbcast {

namespace {

constexpr std::size_t kStride = 8;  // bits per row in the packed state
/// Largest full move pool the exhaustive queries enumerate: covers
/// n = 8 (8^7 = 2,097,152 trees); n = 9 would need 43M.
constexpr std::uint64_t kExhaustivePoolLimit = 4'000'000;
/// Orbit-scan abort threshold: a state whose invariant partition still
/// admits more permutations than this is left un-canonicalized. Sound —
/// the memo merely merges fewer equivalent states.
constexpr std::uint64_t kMaxOrbitPerms = 1'000'000;
/// Successor-count ceiling for the dominance filter (it is quadratic,
/// and near-symmetric states can have millions of pairwise-incomparable
/// successors that the filter would scan for nothing).
constexpr std::size_t kDominanceLimit = 2048;

std::uint64_t rowOf(std::uint64_t state, std::size_t y) {
  return (state >> (y * kStride)) & 0xFFu;
}

/// Row-array state: row y = Heard(y) as a 16-bit mask; rows >= n are 0.
using Rows = std::array<std::uint16_t, ExactSolver::kMaxN>;

struct RowsHash {
  std::size_t operator()(const Rows& r) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (std::size_t c = 0; c < 4; ++c) {
      std::uint64_t chunk = 0;
      std::memcpy(&chunk, r.data() + c * 4, sizeof(chunk));
      h = hashCombine(h, hashMix(chunk));
    }
    return static_cast<std::size_t>(h);
  }
};

Rows identityRows(std::size_t n) {
  Rows s{};
  for (std::size_t y = 0; y < n; ++y) {
    s[y] = static_cast<std::uint16_t>(1u << y);
  }
  return s;
}

Rows applyParents(const Rows& s, const std::uint8_t* parents,
                  std::size_t n) {
  Rows out = s;
  for (std::size_t y = 0; y < n; ++y) {
    out[y] = static_cast<std::uint16_t>(out[y] | s[parents[y]]);
  }
  return out;
}

bool isBroadcastRows(const Rows& s, std::size_t n) {
  std::uint16_t common = s[0];
  for (std::size_t y = 1; y < n && common != 0; ++y) {
    common = static_cast<std::uint16_t>(common & s[y]);
  }
  return common != 0;
}

std::size_t totalBits(const Rows& s, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t y = 0; y < n; ++y) {
    total += static_cast<std::size_t>(std::popcount(s[y]));
  }
  return total;
}

/// True when a is a row-wise subset of b (a has heard no more than b).
bool subsetRows(const Rows& a, const Rows& b, std::size_t n) {
  for (std::size_t y = 0; y < n; ++y) {
    if ((a[y] & ~b[y]) != 0) return false;
  }
  return true;
}

// --- Orbit-pruned canonicalization -----------------------------------------
//
// Exact canonicalization under simultaneous row/column permutation: the
// minimum encoding over all relabelings. Scanning all n! permutations is
// the historical bottleneck, so the scan is restricted to permutations
// respecting an invariant partition: nodes are first split by
// (|Heard(v)|, coverage(v)) and the partition is refined twice with the
// signature multisets of each node's heard-set and audience. Signatures
// are functions of relabeling-invariant data only, so equivalent states
// produce identical cell structures and the constrained minima coincide
// — while most mid-game states refine to all-singleton cells, where the
// scan degenerates to a single permutation.

/// Per-cell permutation enumerator: cells (each sorted ascending) own
/// consecutive position blocks; every within-cell arrangement is tried.
struct OrbitScan {
  const Rows& s;
  std::size_t n;
  const std::vector<std::vector<std::uint8_t>>& cells;
  const std::vector<std::uint8_t>& offsets;
  std::array<std::uint8_t, ExactSolver::kMaxN> perm{};
  Rows best{};
  bool haveBest = false;

  void run(std::size_t ci) {
    if (ci == cells.size()) {
      consider();
      return;
    }
    std::vector<std::uint8_t> arr = cells[ci];
    const std::uint8_t off = offsets[ci];
    do {
      for (std::size_t i = 0; i < arr.size(); ++i) {
        perm[arr[i]] = static_cast<std::uint8_t>(off + i);
      }
      run(ci + 1);
    } while (std::next_permutation(arr.begin(), arr.end()));
  }

  void consider() {
    Rows out{};
    for (std::size_t y = 0; y < n; ++y) {
      std::uint16_t bits = s[y];
      std::uint16_t img = 0;
      while (bits != 0) {
        const unsigned x = static_cast<unsigned>(std::countr_zero(bits));
        img = static_cast<std::uint16_t>(img | (1u << perm[x]));
        bits = static_cast<std::uint16_t>(bits & (bits - 1));
      }
      out[perm[y]] = img;
    }
    if (!haveBest || out < best) {
      best = out;
      haveBest = true;
    }
  }
};

Rows canonicalRows(const Rows& s, std::size_t n) {
  // Base signatures: (|row|, |column|) per node.
  std::array<std::uint8_t, ExactSolver::kMaxN> colCount{};
  for (std::size_t y = 0; y < n; ++y) {
    std::uint16_t bits = s[y];
    while (bits != 0) {
      ++colCount[static_cast<unsigned>(std::countr_zero(bits))];
      bits = static_cast<std::uint16_t>(bits & (bits - 1));
    }
  }
  std::array<std::uint64_t, ExactSolver::kMaxN> sig{};
  for (std::size_t v = 0; v < n; ++v) {
    sig[v] = hashCombine(hashMix(std::popcount(s[v]) + 1u), colCount[v]);
  }
  // Two refinement rounds over heard-set and audience signatures.
  std::array<std::uint64_t, ExactSolver::kMaxN> next{};
  std::vector<std::uint64_t> neigh;
  neigh.reserve(n);
  for (int round = 0; round < 2; ++round) {
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t h = hashMix(sig[v]);
      neigh.clear();
      std::uint16_t bits = s[v];
      while (bits != 0) {
        neigh.push_back(sig[static_cast<unsigned>(std::countr_zero(bits))]);
        bits = static_cast<std::uint16_t>(bits & (bits - 1));
      }
      std::sort(neigh.begin(), neigh.end());
      for (const std::uint64_t t : neigh) h = hashCombine(h, t);
      h = hashMix(h ^ 0xabcdef0123456789ull);
      neigh.clear();
      for (std::size_t x = 0; x < n; ++x) {
        if ((s[x] >> v) & 1u) neigh.push_back(sig[x]);
      }
      std::sort(neigh.begin(), neigh.end());
      for (const std::uint64_t t : neigh) h = hashCombine(h, t);
      next[v] = h;
    }
    sig = next;
  }
  // Cells: nodes grouped by signature, cell order by signature value.
  std::array<std::uint8_t, ExactSolver::kMaxN> order{};
  for (std::size_t v = 0; v < n; ++v) order[v] = static_cast<std::uint8_t>(v);
  std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n),
            [&](std::uint8_t a, std::uint8_t b) {
              if (sig[a] != sig[b]) return sig[a] < sig[b];
              return a < b;
            });
  std::vector<std::vector<std::uint8_t>> cells;
  std::vector<std::uint8_t> offsets;
  std::uint64_t perms = 1;
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i;
    while (j < n && sig[order[j]] == sig[order[i]]) ++j;
    offsets.push_back(static_cast<std::uint8_t>(i));
    cells.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(i),
                       order.begin() + static_cast<std::ptrdiff_t>(j));
    for (std::size_t k = 2; k <= j - i; ++k) {
      perms *= k;
      if (perms > kMaxOrbitPerms) return s;  // bail: see kMaxOrbitPerms
    }
    i = j;
  }
  OrbitScan scan{s, n, cells, offsets};
  scan.run(0);
  return scan.best;
}

// --- Exhaustive machinery ---------------------------------------------------

/// The full move pool as flat parent bytes (n per tree).
struct MovePool {
  std::size_t n = 0;
  std::size_t count = 0;
  std::vector<std::uint8_t> parents;

  void build(std::size_t n_) {
    n = n_;
    DYNBCAST_ASSERT_MSG(
        rootedTreeCount(n) <= kExhaustivePoolLimit,
        "exhaustive move pool infeasible beyond n = 8; use witnessPlay()");
    parents.reserve(static_cast<std::size_t>(rootedTreeCount(n)) * n);
    forEachRootedTree(n, [&](const RootedTree& t) {
      for (std::size_t y = 0; y < n; ++y) {
        parents.push_back(static_cast<std::uint8_t>(t.parents()[y]));
      }
      ++count;
      return true;
    });
  }

  const std::uint8_t* operator[](std::size_t m) const {
    return parents.data() + m * n;
  }

  RootedTree tree(std::size_t m) const {
    const std::uint8_t* p = (*this)[m];
    std::vector<std::size_t> par(n);
    std::size_t root = 0;
    for (std::size_t y = 0; y < n; ++y) {
      par[y] = p[y];
      if (par[y] == y) root = y;
    }
    return RootedTree(root, std::move(par));
  }
};

/// Shared machinery between solve() and optimalPlay(): the move pool,
/// the canonical-state memo, and the dominance filter.
struct SolveContext {
  std::size_t n = 0;
  bool canonicalize = false;
  bool pruneDominated = false;
  std::size_t depthCap = 0;
  MovePool pool;
  std::unordered_map<Rows, std::size_t, RowsHash> memo;
  std::uint64_t successorsExpanded = 0;
  std::uint64_t dominatedPruned = 0;

  SolveContext(std::size_t n_, const ExactOptions& options)
      : n(n_),
        canonicalize(options.canonicalize),
        pruneDominated(options.pruneDominated) {
    depthCap = options.depthCap != 0 ? options.depthCap : n * n;
    pool.build(n);
  }

  Rows canonical(const Rows& s) const {
    return canonicalize ? canonicalRows(s, n) : s;
  }

  /// Game value of a (canonical) non-broadcast state: the largest number
  /// of further rounds the adversary can force.
  std::size_t value(const Rows& state, std::size_t depth) {
    const auto it = memo.find(state);
    if (it != memo.end()) return it->second;
    DYNBCAST_ASSERT_MSG(depth < depthCap,
                        "exceeded depth cap: monotone progress violated?");
    // Distinct successors only: many trees induce the same transition
    // from a given state.
    std::vector<Rows> succ;
    succ.reserve(pool.count);
    for (std::size_t m = 0; m < pool.count; ++m) {
      succ.push_back(applyParents(state, pool[m], n));
    }
    std::sort(succ.begin(), succ.end());
    succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
    // Row-wise dominance: the value is antitone under ⊆ (a state that
    // has heard more is closer to broadcast), so successors that are
    // supersets of another successor cannot carry the max.
    if (pruneDominated && succ.size() > 1 &&
        succ.size() <= kDominanceLimit) {
      std::stable_sort(succ.begin(), succ.end(),
                       [&](const Rows& a, const Rows& b) {
                         return totalBits(a, n) < totalBits(b, n);
                       });
      std::vector<Rows> kept;
      kept.reserve(succ.size());
      for (const Rows& cand : succ) {
        bool dominated = false;
        for (const Rows& k : kept) {
          if (subsetRows(k, cand, n)) {
            dominated = true;
            break;
          }
        }
        if (!dominated) kept.push_back(cand);
      }
      dominatedPruned += succ.size() - kept.size();
      succ = std::move(kept);
    }
    std::size_t best = 0;
    std::unordered_set<Rows, RowsHash> canonicalSeen;
    canonicalSeen.reserve(succ.size());
    for (const Rows& raw : succ) {
      const Rows next = canonical(raw);
      if (!canonicalSeen.insert(next).second) continue;
      ++successorsExpanded;
      const std::size_t v =
          isBroadcastRows(next, n) ? 1 : 1 + value(next, depth + 1);
      best = std::max(best, v);
    }
    memo.emplace(state, best);
    return best;
  }

  /// Value of an arbitrary (raw) state via the canonical memo.
  std::size_t valueOf(const Rows& raw, std::size_t depth) {
    if (isBroadcastRows(raw, n)) return 0;
    return value(canonical(raw), depth);
  }
};

// --- Witness search ---------------------------------------------------------
//
// Depth-first search for `target` rounds of survival: a line of
// target − 1 non-completing moves (one completing move — any star —
// always exists, so surviving k moves certifies k + 1 rounds).
// Children are ordered by the convex coverage potential, which walks
// almost straight to the ⌈(3n−1)/2⌉−2 witness when the pool is
// complete; a canonical-form failure memo prunes relabelings of
// already-refuted states.

/// Exhaustive-pool search on the packed uint64 encoding (n ≤ 8).
struct ExhaustiveWitness {
  std::size_t n;
  const MovePool& pool;
  ExactWitnessOptions opts;
  bool canonicalize = true;
  std::unordered_map<Rows, std::size_t, RowsHash> failedAt{};
  std::uint64_t nodes = 0;

  static Rows toRows(std::uint64_t s, std::size_t n) {
    Rows out{};
    for (std::size_t y = 0; y < n; ++y) {
      out[y] = static_cast<std::uint16_t>(rowOf(s, y));
    }
    return out;
  }

  static std::uint32_t potentialKey(std::uint64_t s, std::size_t n) {
    std::uint32_t key = 0;
    for (std::size_t x = 0; x < n; ++x) {
      const std::uint64_t mask = 0x0101010101010101ull << x;
      key += 1u << std::popcount(s & mask);
    }
    return key;
  }

  struct Child {
    std::uint64_t state;
    std::uint32_t move;
    std::uint32_t pot;
  };

  bool dfs(std::uint64_t state, std::size_t remaining,
           std::vector<std::uint32_t>& line) {
    if (remaining == 0) return true;
    if (++nodes > opts.nodeBudget) return false;
    Rows key = toRows(state, n);
    if (canonicalize) key = canonicalRows(key, n);
    const auto it = failedAt.find(key);
    if (it != failedAt.end() && remaining >= it->second) return false;
    std::vector<Child> succ;
    succ.reserve(pool.count);
    for (std::size_t m = 0; m < pool.count; ++m) {
      std::uint64_t s2 = state;
      const std::uint8_t* par = pool[m];
      for (std::size_t y = 0; y < n; ++y) {
        s2 |= rowOf(state, par[y]) << (y * kStride);
      }
      if (!ExactSolver::isBroadcastState(s2, n)) {
        succ.push_back({s2, static_cast<std::uint32_t>(m), 0});
      }
    }
    std::sort(succ.begin(), succ.end(), [](const Child& a, const Child& b) {
      if (a.state != b.state) return a.state < b.state;
      return a.move < b.move;
    });
    succ.erase(std::unique(succ.begin(), succ.end(),
                           [](const Child& a, const Child& b) {
                             return a.state == b.state;
                           }),
               succ.end());
    for (Child& c : succ) c.pot = potentialKey(c.state, n);
    std::sort(succ.begin(), succ.end(), [](const Child& a, const Child& b) {
      if (a.pot != b.pot) return a.pot < b.pot;
      return a.state < b.state;
    });
    if (succ.size() > opts.maxChildrenPerNode) {
      succ.resize(opts.maxChildrenPerNode);
      succ.shrink_to_fit();  // release before recursing (n = 8: ~30 MB)
    }
    for (const Child& c : succ) {
      if (dfs(c.state, remaining - 1, line)) {
        line[line.size() - remaining] = c.move;
        return true;
      }
    }
    const auto [fit, inserted] = failedAt.emplace(key, remaining);
    if (!inserted && fit->second > remaining) fit->second = remaining;
    return false;
  }
};

/// Structured-pool search on heard matrices (n > 8): damage-greedy
/// trees from every root, freeze paths, heard-order paths, and a few
/// deterministic noisy damage trees per node.
///
/// Unlike the exhaustive search, the failure memo is keyed on the raw
/// state: the structured pool breaks ties by node id and seeds its
/// noise from the raw digest, so it is not relabeling-equivariant — an
/// equivalent state gets a differently-tie-broken pool that may still
/// succeed, and merging would prune it unsoundly.
struct StructuredWitness {
  std::size_t n;
  ExactWitnessOptions opts;
  std::unordered_map<Rows, std::size_t, RowsHash> failedAt{};
  std::uint64_t nodes = 0;
  EvalScratch scratch{};

  static Rows heardToRows(const std::vector<DynBitset>& heard) {
    Rows out{};
    for (std::size_t y = 0; y < heard.size(); ++y) {
      std::uint16_t row = 0;
      for (std::size_t x = 0; x < heard.size(); ++x) {
        if (heard[y].test(x)) row = static_cast<std::uint16_t>(row | (1u << x));
      }
      out[y] = row;
    }
    return out;
  }

  std::vector<RootedTree> movePool(const BroadcastSim& sim,
                                   const std::vector<std::size_t>& coverage,
                                   std::uint64_t nodeSeed) {
    std::vector<RootedTree> pool;
    for (std::size_t r = 0; r < n; ++r) {
      pool.push_back(buildDamageGreedyTree(sim, coverage, r));
    }
    std::vector<std::size_t> base(n);
    std::iota(base.begin(), base.end(), std::size_t{0});
    for (std::size_t d = 1; d <= 3 && d < n; ++d) {
      std::vector<std::size_t> ids(n);
      std::iota(ids.begin(), ids.end(), std::size_t{0});
      std::partial_sort(ids.begin(),
                        ids.begin() + static_cast<std::ptrdiff_t>(d),
                        ids.end(), [&](std::size_t a, std::size_t b) {
                          if (coverage[a] != coverage[b]) {
                            return coverage[a] > coverage[b];
                          }
                          return a < b;
                        });
      ids.resize(d);
      pool.push_back(makePath(freezeOrdering(sim, ids, base)));
    }
    std::vector<std::size_t> asc(n);
    std::iota(asc.begin(), asc.end(), std::size_t{0});
    std::stable_sort(asc.begin(), asc.end(),
                     [&](std::size_t a, std::size_t b) {
                       return sim.heardCount(a) < sim.heardCount(b);
                     });
    pool.push_back(makePath(asc));
    std::reverse(asc.begin(), asc.end());
    pool.push_back(makePath(asc));
    // Deterministic noise: the node's state digest seeds the generator,
    // so revisits expand identically and the search stays reproducible.
    Rng rng(nodeSeed);
    for (std::size_t i = 0; i < opts.noisyMovesPerNode; ++i) {
      pool.push_back(
          buildNoisyDamageTree(sim, coverage, rng.uniform(n), 8.0, rng));
    }
    return pool;
  }

  struct Child {
    RootedTree move;
    std::vector<DynBitset> heard;
    std::vector<std::size_t> coverage;
    double potential = 0.0;
  };

  bool dfs(const std::vector<DynBitset>& heard,
           const std::vector<std::size_t>& coverage, std::size_t remaining,
           std::vector<RootedTree>& line) {
    if (remaining == 0) return true;
    if (++nodes > opts.nodeBudget) return false;
    const Rows key = heardToRows(heard);
    const auto it = failedAt.find(key);
    if (it != failedAt.end() && remaining >= it->second) return false;
    const BroadcastSim sim =
        BroadcastSim::fromHeard(std::vector<DynBitset>(heard));
    std::vector<RootedTree> pool = movePool(
        sim, coverage,
        hashHeardMatrix(heard) ^ (remaining * 0x9e3779b97f4a7c15ull));
    std::vector<Child> children;
    for (RootedTree& mv : pool) {
      const DelayScore score = evaluateCandidate(heard, coverage, mv, scratch);
      if (score.finishes) continue;
      bool duplicate = false;
      for (const Child& c : children) {
        if (c.heard == scratch.heard) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      children.push_back(Child{std::move(mv), scratch.heard,
                               scratch.coverage, score.potential});
    }
    std::stable_sort(children.begin(), children.end(),
                     [](const Child& a, const Child& b) {
                       return a.potential < b.potential;
                     });
    for (Child& c : children) {
      if (dfs(c.heard, c.coverage, remaining - 1, line)) {
        line[line.size() - remaining] = std::move(c.move);
        return true;
      }
    }
    const auto [fit, inserted] = failedAt.emplace(key, remaining);
    if (!inserted && fit->second > remaining) fit->second = remaining;
    return false;
  }
};

/// Replays a parent-array line on the row encoding; returns the round
/// in which broadcast completes (0 = never within the line).
std::size_t replayRows(std::size_t n, const std::vector<RootedTree>& play) {
  Rows s = identityRows(n);
  for (std::size_t i = 0; i < play.size(); ++i) {
    std::array<std::uint8_t, ExactSolver::kMaxN> par{};
    for (std::size_t y = 0; y < n; ++y) {
      par[y] = static_cast<std::uint8_t>(play[i].parent(y));
    }
    s = applyParents(s, par.data(), n);
    if (isBroadcastRows(s, n)) return i + 1;
  }
  return 0;
}

}  // namespace

std::uint64_t ExactSolver::encodeIdentity(std::size_t n) {
  std::uint64_t s = 0;
  for (std::size_t y = 0; y < n; ++y) {
    s |= std::uint64_t{1} << (y * kStride + y);
  }
  return s;
}

std::uint64_t ExactSolver::applyTreeEncoded(
    std::uint64_t state, const std::vector<std::size_t>& parents) {
  std::uint64_t out = state;
  for (std::size_t y = 0; y < parents.size(); ++y) {
    const std::size_t p = parents[y];
    if (p != y) {
      out |= rowOf(state, p) << (y * kStride);
    }
  }
  return out;
}

bool ExactSolver::isBroadcastState(std::uint64_t state, std::size_t n) {
  std::uint64_t common = rowOf(state, 0);
  for (std::size_t y = 1; y < n && common != 0; ++y) {
    common &= rowOf(state, y);
  }
  return common != 0;
}

ExactSolver::ExactSolver(std::size_t n, ExactOptions options)
    : n_(n), options_(options) {
  DYNBCAST_ASSERT_MSG(n >= 2 && n <= kMaxN,
                      "ExactSolver supports 2 <= n <= 16");
}

ExactResult ExactSolver::solve() {
  SolveContext ctx(n_, options_);
  ExactResult result;
  result.tStar = ctx.valueOf(identityRows(n_), 0);
  result.statesMemoized = ctx.memo.size();
  result.successorsExpanded = ctx.successorsExpanded;
  result.dominatedPruned = ctx.dominatedPruned;
  return result;
}

std::vector<RootedTree> ExactSolver::optimalPlay() {
  SolveContext ctx(n_, options_);
  Rows state = identityRows(n_);
  std::size_t remaining = ctx.valueOf(state, 0);

  std::vector<RootedTree> play;
  play.reserve(remaining);
  std::size_t depth = 0;
  while (remaining > 0) {
    // Pick any move whose successor preserves the game value.
    bool found = false;
    for (std::size_t m = 0; m < ctx.pool.count; ++m) {
      const Rows next = applyParents(state, ctx.pool[m], n_);
      const std::size_t v = ctx.valueOf(next, depth + 1);
      if (v + 1 == remaining) {
        play.push_back(ctx.pool.tree(m));
        state = next;
        remaining = v;
        found = true;
        break;
      }
    }
    DYNBCAST_ASSERT_MSG(found, "no value-preserving move: memo corrupt?");
    ++depth;
  }
  DYNBCAST_ASSERT(isBroadcastRows(state, n_));
  return play;
}

std::vector<RootedTree> ExactSolver::witnessPlay(
    std::size_t targetRounds, ExactWitnessOptions witnessOptions) {
  if (targetRounds == 0) return {};
  const bool exhaustive = rootedTreeCount(n_) <= kExhaustivePoolLimit;

  MovePool pool;
  if (exhaustive) pool.build(n_);
  ExhaustiveWitness packed{n_, pool, witnessOptions,
                           options_.canonicalize};
  StructuredWitness structured{n_, witnessOptions};

  // Descending targets: the failure memos carry over, so a failed
  // attempt at t seeds the attempt at t − 1. Target 1 always succeeds
  // (an empty line plus the star finisher).
  for (std::size_t t = targetRounds; t >= 1; --t) {
    std::vector<RootedTree> play;
    bool found = false;
    if (exhaustive) {
      std::vector<std::uint32_t> line(t - 1, 0);
      if (packed.dfs(encodeIdentity(n_), t - 1, line)) {
        for (const std::uint32_t m : line) play.push_back(pool.tree(m));
        found = true;
      }
    } else {
      std::vector<DynBitset> heard(n_, DynBitset(n_));
      for (std::size_t y = 0; y < n_; ++y) heard[y].set(y);
      std::vector<RootedTree> line(t - 1, RootedTree::trivial());
      if (structured.dfs(heard, std::vector<std::size_t>(n_, 1), t - 1,
                         line)) {
        play = std::move(line);
        found = true;
      }
    }
    if (!found) continue;
    // One completing move always exists: a star makes every process
    // hear the center's full history, center included.
    play.push_back(makeStar(n_, 0));
    DYNBCAST_ASSERT_MSG(replayRows(n_, play) == play.size(),
                        "witness line does not replay to its length");
    return play;
  }
  return {};  // unreachable: t = 1 cannot fail
}

}  // namespace dynbcast
