#include "src/adversary/adaptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/support/assert.h"
#include "src/tree/families.h"
#include "src/tree/generators.h"

namespace dynbcast {

std::vector<std::size_t> coverageCounts(const BroadcastSim& state) {
  const std::size_t n = state.processCount();
  std::vector<std::size_t> coverage(n, 0);
  for (std::size_t y = 0; y < n; ++y) {
    const DynBitset& h = state.heardBy(y);
    for (std::size_t x = h.findFirst(); x < n; x = h.findNext(x + 1)) {
      ++coverage[x];
    }
  }
  return coverage;
}

DelayScore evaluateCandidate(const std::vector<DynBitset>& heard,
                             const std::vector<std::size_t>& coverage,
                             const RootedTree& tree,
                             std::vector<std::size_t>* coverageOut) {
  EvalScratch scratch = EvalScratch::forProcessCount(heard.size());
  const DelayScore score = evaluateCandidate(heard, coverage, tree, scratch);
  if (coverageOut != nullptr) *coverageOut = std::move(scratch.coverage);
  return score;
}

DelayScore evaluateCandidate(const std::vector<DynBitset>& heard,
                             const std::vector<std::size_t>& coverage,
                             const RootedTree& tree, EvalScratch& scratch) {
  const std::size_t n = heard.size();
  DYNBCAST_ASSERT(tree.size() == n && coverage.size() == n);
  // Walk the tree in reverse BFS exactly like the simulator would, but
  // only materialize the deltas: for each node, the processes it newly
  // learns about bump their coverage. The delta is iterated straight off
  // the raw words ((parent & ~child) per word, ascending bits — the same
  // order the old findNext loop produced), so no temporary bitset exists.
  scratch.assignHeard(heard);
  scratch.coverage.assign(coverage.begin(), coverage.end());
  DelayScore score;
  tree.bfsOrderInto(scratch.order);
  const std::size_t nwords = n == 0 ? 0 : heard[0].wordCount();
  for (std::size_t i = scratch.order.size(); i-- > 0;) {
    const std::size_t y = scratch.order[i];
    const std::size_t p = tree.parent(y);
    if (p == y) continue;
    bitword::forEachInDifference(scratch.heard[p].wordData(),
                                 scratch.heard[y].wordData(), nwords,
                                 [&](std::size_t x) {
                                   ++scratch.coverage[x];
                                   ++score.newEdges;
                                 });
    scratch.heard[y].orWith(scratch.heard[p]);
  }
  for (const std::size_t c : scratch.coverage) {
    score.maxCoverage = std::max(score.maxCoverage, c);
    if (c == n) score.finishes = true;
    score.potential +=
        std::exp2(static_cast<double>(std::min<std::size_t>(c, 50)));
  }
  return score;
}

std::vector<std::size_t> freezeOrdering(
    const BroadcastSim& state, const std::vector<std::size_t>& leaders,
    const std::vector<std::size_t>& baseOrder) {
  const std::size_t n = state.processCount();
  DYNBCAST_ASSERT(baseOrder.size() == n);
  // Stable sort by the knower signature only: for the primary leader,
  // non-knowers strictly before knowers; ties resolved by the next
  // leader; everything else keeps its baseOrder position. std::stable_sort
  // delivers exactly that semantics.
  std::vector<std::size_t> order = baseOrder;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     for (const std::size_t x : leaders) {
                       const bool ka = state.heardBy(a).test(x);
                       const bool kb = state.heardBy(b).test(x);
                       if (ka != kb) return !ka;  // non-knowers first
                     }
                     return false;  // equal signature: keep stable order
                   });
  return order;
}

namespace {

RootedTree buildDamageTreeImpl(const BroadcastSim& state,
                               const std::vector<std::size_t>& coverage,
                               std::size_t root, double noiseAmplitude,
                               Rng* rng) {
  const std::size_t n = state.processCount();
  DYNBCAST_ASSERT(root < n && coverage.size() == n);
  // Exponential coverage weights: leaking a process with coverage c costs
  // 2^min(c, 50); a process at coverage n−1 would finish the game, so it
  // dominates every other consideration. Optional multiplicative noise
  // diversifies the construction for search adversaries.
  std::vector<double> weight(n);
  for (std::size_t x = 0; x < n; ++x) {
    const double capped = static_cast<double>(std::min<std::size_t>(
        coverage[x], 50));
    weight[x] = std::exp2(capped) * (coverage[x] + 1 >= n ? 1e6 : 1.0);
    if (noiseAmplitude > 0.0 && rng != nullptr) {
      weight[x] *= 1.0 + noiseAmplitude * rng->uniformReal();
    }
  }
  // Prim evaluates O(n²) candidate edges, so the per-edge delta must not
  // allocate: the kernel iterates (p & ~y) straight off the raw words in
  // ascending bit order, accumulating the weights in one pass.
  const std::size_t nwords = state.heardBy(0).wordCount();
  const auto damage = [&](std::size_t p, std::size_t y) {
    double d = 0.0;
    bitword::forEachInDifference(state.heardBy(p).wordData(),
                                 state.heardBy(y).wordData(), nwords,
                                 [&](std::size_t x) { d += weight[x]; });
    return d;
  };
  // Prim's algorithm over the complete damage graph: heard sets are
  // start-of-round snapshots, so edge costs never change mid-build.
  std::vector<std::size_t> parent(n, n);
  std::vector<double> bestCost(n, 0.0);
  std::vector<bool> attached(n, false);
  parent[root] = root;
  attached[root] = true;
  for (std::size_t y = 0; y < n; ++y) {
    if (y != root) {
      parent[y] = root;
      bestCost[y] = damage(root, y);
    }
  }
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t pick = n;
    for (std::size_t y = 0; y < n; ++y) {
      if (!attached[y] && (pick == n || bestCost[y] < bestCost[pick])) {
        pick = y;
      }
    }
    attached[pick] = true;
    for (std::size_t y = 0; y < n; ++y) {
      if (!attached[y]) {
        const double c = damage(pick, y);
        if (c < bestCost[y]) {
          bestCost[y] = c;
          parent[y] = pick;
        }
      }
    }
  }
  return RootedTree(root, std::move(parent));
}

}  // namespace

RootedTree buildDamageGreedyTree(const BroadcastSim& state,
                                 const std::vector<std::size_t>& coverage,
                                 std::size_t root) {
  return buildDamageTreeImpl(state, coverage, root, 0.0, nullptr);
}

RootedTree buildNoisyDamageTree(const BroadcastSim& state,
                                const std::vector<std::size_t>& coverage,
                                std::size_t root, double amplitude,
                                Rng& rng) {
  return buildDamageTreeImpl(state, coverage, root, amplitude, &rng);
}

namespace {

std::vector<std::size_t> identityOrder(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

/// Top-`depth` coverage leaders, highest coverage first (ties by id).
std::vector<std::size_t> topLeaders(const std::vector<std::size_t>& coverage,
                                    std::size_t depth) {
  std::vector<std::size_t> ids(coverage.size());
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  const std::size_t take = std::min(depth, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(take),
                    ids.end(), [&](std::size_t a, std::size_t b) {
                      if (coverage[a] != coverage[b]) {
                        return coverage[a] > coverage[b];
                      }
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

}  // namespace

FreezePathAdversary::FreezePathAdversary(std::size_t n, std::size_t depth)
    : n_(n), depth_(depth), order_(identityOrder(n)) {
  DYNBCAST_ASSERT(depth >= 1);
}

void FreezePathAdversary::reset() { order_ = identityOrder(n_); }

RootedTree FreezePathAdversary::nextTree(const BroadcastSim& state) {
  DYNBCAST_ASSERT(state.processCount() == n_);
  const std::vector<std::size_t> coverage = coverageCounts(state);
  order_ = freezeOrdering(state, topLeaders(coverage, depth_), order_);
  return makePath(order_);
}

std::string FreezePathAdversary::name() const {
  return "freeze-path:depth=" + std::to_string(depth_);
}

FreezeBroomAdversary::FreezeBroomAdversary(std::size_t n,
                                           std::size_t handleLen)
    : n_(n), handleLen_(handleLen), order_(identityOrder(n)) {
  DYNBCAST_ASSERT(handleLen >= 1 && handleLen <= n);
}

void FreezeBroomAdversary::reset() { order_ = identityOrder(n_); }

RootedTree FreezeBroomAdversary::nextTree(const BroadcastSim& state) {
  DYNBCAST_ASSERT(state.processCount() == n_);
  const std::vector<std::size_t> coverage = coverageCounts(state);
  order_ = freezeOrdering(state, topLeaders(coverage, 2), order_);
  return makeBroom(order_, handleLen_);
}

std::string FreezeBroomAdversary::name() const {
  return "freeze-broom:handle=" + std::to_string(handleLen_);
}

HeardOrderPathAdversary::HeardOrderPathAdversary(std::size_t n,
                                                 bool ascending)
    : n_(n), ascending_(ascending) {}

RootedTree HeardOrderPathAdversary::nextTree(const BroadcastSim& state) {
  DYNBCAST_ASSERT(state.processCount() == n_);
  std::vector<std::size_t> order = identityOrder(n_);
  std::vector<std::size_t> heardSize(n_);
  for (std::size_t y = 0; y < n_; ++y) {
    heardSize[y] = state.heardCount(y);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ascending_ ? heardSize[a] < heardSize[b]
                                       : heardSize[a] > heardSize[b];
                   });
  return makePath(order);
}

std::string HeardOrderPathAdversary::name() const {
  return ascending_ ? "heard-asc-path" : "heard-desc-path";
}

GreedyDelayAdversary::GreedyDelayAdversary(std::size_t n, std::uint64_t seed,
                                           GreedyDelayConfig config)
    : n_(n),
      seed_(seed),
      rng_(seed),
      config_(config),
      order_(identityOrder(n)),
      scratch_(EvalScratch::forProcessCount(n)) {}

void GreedyDelayAdversary::reset() {
  rng_ = Rng(seed_);
  order_ = identityOrder(n_);
}

RootedTree GreedyDelayAdversary::nextTree(const BroadcastSim& state) {
  DYNBCAST_ASSERT(state.processCount() == n_);
  const std::vector<std::size_t> coverage = coverageCounts(state);
  const std::vector<DynBitset>& heard = state.heardMatrix();

  // Candidate orders (paths); trees that are not plain paths are kept in
  // a separate list so the winning PATH can seed next round's stability.
  std::vector<std::vector<std::size_t>> orders;
  if (config_.includePrevious) {
    orders.push_back(order_);
  }
  for (std::size_t d = 1; d <= config_.freezeDepthMax && d <= n_; ++d) {
    orders.push_back(freezeOrdering(state, topLeaders(coverage, d), order_));
  }
  if (config_.includeRotations && n_ >= 2) {
    std::vector<std::size_t> headToTail(order_.begin() + 1, order_.end());
    headToTail.push_back(order_.front());
    orders.push_back(std::move(headToTail));
    std::vector<std::size_t> tailToHead{order_.back()};
    tailToHead.insert(tailToHead.end(), order_.begin(), order_.end() - 1);
    orders.push_back(std::move(tailToHead));
  }
  if (config_.includeHeardOrders) {
    HeardOrderPathAdversary asc(n_, true);
    HeardOrderPathAdversary desc(n_, false);
    orders.push_back(asc.nextTree(state).bfsOrder());
    orders.push_back(desc.nextTree(state).bfsOrder());
  }
  for (std::size_t i = 0; i < config_.randomPaths; ++i) {
    orders.push_back(rng_.permutation(n_));
  }

  std::vector<RootedTree> extraTrees;
  if (config_.includeBrooms && n_ >= 3) {
    // Broom over the primary freeze order: the knower block becomes the
    // bristles (they receive but feed nobody).
    const std::vector<std::size_t> freezeOrder =
        freezeOrdering(state, topLeaders(coverage, 1), order_);
    const std::size_t leader = topLeaders(coverage, 1).front();
    std::size_t firstKnower = n_;
    for (std::size_t i = 0; i < n_; ++i) {
      if (state.heardBy(freezeOrder[i]).test(leader)) {
        firstKnower = i;
        break;
      }
    }
    if (firstKnower >= 2 && firstKnower < n_) {
      extraTrees.push_back(makeBroom(freezeOrder, firstKnower));
    }
  }
  for (std::size_t i = 0; i < config_.randomTrees; ++i) {
    extraTrees.push_back(randomRootedTree(n_, rng_));
  }
  if (config_.damageTreeRoots > 0) {
    // Damage-greedy trees: the balanced-coverage move family that exact
    // optimal play favors. Root picks: lowest-coverage process (its info
    // is safest to spread), highest-heard process (it gains nothing by
    // receiving anyway), plus random extras.
    std::vector<std::size_t> roots;
    roots.push_back(static_cast<std::size_t>(
        std::min_element(coverage.begin(), coverage.end()) -
        coverage.begin()));
    if (config_.damageTreeRoots >= 2) {
      std::size_t maxHeard = 0;
      for (std::size_t y = 1; y < n_; ++y) {
        if (state.heardCount(y) > state.heardCount(maxHeard)) maxHeard = y;
      }
      roots.push_back(maxHeard);
    }
    while (roots.size() < config_.damageTreeRoots) {
      roots.push_back(rng_.uniform(n_));
    }
    for (const std::size_t r : roots) {
      extraTrees.push_back(buildDamageGreedyTree(state, coverage, r));
    }
  }

  // Evaluate everything; prefer path candidates on ties (stability).
  // All evaluations share the adversary's scratch arena — zero
  // allocations per candidate once the buffers are warm.
  bool bestIsPath = true;
  std::size_t bestIdx = 0;
  DelayScore bestScore =
      evaluateCandidate(heard, coverage, makePath(orders[0]), scratch_);
  for (std::size_t i = 1; i < orders.size(); ++i) {
    const DelayScore s =
        evaluateCandidate(heard, coverage, makePath(orders[i]), scratch_);
    if (s < bestScore) {
      bestScore = s;
      bestIdx = i;
    }
  }
  for (std::size_t i = 0; i < extraTrees.size(); ++i) {
    const DelayScore s =
        evaluateCandidate(heard, coverage, extraTrees[i], scratch_);
    if (s < bestScore) {
      bestScore = s;
      bestIdx = i;
      bestIsPath = false;
    }
  }
  if (bestIsPath) {
    order_ = orders[bestIdx];
    return makePath(order_);
  }
  return extraTrees[bestIdx];
}

}  // namespace dynbcast
