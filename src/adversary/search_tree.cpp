// Allocation-free hot path: dynbcast_lint bans allocation in function
// bodies here (rule hot-alloc); setup/diagnostic exceptions carry allow().
// dynbcast-lint: hot-path
#include "src/adversary/search_tree.h"

#include <algorithm>

#include "src/support/assert.h"

namespace dynbcast {

namespace {

std::size_t nextPowerOfTwo(std::size_t x) {
  std::size_t p = 16;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

SearchTreeArena::SearchTreeArena(std::size_t capacity) {
  nodes_.resize(std::max<std::size_t>(capacity, 1));
  freeList_.reserve(nodes_.size());
  // Populate the free list so slot 0 is handed out first.
  for (std::size_t i = nodes_.size(); i > 0; --i) {
    freeList_.push_back(static_cast<std::uint32_t>(i - 1));
  }
}

std::uint32_t SearchTreeArena::allocate() {
  if (freeList_.empty()) {
    // Capacity miss: fall back to growth rather than failing the search;
    // callers can watch growEvents() to size the arena better.
    ++grows_;
    nodes_.emplace_back();
    freeList_.push_back(static_cast<std::uint32_t>(nodes_.size() - 1));
  }
  const std::uint32_t id = freeList_.back();
  freeList_.pop_back();
  ++live_;
  peak_ = std::max(peak_, live_);
  return id;
}

std::uint32_t SearchTreeArena::acquireRoot() {
  const std::uint32_t id = allocate();
  Node& node = nodes_[id];
  node.parent = kNoNode;
  node.refcount = 1;
  node.depth = 0;
  return id;
}

std::uint32_t SearchTreeArena::acquireChild(std::uint32_t parent,
                                            RootedTree move) {
  DYNBCAST_ASSERT(parent < nodes_.size() && nodes_[parent].refcount > 0);
  const std::uint32_t id = allocate();
  Node& node = nodes_[id];
  node.move = std::move(move);
  node.parent = parent;
  node.refcount = 1;
  node.depth = nodes_[parent].depth + 1;
  ++nodes_[parent].refcount;
  return id;
}

void SearchTreeArena::addRef(std::uint32_t id) {
  DYNBCAST_ASSERT(id < nodes_.size() && nodes_[id].refcount > 0);
  ++nodes_[id].refcount;
}

void SearchTreeArena::release(std::uint32_t id) {
  while (id != kNoNode) {
    Node& node = nodes_[id];
    DYNBCAST_ASSERT(node.refcount > 0);
    if (--node.refcount > 0) return;
    const std::uint32_t parent = node.parent;
    // Recycle the slot; drop the (possibly large) move allocation now
    // instead of holding it until the slot is reused.
    node.move = RootedTree::trivial();
    node.parent = kNoNode;
    freeList_.push_back(id);
    --live_;
    id = parent;
  }
}

const RootedTree& SearchTreeArena::move(std::uint32_t id) const {
  DYNBCAST_ASSERT(id < nodes_.size() && nodes_[id].refcount > 0);
  return nodes_[id].move;
}

std::uint32_t SearchTreeArena::parent(std::uint32_t id) const {
  DYNBCAST_ASSERT(id < nodes_.size() && nodes_[id].refcount > 0);
  return nodes_[id].parent;
}

std::size_t SearchTreeArena::depth(std::uint32_t id) const {
  DYNBCAST_ASSERT(id < nodes_.size() && nodes_[id].refcount > 0);
  return nodes_[id].depth;
}

std::vector<RootedTree> SearchTreeArena::lineage(std::uint32_t id) const {
  DYNBCAST_ASSERT(id < nodes_.size() && nodes_[id].refcount > 0);
  // Witness reconstruction runs once per finished search, outside the
  // expansion loop.
  // dynbcast-lint: allow(hot-alloc) -- once per search, not per round
  std::vector<RootedTree> out;
  out.reserve(nodes_[id].depth);
  for (std::uint32_t v = id; nodes_[v].parent != kNoNode;
       v = nodes_[v].parent) {
    out.push_back(nodes_[v].move);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

TranspositionTable::TranspositionTable(std::size_t expectedEntries) {
  const std::size_t slots = nextPowerOfTwo(expectedEntries * 2 + 1);
  hashes_.assign(slots, 0);
  payloads_.assign(slots, kNoPayload);
  mask_ = slots - 1;
}

void TranspositionTable::clear() {
  std::fill(payloads_.begin(), payloads_.end(), kNoPayload);
  count_ = 0;
}

void TranspositionTable::grow() {
  std::vector<std::uint64_t> oldHashes = std::move(hashes_);
  std::vector<std::uint32_t> oldPayloads = std::move(payloads_);
  const std::size_t slots = oldHashes.size() * 2;
  hashes_.assign(slots, 0);
  payloads_.assign(slots, kNoPayload);
  mask_ = slots - 1;
  for (std::size_t i = 0; i < oldHashes.size(); ++i) {
    if (oldPayloads[i] == kNoPayload) continue;
    std::size_t j = static_cast<std::size_t>(oldHashes[i]) & mask_;
    while (payloads_[j] != kNoPayload) j = (j + 1) & mask_;
    hashes_[j] = oldHashes[i];
    payloads_[j] = oldPayloads[i];
  }
}

}  // namespace dynbcast
