#include "src/adversary/portfolio.h"

#include "src/adversary/adaptive.h"
#include "src/adversary/local_search.h"
#include "src/adversary/oblivious.h"
#include "src/support/assert.h"

namespace dynbcast {

std::vector<PortfolioMember> standardPortfolio(std::size_t n,
                                               std::uint64_t seed) {
  std::vector<PortfolioMember> members;
  members.push_back({"static-path", [n] {
                       return std::make_unique<StaticPathAdversary>(n);
                     }});
  members.push_back({"random-tree", [n, seed] {
                       return std::make_unique<UniformRandomAdversary>(n,
                                                                       seed);
                     }});
  members.push_back({"random-path", [n, seed] {
                       return std::make_unique<RandomPathAdversary>(
                           n, seed ^ 0x5eedull);
                     }});
  members.push_back({"heard-asc-path", [n] {
                       return std::make_unique<HeardOrderPathAdversary>(n,
                                                                        true);
                     }});
  members.push_back({"heard-desc-path", [n] {
                       return std::make_unique<HeardOrderPathAdversary>(
                           n, false);
                     }});
  for (std::size_t d = 1; d <= 3; ++d) {
    members.push_back({"freeze-path[d=" + std::to_string(d) + "]", [n, d] {
                         return std::make_unique<FreezePathAdversary>(n, d);
                       }});
  }
  members.push_back({"greedy-delay", [n, seed] {
                       return std::make_unique<GreedyDelayAdversary>(
                           n, seed ^ 0x9eedull);
                     }});
  members.push_back({"local-search", [n, seed] {
                       return std::make_unique<LocalSearchPathAdversary>(
                           n, seed ^ 0xf00dull);
                     }});
  return members;
}

PortfolioResult runPortfolio(std::size_t n, std::uint64_t seed,
                             bool recordHistory) {
  return runPortfolio(n, seed, standardPortfolio(n, seed), recordHistory);
}

PortfolioResult runPortfolio(std::size_t n, std::uint64_t seed,
                             const std::vector<PortfolioMember>& members,
                             bool recordHistory) {
  (void)seed;
  PortfolioResult result;
  const std::size_t cap = defaultRoundCap(n);
  for (const PortfolioMember& member : members) {
    const std::unique_ptr<Adversary> adversary = member.make();
    // One run per member: history is recorded in the same run that
    // produces the t* witness, never by replaying the member.
    BroadcastRun run = runAdversary(n, *adversary, cap, recordHistory);
    result.entries.push_back(
        {member.name, run.rounds, run.completed, std::move(run.history)});
    if (run.completed && run.rounds > result.bestRounds) {
      result.bestRounds = run.rounds;
      result.bestName = member.name;
    }
  }
  return result;
}

}  // namespace dynbcast
