#include "src/adversary/portfolio.h"

#include "src/adversary/registry.h"
#include "src/support/assert.h"

namespace dynbcast {

std::vector<std::string> standardPortfolioSpecs() {
  return {
      "static-path",        "random-tree",
      "random-path",        "heard-asc-path",
      "heard-desc-path",    "freeze-path:depth=1",
      "freeze-path:depth=2", "freeze-path:depth=3",
      "greedy-delay",       "local-search",
  };
}

std::vector<PortfolioMember> membersFromSpecs(
    const std::vector<std::string>& specs, std::size_t n,
    std::uint64_t seed) {
  const AdversaryRegistry& registry = AdversaryRegistry::instance();
  std::vector<PortfolioMember> members;
  members.reserve(specs.size());
  for (const std::string& text : specs) {
    AdversarySpec spec = AdversarySpec::parse(text);
    registry.validate(spec);
    std::string name = spec.toString();
    members.push_back({std::move(name),
                       [spec = std::move(spec), n, seed, &registry] {
                         return registry.make(spec, n, seed);
                       }});
  }
  return members;
}

std::vector<PortfolioMember> standardPortfolio(std::size_t n,
                                               std::uint64_t seed) {
  return membersFromSpecs(standardPortfolioSpecs(), n, seed);
}

PortfolioResult runPortfolio(std::size_t n, std::uint64_t seed,
                             bool recordHistory) {
  return runPortfolio(n, seed, standardPortfolio(n, seed), recordHistory);
}

PortfolioResult runPortfolio(std::size_t n, std::uint64_t seed,
                             const std::vector<PortfolioMember>& members,
                             bool recordHistory) {
  (void)seed;
  PortfolioResult result;
  const std::size_t cap = defaultRoundCap(n);
  for (const PortfolioMember& member : members) {
    const std::unique_ptr<Adversary> adversary = member.make();
    // One run per member: history is recorded in the same run that
    // produces the t* witness, never by replaying the member.
    BroadcastRun run = runAdversary(n, *adversary, cap, recordHistory);
    result.entries.push_back(
        {member.name, run.rounds, run.completed, std::move(run.history)});
    if (run.completed && run.rounds > result.bestRounds) {
      result.bestRounds = run.rounds;
      result.bestName = member.name;
    }
  }
  return result;
}

}  // namespace dynbcast
